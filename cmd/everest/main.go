// Command everest runs a MathCloud service container: it deploys the
// computational web services described in a JSON configuration file and
// publishes them through the unified REST API, together with the
// auto-generated web interface.
//
// Usage:
//
//	everest -addr :8080 -config services.json [-workers 8] [-data DIR]
//
// The configuration file has the shape:
//
//	{
//	  "clusters": [{"name": "local", "nodes": [{"name": "n1", "slots": 4}]}],
//	  "grid": {"seed": 1, "sites": [
//	      {"name": "siteA", "vos": ["mathcloud"], "reliability": 0.9,
//	       "nodes": [{"name": "a1", "slots": 4}]}]},
//	  "services": [ ...container.ServiceConfig... ]
//	}
//
// The built-in application services (CAS, AMPL solver/translator, X-ray
// curve and fit) are pre-registered as native functions, so configuration
// files can deploy them by name; -builtin additionally deploys the whole
// standard set.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"mathcloud/internal/adapter"
	"mathcloud/internal/ampl"
	"mathcloud/internal/cas"
	"mathcloud/internal/container"
	"mathcloud/internal/grid"
	"mathcloud/internal/journal"
	"mathcloud/internal/obs"
	"mathcloud/internal/scatter"
	"mathcloud/internal/torque"
)

type nodeSpec struct {
	Name  string `json:"name"`
	Slots int    `json:"slots"`
}

type configFile struct {
	Clusters []struct {
		Name  string     `json:"name"`
		Nodes []nodeSpec `json:"nodes"`
	} `json:"clusters,omitempty"`
	Grid *struct {
		Seed  int64 `json:"seed"`
		Sites []struct {
			Name        string     `json:"name"`
			VOs         []string   `json:"vos"`
			Reliability float64    `json:"reliability"`
			Nodes       []nodeSpec `json:"nodes"`
		} `json:"sites"`
	} `json:"grid,omitempty"`
	Services []container.ServiceConfig `json:"services"`
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	configPath := flag.String("config", "", "service configuration file (JSON)")
	workers := flag.Int("workers", 8, "job handler pool size")
	dataDir := flag.String("data", "", "data directory (default: temporary)")
	durableDir := flag.String("data-dir", "", "durable root: file store under <dir>, write-ahead journal under <dir>/journal; jobs, sweeps, the catalogue of deployed state and the memo index survive restarts (overrides -data)")
	walSync := flag.String("wal-sync", "batch", "journal durability mode: off, batch or always (with -data-dir)")
	snapInterval := flag.Duration("snapshot-interval", time.Minute, "journal checkpoint period (with -data-dir; negative disables)")
	snapBytes := flag.Int64("snapshot-bytes", 0, "journal size that triggers an immediate checkpoint, in bytes (with -data-dir; 0 disables the size trigger)")
	jobTTL := flag.Duration("job-ttl", 0, "default destruction TTL of terminal jobs and sweeps (0 = keep until DELETE)")
	baseURL := flag.String("base-url", "", "externally visible base URL (default: http://<addr>)")
	builtin := flag.Bool("builtin", false, "deploy the built-in application services")
	debugAddr := flag.String("debug-addr", "", "optional pprof/metrics listener (e.g. 127.0.0.1:6060)")
	memoEntries := flag.Int("memo-entries", 0, "computation cache entry bound (0 = default 4096, negative disables)")
	memoBytes := flag.Int64("memo-bytes", 0, "computation cache byte bound (0 = default 256 MiB, negative disables)")
	batchMax := flag.Int("batch", 0, "micro-batch size cap for batch-capable services (0 = default 16, <2 disables)")
	sweepWidth := flag.Int("sweep-width", 0, "maximum child jobs per parameter sweep (0 = default 10000, negative uncapped)")
	maxWait := flag.Duration("max-wait", 0, "cap on ?wait= long-poll windows and SSE idle streams (0 = default 60s, negative uncapped)")
	replica := flag.String("replica", "", "replica identity in a federated deployment (1-16 of [a-z0-9]; prefixes all minted IDs)")
	flag.Parse()

	// Structured request/job logs are informational in a server process
	// (they default to warn-level quiet for library use and tests).
	obs.SetLogLevel(slog.LevelInfo)

	// Make every built-in computational function available to configs.
	cas.Register()
	ampl.RegisterFuncs()
	scatter.RegisterFuncs()

	opts := container.Options{
		Workers:        *workers,
		DataDir:        *dataDir,
		DebugAddr:      *debugAddr,
		MemoMaxEntries: *memoEntries,
		MemoMaxBytes:   *memoBytes,
		BatchMaxSize:   *batchMax,
		MaxSweepWidth:  *sweepWidth,
		MaxWaitWindow:  *maxWait,
		ReplicaID:      *replica,
		JobTTL:         *jobTTL,
	}
	if *durableDir != "" {
		mode, err := journal.ParseSyncMode(*walSync)
		if err != nil {
			log.Fatalf("everest: %v", err)
		}
		opts.DataDir = *durableDir
		opts.JournalDir = filepath.Join(*durableDir, "journal")
		opts.WALSync = mode
		opts.SnapshotInterval = *snapInterval
		opts.SnapshotBytes = *snapBytes
	}
	registry := adapter.NewRegistry()
	opts.Adapters = registry
	c, err := container.New(opts)
	if err != nil {
		log.Fatalf("everest: %v", err)
	}
	defer c.Close()

	if *configPath != "" {
		data, err := os.ReadFile(*configPath)
		if err != nil {
			log.Fatalf("everest: read config: %v", err)
		}
		var cfg configFile
		if err := json.Unmarshal(data, &cfg); err != nil {
			log.Fatalf("everest: parse config: %v", err)
		}
		clusters := torque.NewClusterRegistry()
		for _, cc := range cfg.Clusters {
			nodes := make([]torque.NodeSpec, len(cc.Nodes))
			for i, n := range cc.Nodes {
				nodes[i] = torque.NodeSpec{Name: n.Name, Slots: n.Slots}
			}
			cluster, err := torque.New(cc.Name, nodes, nil)
			if err != nil {
				log.Fatalf("everest: cluster %s: %v", cc.Name, err)
			}
			defer cluster.Close()
			clusters.Add(cluster)
		}
		registry.Register("cluster", torque.NewAdapterFactory(clusters, registry))
		if cfg.Grid != nil {
			var sites []*grid.Site
			for _, sc := range cfg.Grid.Sites {
				nodes := make([]torque.NodeSpec, len(sc.Nodes))
				for i, n := range sc.Nodes {
					nodes[i] = torque.NodeSpec{Name: n.Name, Slots: n.Slots}
				}
				cluster, err := torque.New(sc.Name, nodes, nil)
				if err != nil {
					log.Fatalf("everest: site %s: %v", sc.Name, err)
				}
				defer cluster.Close()
				sites = append(sites, &grid.Site{
					Name: sc.Name, Cluster: cluster,
					VOs: sc.VOs, Reliability: sc.Reliability,
				})
			}
			infra, err := grid.New(sites, cfg.Grid.Seed)
			if err != nil {
				log.Fatalf("everest: grid: %v", err)
			}
			registry.Register("grid", grid.NewAdapterFactory(infra, registry))
		}
		if err := c.DeployAll(cfg.Services); err != nil {
			log.Fatalf("everest: %v", err)
		}
	}
	if *builtin {
		if _, err := cas.Deploy(c, "maxima", 1); err != nil {
			log.Fatalf("everest: %v", err)
		}
		for _, svc := range []container.ServiceConfig{
			ampl.SolverServiceConfig("solver"),
			ampl.TranslatorServiceConfig("translator"),
			scatter.CurveServiceConfig("xray-curve"),
			scatter.FitServiceConfig("xray-fit"),
		} {
			if err := c.Deploy(svc); err != nil {
				log.Fatalf("everest: %v", err)
			}
		}
	}

	// Recover after every service is deployed (re-driven jobs need their
	// adapters) and before the listener accepts traffic.
	if err := c.Recover(); err != nil {
		log.Fatalf("everest: %v", err)
	}

	if *baseURL != "" {
		c.SetBaseURL(*baseURL)
	} else {
		c.SetBaseURL(fmt.Sprintf("http://localhost%s", *addr))
	}
	names := make([]string, 0)
	for _, d := range c.Services() {
		names = append(names, d.Name)
	}
	log.Printf("everest: serving %d service(s) %v on %s", len(names), names, *addr)
	// The container handler carries its own ingress instrumentation
	// (request IDs, metrics, structured logs), so no extra logging wrapper.
	srv := &http.Server{
		Addr:              *addr,
		Handler:           c.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	log.Fatal(srv.ListenAndServe())
}
