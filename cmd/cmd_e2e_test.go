// Package cmd_test is the end-to-end test of the command-line binaries:
// it builds everest, catalogue, wms and mcctl with the Go toolchain, wires
// them together over real TCP ports, and drives the deployment with the
// CLI client — the closest this repository gets to the paper's operational
// setup.
package cmd_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"mathcloud/internal/obs"
)

// buildBinaries compiles the four commands once per test run.
func buildBinaries(t *testing.T) map[string]string {
	t.Helper()
	if testing.Short() {
		t.Skip("e2e binary test is slow")
	}
	dir := t.TempDir()
	bins := map[string]string{}
	for _, name := range []string{"everest", "catalogue", "wms", "mcctl"} {
		out := filepath.Join(dir, name)
		cmd := exec.Command("go", "build", "-o", out, "./"+name)
		cmd.Dir = "." // cmd/ directory
		if output, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", name, err, output)
		}
		bins[name] = out
	}
	return bins
}

// freePort reserves a loopback port.
func freePort(t *testing.T) int {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	return ln.Addr().(*net.TCPAddr).Port
}

// startServer launches a binary and waits for its HTTP endpoint.
func startServer(t *testing.T, bin string, port int, extra ...string) string {
	t.Helper()
	addr := fmt.Sprintf("127.0.0.1:%d", port)
	base := "http://" + addr
	args := append([]string{"-addr", addr}, extra...)
	cmd := exec.Command(bin, args...)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = cmd.Process.Kill()
		_, _ = cmd.Process.Wait()
	})
	deadline := time.Now().Add(20 * time.Second)
	for {
		resp, err := http.Get(base + "/")
		if err == nil {
			resp.Body.Close()
			return base
		}
		if time.Now().After(deadline) {
			t.Fatalf("server %s never came up on %s", bin, addr)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func runCLI(t *testing.T, bin string, args ...string) string {
	t.Helper()
	out, err := exec.Command(bin, args...).CombinedOutput()
	if err != nil {
		t.Fatalf("mcctl %s: %v\n%s", strings.Join(args, " "), err, out)
	}
	return string(out)
}

func TestBinariesEndToEnd(t *testing.T) {
	bins := buildBinaries(t)

	// Container with built-in services plus a config-file service.
	cfgPath := filepath.Join(t.TempDir(), "services.json")
	cfg := `{
	  "clusters": [{"name": "local", "nodes": [{"name": "n1", "slots": 2}]}],
	  "services": [{
	    "description": {
	      "name": "wordcount",
	      "inputs":  [{"name": "text", "schema": {"type": "string"}}],
	      "outputs": [{"name": "count"}]
	    },
	    "adapter": {
	      "kind": "cluster",
	      "config": {
	        "cluster": "local",
	        "exec": {"kind": "command", "config": {
	          "command": "/bin/sh",
	          "args": ["-c", "printf '%s' \"{text}\" | wc -w | xargs printf '{{\"count\": %s}}'"],
	          "stdoutJSON": true
	        }}
	      }
	    }
	  }]
	}`
	if err := os.WriteFile(cfgPath, []byte(cfg), 0o600); err != nil {
		t.Fatal(err)
	}
	everestPort := freePort(t)
	everest := startServer(t, bins["everest"], everestPort,
		"-builtin", "-config", cfgPath,
		"-base-url", fmt.Sprintf("http://127.0.0.1:%d", everestPort))
	catalogueURL := startServer(t, bins["catalogue"], freePort(t), "-ping", "0")

	// mcctl services lists the deployed services.
	out := runCLI(t, bins["mcctl"], "services", everest)
	for _, want := range []string{"maxima", "solver", "wordcount", "xray-curve"} {
		if !strings.Contains(out, want) {
			t.Errorf("services output lacks %q:\n%s", want, out)
		}
	}

	// mcctl call drives the config-file cluster service.
	out = runCLI(t, bins["mcctl"], "call", everest+"/services/wordcount",
		`{"text": "four words in here"}`)
	var result map[string]any
	if err := json.Unmarshal([]byte(out), &result); err != nil {
		t.Fatalf("call output not JSON: %v\n%s", err, out)
	}
	if result["count"] != 4.0 {
		t.Errorf("count = %v, want 4", result["count"])
	}

	// mcctl call against the built-in CAS service.
	out = runCLI(t, bins["mcctl"], "call", everest+"/services/maxima",
		`{"expr": "trace(invert(hilbert(4)) * hilbert(4))"}`)
	if !strings.Contains(out, `"result": "4"`) {
		t.Errorf("CAS trace = %s, want 4", out)
	}

	// Register and search in the catalogue.
	runCLI(t, bins["mcctl"], "register", catalogueURL,
		everest+"/services/maxima", "cas", "matrix")
	out = runCLI(t, bins["mcctl"], "search", catalogueURL, "algebra")
	if !strings.Contains(out, "maxima") {
		t.Errorf("catalogue search missed the service:\n%s", out)
	}

	// WMS: save a workflow that composes the CAS service, then execute
	// the composite service through mcctl.
	wmsPort := freePort(t)
	wms := startServer(t, bins["wms"], wmsPort,
		"-base-url", fmt.Sprintf("http://127.0.0.1:%d", wmsPort))
	wfPath := filepath.Join(t.TempDir(), "wf.json")
	wf := fmt.Sprintf(`{
	  "name": "traceinv",
	  "blocks": [
	    {"id": "m", "type": "input", "name": "matrix"},
	    {"id": "inv", "type": "service", "service": "%s/services/maxima",
	     "params": {"expr": "invert(A)"}},
	    {"id": "tr", "type": "service", "service": "%s/services/maxima",
	     "params": {"expr": "trace(A)"}},
	    {"id": "out", "type": "output", "name": "trace"}
	  ],
	  "edges": [
	    {"from": {"block": "m", "port": "value"}, "to": {"block": "inv", "port": "A"}},
	    {"from": {"block": "inv", "port": "result"}, "to": {"block": "tr", "port": "A"}},
	    {"from": {"block": "tr", "port": "result"}, "to": {"block": "out", "port": "value"}}
	  ]
	}`, everest, everest)
	if err := os.WriteFile(wfPath, []byte(wf), 0o600); err != nil {
		t.Fatal(err)
	}
	out = runCLI(t, bins["mcctl"], "wf-save", wms, wfPath)
	if !strings.Contains(out, "traceinv") {
		t.Fatalf("wf-save output: %s", out)
	}
	out = runCLI(t, bins["mcctl"], "workflows", wms)
	if !strings.Contains(out, "traceinv") {
		t.Errorf("workflows list: %s", out)
	}
	// trace(inverse(identity(3))) = 3.
	out = runCLI(t, bins["mcctl"], "call", wms+"/services/traceinv",
		`{"matrix": [["1","0","0"],["0","1","0"],["0","0","1"]]}`)
	if !strings.Contains(out, `"trace": "3"`) {
		t.Errorf("composite call = %s, want trace 3", out)
	}

	// File upload / fetch round trip.
	dataPath := filepath.Join(t.TempDir(), "data.bin")
	if err := os.WriteFile(dataPath, []byte("file payload"), 0o600); err != nil {
		t.Fatal(err)
	}
	ref := strings.TrimSpace(runCLI(t, bins["mcctl"], "upload", everest, dataPath))
	out = runCLI(t, bins["mcctl"], "fetch", ref)
	if out != "file payload" {
		t.Errorf("fetch = %q", out)
	}

	// Observability: every started binary serves /metrics; the exposition
	// must be well-formed Prometheus text format and, on the container that
	// executed jobs, reflect the job lifecycle families.
	for _, base := range []string{everest, catalogueURL, wms} {
		resp, err := http.Get(base + "/metrics")
		if err != nil {
			t.Fatalf("GET %s/metrics: %v", base, err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s/metrics = %d (%v)", base, resp.StatusCode, err)
		}
		if err := obs.ValidateExposition(bytes.NewReader(body)); err != nil {
			t.Errorf("%s/metrics is malformed: %v\n%s", base, err, body)
		}
		if base == everest {
			for _, family := range []string{
				"mc_http_requests_total", "mc_jobs_submitted_total",
				"mc_job_queue_wait_seconds_bucket", "mc_job_run_seconds_bucket",
			} {
				if !strings.Contains(string(body), family) {
					t.Errorf("everest /metrics lacks %s", family)
				}
			}
		}
	}
}
