// Command experiments regenerates the evaluation artifacts of the
// MathCloud paper: every table, figure and quantitative claim.
//
// Usage:
//
//	experiments list           # show available experiments
//	experiments all            # run everything in order
//	experiments <id> [<id>..]  # run selected experiments (table1, table2,
//	                           # fig1, fig2, fig3, overhead, dw, xray)
package main

import (
	"fmt"
	"os"
	"time"

	"mathcloud/internal/experiments"
)

func main() {
	args := os.Args[1:]
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	switch args[0] {
	case "list":
		for _, e := range experiments.All() {
			fmt.Printf("%-10s %-10s %s\n", e.ID, e.Artifact, e.Summary)
		}
		return
	case "all":
		for _, e := range experiments.All() {
			run(e)
		}
		return
	default:
		for _, id := range args {
			e, ok := experiments.Lookup(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q (try 'list')\n", id)
				os.Exit(2)
			}
			run(e)
		}
	}
}

func run(e experiments.Experiment) {
	fmt.Printf("==== %s (%s) ====\n\n", e.ID, e.Artifact)
	start := time.Now()
	if err := e.Run(os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %s failed: %v\n", e.ID, err)
		os.Exit(1)
	}
	fmt.Printf("\n[%s completed in %s]\n\n", e.ID, time.Since(start).Round(time.Millisecond))
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: experiments list | all | <id> [<id> ...]")
}
