// Command catalogue runs the MathCloud service catalogue: a web
// application for discovery, monitoring and annotation of computational
// web services.  Services are published by POSTing {"uri", "tags"} to
// /services; the catalogue retrieves their descriptions through the
// unified REST API, indexes them and answers full-text /search queries
// with highlighted snippets.  Published services are pinged periodically
// and marked when unavailable.
package main

import (
	"errors"
	"flag"
	"log"
	"log/slog"
	"net/http"
	"os"
	"time"

	"mathcloud/internal/catalogue"
	"mathcloud/internal/container"
	"mathcloud/internal/journal"
	"mathcloud/internal/obs"
)

func main() {
	addr := flag.String("addr", ":8081", "listen address")
	ping := flag.Duration("ping", time.Minute, "availability ping interval (0 disables)")
	store := flag.String("store", "", "snapshot file: loaded at startup, saved periodically")
	durableDir := flag.String("data-dir", "", "write-ahead journal directory: every registration is durable as it happens (checkpointed periodically)")
	walSync := flag.String("wal-sync", "batch", "journal durability mode: off, batch or always (with -data-dir)")
	flag.Parse()

	obs.SetLogLevel(slog.LevelInfo)

	cat := catalogue.New(catalogue.ClientDescriber{})
	if *durableDir != "" {
		mode, err := journal.ParseSyncMode(*walSync)
		if err != nil {
			log.Fatalf("catalogue: %v", err)
		}
		jl, err := journal.Open(*durableDir, journal.Options{Mode: mode})
		if err != nil {
			log.Fatalf("catalogue: %v", err)
		}
		defer jl.Close()
		if err := cat.AttachJournal(jl); err != nil {
			log.Fatalf("catalogue: %v", err)
		}
		log.Printf("catalogue: recovered %d service(s) from journal %s", cat.Size(), *durableDir)
		go func() {
			ticker := time.NewTicker(time.Minute)
			defer ticker.Stop()
			for range ticker.C {
				if err := cat.Checkpoint(); err != nil {
					log.Printf("catalogue: %v", err)
				}
			}
		}()
	}
	if *store != "" {
		if err := cat.Load(*store); err != nil {
			if os.IsNotExist(errors.Unwrap(err)) {
				log.Printf("catalogue: no snapshot at %s yet", *store)
			} else {
				log.Fatalf("catalogue: %v", err)
			}
		} else {
			log.Printf("catalogue: restored %d service(s) from %s", cat.Size(), *store)
		}
		go func() {
			ticker := time.NewTicker(30 * time.Second)
			defer ticker.Stop()
			for range ticker.C {
				if err := cat.Save(*store); err != nil {
					log.Printf("catalogue: %v", err)
				}
			}
		}()
	}
	if *ping > 0 {
		cat.StartPinger(*ping)
	}
	defer cat.Close()

	log.Printf("catalogue: listening on %s (ping interval %s)", *addr, *ping)
	// The ingress instrumentation supplies request IDs, per-route metrics
	// and structured request logs, replacing the plain logging wrapper.
	srv := &http.Server{
		Addr:              *addr,
		Handler:           container.Instrument(cat.Handler()),
		ReadHeaderTimeout: 10 * time.Second,
	}
	log.Fatal(srv.ListenAndServe())
}
