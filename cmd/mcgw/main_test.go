package main

import (
	"strings"
	"testing"
	"time"
)

func TestParseFlagsDefaults(t *testing.T) {
	cfg, err := parseFlags([]string{"-replicas", "r01=http://a:8080,r02=http://b:8080"})
	if err != nil {
		t.Fatalf("parseFlags: %v", err)
	}
	if cfg.addr != ":8090" {
		t.Fatalf("addr default %q", cfg.addr)
	}
	if cfg.pingInterval != 5*time.Second || cfg.fanout != 5*time.Second {
		t.Fatalf("interval defaults: ping %v fanout %v", cfg.pingInterval, cfg.fanout)
	}
	if cfg.loadInterval != 2*time.Second {
		t.Fatalf("load-interval default %v", cfg.loadInterval)
	}
	if cfg.placement != "p2c" {
		t.Fatalf("placement default %q", cfg.placement)
	}
	if len(cfg.replicas) != 2 ||
		cfg.replicas[0].Name != "r01" || cfg.replicas[0].BaseURL != "http://a:8080" ||
		cfg.replicas[1].Name != "r02" || cfg.replicas[1].BaseURL != "http://b:8080" {
		t.Fatalf("replicas parsed wrong: %+v", cfg.replicas)
	}
}

func TestParseFlagsFull(t *testing.T) {
	cfg, err := parseFlags([]string{
		"-addr", ":9999",
		"-replicas", " r01 = http://a:8080 ",
		"-max-wait", "30s",
		"-ping-interval", "2s",
		"-load-interval", "500ms",
		"-fanout-timeout", "1s",
		"-placement", "rr",
		"-debug-addr", "127.0.0.1:6061",
	})
	if err != nil {
		t.Fatalf("parseFlags: %v", err)
	}
	if cfg.addr != ":9999" || cfg.maxWait != 30*time.Second ||
		cfg.pingInterval != 2*time.Second || cfg.fanout != time.Second ||
		cfg.loadInterval != 500*time.Millisecond || cfg.placement != "rr" ||
		cfg.debugAddr != "127.0.0.1:6061" {
		t.Fatalf("flags parsed wrong: %+v", cfg)
	}
	if len(cfg.replicas) != 1 || cfg.replicas[0].Name != "r01" || cfg.replicas[0].BaseURL != "http://a:8080" {
		t.Fatalf("whitespace not trimmed: %+v", cfg.replicas)
	}
}

func TestParseFlagsErrors(t *testing.T) {
	cases := []struct {
		args []string
		want string
	}{
		{[]string{}, "missing -replicas"},
		{[]string{"-replicas", ""}, "missing -replicas"},
		{[]string{"-replicas", "r01"}, "invalid replica"},
		{[]string{"-replicas", "r01=ftp://a"}, "invalid replica base URL"},
		{[]string{"-replicas", "r01=http://a,r01=http://b"}, "duplicate replica"},
	}
	for _, c := range cases {
		if _, err := parseFlags(c.args); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Fatalf("parseFlags(%v) err %v, want containing %q", c.args, err, c.want)
		}
	}
}
