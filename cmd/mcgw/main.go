// Command mcgw runs the MathCloud federation gateway: a stateless routing
// tier that exposes the unified REST API of a single container while
// fanning requests out over N container replicas (DESIGN.md §5h).
//
// Usage:
//
//	mcgw -addr :8090 -replicas r01=http://host1:8080,r02=http://host2:8080
//
// Each replica must run with the matching identity (everest -replica r01)
// and with -base-url pointing at the gateway, so the absolute URIs replicas
// mint route back through the gateway.
package main

import (
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"mathcloud/internal/gateway"
	"mathcloud/internal/obs"
)

// config is the parsed command line, separated from main so flag handling
// is testable without exec'ing the binary.
type config struct {
	addr         string
	replicas     []gateway.Replica
	maxWait      time.Duration
	pingInterval time.Duration
	loadInterval time.Duration
	fanout       time.Duration
	placement    string
	debugAddr    string
}

// parseFlags parses args (without the program name) into a config.
func parseFlags(args []string) (*config, error) {
	fs := flag.NewFlagSet("mcgw", flag.ContinueOnError)
	addr := fs.String("addr", ":8090", "listen address")
	replicas := fs.String("replicas", "", "comma-separated replica set: name=baseURL[,name=baseURL...]")
	maxWait := fs.Duration("max-wait", 0, "cap on SSE idle streams (0 = default 60s, negative uncapped)")
	pingInterval := fs.Duration("ping-interval", 5*time.Second, "replica health probe interval")
	loadInterval := fs.Duration("load-interval", 2*time.Second, "replica load/memo-index poll interval (negative disables load-aware placement and result-reuse routing)")
	fanout := fs.Duration("fanout-timeout", 5*time.Second, "per-replica deadline for scatter-gather requests and health probes")
	placement := fs.String("placement", "p2c", "submission placement policy: p2c (power-of-two-choices over advertised queue depth) or rr (round-robin)")
	debugAddr := fs.String("debug-addr", "", "optional pprof/metrics listener (e.g. 127.0.0.1:6061)")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	reps, err := parseReplicas(*replicas)
	if err != nil {
		return nil, err
	}
	return &config{
		addr:         *addr,
		replicas:     reps,
		maxWait:      *maxWait,
		pingInterval: *pingInterval,
		loadInterval: *loadInterval,
		fanout:       *fanout,
		placement:    *placement,
		debugAddr:    *debugAddr,
	}, nil
}

// parseReplicas parses the -replicas value: "name=baseURL" pairs separated
// by commas.
func parseReplicas(s string) ([]gateway.Replica, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("missing -replicas (want name=baseURL[,name=baseURL...])")
	}
	var out []gateway.Replica
	seen := make(map[string]bool)
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, base, ok := strings.Cut(part, "=")
		name, base = strings.TrimSpace(name), strings.TrimSpace(base)
		if !ok || name == "" || base == "" {
			return nil, fmt.Errorf("invalid replica %q (want name=baseURL)", part)
		}
		if !strings.HasPrefix(base, "http://") && !strings.HasPrefix(base, "https://") {
			return nil, fmt.Errorf("invalid replica base URL %q (want http:// or https://)", base)
		}
		if seen[name] {
			return nil, fmt.Errorf("duplicate replica name %q", name)
		}
		seen[name] = true
		out = append(out, gateway.Replica{Name: name, BaseURL: base})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("missing -replicas (want name=baseURL[,name=baseURL...])")
	}
	return out, nil
}

func main() {
	cfg, err := parseFlags(os.Args[1:])
	if err != nil {
		log.Fatalf("mcgw: %v", err)
	}
	obs.SetLogLevel(slog.LevelInfo)

	g, err := gateway.New(gateway.Options{
		Replicas:        cfg.replicas,
		PingInterval:    cfg.pingInterval,
		LoadInterval:    cfg.loadInterval,
		FanoutTimeout:   cfg.fanout,
		MaxWaitWindow:   cfg.maxWait,
		PlacementPolicy: cfg.placement,
	})
	if err != nil {
		log.Fatalf("mcgw: %v", err)
	}
	defer g.Close()

	if cfg.debugAddr != "" {
		go func() {
			mux := http.NewServeMux()
			mux.Handle("/metrics", obs.MetricsHandler())
			mux.Handle("/status", obs.StatusHandler())
			log.Printf("mcgw: debug listener on %s", cfg.debugAddr)
			log.Println(http.ListenAndServe(cfg.debugAddr, mux))
		}()
	}

	names := make([]string, 0, len(cfg.replicas))
	for _, r := range cfg.replicas {
		names = append(names, r.Name)
	}
	sort.Strings(names)
	log.Printf("mcgw: routing across %d replica(s) %v on %s", len(names), names, cfg.addr)
	srv := &http.Server{
		Addr:              cfg.addr,
		Handler:           g.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	log.Fatal(srv.ListenAndServe())
}
