package cmd_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// startEverest launches the everest binary and returns the process handle
// together with its base URL, so tests can kill it mid-flight.
func startEverest(t *testing.T, bin string, port int, extra ...string) (*exec.Cmd, string) {
	t.Helper()
	addr := fmt.Sprintf("127.0.0.1:%d", port)
	base := "http://" + addr
	args := append([]string{"-addr", addr}, extra...)
	cmd := exec.Command(bin, args...)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = cmd.Process.Kill()
		_, _ = cmd.Process.Wait()
	})
	deadline := time.Now().Add(20 * time.Second)
	for {
		resp, err := http.Get(base + "/")
		if err == nil {
			resp.Body.Close()
			return cmd, base
		}
		if time.Now().After(deadline) {
			t.Fatalf("everest never came up on %s", addr)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestCrashRecoverySweep is the durability e2e: everest with a write-ahead
// journal accepts a width-64 sweep, is SIGKILLed mid-campaign, and a fresh
// process on the same -data-dir must finish every accepted child with zero
// losses.
func TestCrashRecoverySweep(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e binary test is slow")
	}
	binDir := t.TempDir()
	bin := filepath.Join(binDir, "everest")
	build := exec.Command("go", "build", "-o", bin, "./everest")
	build.Dir = "."
	if output, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build everest: %v\n%s", err, output)
	}

	// One service backed by the command adapter: each child sleeps long
	// enough that the kill lands with most of the campaign non-terminal.
	cfgPath := filepath.Join(t.TempDir(), "services.json")
	cfg := `{
	  "services": [{
	    "description": {
	      "name": "slowsum",
	      "inputs":  [{"name": "a"}, {"name": "b"}],
	      "outputs": [{"name": "sum"}]
	    },
	    "adapter": {
	      "kind": "command",
	      "config": {
	        "command": "/bin/sh",
	        "args": ["-c", "sleep 0.2; printf '{{\"sum\": %d}}' $(( {a} + {b} ))"],
	        "stdoutJSON": true
	      }
	    }
	  }]
	}`
	if err := os.WriteFile(cfgPath, []byte(cfg), 0o600); err != nil {
		t.Fatal(err)
	}
	dataDir := t.TempDir()

	proc, base := startEverest(t, bin, freePort(t),
		"-config", cfgPath, "-data-dir", dataDir, "-wal-sync", "batch", "-workers", "8")

	const width = 64
	axis := make([]int, width)
	for i := range axis {
		axis[i] = i
	}
	spec := map[string]any{
		"template": map[string]any{"a": 1000},
		"axes":     map[string]any{"b": axis},
	}
	body, _ := json.Marshal(spec)
	resp, err := http.Post(base+"/services/slowsum/sweeps", "application/json",
		bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var sweep struct {
		ID    string `json:"id"`
		Width int    `json:"width"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sweep); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep submit = %d", resp.StatusCode)
	}
	if sweep.Width != width {
		t.Fatalf("accepted width = %d, want %d", sweep.Width, width)
	}

	// Let part of the campaign run, then kill -9: no shutdown hooks, no
	// journal close — exactly what the WAL must survive.
	time.Sleep(500 * time.Millisecond)
	if err := proc.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_, _ = proc.Process.Wait()

	_, base2 := startEverest(t, bin, freePort(t),
		"-config", cfgPath, "-data-dir", dataDir, "-wal-sync", "batch", "-workers", "8")

	// Every accepted child must reach a terminal state; none may be lost.
	sweepURL := base2 + "/services/slowsum/sweeps/" + sweep.ID
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Get(sweepURL)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			t.Fatalf("sweep lost across restart: GET = %d\n%s", resp.StatusCode, body)
		}
		var got struct {
			State  string `json:"state"`
			Width  int    `json:"width"`
			Counts struct {
				Waiting   int `json:"waiting"`
				Running   int `json:"running"`
				Done      int `json:"done"`
				Error     int `json:"error"`
				Cancelled int `json:"cancelled"`
			} `json:"counts"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if got.Width != width {
			t.Fatalf("restored width = %d, want %d", got.Width, width)
		}
		terminal := got.Counts.Done + got.Counts.Error + got.Counts.Cancelled
		if got.State != "RUNNING" {
			if terminal != width {
				t.Fatalf("terminal children = %d of %d (counts %+v)", terminal, width, got.Counts)
			}
			if got.State != "DONE" || got.Counts.Done != width {
				t.Fatalf("sweep after recovery = %s counts %+v, want DONE with %d done",
					got.State, got.Counts, width)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("sweep never finished after restart: %s counts %+v", got.State, got.Counts)
		}
		time.Sleep(100 * time.Millisecond)
	}

	// The replay counters prove the second process actually recovered state
	// rather than starting empty.
	mresp, err := http.Get(base2 + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	metrics := string(mbody)
	for _, family := range []string{"mc_recovery_replayed_total", "mc_wal_appends_total"} {
		if !strings.Contains(metrics, family) {
			t.Errorf("restarted everest /metrics lacks %s", family)
		}
	}
	if !strings.Contains(metrics, `mc_recovery_replayed_total{kind="sweep"}`) {
		t.Errorf("no sweep records replayed; metrics:\n%s", metrics)
	}
}
