// Command mcctl is the MathCloud command-line client.  Because every
// service speaks the unified REST API, one small tool can drive any of
// them:
//
//	mcctl services  <container-url>            list deployed services
//	mcctl describe  <service-uri>              show a service description
//	mcctl submit    <service-uri> <json>       submit a request (async)
//	mcctl call      <service-uri> <json>       submit and wait for results
//	mcctl job       <job-uri>                  show job status and results
//	mcctl wait      <job-uri>                  wait for job completion
//	mcctl cancel    <job-uri>                  cancel/delete a job
//	mcctl upload    <container-url> <file>     upload a file resource
//	mcctl fetch     <file-ref>                 download a file resource
//	mcctl search    <catalogue-url> <query>    full-text service search
//	mcctl register  <catalogue-url> <service-uri> [tag...]
//	mcctl workflows <wms-url>                  list stored workflows
//	mcctl wf-save   <wms-url> <file>           save+publish a workflow
//
// Inputs are JSON objects; use '-' to read them from standard input.
// The -token flag attaches a bearer token for secured containers.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"mathcloud/internal/client"
	"mathcloud/internal/core"
	"mathcloud/internal/rest"
)

func main() {
	token := flag.String("token", "", "bearer token for secured services")
	timeout := flag.Duration("timeout", 10*time.Minute, "overall operation timeout")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	cl := client.New()
	cl.Token = *token
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	if err := run(ctx, cl, args); err != nil {
		fmt.Fprintf(os.Stderr, "mcctl: %v\n", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, cl *client.Client, args []string) error {
	cmd, rest := args[0], args[1:]
	need := func(n int, usage string) error {
		if len(rest) < n {
			return fmt.Errorf("usage: mcctl %s %s", cmd, usage)
		}
		return nil
	}
	switch cmd {
	case "services":
		if err := need(1, "<container-url>"); err != nil {
			return err
		}
		names, err := cl.ServiceNames(ctx, rest[0])
		if err != nil {
			return err
		}
		for _, n := range names {
			fmt.Println(n)
		}
		return nil
	case "describe":
		if err := need(1, "<service-uri>"); err != nil {
			return err
		}
		desc, err := cl.Service(rest[0]).Describe(ctx)
		if err != nil {
			return err
		}
		return printJSON(desc)
	case "submit", "call":
		if err := need(2, "<service-uri> <json|->"); err != nil {
			return err
		}
		inputs, err := readValues(rest[1])
		if err != nil {
			return err
		}
		svc := cl.Service(rest[0])
		if cmd == "call" {
			out, err := svc.Call(ctx, inputs)
			if err != nil {
				return err
			}
			return printJSON(out)
		}
		job, err := svc.Submit(ctx, inputs, 0)
		if err != nil {
			return err
		}
		return printJSON(job)
	case "job":
		if err := need(1, "<job-uri>"); err != nil {
			return err
		}
		job, err := cl.Service("").Job(ctx, rest[0])
		if err != nil {
			return err
		}
		return printJSON(job)
	case "wait":
		if err := need(1, "<job-uri>"); err != nil {
			return err
		}
		job, err := cl.Service("").Wait(ctx, rest[0])
		if err != nil {
			return err
		}
		return printJSON(job)
	case "cancel":
		if err := need(1, "<job-uri>"); err != nil {
			return err
		}
		job, err := cl.Service("").Cancel(ctx, rest[0])
		if err != nil {
			return err
		}
		return printJSON(job)
	case "upload":
		if err := need(2, "<container-url> <file>"); err != nil {
			return err
		}
		f, err := os.Open(rest[1])
		if err != nil {
			return err
		}
		defer f.Close()
		ref, err := cl.UploadFile(ctx, rest[0], f)
		if err != nil {
			return err
		}
		fmt.Println(ref)
		return nil
	case "fetch":
		if err := need(1, "<file-ref>"); err != nil {
			return err
		}
		ref := rest[0]
		if !strings.HasPrefix(ref, core.FileRefPrefix) {
			ref = core.FileRef(ref)
		}
		data, err := cl.FetchFile(ctx, ref)
		if err != nil {
			return err
		}
		_, err = os.Stdout.Write(data)
		return err
	case "search":
		if err := need(2, "<catalogue-url> <query>"); err != nil {
			return err
		}
		uri := strings.TrimRight(rest[0], "/") + "/search?q=" +
			strings.ReplaceAll(strings.Join(rest[1:], " "), " ", "+")
		return getAndPrint(ctx, uri)
	case "register":
		if err := need(2, "<catalogue-url> <service-uri> [tag...]"); err != nil {
			return err
		}
		body, err := json.Marshal(map[string]any{"uri": rest[1], "tags": rest[2:]})
		if err != nil {
			return err
		}
		return postAndPrint(ctx, strings.TrimRight(rest[0], "/")+"/services", body)
	case "workflows":
		if err := need(1, "<wms-url>"); err != nil {
			return err
		}
		return getAndPrint(ctx, strings.TrimRight(rest[0], "/")+"/workflows")
	case "wf-save":
		if err := need(2, "<wms-url> <file>"); err != nil {
			return err
		}
		data, err := os.ReadFile(rest[1])
		if err != nil {
			return err
		}
		return postAndPrint(ctx, strings.TrimRight(rest[0], "/")+"/workflows", data)
	default:
		usage()
		return fmt.Errorf("unknown command %q", cmd)
	}
}

func readValues(arg string) (core.Values, error) {
	var data []byte
	if arg == "-" {
		var err error
		data, err = io.ReadAll(os.Stdin)
		if err != nil {
			return nil, err
		}
	} else {
		data = []byte(arg)
	}
	var v core.Values
	if err := json.Unmarshal(data, &v); err != nil {
		return nil, fmt.Errorf("invalid input JSON: %w", err)
	}
	return v, nil
}

func printJSON(v any) error {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

func getAndPrint(ctx context.Context, uri string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, uri, nil)
	if err != nil {
		return err
	}
	return doAndPrint(req)
}

func postAndPrint(ctx context.Context, uri string, body []byte) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, uri, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	return doAndPrint(req)
}

func doAndPrint(req *http.Request) error {
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, rest.MaxBodyBytes))
	if err != nil {
		return err
	}
	if resp.StatusCode >= 400 {
		return fmt.Errorf("server returned %s: %s", resp.Status, strings.TrimSpace(string(data)))
	}
	_, err = os.Stdout.Write(data)
	return err
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: mcctl [-token T] <command> [args]
commands: services describe submit call job wait cancel upload fetch
          search register workflows wf-save`)
}
