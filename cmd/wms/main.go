// Command wms runs the MathCloud workflow management service.  Workflow
// documents (JSON) POSTed to /workflows are validated against the live
// descriptions of the services they reference, stored, and published as
// composite services; executing a workflow is then an ordinary request to
// its composite service through the unified REST API.  An /editor page
// offers the browser-based editing surface.
package main

import (
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"time"

	"mathcloud/internal/adapter"
	"mathcloud/internal/container"
	"mathcloud/internal/obs"
	"mathcloud/internal/workflow"
)

func main() {
	addr := flag.String("addr", ":8082", "listen address")
	workers := flag.Int("workers", 8, "job handler pool size")
	baseURL := flag.String("base-url", "", "externally visible base URL (default: http://localhost<addr>)")
	debugAddr := flag.String("debug-addr", "", "optional pprof/metrics listener (e.g. 127.0.0.1:6061)")
	memoEntries := flag.Int("memo-entries", 0, "computation cache entry bound (0 = default 4096, negative disables)")
	memoBytes := flag.Int64("memo-bytes", 0, "computation cache byte bound (0 = default 256 MiB, negative disables)")
	batchMax := flag.Int("batch", 0, "micro-batch size cap for batch-capable services (0 = default 16, <2 disables)")
	sweepWidth := flag.Int("sweep-width", 0, "maximum child jobs per parameter sweep (0 = default 10000, negative uncapped)")
	maxWait := flag.Duration("max-wait", 0, "cap on ?wait= long-poll windows and SSE idle streams (0 = default 60s, negative uncapped)")
	flag.Parse()

	obs.SetLogLevel(slog.LevelInfo)

	registry := adapter.NewRegistry()
	c, err := container.New(container.Options{
		Workers:        *workers,
		Adapters:       registry,
		DebugAddr:      *debugAddr,
		MemoMaxEntries: *memoEntries,
		MemoMaxBytes:   *memoBytes,
		BatchMaxSize:   *batchMax,
		MaxSweepWidth:  *sweepWidth,
		MaxWaitWindow:  *maxWait,
	})
	if err != nil {
		log.Fatalf("wms: %v", err)
	}
	defer c.Close()

	// Workflow blocks targeting services in this very container dispatch
	// in-process; remote blocks go over HTTP.
	invoker := workflow.NewLocalInvoker(&workflow.HTTPInvoker{})
	wms := workflow.NewWMS(c, registry, invoker, invoker)

	if *baseURL != "" {
		c.SetBaseURL(*baseURL)
	} else {
		c.SetBaseURL(fmt.Sprintf("http://localhost%s", *addr))
	}
	log.Printf("wms: listening on %s", *addr)
	// The WMS handler carries its own ingress instrumentation (request
	// IDs, metrics, structured logs), so no extra logging wrapper.
	srv := &http.Server{
		Addr:              *addr,
		Handler:           wms.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	log.Fatal(srv.ListenAndServe())
}
