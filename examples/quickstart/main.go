// Quickstart: deploy a computational web service in an in-process Everest
// container, discover it through the unified REST API, and call it both
// synchronously and asynchronously — the five-minute tour of the
// platform's public API.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"strings"
	"time"

	"mathcloud/internal/adapter"
	"mathcloud/internal/client"
	"mathcloud/internal/container"
	"mathcloud/internal/core"
	"mathcloud/internal/jsonschema"
	"mathcloud/internal/platform"
)

func main() {
	// 1. Start a local platform deployment (container + HTTP listener).
	d, err := platform.StartLocal(platform.Options{Workers: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer d.Close()
	fmt.Printf("Everest container listening at %s\n\n", d.BaseURL)

	// 2. Publish an application as a service.  A Script-adapter service
	//    needs no Go code at all — just a configuration, exactly like
	//    the paper's "service development reduces to writing a service
	//    configuration file".
	statsCfg := container.ServiceConfig{
		Description: core.ServiceDescription{
			Name:        "stats",
			Title:       "Descriptive statistics",
			Description: "Computes mean, min and max of a list of numbers.",
			Inputs: []core.Param{{
				Name:   "values",
				Schema: jsonschema.MustParse(`{"type":"array","items":{"type":"number"},"minItems":1}`),
			}},
			Outputs: []core.Param{{Name: "mean"}, {Name: "min"}, {Name: "max"}},
			Tags:    []string{"statistics", "demo"},
		},
		Adapter: container.AdapterSpec{
			Kind: "script",
			Config: mustJSON(adapter.ScriptConfig{Script: `
				out.mean = sum(in.values) / len(in.values)
				out.min = min(in.values)
				out.max = max(in.values)
			`}),
		},
	}
	if err := d.Container.Deploy(statsCfg); err != nil {
		log.Fatal(err)
	}

	ctx := context.Background()
	cl := client.New()

	// 3. Introspect: GET the service description.
	svc := cl.Service(d.BaseURL + "/services/stats")
	desc, err := svc.Describe(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Service %q (%s)\n", desc.Name, desc.Title)
	for _, p := range desc.Inputs {
		fmt.Printf("  input  %-8s %s\n", p.Name, p.Schema.Describe())
	}
	for _, p := range desc.Outputs {
		fmt.Printf("  output %-8s\n", p.Name)
	}

	// 4. Synchronous call: one line for the common case.
	out, err := svc.Call(ctx, core.Values{"values": []any{3.0, 1.0, 4.0, 1.0, 5.0}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nCall(3,1,4,1,5) -> mean=%v min=%v max=%v\n",
		out["mean"], out["min"], out["max"])

	// 5. Asynchronous lifecycle: submit, observe the job resource, wait.
	job, err := svc.Submit(ctx, core.Values{"values": []any{10.0, 20.0}}, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nSubmitted job %s (state %s)\n", job.ID[:8], job.State)
	final, err := svc.Wait(ctx, job.URI)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Job finished: state %s, outputs %v, took %s\n",
		final.State, final.Outputs, final.Finished.Sub(final.Created).Round(time.Millisecond))

	// 6. File resources: large parameters travel as files, not JSON.
	ref, err := cl.UploadFile(ctx, d.BaseURL, strings.NewReader("a large dataset"))
	if err != nil {
		log.Fatal(err)
	}
	data, err := cl.FetchFile(ctx, ref)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nUploaded a file resource and read back %d bytes: %q\n", len(data), data)
	fmt.Println("\nQuickstart complete.")
}

func mustJSON(v any) []byte {
	data, err := json.Marshal(v)
	if err != nil {
		log.Fatal(err)
	}
	return data
}
