// The X-ray diffractometry application: interpreting scattering data of
// carbonaceous films by fitting a mixture of carbon nanostructures.  The
// example deploys curve services routed through a simulated grid
// infrastructure (the original application computed scattering curves on
// the European Grid Infrastructure) and a fit service backed by a
// simulated TORQUE cluster, then runs the full pipeline: parallel curve
// computation, three optimization solvers, class-distribution verdict.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"

	"mathcloud/internal/container"
	"mathcloud/internal/grid"
	"mathcloud/internal/platform"
	"mathcloud/internal/scatter"
	"mathcloud/internal/torque"
	"mathcloud/internal/workflow"
)

func main() {
	d, err := platform.StartLocal(platform.Options{Workers: 16})
	if err != nil {
		log.Fatal(err)
	}
	defer d.Close()
	scatter.RegisterFuncs()

	// The computing infrastructure: two grid sites and one HPC cluster.
	var sites []*grid.Site
	for _, name := range []string{"grid-site-a", "grid-site-b"} {
		cluster, err := torque.New(name, []torque.NodeSpec{{Name: name + "-n1", Slots: 4}}, nil)
		if err != nil {
			log.Fatal(err)
		}
		defer cluster.Close()
		sites = append(sites, &grid.Site{
			Name: name, Cluster: cluster, VOs: []string{"mathcloud"}, Reliability: 0.9,
		})
	}
	infra, err := grid.New(sites, 11)
	if err != nil {
		log.Fatal(err)
	}
	d.Registry.Register("grid", grid.NewAdapterFactory(infra, d.Registry))

	hpc, err := torque.New("hpc", []torque.NodeSpec{{Name: "hpc-n1", Slots: 8}}, nil)
	if err != nil {
		log.Fatal(err)
	}
	defer hpc.Close()
	clusters := torque.NewClusterRegistry()
	clusters.Add(hpc)
	d.Registry.Register("cluster", torque.NewAdapterFactory(clusters, d.Registry))

	// Curve services run on the grid; the fit service on the cluster.
	retries := 5
	var curveURIs []string
	for i := 1; i <= 2; i++ {
		cfg := scatter.CurveServiceConfig(fmt.Sprintf("curve-%d", i))
		gridCfg, _ := json.Marshal(grid.AdapterConfig{
			VO: "mathcloud", Retries: &retries,
			Exec: torque.ExecConfig{Kind: "native", Config: cfg.Adapter.Config},
		})
		cfg.Adapter = container.AdapterSpec{Kind: "grid", Config: gridCfg}
		if err := d.Container.Deploy(cfg); err != nil {
			log.Fatal(err)
		}
		curveURIs = append(curveURIs, d.Container.ServiceURI(cfg.Description.Name))
	}
	fitCfg := scatter.FitServiceConfig("fit")
	clusterCfg, _ := json.Marshal(torque.AdapterConfig{
		Cluster: "hpc", Slots: 2,
		Exec: torque.ExecConfig{Kind: "native", Config: fitCfg.Adapter.Config},
	})
	fitCfg.Adapter = container.AdapterSpec{Kind: "cluster", Config: clusterCfg}
	if err := d.Container.Deploy(fitCfg); err != nil {
		log.Fatal(err)
	}

	// The "measured" film: a synthetic toroid-dominated mixture (the
	// tokamak T-10 films are not available; the substitution preserves
	// the pipeline and the expected verdict).
	lib := scatter.Library()
	q := scatter.QGrid(5, 70, 60)
	curves := make([][]float64, len(lib))
	for i, s := range lib {
		curves[i] = scatter.Curve(s, q, 400)
	}
	obs := scatter.Synthesize(lib, q, curves, 0.01, 42)
	fmt.Printf("Structure library: %d variants over classes %v\n", len(lib), scatter.Classes())
	fmt.Printf("Synthetic observation: %d q-points in [%.0f, %.0f] nm⁻¹\n\n",
		len(obs.Q), obs.Q[0], obs.Q[len(obs.Q)-1])

	inv := &workflow.HTTPInvoker{}
	res, err := scatter.RunPipeline(context.Background(), inv,
		curveURIs, d.Container.ServiceURI("fit"), lib, obs, 400, 3000)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Solver cross-check:")
	for i, f := range res.Fits {
		marker := " "
		if i == res.Best {
			marker = "*"
		}
		fmt.Printf("  %s %-22s chi2 = %.3e\n", marker, f.Solver, f.Chi2)
	}
	fmt.Println("\nFitted class distribution (best solver):")
	planted := scatter.ClassShare(lib, obs.TrueWeights)
	for _, cls := range scatter.Classes() {
		fmt.Printf("  %-8s fitted %.2f   planted %.2f\n", cls, res.Shares[cls], planted[cls])
	}
	fmt.Printf("\nDominant class: %s (share %.2f)\n", res.Dominant, res.DominantShare)
	fmt.Println("Paper's finding reproduced: low-aspect-ratio toroids prevail in the film.")
}
