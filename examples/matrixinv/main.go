// The paper's flagship application: error-free inversion of an
// ill-conditioned Hilbert matrix by a distributed workflow over CAS
// services.  The example deploys a pool of four computer-algebra services,
// builds the 4-block Schur-complement workflow, publishes it as a
// composite service through the workflow management system, executes it,
// verifies the result exactly, and compares against the serial one-service
// inversion — a miniature of the paper's Table 2.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"mathcloud/internal/cas"
	"mathcloud/internal/client"
	"mathcloud/internal/core"
	"mathcloud/internal/matrixinv"
	"mathcloud/internal/platform"
	"mathcloud/internal/ratmat"
	"mathcloud/internal/workflow"
)

func main() {
	const n = 80 // Hilbert order; cond(H_80) ~ 10^120 — hopeless in floats

	d, err := platform.StartLocal(platform.Options{Workers: 16, WithWMS: true})
	if err != nil {
		log.Fatal(err)
	}
	defer d.Close()

	// A pool of four CAS ("Maxima") services.
	// Each CAS service simulates hardware 4x slower than this machine
	// (see adapter.NativeConfig.SimulatedSlowdown), so that the four
	// services genuinely overlap like the paper's separate Maxima hosts.
	names, err := cas.DeploySlow(d.Container, "maxima", 4, 4)
	if err != nil {
		log.Fatal(err)
	}
	uris := make([]string, len(names))
	for i, name := range names {
		uris[i] = d.Container.ServiceURI(name)
	}
	fmt.Printf("Deployed CAS services: %v\n\n", names)

	ctx := context.Background()
	inv := &workflow.HTTPInvoker{}
	h := ratmat.Hilbert(n)
	want := ratmat.HilbertInverse(n)

	// Serial: one service call, like running Maxima directly.
	start := time.Now()
	serial, err := matrixinv.InvertSerial(ctx, inv, uris[0], h)
	if err != nil {
		log.Fatal(err)
	}
	serialTime := time.Since(start)
	fmt.Printf("Serial inversion (1 service):          %8s  exact: %v\n",
		serialTime.Round(time.Millisecond), serial.Equal(want))

	// Parallel: build the block workflow and publish it as a composite
	// service via the WMS.
	wf, err := matrixinv.BuildBlockWorkflow("hilbert-inverse", uris, n, n/2)
	if err != nil {
		log.Fatal(err)
	}
	if err := d.WMS.Save(wf); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nPublished workflow %q (%d blocks, %d edges) as %s\n",
		wf.Name, len(wf.Blocks), len(wf.Edges), d.WMS.ServiceURI(wf.Name))

	svc := client.New().Service(d.WMS.ServiceURI(wf.Name))
	start = time.Now()
	job, err := svc.Submit(ctx, core.Values{"matrix": h.ToJSON()}, 0)
	if err != nil {
		log.Fatal(err)
	}
	final, err := svc.Wait(ctx, job.URI)
	if err != nil {
		log.Fatal(err)
	}
	parallelTime := time.Since(start)
	if final.State != core.StateDone {
		log.Fatalf("workflow job failed: %s", final.Error)
	}
	result, err := ratmat.FromJSON(final.Outputs["inverse"])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Parallel inversion (4-block workflow): %8s  exact: %v\n",
		parallelTime.Round(time.Millisecond), result.Equal(want))
	fmt.Printf("Speedup: %.2f\n", float64(serialTime)/float64(parallelTime))

	// The punchline of "error-free": the residual is exactly zero, while
	// float64 inversion of the same matrix is off by astronomical
	// amounts at this condition number.
	res, err := ratmat.ResidualNorm(h, result)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmax |H·H⁻¹ − I| = %g (exact arithmetic; entries up to %d bits)\n",
		res, result.MaxBitLen())
	fmt.Printf("Per-block states reported during the run: %d blocks all %s\n",
		len(final.Blocks), core.StateDone)
}
