// Campaign workloads: submitting a whole parameter sweep as one request.
// The paper's flagship applications are campaigns — the diffractometry fit
// drives thousands of near-identical scattering simulations — and this
// example runs one such campaign against the built-in X-ray curve service:
// one POST expands 200 sphere geometries into 200 child jobs, the adapter
// micro-batches them, and a single cheap status resource aggregates the
// whole campaign.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"mathcloud/internal/client"
	"mathcloud/internal/core"
	"mathcloud/internal/platform"
	"mathcloud/internal/scatter"
)

func main() {
	d, err := platform.StartLocal(platform.Options{Workers: 8})
	if err != nil {
		log.Fatal(err)
	}
	defer d.Close()
	scatter.RegisterFuncs()
	if err := d.Container.Deploy(scatter.CurveServiceConfig("curve")); err != nil {
		log.Fatal(err)
	}

	// The campaign: one shared q grid in the template, 200 sphere radii on
	// the axis.  Everything here is one HTTP POST.
	q := make([]any, 64)
	for i := range q {
		q[i] = 0.05 + 0.005*float64(i)
	}
	const width = 200
	radii := make([]any, width)
	for i := range radii {
		radii[i] = map[string]any{"class": "sphere", "r": 0.8 + 0.01*float64(i)}
	}
	spec := &core.SweepSpec{
		Template: core.Values{"q": q, "samples": 48.0},
		Axes:     map[string][]any{"structure": radii},
	}

	ctx := context.Background()
	svc := client.New().Service(d.Container.ServiceURI("curve"))
	start := time.Now()
	sweep, err := svc.SubmitSweep(ctx, spec, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("submitted sweep %s: %d child jobs in one request\n", sweep.ID, sweep.Width)

	// The aggregate status resource is O(1) in the width, so polling it is
	// as cheap as polling a single job.
	for !sweep.State.Terminal() {
		time.Sleep(100 * time.Millisecond)
		if sweep, err = svc.Sweep(ctx, sweep.URI); err != nil {
			log.Fatal(err)
		}
		c := sweep.Counts
		fmt.Printf("  waiting=%d running=%d done=%d error=%d\n",
			c.Waiting, c.Running, c.Done, c.Error)
	}
	fmt.Printf("campaign %s in %v (%.0f jobs/s)\n",
		sweep.State, time.Since(start).Round(time.Millisecond),
		float64(sweep.Width)/time.Since(start).Seconds())
	if sweep.State != core.StateDone {
		log.Fatalf("campaign failed: %s", sweep.FirstError)
	}

	// Results page through the child collection in point order.
	jobs, total, err := svc.SweepJobs(ctx, sweep.URI, core.StateDone, 3, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("first %d of %d curves:\n", len(jobs), total)
	for _, j := range jobs {
		curve := j.Outputs["curve"].([]any)
		fmt.Printf("  r=%.2f nm: I(q0)=%.1f over %d samples\n",
			j.Inputs["structure"].(map[string]any)["r"], curve[0], len(curve))
	}

	// Re-running an overlapping campaign executes only the new points: the
	// sweep shares the container's computation cache with every other
	// submission path.  (The curve service is deterministic only in its
	// sampled approximation, so this second sweep demonstrates the wait
	// helper rather than cache hits; flag a service "deterministic" to get
	// memoized overlap.)
	again, err := svc.SubmitSweep(ctx, spec, 0)
	if err != nil {
		log.Fatal(err)
	}
	done, err := svc.WaitSweep(ctx, again.URI)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("re-run: %s with %d done\n", done.State, done.Counts.Done)
}
