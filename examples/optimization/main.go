// Distributed optimization modelling, the paper's third application:
// an AMPL model is translated and solved by an optimization solver
// service, and the Dantzig–Wolfe decomposition of a multicommodity
// transportation problem dispatches its independent pricing subproblems
// to a pool of solver services.
package main

import (
	"context"
	"fmt"
	"log"

	"mathcloud/internal/ampl"
	"mathcloud/internal/client"
	"mathcloud/internal/core"
	"mathcloud/internal/dw"
	"mathcloud/internal/platform"
	"mathcloud/internal/simplex"
	"mathcloud/internal/workflow"
)

// A small product-mix model in the supported AMPL subset.
const productionModel = `
set PRODUCTS;
set RESOURCES;
param profit {PRODUCTS};
param avail {RESOURCES};
param use {RESOURCES, PRODUCTS};
var x {PRODUCTS} >= 0;
maximize TotalProfit: sum {p in PRODUCTS} profit[p] * x[p];
subject to Capacity {r in RESOURCES}:
    sum {p in PRODUCTS} use[r,p] * x[p] <= avail[r];
data;
set PRODUCTS := doors windows;
set RESOURCES := plant1 plant2 plant3;
param profit := doors 3 windows 5;
param avail := plant1 4 plant2 12 plant3 18;
param use :=
    plant1 doors 1  plant1 windows 0
    plant2 doors 0  plant2 windows 2
    plant3 doors 3  plant3 windows 2;
end;
`

func main() {
	d, err := platform.StartLocal(platform.Options{Workers: 8})
	if err != nil {
		log.Fatal(err)
	}
	defer d.Close()
	ampl.RegisterFuncs()

	// A pool of solver services plus one translator.
	var solverURIs []string
	for i := 1; i <= 2; i++ {
		name := fmt.Sprintf("solver-%d", i)
		if err := d.Container.Deploy(ampl.SolverServiceConfig(name)); err != nil {
			log.Fatal(err)
		}
		solverURIs = append(solverURIs, d.Container.ServiceURI(name))
	}
	if err := d.Container.Deploy(ampl.TranslatorServiceConfig("translator")); err != nil {
		log.Fatal(err)
	}

	ctx := context.Background()
	cl := client.New()

	// Phase 1: translate only — inspect the instantiated LP.
	out, err := cl.Service(d.Container.ServiceURI("translator")).Call(ctx,
		core.Values{"model": productionModel})
	if err != nil {
		log.Fatal(err)
	}
	vars, _ := out["variables"].([]any)
	cons, _ := out["constraints"].([]any)
	fmt.Printf("Translator: %s LP with %d variables, %d constraints (vars %v)\n\n",
		out["sense"], len(vars), len(cons), vars)

	// Phase 2: solve through a solver service.
	out, err = cl.Service(solverURIs[0]).Call(ctx, core.Values{"model": productionModel})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Solver: status %v, objective %v\n", out["status"], out["objective"])
	if sol, ok := out["solution"].(map[string]any); ok {
		for _, name := range []string{"x[doors]", "x[windows]"} {
			fmt.Printf("  %-12s = %v\n", name, sol[name])
		}
	}

	// Phase 3: Dantzig–Wolfe over the solver pool.
	fmt.Println("\nDantzig-Wolfe decomposition (4 sources x 4 sinks x 3 commodities):")
	p := dw.Generate(4, 4, 3, 99)
	pool := dw.NewPool(
		&dw.ServiceSolver{Invoker: &workflow.HTTPInvoker{}, URI: solverURIs[0]},
		&dw.ServiceSolver{Invoker: &workflow.HTTPInvoker{}, URI: solverURIs[1]},
	)
	res, err := dw.Decompose(ctx, p, pool, dw.Options{})
	if err != nil {
		log.Fatal(err)
	}
	if err := p.Validate(res.Flow); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  optimum %s after %d rounds, %d subproblems over %d services\n",
		res.Objective.RatString(), res.Rounds, res.SubproblemsSolved, pool.Size())

	// Cross-check against the monolithic LP.
	lp, _ := p.DirectLP()
	direct, err := simplex.Solve(lp)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  monolithic LP agrees: %v (objective %s)\n",
		res.Objective.Cmp(direct.Objective) == 0, direct.Objective.RatString())
	fmt.Println("\nCapacitated bottleneck arcs:", len(p.CapacitatedArcs()))
}
