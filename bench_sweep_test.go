// Campaign-throughput benchmarks (DESIGN.md §5f): a width-1k parameter
// sweep submitted as one request versus serial one-at-a-time submission
// through the same REST API, plus the O(1) aggregate-status read.  Numbers
// land in BENCH_6.json.
package mathcloud_test

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"mathcloud/internal/adapter"
	"mathcloud/internal/client"
	"mathcloud/internal/container"
	"mathcloud/internal/core"
)

const campaignWidth = 1000

// campaignSpin burns a deterministic amount of CPU and returns a value the
// compiler cannot discard.
func campaignSpin(n int, seed float64) float64 {
	acc := seed
	for i := 0; i < n; i++ {
		acc = acc*1.0000001 + 1e-9
	}
	return acc
}

// registerCampaignFuncs registers the synthetic campaign adapter.  Every
// invocation pays a fixed setup cost (standing in for the process/session
// startup of a CAS or solver run) plus small per-point work; the batch form
// pays the setup once per batch — the amortization the paper's campaign
// applications rely on.
var registerCampaignFuncs = sync.OnceFunc(func() {
	const setup, perPoint = 200_000, 10_000
	adapter.RegisterFunc("benchsweep.point", func(_ context.Context, in core.Values) (core.Values, error) {
		x, _ := in["x"].(float64)
		return core.Values{"y": campaignSpin(setup, 1) + campaignSpin(perPoint, x)}, nil
	})
	adapter.RegisterBatchFunc("benchsweep.point", func(_ context.Context, batch []core.Values) ([]core.Values, []error) {
		base := campaignSpin(setup, 1)
		outs := make([]core.Values, len(batch))
		errs := make([]error, len(batch))
		for i, in := range batch {
			x, _ := in["x"].(float64)
			outs[i] = core.Values{"y": base + campaignSpin(perPoint, x)}
		}
		return outs, errs
	})
})

// startCampaignBench brings up a container with the synthetic campaign
// service behind a real listener and returns a client handle to it.
func startCampaignBench(b *testing.B) *client.Service {
	b.Helper()
	registerCampaignFuncs()
	c, err := container.New(container.Options{Workers: 8, BatchMaxSize: 16})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(c.Close)
	if err := c.Deploy(container.ServiceConfig{
		Description: core.ServiceDescription{
			Name: "campaign", Version: "1", Batch: true,
			Inputs:  []core.Param{{Name: "x"}},
			Outputs: []core.Param{{Name: "y"}},
		},
		Adapter: container.AdapterSpec{Kind: "native",
			Config: json.RawMessage(`{"function": "benchsweep.point"}`)},
	}); err != nil {
		b.Fatal(err)
	}
	srv := httptest.NewServer(c.Handler())
	b.Cleanup(srv.Close)
	c.SetBaseURL(srv.URL)
	return client.New().Service(c.ServiceURI("campaign"))
}

// BenchmarkCampaignSerial1k is the baseline: 1000 near-identical points
// submitted one at a time through the REST API, each paying its own HTTP
// round trip, submission path and adapter setup.
func BenchmarkCampaignSerial1k(b *testing.B) {
	svc := startCampaignBench(b)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < campaignWidth; j++ {
			x := float64(i*campaignWidth + j)
			if _, err := svc.Call(ctx, core.Values{"x": x}); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N*campaignWidth)/b.Elapsed().Seconds(), "jobs/s")
}

// BenchmarkCampaignSweep1k is the same 1000 points as one sweep: a single
// POST expands them through the bulk submission path and micro-batched
// adapters, and one long-polled status GET observes completion.
func BenchmarkCampaignSweep1k(b *testing.B) {
	svc := startCampaignBench(b)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		points := make([]core.Values, campaignWidth)
		for j := range points {
			points[j] = core.Values{"x": float64(i*campaignWidth + j)}
		}
		sweep, err := svc.SubmitSweep(ctx, &core.SweepSpec{Points: points}, 0)
		if err != nil {
			b.Fatal(err)
		}
		done, err := svc.WaitSweep(ctx, sweep.URI)
		if err != nil {
			b.Fatal(err)
		}
		if done.Counts.Done != campaignWidth {
			b.Fatalf("campaign finished %s with %+v", done.State, done.Counts)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N*campaignWidth)/b.Elapsed().Seconds(), "jobs/s")
}

// BenchmarkSweepStatus reads the aggregate status of a finished sweep at
// two widths; allocations must not grow with width (the O(1) status
// contract of DESIGN.md §5f).
func BenchmarkSweepStatus(b *testing.B) {
	registerCampaignFuncs()
	run := func(b *testing.B, width int) {
		c, err := container.New(container.Options{Workers: 8, BatchMaxSize: 16})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(c.Close)
		if err := c.Deploy(container.ServiceConfig{
			Description: core.ServiceDescription{
				Name: "campaign", Version: "1", Batch: true,
				Inputs:  []core.Param{{Name: "x"}},
				Outputs: []core.Param{{Name: "y"}},
			},
			Adapter: container.AdapterSpec{Kind: "native",
				Config: json.RawMessage(`{"function": "benchsweep.point"}`)},
		}); err != nil {
			b.Fatal(err)
		}
		points := make([]core.Values, width)
		for j := range points {
			points[j] = core.Values{"x": float64(j)}
		}
		sweep, err := c.Jobs().SubmitSweep(context.Background(), "campaign", &core.SweepSpec{Points: points}, "")
		if err != nil {
			b.Fatal(err)
		}
		if _, err := c.Jobs().WaitSweep(context.Background(), sweep.ID, 2*time.Minute); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := c.Jobs().GetSweep(sweep.ID); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("width-16", func(b *testing.B) { run(b, 16) })
	b.Run("width-1024", func(b *testing.B) { run(b, 1024) })
}
