// Result-reuse benchmarks for the computation cache (DESIGN.md §5e): the
// repeat-submit fast path, coalescing under concurrency, content-addressed
// file dedup and workflow block memoization.  Numbers land in BENCH_5.json.
package mathcloud_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"testing"
	"time"

	"mathcloud/internal/adapter"
	"mathcloud/internal/container"
	"mathcloud/internal/core"
	"mathcloud/internal/workflow"
)

// deployBenchWork deploys a service whose adapter does a nominal unit of
// numeric work (~1e6 flops), so the cold path reflects a cheap but real
// computation rather than pure queue overhead.
func deployBenchWork(b *testing.B, c *container.Container, name string, deterministic bool) {
	b.Helper()
	fn := "benchcache." + name
	adapter.RegisterFunc(fn, func(_ context.Context, in core.Values) (core.Values, error) {
		x, _ := in["x"].(float64)
		acc := x
		for i := 0; i < 1_000_000; i++ {
			acc = acc*1.0000001 + 1e-9
		}
		return core.Values{"y": acc}, nil
	})
	if err := c.Deploy(container.ServiceConfig{
		Description: core.ServiceDescription{
			Name:          name,
			Deterministic: deterministic,
			Inputs:        []core.Param{{Name: "x"}},
			Outputs:       []core.Param{{Name: "y"}},
		},
		Adapter: container.AdapterSpec{Kind: "native",
			Config: json.RawMessage(fmt.Sprintf(`{"function": %q}`, fn))},
	}); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkRepeatSubmit compares the same repeated computation without and
// with the computation cache: "cold" executes the adapter every time (no
// deterministic flag), "warm" is served from the memo table after the first
// run.  The warm/cold ratio is the headline result-reuse speedup.
func BenchmarkRepeatSubmit(b *testing.B) {
	run := func(b *testing.B, service string) {
		d := startBench(b, 8)
		deployBenchWork(b, d.Container, service, service == "det")
		jobs := d.Container.Jobs()
		// Prime: the first submission always executes.
		job, err := jobs.Submit(service, core.Values{"x": 1.0}, "")
		if err != nil {
			b.Fatal(err)
		}
		if _, err := jobs.Wait(context.Background(), job.ID, 30*time.Second); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			job, err := jobs.Submit(service, core.Values{"x": 1.0}, "")
			if err != nil {
				b.Fatal(err)
			}
			if !job.State.Terminal() {
				if _, err := jobs.Wait(context.Background(), job.ID, 30*time.Second); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.Run("cold", func(b *testing.B) { run(b, "plain") })
	b.Run("warm", func(b *testing.B) { run(b, "det") })
}

// BenchmarkConcurrentIdenticalSubmits measures cache-hit throughput under
// parallel submission of one identical request — the coalesced steady
// state of N clients asking for the same computation.
func BenchmarkConcurrentIdenticalSubmits(b *testing.B) {
	d := startBench(b, 8)
	deployBenchWork(b, d.Container, "det-par", true)
	jobs := d.Container.Jobs()
	job, err := jobs.Submit("det-par", core.Values{"x": 2.0}, "")
	if err != nil {
		b.Fatal(err)
	}
	if _, err := jobs.Wait(context.Background(), job.ID, 30*time.Second); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			job, err := jobs.Submit("det-par", core.Values{"x": 2.0}, "")
			if err != nil {
				b.Fatal(err)
			}
			if !job.State.Terminal() {
				if _, err := jobs.Wait(context.Background(), job.ID, 30*time.Second); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkFileStoreDedup compares ingesting 1 MiB payloads of unique
// content (every put writes a blob) against identical content (every put
// after the first is a refcount bump on the shared blob).
func BenchmarkFileStoreDedup(b *testing.B) {
	const size = 1 << 20
	payload := bytes.Repeat([]byte("mathcloud"), size/9+1)[:size]

	b.Run("unique", func(b *testing.B) {
		fs, err := container.NewFileStore(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		buf := make([]byte, size)
		copy(buf, payload)
		b.SetBytes(size)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// Vary the first bytes so every payload is distinct content.
			copy(buf, fmt.Sprintf("%016d", i))
			if _, err := fs.PutBytes(buf, ""); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("identical", func(b *testing.B) {
		fs, err := container.NewFileStore(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := fs.PutBytes(payload, ""); err != nil {
			b.Fatal(err)
		}
		b.SetBytes(size)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := fs.PutBytes(payload, ""); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkWorkflowBlockMemo runs a three-service diamond workflow against
// live HTTP services, without and with the per-block result cache.  With
// the cache every service block of the repeat run is a hit, so the run
// collapses to graph traversal.
func BenchmarkWorkflowBlockMemo(b *testing.B) {
	run := func(b *testing.B, cache *workflow.BlockCache) {
		d := startBench(b, 8)
		deployBenchWork(b, d.Container, "wf-double", true)
		adapter.RegisterFunc("benchcache.wfadd", func(_ context.Context, in core.Values) (core.Values, error) {
			av, _ := in["a"].(float64)
			bv, _ := in["b"].(float64)
			return core.Values{"sum": av + bv}, nil
		})
		if err := d.Container.Deploy(container.ServiceConfig{
			Description: core.ServiceDescription{
				Name:          "wf-add",
				Deterministic: true,
				Inputs:        []core.Param{{Name: "a"}, {Name: "b"}},
				Outputs:       []core.Param{{Name: "sum"}},
			},
			Adapter: container.AdapterSpec{Kind: "native",
				Config: json.RawMessage(`{"function": "benchcache.wfadd"}`)},
		}); err != nil {
			b.Fatal(err)
		}
		doubleURI := d.Container.ServiceURI("wf-double")
		addURI := d.Container.ServiceURI("wf-add")
		wf := &workflow.Workflow{
			Name: "bench-diamond",
			Blocks: []workflow.Block{
				{ID: "x", Type: workflow.BlockInput, Name: "x"},
				{ID: "d1", Type: workflow.BlockService, Service: doubleURI},
				{ID: "d2", Type: workflow.BlockService, Service: doubleURI},
				{ID: "plus", Type: workflow.BlockService, Service: addURI},
				{ID: "result", Type: workflow.BlockOutput, Name: "result"},
			},
			Edges: []workflow.Edge{
				{From: workflow.PortRef{Block: "x", Port: "value"}, To: workflow.PortRef{Block: "d1", Port: "x"}},
				{From: workflow.PortRef{Block: "x", Port: "value"}, To: workflow.PortRef{Block: "d2", Port: "x"}},
				{From: workflow.PortRef{Block: "d1", Port: "y"}, To: workflow.PortRef{Block: "plus", Port: "a"}},
				{From: workflow.PortRef{Block: "d2", Port: "y"}, To: workflow.PortRef{Block: "plus", Port: "b"}},
				{From: workflow.PortRef{Block: "plus", Port: "sum"}, To: workflow.PortRef{Block: "result", Port: "value"}},
			},
		}
		inv := &workflow.HTTPInvoker{}
		eng := &workflow.Engine{Invoker: inv, Describer: inv, BlockCache: cache}
		compiled, err := workflow.Compile(wf, inv)
		if err != nil {
			b.Fatal(err)
		}
		ctx := context.Background()
		if _, err := eng.RunCompiled(ctx, compiled, core.Values{"x": 1.0}); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := eng.RunCompiled(ctx, compiled, core.Values{"x": 1.0}); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("no-memo", func(b *testing.B) { run(b, nil) })
	b.Run("memo", func(b *testing.B) { run(b, workflow.NewBlockCache(0)) })
}
