// Package mathcloud_test holds the repository-level benchmark harness: one
// benchmark per paper artifact (Tables 1-2, Figures 1-3, the Section 4
// claims) plus ablation benchmarks for the design choices called out in
// DESIGN.md §5.  The benchmarks reuse the same drivers as cmd/experiments
// but at reduced problem sizes, so `go test -bench=. -benchmem` finishes
// in minutes; the full-size sweeps live in cmd/experiments.
package mathcloud_test

import (
	"context"
	"encoding/json"
	"encoding/xml"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"mathcloud/internal/adapter"
	"mathcloud/internal/ampl"
	"mathcloud/internal/cas"
	"mathcloud/internal/catalogue"
	"mathcloud/internal/client"
	"mathcloud/internal/container"
	"mathcloud/internal/core"
	"mathcloud/internal/dw"
	"mathcloud/internal/grid"
	"mathcloud/internal/matrixinv"
	"mathcloud/internal/platform"
	"mathcloud/internal/ratmat"
	"mathcloud/internal/scatter"
	"mathcloud/internal/security"
	"mathcloud/internal/simplex"
	"mathcloud/internal/torque"
	"mathcloud/internal/workflow"
)

// startBench brings up a local deployment for benchmarks.
func startBench(b *testing.B, workers int) *platform.Deployment {
	b.Helper()
	d, err := platform.StartLocal(platform.Options{Workers: workers})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(d.Close)
	return d
}

// BenchmarkTable1RESTAPI measures one full request/response cycle through
// the unified REST API of Table 1: POST (create job), server-side
// processing, GET results — the per-call price of the platform's
// interface.
func BenchmarkTable1RESTAPI(b *testing.B) {
	d := startBench(b, 8)
	adapter.RegisterFunc("bench.add", func(_ context.Context, in core.Values) (core.Values, error) {
		a, _ := in["a"].(float64)
		c, _ := in["b"].(float64)
		return core.Values{"sum": a + c}, nil
	})
	if err := d.Container.Deploy(container.ServiceConfig{
		Description: core.ServiceDescription{
			Name:    "add",
			Inputs:  []core.Param{{Name: "a"}, {Name: "b"}},
			Outputs: []core.Param{{Name: "sum"}},
		},
		Adapter: container.AdapterSpec{Kind: "native",
			Config: json.RawMessage(`{"function": "bench.add"}`)},
	}); err != nil {
		b.Fatal(err)
	}
	svc := client.New().Service(d.Container.ServiceURI("add"))
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := svc.Call(ctx, core.Values{"a": 1.0, "b": 2.0}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2HilbertInversion reproduces the Table 2 comparison at a
// reduced order: serial CAS-service inversion vs the 4-block workflow.
func BenchmarkTable2HilbertInversion(b *testing.B) {
	d := startBench(b, 16)
	names, err := cas.Deploy(d.Container, "maxima", 4)
	if err != nil {
		b.Fatal(err)
	}
	uris := make([]string, len(names))
	for i, n := range names {
		uris[i] = d.Container.ServiceURI(n)
	}
	inv := &workflow.HTTPInvoker{}
	const n = 24
	h := ratmat.Hilbert(n)
	ctx := context.Background()

	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := matrixinv.InvertSerial(ctx, inv, uris[0], h); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parallel-4block", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := matrixinv.InvertParallel(ctx, inv, inv, uris, h); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFig1AdapterPipeline measures the request→queue→adapter→result
// pipeline of Fig. 1 for each adapter kind.
func BenchmarkFig1AdapterPipeline(b *testing.B) {
	d := startBench(b, 8)
	adapter.RegisterFunc("bench.square", func(_ context.Context, in core.Values) (core.Values, error) {
		x, _ := in["x"].(float64)
		return core.Values{"y": x * x}, nil
	})

	cluster, err := torque.New("bench", []torque.NodeSpec{{Name: "n1", Slots: 8}}, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(cluster.Close)
	clusters := torque.NewClusterRegistry()
	clusters.Add(cluster)
	d.Registry.Register("cluster", torque.NewAdapterFactory(clusters, d.Registry))

	site := &grid.Site{Name: "site", Cluster: cluster, VOs: []string{"vo"}, Reliability: 1}
	infra, err := grid.New([]*grid.Site{site}, 1)
	if err != nil {
		b.Fatal(err)
	}
	d.Registry.Register("grid", grid.NewAdapterFactory(infra, d.Registry))

	deploy := func(name, kind string, cfg any) {
		raw, err := json.Marshal(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := d.Container.Deploy(container.ServiceConfig{
			Description: core.ServiceDescription{Name: name,
				Inputs:  []core.Param{{Name: "x"}},
				Outputs: []core.Param{{Name: "y"}}},
			Adapter: container.AdapterSpec{Kind: kind, Config: raw},
		}); err != nil {
			b.Fatal(err)
		}
	}
	deploy("native", "native", adapter.NativeConfig{Function: "bench.square"})
	deploy("script", "script", adapter.ScriptConfig{Script: "out.y = in.x * in.x"})
	deploy("cluster", "cluster", torque.AdapterConfig{Cluster: "bench",
		Exec: torque.ExecConfig{Kind: "native",
			Config: json.RawMessage(`{"function":"bench.square"}`)}})
	deploy("grid", "grid", grid.AdapterConfig{VO: "vo",
		Exec: torque.ExecConfig{Kind: "native",
			Config: json.RawMessage(`{"function":"bench.square"}`)}})

	ctx := context.Background()
	for _, name := range []string{"native", "script", "cluster", "grid"} {
		svc := client.New().Service(d.Container.ServiceURI(name))
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := svc.Call(ctx, core.Values{"x": 7.0}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig2WorkflowEngine measures one end-to-end run of a typed DAG
// through the workflow engine with real service calls.
func BenchmarkFig2WorkflowEngine(b *testing.B) {
	d := startBench(b, 8)
	adapter.RegisterFunc("bench.double", func(_ context.Context, in core.Values) (core.Values, error) {
		x, _ := in["x"].(float64)
		return core.Values{"y": 2 * x}, nil
	})
	if err := d.Container.Deploy(container.ServiceConfig{
		Description: core.ServiceDescription{Name: "double",
			Inputs:  []core.Param{{Name: "x"}},
			Outputs: []core.Param{{Name: "y"}}},
		Adapter: container.AdapterSpec{Kind: "native",
			Config: json.RawMessage(`{"function":"bench.double"}`)},
	}); err != nil {
		b.Fatal(err)
	}
	uri := d.Container.ServiceURI("double")
	wf := &workflow.Workflow{
		Name: "diamond",
		Blocks: []workflow.Block{
			{ID: "in", Type: workflow.BlockInput, Name: "x"},
			{ID: "l", Type: workflow.BlockService, Service: uri},
			{ID: "r", Type: workflow.BlockService, Service: uri},
			{ID: "join", Type: workflow.BlockScript,
				Script:  "out.sum = in.a + in.b",
				Inputs:  []workflow.PortDecl{{Name: "a"}, {Name: "b"}},
				Outputs: []workflow.PortDecl{{Name: "sum"}}},
			{ID: "out", Type: workflow.BlockOutput, Name: "sum"},
		},
		Edges: []workflow.Edge{
			{From: workflow.PortRef{Block: "in", Port: "value"}, To: workflow.PortRef{Block: "l", Port: "x"}},
			{From: workflow.PortRef{Block: "in", Port: "value"}, To: workflow.PortRef{Block: "r", Port: "x"}},
			{From: workflow.PortRef{Block: "l", Port: "y"}, To: workflow.PortRef{Block: "join", Port: "a"}},
			{From: workflow.PortRef{Block: "r", Port: "y"}, To: workflow.PortRef{Block: "join", Port: "b"}},
			{From: workflow.PortRef{Block: "join", Port: "sum"}, To: workflow.PortRef{Block: "out", Port: "value"}},
		},
	}
	inv := &workflow.HTTPInvoker{}
	engine := &workflow.Engine{Invoker: inv, Describer: inv}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := engine.Run(ctx, wf, core.Values{"x": 3.0})
		if err != nil {
			b.Fatal(err)
		}
		if out["sum"] != 12.0 {
			b.Fatalf("sum = %v", out["sum"])
		}
	}
}

// BenchmarkFig3Security measures the cost of one secured request:
// authentication (bearer token) plus allow-list authorization.
func BenchmarkFig3Security(b *testing.B) {
	provider, err := security.NewWebIdentityProvider(time.Hour)
	if err != nil {
		b.Fatal(err)
	}
	guard := security.NewGuard(security.TokenAuthenticator{Provider: provider})
	guard.SetPolicy("svc", security.Policy{Allow: []string{"openid:alice"}})
	token, err := provider.Login("alice")
	if err != nil {
		b.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodGet, "/services/svc", nil)
	req.Header.Set("Authorization", "Bearer "+token)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := guard.Authenticate(req)
		if err != nil {
			b.Fatal(err)
		}
		if err := guard.Authorize(p, "svc"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOverhead compares the distributed block inversion against the
// identical in-process computation — the Section 4 overhead claim.
func BenchmarkOverhead(b *testing.B) {
	d := startBench(b, 16)
	names, err := cas.Deploy(d.Container, "maxima", 4)
	if err != nil {
		b.Fatal(err)
	}
	uris := make([]string, len(names))
	for i, n := range names {
		uris[i] = d.Container.ServiceURI(n)
	}
	const n = 32
	h := ratmat.Hilbert(n)
	inv := &workflow.HTTPInvoker{}
	ctx := context.Background()

	b.Run("via-services", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := matrixinv.InvertParallel(ctx, inv, inv, uris, h); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("in-process", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ratmat.BlockInverse(ctx, ratmat.LocalOps{}, h, n/2); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkDantzigWolfe measures the decomposition on a small instance
// with pools of 1 and 4 local solvers.
func BenchmarkDantzigWolfe(b *testing.B) {
	p := dw.Generate(4, 4, 4, 7)
	for _, poolSize := range []int{1, 4} {
		solvers := make([]dw.Solver, poolSize)
		for i := range solvers {
			solvers[i] = dw.LocalSolver{}
		}
		pool := dw.NewPool(solvers...)
		b.Run(fmt.Sprintf("pool-%d", poolSize), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := dw.Decompose(context.Background(), p, pool, dw.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkXRayPipeline measures the curve+fit pipeline in-process (the
// service-level pipeline is exercised by cmd/experiments xray).
func BenchmarkXRayPipeline(b *testing.B) {
	lib := scatter.Library()
	q := scatter.QGrid(5, 70, 40)
	curves := make([][]float64, len(lib))
	for i, s := range lib {
		curves[i] = scatter.Curve(s, q, 200)
	}
	obs := scatter.Synthesize(lib, q, curves, 0.01, 1)

	b.Run("curves", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			scatter.Curve(lib[i%len(lib)], q, 200)
		}
	})
	b.Run("fit-3-solvers", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := scatter.BestFit(curves, obs.I, 500); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---- Ablation benchmarks (DESIGN.md §5) ----

// BenchmarkJobManagerWorkers sweeps the handler pool size against a burst
// of concurrent requests.
func BenchmarkJobManagerWorkers(b *testing.B) {
	adapter.RegisterFunc("bench.sleepy", func(ctx context.Context, in core.Values) (core.Values, error) {
		select {
		case <-time.After(2 * time.Millisecond):
		case <-ctx.Done():
		}
		return core.Values{"ok": true}, nil
	})
	for _, workers := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			d := startBench(b, workers)
			if err := d.Container.Deploy(container.ServiceConfig{
				Description: core.ServiceDescription{Name: "sleepy",
					Outputs: []core.Param{{Name: "ok"}}},
				Adapter: container.AdapterSpec{Kind: "native",
					Config: json.RawMessage(`{"function":"bench.sleepy"}`)},
			}); err != nil {
				b.Fatal(err)
			}
			svc := client.New().Service(d.Container.ServiceURI("sleepy"))
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				const burst = 16
				errs := make(chan error, burst)
				for j := 0; j < burst; j++ {
					go func() {
						_, err := svc.Call(ctx, core.Values{})
						errs <- err
					}()
				}
				for j := 0; j < burst; j++ {
					if err := <-errs; err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkEncodingJSON compares the platform's JSON message encoding with
// a naive XML rendering of the same job representation — the paper's
// REST+JSON vs big-WS+XML argument, reduced to measurable form.
func BenchmarkEncodingJSON(b *testing.B) {
	type xmlParam struct {
		Name  string `xml:"name,attr"`
		Value string `xml:"value"`
	}
	type xmlJob struct {
		XMLName xml.Name   `xml:"job"`
		ID      string     `xml:"id"`
		State   string     `xml:"state"`
		Params  []xmlParam `xml:"outputs>param"`
	}
	job := &core.Job{ID: core.NewID(), State: core.StateDone, Outputs: core.Values{}}
	xj := xmlJob{ID: job.ID, State: string(job.State)}
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("param%d", i)
		val := strings.Repeat("v", 64)
		job.Outputs[key] = val
		xj.Params = append(xj.Params, xmlParam{Name: key, Value: val})
	}
	var jsonBytes, xmlBytes int
	b.Run("json", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			data, err := json.Marshal(job)
			if err != nil {
				b.Fatal(err)
			}
			jsonBytes = len(data)
		}
	})
	b.Run("xml", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			data, err := xml.Marshal(xj)
			if err != nil {
				b.Fatal(err)
			}
			xmlBytes = len(data)
		}
	})
	if jsonBytes > 0 && xmlBytes > 0 {
		b.Logf("message size: json=%dB xml=%dB", jsonBytes, xmlBytes)
	}
}

// BenchmarkFileStaging compares passing a 1 MB parameter inline (JSON
// string) against the file-resource path the unified API prescribes for
// large data.
func BenchmarkFileStaging(b *testing.B) {
	d := startBench(b, 8)
	adapter.RegisterFunc("bench.len", func(_ context.Context, in core.Values) (core.Values, error) {
		s, _ := in["data"].(string)
		return core.Values{"n": float64(len(s))}, nil
	})
	if err := d.Container.Deploy(container.ServiceConfig{
		Description: core.ServiceDescription{Name: "len",
			Inputs:  []core.Param{{Name: "data"}},
			Outputs: []core.Param{{Name: "n"}}},
		Adapter: container.AdapterSpec{Kind: "native",
			Config: json.RawMessage(`{"function":"bench.len"}`)},
	}); err != nil {
		b.Fatal(err)
	}
	payload := strings.Repeat("x", 1<<20)
	svc := client.New().Service(d.Container.ServiceURI("len"))
	cl := client.New()
	ctx := context.Background()

	b.Run("inline-json", func(b *testing.B) {
		b.SetBytes(1 << 20)
		for i := 0; i < b.N; i++ {
			if _, err := svc.Call(ctx, core.Values{"data": payload}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("file-resource", func(b *testing.B) {
		b.SetBytes(1 << 20)
		for i := 0; i < b.N; i++ {
			ref, err := cl.UploadFile(ctx, d.BaseURL, strings.NewReader(payload))
			if err != nil {
				b.Fatal(err)
			}
			if _, err := svc.Call(ctx, core.Values{"data": ref}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkStagingStreamedVsBuffered quantifies the streaming file plane:
// staging a stored file into a job work directory by the old buffered
// round-trip (ReadAll + WriteFile, O(file) heap per transfer) vs the
// streamed StageTo path (hardlink or pooled-buffer copy, O(buffer) heap).
// Run with -benchmem: the streamed variant's B/op must stay flat as the
// file grows while the buffered variant scales with the payload.
func BenchmarkStagingStreamedVsBuffered(b *testing.B) {
	const fileSize = 8 << 20
	store, err := container.NewFileStore(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	id, err := store.PutBytes([]byte(strings.Repeat("s", fileSize)), "")
	if err != nil {
		b.Fatal(err)
	}
	work := b.TempDir()

	b.Run("buffered-readall", func(b *testing.B) {
		b.SetBytes(fileSize)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			data, err := store.ReadAll(id)
			if err != nil {
				b.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(work, "in_buf"), data, 0o600); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("streamed", func(b *testing.B) {
		b.SetBytes(fileSize)
		b.ReportAllocs()
		dst := filepath.Join(work, "in_stream")
		for i := 0; i < b.N; i++ {
			_ = os.Remove(dst)
			if err := store.StageTo(id, dst); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkInvokerLocalVsHTTP is the in-process fast-path ablation: the
// same service call (and the same diamond workflow as Fig. 2) executed
// through the REST API vs dispatched straight into the job manager by the
// LocalInvoker.  Both run against one process, so the difference is pure
// transport: HTTP framing, JSON re-marshal and connection handling.
func BenchmarkInvokerLocalVsHTTP(b *testing.B) {
	d := startBench(b, 8)
	adapter.RegisterFunc("bench.inc", func(_ context.Context, in core.Values) (core.Values, error) {
		x, _ := in["x"].(float64)
		return core.Values{"y": x + 1}, nil
	})
	if err := d.Container.Deploy(container.ServiceConfig{
		Description: core.ServiceDescription{Name: "inc",
			Inputs:  []core.Param{{Name: "x"}},
			Outputs: []core.Param{{Name: "y"}}},
		Adapter: container.AdapterSpec{Kind: "native",
			Config: json.RawMessage(`{"function":"bench.inc"}`)},
	}); err != nil {
		b.Fatal(err)
	}
	uri := d.Container.ServiceURI("inc")
	httpInv := &workflow.HTTPInvoker{}
	localInv := workflow.NewLocalInvoker(httpInv)
	ctx := context.Background()

	for _, tc := range []struct {
		name string
		inv  workflow.Invoker
	}{{"call-http", httpInv}, {"call-local", localInv}} {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				out, err := tc.inv.Call(ctx, uri, core.Values{"x": 1.0})
				if err != nil {
					b.Fatal(err)
				}
				if out["y"] != 2.0 {
					b.Fatalf("y = %v", out["y"])
				}
			}
		})
	}

	wf := &workflow.Workflow{
		Name: "bench-diamond",
		Blocks: []workflow.Block{
			{ID: "in", Type: workflow.BlockInput, Name: "x"},
			{ID: "l", Type: workflow.BlockService, Service: uri},
			{ID: "r", Type: workflow.BlockService, Service: uri},
			{ID: "join", Type: workflow.BlockScript,
				Script:  "out.sum = in.a + in.b",
				Inputs:  []workflow.PortDecl{{Name: "a"}, {Name: "b"}},
				Outputs: []workflow.PortDecl{{Name: "sum"}}},
			{ID: "out", Type: workflow.BlockOutput, Name: "sum"},
		},
		Edges: []workflow.Edge{
			{From: workflow.PortRef{Block: "in", Port: "value"}, To: workflow.PortRef{Block: "l", Port: "x"}},
			{From: workflow.PortRef{Block: "in", Port: "value"}, To: workflow.PortRef{Block: "r", Port: "x"}},
			{From: workflow.PortRef{Block: "l", Port: "y"}, To: workflow.PortRef{Block: "join", Port: "a"}},
			{From: workflow.PortRef{Block: "r", Port: "y"}, To: workflow.PortRef{Block: "join", Port: "b"}},
			{From: workflow.PortRef{Block: "join", Port: "sum"}, To: workflow.PortRef{Block: "out", Port: "value"}},
		},
	}
	for _, tc := range []struct {
		name string
		inv  workflow.Invoker
		desc workflow.Describer
	}{
		{"workflow-http", httpInv, httpInv},
		{"workflow-local", localInv, localInv},
	} {
		b.Run(tc.name, func(b *testing.B) {
			engine := &workflow.Engine{Invoker: tc.inv, Describer: tc.desc}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out, err := engine.Run(ctx, wf, core.Values{"x": 3.0})
				if err != nil {
					b.Fatal(err)
				}
				if out["sum"] != 8.0 {
					b.Fatalf("sum = %v", out["sum"])
				}
			}
		})
	}
}

// BenchmarkTransportReuse is the tuned-transport ablation: the identical
// Table 1 request cycle through the shared keep-alive transport
// (client.New) vs a client that redials for every request — the per-call
// connection-setup cost the pooled transport eliminates.
func BenchmarkTransportReuse(b *testing.B) {
	d := startBench(b, 8)
	adapter.RegisterFunc("bench.ping", func(_ context.Context, _ core.Values) (core.Values, error) {
		return core.Values{"pong": true}, nil
	})
	if err := d.Container.Deploy(container.ServiceConfig{
		Description: core.ServiceDescription{Name: "ping",
			Outputs: []core.Param{{Name: "pong"}}},
		Adapter: container.AdapterSpec{Kind: "native",
			Config: json.RawMessage(`{"function":"bench.ping"}`)},
	}); err != nil {
		b.Fatal(err)
	}
	uri := d.Container.ServiceURI("ping")
	ctx := context.Background()

	redial := &client.Client{HTTP: &http.Client{
		Transport: &http.Transport{DisableKeepAlives: true},
		Timeout:   30 * time.Second,
	}}
	for _, tc := range []struct {
		name string
		cl   *client.Client
	}{{"pooled-keepalive", client.New()}, {"redial-per-request", redial}} {
		svc := tc.cl.Service(uri)
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := svc.Call(ctx, core.Values{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSimplexPivot compares Bland's rule against the Dantzig
// most-negative heuristic on a family of random LPs.
func BenchmarkSimplexPivot(b *testing.B) {
	problems := make([]*simplex.Problem, 8)
	for i := range problems {
		p := dw.Generate(4, 4, 1, int64(i+1))
		m, err := ampl.Parse(p.SubproblemModel(0, nil))
		if err != nil {
			b.Fatal(err)
		}
		inst, err := m.Instantiate()
		if err != nil {
			b.Fatal(err)
		}
		problems[i] = inst.Problem
	}
	for _, rule := range []struct {
		name string
		rule simplex.PivotRule
	}{{"bland", simplex.Bland}, {"dantzig", simplex.Dantzig}} {
		b.Run(rule.name, func(b *testing.B) {
			pivots := 0
			for i := 0; i < b.N; i++ {
				sol, err := simplex.SolveOpt(problems[i%len(problems)],
					simplex.Options{Rule: rule.rule})
				if err != nil {
					b.Fatal(err)
				}
				pivots += sol.Iterations
			}
			b.ReportMetric(float64(pivots)/float64(b.N), "pivots/op")
		})
	}
}

// BenchmarkCatalogueSearch compares the inverted index against a naive
// linear scan over service descriptions.
func BenchmarkCatalogueSearch(b *testing.B) {
	const n = 500
	docs := make(map[string]string, n)
	vocab := []string{"matrix", "inversion", "solver", "optimization", "xray",
		"scattering", "grid", "cluster", "workflow", "exact", "hilbert", "service"}
	for i := 0; i < n; i++ {
		var words []string
		for w := 0; w < 20; w++ {
			words = append(words, vocab[(i*7+w*3)%len(vocab)])
		}
		docs[fmt.Sprintf("http://host/services/s%d", i)] = strings.Join(words, " ")
	}

	b.Run("inverted-index", func(b *testing.B) {
		cat := catalogue.New(benchDescriber(docs))
		ctx := context.Background()
		for uri := range docs {
			if _, err := cat.Register(ctx, uri, nil); err != nil {
				b.Fatal(err)
			}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if res := cat.Search("matrix inversion", catalogue.SearchOptions{Limit: 20}); len(res) == 0 {
				b.Fatal("no hits")
			}
		}
	})
	b.Run("linear-scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			count := 0
			for _, text := range docs {
				if strings.Contains(text, "matrix") || strings.Contains(text, "inversion") {
					count++
				}
			}
			if count == 0 {
				b.Fatal("no hits")
			}
		}
	})
}

// BenchmarkBlockGranularity compares direct inversion with the 2×2 block
// algorithm in-process — the algorithmic half of the Table 2 speedup.
func BenchmarkBlockGranularity(b *testing.B) {
	const n = 32
	h := ratmat.Hilbert(n)
	b.Run("direct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := h.Inverse(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("block-2x2", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ratmat.BlockInverse(context.Background(), ratmat.LocalOps{}, h, n/2); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// benchDescriber serves synthetic descriptions for the catalogue bench.
type benchDescriber map[string]string

// Describe implements catalogue.Describer.
func (d benchDescriber) Describe(_ context.Context, uri string) (core.ServiceDescription, error) {
	text, ok := d[uri]
	if !ok {
		return core.ServiceDescription{}, fmt.Errorf("no such doc")
	}
	return core.ServiceDescription{Name: uri, Description: text}, nil
}
