// Control-plane benchmarks (DESIGN.md §5c): job-status polling under
// concurrency, service-description GETs (full and conditional), and
// catalogue availability sweeps.  They exercise only public APIs, so the
// same file measures the pre- and post-optimisation trees; both runs are
// recorded in BENCH_3.json.
package mathcloud_test

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mathcloud/internal/adapter"
	"mathcloud/internal/catalogue"
	"mathcloud/internal/container"
	"mathcloud/internal/core"
	"mathcloud/internal/jsonschema"
)

// newBenchContainer starts a bare container (no HTTP listener) with a noop
// service whose jobs carry a realistic payload: several inputs and one
// output, so job snapshots are not trivially empty.
func newBenchContainer(b *testing.B, workers int) *container.Container {
	b.Helper()
	adapter.RegisterFunc("bench.noop", func(_ context.Context, in core.Values) (core.Values, error) {
		return core.Values{"y": 1.0}, nil
	})
	c, err := container.New(container.Options{Workers: workers})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(c.Close)
	inputs := make([]core.Param, 8)
	for i := range inputs {
		inputs[i] = core.Param{Name: fmt.Sprintf("p%d", i), Optional: true}
	}
	if err := c.Deploy(container.ServiceConfig{
		Description: core.ServiceDescription{
			Name:    "noop",
			Inputs:  inputs,
			Outputs: []core.Param{{Name: "y"}},
		},
		Adapter: container.AdapterSpec{Kind: "native",
			Config: json.RawMessage(`{"function":"bench.noop"}`)},
	}); err != nil {
		b.Fatal(err)
	}
	return c
}

// BenchmarkJobStatusContention hammers JobManager.Get from 8 concurrent
// goroutines over a populated registry — the status-polling hot path of the
// Table 1 job resource.  The pre-PR registry serializes every lookup on one
// global mutex and deep-clones the job record per poll; the sharded registry
// with cached immutable snapshots answers from a lock-striped map and a
// shallow copy.
func BenchmarkJobStatusContention(b *testing.B) {
	c := newBenchContainer(b, 4)
	jm := c.Jobs()
	inputs := core.Values{}
	for i := 0; i < 8; i++ {
		inputs[fmt.Sprintf("p%d", i)] = float64(i)
	}
	const jobs = 256
	ids := make([]string, jobs)
	ctx := context.Background()
	for i := range ids {
		job, err := jm.Submit("noop", inputs, "bench")
		if err != nil {
			b.Fatal(err)
		}
		ids[i] = job.ID
	}
	for _, id := range ids {
		if j, err := jm.Wait(ctx, id, 10*time.Second); err != nil || !j.State.Terminal() {
			b.Fatalf("job %s not terminal (err=%v)", id, err)
		}
	}
	b.SetParallelism(8)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			job, err := jm.Get(ids[i%jobs])
			if err != nil {
				b.Fatal(err)
			}
			if job.State != core.StateDone {
				b.Fatalf("state = %s", job.State)
			}
			i++
		}
	})
}

// TestJobGetOneAlloc pins the allocation budget of the status-polling hot
// path: JobManager.Get on a terminal job must stay at one allocation (the
// returned snapshot copy) even though snapshots now carry the lifecycle
// timeline fields (queue wait, run time, trace ID) — they are value fields,
// so the observability plane adds no per-poll allocations.
func TestJobGetOneAlloc(t *testing.T) {
	adapter.RegisterFunc("bench.noop", func(_ context.Context, in core.Values) (core.Values, error) {
		return core.Values{"y": 1.0}, nil
	})
	c, err := container.New(container.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Deploy(container.ServiceConfig{
		Description: core.ServiceDescription{
			Name:    "noop",
			Inputs:  []core.Param{{Name: "x", Optional: true}},
			Outputs: []core.Param{{Name: "y"}},
		},
		Adapter: container.AdapterSpec{Kind: "native",
			Config: json.RawMessage(`{"function":"bench.noop"}`)},
	}); err != nil {
		t.Fatal(err)
	}
	jm := c.Jobs()
	job, err := jm.Submit("noop", core.Values{"x": 1.0}, "bench")
	if err != nil {
		t.Fatal(err)
	}
	done, err := jm.Wait(context.Background(), job.ID, 10*time.Second)
	if err != nil || done.State != core.StateDone {
		t.Fatalf("job not done: %+v (err=%v)", done, err)
	}
	// Warm up once so lazily built state does not count against the budget.
	if _, err := jm.Get(job.ID); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		j, err := jm.Get(job.ID)
		if err != nil || j.State != core.StateDone {
			t.Fatalf("get: %v", err)
		}
	})
	if allocs > 1 {
		t.Errorf("JobManager.Get allocates %.1f objects per call, want <= 1", allocs)
	}
}

// BenchmarkDescriptionGET measures serving the service-description resource
// through the container handler: an unconditional GET (full representation)
// and a conditional GET carrying If-None-Match.  Pre-PR both re-encode the
// description per request; post-PR the full GET answers from precomputed
// immutable bytes and the conditional GET collapses to a 304.
func BenchmarkDescriptionGET(b *testing.B) {
	c := newBenchContainer(b, 1)
	c.SetBaseURL("http://bench.local")
	if err := c.Deploy(container.ServiceConfig{
		Description: core.ServiceDescription{
			Name:        "rich",
			Title:       "Richly described service",
			Description: strings.Repeat("A service with a long description. ", 8),
			Inputs: []core.Param{
				{Name: "matrix", Title: "Input matrix",
					Schema: jsonschema.MustParse(`{"type":"string","format":"matrix"}`)},
				{Name: "order", Title: "Matrix order",
					Schema: jsonschema.MustParse(`{"type":"integer","minimum":1,"maximum":4096}`)},
				{Name: "mode", Schema: jsonschema.MustParse(`{"type":"string","enum":["exact","float"]}`)},
			},
			Outputs: []core.Param{
				{Name: "inverse", Schema: jsonschema.MustParse(`{"type":"string","format":"matrix"}`)},
				{Name: "elapsed", Schema: jsonschema.MustParse(`{"type":"number"}`)},
			},
			Tags: []string{"linear-algebra", "exact", "bench"},
		},
		Adapter: container.AdapterSpec{Kind: "native",
			Config: json.RawMessage(`{"function":"bench.noop"}`)},
	}); err != nil {
		b.Fatal(err)
	}
	h := c.Handler()
	prime := httptest.NewRecorder()
	h.ServeHTTP(prime, httptest.NewRequest(http.MethodGet, "/services/rich", nil))
	if prime.Code != http.StatusOK {
		b.Fatalf("prime GET: %d", prime.Code)
	}
	etag := prime.Header().Get("ETag")

	b.Run("full", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			w := httptest.NewRecorder()
			h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/services/rich", nil))
			if w.Code != http.StatusOK {
				b.Fatalf("GET: %d", w.Code)
			}
		}
	})
	b.Run("conditional", func(b *testing.B) {
		if etag == "" {
			// Pre-PR trees serve no ETag; the conditional request is then
			// identical to the full one, which is exactly the baseline.
			etag = `"absent"`
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			w := httptest.NewRecorder()
			r := httptest.NewRequest(http.MethodGet, "/services/rich", nil)
			r.Header.Set("If-None-Match", etag)
			h.ServeHTTP(w, r)
			if w.Code != http.StatusOK && w.Code != http.StatusNotModified {
				b.Fatalf("GET: %d", w.Code)
			}
		}
	})
}

// slowDescriber answers Describe after a fixed delay, modelling the network
// round-trip of a catalogue availability probe.
type slowDescriber struct {
	delay time.Duration
}

// Describe implements catalogue.Describer.
func (d slowDescriber) Describe(ctx context.Context, uri string) (core.ServiceDescription, error) {
	select {
	case <-time.After(d.delay):
	case <-ctx.Done():
		return core.ServiceDescription{}, ctx.Err()
	}
	return core.ServiceDescription{Name: uri, Description: "probed service"}, nil
}

// BenchmarkCatalogueSweep measures one full availability sweep over a
// 64-service catalogue whose probes each take ~500µs — the paper's periodic
// ping loop.  Pre-PR the sweep is strictly serial (sum of probe latencies);
// post-PR a bounded worker pool overlaps the waits.
func BenchmarkCatalogueSweep(b *testing.B) {
	cat := catalogue.New(slowDescriber{delay: 500 * time.Microsecond})
	ctx := context.Background()
	const services = 64
	for i := 0; i < services; i++ {
		if _, err := cat.Register(ctx, fmt.Sprintf("http://host%d/services/s%d", i, i), nil); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if n := cat.Ping(ctx); n != services {
			b.Fatalf("available = %d", n)
		}
	}
}

// BenchmarkCatalogueTopK measures a limit-10 search over a catalogue where
// every document matches the query: pre-PR the index fully sorts all hits,
// post-PR a top-k partial sort keeps only the requested page.
func BenchmarkCatalogueTopK(b *testing.B) {
	const n = 2000
	docs := make(map[string]string, n)
	for i := 0; i < n; i++ {
		docs[fmt.Sprintf("http://host/services/s%d", i)] = fmt.Sprintf(
			"matrix solver number %d with %s depth", i, strings.Repeat("deep ", i%17))
	}
	cat := catalogue.New(benchDescriber(docs))
	ctx := context.Background()
	for uri := range docs {
		if _, err := cat.Register(ctx, uri, nil); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res := cat.Search("matrix solver", catalogue.SearchOptions{Limit: 10}); len(res) != 10 {
			b.Fatalf("hits = %d", len(res))
		}
	}
}
