// Package ratmat implements exact rational matrix arithmetic on
// math/big.Rat.  It is the computational core of the paper's flagship
// application: "error-free" inversion of ill-conditioned matrices.  The
// original platform delegated the symbolic computation to the Maxima
// computer algebra system exposed as a web service; this package provides
// the equivalent exact arithmetic natively, including Hilbert matrices,
// Gauss–Jordan inversion and the 2×2 block inversion via the Schur
// complement that the paper's distributed workflow is built on.
package ratmat

import (
	"fmt"
	"math/big"
	"strings"
)

// Matrix is a dense matrix of exact rationals.  Entries are never nil.
type Matrix struct {
	rows, cols int
	data       []*big.Rat // row-major
}

// New returns a zero matrix of the given shape.
func New(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("ratmat: invalid shape %dx%d", rows, cols))
	}
	m := &Matrix{rows: rows, cols: cols, data: make([]*big.Rat, rows*cols)}
	for i := range m.data {
		m.data[i] = new(big.Rat)
	}
	return m
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns the entry at (i, j).  The returned value is shared; callers
// must not mutate it.
func (m *Matrix) At(i, j int) *big.Rat { return m.data[i*m.cols+j] }

// Set assigns the entry at (i, j) (the value is copied).
func (m *Matrix) Set(i, j int, v *big.Rat) { m.data[i*m.cols+j].Set(v) }

// SetInt assigns an integer value at (i, j).
func (m *Matrix) SetInt(i, j int, v int64) { m.data[i*m.cols+j].SetInt64(v) }

// SetFrac assigns p/q at (i, j).
func (m *Matrix) SetFrac(i, j int, p, q int64) { m.data[i*m.cols+j].SetFrac64(p, q) }

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.SetInt(i, i, 1)
	}
	return m
}

// Hilbert returns the n×n Hilbert matrix H[i][j] = 1/(i+j+1), the classic
// ill-conditioned matrix of the paper's evaluation (condition number grows
// like O((1+√2)^{4n}/√n)).
func Hilbert(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			m.SetFrac(i, j, 1, int64(i+j+1))
		}
	}
	return m
}

// HilbertInverse returns the exact inverse of the n×n Hilbert matrix using
// the closed-form binomial formula.  All entries are integers; the formula
// provides an independent witness for inversion tests.
func HilbertInverse(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			// (-1)^{i+j} (i+j+1) C(n+i, n-j-1) C(n+j, n-i-1) C(i+j, i)^2
			v := new(big.Int).SetInt64(int64(i + j + 1))
			v.Mul(v, binomial(n+i, n-j-1))
			v.Mul(v, binomial(n+j, n-i-1))
			b := binomial(i+j, i)
			v.Mul(v, b)
			v.Mul(v, b)
			if (i+j)%2 == 1 {
				v.Neg(v)
			}
			m.data[i*n+j].SetInt(v)
		}
	}
	return m
}

func binomial(n, k int) *big.Int {
	if k < 0 || k > n {
		return big.NewInt(0)
	}
	return new(big.Int).Binomial(int64(n), int64(k))
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := New(m.rows, m.cols)
	for i, v := range m.data {
		out.data[i].Set(v)
	}
	return out
}

// Equal reports exact element-wise equality.
func (m *Matrix) Equal(other *Matrix) bool {
	if m.rows != other.rows || m.cols != other.cols {
		return false
	}
	for i := range m.data {
		if m.data[i].Cmp(other.data[i]) != 0 {
			return false
		}
	}
	return true
}

// IsIdentity reports whether m is the identity matrix.
func (m *Matrix) IsIdentity() bool {
	if m.rows != m.cols {
		return false
	}
	one := big.NewRat(1, 1)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			want := new(big.Rat)
			if i == j {
				want = one
			}
			if m.At(i, j).Cmp(want) != 0 {
				return false
			}
		}
	}
	return true
}

// Add returns m + other.
func (m *Matrix) Add(other *Matrix) (*Matrix, error) {
	if m.rows != other.rows || m.cols != other.cols {
		return nil, fmt.Errorf("ratmat: add: shape %dx%d vs %dx%d",
			m.rows, m.cols, other.rows, other.cols)
	}
	out := New(m.rows, m.cols)
	for i := range m.data {
		out.data[i].Add(m.data[i], other.data[i])
	}
	return out, nil
}

// Sub returns m - other.
func (m *Matrix) Sub(other *Matrix) (*Matrix, error) {
	if m.rows != other.rows || m.cols != other.cols {
		return nil, fmt.Errorf("ratmat: sub: shape %dx%d vs %dx%d",
			m.rows, m.cols, other.rows, other.cols)
	}
	out := New(m.rows, m.cols)
	for i := range m.data {
		out.data[i].Sub(m.data[i], other.data[i])
	}
	return out, nil
}

// Neg returns -m.
func (m *Matrix) Neg() *Matrix {
	out := New(m.rows, m.cols)
	for i := range m.data {
		out.data[i].Neg(m.data[i])
	}
	return out
}

// Mul returns the matrix product m · other.
func (m *Matrix) Mul(other *Matrix) (*Matrix, error) {
	if m.cols != other.rows {
		return nil, fmt.Errorf("ratmat: mul: inner dimensions %d vs %d", m.cols, other.rows)
	}
	out := New(m.rows, other.cols)
	tmp := new(big.Rat)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < other.cols; j++ {
			acc := out.data[i*out.cols+j]
			for k := 0; k < m.cols; k++ {
				tmp.Mul(m.At(i, k), other.At(k, j))
				acc.Add(acc, tmp)
			}
		}
	}
	return out, nil
}

// Scale returns s · m.
func (m *Matrix) Scale(s *big.Rat) *Matrix {
	out := New(m.rows, m.cols)
	for i := range m.data {
		out.data[i].Mul(m.data[i], s)
	}
	return out
}

// Transpose returns mᵀ.
func (m *Matrix) Transpose() *Matrix {
	out := New(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			out.Set(j, i, m.At(i, j))
		}
	}
	return out
}

// SingularError reports an attempt to invert a singular matrix.
type SingularError struct{}

// Error implements the error interface.
func (SingularError) Error() string { return "ratmat: matrix is singular" }

// Inverse computes the exact inverse by Gauss–Jordan elimination with
// partial (first-nonzero) pivoting.  Because the arithmetic is exact, no
// pivot-magnitude strategy is needed for correctness — this is precisely
// the "error-free" property the application relies on.
func (m *Matrix) Inverse() (*Matrix, error) {
	if m.rows != m.cols {
		return nil, fmt.Errorf("ratmat: inverse of non-square %dx%d matrix", m.rows, m.cols)
	}
	n := m.rows
	a := m.Clone()
	inv := Identity(n)
	tmp := new(big.Rat)
	zero := new(big.Rat)
	for col := 0; col < n; col++ {
		// Find a nonzero pivot at or below the diagonal.
		pivot := -1
		for r := col; r < n; r++ {
			if a.At(r, col).Cmp(zero) != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			return nil, SingularError{}
		}
		if pivot != col {
			a.swapRows(pivot, col)
			inv.swapRows(pivot, col)
		}
		// Normalize the pivot row.
		p := new(big.Rat).Inv(a.At(col, col))
		for j := 0; j < n; j++ {
			a.data[col*n+j].Mul(a.data[col*n+j], p)
			inv.data[col*n+j].Mul(inv.data[col*n+j], p)
		}
		// Eliminate the column from every other row.
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := new(big.Rat).Set(a.At(r, col))
			if f.Cmp(zero) == 0 {
				continue
			}
			for j := 0; j < n; j++ {
				tmp.Mul(f, a.data[col*n+j])
				a.data[r*n+j].Sub(a.data[r*n+j], tmp)
				tmp.Mul(f, inv.data[col*n+j])
				inv.data[r*n+j].Sub(inv.data[r*n+j], tmp)
			}
		}
	}
	return inv, nil
}

func (m *Matrix) swapRows(i, j int) {
	for c := 0; c < m.cols; c++ {
		m.data[i*m.cols+c], m.data[j*m.cols+c] = m.data[j*m.cols+c], m.data[i*m.cols+c]
	}
}

// Submatrix returns the block m[r0:r1, c0:c1] (half-open) as a copy.
func (m *Matrix) Submatrix(r0, r1, c0, c1 int) (*Matrix, error) {
	if r0 < 0 || c0 < 0 || r1 > m.rows || c1 > m.cols || r0 >= r1 || c0 >= c1 {
		return nil, fmt.Errorf("ratmat: submatrix bounds [%d:%d,%d:%d] of %dx%d",
			r0, r1, c0, c1, m.rows, m.cols)
	}
	out := New(r1-r0, c1-c0)
	for i := r0; i < r1; i++ {
		for j := c0; j < c1; j++ {
			out.Set(i-r0, j-c0, m.At(i, j))
		}
	}
	return out, nil
}

// Assemble composes a matrix from 2×2 blocks [[a, b], [c, d]].
func Assemble(a, b, c, d *Matrix) (*Matrix, error) {
	if a.rows != b.rows || c.rows != d.rows || a.cols != c.cols || b.cols != d.cols {
		return nil, fmt.Errorf("ratmat: assemble: incompatible block shapes")
	}
	out := New(a.rows+c.rows, a.cols+b.cols)
	paste := func(m *Matrix, r0, c0 int) {
		for i := 0; i < m.rows; i++ {
			for j := 0; j < m.cols; j++ {
				out.Set(r0+i, c0+j, m.At(i, j))
			}
		}
	}
	paste(a, 0, 0)
	paste(b, 0, a.cols)
	paste(c, a.rows, 0)
	paste(d, a.rows, a.cols)
	return out, nil
}

// String renders the matrix on multiple lines, entries as "p/q".
func (m *Matrix) String() string {
	var b strings.Builder
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			b.WriteString(m.At(i, j).RatString())
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// MaxBitLen returns the largest numerator/denominator bit length in the
// matrix — the measure of how large the exact representation has grown,
// which for ill-conditioned inputs reaches "hundreds of megabytes" in the
// paper's runs.
func (m *Matrix) MaxBitLen() int {
	max := 0
	for _, v := range m.data {
		if l := v.Num().BitLen(); l > max {
			max = l
		}
		if l := v.Denom().BitLen(); l > max {
			max = l
		}
	}
	return max
}
