package ratmat

import (
	"fmt"
	"math/big"
)

// Determinant computes the exact determinant by fraction-preserving
// Gaussian elimination with row swaps.
func (m *Matrix) Determinant() (*big.Rat, error) {
	if m.rows != m.cols {
		return nil, fmt.Errorf("ratmat: determinant of non-square %dx%d matrix", m.rows, m.cols)
	}
	n := m.rows
	a := m.Clone()
	det := big.NewRat(1, 1)
	zero := new(big.Rat)
	tmp := new(big.Rat)
	for col := 0; col < n; col++ {
		pivot := -1
		for r := col; r < n; r++ {
			if a.At(r, col).Cmp(zero) != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			return new(big.Rat), nil
		}
		if pivot != col {
			a.swapRows(pivot, col)
			det.Neg(det)
		}
		p := a.At(col, col)
		det.Mul(det, p)
		inv := new(big.Rat).Inv(p)
		for r := col + 1; r < n; r++ {
			f := new(big.Rat).Mul(a.At(r, col), inv)
			if f.Sign() == 0 {
				continue
			}
			for j := col; j < n; j++ {
				tmp.Mul(f, a.data[col*n+j])
				a.data[r*n+j].Sub(a.data[r*n+j], tmp)
			}
		}
	}
	return det, nil
}

// Rank computes the exact rank by Gaussian elimination.
func (m *Matrix) Rank() int {
	a := m.Clone()
	rows, cols := a.rows, a.cols
	zero := new(big.Rat)
	tmp := new(big.Rat)
	rank := 0
	for col := 0; col < cols && rank < rows; col++ {
		pivot := -1
		for r := rank; r < rows; r++ {
			if a.At(r, col).Cmp(zero) != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			continue
		}
		if pivot != rank {
			a.swapRows(pivot, rank)
		}
		inv := new(big.Rat).Inv(a.At(rank, col))
		for r := rank + 1; r < rows; r++ {
			f := new(big.Rat).Mul(a.At(r, col), inv)
			if f.Sign() == 0 {
				continue
			}
			for j := col; j < cols; j++ {
				tmp.Mul(f, a.data[rank*cols+j])
				a.data[r*cols+j].Sub(a.data[r*cols+j], tmp)
			}
		}
		rank++
	}
	return rank
}
