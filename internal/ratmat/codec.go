package ratmat

import (
	"bufio"
	"fmt"
	"io"
	"math/big"
	"strings"
)

// Matrices travel between computational web services as JSON values (small
// operands) or file resources (large operands).  The JSON encoding is an
// array of rows, each an array of exact "p/q" strings, so no precision is
// lost in transport — the property the application depends on.

// ToJSON encodes the matrix as a generic JSON value.
func (m *Matrix) ToJSON() any {
	rows := make([]any, m.rows)
	for i := 0; i < m.rows; i++ {
		row := make([]any, m.cols)
		for j := 0; j < m.cols; j++ {
			row[j] = m.At(i, j).RatString()
		}
		rows[i] = row
	}
	return rows
}

// FromJSON decodes a matrix from its generic JSON value form.
func FromJSON(v any) (*Matrix, error) {
	rows, ok := v.([]any)
	if !ok || len(rows) == 0 {
		return nil, fmt.Errorf("ratmat: decode: expected a non-empty array of rows")
	}
	first, ok := rows[0].([]any)
	if !ok || len(first) == 0 {
		return nil, fmt.Errorf("ratmat: decode: expected non-empty rows")
	}
	m := New(len(rows), len(first))
	for i, rv := range rows {
		row, ok := rv.([]any)
		if !ok {
			return nil, fmt.Errorf("ratmat: decode: row %d is not an array", i)
		}
		if len(row) != m.cols {
			return nil, fmt.Errorf("ratmat: decode: row %d has %d entries, want %d",
				i, len(row), m.cols)
		}
		for j, ev := range row {
			r, err := parseEntry(ev)
			if err != nil {
				return nil, fmt.Errorf("ratmat: decode: entry (%d,%d): %w", i, j, err)
			}
			m.Set(i, j, r)
		}
	}
	return m, nil
}

func parseEntry(v any) (*big.Rat, error) {
	switch x := v.(type) {
	case string:
		r, ok := new(big.Rat).SetString(x)
		if !ok {
			return nil, fmt.Errorf("invalid rational %q", x)
		}
		return r, nil
	case float64:
		return new(big.Rat).SetFloat64(x), nil
	default:
		return nil, fmt.Errorf("unsupported entry type %T", v)
	}
}

// WriteText streams the matrix in the text format used for file-resource
// transport: a header line "rows cols" then one row per line with
// space-separated "p/q" entries.
func (m *Matrix) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%d %d\n", m.rows, m.cols); err != nil {
		return err
	}
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				if err := bw.WriteByte(' '); err != nil {
					return err
				}
			}
			if _, err := bw.WriteString(m.At(i, j).RatString()); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadText parses the text format produced by WriteText.
func ReadText(r io.Reader) (*Matrix, error) {
	br := bufio.NewReader(r)
	var rows, cols int
	if _, err := fmt.Fscanf(br, "%d %d\n", &rows, &cols); err != nil {
		return nil, fmt.Errorf("ratmat: read header: %w", err)
	}
	if rows <= 0 || cols <= 0 || rows > 1<<20 || cols > 1<<20 {
		return nil, fmt.Errorf("ratmat: implausible shape %dx%d", rows, cols)
	}
	m := New(rows, cols)
	for i := 0; i < rows; i++ {
		line, err := br.ReadString('\n')
		if err != nil && !(err == io.EOF && i == rows-1 && line != "") {
			return nil, fmt.Errorf("ratmat: read row %d: %w", i, err)
		}
		fields := strings.Fields(line)
		if len(fields) != cols {
			return nil, fmt.Errorf("ratmat: row %d has %d entries, want %d", i, len(fields), cols)
		}
		for j, f := range fields {
			v, ok := new(big.Rat).SetString(f)
			if !ok {
				return nil, fmt.Errorf("ratmat: row %d: invalid rational %q", i, f)
			}
			m.Set(i, j, v)
		}
	}
	return m, nil
}

// TextSize returns the byte size of the matrix's text encoding without
// materializing it, used by the overhead experiment to account transfer
// volume.
func (m *Matrix) TextSize() int64 {
	var n int64
	n += int64(len(fmt.Sprintf("%d %d\n", m.rows, m.cols)))
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			n += int64(len(m.At(i, j).RatString())) + 1
		}
	}
	return n
}
