package ratmat

import (
	"context"
	"fmt"
	"math/big"
)

// This file implements the distributed matrix-inversion algorithm of the
// paper's first application: inversion by block decomposition and the
// Schur complement.  The matrix is split into 2×2 blocks
//
//	M = | A  B |
//	    | C  D |
//
// and the inverse is assembled from the inverses of A and of the Schur
// complement S = D − C·A⁻¹·B:
//
//	M⁻¹ = | A⁻¹ + A⁻¹B·S⁻¹·CA⁻¹   −A⁻¹B·S⁻¹ |
//	      | −S⁻¹·CA⁻¹              S⁻¹       |
//
// The multiplications on independent operands can run in parallel — in the
// platform they are separate service calls composed in a workflow — while
// the two inversions are sequential through the Schur dependency.  That
// structure is exactly why the paper reports modest (1.6–2.7×) speedups
// for the 4-block decomposition.

// Split2x2 cuts a square matrix into four blocks at row/column k.
func Split2x2(m *Matrix, k int) (a, b, c, d *Matrix, err error) {
	n := m.Rows()
	if m.Cols() != n {
		return nil, nil, nil, nil, fmt.Errorf("ratmat: split of non-square matrix")
	}
	if k <= 0 || k >= n {
		return nil, nil, nil, nil, fmt.Errorf("ratmat: split point %d out of (0,%d)", k, n)
	}
	if a, err = m.Submatrix(0, k, 0, k); err != nil {
		return
	}
	if b, err = m.Submatrix(0, k, k, n); err != nil {
		return
	}
	if c, err = m.Submatrix(k, n, 0, k); err != nil {
		return
	}
	d, err = m.Submatrix(k, n, k, n)
	return
}

// BlockOps abstracts the elementary matrix operations used by the block
// algorithm, so the same driver can run them locally (BlockOps = LocalOps)
// or as remote computational web services (the matrixinv example wires
// each operation to a service call).  Every method must be safe for
// concurrent use.
type BlockOps interface {
	Inverse(ctx context.Context, m *Matrix) (*Matrix, error)
	Mul(ctx context.Context, a, b *Matrix) (*Matrix, error)
	Sub(ctx context.Context, a, b *Matrix) (*Matrix, error)
	Add(ctx context.Context, a, b *Matrix) (*Matrix, error)
	Neg(ctx context.Context, m *Matrix) (*Matrix, error)
}

// LocalOps runs the block operations in-process.
type LocalOps struct{}

// Inverse implements BlockOps.
func (LocalOps) Inverse(_ context.Context, m *Matrix) (*Matrix, error) { return m.Inverse() }

// Mul implements BlockOps.
func (LocalOps) Mul(_ context.Context, a, b *Matrix) (*Matrix, error) { return a.Mul(b) }

// Sub implements BlockOps.
func (LocalOps) Sub(_ context.Context, a, b *Matrix) (*Matrix, error) { return a.Sub(b) }

// Add implements BlockOps.
func (LocalOps) Add(_ context.Context, a, b *Matrix) (*Matrix, error) { return a.Add(b) }

// Neg implements BlockOps.
func (LocalOps) Neg(_ context.Context, m *Matrix) (*Matrix, error) { return m.Neg(), nil }

// BlockInverse inverts m by 2×2 block decomposition at split point k using
// the given operations.  Independent operations are issued concurrently.
// If block A is singular the decomposition fails even when m itself is
// invertible; callers fall back to direct inversion (Hilbert blocks are
// always invertible, so the experiment never takes the fallback).
func BlockInverse(ctx context.Context, ops BlockOps, m *Matrix, k int) (*Matrix, error) {
	a, b, c, d, err := Split2x2(m, k)
	if err != nil {
		return nil, err
	}

	ainv, err := ops.Inverse(ctx, a) // A⁻¹
	if err != nil {
		return nil, fmt.Errorf("ratmat: block A: %w", err)
	}

	// The two products C·A⁻¹ and A⁻¹·B are independent: run them in
	// parallel, as the workflow does.
	type res struct {
		m   *Matrix
		err error
	}
	caCh := make(chan res, 1)
	abCh := make(chan res, 1)
	go func() {
		m, err := ops.Mul(ctx, c, ainv)
		caCh <- res{m, err}
	}()
	go func() {
		m, err := ops.Mul(ctx, ainv, b)
		abCh <- res{m, err}
	}()
	ca := <-caCh
	ab := <-abCh
	if ca.err != nil {
		return nil, fmt.Errorf("ratmat: C·A⁻¹: %w", ca.err)
	}
	if ab.err != nil {
		return nil, fmt.Errorf("ratmat: A⁻¹·B: %w", ab.err)
	}

	// S = D − (C·A⁻¹)·B, then S⁻¹.
	cab, err := ops.Mul(ctx, ca.m, b)
	if err != nil {
		return nil, err
	}
	s, err := ops.Sub(ctx, d, cab)
	if err != nil {
		return nil, err
	}
	sinv, err := ops.Inverse(ctx, s)
	if err != nil {
		return nil, fmt.Errorf("ratmat: Schur complement: %w", err)
	}

	// The two corner products are independent again.
	go func() {
		m, err := ops.Mul(ctx, ab.m, sinv) // A⁻¹B·S⁻¹
		abCh <- res{m, err}
	}()
	go func() {
		m, err := ops.Mul(ctx, sinv, ca.m) // S⁻¹·CA⁻¹
		caCh <- res{m, err}
	}()
	absinv := <-abCh
	sca := <-caCh
	if absinv.err != nil {
		return nil, absinv.err
	}
	if sca.err != nil {
		return nil, sca.err
	}

	// Top-left: A⁻¹ + (A⁻¹B·S⁻¹)·(CA⁻¹).
	corr, err := ops.Mul(ctx, absinv.m, ca.m)
	if err != nil {
		return nil, err
	}
	tl, err := ops.Add(ctx, ainv, corr)
	if err != nil {
		return nil, err
	}
	tr, err := ops.Neg(ctx, absinv.m)
	if err != nil {
		return nil, err
	}
	bl, err := ops.Neg(ctx, sca.m)
	if err != nil {
		return nil, err
	}
	return Assemble(tl, tr, bl, sinv)
}

// Verify checks that inv is the exact inverse of m (m·inv = I).
func Verify(m, inv *Matrix) error {
	prod, err := m.Mul(inv)
	if err != nil {
		return err
	}
	if !prod.IsIdentity() {
		return fmt.Errorf("ratmat: verification failed: product is not the identity")
	}
	return nil
}

// ResidualNorm returns the max-norm of m·inv − I as a float, used to show
// that floating-point inversion of Hilbert matrices breaks down while the
// exact path stays at zero.
func ResidualNorm(m, inv *Matrix) (float64, error) {
	prod, err := m.Mul(inv)
	if err != nil {
		return 0, err
	}
	id := Identity(m.Rows())
	diff, err := prod.Sub(id)
	if err != nil {
		return 0, err
	}
	max := new(big.Rat)
	for i := 0; i < diff.Rows(); i++ {
		for j := 0; j < diff.Cols(); j++ {
			v := new(big.Rat).Abs(diff.At(i, j))
			if v.Cmp(max) > 0 {
				max = v
			}
		}
	}
	f, _ := max.Float64()
	return f, nil
}
