package ratmat

import (
	"bytes"
	"context"
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHilbertEntries(t *testing.T) {
	h := Hilbert(3)
	want := [][]int64{{1, 2, 3}, {2, 3, 4}, {3, 4, 5}}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if h.At(i, j).Cmp(big.NewRat(1, want[i][j])) != 0 {
				t.Errorf("H[%d][%d] = %s, want 1/%d", i, j, h.At(i, j), want[i][j])
			}
		}
	}
}

func TestInverseAgainstClosedFormHilbert(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8, 12} {
		inv, err := Hilbert(n).Inverse()
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !inv.Equal(HilbertInverse(n)) {
			t.Errorf("n=%d: Gauss-Jordan inverse differs from closed form", n)
		}
	}
}

func TestInverseIsExact(t *testing.T) {
	// The whole point of the application: H·H⁻¹ is *exactly* the
	// identity, even for ill-conditioned Hilbert matrices.
	for _, n := range []int{5, 10, 20} {
		h := Hilbert(n)
		inv, err := h.Inverse()
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if err := Verify(h, inv); err != nil {
			t.Errorf("n=%d: %v", n, err)
		}
		res, err := ResidualNorm(h, inv)
		if err != nil {
			t.Fatal(err)
		}
		if res != 0 {
			t.Errorf("n=%d: residual %g, want exactly 0", n, res)
		}
	}
}

func TestSingularMatrix(t *testing.T) {
	m := New(2, 2)
	m.SetInt(0, 0, 1)
	m.SetInt(0, 1, 2)
	m.SetInt(1, 0, 2)
	m.SetInt(1, 1, 4)
	if _, err := m.Inverse(); err == nil {
		t.Fatal("inverted a singular matrix")
	}
}

// randomInvertible builds a random integer matrix that is invertible with
// probability ~1 (diagonally dominant).
func randomInvertible(rng *rand.Rand, n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		sum := int64(0)
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			v := int64(rng.Intn(19) - 9)
			m.SetInt(i, j, v)
			if v < 0 {
				sum -= v
			} else {
				sum += v
			}
		}
		m.SetInt(i, i, sum+1+int64(rng.Intn(5)))
	}
	return m
}

func TestPropertyInverseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cfg := &quick.Config{MaxCount: 30, Rand: rng}
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(8)
		m := randomInvertible(r, n)
		inv, err := m.Inverse()
		if err != nil {
			return false
		}
		return Verify(m, inv) == nil && Verify(inv, m) == nil
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestPropertyBlockInverseMatchesDirect(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(9)
		m := randomInvertible(r, n)
		direct, err := m.Inverse()
		if err != nil {
			return false
		}
		k := 1 + r.Intn(n-1)
		block, err := BlockInverse(context.Background(), LocalOps{}, m, k)
		if err != nil {
			// Block A may be singular even when m is not; that is a
			// documented limitation, not a failure.
			_, ok := err.(SingularError)
			if !ok {
				var se SingularError
				ok = errorsAs(err, &se)
			}
			return ok
		}
		return block.Equal(direct)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func errorsAs(err error, target *SingularError) bool {
	for err != nil {
		if se, ok := err.(SingularError); ok {
			*target = se
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

func TestBlockInverseHilbert(t *testing.T) {
	for _, n := range []int{4, 9, 16} {
		h := Hilbert(n)
		inv, err := BlockInverse(context.Background(), LocalOps{}, h, n/2)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !inv.Equal(HilbertInverse(n)) {
			t.Errorf("n=%d: block inverse differs from closed form", n)
		}
	}
}

func TestArithmeticIdentities(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randomInvertible(rng, 5)
	b := randomInvertible(rng, 5)

	sum, err := a.Add(b)
	if err != nil {
		t.Fatal(err)
	}
	diff, err := sum.Sub(b)
	if err != nil {
		t.Fatal(err)
	}
	if !diff.Equal(a) {
		t.Error("(a+b)-b != a")
	}
	if !a.Transpose().Transpose().Equal(a) {
		t.Error("transpose is not involutive")
	}
	ab, err := a.Mul(b)
	if err != nil {
		t.Fatal(err)
	}
	btat, err := b.Transpose().Mul(a.Transpose())
	if err != nil {
		t.Fatal(err)
	}
	if !ab.Transpose().Equal(btat) {
		t.Error("(ab)' != b'a'")
	}
	if !a.Neg().Neg().Equal(a) {
		t.Error("double negation is not identity")
	}
	half := big.NewRat(1, 2)
	two := big.NewRat(2, 1)
	if !a.Scale(half).Scale(two).Equal(a) {
		t.Error("scale(2)·scale(1/2) is not identity")
	}
}

func TestSplitAssembleRoundTrip(t *testing.T) {
	m := Hilbert(7)
	a, b, c, d, err := Split2x2(m, 3)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Assemble(a, b, c, d)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(m) {
		t.Error("split/assemble round trip changed the matrix")
	}
}

func TestJSONCodecRoundTrip(t *testing.T) {
	m := Hilbert(6)
	back, err := FromJSON(m.ToJSON())
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(m) {
		t.Error("JSON round trip changed the matrix")
	}
}

func TestTextCodecRoundTrip(t *testing.T) {
	inv, err := Hilbert(8).Inverse()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := inv.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if got := int64(buf.Len()); got != inv.TextSize() {
		t.Errorf("TextSize = %d, want %d", inv.TextSize(), got)
	}
	back, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(inv) {
		t.Error("text round trip changed the matrix")
	}
}

func TestFromJSONRejectsMalformed(t *testing.T) {
	cases := []any{
		nil,
		[]any{},
		[]any{[]any{}},
		[]any{[]any{"1/2"}, []any{"1", "2"}},
		[]any{[]any{"not-a-rat"}},
		[]any{[]any{true}},
		"hello",
	}
	for i, c := range cases {
		if _, err := FromJSON(c); err == nil {
			t.Errorf("case %d: malformed matrix accepted", i)
		}
	}
}

func TestShapeMismatches(t *testing.T) {
	a := New(2, 3)
	b := New(3, 2)
	if _, err := a.Add(b); err == nil {
		t.Error("added mismatched shapes")
	}
	if _, err := a.Sub(b); err == nil {
		t.Error("subtracted mismatched shapes")
	}
	if _, err := New(2, 2).Mul(New(3, 3)); err == nil {
		t.Error("multiplied mismatched inner dims")
	}
	if _, err := a.Inverse(); err == nil {
		t.Error("inverted a non-square matrix")
	}
}

func TestMaxBitLenGrowsForIllConditioned(t *testing.T) {
	inv10, _ := Hilbert(10).Inverse()
	inv20, _ := Hilbert(20).Inverse()
	if !(inv20.MaxBitLen() > inv10.MaxBitLen()) {
		t.Errorf("bit length did not grow: %d vs %d", inv10.MaxBitLen(), inv20.MaxBitLen())
	}
}

func TestDeterminantProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(5)
		a := randomInvertible(rng, n)
		b := randomInvertible(rng, n)
		da, err := a.Determinant()
		if err != nil {
			t.Fatal(err)
		}
		db, _ := b.Determinant()
		ab, _ := a.Mul(b)
		dab, _ := ab.Determinant()
		// det(AB) = det(A)·det(B), exactly.
		want := new(big.Rat).Mul(da, db)
		if dab.Cmp(want) != 0 {
			t.Fatalf("det(AB) = %s, want %s", dab.RatString(), want.RatString())
		}
		// Invertible matrices have full rank and nonzero determinant.
		if da.Sign() == 0 || a.Rank() != n {
			t.Fatalf("invertible matrix has det %s rank %d", da.RatString(), a.Rank())
		}
	}
	// A singular matrix: det 0, deficient rank.
	s := New(3, 3)
	s.SetInt(0, 0, 1)
	s.SetInt(1, 0, 2)
	s.SetInt(2, 0, 3)
	d, err := s.Determinant()
	if err != nil || d.Sign() != 0 {
		t.Errorf("det = %v err = %v, want 0", d, err)
	}
	if s.Rank() != 1 {
		t.Errorf("rank = %d, want 1", s.Rank())
	}
}
