package journal

import (
	"time"

	"mathcloud/internal/core"
)

// Kind tags the payload type of one journal record.  Values are stable
// on-disk identifiers: never renumber, only append.
type Kind uint8

// Record kinds.
const (
	// KindJob carries a full job record: the submit image of a new job
	// (WAITING, or DONE for a cache hit born terminal) and the snapshot
	// image of an existing one.  Replay upserts by job ID, last wins.
	KindJob Kind = 1
	// KindJobStart marks the WAITING→RUNNING transition.
	KindJobStart Kind = 2
	// KindJobEnd carries the terminal transition with outputs or error.
	KindJobEnd Kind = 3
	// KindJobPurge marks the destruction of a terminal job resource.
	// Replay of a purge is idempotent: purging an already-absent job (or
	// re-applying the purge after a snapshot already dropped it) is a no-op.
	KindJobPurge Kind = 4
	// KindSweep carries a whole parameter sweep: template, points and child
	// IDs.  Child inputs are re-derived at replay, so a width-N sweep costs
	// one record, not N.
	KindSweep Kind = 5
	// KindSweepPurge marks the destruction of a terminal sweep resource.
	KindSweepPurge Kind = 6
	// KindFilePut registers one file ID over a content-addressed blob.
	KindFilePut Kind = 7
	// KindFileDel releases one file ID (refcounted; the blob goes with the
	// last ID).  Replay tolerates deleting an absent ID.
	KindFileDel Kind = 8
	// KindMemoPut caches one computation result in the memo index, keyed by
	// the canonical content hash of its inputs.
	KindMemoPut Kind = 9
	// KindBaseURL records the externally visible base URL, so recovered
	// state whose outputs embed absolute file URIs stays valid across a
	// same-URL restart (and is dropped on a URL change).
	KindBaseURL Kind = 10
	// KindCatRegister and KindCatUnregister journal catalogue
	// registrations; their payloads are defined by internal/catalogue.
	KindCatRegister   Kind = 11
	KindCatUnregister Kind = 12
)

// String names the kind for logs and metrics labels.
func (k Kind) String() string {
	switch k {
	case KindJob:
		return "job"
	case KindJobStart:
		return "job_start"
	case KindJobEnd:
		return "job_end"
	case KindJobPurge:
		return "job_purge"
	case KindSweep:
		return "sweep"
	case KindSweepPurge:
		return "sweep_purge"
	case KindFilePut:
		return "file_put"
	case KindFileDel:
		return "file_del"
	case KindMemoPut:
		return "memo_put"
	case KindBaseURL:
		return "base_url"
	case KindCatRegister:
		return "cat_register"
	case KindCatUnregister:
		return "cat_unregister"
	}
	return "unknown"
}

// JobRecord is the KindJob payload: a full job image plus its durability
// envelope (owning sweep, destruction TTL).
type JobRecord struct {
	Job     *core.Job     `json:"job"`
	SweepID string        `json:"sweepId,omitempty"`
	TTL     core.Duration `json:"ttl,omitempty"`
}

// JobStartRecord is the KindJobStart payload.
type JobStartRecord struct {
	ID      string    `json:"id"`
	Started time.Time `json:"started"`
}

// JobEndRecord is the KindJobEnd payload.
type JobEndRecord struct {
	ID          string        `json:"id"`
	State       core.JobState `json:"state"`
	Outputs     core.Values   `json:"outputs,omitempty"`
	Error       string        `json:"error,omitempty"`
	Finished    time.Time     `json:"finished"`
	Destruction time.Time     `json:"destruction,omitempty"`
}

// JobPurgeRecord is the KindJobPurge payload.
type JobPurgeRecord struct {
	ID string `json:"id"`
}

// SweepRecord is the KindSweep payload: one record for the whole campaign.
// Child inputs are re-derived from Template+Points at replay; only children
// whose state diverged (started, finished, born-DONE) have records of their
// own.
type SweepRecord struct {
	ID       string        `json:"id"`
	Service  string        `json:"service"`
	Owner    string        `json:"owner,omitempty"`
	TraceID  string        `json:"traceId,omitempty"`
	Created  time.Time     `json:"created"`
	Width    int           `json:"width"`
	ChildIDs []string      `json:"childIds"`
	Template core.Values   `json:"template,omitempty"`
	Points   []core.Values `json:"points"`
	TTL      core.Duration `json:"ttl,omitempty"`
}

// SweepPurgeRecord is the KindSweepPurge payload.
type SweepPurgeRecord struct {
	ID string `json:"id"`
}

// FilePutRecord is the KindFilePut payload: one file ID over a blob that is
// expected to exist at sha256-<digest> under the store directory.  Replay
// validates existence, so a blob lost with the page cache degrades to a
// missing-file error rather than a dangling reference.
type FilePutRecord struct {
	ID     string `json:"id"`
	Digest string `json:"digest"`
	Size   int64  `json:"size"`
	Owner  string `json:"owner,omitempty"`
}

// FileDelRecord is the KindFileDel payload.
type FileDelRecord struct {
	ID string `json:"id"`
}

// MemoPutRecord is the KindMemoPut payload.  Key is the canonical content
// hash of (service, version, inputs); recovered entries re-validate cheaply
// against the FileStore — every file reference in Outputs must resolve —
// before re-entering the cache.
type MemoPutRecord struct {
	Key     string      `json:"key"`
	Service string      `json:"service"`
	JobID   string      `json:"jobId"`
	Outputs core.Values `json:"outputs"`
}

// BaseURLRecord is the KindBaseURL payload.
type BaseURLRecord struct {
	URL string `json:"url"`
}
