package journal

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

type testRecord struct {
	N int    `json:"n"`
	S string `json:"s,omitempty"`
}

// replayAll collects every replayed record of a fresh journal over dir.
func replayAll(t *testing.T, dir string) []testRecord {
	t.Helper()
	j, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer j.Close()
	var out []testRecord
	err = j.Replay(func(kind Kind, data []byte) error {
		if kind != KindJob {
			return fmt.Errorf("unexpected kind %v", kind)
		}
		var r testRecord
		if err := Decode(data, &r); err != nil {
			return err
		}
		out = append(out, r)
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return out
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{Mode: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := j.Append(KindJob, testRecord{N: i, S: "payload"}); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	got := replayAll(t, dir)
	if len(got) != 100 {
		t.Fatalf("replayed %d records, want 100", len(got))
	}
	for i, r := range got {
		if r.N != i || r.S != "payload" {
			t.Fatalf("record %d = %+v, want {%d payload}", i, r, i)
		}
	}
}

func TestTornTailEndsReplayCleanly(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := j.Append(KindJob, testRecord{N: i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the tail: chop the last record mid-body, as a crash during the
	// final write(2) would.
	seg := filepath.Join(dir, segmentName(1))
	info, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(seg, info.Size()-5); err != nil {
		t.Fatal(err)
	}
	got := replayAll(t, dir)
	if len(got) != 9 {
		t.Fatalf("replayed %d records after torn tail, want 9", len(got))
	}
}

func TestCorruptRecordStopsSegment(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := j.Append(KindJob, testRecord{N: i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip one byte inside the third record's body: its CRC check must fail
	// and end the segment's replay there.
	seg := filepath.Join(dir, segmentName(1))
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	off := 0
	for i := 0; i < 2; i++ {
		off += frameHeader + int(binary.LittleEndian.Uint32(data[off:off+4]))
	}
	data[off+frameHeader+2] ^= 0xff
	if err := os.WriteFile(seg, data, 0o600); err != nil {
		t.Fatal(err)
	}
	got := replayAll(t, dir)
	if len(got) != 2 {
		t.Fatalf("replayed %d records after corruption, want 2", len(got))
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := j.Append(KindJob, testRecord{N: i, S: "xxxxxxxxxxxxxxxx"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	segs := 0
	for _, e := range entries {
		if _, ok := parseSeq(e.Name(), "wal-", ".log"); ok {
			segs++
		}
	}
	if segs < 2 {
		t.Fatalf("expected rotation to produce multiple segments, got %d", segs)
	}
	got := replayAll(t, dir)
	if len(got) != 50 {
		t.Fatalf("replayed %d records across segments, want 50", len(got))
	}
}

func TestSnapshotTruncatesAndReplays(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if err := j.Append(KindJob, testRecord{N: i, S: "xxxxxxxxxxxxxxxx"}); err != nil {
			t.Fatal(err)
		}
	}
	// Snapshot folds the whole prefix into two records.
	err = j.Snapshot(func(app func(Kind, any) error) error {
		if err := app(KindJob, testRecord{N: 1000}); err != nil {
			return err
		}
		return app(KindJob, testRecord{N: 1001})
	})
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	// Tail records after the snapshot cut must survive replay.
	if err := j.Append(KindJob, testRecord{N: 2000}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	got := replayAll(t, dir)
	want := []int{1000, 1001, 2000}
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d (%v)", len(got), len(want), got)
	}
	for i, w := range want {
		if got[i].N != w {
			t.Fatalf("record %d = %d, want %d", i, got[i].N, w)
		}
	}
	// Pre-snapshot segments are gone.
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if seq, ok := parseSeq(e.Name(), "wal-", ".log"); ok && seq < 2 {
			t.Fatalf("stale segment %s survived truncation", e.Name())
		}
	}
}

func TestGroupCommitConcurrentAppends(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{Mode: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	const goroutines, each = 8, 50
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if err := j.Append(KindJob, testRecord{N: g*each + i}); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	got := replayAll(t, dir)
	if len(got) != goroutines*each {
		t.Fatalf("replayed %d records, want %d", len(got), goroutines*each)
	}
	seen := make(map[int]bool, len(got))
	for _, r := range got {
		if seen[r.N] {
			t.Fatalf("duplicate record %d", r.N)
		}
		seen[r.N] = true
	}
}

func TestSyncBatchModeDurableAfterClose(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{Mode: SyncBatch, BatchInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := j.Append(KindJob, testRecord{N: i}); err != nil {
			t.Fatal(err)
		}
	}
	// Give the background syncer a tick, then close (which syncs anyway).
	time.Sleep(5 * time.Millisecond)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if got := replayAll(t, dir); len(got) != 20 {
		t.Fatalf("replayed %d records, want 20", len(got))
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	j, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(KindJob, testRecord{N: 1}); err == nil {
		t.Fatal("append after close succeeded")
	}
}

func TestParseSyncMode(t *testing.T) {
	cases := map[string]SyncMode{"off": SyncOff, "": SyncOff, "batch": SyncBatch, "always": SyncAlways, "ALWAYS": SyncAlways}
	for in, want := range cases {
		got, err := ParseSyncMode(in)
		if err != nil || got != want {
			t.Fatalf("ParseSyncMode(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseSyncMode("bogus"); err == nil {
		t.Fatal("ParseSyncMode accepted bogus mode")
	}
}

func TestInterruptedSnapshotTmpCleaned(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(KindJob, testRecord{N: 7}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-snapshot: a leftover .tmp file must not be
	// treated as a snapshot, and Open must discard it.
	tmp := filepath.Join(dir, snapshotName(9)+".tmp")
	if err := os.WriteFile(tmp, []byte("garbage"), 0o600); err != nil {
		t.Fatal(err)
	}
	got := replayAll(t, dir)
	if len(got) != 1 || got[0].N != 7 {
		t.Fatalf("replay after interrupted snapshot = %v, want [{7}]", got)
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatal("leftover snapshot tmp file survived Open")
	}
}

func TestLiveBytesTracksAppendsAndSnapshot(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if j.LiveBytes() != 0 {
		t.Fatalf("fresh journal LiveBytes = %d, want 0", j.LiveBytes())
	}
	for i := 0; i < 50; i++ {
		if err := j.Append(KindJob, testRecord{N: i, S: "livebytes payload"}); err != nil {
			t.Fatal(err)
		}
	}
	grown := j.LiveBytes()
	if grown <= 0 {
		t.Fatalf("LiveBytes after 50 appends = %d, want > 0", grown)
	}

	// A snapshot truncates the replayed prefix; the live tail shrinks to the
	// snapshot segment boundary (everything before the cut is removed).
	if err := j.Snapshot(func(app func(kind Kind, v any) error) error {
		return app(KindJob, testRecord{N: -1, S: "state"})
	}); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	afterSnap := j.LiveBytes()
	if afterSnap >= grown {
		t.Fatalf("LiveBytes after snapshot = %d, want < %d (pre-snapshot)", afterSnap, grown)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopening inherits the surviving tail as live bytes, so a restarted
	// container's size trigger sees the same pressure.
	j2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if err := j2.Replay(func(Kind, []byte) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if j2.LiveBytes() != afterSnap {
		t.Fatalf("reopened LiveBytes = %d, want %d", j2.LiveBytes(), afterSnap)
	}
}
