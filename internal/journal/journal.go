// Package journal is the durability subsystem of the platform (DESIGN.md
// §5i): a segmented write-ahead log with CRC-framed records, group-commit
// fsync batching, and periodic snapshots with log truncation.
//
// The journal records every control-plane mutation — job lifecycle
// transitions, sweep membership, catalogue registrations, memo-table
// entries, file-store references — as a typed, JSON-encoded record.  On
// boot the owner replays the latest snapshot plus the segments written
// after it and rebuilds its in-memory state; everything else (the
// content-addressed blobs of the FileStore) already lives on disk.
//
// Record framing is `[len uint32][crc32 uint32][payload]`, little-endian,
// where payload is one kind byte followed by the JSON body.  A torn tail
// (the record being written when the process died) fails its length or CRC
// check and cleanly ends replay of that segment; every record before it is
// intact because each append is a single write(2) of a complete frame.
//
// Durability modes trade write latency for power-failure safety:
//
//   - SyncOff:    append returns after write(2).  State survives process
//     death (kill -9) via the page cache, but not power loss.
//   - SyncBatch:  a background syncer fsyncs the active segment every
//     BatchInterval.  Bounded loss window, near-SyncOff latency.
//   - SyncAlways: append returns only after the record is fsynced.
//     Concurrent appenders share one fsync (group commit): the first
//     waiter becomes the leader, syncs once for every record written so
//     far, and wakes the rest.
package journal

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"mathcloud/internal/obs"
)

// WAL metric families (DESIGN.md §5d, §5i).
var (
	metAppends = obs.NewCounter("mc_wal_appends_total",
		"Records appended to the write-ahead journal.")
	metFsyncs = obs.NewCounter("mc_wal_fsyncs_total",
		"fsync calls issued by the journal; under group commit one fsync covers many appends.")
	metBytes = obs.NewCounter("mc_wal_bytes_total",
		"Bytes written to the write-ahead journal, including framing.")
	metSnapshotSeconds = obs.NewHistogram("mc_snapshot_seconds",
		"Time to write one journal snapshot and truncate the log.",
		obs.DurationBuckets)
)

// SyncMode selects when appends are made durable.
type SyncMode int

// Durability modes, in increasing order of safety and latency.
const (
	// SyncOff never fsyncs: appends survive process death but not power
	// failure.
	SyncOff SyncMode = iota
	// SyncBatch fsyncs the active segment on a background interval.
	SyncBatch
	// SyncAlways fsyncs before Append returns, sharing one fsync among
	// concurrent appenders (group commit).
	SyncAlways
)

// String renders the mode in its flag syntax.
func (m SyncMode) String() string {
	switch m {
	case SyncBatch:
		return "batch"
	case SyncAlways:
		return "always"
	default:
		return "off"
	}
}

// ParseSyncMode parses the -wal-sync flag syntax.
func ParseSyncMode(s string) (SyncMode, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "off", "":
		return SyncOff, nil
	case "batch":
		return SyncBatch, nil
	case "always":
		return SyncAlways, nil
	}
	return SyncOff, fmt.Errorf("journal: unknown sync mode %q (want off, batch or always)", s)
}

// Options configure a journal.
type Options struct {
	// Mode selects the durability mode (default SyncOff).
	Mode SyncMode
	// BatchInterval is the background fsync period of SyncBatch
	// (default 25ms).
	BatchInterval time.Duration
	// SegmentBytes bounds one log segment before rotation (default 8 MiB).
	SegmentBytes int64
}

const (
	defaultBatchInterval = 25 * time.Millisecond
	defaultSegmentBytes  = 8 << 20
	// maxRecordBytes bounds a single record; a length prefix above it marks
	// the frame (and the rest of the segment) as corrupt.
	maxRecordBytes = 64 << 20
	frameHeader    = 8 // uint32 length + uint32 crc
)

// Journal is a segmented write-ahead log rooted at one directory.  All
// methods are safe for concurrent use.
type Journal struct {
	dir          string
	mode         SyncMode
	segmentBytes int64

	// replayFiles is the ordered list of files Replay reads: the latest
	// snapshot (if any) followed by the segments at or after its cut.
	// Fixed at Open; appends go to a fresh segment.
	replayFiles []string

	mu   sync.Mutex
	cond *sync.Cond // signalled when a sync round completes
	f    *os.File   // active segment
	seq  uint64     // active segment number
	size int64      // bytes written to the active segment
	// liveBytes approximates the bytes a snapshot would reclaim: every
	// un-truncated segment, including the replay tail a restart inherited.
	// The owner's size-triggered compaction polls it via LiveBytes.
	liveBytes int64
	// writeSeq counts appended records; syncSeq is the highest writeSeq
	// known durable.  A SyncAlways appender waits until syncSeq reaches its
	// own record, electing itself sync leader if no round is in flight.
	writeSeq uint64
	syncSeq  uint64
	syncing  bool
	closed   bool

	stop     chan struct{}
	syncerWG sync.WaitGroup
}

func segmentName(seq uint64) string  { return fmt.Sprintf("wal-%08d.log", seq) }
func snapshotName(seq uint64) string { return fmt.Sprintf("snap-%08d.snap", seq) }

// parseSeq extracts the sequence number of a journal file name, reporting
// whether the name matches the given prefix/suffix shape.
func parseSeq(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	var seq uint64
	digits := name[len(prefix) : len(name)-len(suffix)]
	if _, err := fmt.Sscanf(digits, "%d", &seq); err != nil {
		return 0, false
	}
	return seq, true
}

// Open creates (or re-opens) the journal rooted at dir.  Existing segments
// and the latest snapshot become the replay set; new appends go to a fresh
// segment, so replay and append never touch the same file.
func Open(dir string, opts Options) (*Journal, error) {
	if err := os.MkdirAll(dir, 0o700); err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	var segs []uint64
	var snapSeq uint64
	haveSnap := false
	var maxSeq uint64
	for _, e := range entries {
		name := e.Name()
		if seq, ok := parseSeq(name, "wal-", ".log"); ok {
			segs = append(segs, seq)
			if seq > maxSeq {
				maxSeq = seq
			}
		}
		if seq, ok := parseSeq(name, "snap-", ".snap"); ok {
			if !haveSnap || seq > snapSeq {
				snapSeq = seq
				haveSnap = true
			}
			if seq > maxSeq {
				maxSeq = seq
			}
		}
		// Leftover temp files from an interrupted snapshot are garbage.
		if strings.HasSuffix(name, ".tmp") {
			_ = os.Remove(filepath.Join(dir, name))
		}
	}
	sort.Slice(segs, func(i, k int) bool { return segs[i] < segs[k] })

	j := &Journal{
		dir:          dir,
		mode:         opts.Mode,
		segmentBytes: opts.SegmentBytes,
		stop:         make(chan struct{}),
	}
	if j.segmentBytes <= 0 {
		j.segmentBytes = defaultSegmentBytes
	}
	j.cond = sync.NewCond(&j.mu)
	if haveSnap {
		j.replayFiles = append(j.replayFiles, filepath.Join(dir, snapshotName(snapSeq)))
	}
	for _, seq := range segs {
		// Segments below the snapshot cut are stale: their records are
		// folded into the snapshot (they survive only when a crash hit the
		// window between snapshot rename and truncation).
		if haveSnap && seq < snapSeq {
			_ = os.Remove(filepath.Join(dir, segmentName(seq)))
			continue
		}
		path := filepath.Join(dir, segmentName(seq))
		j.replayFiles = append(j.replayFiles, path)
		// The inherited tail counts as live: a restart into a long
		// un-snapshotted log should compact promptly under a size trigger.
		if info, err := os.Stat(path); err == nil {
			j.liveBytes += info.Size()
		}
	}
	j.seq = maxSeq + 1
	f, err := os.OpenFile(filepath.Join(dir, segmentName(j.seq)), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o600)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	j.f = f
	if j.mode == SyncBatch {
		interval := opts.BatchInterval
		if interval <= 0 {
			interval = defaultBatchInterval
		}
		j.syncerWG.Add(1)
		go j.batchSyncer(interval)
	}
	return j, nil
}

// Dir returns the journal's root directory.
func (j *Journal) Dir() string { return j.dir }

// encode frames one record: kind byte + JSON payload behind a length/CRC
// header.
func encode(kind Kind, v any) ([]byte, error) {
	body, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("journal: encode %v record: %w", kind, err)
	}
	payload := make([]byte, 0, frameHeader+1+len(body))
	payload = append(payload, make([]byte, frameHeader)...)
	payload = append(payload, byte(kind))
	payload = append(payload, body...)
	binary.LittleEndian.PutUint32(payload[0:4], uint32(len(payload)-frameHeader))
	binary.LittleEndian.PutUint32(payload[4:8], crc32.ChecksumIEEE(payload[frameHeader:]))
	return payload, nil
}

// Append writes one record to the journal.  Under SyncAlways it returns
// only once the record is fsynced; concurrent appenders share one fsync.
func (j *Journal) Append(kind Kind, v any) error {
	frame, err := encode(kind, v)
	if err != nil {
		return err
	}
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return fmt.Errorf("journal: closed")
	}
	if j.size+int64(len(frame)) > j.segmentBytes && j.size > 0 {
		if err := j.rotateLocked(); err != nil {
			j.mu.Unlock()
			return err
		}
	}
	if _, err := j.f.Write(frame); err != nil {
		j.mu.Unlock()
		return fmt.Errorf("journal: append: %w", err)
	}
	j.size += int64(len(frame))
	j.liveBytes += int64(len(frame))
	j.writeSeq++
	mySeq := j.writeSeq
	metAppends.Inc()
	metBytes.Add(float64(len(frame)))
	if j.mode != SyncAlways {
		j.mu.Unlock()
		return nil
	}
	// Group commit: wait until a sync round covers this record, electing
	// ourselves leader when no round is in flight.  The leader syncs once
	// for every record written before it started, so a burst of concurrent
	// appends costs one fsync, not one each.
	for j.syncSeq < mySeq {
		if j.closed {
			j.mu.Unlock()
			return fmt.Errorf("journal: closed")
		}
		if !j.syncing {
			j.syncing = true
			cover := j.writeSeq
			f := j.f
			j.mu.Unlock()
			serr := f.Sync()
			metFsyncs.Inc()
			j.mu.Lock()
			j.syncing = false
			if serr == nil && cover > j.syncSeq {
				j.syncSeq = cover
			}
			j.cond.Broadcast()
			if serr != nil {
				j.mu.Unlock()
				return fmt.Errorf("journal: fsync: %w", serr)
			}
		} else {
			j.cond.Wait()
		}
	}
	j.mu.Unlock()
	return nil
}

// rotateLocked closes the active segment and opens the next one.  Callers
// must hold j.mu.  The outgoing segment is fsynced (except under SyncOff)
// so the global syncSeq watermark stays truthful across the file switch.
func (j *Journal) rotateLocked() error {
	for j.syncing {
		j.cond.Wait()
	}
	if j.mode != SyncOff {
		if err := j.f.Sync(); err != nil {
			return fmt.Errorf("journal: rotate: %w", err)
		}
		metFsyncs.Inc()
		j.syncSeq = j.writeSeq
		j.cond.Broadcast()
	}
	if err := j.f.Close(); err != nil {
		return fmt.Errorf("journal: rotate: %w", err)
	}
	j.seq++
	f, err := os.OpenFile(filepath.Join(j.dir, segmentName(j.seq)), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o600)
	if err != nil {
		return fmt.Errorf("journal: rotate: %w", err)
	}
	j.f = f
	j.size = 0
	return nil
}

// batchSyncer is the SyncBatch background loop: it fsyncs the active
// segment whenever unsynced records exist.
func (j *Journal) batchSyncer(interval time.Duration) {
	defer j.syncerWG.Done()
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-j.stop:
			return
		case <-ticker.C:
		}
		j.mu.Lock()
		if j.closed || j.syncing || j.writeSeq == j.syncSeq {
			j.mu.Unlock()
			continue
		}
		j.syncing = true
		cover := j.writeSeq
		f := j.f
		j.mu.Unlock()
		err := f.Sync()
		metFsyncs.Inc()
		j.mu.Lock()
		j.syncing = false
		if err == nil && cover > j.syncSeq {
			j.syncSeq = cover
		}
		j.cond.Broadcast()
		j.mu.Unlock()
	}
}

// LiveBytes approximates the un-truncated journal bytes — what a
// snapshot would reclaim.  Owners use it for size-triggered compaction.
func (j *Journal) LiveBytes() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.liveBytes
}

// Sync forces the active segment to stable storage, regardless of mode.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return fmt.Errorf("journal: closed")
	}
	for j.syncing {
		j.cond.Wait()
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("journal: fsync: %w", err)
	}
	metFsyncs.Inc()
	j.syncSeq = j.writeSeq
	j.cond.Broadcast()
	return nil
}

// Close flushes and closes the journal.  Further appends fail.
func (j *Journal) Close() error {
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return nil
	}
	j.closed = true
	close(j.stop)
	for j.syncing {
		j.cond.Wait()
	}
	var err error
	if j.mode != SyncOff {
		err = j.f.Sync()
	}
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	j.cond.Broadcast()
	j.mu.Unlock()
	j.syncerWG.Wait()
	return err
}

// Replay streams every durable record — the latest snapshot followed by the
// segments written after its cut — to fn in append order.  A torn tail (the
// record being written when the process died) ends that file's replay
// cleanly; a decoding error from fn aborts the whole replay.
func (j *Journal) Replay(fn func(kind Kind, data []byte) error) error {
	for _, path := range j.replayFiles {
		if err := replayFile(path, fn); err != nil {
			return err
		}
	}
	return nil
}

// replayFile frames one file's records out to fn, stopping cleanly at a
// torn or corrupt tail.
func replayFile(path string, fn func(kind Kind, data []byte) error) error {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("journal: replay %s: %w", filepath.Base(path), err)
	}
	defer f.Close()
	var header [frameHeader]byte
	for {
		if _, err := io.ReadFull(f, header[:]); err != nil {
			// Clean EOF, or a header torn by the crash: replay ends here.
			return nil
		}
		length := binary.LittleEndian.Uint32(header[0:4])
		sum := binary.LittleEndian.Uint32(header[4:8])
		if length == 0 || length > maxRecordBytes {
			return nil
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(f, payload); err != nil {
			return nil // torn body
		}
		if crc32.ChecksumIEEE(payload) != sum {
			return nil // corrupt record: everything after it is suspect
		}
		if err := fn(Kind(payload[0]), payload[1:]); err != nil {
			return err
		}
	}
}

// Snapshot compacts the journal: it rotates to a fresh segment, writes the
// owner-provided full state as a snapshot file using the same record
// framing, then truncates every segment and snapshot older than the cut.
// Records appended concurrently land in segments at or after the cut, so a
// replay of snapshot+tail is idempotent-by-construction for owners whose
// apply functions tolerate duplicates (last-wins).
func (j *Journal) Snapshot(write func(app func(kind Kind, v any) error) error) error {
	start := time.Now()
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return fmt.Errorf("journal: closed")
	}
	if err := j.rotateLocked(); err != nil {
		j.mu.Unlock()
		return err
	}
	cut := j.seq
	j.mu.Unlock()

	tmpPath := filepath.Join(j.dir, snapshotName(cut)+".tmp")
	f, err := os.OpenFile(tmpPath, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o600)
	if err != nil {
		return fmt.Errorf("journal: snapshot: %w", err)
	}
	app := func(kind Kind, v any) error {
		frame, err := encode(kind, v)
		if err != nil {
			return err
		}
		_, err = f.Write(frame)
		return err
	}
	err = write(app)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		_ = os.Remove(tmpPath)
		return fmt.Errorf("journal: snapshot: %w", err)
	}
	if err := os.Rename(tmpPath, filepath.Join(j.dir, snapshotName(cut))); err != nil {
		_ = os.Remove(tmpPath)
		return fmt.Errorf("journal: snapshot: %w", err)
	}
	// Make the rename durable before deleting the segments it supersedes.
	if d, derr := os.Open(j.dir); derr == nil {
		_ = d.Sync()
		_ = d.Close()
	}
	// Truncate: everything before the cut is folded into the snapshot.
	var live int64
	entries, err := os.ReadDir(j.dir)
	if err == nil {
		for _, e := range entries {
			name := e.Name()
			if seq, ok := parseSeq(name, "wal-", ".log"); ok {
				if seq < cut {
					_ = os.Remove(filepath.Join(j.dir, name))
				} else if info, ierr := e.Info(); ierr == nil {
					live += info.Size()
				}
			}
			if seq, ok := parseSeq(name, "snap-", ".snap"); ok && seq < cut {
				_ = os.Remove(filepath.Join(j.dir, name))
			}
		}
		// Re-base the live-byte estimate on what actually survived the
		// truncation; concurrent appends racing the directory scan leave a
		// small over-count, which only makes the next size trigger early.
		j.mu.Lock()
		j.liveBytes = live
		j.mu.Unlock()
	}
	metSnapshotSeconds.Observe(time.Since(start).Seconds())
	return nil
}

// Decode unmarshals a replayed record body into v.
func Decode(data []byte, v any) error {
	if err := json.Unmarshal(data, v); err != nil {
		return fmt.Errorf("journal: decode record: %w", err)
	}
	return nil
}
