package container

import (
	"context"
	"fmt"
	"io"
	"net/http"

	"mathcloud/internal/core"
	"mathcloud/internal/rest"
)

// Cross-replica file fetch (DESIGN.md §5j).  In a federation, gateway
// placement may hand a job to a replica other than the one holding its
// input files: the file reference then carries a foreign affinity prefix
// ("r01-<hex>" staged on r02).  Instead of constraining placement or
// bouncing the bytes through the client, the consuming replica pulls the
// blob once over the content-addressed file plane — GET /files/{id} via
// its own base URL, which in a federated deployment points at the
// gateway tier and therefore affinity-routes to the owner — verifies it
// against the advertised digest, and registers the foreign ID locally.
// Subsequent consumers (the rest of a sweep, a workflow's later blocks)
// hit the local CAS.

// fetchFlight is one in-progress pull of a foreign file ID.  Concurrent
// consumers wait on it instead of starting duplicate transfers.
type fetchFlight struct {
	done chan struct{}
	err  error
}

// ensureLocalFile makes a file ID stageable from the local store,
// pulling the blob from its home replica when the ID carries a foreign
// affinity prefix.  IDs minted locally (or bare, pre-federation) return
// immediately; a missing local ID then surfaces as not-found from the
// staging call, exactly as before.
func (c *Container) ensureLocalFile(ctx context.Context, id string) error {
	if _, err := c.files.Digest(id); err == nil {
		return nil
	}
	prefix, ok := core.SplitReplicaID(id)
	if !ok || prefix == c.replicaID {
		return nil
	}
	base := c.BaseURL()
	if base == "" {
		return nil
	}
	c.fetchMu.Lock()
	if c.fetches == nil {
		c.fetches = make(map[string]*fetchFlight)
	}
	if f, ok := c.fetches[id]; ok {
		c.fetchMu.Unlock()
		select {
		case <-f.done:
			return f.err
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	f := &fetchFlight{done: make(chan struct{})}
	c.fetches[id] = f
	c.fetchMu.Unlock()

	f.err = c.fetchRemoteFile(ctx, base, id)
	c.fetchMu.Lock()
	delete(c.fetches, id)
	c.fetchMu.Unlock()
	close(f.done)
	return f.err
}

// fetchRemoteFile performs one blob transfer: GET the file through the
// federation route, verify it against the digest the peer advertises,
// and register it in the local content-addressed store under the same
// federation ID.
func (c *Container) fetchRemoteFile(ctx context.Context, base, id string) error {
	uri := base + "/files/" + id
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, uri, nil)
	if err != nil {
		return fmt.Errorf("container: fetch remote file %s: %w", id, err)
	}
	resp, err := c.httpClient.Do(req)
	if err != nil {
		return fmt.Errorf("container: fetch remote file %s: %w", id, err)
	}
	defer func() {
		rest.Drain(resp.Body)
		_ = resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("container: fetch remote file %s: peer returned %d", id, resp.StatusCode)
	}
	digest := resp.Header.Get(DigestHeader)
	if digest == "" {
		return fmt.Errorf("container: fetch remote file %s: peer did not advertise a content digest", id)
	}
	// The +1 exposes an over-limit transfer as a digest mismatch instead
	// of silently registering a truncated blob.
	if err := c.files.IngestRemote(id, digest, io.LimitReader(resp.Body, maxFileBytes+1)); err != nil {
		return err
	}
	metRemoteFetches.Inc()
	if size, err := c.files.Size(id); err == nil {
		metRemoteFetchBytes.Add(float64(size))
	}
	c.logger.Printf("container: pulled remote file %s from %s", id, uri)
	return nil
}
