package container_test

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mathcloud/internal/adapter"
	"mathcloud/internal/client"
	"mathcloud/internal/container"
	"mathcloud/internal/core"
	"mathcloud/internal/jsonschema"
)

// startContainer spins up a container with the "add" and "sleepy" test
// services behind an httptest server.
func startContainer(t *testing.T) (*container.Container, *httptest.Server) {
	t.Helper()
	adapter.RegisterFunc("test.add", func(ctx context.Context, in core.Values) (core.Values, error) {
		a, _ := in["a"].(float64)
		b, _ := in["b"].(float64)
		return core.Values{"sum": a + b}, nil
	})
	adapter.RegisterFunc("test.sleepy", func(ctx context.Context, in core.Values) (core.Values, error) {
		select {
		case <-time.After(10 * time.Second):
			return core.Values{"ok": true}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	})
	c, err := container.New(container.Options{Workers: 4, Logger: quietLogger()})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(c.Close)

	num := jsonschema.New(jsonschema.TypeNumber)
	deploy := func(name, fn string, inputs, outputs []core.Param) {
		cfg := container.ServiceConfig{
			Description: core.ServiceDescription{
				Name:        name,
				Title:       name,
				Description: "test service " + name,
				Inputs:      inputs,
				Outputs:     outputs,
			},
			Adapter: container.AdapterSpec{
				Kind:   "native",
				Config: mustJSON(t, adapter.NativeConfig{Function: fn}),
			},
		}
		if err := c.Deploy(cfg); err != nil {
			t.Fatalf("Deploy %s: %v", name, err)
		}
	}
	deploy("add", "test.add",
		[]core.Param{{Name: "a", Schema: num}, {Name: "b", Schema: num}},
		[]core.Param{{Name: "sum", Schema: num}})
	deploy("sleepy", "test.sleepy", nil,
		[]core.Param{{Name: "ok", Optional: true}})

	srv := httptest.NewServer(c.Handler())
	t.Cleanup(srv.Close)
	c.SetBaseURL(srv.URL)
	return c, srv
}

func mustJSON(t *testing.T, v any) json.RawMessage {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return data
}

// quietLogger silences container logs in tests.
func quietLogger() *log.Logger { return log.New(io.Discard, "", 0) }

func TestServiceDescriptionIntrospection(t *testing.T) {
	_, srv := startContainer(t)
	svc := client.New().Service(srv.URL + "/services/add")
	desc, err := svc.Describe(context.Background())
	if err != nil {
		t.Fatalf("Describe: %v", err)
	}
	if desc.Name != "add" {
		t.Errorf("name = %q, want add", desc.Name)
	}
	if len(desc.Inputs) != 2 || len(desc.Outputs) != 1 {
		t.Errorf("inputs/outputs = %d/%d, want 2/1", len(desc.Inputs), len(desc.Outputs))
	}
	if desc.URI == "" {
		t.Error("description has no URI")
	}
	if p, ok := desc.Input("a"); !ok || p.Schema == nil || p.Schema.Type != jsonschema.TypeNumber {
		t.Errorf("input a schema not round-tripped: %+v ok=%v", p, ok)
	}
}

func TestSubmitAndWait(t *testing.T) {
	_, srv := startContainer(t)
	svc := client.New().Service(srv.URL + "/services/add")
	out, err := svc.Call(context.Background(), core.Values{"a": 2.0, "b": 40.0})
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if got := out["sum"]; got != 42.0 {
		t.Errorf("sum = %v, want 42", got)
	}
}

func TestSynchronousMode(t *testing.T) {
	_, srv := startContainer(t)
	svc := client.New().Service(srv.URL + "/services/add")
	job, err := svc.Submit(context.Background(), core.Values{"a": 1.0, "b": 2.0}, 5*time.Second)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if job.State != core.StateDone {
		t.Fatalf("synchronous submit returned state %s, want DONE", job.State)
	}
	if job.Outputs["sum"] != 3.0 {
		t.Errorf("sum = %v, want 3", job.Outputs["sum"])
	}
}

func TestAsynchronousLifecycle(t *testing.T) {
	_, srv := startContainer(t)
	svc := client.New().Service(srv.URL + "/services/add")
	job, err := svc.Submit(context.Background(), core.Values{"a": 5.0, "b": 6.0}, 0)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if job.URI == "" {
		t.Fatal("job has no URI")
	}
	final, err := svc.Wait(context.Background(), job.URI)
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if final.State != core.StateDone {
		t.Fatalf("state = %s, want DONE (err %s)", final.State, final.Error)
	}
	if final.Created.IsZero() || final.Started.IsZero() || final.Finished.IsZero() {
		t.Error("lifecycle timestamps not all set")
	}
}

func TestInputValidationRejectsBadRequests(t *testing.T) {
	_, srv := startContainer(t)
	svc := client.New().Service(srv.URL + "/services/add")
	ctx := context.Background()

	cases := []struct {
		name   string
		inputs core.Values
	}{
		{"missing required", core.Values{"a": 1.0}},
		{"wrong type", core.Values{"a": "one", "b": 2.0}},
		{"unknown parameter", core.Values{"a": 1.0, "b": 2.0, "c": 3.0}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := svc.Submit(ctx, tc.inputs, 0)
			var api *client.APIError
			if err == nil {
				t.Fatal("submit succeeded, want 400")
			}
			if !asAPIErr(err, &api) || api.Status != http.StatusBadRequest {
				t.Fatalf("error = %v, want 400 APIError", err)
			}
		})
	}
}

func asAPIErr(err error, target **client.APIError) bool {
	for err != nil {
		if e, ok := err.(*client.APIError); ok {
			*target = e
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

func TestCancelRunningJob(t *testing.T) {
	_, srv := startContainer(t)
	svc := client.New().Service(srv.URL + "/services/sleepy")
	ctx := context.Background()
	job, err := svc.Submit(ctx, core.Values{}, 0)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	// Give the worker a moment to pick the job up, then cancel.
	deadline := time.Now().Add(5 * time.Second)
	for {
		j, err := svc.Job(ctx, job.URI)
		if err != nil {
			t.Fatalf("Job: %v", err)
		}
		if j.State == core.StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never started: state %s", j.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if _, err := svc.Cancel(ctx, job.URI); err != nil {
		t.Fatalf("Cancel: %v", err)
	}
	final, err := svc.Wait(ctx, job.URI)
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if final.State != core.StateCancelled {
		t.Errorf("state = %s, want CANCELLED", final.State)
	}
}

func TestDeleteTerminalJobPurgesIt(t *testing.T) {
	_, srv := startContainer(t)
	svc := client.New().Service(srv.URL + "/services/add")
	ctx := context.Background()
	job, err := svc.Submit(ctx, core.Values{"a": 1.0, "b": 1.0}, 5*time.Second)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if job.State != core.StateDone {
		t.Fatalf("state = %s, want DONE", job.State)
	}
	if _, err := svc.Cancel(ctx, job.URI); err != nil {
		t.Fatalf("delete job: %v", err)
	}
	if _, err := svc.Job(ctx, job.URI); !client.IsNotFound(err) {
		t.Errorf("job still retrievable after delete: err=%v", err)
	}
}

func TestFileResourceLifecycle(t *testing.T) {
	_, srv := startContainer(t)
	c := client.New()
	ctx := context.Background()
	payload := strings.Repeat("matrix-data;", 1000)

	ref, err := c.UploadFile(ctx, srv.URL, strings.NewReader(payload))
	if err != nil {
		t.Fatalf("UploadFile: %v", err)
	}
	if _, ok := core.FileRefID(ref); !ok {
		t.Fatalf("upload did not return a file ref: %q", ref)
	}
	data, err := c.FetchFile(ctx, ref)
	if err != nil {
		t.Fatalf("FetchFile: %v", err)
	}
	if string(data) != payload {
		t.Errorf("file round trip mismatch: %d bytes vs %d", len(data), len(payload))
	}
}

func TestFilePartialGET(t *testing.T) {
	_, srv := startContainer(t)
	c := client.New()
	ctx := context.Background()
	ref, err := c.UploadFile(ctx, srv.URL, strings.NewReader("0123456789"))
	if err != nil {
		t.Fatalf("UploadFile: %v", err)
	}
	uri, _ := core.FileRefID(ref)
	req, _ := http.NewRequest(http.MethodGet, uri, nil)
	req.Header.Set("Range", "bytes=2-5")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("range GET: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusPartialContent {
		t.Fatalf("status = %d, want 206", resp.StatusCode)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "2345" {
		t.Errorf("partial content = %q, want 2345", buf.String())
	}
}

func TestIndexListsServices(t *testing.T) {
	_, srv := startContainer(t)
	names, err := client.New().ServiceNames(context.Background(), srv.URL)
	if err != nil {
		t.Fatalf("ServiceNames: %v", err)
	}
	if len(names) != 2 || names[0] != "add" || names[1] != "sleepy" {
		t.Errorf("names = %v, want [add sleepy]", names)
	}
}

func TestWebUIServedToBrowsers(t *testing.T) {
	_, srv := startContainer(t)
	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/services/add", nil)
	req.Header.Set("Accept", "text/html,application/xhtml+xml")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Fatalf("content type = %q, want text/html", ct)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Submit a request", "sum", "number"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("web UI missing %q", want)
		}
	}
}

func TestUnknownServiceIs404(t *testing.T) {
	_, srv := startContainer(t)
	svc := client.New().Service(srv.URL + "/services/nope")
	_, err := svc.Describe(context.Background())
	if !client.IsNotFound(err) {
		t.Errorf("err = %v, want 404", err)
	}
}

func TestDeployDuplicateFails(t *testing.T) {
	c, _ := startContainer(t)
	err := c.Deploy(container.ServiceConfig{
		Description: core.ServiceDescription{Name: "add"},
		Adapter: container.AdapterSpec{Kind: "native",
			Config: json.RawMessage(`{"function":"test.add"}`)},
	})
	if err == nil {
		t.Fatal("duplicate deploy succeeded")
	}
}

func TestDeployUnknownAdapterFails(t *testing.T) {
	c, _ := startContainer(t)
	err := c.Deploy(container.ServiceConfig{
		Description: core.ServiceDescription{Name: "x"},
		Adapter:     container.AdapterSpec{Kind: "bogus", Config: json.RawMessage(`{}`)},
	})
	if err == nil {
		t.Fatal("deploy with unknown adapter succeeded")
	}
}

func TestScriptServiceEndToEnd(t *testing.T) {
	c, srv := startContainer(t)
	err := c.Deploy(container.ServiceConfig{
		Description: core.ServiceDescription{
			Name:    "stats",
			Inputs:  []core.Param{{Name: "values", Schema: jsonschema.MustParse(`{"type":"array","items":{"type":"number"}}`)}},
			Outputs: []core.Param{{Name: "mean"}, {Name: "max"}},
		},
		Adapter: container.AdapterSpec{
			Kind: "script",
			Config: mustJSON(t, adapter.ScriptConfig{Script: `
				out.mean = sum(in.values) / len(in.values)
				out.max = max(in.values)
			`}),
		},
	})
	if err != nil {
		t.Fatalf("Deploy: %v", err)
	}
	svc := client.New().Service(srv.URL + "/services/stats")
	out, err := svc.Call(context.Background(), core.Values{"values": []any{1.0, 2.0, 3.0, 6.0}})
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if out["mean"] != 3.0 || out["max"] != 6.0 {
		t.Errorf("out = %v, want mean 3 max 6", out)
	}
}
