package container

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mathcloud/internal/core"
	"mathcloud/internal/journal"
	"mathcloud/internal/obs"
)

const (
	// defaultBatchMaxSize is the micro-batch bound when Options.BatchMaxSize
	// is zero: large enough to amortise per-invocation overhead, small
	// enough that one batch never monopolises a worker for long.
	defaultBatchMaxSize = 16
	// defaultMaxSweepWidth caps sweep expansion when Options.MaxSweepWidth
	// is zero.
	defaultMaxSweepWidth = 10000
)

// This file implements parameter sweeps: one request that expands into a
// whole campaign of child jobs (DESIGN.md §5f).  The submission path is
// bulk end to end — the service is resolved once, shared remote file inputs
// are staged once into the content-addressed store, input defaults are
// applied to the template once, the memo key of each point reuses the
// template's precomputed hash prefix, and registry inserts take each shard
// lock once per shard instead of once per child.  The sweep resource
// aggregates its children into fixed-size counts, so polling a width-1000
// campaign costs the same as polling one job.
//
// Lock order: sweepManager.mu, sweepRecord.mu and the registry shard locks
// may be taken in that nesting (manager → sweep → shard); jobRecord.mu is
// never held while taking sweepRecord.mu — child state transitions notify
// the sweep after releasing the record lock.

// sweepManager tracks the active sweeps of a JobManager and the children
// that did not fit into the job queue at submission time.
type sweepManager struct {
	mu     sync.RWMutex
	sweeps map[string]*sweepRecord
	// pendingCount is the total number of not-yet-enqueued children across
	// all sweeps; the per-job pump fast-path exits on zero without touching
	// any lock.
	pendingCount atomic.Int64
}

// pump feeds pending sweep children into freed queue capacity.  Workers call
// it after every processed job; the common no-sweep case is one atomic load.
func (sm *sweepManager) pump() {
	if sm.pendingCount.Load() == 0 {
		return
	}
	sm.mu.RLock()
	list := make([]*sweepRecord, 0, len(sm.sweeps))
	for _, sw := range sm.sweeps {
		list = append(list, sw)
	}
	sm.mu.RUnlock()
	for _, sw := range list {
		sw.pump()
	}
}

// sweepRecord is the container's internal state for one parameter sweep.
type sweepRecord struct {
	jm      *JobManager
	id      string
	service string
	owner   string
	traceID string
	created time.Time
	width   int
	// done closes when the last child reaches a terminal state.
	done chan struct{}
	// childIDs lists the children in point order; immutable once the sweep
	// is published.
	childIDs []string
	// template and points are the expanded sweep specification, retained so
	// the journal can record a width-N campaign as one record (children are
	// re-derived at replay) and snapshots can re-emit it.  Immutable once
	// published.
	template core.Values
	points   []core.Values
	// ttl is the sweep's destruction TTL: once every child is terminal the
	// sweep (and its children) are purged ttl after the last child lands.
	// Zero keeps the sweep until an explicit DELETE.  Immutable.
	ttl time.Duration
	// pumping admits one pump loop at a time, so the head of the pending
	// list is enqueued exactly once without holding mu across channel sends.
	pumping atomic.Bool

	mu         sync.Mutex
	counts     core.SweepCounts
	firstError string
	finished   time.Time
	// destruction is the reap-after instant, set by finalize when ttl > 0.
	destruction time.Time
	cancelled   bool
	// pending holds children waiting for queue capacity, in point order.
	pending []*jobRecord
	// fileIDs are the sweep-owned staged shared inputs, released when the
	// sweep ends.
	fileIDs []string
}

// snapshot renders the sweep resource.  It is O(1) in the sweep width: the
// counts are a fixed-size histogram maintained incrementally by child
// transitions.
func (sw *sweepRecord) snapshot() *core.Sweep {
	s := &core.Sweep{
		ID:      sw.id,
		Service: sw.service,
		Width:   sw.width,
		Owner:   sw.owner,
		TraceID: sw.traceID,
		Created: sw.created,
	}
	sw.mu.Lock()
	s.Counts = sw.counts
	s.FirstError = sw.firstError
	s.Finished = sw.finished
	s.Destruction = sw.destruction
	sw.mu.Unlock()
	s.State = s.Counts.AggregateState(sw.width)
	return s
}

// childTransition folds one child state change into the aggregate counts.
// It must be called WITHOUT holding the child's record lock (see the lock
// order note above).  The transition that lands the last child finalizes
// the sweep.
func (sw *sweepRecord) childTransition(from, to core.JobState, errMsg string) {
	var terminalNow bool
	sw.mu.Lock()
	switch from {
	case core.StateWaiting:
		sw.counts.Waiting--
	case core.StateRunning:
		sw.counts.Running--
	}
	switch to {
	case core.StateRunning:
		sw.counts.Running++
	case core.StateDone:
		sw.counts.Done++
	case core.StateError:
		sw.counts.Error++
		if sw.firstError == "" && errMsg != "" {
			sw.firstError = errMsg
		}
	case core.StateCancelled:
		sw.counts.Cancelled++
	}
	if to.Terminal() && sw.counts.Terminal() == sw.width && sw.finished.IsZero() {
		sw.finished = time.Now()
		terminalNow = true
	}
	sw.mu.Unlock()
	if to.Terminal() {
		metSweepChildren.With(strings.ToLower(string(to))).Inc()
	}
	if terminalNow {
		sw.finalize()
	}
	// Publish after finalize so the terminal event carries the finished
	// timestamp; the Active gate inside keeps unwatched sweeps free.
	sw.jm.notifySweep(sw)
}

// finalize runs exactly once, when the last child lands (its caller set
// sw.finished under the lock): it releases the sweep-owned staged files and
// wakes every WaitSweep caller.
func (sw *sweepRecord) finalize() {
	sw.mu.Lock()
	hadFiles := len(sw.fileIDs) > 0
	sw.fileIDs = nil
	if sw.ttl > 0 && sw.destruction.IsZero() {
		sw.destruction = sw.finished.Add(sw.ttl)
	}
	sw.mu.Unlock()
	if hadFiles {
		sw.jm.c.files.DeleteOwnedBy(sw.id)
	}
	metSweepActive.Add(-1)
	close(sw.done)
}

// pump moves pending children into free job-queue slots.  Only one pump per
// sweep runs at a time; a missed wakeup is recovered by the next per-job
// pump, so progress is guaranteed while any job completes.
func (sw *sweepRecord) pump() {
	if !sw.pumping.CompareAndSwap(false, true) {
		return
	}
	defer sw.pumping.Store(false)
	for {
		sw.mu.Lock()
		if len(sw.pending) == 0 {
			sw.mu.Unlock()
			return
		}
		rec := sw.pending[0]
		cancelled := sw.cancelled
		sw.mu.Unlock()
		if cancelled {
			// cancel already moved every child to CANCELLED; just drain.
			sw.dropPendingHead(rec)
			continue
		}
		// Children that went terminal while pending (cancelled
		// individually) have nothing to enqueue.
		select {
		case <-rec.done:
			sw.dropPendingHead(rec)
			continue
		default:
		}
		rec.queued.Store(true)
		metJobsWaiting.Add(1)
		select {
		case sw.jm.queue <- rec:
			sw.dropPendingHead(rec)
		default:
			// Queue full again: hand the slot back and retry on a later
			// pump.  A concurrent cancel may have balanced the gauge
			// already, which the swap detects.
			if rec.queued.CompareAndSwap(true, false) {
				metJobsWaiting.Add(-1)
			}
			return
		}
	}
}

// dropPendingHead removes rec from the head of the pending list if it still
// is the head (a concurrent cancel may have drained the list).
func (sw *sweepRecord) dropPendingHead(rec *jobRecord) {
	sw.mu.Lock()
	if len(sw.pending) > 0 && sw.pending[0] == rec {
		sw.pending = sw.pending[1:]
		sw.jm.sweeps.pendingCount.Add(-1)
	}
	sw.mu.Unlock()
}

// cancel cancels every non-terminal child of the sweep with a single call:
// queued and pending children move straight to CANCELLED, running children
// have their contexts cancelled.  Terminal children keep their results.
func (sw *sweepRecord) cancel() {
	sw.mu.Lock()
	sw.cancelled = true
	sw.mu.Unlock()
	for _, cid := range sw.childIDs {
		if rec, err := sw.jm.record(cid); err == nil {
			sw.jm.cancelJob(rec)
		}
	}
	// Drain the pending list: its children are terminal now, and the sweep
	// must not hold queue capacity hostage.
	sw.pump()
}

// SubmitSweep expands one sweep specification into child jobs of the named
// service and submits them in bulk, returning the aggregate sweep resource.
// The whole sweep validates atomically: any invalid point rejects the
// campaign before any job is created.
func (jm *JobManager) SubmitSweep(ctx context.Context, serviceName string, spec *core.SweepSpec, owner string) (*core.Sweep, error) {
	svc, err := jm.c.service(serviceName)
	if err != nil {
		return nil, err
	}
	points, err := spec.Expand(jm.maxSweepWidth)
	if err != nil {
		return nil, err
	}
	select {
	case <-jm.closing:
		return nil, core.ErrUnavailable(0, "container is shutting down")
	default:
	}
	_, trace := obs.EnsureRequestID(ctx)
	now := time.Now()
	ttl := spec.Destruction.Std()
	if ttl <= 0 {
		ttl = jm.jobTTL
	}
	sw := &sweepRecord{
		jm:      jm,
		id:      jm.c.newID(),
		service: serviceName,
		owner:   owner,
		traceID: trace,
		created: now,
		width:   len(points),
		ttl:     ttl,
		done:    make(chan struct{}),
	}

	// Shared staging and defaults, once for the whole campaign.
	template, err := jm.stageSweepFiles(ctx, sw, svc.desc.ApplyDefaults(spec.Template))
	if err != nil {
		jm.c.files.DeleteOwnedBy(sw.id)
		return nil, err
	}
	tspec := core.SweepSpec{Template: template}
	sw.template = template
	sw.points = points

	// Validate every point before creating anything.  The merged maps are
	// kept: they become the child inputs, sharing template values by
	// reference so batched adapters can recognise them by identity.
	merged := make([]core.Values, len(points))
	for i, override := range points {
		merged[i] = tspec.MergePoint(override)
		if err := svc.desc.ValidateInputs(merged[i]); err != nil {
			jm.c.files.DeleteOwnedBy(sw.id)
			return nil, core.ErrBadRequest("sweep point %d: %v", i, err)
		}
	}

	// One hash prefix for the whole campaign: HashPoint re-encodes only the
	// overrides of each point.  A hasher construction error (e.g. a file
	// reference this container cannot digest) degrades to uncached
	// execution — a conservative miss, never a wrong hit.
	var hasher *core.InputHasher
	if jm.memo != nil && svc.desc.Deterministic {
		hasher, _ = core.NewInputHasher(svc.desc.Name, svc.desc.Version, template, jm.digestRef)
	}

	// Create and publish the children under the sweep lock: followers of
	// pre-existing flights can be completed by their leader the moment
	// joinOrLead returns, and their transitions must not fold into the
	// counts before the loop's own increments.
	recs := make([]*jobRecord, 0, len(points))
	var pending []*jobRecord
	sw.childIDs = make([]string, 0, len(points))
	bornDone := 0
	sw.mu.Lock()
	for i, inputs := range merged {
		rec := &jobRecord{
			job: &core.Job{
				// Children carry the same replica prefix as the sweep, so a
				// gateway paging SweepJobs routes every child to the sweep's
				// home replica.
				ID:        jm.c.newID(),
				Service:   serviceName,
				State:     core.StateWaiting,
				Inputs:    inputs,
				Owner:     owner,
				Created:   now,
				Submitted: now,
				TraceID:   trace,
			},
			done:  make(chan struct{}),
			sweep: sw,
		}
		memoKey := ""
		if hasher != nil {
			if key, err := hasher.HashPoint(points[i], jm.digestRef); err == nil {
				memoKey = key
			}
		}
		enqueue := true
		if memoKey != "" {
			if outputs, ok := jm.memo.lookup(memoKey); ok {
				// Cache hit: the child is born DONE and never touches the
				// queue.  Counted directly — no transition will fire.
				metMemoHits.Inc()
				rec.job.State = core.StateDone
				rec.job.Outputs = outputs.Clone()
				rec.job.Started = now
				rec.job.Finished = now
				close(rec.done)
				sw.counts.Done++
				bornDone++
				enqueue = false
			} else if jm.memo.joinOrLead(memoKey, rec) {
				rec.memoKey = memoKey
				metMemoMisses.Inc()
			} else {
				// Coalesced onto an identical in-flight execution (possibly
				// an earlier point of this very sweep): completed by the
				// flight's leader, never queued.
				rec.coalesced = true
				metMemoCoalesced.Inc()
				enqueue = false
				sw.counts.Waiting++
			}
		}
		if enqueue {
			pending = append(pending, rec)
			sw.counts.Waiting++
		}
		recs = append(recs, rec)
		sw.childIDs = append(sw.childIDs, rec.job.ID)
	}

	// Bulk registry insert: group the children by shard and take each of
	// the jobShardCount locks at most once.
	var buckets [jobShardCount][]*jobRecord
	for _, rec := range recs {
		idx := jm.shardIndex(rec.job.ID)
		buckets[idx] = append(buckets[idx], rec)
	}
	for i := range buckets {
		if len(buckets[i]) == 0 {
			continue
		}
		sh := &jm.shards[i]
		sh.mu.Lock()
		for _, rec := range buckets[i] {
			sh.jobs[rec.job.ID] = rec
		}
		sh.mu.Unlock()
	}

	sw.pending = pending
	jm.sweeps.pendingCount.Add(int64(len(pending)))
	jm.sweeps.mu.Lock()
	jm.sweeps.sweeps[sw.id] = sw
	jm.sweeps.mu.Unlock()
	metSweepActive.Add(1)
	terminalNow := sw.counts.Terminal() == sw.width && sw.finished.IsZero()
	if terminalNow {
		sw.finished = time.Now()
	}
	sw.mu.Unlock()

	metJobsSubmitted.Add(float64(len(recs)))
	metSweepsSubmitted.Inc()
	if bornDone > 0 {
		metJobsCompleted.With("done").Add(float64(bornDone))
		metSweepChildren.With("done").Add(float64(bornDone))
	}
	// One journal record carries the whole campaign: child inputs are
	// re-derived from template+points at replay, so a width-N sweep costs
	// one record, not N.  Only children whose state diverged (born-DONE cache
	// hits here; starts and ends as they happen) write records of their own.
	if jm.c.journal != nil {
		jm.c.logRecord(journal.KindSweep, journal.SweepRecord{
			ID: sw.id, Service: sw.service, Owner: sw.owner, TraceID: sw.traceID,
			Created: sw.created, Width: sw.width, ChildIDs: sw.childIDs,
			Template: sw.template, Points: sw.points, TTL: core.Duration(sw.ttl),
		})
		for _, rec := range recs {
			if rec.job.State == core.StateDone {
				jm.logJobEnd(rec)
			}
		}
	}
	if terminalNow {
		// Every point was answered from the computation cache.
		sw.finalize()
	} else {
		sw.pump()
	}
	// A concurrent Close may have swept the registry before the inserts
	// above; cancel so no child is left WAITING forever.
	select {
	case <-jm.closing:
		sw.cancel()
	default:
	}
	if logger := obs.Logger(); logger.Enabled(ctx, slog.LevelInfo) {
		logger.LogAttrs(ctx, slog.LevelInfo, "sweep submitted",
			slog.String("request_id", trace),
			slog.String("sweep_id", sw.id),
			slog.String("service", serviceName),
			slog.Int("width", sw.width),
			slog.Int("cached", bornDone))
	}
	jm.notifySweepSubmitted(sw)
	return sw.snapshot(), nil
}

// stageSweepFiles localizes remote file references shared by every point of
// the sweep: each distinct URL in the template is fetched once into the
// content-addressed file store (owned by the sweep, released when it ends)
// and the reference is rewritten to the local file resource, so N children
// hardlink one staged blob instead of fetching the same URL N times.
// References the container already stores locally are left alone — per-child
// staging hardlinks them for free.
func (jm *JobManager) stageSweepFiles(ctx context.Context, sw *sweepRecord, template core.Values) (core.Values, error) {
	var fetched map[string]string // remote URL → rewritten local URI
	out := template
	copied := false
	for name, val := range template {
		ref, ok := core.FileRefID(val)
		if !ok {
			continue
		}
		if _, local := jm.c.localFileID(ref); local {
			continue
		}
		if !strings.HasPrefix(ref, "http://") && !strings.HasPrefix(ref, "https://") {
			continue
		}
		uri, ok := fetched[ref]
		if !ok {
			id, err := jm.fetchToStore(ctx, ref, sw.id)
			if err != nil {
				return nil, fmt.Errorf("container: stage sweep input %q: %w", name, err)
			}
			sw.fileIDs = append(sw.fileIDs, id)
			uri = jm.c.fileURI(id)
			if fetched == nil {
				fetched = make(map[string]string)
			}
			fetched[ref] = uri
		}
		if !copied {
			out = template.Clone()
			copied = true
		}
		out[name] = core.FileRef(uri)
	}
	return out, nil
}

// fetchToStore streams a remote file into the content-addressed store under
// the given owner, enforcing the staging size limit.
func (jm *JobManager) fetchToStore(ctx context.Context, url, owner string) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return "", err
	}
	resp, err := jm.c.httpClient.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	// Read one byte past the limit so an oversized file is detected rather
	// than silently truncated.
	id, err := jm.c.files.Put(io.LimitReader(resp.Body, maxFileBytes+1), owner)
	if err != nil {
		return "", err
	}
	if size, serr := jm.c.files.Size(id); serr == nil && size > maxFileBytes {
		_ = jm.c.files.Delete(id)
		return "", fmt.Errorf("GET %s: file exceeds the %d-byte staging limit", url, maxFileBytes)
	}
	return id, nil
}

// sweepRec resolves a sweep ID.
func (jm *JobManager) sweepRec(id string) (*sweepRecord, error) {
	jm.sweeps.mu.RLock()
	sw, ok := jm.sweeps.sweeps[id]
	jm.sweeps.mu.RUnlock()
	if !ok {
		return nil, core.ErrNotFound("sweep", id)
	}
	return sw, nil
}

// GetSweep returns the aggregate status of one sweep.  The call is O(1) in
// the sweep width, so clients can poll campaigns of thousands of points at
// the cost of a single-job poll.
func (jm *JobManager) GetSweep(id string) (*core.Sweep, error) {
	sw, err := jm.sweepRec(id)
	if err != nil {
		return nil, err
	}
	return sw.snapshot(), nil
}

// WaitSweep blocks until every child of the sweep reached a terminal state,
// the timeout elapses or ctx is cancelled, returning the latest snapshot.
func (jm *JobManager) WaitSweep(ctx context.Context, id string, timeout time.Duration) (*core.Sweep, error) {
	sw, err := jm.sweepRec(id)
	if err != nil {
		return nil, err
	}
	var timer <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		timer = t.C
	}
	select {
	case <-sw.done:
	case <-timer:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return sw.snapshot(), nil
}

// ListSweeps returns the sweeps of one service (or all, if service is
// empty), newest first.
func (jm *JobManager) ListSweeps(service string) []*core.Sweep {
	jm.sweeps.mu.RLock()
	out := make([]*core.Sweep, 0, len(jm.sweeps.sweeps))
	for _, sw := range jm.sweeps.sweeps {
		if service != "" && sw.service != service {
			continue
		}
		out = append(out, sw.snapshot())
	}
	jm.sweeps.mu.RUnlock()
	sort.Slice(out, func(i, k int) bool { return out[i].Created.After(out[k].Created) })
	return out
}

// SweepChildren returns one page of child job snapshots in point order,
// optionally filtered by state, along with the total number of matches.
// Children destroyed individually are skipped.
func (jm *JobManager) SweepChildren(id string, state core.JobState, limit, offset int) ([]*core.Job, int, error) {
	sw, err := jm.sweepRec(id)
	if err != nil {
		return nil, 0, err
	}
	var out []*core.Job
	total := 0
	for _, cid := range sw.childIDs {
		rec, err := jm.record(cid)
		if err != nil {
			continue
		}
		snap := rec.snapshot()
		if state != "" && snap.State != state {
			continue
		}
		total++
		if total <= offset {
			continue
		}
		if limit > 0 && len(out) >= limit {
			continue // past the page; keep counting the total
		}
		out = append(out, snap)
	}
	return out, total, nil
}

// DeleteSweep implements the DELETE method of the sweep resource: a live
// sweep is cancelled in one call — queued and pending children are released
// immediately, running children are aborted, sweep-staged files are freed
// when the last child lands — and remains queryable; a terminal sweep is
// destroyed together with its children and their files.
func (jm *JobManager) DeleteSweep(id string) (*core.Sweep, error) {
	sw, err := jm.sweepRec(id)
	if err != nil {
		return nil, err
	}
	select {
	case <-sw.done:
	default:
		sw.cancel()
		return sw.snapshot(), nil
	}
	// Terminal: destroy.  The map removal picks the winner among racing
	// deletes, so the purge runs exactly once.
	jm.sweeps.mu.Lock()
	_, present := jm.sweeps.sweeps[id]
	delete(jm.sweeps.sweeps, id)
	jm.sweeps.mu.Unlock()
	if !present {
		return nil, core.ErrNotFound("sweep", id)
	}
	jm.c.logRecord(journal.KindSweepPurge, journal.SweepPurgeRecord{ID: id})
	snap := sw.snapshot()
	for _, cid := range sw.childIDs {
		_, _ = jm.Delete(cid)
	}
	return snap, nil
}
