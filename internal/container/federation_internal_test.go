package container

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mathcloud/internal/core"
)

// --- Memo delta feed (GET /memo?since=) ----------------------------------

func TestMemoDeltasIncrementalAndDrop(t *testing.T) {
	m := newMemoTable(100, 1<<20)
	m.store("k1", "svc", "j1", core.Values{"y": 1.0})
	m.store("k2", "svc", "j2", core.Values{"y": 2.0})

	page := m.deltas(0)
	if page.Reset {
		t.Fatal("cursor 0 on a fresh table should be answerable incrementally")
	}
	if len(page.Entries) != 2 || page.Entries[0].Key != "k1" || page.Entries[1].Key != "k2" {
		t.Fatalf("entries = %+v, want k1 then k2", page.Entries)
	}
	if page.Entries[0].Service != "svc" || page.Entries[0].JobID != "j1" {
		t.Fatalf("entry payload = %+v", page.Entries[0])
	}
	cursor := page.Seq

	// Nothing changed: the follow-up page is empty at the same cursor.
	next := m.deltas(cursor)
	if next.Reset || len(next.Entries) != 0 || len(next.Dropped) != 0 || next.Seq != cursor {
		t.Fatalf("idle page = %+v, want empty at seq %d", next, cursor)
	}

	// A purged backing job surfaces as a drop delta.
	m.dropJob("j1")
	drop := m.deltas(cursor)
	if drop.Reset || len(drop.Dropped) != 1 || drop.Dropped[0] != "k1" {
		t.Fatalf("drop page = %+v, want Dropped=[k1]", drop)
	}
}

func TestMemoDeltasResetOnStaleCursorAndInvalidation(t *testing.T) {
	m := newMemoTable(2*maxMemoDeltaLog, 256<<20)
	for i := 0; i < maxMemoDeltaLog+100; i++ {
		m.store(fmt.Sprintf("k%d", i), "svc", fmt.Sprintf("j%d", i), core.Values{"y": float64(i)})
	}
	// The log is bounded: a cursor from before the retained window forces a
	// full re-listing.
	page := m.deltas(0)
	if !page.Reset {
		t.Fatal("cursor 0 past the bounded log should return a Reset page")
	}
	if len(page.Entries) != maxMemoDeltaLog+100 {
		t.Fatalf("reset page carries %d entries, want %d", len(page.Entries), maxMemoDeltaLog+100)
	}
	cursor := page.Seq

	// A cursor inside the window stays incremental.
	m.store("fresh", "svc", "jf", core.Values{"y": 0.0})
	inc := m.deltas(cursor)
	if inc.Reset || len(inc.Entries) != 1 || inc.Entries[0].Key != "fresh" {
		t.Fatalf("incremental page = %+v, want just 'fresh'", inc)
	}

	// Bulk invalidation (service reconfiguration) discards the log: every
	// consumer, however recent its cursor, re-lists.
	m.dropService("svc")
	after := m.deltas(inc.Seq)
	if !after.Reset {
		t.Fatal("cursor from before dropService should be forced into a Reset page")
	}
	if len(after.Entries) != 0 {
		t.Fatalf("reset page after dropService has %d entries, want 0", len(after.Entries))
	}
	// A cursor beyond the current sequence (e.g. from a wiped table) resets.
	if p := m.deltas(after.Seq + 1000); !p.Reset {
		t.Fatal("future cursor should reset")
	}
}

// --- Cross-replica ingestion (FileStore.IngestRemote) ---------------------

func TestIngestRemoteRejectsCorruptedTransfer(t *testing.T) {
	fs, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("federated blob payload")
	sum := sha256.Sum256(payload)
	digest := hex.EncodeToString(sum[:])
	id := "r01-0123456789abcdef0123456789abcdef"

	// A corrupted transfer (bytes do not hash to the advertised digest) is
	// rejected without registering anything.
	err = fs.IngestRemote(id, digest, bytes.NewReader([]byte("corrupted bytes")))
	if err == nil {
		t.Fatal("corrupted transfer ingested without error")
	}
	if _, err := fs.Digest(id); err == nil {
		t.Fatal("corrupted transfer registered the file ID")
	}
	if files, blobs, _, physical := fs.Stats(); files != 0 || blobs != 0 || physical != 0 {
		t.Fatalf("corrupted transfer left CAS state: files=%d blobs=%d physical=%d", files, blobs, physical)
	}

	// The failure did not poison the store: a clean retry of the same ID
	// succeeds and round-trips the bytes.
	if err := fs.IngestRemote(id, digest, bytes.NewReader(payload)); err != nil {
		t.Fatalf("retry after corruption: %v", err)
	}
	got, err := fs.ReadAll(id)
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("ReadAll after retry: %v %q", err, got)
	}
	if d, _ := fs.Digest(id); d != digest {
		t.Fatalf("digest = %s, want %s", d, digest)
	}
	// Re-ingesting an existing ID is a no-op.
	if err := fs.IngestRemote(id, digest, bytes.NewReader(payload)); err != nil {
		t.Fatalf("idempotent re-ingest: %v", err)
	}
	if files, blobs, _, _ := fs.Stats(); files != 1 || blobs != 1 {
		t.Fatalf("after re-ingest: files=%d blobs=%d, want 1/1", files, blobs)
	}
}

func TestIngestRemoteDedupsAgainstLocalContent(t *testing.T) {
	fs, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("shared curve "), 256)
	localID, err := fs.Put(bytes.NewReader(payload), "")
	if err != nil {
		t.Fatal(err)
	}
	digest, _ := fs.Digest(localID)
	foreign := "r09-00000000000000000000000000000001"
	if err := fs.IngestRemote(foreign, digest, bytes.NewReader(payload)); err != nil {
		t.Fatal(err)
	}
	files, blobs, logical, physical := fs.Stats()
	if files != 2 || blobs != 1 {
		t.Fatalf("files=%d blobs=%d, want two IDs sharing one blob", files, blobs)
	}
	if logical != 2*int64(len(payload)) || physical != int64(len(payload)) {
		t.Fatalf("logical=%d physical=%d", logical, physical)
	}
}

// --- Cross-replica fetch (Container.ensureLocalFile) ----------------------

// TestEnsureLocalFileSingleflight checks that concurrent consumers of the
// same foreign file ID trigger exactly one blob transfer, and that the
// pulled file is then served from the local store.
func TestEnsureLocalFileSingleflight(t *testing.T) {
	payload := bytes.Repeat([]byte("remote blob "), 512)
	sum := sha256.Sum256(payload)
	digest := hex.EncodeToString(sum[:])
	foreignID := "r01-fedcba9876543210fedcba9876543210"

	var hits atomic.Int64
	release := make(chan struct{})
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/files/"+foreignID {
			http.NotFound(w, r)
			return
		}
		hits.Add(1)
		<-release // hold every fetcher in-flight until all waiters queued
		w.Header().Set(DigestHeader, digest)
		w.Write(payload)
	}))
	defer peer.Close()

	c, err := New(Options{Workers: 1, ReplicaID: "r02", Logger: log.New(io.Discard, "", 0)})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetBaseURL(peer.URL)

	const waiters = 8
	var wg sync.WaitGroup
	errs := make([]error, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = c.ensureLocalFile(t.Context(), foreignID)
		}(i)
	}
	// Let the flight leader reach the peer, then release the transfer.
	deadline := time.Now().Add(5 * time.Second)
	for hits.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("waiter %d: %v", i, err)
		}
	}
	if n := hits.Load(); n != 1 {
		t.Fatalf("peer served %d transfers for %d concurrent consumers, want 1", n, waiters)
	}
	got, err := c.Files().ReadAll(foreignID)
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("pulled file not readable locally: %v", err)
	}
	// A second ensure is a local fast path: no new transfer.
	if err := c.ensureLocalFile(t.Context(), foreignID); err != nil {
		t.Fatal(err)
	}
	if n := hits.Load(); n != 1 {
		t.Fatalf("repeat ensure re-fetched (%d transfers)", n)
	}
}

// TestEnsureLocalFileSkipsLocalAndBareIDs pins the guard conditions: IDs
// without a foreign prefix never trigger a network fetch.
func TestEnsureLocalFileSkipsLocalAndBareIDs(t *testing.T) {
	var hits atomic.Int64
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.NotFound(w, r)
	}))
	defer peer.Close()

	c, err := New(Options{Workers: 1, ReplicaID: "r02", Logger: log.New(io.Discard, "", 0)})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetBaseURL(peer.URL)

	for _, id := range []string{
		"0123456789abcdef0123456789abcdef",     // bare pre-federation ID
		"r02-0123456789abcdef0123456789abcdef", // own prefix: missing means missing
	} {
		if err := c.ensureLocalFile(t.Context(), id); err != nil {
			t.Fatalf("ensureLocalFile(%s): %v", id, err)
		}
	}
	if hits.Load() != 0 {
		t.Fatalf("local/bare IDs reached the network %d times", hits.Load())
	}
}
