package container_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"mathcloud/internal/adapter"
	"mathcloud/internal/client"
	"mathcloud/internal/container"
	"mathcloud/internal/core"
	"mathcloud/internal/scatter"
)

// startSweepContainer brings up a container with a batch-capable doubling
// service behind a real listener.
func startSweepContainer(t *testing.T, opts container.Options) (*container.Container, *httptest.Server) {
	t.Helper()
	adapter.RegisterFunc("sweepe2e.double", func(_ context.Context, in core.Values) (core.Values, error) {
		x, _ := in["x"].(float64)
		return core.Values{"y": 2 * x}, nil
	})
	adapter.RegisterBatchFunc("sweepe2e.double", func(_ context.Context, batch []core.Values) ([]core.Values, []error) {
		outs := make([]core.Values, len(batch))
		errs := make([]error, len(batch))
		for i, in := range batch {
			x, _ := in["x"].(float64)
			outs[i] = core.Values{"y": 2 * x}
		}
		return outs, errs
	})
	opts.Logger = quietLogger()
	c, err := container.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	if err := c.Deploy(container.ServiceConfig{
		Description: core.ServiceDescription{
			Name: "double", Version: "1", Batch: true,
			Inputs:  []core.Param{{Name: "x"}},
			Outputs: []core.Param{{Name: "y"}},
		},
		Adapter: container.AdapterSpec{Kind: "native",
			Config: json.RawMessage(`{"function":"sweepe2e.double"}`)},
	}); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(c.Handler())
	t.Cleanup(srv.Close)
	c.SetBaseURL(srv.URL)
	return c, srv
}

// TestSweepOverHTTP drives the sweep resource end to end through the REST
// API: submit, aggregate status, child pages, delete.
func TestSweepOverHTTP(t *testing.T) {
	_, srv := startSweepContainer(t, container.Options{Workers: 2})

	body := `{"axes":{"x":[1,2,3,4,5,6]}}`
	resp, err := http.Post(srv.URL+"/services/double/sweeps?wait=10s",
		"application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST sweeps = %d", resp.StatusCode)
	}
	loc := resp.Header.Get("Location")
	if loc == "" {
		t.Fatal("no Location header on sweep creation")
	}
	var sweep core.Sweep
	if err := json.NewDecoder(resp.Body).Decode(&sweep); err != nil {
		t.Fatal(err)
	}
	if sweep.Width != 6 || sweep.URI == "" || sweep.JobsURI != sweep.URI+"/jobs" {
		t.Fatalf("sweep representation: %+v", sweep)
	}
	if sweep.State != core.StateDone || sweep.Counts.Done != 6 {
		t.Fatalf("synchronous sweep not finished: %s %+v", sweep.State, sweep.Counts)
	}

	// The status resource answers at its Location.
	var again core.Sweep
	mustGetJSON(t, loc, &again)
	if again.ID != sweep.ID || again.Counts != sweep.Counts {
		t.Fatalf("GET %s = %+v", loc, again)
	}

	// Child pages in point order, with totals.
	var page struct {
		Jobs  []*core.Job `json:"jobs"`
		Total int         `json:"total"`
	}
	mustGetJSON(t, sweep.JobsURI+"?state=DONE&limit=2&offset=2", &page)
	if page.Total != 6 || len(page.Jobs) != 2 {
		t.Fatalf("child page: total=%d len=%d", page.Total, len(page.Jobs))
	}
	if page.Jobs[0].Inputs["x"] != 3.0 || page.Jobs[1].Inputs["x"] != 4.0 {
		t.Fatalf("page out of order: %v %v", page.Jobs[0].Inputs, page.Jobs[1].Inputs)
	}

	// Bad state filters are rejected.
	if code := getStatus(t, sweep.JobsURI+"?state=BOGUS"); code != http.StatusBadRequest {
		t.Fatalf("bogus state filter = %d, want 400", code)
	}
	// The sweep belongs to its service's namespace only.
	if code := getStatus(t, srv.URL+"/services/nosuch/sweeps/"+sweep.ID); code != http.StatusNotFound {
		t.Fatalf("cross-service sweep GET = %d, want 404", code)
	}

	// DELETE destroys the finished sweep and its children.
	req, _ := http.NewRequest(http.MethodDelete, loc, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE sweep = %d", dresp.StatusCode)
	}
	if code := getStatus(t, loc); code != http.StatusNotFound {
		t.Fatalf("GET deleted sweep = %d, want 404", code)
	}
}

// TestJobListStateFilterAndPagination covers the satellite on the plain job
// collection: state filter plus limit/offset paging.
func TestJobListStateFilterAndPagination(t *testing.T) {
	c, srv := startSweepContainer(t, container.Options{Workers: 2})

	for i := 0; i < 5; i++ {
		job, err := c.Jobs().Submit("double", core.Values{"x": float64(i)}, "")
		if err != nil {
			t.Fatal(err)
		}
		waitDone(t, c, job.ID)
	}

	var page struct {
		Jobs  []*core.Job `json:"jobs"`
		Total int         `json:"total"`
		Limit int         `json:"limit"`
	}
	mustGetJSON(t, srv.URL+"/services/double/jobs?state=DONE&limit=2&offset=1", &page)
	if page.Total != 5 || len(page.Jobs) != 2 || page.Limit != 2 {
		t.Fatalf("filtered page: total=%d len=%d limit=%d", page.Total, len(page.Jobs), page.Limit)
	}
	mustGetJSON(t, srv.URL+"/services/double/jobs?state=ERROR", &page)
	if page.Total != 0 || len(page.Jobs) != 0 {
		t.Fatalf("ERROR filter matched %d", page.Total)
	}
	// Offset past the end yields an empty page with the true total.
	mustGetJSON(t, srv.URL+"/services/double/jobs?limit=10&offset=50", &page)
	if page.Total != 5 || len(page.Jobs) != 0 {
		t.Fatalf("past-end page: total=%d len=%d", page.Total, len(page.Jobs))
	}
	for _, bad := range []string{"?state=nope&", "?limit=x&", "?offset=-1&"} {
		if code := getStatus(t, srv.URL+"/services/double/jobs"+bad); code != http.StatusBadRequest {
			t.Fatalf("GET jobs%s = %d, want 400", bad, code)
		}
	}
}

// TestSweepMetricsE2E asserts the campaign observability series over a real
// /metrics scrape: sweep submissions, terminal children by state, batch
// size samples, and the active gauge returning to rest.
func TestSweepMetricsE2E(t *testing.T) {
	c, srv := startSweepContainer(t, container.Options{Workers: 2, BatchMaxSize: 8})
	before := scrapeMetrics(t, srv.URL)

	const width = 24
	axis := make([]any, width)
	for i := range axis {
		axis[i] = float64(i)
	}
	sweep, err := c.Jobs().SubmitSweep(context.Background(), "double",
		&core.SweepSpec{Axes: map[string][]any{"x": axis}}, "")
	if err != nil {
		t.Fatal(err)
	}
	waitSweepDone(t, c, sweep.ID)

	after := scrapeMetrics(t, srv.URL)
	// The registry is process-wide, so assert deltas, not absolutes.
	// A point that a worker picks up with an empty queue behind it runs
	// through the single-job path and is not a batch sample, so the batch
	// histogram bounds are a majority, not the full width.
	deltas := map[string]float64{
		"mc_sweeps_submitted_total":             1,
		`mc_sweep_children_total{state="done"}`: width,
		"mc_batch_size_count":                   1,
		"mc_batch_size_sum":                     width / 2,
		`mc_http_requests_total{route="metrics",method="GET",code="2xx"}`: 1,
	}
	for series, want := range deltas {
		if got := after[series] - before[series]; got < want {
			t.Errorf("%s grew by %v, want >= %v", series, got, want)
		}
	}
	if after[`mc_batch_size_bucket{le="+Inf"}`] < 1 {
		t.Error("mc_batch_size has empty buckets")
	}
	// Every child is terminal: the active gauge must be back where it was.
	if d := after["mc_sweep_active"] - before["mc_sweep_active"]; d != 0 {
		t.Errorf("mc_sweep_active leaked by %v", d)
	}
	if _, ok := after["mc_sweep_active"]; !ok {
		t.Error("mc_sweep_active not exposed")
	}
}

// TestCampaignSweepSmoke is the CI campaign smoke: a width-256 scattering
// campaign against the built-in simulator, submitted and awaited through
// the client library. CI runs it under -race.
func TestCampaignSweepSmoke(t *testing.T) {
	scatter.RegisterFuncs()
	c, err := container.New(container.Options{
		Workers:      4,
		Logger:       quietLogger(),
		BatchMaxSize: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	if err := c.Deploy(scatter.CurveServiceConfig("curve")); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(c.Handler())
	t.Cleanup(srv.Close)
	c.SetBaseURL(srv.URL)

	// One shared q grid in the template; 256 structure geometries on the
	// axis — the shape of the paper's diffractometry fit.
	const width = 256
	q := make([]any, 32)
	for i := range q {
		q[i] = 0.05 + 0.01*float64(i)
	}
	structures := make([]any, width)
	for i := range structures {
		structures[i] = map[string]any{
			"class": "sphere",
			"r":     1.0 + 0.01*float64(i),
		}
	}
	svc := client.New().Service(srv.URL + "/services/curve")
	sweep, err := svc.SubmitSweep(context.Background(), &core.SweepSpec{
		Template: core.Values{"q": q, "samples": 24.0},
		Axes:     map[string][]any{"structure": structures},
	}, 0)
	if err != nil {
		t.Fatalf("SubmitSweep: %v", err)
	}
	if sweep.Width != width {
		t.Fatalf("width = %d", sweep.Width)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	done, err := svc.WaitSweep(ctx, sweep.URI)
	if err != nil {
		t.Fatalf("WaitSweep: %v", err)
	}
	if done.State != core.StateDone || done.Counts.Done != width {
		t.Fatalf("campaign finished %s with %+v (first error: %s)",
			done.State, done.Counts, done.FirstError)
	}
	// Spot-check a page of results: every curve sampled on the shared grid.
	jobs, total, err := svc.SweepJobs(context.Background(), sweep.URI, core.StateDone, 8, 128)
	if err != nil {
		t.Fatal(err)
	}
	if total != width || len(jobs) != 8 {
		t.Fatalf("result page: total=%d len=%d", total, len(jobs))
	}
	for _, j := range jobs {
		curve, ok := j.Outputs["curve"].([]any)
		if !ok || len(curve) != len(q) {
			t.Fatalf("job %s curve = %T len %d, want %d samples", j.ID, j.Outputs["curve"], len(curve), len(q))
		}
	}
}

func mustGetJSON(t *testing.T, uri string, out any) {
	t.Helper()
	resp, err := http.Get(uri)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d", uri, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("decode %s: %v", uri, err)
	}
}

func getStatus(t *testing.T, uri string) int {
	t.Helper()
	resp, err := http.Get(uri)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}
