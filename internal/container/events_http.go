package container

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"mathcloud/internal/core"
	"mathcloud/internal/events"
	"mathcloud/internal/rest"
)

// SSE endpoints of the push-based async plane (DESIGN.md §5g):
//
//	GET /services/{name}/jobs/{id}/events    one job's state transitions
//	GET /services/{name}/sweeps/{id}/events  one sweep's aggregate progress
//	GET /services/{name}/events              the service's activity feed
//
// Each stream opens with the resource's current representation (the
// subscribe-then-snapshot pattern: the subscription is attached before the
// snapshot is taken, so a transition can be duplicated but never missed),
// then carries one frame per state change.  Terminal job/sweep events end
// the stream; the service feed runs until the client hangs up or the idle
// window (MaxWaitWindow) expires with no traffic.  Clients reconnect with
// Last-Event-ID and the topic ring replays what they missed, or sends a
// single "sync" frame telling them to re-fetch when it cannot.

// sseSource parameterises the shared stream loop.
type sseSource struct {
	topic string
	event string // SSE event type of snapshot frames
	// snapshot returns the resource's current representation and whether
	// it is terminal (the stream ends after delivering it).  It is called
	// for the opening frame and again whenever a coalesced sync event
	// requires re-synchronising the consumer.  nil for feed topics that
	// have no single representation.
	snapshot func() (data []byte, end bool, err error)
	// hello is the opening frame of snapshot-less feeds, so a consumer
	// (or the CI curl smoke test) observes a frame immediately.
	hello []byte
}

// parseLastEventID extracts the SSE resume position.  EventSource sends
// the Last-Event-ID header on reconnect; curl users can pass
// ?lastEventId= instead.
func parseLastEventID(r *http.Request) uint64 {
	s := r.Header.Get("Last-Event-ID")
	if s == "" {
		s = r.URL.Query().Get("lastEventId")
	}
	if s == "" {
		return 0
	}
	n, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return 0
	}
	return n
}

// serveEvents runs one SSE stream: subscribe, send the opening frame,
// then relay bus events until the topic ends, the idle window expires, or
// the client disconnects.
func (c *Container) serveEvents(w http.ResponseWriter, r *http.Request, src sseSource) {
	if r.Method != http.MethodGet {
		rest.MethodNotAllowed(w, http.MethodGet)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		rest.WriteError(w, fmt.Errorf("container: response writer does not support streaming"))
		return
	}
	sub := c.events.Subscribe(src.topic, parseLastEventID(r))
	defer sub.Close()

	h := w.Header()
	h.Set("Content-Type", "text/event-stream; charset=utf-8")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no") // proxies must not buffer the stream
	c.advertiseWaitMax(h)
	w.WriteHeader(http.StatusOK)
	// Pace EventSource reconnects after idle closes so they don't
	// degenerate into a tight retry loop.
	if _, err := io.WriteString(w, "retry: 1000\n\n"); err != nil {
		return
	}

	// Opening frame: the current representation (or the feed hello),
	// stamped with the subscription sequence so a reconnect resumes from
	// here.
	if src.snapshot != nil {
		data, end, err := src.snapshot()
		if err != nil {
			return
		}
		if events.WriteEvent(w, events.Event{ID: sub.Seq, Type: src.event, Data: data, End: end}) != nil {
			return
		}
		fl.Flush()
		if end {
			return
		}
	} else {
		if events.WriteEvent(w, events.Event{ID: sub.Seq, Type: src.event, Data: src.hello}) != nil {
			return
		}
		fl.Flush()
	}

	idle := c.maxWait
	var timer *time.Timer
	var timeout <-chan time.Time
	if idle > 0 {
		timer = time.NewTimer(idle)
		defer timer.Stop()
		timeout = timer.C
	}
	ctx := r.Context()
	for {
		select {
		case ev, ok := <-sub.C:
			if !ok {
				return // bus shut down
			}
			end := ev.End
			if ev.Type == events.TypeSync && src.snapshot != nil {
				// The subscriber fell behind (or resumed past the ring);
				// re-synchronise with a fresh snapshot instead of
				// forwarding the data-less sync marker.
				data, snapEnd, err := src.snapshot()
				if err != nil {
					return
				}
				end = end || snapEnd
				ev = events.Event{ID: ev.ID, Type: src.event, Data: data, End: end}
			}
			if events.WriteEvent(w, ev) != nil {
				return
			}
			fl.Flush()
			if end {
				return
			}
			if timer != nil {
				if !timer.Stop() {
					select {
					case <-timer.C:
					default:
					}
				}
				timer.Reset(idle)
			}
		case <-timeout:
			// Idle cap reached (the SSE analogue of the long-poll window):
			// end the stream cleanly; EventSource reconnects with
			// Last-Event-ID and resumes from the topic ring.
			return
		case <-ctx.Done():
			return
		}
	}
}

// handleJobEvents streams one job's state transitions.
func (c *Container) handleJobEvents(w http.ResponseWriter, r *http.Request, service, jobID string) {
	job, err := c.jobs.Get(jobID)
	if err != nil || job.Service != service {
		rest.WriteError(w, core.ErrNotFound("job", jobID))
		return
	}
	c.serveEvents(w, r, sseSource{
		topic: events.JobTopic(jobID),
		event: events.TypeJob,
		snapshot: func() ([]byte, bool, error) {
			j, err := c.jobs.Get(jobID)
			if err != nil {
				return nil, false, err
			}
			data, err := json.Marshal(c.decorate(j))
			return data, j.State.Terminal(), err
		},
	})
}

// handleSweepEvents streams one sweep's aggregate progress.
func (c *Container) handleSweepEvents(w http.ResponseWriter, r *http.Request, service, sweepID string) {
	sweep, err := c.jobs.GetSweep(sweepID)
	if err != nil || sweep.Service != service {
		rest.WriteError(w, core.ErrNotFound("sweep", sweepID))
		return
	}
	c.serveEvents(w, r, sseSource{
		topic: events.SweepTopic(sweepID),
		event: events.TypeSweep,
		snapshot: func() ([]byte, bool, error) {
			s, err := c.jobs.GetSweep(sweepID)
			if err != nil {
				return nil, false, err
			}
			data, err := json.Marshal(c.decorateSweep(s))
			return data, s.State.Terminal(), err
		},
	})
}

// handleServiceEvents streams the service's activity feed: every job
// transition of the service, sweep submissions, deploy/undeploy notices.
func (c *Container) handleServiceEvents(w http.ResponseWriter, r *http.Request, service string) {
	if _, err := c.Describe(service); err != nil {
		rest.WriteError(w, err)
		return
	}
	hello, _ := json.Marshal(map[string]string{"service": service, "change": "watch"})
	c.serveEvents(w, r, sseSource{
		topic: events.ServiceTopic(service),
		event: events.TypeService,
		hello: hello,
	})
}
