package container

import (
	"testing"
)

// TestRestoreFileIdempotent replays the same journaled file record twice —
// exactly what a snapshot overlapping the log tail produces — and checks the
// refcount is taken once, so the later delete cannot double-release.
func TestRestoreFileIdempotent(t *testing.T) {
	fs, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("durable artifact")
	id, err := fs.PutBytes(payload, "job-1")
	if err != nil {
		t.Fatal(err)
	}
	digest, err := fs.Digest(id)
	if err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 2; i++ {
		if err := fs.restoreFile(id, digest, int64(len(payload)), "job-1"); err != nil {
			t.Fatalf("restore #%d: %v", i+1, err)
		}
	}
	fs.mu.Lock()
	refs := fs.refs[digest]
	fs.mu.Unlock()
	if refs != 1 {
		t.Fatalf("refs after double restore = %d, want 1", refs)
	}

	if err := fs.Delete(id); err != nil {
		t.Fatal(err)
	}
	if err := fs.Delete(id); err == nil {
		t.Fatal("second delete of the same ID succeeded, want not-found")
	}
	files, blobs, logical, physical := fs.Stats()
	if files != 0 || blobs != 0 || logical != 0 || physical != 0 {
		t.Fatalf("store not empty after delete: files=%d blobs=%d logical=%d physical=%d",
			files, blobs, logical, physical)
	}
}

// TestDeleteRefcountUnderflowGuard forces the inconsistent state older
// journals could produce — more IDs pointing at a digest than its refcount —
// and checks deletion never drives the count negative (a negative count used
// to unlink a blob that live IDs still referenced on the next delete).
func TestDeleteRefcountUnderflowGuard(t *testing.T) {
	fs, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("shared blob")
	idA, err := fs.PutBytes(payload, "job-a")
	if err != nil {
		t.Fatal(err)
	}
	digest, err := fs.Digest(idA)
	if err != nil {
		t.Fatal(err)
	}

	// Inject the inconsistency: a second ID on the same digest without a
	// matching refcount increment (refs stays 1 for two IDs).
	const idB = "feedfacefeedfacefeedfacefeedface"
	fs.mu.Lock()
	fs.digests[idB] = digest
	fs.sizes[idB] = int64(len(payload))
	fs.owners[idB] = "job-b"
	fs.logicalBytes += int64(len(payload))
	fs.mu.Unlock()

	if err := fs.Delete(idA); err != nil {
		t.Fatal(err)
	}
	if err := fs.Delete(idB); err != nil {
		t.Fatalf("delete with zero refcount: %v", err)
	}
	fs.mu.Lock()
	refs, tracked := fs.refs[digest]
	fs.mu.Unlock()
	if tracked {
		t.Fatalf("refs[%s] = %d after both deletes, want the entry gone", digest, refs)
	}
	if refs < 0 {
		t.Fatalf("refcount underflowed to %d", refs)
	}
}
