package container

import (
	"encoding/json"

	"mathcloud/internal/events"
)

// Publish side of the event plane.  Every publisher is gated on
// Bus.Active: a resource nobody ever subscribed to pays one or two map
// lookups per transition and never snapshots or marshals.  A subscriber
// attaching between the Active check and the transition is not a loss —
// the SSE handlers send the current representation right after
// subscribing, so the state the gate skipped is delivered as the opening
// snapshot.
//
// All notify functions must be called WITHOUT holding the record's mutex
// (same contract as sweepRecord.childTransition): the bus takes its own
// topic locks and the snapshot re-acquires record state.

// notifyJob publishes the job's current snapshot on its job topic and on
// its service's activity feed.  A terminal snapshot ends the job topic.
func (jm *JobManager) notifyJob(rec *jobRecord) {
	bus := jm.c.events
	if bus == nil {
		return
	}
	// ID and Service are immutable after the record is published, so they
	// are readable without rec.mu.
	jobTopic := events.JobTopic(rec.job.ID)
	svcTopic := events.ServiceTopic(rec.job.Service)
	onJob, onSvc := bus.Active(jobTopic), bus.Active(svcTopic)
	if !onJob && !onSvc {
		return
	}
	job := jm.c.decorate(rec.snapshot())
	data, err := json.Marshal(job)
	if err != nil {
		return
	}
	if onJob {
		bus.Publish(jobTopic, events.TypeJob, job.State.Terminal(), data)
	}
	if onSvc {
		// The feed outlives any one job; terminal jobs don't end it.
		bus.Publish(svcTopic, events.TypeJob, false, data)
	}
}

// notifySweep publishes the sweep's aggregate snapshot on its topic.  The
// event granularity is the child transition: wide sweeps produce one event
// per child state change, and the bounded subscriber buffers coalesce
// bursts into sync frames that the SSE handler re-expands to a fresh
// snapshot — a watcher sees every count eventually, not every increment.
func (jm *JobManager) notifySweep(sw *sweepRecord) {
	bus := jm.c.events
	if bus == nil {
		return
	}
	topic := events.SweepTopic(sw.id)
	if !bus.Active(topic) {
		return
	}
	s := jm.c.decorateSweep(sw.snapshot())
	data, err := json.Marshal(s)
	if err != nil {
		return
	}
	bus.Publish(topic, events.TypeSweep, s.State.Terminal(), data)
}

// notifySweepSubmitted announces a new sweep on the service feed.
func (jm *JobManager) notifySweepSubmitted(sw *sweepRecord) {
	bus := jm.c.events
	if bus == nil {
		return
	}
	topic := events.ServiceTopic(sw.service)
	if !bus.Active(topic) {
		return
	}
	s := jm.c.decorateSweep(sw.snapshot())
	data, err := json.Marshal(s)
	if err != nil {
		return
	}
	bus.Publish(topic, events.TypeSweep, false, data)
}
