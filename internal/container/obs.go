package container

import (
	"log/slog"
	"net/http"
	"strings"
	"time"

	"mathcloud/internal/obs"
)

// Container metric families (DESIGN.md §5d).  They live in the process-wide
// default registry, so several containers in one process — the WMS plus an
// application container, or a test harness — aggregate into one /metrics
// view instead of clashing.
var (
	metHTTPRequests = obs.NewCounterVec("mc_http_requests_total",
		"HTTP requests served by the unified REST API, by route, method and status class.",
		"route", "method", "code")
	metHTTPLatency = obs.NewHistogramVec("mc_http_request_seconds",
		"HTTP request handling latency by route.",
		obs.LatencyBuckets, "route")

	metJobsSubmitted = obs.NewCounter("mc_jobs_submitted_total",
		"Jobs accepted into the queue.")
	metJobsCompleted = obs.NewCounterVec("mc_jobs_completed_total",
		"Jobs that reached a terminal state, by state.", "state")
	metJobsWaiting = obs.NewGauge("mc_job_queue_depth",
		"Jobs currently waiting in the queue.")
	metJobsRunning = obs.NewGauge("mc_jobs_running",
		"Jobs currently executing in handler workers.")
	metQueueWait = obs.NewHistogram("mc_job_queue_wait_seconds",
		"Time jobs spent queued before a handler picked them up.",
		obs.DurationBuckets)
	metRunTime = obs.NewHistogram("mc_job_run_seconds",
		"Job execution time from handler pickup to terminal state.",
		obs.DurationBuckets)
	metWorkerPanics = obs.NewCounter("mc_worker_panics_total",
		"Adapter panics recovered by the handler pool.")
	metDeadlineOverruns = obs.NewCounter("mc_job_deadline_overruns_total",
		"Jobs terminated for exceeding their execution deadline.")
	metQueueRejections = obs.NewCounter("mc_job_queue_rejections_total",
		"Submissions rejected because the job queue was full.")

	// Result-reuse plane (DESIGN.md §5e): the computation cache over
	// deterministic services and the content-addressed file store.
	metMemoHits = obs.NewCounter("mc_memo_hits_total",
		"Deterministic submissions answered from the computation cache.")
	metMemoMisses = obs.NewCounter("mc_memo_misses_total",
		"Deterministic submissions that had to execute the adapter.")
	metMemoCoalesced = obs.NewCounter("mc_memo_coalesced_total",
		"Deterministic submissions coalesced onto an identical in-flight execution.")
	metMemoEvictions = obs.NewCounter("mc_memo_evictions_total",
		"Computation cache entries evicted by the LRU bounds.")
	metMemoBytes = obs.NewGauge("mc_memo_bytes",
		"Approximate bytes of cached computation outputs.")
	metDedupFiles = obs.NewCounter("mc_filestore_dedup_files_total",
		"File resources deduplicated to an existing content-addressed blob.")
	metDedupBytes = obs.NewCounter("mc_filestore_dedup_bytes_total",
		"Bytes not written to disk because an identical blob already existed.")
	metRemoteFetches = obs.NewCounter("mc_filestore_remote_fetch_total",
		"Foreign-replica file blobs pulled into the local content-addressed store.")
	metRemoteFetchBytes = obs.NewCounter("mc_filestore_remote_fetch_bytes_total",
		"Bytes transferred pulling foreign-replica file blobs.")

	// Campaign plane (DESIGN.md §5f): parameter sweeps and adapter
	// micro-batching.
	metSweepsSubmitted = obs.NewCounter("mc_sweeps_submitted_total",
		"Parameter sweeps accepted for expansion into child jobs.")
	metSweepActive = obs.NewGauge("mc_sweep_active",
		"Sweeps with at least one non-terminal child job.")
	metSweepChildren = obs.NewCounterVec("mc_sweep_children_total",
		"Sweep child jobs that reached a terminal state, by state.", "state")
	metBatchSize = obs.NewHistogram("mc_batch_size",
		"Jobs dispatched per adapter micro-batch invocation.",
		[]float64{1, 2, 4, 8, 16, 32, 64, 128})

	// Durability plane (DESIGN.md §5i): journal replay and retention.
	metRecoveryReplayed = obs.NewCounterVec("mc_recovery_replayed_total",
		"State records restored from the write-ahead journal at boot, by record kind.",
		"kind")
	metJobsReaped = obs.NewCounter("mc_jobs_reaped_total",
		"Jobs purged by the destruction-time reaper.")
)

// knownRoutes is the closed set of route labels routeOf can return.
var knownRoutes = []string{
	"index", "metrics", "status", "load", "memo", "workflows", "editor",
	"search", "tags", "ping", "file", "service", "job_list", "job",
	"sweep_list", "sweep", "sweep_jobs", "service_events", "job_events",
	"sweep_events", "other",
}

// knownMethods and knownClasses close the remaining label dimensions of the
// request counter so its children can be pre-resolved alongside the latency
// histograms.
var knownMethods = []string{
	http.MethodGet, http.MethodPost, http.MethodPut, http.MethodDelete,
	http.MethodHead, http.MethodOptions, http.MethodPatch,
}

var knownClasses = []string{"1xx", "2xx", "3xx", "4xx", "5xx", "other"}

// latencyByRoute and requestsByRoute pre-resolve the metric children of
// every (route, method, class) combination, so the per-request hot path is
// read-only map lookups with no label rendering or variadic allocation.
// Pre-resolved series stay hidden from /metrics until first use, so the
// cross product does not flood the exposition with zero series.
var (
	latencyByRoute  map[string]obs.Histogram
	requestsByRoute map[string]map[string][6]obs.Counter
)

func init() {
	latencyByRoute = make(map[string]obs.Histogram, len(knownRoutes))
	requestsByRoute = make(map[string]map[string][6]obs.Counter, len(knownRoutes))
	for _, r := range knownRoutes {
		latencyByRoute[r] = metHTTPLatency.With(r)
		byMethod := make(map[string][6]obs.Counter, len(knownMethods))
		for _, m := range knownMethods {
			var byClass [6]obs.Counter
			for i, c := range knownClasses {
				byClass[i] = metHTTPRequests.With(r, m, c)
			}
			byMethod[m] = byClass
		}
		requestsByRoute[r] = byMethod
	}
}

// routeOf classifies a request path into a bounded route label.  Labels
// must have low cardinality, so resource names and IDs collapse into their
// route pattern.
func routeOf(path string) string {
	head, tail := shiftClean(path)
	switch head {
	case "":
		return "index"
	case "metrics", "status", "load", "memo", "workflows", "editor", "search", "tags", "ping":
		return head
	case "files":
		return "file"
	case "services":
		_, tail = shiftClean(tail)
		sub, rest := shiftClean(tail)
		switch sub {
		case "":
			return "service"
		case "events":
			return "service_events"
		case "jobs":
			id, rest2 := shiftClean(rest)
			if id == "" {
				return "job_list"
			}
			if sub, _ := shiftClean(rest2); sub == "events" {
				return "job_events"
			}
			return "job"
		case "sweeps":
			id, rest2 := shiftClean(rest)
			if id == "" {
				return "sweep_list"
			}
			switch sub, _ := shiftClean(rest2); sub {
			case "jobs":
				return "sweep_jobs"
			case "events":
				return "sweep_events"
			}
			return "sweep"
		}
	}
	return "other"
}

// shiftClean is rest.ShiftPath without the package dependency, returning ""
// tails for exhausted paths.
func shiftClean(p string) (head, tail string) {
	p = strings.TrimPrefix(p, "/")
	if i := strings.IndexByte(p, '/'); i >= 0 {
		return p[:i], p[i:]
	}
	return p, ""
}

// classIndex folds a status code into its knownClasses index ("2xx" → 1).
func classIndex(code int) int {
	if c := code / 100; c >= 1 && c <= 5 {
		return c - 1
	}
	return 5
}

// codeClass folds a status code into its class label ("2xx", "4xx", …).
func codeClass(code int) string {
	return knownClasses[classIndex(code)]
}

// statusWriter records the response status for metrics and logs.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(status int) {
	w.status = status
	w.ResponseWriter.WriteHeader(status)
}

// Flush forwards to the wrapped writer so the SSE endpoints can stream
// through the instrumentation middleware.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// instrument is the container's ingress middleware: it establishes the
// request ID (reusing a propagated X-Request-ID or generating one), echoes
// it on the response, and records per-route request metrics and the
// structured request log.
func instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		id := r.Header.Get(obs.RequestIDHeader)
		if id == "" {
			id = obs.NewRequestID()
		}
		ctx := obs.WithRequestID(r.Context(), id)
		r = r.WithContext(ctx)
		w.Header().Set(obs.RequestIDHeader, id)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(sw, r)
		if !obs.Enabled() {
			return
		}
		elapsed := time.Since(start)
		route := routeOf(r.URL.Path)
		cls := classIndex(sw.status)
		if byClass, ok := requestsByRoute[route][r.Method]; ok {
			byClass[cls].Inc()
		} else {
			metHTTPRequests.With(route, r.Method, knownClasses[cls]).Inc()
		}
		latencyByRoute[route].Observe(elapsed.Seconds())
		// Build the attrs only when the record will be emitted: at the
		// default warn level this keeps the hot path allocation-free.
		if logger := obs.Logger(); logger.Enabled(ctx, slog.LevelInfo) {
			logger.LogAttrs(ctx, slog.LevelInfo, "http request",
				slog.String("request_id", id),
				slog.String("method", r.Method),
				slog.String("path", r.URL.Path),
				slog.String("route", route),
				slog.Int("status", sw.status),
				slog.Duration("elapsed", elapsed),
			)
		}
	})
}
