package container_test

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"mathcloud/internal/container"
	"mathcloud/internal/core"
	"mathcloud/internal/journal"
)

func getFederationJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

// TestLoadEndpointReportsQueueAndMemo exercises GET /load: the report that
// feeds the gateway's power-of-two-choices placement and admission control.
func TestLoadEndpointReportsQueueAndMemo(t *testing.T) {
	var calls atomic.Int64
	c := newMemoContainer(t, container.Options{Workers: 3, ReplicaID: "r07"})
	deployCounting(t, c, "loadsvc", true, &calls)
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	job, err := c.Jobs().Submit("loadsvc", core.Values{"x": 4.0}, "")
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, c, job.ID)

	var report core.LoadReport
	if code := getFederationJSON(t, srv.URL+"/load", &report); code != http.StatusOK {
		t.Fatalf("GET /load = %d", code)
	}
	if report.Replica != "r07" {
		t.Fatalf("replica = %q, want r07", report.Replica)
	}
	if report.Workers != 3 {
		t.Fatalf("workers = %d, want 3", report.Workers)
	}
	if report.QueueCap <= 0 {
		t.Fatalf("queueCap = %d, want > 0", report.QueueCap)
	}
	if report.QueueDepth < 0 || report.QueueDepth > report.QueueCap {
		t.Fatalf("queueDepth = %d out of [0, %d]", report.QueueDepth, report.QueueCap)
	}
	if report.MemoEntries != 1 {
		t.Fatalf("memoEntries = %d, want 1 (the finished deterministic job)", report.MemoEntries)
	}
}

// TestMemoEndpointsServeIndexAndEntries exercises the memo export plane:
// the delta feed (GET /memo?since=) and the digest probe (GET /memo/{d}).
func TestMemoEndpointsServeIndexAndEntries(t *testing.T) {
	var calls atomic.Int64
	c := newMemoContainer(t, container.Options{Workers: 2, ReplicaID: "r03"})
	deployCounting(t, c, "feedsvc", true, &calls)
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	job, err := c.Jobs().Submit("feedsvc", core.Values{"x": 8.0}, "")
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, c, job.ID)

	var page core.MemoIndexPage
	if code := getFederationJSON(t, srv.URL+"/memo?since=0", &page); code != http.StatusOK {
		t.Fatalf("GET /memo = %d", code)
	}
	if page.Replica != "r03" {
		t.Fatalf("page replica = %q", page.Replica)
	}
	if len(page.Entries) != 1 || page.Entries[0].Service != "feedsvc" || page.Entries[0].JobID != job.ID {
		t.Fatalf("page entries = %+v, want one feedsvc entry backed by %s", page.Entries, job.ID)
	}
	if page.Seq == 0 {
		t.Fatal("page seq not advanced")
	}

	// Cursor at the page's Seq: nothing new.
	var idle core.MemoIndexPage
	if code := getFederationJSON(t, fmt.Sprintf("%s/memo?since=%d", srv.URL, page.Seq), &idle); code != http.StatusOK {
		t.Fatalf("GET /memo?since=%d = %d", page.Seq, code)
	}
	if idle.Reset || len(idle.Entries) != 0 {
		t.Fatalf("idle page = %+v", idle)
	}

	// The digest probe answers with the cached result.
	var hit struct {
		Key     string      `json:"key"`
		Service string      `json:"service"`
		JobID   string      `json:"jobID"`
		Outputs core.Values `json:"outputs"`
	}
	key := page.Entries[0].Key
	if code := getFederationJSON(t, srv.URL+"/memo/"+key, &hit); code != http.StatusOK {
		t.Fatalf("GET /memo/%s = %d", key, code)
	}
	if hit.Service != "feedsvc" || hit.JobID != job.ID || hit.Outputs["y"] != 16.0 {
		t.Fatalf("memo hit = %+v", hit)
	}

	// Unknown digests are 404, and a bad cursor is 400.
	var ignore map[string]any
	if code := getFederationJSON(t, srv.URL+"/memo/deadbeef", &ignore); code != http.StatusNotFound {
		t.Fatalf("GET /memo/deadbeef = %d, want 404", code)
	}
	if code := getFederationJSON(t, srv.URL+"/memo?since=banana", &ignore); code != http.StatusBadRequest {
		t.Fatalf("GET /memo?since=banana = %d, want 400", code)
	}
}

// TestSnapshotBytesTriggersCheckpoint pins the size trigger: with
// SnapshotBytes set to one byte, the first journaled mutation pushes the
// live WAL over the threshold and the snapshotter checkpoints without
// waiting for the periodic interval.
func TestSnapshotBytesTriggersCheckpoint(t *testing.T) {
	registerSum("sizetrig.sum")
	dir := t.TempDir()
	opts := durableOpts(dir, journal.SyncAlways)
	opts.SnapshotInterval = -1 // periodic trigger off: only size can fire
	opts.SnapshotBytes = 1
	c, err := container.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	deployNative(t, c, "ssum", "sizetrig.sum", true, sumParams.in, sumParams.out)
	if err := c.Recover(); err != nil {
		t.Fatal(err)
	}
	job, err := c.Jobs().Submit("ssum", core.Values{"a": 1.0, "b": 2.0}, "")
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, c, job.ID)

	// The snapshotter polls at 1s cadence when a size bound is set.
	journalDir := filepath.Join(dir, "journal")
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		entries, err := os.ReadDir(journalDir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			if strings.HasPrefix(e.Name(), "snap-") && strings.HasSuffix(e.Name(), ".snap") {
				return // checkpoint written by the size trigger
			}
		}
		time.Sleep(100 * time.Millisecond)
	}
	t.Fatal("no snapshot appeared within 10s despite SnapshotBytes=1")
}
