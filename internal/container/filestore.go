package container

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sync"

	"mathcloud/internal/core"
	"mathcloud/internal/journal"
	"mathcloud/internal/rest"
)

// FileStore manages the file resources of a container: the parts of client
// requests and job results that are passed as remote files rather than
// inline JSON values.  Identifiers stay opaque random hex strings, but the
// storage underneath is content-addressed: every payload is hashed while it
// streams in (one pass, no write-then-hash), and identical payloads share a
// single blob on disk with refcounted deletion.  The diffractometry sweep —
// thousands of jobs exchanging near-identical curve files — and the memo
// plane's repeated jobs therefore stop multiplying identical bytes on disk,
// and the content digest of any stored file is available for free, which is
// what lets the computation cache key file inputs by content rather than by
// file ID.
type FileStore struct {
	dir string
	// idPrefix is the replica affinity prefix stamped on every minted file
	// ID ("" outside a federation).  Set once, before the store is shared.
	idPrefix string
	// jl, when set, records every ID birth and death in the container's
	// write-ahead journal so the index survives restarts.  Blobs are their
	// own durability (content-addressed files on disk); the journal only
	// carries the ID→digest mapping that points at them.
	jl   *journal.Journal
	logf func(format string, args ...any)

	mu    sync.Mutex
	sizes map[string]int64
	// owners maps a file ID to the job that produced it, so that
	// deleting a job destroys its subordinate file resources, as the
	// unified API requires.
	owners map[string]string
	// digests maps a file ID to the sha256 hex of its content; refs counts
	// the IDs sharing each blob.  A blob is unlinked when its last ID goes.
	digests map[string]string
	refs    map[string]int
	// logicalBytes and physicalBytes track the dedup ratio: bytes as the
	// API sees them vs bytes actually on disk.
	logicalBytes  int64
	physicalBytes int64
}

// fileIDPattern accepts the bare 32-hex form and the federation form with a
// replica affinity prefix ("r03-<32 hex>", see core.TagID).
var fileIDPattern = regexp.MustCompile(`^(?:[a-z0-9]{1,16}-)?[0-9a-f]{32}$`)

// SetIDPrefix sets the replica affinity prefix of newly minted file IDs.
// Call it right after construction, before the store serves requests.
func (fs *FileStore) SetIDPrefix(replica string) { fs.idPrefix = replica }

// setJournal attaches the container's write-ahead journal.  Call it right
// after construction, before the store serves requests.
func (fs *FileStore) setJournal(jl *journal.Journal, logf func(format string, args ...any)) {
	fs.jl = jl
	fs.logf = logf
}

// logPut journals the birth of a file ID.  Called outside fs.mu.
func (fs *FileStore) logPut(id, digest string, size int64, owner string) {
	if fs.jl == nil {
		return
	}
	if err := fs.jl.Append(journal.KindFilePut, journal.FilePutRecord{ID: id, Digest: digest, Size: size, Owner: owner}); err != nil {
		fs.logf("container: journal: file put %s: %v", id, err)
	}
}

// logDel journals the death of a file ID.  Called outside fs.mu.
func (fs *FileStore) logDel(id string) {
	if fs.jl == nil {
		return
	}
	if err := fs.jl.Append(journal.KindFileDel, journal.FileDelRecord{ID: id}); err != nil {
		fs.logf("container: journal: file del %s: %v", id, err)
	}
}

// NewFileStore creates a file store rooted at dir, creating it if needed.
func NewFileStore(dir string) (*FileStore, error) {
	if err := os.MkdirAll(dir, 0o700); err != nil {
		return nil, fmt.Errorf("container: file store: %w", err)
	}
	return &FileStore{
		dir:     dir,
		sizes:   make(map[string]int64),
		owners:  make(map[string]string),
		digests: make(map[string]string),
		refs:    make(map[string]int),
	}, nil
}

// forJob decorates a file-store error with the owning job, so a failure
// surfacing through a job record names the job it broke.
func forJob(jobID string) string {
	if jobID == "" {
		return ""
	}
	return " (job " + jobID + ")"
}

// Put stores the content of r as a new file resource owned by the given
// job ("" for client uploads) and returns its identifier.  The sha256 of
// the content is computed while streaming to the temporary file — a single
// pass over the bytes — and an identical payload already in the store is
// deduplicated to the existing blob.
func (fs *FileStore) Put(r io.Reader, jobID string) (string, error) {
	tmp, err := os.CreateTemp(fs.dir, "tmp-")
	if err != nil {
		return "", fmt.Errorf("container: file store: create%s: %w", forJob(jobID), err)
	}
	tmpPath := tmp.Name()
	h := sha256.New()
	n, err := rest.Copy(io.MultiWriter(tmp, h), r)
	if closeErr := tmp.Close(); err == nil {
		err = closeErr
	}
	if err != nil {
		_ = os.Remove(tmpPath)
		return "", fmt.Errorf("container: file store: write%s: %w", forJob(jobID), err)
	}
	return fs.commit(tmpPath, hex.EncodeToString(h.Sum(nil)), n, jobID)
}

// PutBytes stores a byte slice as a new file resource.
func (fs *FileStore) PutBytes(data []byte, jobID string) (string, error) {
	sum := sha256.Sum256(data)
	digest := hex.EncodeToString(sum[:])
	fs.mu.Lock()
	if fs.refs[digest] > 0 {
		id := fs.adoptLocked(digest, int64(len(data)), jobID)
		fs.mu.Unlock()
		fs.logPut(id, digest, int64(len(data)), jobID)
		return id, nil
	}
	fs.mu.Unlock()
	tmp, err := os.CreateTemp(fs.dir, "tmp-")
	if err != nil {
		return "", fmt.Errorf("container: file store: create%s: %w", forJob(jobID), err)
	}
	tmpPath := tmp.Name()
	_, err = tmp.Write(data)
	if closeErr := tmp.Close(); err == nil {
		err = closeErr
	}
	if err != nil {
		_ = os.Remove(tmpPath)
		return "", fmt.Errorf("container: file store: write%s: %w", forJob(jobID), err)
	}
	return fs.commit(tmpPath, digest, int64(len(data)), jobID)
}

// PutFile ingests an existing file (typically an adapter output in a job
// work directory) as a new file resource.  The content is hashed in one
// read pass; a new blob is hardlinked from the source when the filesystem
// allows it, falling back to a pooled-buffer copy, so ingestion never
// buffers the file on the heap.
func (fs *FileStore) PutFile(path, jobID string) (string, error) {
	in, err := os.Open(path)
	if err != nil {
		return "", fmt.Errorf("container: file store: ingest%s: %w", forJob(jobID), err)
	}
	h := sha256.New()
	n, err := rest.Copy(h, in)
	_ = in.Close()
	if err != nil {
		return "", fmt.Errorf("container: file store: ingest%s: %w", forJob(jobID), err)
	}
	digest := hex.EncodeToString(h.Sum(nil))

	fs.mu.Lock()
	if fs.refs[digest] > 0 {
		id := fs.adoptLocked(digest, n, jobID)
		fs.mu.Unlock()
		fs.logPut(id, digest, n, jobID)
		return id, nil
	}
	fs.mu.Unlock()

	// New content: materialise the blob outside the lock, preferring a
	// hardlink from the source over copying the bytes.
	tmp, err := os.CreateTemp(fs.dir, "tmp-")
	if err != nil {
		return "", fmt.Errorf("container: file store: create%s: %w", forJob(jobID), err)
	}
	tmpPath := tmp.Name()
	_ = tmp.Close()
	_ = os.Remove(tmpPath)
	if err := os.Link(path, tmpPath); err != nil {
		in, err := os.Open(path)
		if err != nil {
			return "", fmt.Errorf("container: file store: ingest%s: %w", forJob(jobID), err)
		}
		out, err := os.OpenFile(tmpPath, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o600)
		if err != nil {
			_ = in.Close()
			return "", fmt.Errorf("container: file store: create%s: %w", forJob(jobID), err)
		}
		_, err = rest.Copy(out, in)
		_ = in.Close()
		if closeErr := out.Close(); err == nil {
			err = closeErr
		}
		if err != nil {
			_ = os.Remove(tmpPath)
			return "", fmt.Errorf("container: file store: ingest%s: %w", forJob(jobID), err)
		}
	}
	return fs.commit(tmpPath, digest, n, jobID)
}

// commit registers a fully written temporary file under its content digest:
// either the digest is new and the temp file becomes the blob, or another
// writer got there first and the temp file is discarded in favour of the
// existing blob.  Either way a fresh file ID pointing at the blob is
// returned.
func (fs *FileStore) commit(tmpPath, digest string, size int64, jobID string) (string, error) {
	fs.mu.Lock()
	if fs.refs[digest] > 0 {
		id := fs.adoptLocked(digest, size, jobID)
		fs.mu.Unlock()
		_ = os.Remove(tmpPath)
		fs.logPut(id, digest, size, jobID)
		return id, nil
	}
	// Rename under the lock: it is a metadata operation (fast) and keeps
	// the refs map authoritative about which blobs exist on disk.
	if err := os.Rename(tmpPath, fs.blobPath(digest)); err != nil {
		fs.mu.Unlock()
		_ = os.Remove(tmpPath)
		return "", fmt.Errorf("container: file store: store blob%s: %w", forJob(jobID), err)
	}
	fs.refs[digest] = 1
	fs.physicalBytes += size
	id := fs.registerLocked(digest, size, jobID)
	fs.mu.Unlock()
	fs.logPut(id, digest, size, jobID)
	return id, nil
}

// adoptLocked attaches a fresh ID to an existing blob (dedup hit).
// Callers must hold fs.mu.
func (fs *FileStore) adoptLocked(digest string, size int64, jobID string) string {
	fs.refs[digest]++
	metDedupFiles.Inc()
	metDedupBytes.Add(float64(size))
	return fs.registerLocked(digest, size, jobID)
}

// registerLocked mints an ID for a blob already accounted in refs.
// Callers must hold fs.mu.
func (fs *FileStore) registerLocked(digest string, size int64, jobID string) string {
	id := core.TagID(fs.idPrefix, core.NewID())
	fs.digests[id] = digest
	fs.sizes[id] = size
	fs.logicalBytes += size
	if jobID != "" {
		fs.owners[id] = jobID
	}
	return id
}

// blobFor resolves an ID to its blob path.
func (fs *FileStore) blobFor(id string) (string, int64, bool) {
	if !fileIDPattern.MatchString(id) {
		return "", 0, false
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	digest, ok := fs.digests[id]
	if !ok {
		return "", 0, false
	}
	return fs.blobPath(digest), fs.sizes[id], true
}

// Open returns a reader over the file content.  The caller must close it.
func (fs *FileStore) Open(id string) (io.ReadSeekCloser, int64, error) {
	path, size, ok := fs.blobFor(id)
	if !ok {
		return nil, 0, core.ErrNotFound("file", id)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, core.ErrNotFound("file", id)
	}
	return f, size, nil
}

// ReadAll returns the whole file content.  It is retained for small
// payloads and tests; hot paths stage files with StageTo instead, which
// never materialises the content on the heap.
func (fs *FileStore) ReadAll(id string) ([]byte, error) {
	f, _, err := fs.Open(id)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return io.ReadAll(f)
}

// Digest returns the sha256 hex of the file content.  It is free — the
// hash was computed while the file streamed in — which is what makes
// content-keyed computation caching affordable on the submit path.
func (fs *FileStore) Digest(id string) (string, error) {
	if !fileIDPattern.MatchString(id) {
		return "", core.ErrNotFound("file", id)
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	digest, ok := fs.digests[id]
	if !ok {
		return "", core.ErrNotFound("file", id)
	}
	return digest, nil
}

// StageTo materialises the file content at dst without reading it onto the
// heap: it hardlinks the stored blob when the filesystem allows, and falls
// back to a pooled-buffer streaming copy otherwise.  This is the local
// short-cut of the file staging plane.
func (fs *FileStore) StageTo(id, dst string) error {
	src, _, ok := fs.blobFor(id)
	if !ok {
		return core.ErrNotFound("file", id)
	}
	if err := os.Link(src, dst); err == nil {
		return nil
	}
	in, err := os.Open(src)
	if err != nil {
		return core.ErrNotFound("file", id)
	}
	defer in.Close()
	out, err := os.OpenFile(dst, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o600)
	if err != nil {
		return fmt.Errorf("container: file store: stage: %w", err)
	}
	_, err = rest.Copy(out, in)
	if closeErr := out.Close(); err == nil {
		err = closeErr
	}
	if err != nil {
		_ = os.Remove(dst)
		return fmt.Errorf("container: file store: stage: %w", err)
	}
	return nil
}

// Size returns the stored size of the file.
func (fs *FileStore) Size(id string) (int64, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	size, ok := fs.sizes[id]
	if !ok {
		return 0, core.ErrNotFound("file", id)
	}
	return size, nil
}

// Delete removes a file resource.  The backing blob is unlinked only when
// its last referencing ID is deleted.
func (fs *FileStore) Delete(id string) error {
	fs.mu.Lock()
	digest, ok := fs.digests[id]
	size := fs.sizes[id]
	delete(fs.sizes, id)
	delete(fs.owners, id)
	delete(fs.digests, id)
	var unlink string
	if ok {
		fs.logicalBytes -= size
		// Guard the decrement: a refcount can only reach zero together with
		// the last ID, but replayed journals have carried inconsistent pairs
		// before, and a negative count would unlink a blob other IDs still
		// reference on the next delete.
		if fs.refs[digest] > 0 {
			fs.refs[digest]--
		}
		if fs.refs[digest] <= 0 {
			delete(fs.refs, digest)
			fs.physicalBytes -= size
			unlink = fs.blobPath(digest)
		}
	}
	fs.mu.Unlock()
	if !ok {
		return core.ErrNotFound("file", id)
	}
	fs.logDel(id)
	if unlink != "" {
		if err := os.Remove(unlink); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("container: file store: delete: %w", err)
		}
	}
	return nil
}

// DeleteOwnedBy removes every file resource owned by the given job and
// returns how many were deleted.
func (fs *FileStore) DeleteOwnedBy(jobID string) int {
	fs.mu.Lock()
	var ids []string
	for id, owner := range fs.owners {
		if owner == jobID {
			ids = append(ids, id)
		}
	}
	fs.mu.Unlock()
	for _, id := range ids {
		_ = fs.Delete(id)
	}
	return len(ids)
}

// Count returns the number of stored files (IDs, not blobs).
func (fs *FileStore) Count() int {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return len(fs.sizes)
}

// Stats reports the dedup state of the store: how many file IDs exist, how
// many distinct blobs back them, and the logical vs physical byte totals.
func (fs *FileStore) Stats() (files, blobs int, logicalBytes, physicalBytes int64) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return len(fs.sizes), len(fs.refs), fs.logicalBytes, fs.physicalBytes
}

func (fs *FileStore) blobPath(digest string) string {
	return filepath.Join(fs.dir, "sha256-"+filepath.Base(digest))
}

// restoreFile re-registers a journaled file ID during recovery, without
// re-journaling it.  The blob must exist on disk (content-addressed blobs
// are their own durability; an ID whose blob is gone is dropped).  Restoring
// an ID that is already present is a no-op, so replaying the same journal
// twice — or a snapshot overlapping the log tail — cannot inflate refcounts.
func (fs *FileStore) restoreFile(id, digest string, size int64, owner string) error {
	if _, err := os.Stat(fs.blobPath(digest)); err != nil {
		return fmt.Errorf("container: file store: restore %s: blob sha256-%s missing", id, digest)
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, exists := fs.digests[id]; exists {
		return nil
	}
	if fs.refs[digest] == 0 {
		fs.physicalBytes += size
	}
	fs.refs[digest]++
	fs.digests[id] = digest
	fs.sizes[id] = size
	fs.logicalBytes += size
	if owner != "" {
		fs.owners[id] = owner
	}
	return nil
}

// IngestRemote stores the content of r under an EXISTING federation file
// ID fetched from a peer replica, verifying it against the digest the
// peer advertised.  The bytes are hashed while they stream to a
// temporary file and the blob is committed only when the computed digest
// matches: a corrupted or truncated transfer is discarded without
// touching the content-addressed store, so a retry can succeed and no
// local ID ever points at wrong bytes.  Ingesting an ID that is already
// present is a no-op, making concurrent pulls and replays idempotent.
func (fs *FileStore) IngestRemote(id, digest string, r io.Reader) error {
	if !fileIDPattern.MatchString(id) {
		return fmt.Errorf("container: file store: ingest remote: malformed id %q", id)
	}
	if digest == "" {
		return fmt.Errorf("container: file store: ingest remote %s: peer sent no digest", id)
	}
	fs.mu.Lock()
	_, exists := fs.digests[id]
	fs.mu.Unlock()
	if exists {
		return nil
	}
	tmp, err := os.CreateTemp(fs.dir, "tmp-")
	if err != nil {
		return fmt.Errorf("container: file store: ingest remote %s: %w", id, err)
	}
	tmpPath := tmp.Name()
	h := sha256.New()
	n, err := rest.Copy(io.MultiWriter(tmp, h), r)
	if closeErr := tmp.Close(); err == nil {
		err = closeErr
	}
	if err != nil {
		_ = os.Remove(tmpPath)
		return fmt.Errorf("container: file store: ingest remote %s: %w", id, err)
	}
	if got := hex.EncodeToString(h.Sum(nil)); got != digest {
		_ = os.Remove(tmpPath)
		return fmt.Errorf("container: file store: ingest remote %s: digest mismatch: got sha256-%s, peer advertised sha256-%s", id, got, digest)
	}
	fs.mu.Lock()
	if _, exists := fs.digests[id]; exists {
		fs.mu.Unlock()
		_ = os.Remove(tmpPath)
		return nil
	}
	if fs.refs[digest] == 0 {
		if err := os.Rename(tmpPath, fs.blobPath(digest)); err != nil {
			fs.mu.Unlock()
			_ = os.Remove(tmpPath)
			return fmt.Errorf("container: file store: ingest remote %s: %w", id, err)
		}
		fs.physicalBytes += n
	} else {
		// The content already lives here under another ID (dedup hit).
		_ = os.Remove(tmpPath)
		metDedupFiles.Inc()
		metDedupBytes.Add(float64(n))
	}
	fs.refs[digest]++
	fs.digests[id] = digest
	fs.sizes[id] = n
	fs.logicalBytes += n
	// No owner: the replica of record owns the file's lifecycle; the local
	// copy is a cache entry released by its own refcounted Delete.
	fs.mu.Unlock()
	fs.logPut(id, digest, n, "")
	return nil
}

// ownedBy returns the file IDs owned by the given job or sweep.  Recovery
// uses it to rebuild a live sweep's staged-file list so the files are still
// released when the sweep finalizes.
func (fs *FileStore) ownedBy(owner string) []string {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	var ids []string
	for id, o := range fs.owners {
		if o == owner {
			ids = append(ids, id)
		}
	}
	return ids
}

// forEachFile visits every live file ID.  Used by the snapshotter; the
// callback must not call back into the store.
func (fs *FileStore) forEachFile(fn func(id, digest string, size int64, owner string)) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	for id, digest := range fs.digests {
		fn(id, digest, fs.sizes[id], fs.owners[id])
	}
}

// gcOrphans removes blobs no live ID references and stale temp files, and
// returns how many files it unlinked.  Run once after recovery: a crash
// between blob rename and journal append leaves an unreferenced blob, and a
// crash mid-upload leaves a tmp- file.
func (fs *FileStore) gcOrphans() int {
	entries, err := os.ReadDir(fs.dir)
	if err != nil {
		return 0
	}
	fs.mu.Lock()
	live := make(map[string]bool, len(fs.refs))
	for digest := range fs.refs {
		live["sha256-"+digest] = true
	}
	fs.mu.Unlock()
	removed := 0
	for _, e := range entries {
		name := e.Name()
		isOrphanBlob := len(name) > 7 && name[:7] == "sha256-" && !live[name]
		isTmp := len(name) > 4 && name[:4] == "tmp-"
		if !isOrphanBlob && !isTmp {
			continue
		}
		if err := os.Remove(filepath.Join(fs.dir, name)); err == nil {
			removed++
		}
	}
	return removed
}
