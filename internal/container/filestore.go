package container

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sync"

	"mathcloud/internal/core"
	"mathcloud/internal/rest"
)

// FileStore manages the file resources of a container: the parts of client
// requests and job results that are passed as remote files rather than
// inline JSON values.  Content lives in a directory on disk; identifiers
// are opaque hex strings.
type FileStore struct {
	dir string

	mu    sync.Mutex
	sizes map[string]int64
	// owners maps a file ID to the job that produced it, so that
	// deleting a job destroys its subordinate file resources, as the
	// unified API requires.
	owners map[string]string
}

var fileIDPattern = regexp.MustCompile(`^[0-9a-f]{32}$`)

// NewFileStore creates a file store rooted at dir, creating it if needed.
func NewFileStore(dir string) (*FileStore, error) {
	if err := os.MkdirAll(dir, 0o700); err != nil {
		return nil, fmt.Errorf("container: file store: %w", err)
	}
	return &FileStore{
		dir:    dir,
		sizes:  make(map[string]int64),
		owners: make(map[string]string),
	}, nil
}

// Put stores the content of r as a new file resource owned by the given
// job ("" for client uploads) and returns its identifier.
func (fs *FileStore) Put(r io.Reader, jobID string) (string, error) {
	id := core.NewID()
	path := fs.path(id)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o600)
	if err != nil {
		return "", fmt.Errorf("container: file store: create: %w", err)
	}
	n, err := io.Copy(f, r)
	if closeErr := f.Close(); err == nil {
		err = closeErr
	}
	if err != nil {
		_ = os.Remove(path)
		return "", fmt.Errorf("container: file store: write: %w", err)
	}
	fs.mu.Lock()
	fs.sizes[id] = n
	if jobID != "" {
		fs.owners[id] = jobID
	}
	fs.mu.Unlock()
	return id, nil
}

// PutBytes stores a byte slice as a new file resource.
func (fs *FileStore) PutBytes(data []byte, jobID string) (string, error) {
	id := core.NewID()
	if err := os.WriteFile(fs.path(id), data, 0o600); err != nil {
		return "", fmt.Errorf("container: file store: write: %w", err)
	}
	fs.mu.Lock()
	fs.sizes[id] = int64(len(data))
	if jobID != "" {
		fs.owners[id] = jobID
	}
	fs.mu.Unlock()
	return id, nil
}

// Open returns a reader over the file content.  The caller must close it.
func (fs *FileStore) Open(id string) (io.ReadSeekCloser, int64, error) {
	if !fileIDPattern.MatchString(id) {
		return nil, 0, core.ErrNotFound("file", id)
	}
	fs.mu.Lock()
	size, ok := fs.sizes[id]
	fs.mu.Unlock()
	if !ok {
		return nil, 0, core.ErrNotFound("file", id)
	}
	f, err := os.Open(fs.path(id))
	if err != nil {
		return nil, 0, core.ErrNotFound("file", id)
	}
	return f, size, nil
}

// ReadAll returns the whole file content.  It is retained for small
// payloads and tests; hot paths stage files with StageTo instead, which
// never materialises the content on the heap.
func (fs *FileStore) ReadAll(id string) ([]byte, error) {
	f, _, err := fs.Open(id)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return io.ReadAll(f)
}

// StageTo materialises the file content at dst without reading it onto the
// heap: it hardlinks the stored file when the filesystem allows, and falls
// back to a pooled-buffer streaming copy otherwise.  This is the local
// short-cut of the file staging plane.
func (fs *FileStore) StageTo(id, dst string) error {
	if !fileIDPattern.MatchString(id) {
		return core.ErrNotFound("file", id)
	}
	fs.mu.Lock()
	_, ok := fs.sizes[id]
	fs.mu.Unlock()
	if !ok {
		return core.ErrNotFound("file", id)
	}
	src := fs.path(id)
	if err := os.Link(src, dst); err == nil {
		return nil
	}
	in, err := os.Open(src)
	if err != nil {
		return core.ErrNotFound("file", id)
	}
	defer in.Close()
	out, err := os.OpenFile(dst, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o600)
	if err != nil {
		return fmt.Errorf("container: file store: stage: %w", err)
	}
	_, err = rest.Copy(out, in)
	if closeErr := out.Close(); err == nil {
		err = closeErr
	}
	if err != nil {
		_ = os.Remove(dst)
		return fmt.Errorf("container: file store: stage: %w", err)
	}
	return nil
}

// PutFile ingests an existing file (typically an adapter output in a job
// work directory) as a new file resource.  Like StageTo it avoids the heap:
// hardlink first, pooled-buffer copy as the fallback.
func (fs *FileStore) PutFile(path, jobID string) (string, error) {
	id := core.NewID()
	dst := fs.path(id)
	if err := os.Link(path, dst); err != nil {
		in, err := os.Open(path)
		if err != nil {
			return "", fmt.Errorf("container: file store: ingest: %w", err)
		}
		f, err := os.OpenFile(dst, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o600)
		if err != nil {
			_ = in.Close()
			return "", fmt.Errorf("container: file store: create: %w", err)
		}
		_, err = rest.Copy(f, in)
		_ = in.Close()
		if closeErr := f.Close(); err == nil {
			err = closeErr
		}
		if err != nil {
			_ = os.Remove(dst)
			return "", fmt.Errorf("container: file store: ingest: %w", err)
		}
	}
	info, err := os.Stat(dst)
	if err != nil {
		_ = os.Remove(dst)
		return "", fmt.Errorf("container: file store: ingest: %w", err)
	}
	fs.mu.Lock()
	fs.sizes[id] = info.Size()
	if jobID != "" {
		fs.owners[id] = jobID
	}
	fs.mu.Unlock()
	return id, nil
}

// Size returns the stored size of the file.
func (fs *FileStore) Size(id string) (int64, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	size, ok := fs.sizes[id]
	if !ok {
		return 0, core.ErrNotFound("file", id)
	}
	return size, nil
}

// Delete removes a file resource.
func (fs *FileStore) Delete(id string) error {
	fs.mu.Lock()
	_, ok := fs.sizes[id]
	delete(fs.sizes, id)
	delete(fs.owners, id)
	fs.mu.Unlock()
	if !ok {
		return core.ErrNotFound("file", id)
	}
	if err := os.Remove(fs.path(id)); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("container: file store: delete: %w", err)
	}
	return nil
}

// DeleteOwnedBy removes every file resource owned by the given job and
// returns how many were deleted.
func (fs *FileStore) DeleteOwnedBy(jobID string) int {
	fs.mu.Lock()
	var ids []string
	for id, owner := range fs.owners {
		if owner == jobID {
			ids = append(ids, id)
		}
	}
	fs.mu.Unlock()
	for _, id := range ids {
		_ = fs.Delete(id)
	}
	return len(ids)
}

// Count returns the number of stored files.
func (fs *FileStore) Count() int {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return len(fs.sizes)
}

func (fs *FileStore) path(id string) string {
	return filepath.Join(fs.dir, filepath.Base(id))
}
