package container_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"mathcloud/internal/adapter"
	"mathcloud/internal/container"
	"mathcloud/internal/core"
	"mathcloud/internal/events"
	"mathcloud/internal/rest"
)

var eventsSvcSeq atomic.Int64

// startEventsContainer brings up a container with one gated service whose
// jobs block until the returned release function is called — the SSE tests
// need jobs that are reliably still RUNNING when a stream attaches.
func startEventsContainer(t *testing.T, opts container.Options) (*httptest.Server, string, func()) {
	t.Helper()
	fn := fmt.Sprintf("events.gated.%d", eventsSvcSeq.Add(1))
	gate := make(chan struct{})
	var once atomic.Bool
	release := func() {
		if once.CompareAndSwap(false, true) {
			close(gate)
		}
	}
	t.Cleanup(release)
	adapter.RegisterFunc(fn, func(ctx context.Context, in core.Values) (core.Values, error) {
		select {
		case <-gate:
			return core.Values{"ok": true}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	})
	opts.Logger = quietLogger()
	if opts.Workers == 0 {
		opts.Workers = 2
	}
	c, err := container.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	if err := c.Deploy(container.ServiceConfig{
		Description: core.ServiceDescription{
			Name: "gated", Version: "1",
			Inputs:  []core.Param{{Name: "x", Optional: true}},
			Outputs: []core.Param{{Name: "ok", Optional: true}},
		},
		Adapter: container.AdapterSpec{Kind: "native",
			Config: mustJSON(t, adapter.NativeConfig{Function: fn})},
	}); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(c.Handler())
	t.Cleanup(srv.Close)
	c.SetBaseURL(srv.URL)
	return srv, srv.URL + "/services/gated", release
}

// submitGated posts one job to the gated service and returns it.
func submitGated(t *testing.T, svcURL string) core.Job {
	t.Helper()
	resp, err := http.Post(svcURL, "application/json", strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit = %d", resp.StatusCode)
	}
	var job core.Job
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	return job
}

// openStream GETs an SSE endpoint and returns the response (caller closes).
func openStream(t *testing.T, url string) *http.Response {
	t.Helper()
	req, _ := http.NewRequest(http.MethodGet, url, nil)
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("GET %s = %d: %s", url, resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/event-stream") {
		t.Fatalf("Content-Type = %q", ct)
	}
	return resp
}

// TestJobEventsStream follows one job over SSE: opening snapshot, then the
// terminal transition exactly once, then a clean end of stream.
func TestJobEventsStream(t *testing.T) {
	_, svcURL, release := startEventsContainer(t, container.Options{})
	job := submitGated(t, svcURL)

	resp := openStream(t, svcURL+"/jobs/"+job.ID+"/events")
	defer resp.Body.Close()
	sc := events.NewScanner(resp.Body)

	// Opening frame: the job's current (non-terminal) snapshot.
	first, err := sc.Next()
	if err != nil {
		t.Fatalf("opening frame: %v", err)
	}
	if first.Type != "job" {
		t.Fatalf("opening frame type = %q", first.Type)
	}
	var snap core.Job
	if err := json.Unmarshal(first.Data, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.ID != job.ID || snap.State.Terminal() {
		t.Fatalf("opening snapshot = %s %s", snap.ID, snap.State)
	}

	release()

	// The terminal transition arrives pushed, exactly once, then EOF.
	terminals := 0
	for {
		ev, err := sc.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("stream: %v", err)
		}
		if ev.Type != "job" {
			continue
		}
		var j core.Job
		if err := json.Unmarshal(ev.Data, &j); err != nil {
			t.Fatal(err)
		}
		if j.State.Terminal() {
			terminals++
			if j.State != core.StateDone {
				t.Fatalf("terminal state = %s, want DONE", j.State)
			}
		}
	}
	if terminals != 1 {
		t.Fatalf("saw %d terminal events, want exactly 1", terminals)
	}
}

// TestJobEventsTerminalSnapshot: a stream opened on an already-finished job
// delivers the terminal snapshot and ends immediately.
func TestJobEventsTerminalSnapshot(t *testing.T) {
	_, svcURL, release := startEventsContainer(t, container.Options{})
	release()
	resp, err := http.Post(svcURL+"?wait=10s", "application/json", strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	var job core.Job
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if job.State != core.StateDone {
		t.Fatalf("job not done: %s", job.State)
	}

	stream := openStream(t, svcURL+"/jobs/"+job.ID+"/events")
	defer stream.Body.Close()
	sc := events.NewScanner(stream.Body)
	ev, err := sc.Next()
	if err != nil {
		t.Fatal(err)
	}
	var j core.Job
	if err := json.Unmarshal(ev.Data, &j); err != nil {
		t.Fatal(err)
	}
	if !j.State.Terminal() {
		t.Fatalf("snapshot state = %s, want terminal", j.State)
	}
	if _, err := sc.Next(); err != io.EOF {
		t.Fatalf("stream after terminal snapshot = %v, want io.EOF", err)
	}
}

// TestJobEventsResume reconnects with Last-Event-ID and receives only what
// was missed (here: the pushed terminal event), not a duplicate snapshot.
func TestJobEventsResume(t *testing.T) {
	_, svcURL, release := startEventsContainer(t, container.Options{})
	job := submitGated(t, svcURL)

	// First connection pins the topic and reads the opening snapshot.
	resp := openStream(t, svcURL+"/jobs/"+job.ID+"/events")
	sc := events.NewScanner(resp.Body)
	first, err := sc.Next()
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close() // client drops mid-watch

	release()
	// Give the terminal transition time to land in the topic ring.
	deadline := time.Now().Add(5 * time.Second)
	for {
		var j core.Job
		mustGetJSON(t, svcURL+"/jobs/"+job.ID, &j)
		if j.State.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never finished")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Resume via the query-parameter form of Last-Event-ID.
	resp2 := openStream(t, fmt.Sprintf("%s/jobs/%s/events?lastEventId=%d", svcURL, job.ID, first.ID))
	defer resp2.Body.Close()
	sc2 := events.NewScanner(resp2.Body)
	ev, err := sc2.Next()
	if err != nil {
		t.Fatalf("resume frame: %v", err)
	}
	if ev.ID <= first.ID {
		t.Fatalf("resumed event ID %d not after %d", ev.ID, first.ID)
	}
	var j core.Job
	if err := json.Unmarshal(ev.Data, &j); err != nil {
		t.Fatal(err)
	}
	if !j.State.Terminal() {
		t.Fatalf("resumed event state = %s, want terminal", j.State)
	}
}

// TestServiceEventsFeed: the per-service feed opens with a hello frame and
// carries job transitions and undeploy notices.
func TestServiceEventsFeed(t *testing.T) {
	srv, svcURL, release := startEventsContainer(t, container.Options{})

	resp := openStream(t, svcURL+"/events")
	defer resp.Body.Close()
	sc := events.NewScanner(resp.Body)
	hello, err := sc.Next()
	if err != nil {
		t.Fatal(err)
	}
	if hello.Type != "service" || !bytes.Contains(hello.Data, []byte(`"watch"`)) {
		t.Fatalf("hello frame = %q %s", hello.Type, hello.Data)
	}

	job := submitGated(t, svcURL)
	release()

	sawTerminal := false
	for !sawTerminal {
		ev, err := sc.Next()
		if err != nil {
			t.Fatalf("feed: %v", err)
		}
		if ev.Type != "job" {
			continue
		}
		var j core.Job
		if err := json.Unmarshal(ev.Data, &j); err != nil {
			t.Fatal(err)
		}
		if j.ID == job.ID && j.State.Terminal() {
			sawTerminal = true
		}
	}

	// The feed endpoint 404s for unknown services.
	if code := getStatus(t, srv.URL+"/services/nosuch/events"); code != http.StatusNotFound {
		t.Fatalf("events on unknown service = %d, want 404", code)
	}
}

// TestSweepEventsStream follows a sweep's aggregate progress to DONE.
func TestSweepEventsStream(t *testing.T) {
	_, svcURL, release := startEventsContainer(t, container.Options{Workers: 2})
	resp, err := http.Post(svcURL+"/sweeps", "application/json",
		strings.NewReader(`{"axes":{"x":[1,2,3]}}`))
	if err != nil {
		t.Fatal(err)
	}
	var sweep core.Sweep
	if err := json.NewDecoder(resp.Body).Decode(&sweep); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated || sweep.ID == "" {
		t.Fatalf("sweep submit = %d %+v", resp.StatusCode, sweep)
	}

	stream := openStream(t, svcURL+"/sweeps/"+sweep.ID+"/events")
	defer stream.Body.Close()
	sc := events.NewScanner(stream.Body)
	release()
	for {
		ev, err := sc.Next()
		if err != nil {
			t.Fatalf("sweep stream: %v", err)
		}
		if ev.Type != "sweep" {
			continue
		}
		var s core.Sweep
		if err := json.Unmarshal(ev.Data, &s); err != nil {
			t.Fatal(err)
		}
		if s.State.Terminal() {
			if s.State != core.StateDone || s.Counts.Done != 3 {
				t.Fatalf("terminal sweep = %s %+v", s.State, s.Counts)
			}
			break
		}
	}
	if _, err := sc.Next(); err != io.EOF {
		t.Fatalf("stream after terminal sweep = %v, want io.EOF", err)
	}
}

// TestMalformedWaitRejected: every handler with a ?wait= knob answers 400
// to garbage instead of silently ignoring it — and the bad submit forms
// must not create the resource as a side effect.
func TestMalformedWaitRejected(t *testing.T) {
	_, srv := startContainer(t)

	post := func(url string) int {
		t.Helper()
		resp, err := http.Post(url, "application/json", strings.NewReader(`{"a":1,"b":2}`))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		return resp.StatusCode
	}
	for _, wait := range []string{"bogus", "-5s", "0", "2"} {
		if code := post(srv.URL + "/services/add?wait=" + wait); code != http.StatusBadRequest {
			t.Fatalf("POST job wait=%q = %d, want 400", wait, code)
		}
	}
	if code := post(srv.URL + "/services/add/sweeps?wait=nope"); code != http.StatusBadRequest {
		t.Fatalf("POST sweep wait=nope = %d, want 400", code)
	}

	// No job was submitted by the rejected POSTs.
	var page struct {
		Total int `json:"total"`
	}
	mustGetJSON(t, srv.URL+"/services/add/jobs", &page)
	if page.Total != 0 {
		t.Fatalf("rejected submits created %d jobs", page.Total)
	}

	// Status polls with bad waits are rejected too.
	job := core.Job{}
	resp, err := http.Post(srv.URL+"/services/add?wait=5s", "application/json",
		strings.NewReader(`{"a":1,"b":2}`))
	if err != nil {
		t.Fatal(err)
	}
	json.NewDecoder(resp.Body).Decode(&job)
	resp.Body.Close()
	if code := getStatus(t, srv.URL+"/services/add/jobs/"+job.ID+"?wait=banana"); code != http.StatusBadRequest {
		t.Fatalf("GET job wait=banana = %d, want 400", code)
	}

	sresp, err := http.Post(srv.URL+"/services/add/sweeps?wait=5s", "application/json",
		strings.NewReader(`{"axes":{"a":[1],"b":[2]}}`))
	if err != nil {
		t.Fatal(err)
	}
	var sweep core.Sweep
	json.NewDecoder(sresp.Body).Decode(&sweep)
	sresp.Body.Close()
	if code := getStatus(t, srv.URL+"/services/add/sweeps/"+sweep.ID+"?wait=-1s"); code != http.StatusBadRequest {
		t.Fatalf("GET sweep wait=-1s = %d, want 400", code)
	}
}

// TestWaitClampedToMaxWindow: a request asking for a longer poll than the
// configured ceiling returns when the ceiling expires, and the ceiling is
// advertised via the Wait-Max header.
func TestWaitClampedToMaxWindow(t *testing.T) {
	_, svcURL, _ := startEventsContainer(t, container.Options{
		MaxWaitWindow: 80 * time.Millisecond,
	})

	start := time.Now()
	resp, err := http.Post(svcURL+"?wait=30s", "application/json", strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	elapsed := time.Since(start)
	if elapsed > 5*time.Second {
		t.Fatalf("clamped wait took %v; the 30s request was not capped", elapsed)
	}
	if got := resp.Header.Get(rest.WaitMaxHeader); got != "80ms" {
		t.Fatalf("Wait-Max = %q, want 80ms", got)
	}
	var job core.Job
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	// The gate never opened, so the window must have expired with the job
	// still non-terminal.
	if job.State.Terminal() {
		t.Fatalf("job state = %s, want non-terminal after clamp", job.State)
	}
}
