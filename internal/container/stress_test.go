package container_test

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"

	"mathcloud/internal/adapter"
	"mathcloud/internal/container"
	"mathcloud/internal/core"
)

// TestJobManagerConcurrentStress hammers one container with concurrent
// Submit/Wait/Delete/List/Get from many goroutines.  The assertions are
// loose on purpose: the test exists to let the race detector walk the job
// manager's locking under real contention (run with -race).
func TestJobManagerConcurrentStress(t *testing.T) {
	adapter.RegisterFunc("stress.echo", func(_ context.Context, in core.Values) (core.Values, error) {
		return core.Values{"x": in["x"]}, nil
	})
	c, err := container.New(container.Options{Workers: 8, Logger: quietLogger()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	if err := c.Deploy(container.ServiceConfig{
		Description: core.ServiceDescription{Name: "echo",
			Inputs:  []core.Param{{Name: "x", Optional: true}},
			Outputs: []core.Param{{Name: "x", Optional: true}}},
		Adapter: container.AdapterSpec{Kind: "native",
			Config: json.RawMessage(`{"function":"stress.echo"}`)},
	}); err != nil {
		t.Fatal(err)
	}

	const goroutines = 16
	const iters = 25
	jobs := c.Jobs()
	ctx := context.Background()
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				job, err := jobs.Submit("echo", core.Values{"x": float64(g*iters + i)}, "")
				if err != nil {
					errs <- fmt.Errorf("submit: %w", err)
					return
				}
				switch i % 4 {
				case 0, 1:
					done, err := jobs.Wait(ctx, job.ID, 10*time.Second)
					if err != nil {
						errs <- fmt.Errorf("wait: %w", err)
						return
					}
					if done.State != core.StateDone {
						errs <- fmt.Errorf("job state = %s (%s)", done.State, done.Error)
						return
					}
				case 2:
					// Delete races the worker: cancel-while-queued,
					// cancel-while-running and purge-after-done are all
					// legal outcomes.
					if _, err := jobs.Delete(job.ID); err != nil {
						errs <- fmt.Errorf("delete: %w", err)
						return
					}
				case 3:
					jobs.List("echo")
					if _, err := jobs.Get(job.ID); err != nil {
						errs <- fmt.Errorf("get: %w", err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	// Drain: every surviving job must reach a terminal state.
	for _, j := range jobs.List("") {
		done, err := jobs.Wait(ctx, j.ID, 10*time.Second)
		if err != nil {
			continue // deleted concurrently
		}
		if !done.State.Terminal() {
			t.Errorf("job %s stuck in state %s", done.ID, done.State)
		}
	}
}

// TestQueuedJobCancelledNeverRuns pins the cancel-while-queued contract: a
// job deleted while still WAITING transitions to CANCELLED and is never
// started by a worker.
func TestQueuedJobCancelledNeverRuns(t *testing.T) {
	release := make(chan struct{})
	var ran sync.Map
	adapter.RegisterFunc("stress.gate", func(ctx context.Context, in core.Values) (core.Values, error) {
		if id, ok := in["id"].(string); ok {
			ran.Store(id, true)
		}
		select {
		case <-release:
		case <-ctx.Done():
		}
		return core.Values{}, nil
	})
	c, err := container.New(container.Options{Workers: 1, Logger: quietLogger()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	if err := c.Deploy(container.ServiceConfig{
		Description: core.ServiceDescription{Name: "gate",
			Inputs: []core.Param{{Name: "id", Optional: true}}},
		Adapter: container.AdapterSpec{Kind: "native",
			Config: json.RawMessage(`{"function":"stress.gate"}`)},
	}); err != nil {
		t.Fatal(err)
	}
	jobs := c.Jobs()

	// Occupy the single worker, then queue a second job behind it.
	blocker, err := jobs.Submit("gate", core.Values{"id": "blocker"}, "")
	if err != nil {
		t.Fatal(err)
	}
	waitForRun := time.After(5 * time.Second)
	for {
		if _, ok := ran.Load("blocker"); ok {
			break
		}
		select {
		case <-waitForRun:
			t.Fatal("blocker never started")
		case <-time.After(time.Millisecond):
		}
	}
	queued, err := jobs.Submit("gate", core.Values{"id": "queued"}, "")
	if err != nil {
		t.Fatal(err)
	}

	// Cancel the queued job before the worker can reach it.
	cancelled, err := jobs.Delete(queued.ID)
	if err != nil {
		t.Fatal(err)
	}
	if cancelled.State != core.StateCancelled {
		t.Fatalf("state after delete-while-queued = %s, want %s", cancelled.State, core.StateCancelled)
	}

	// Release the worker and let it drain the queue; the cancelled job
	// must be skipped, not executed.
	close(release)
	ctx := context.Background()
	if _, err := jobs.Wait(ctx, blocker.ID, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	final, err := jobs.Get(queued.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != core.StateCancelled {
		t.Errorf("final state = %s, want %s", final.State, core.StateCancelled)
	}
	if !final.Started.IsZero() {
		t.Error("cancelled queued job has a start timestamp; it must never transition to RUNNING")
	}
	if _, ok := ran.Load("queued"); ok {
		t.Error("cancelled queued job was executed by a worker")
	}
}
