package container_test

// Fault-injection tests: the acceptance contract of the fault-tolerance
// layer.  An adapter panic lands the job in ERROR (with the stack, and the
// worker pool intact), a deadline overrun lands it in ERROR with a timeout
// message, a flaky transport is absorbed by the client retry policy, and
// Close during load leaves zero non-terminal jobs and no hung waiter.

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"mathcloud/internal/client"
	"mathcloud/internal/container"
	"mathcloud/internal/core"
	"mathcloud/internal/rest"
	"mathcloud/internal/rest/resttest"
)

// chaosContainer starts a container with one "chaos" service whose failure
// mode is chosen per request through the "mode" input.
func chaosContainer(t *testing.T, opts container.Options) *container.Container {
	t.Helper()
	opts.Logger = quietLogger()
	c, err := container.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	if err := c.Deploy(chaosService("chaos", 0)); err != nil {
		t.Fatal(err)
	}
	return c
}

func chaosService(name string, deadline time.Duration) container.ServiceConfig {
	return container.ServiceConfig{
		Description: core.ServiceDescription{
			Name:     name,
			Deadline: core.Duration(deadline),
			Inputs:   []core.Param{{Name: "mode", Optional: true}},
			Outputs:  []core.Param{{Name: "ok", Optional: true}},
		},
		Adapter: container.AdapterSpec{Kind: "chaos", Config: json.RawMessage(`{}`)},
	}
}

func waitTerminal(t *testing.T, c *container.Container, jobID string) *core.Job {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	job, err := c.Jobs().Wait(ctx, jobID, 10*time.Second)
	if err != nil {
		t.Fatalf("Wait(%s): %v", jobID, err)
	}
	if !job.State.Terminal() {
		t.Fatalf("job %s still %s after wait", jobID, job.State)
	}
	return job
}

func TestAdapterPanicMarksJobErrorAndWorkerSurvives(t *testing.T) {
	c := chaosContainer(t, container.Options{Workers: 1})

	job, err := c.Jobs().Submit("chaos", core.Values{"mode": "panic"}, "")
	if err != nil {
		t.Fatal(err)
	}
	done := waitTerminal(t, c, job.ID)
	if done.State != core.StateError {
		t.Fatalf("panicked job state = %s, want ERROR", done.State)
	}
	if !strings.Contains(done.Error, "panic") || !strings.Contains(done.Error, "goroutine") {
		t.Errorf("job error lacks panic message or captured stack: %.200s", done.Error)
	}

	// The single worker survived the panic: a follow-up job completes.
	job2, err := c.Jobs().Submit("chaos", core.Values{}, "")
	if err != nil {
		t.Fatal(err)
	}
	if done2 := waitTerminal(t, c, job2.ID); done2.State != core.StateDone {
		t.Errorf("job after panic = %s (%s), want DONE", done2.State, done2.Error)
	}
}

func TestServiceDeadlineOverrunMarksJobError(t *testing.T) {
	c, err := container.New(container.Options{Workers: 1, Logger: quietLogger()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	if err := c.Deploy(chaosService("bounded", 50*time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	job, err := c.Jobs().Submit("bounded", core.Values{"mode": "hang"}, "")
	if err != nil {
		t.Fatal(err)
	}
	done := waitTerminal(t, c, job.ID)
	if done.State != core.StateError {
		t.Fatalf("overrunning job state = %s, want ERROR", done.State)
	}
	if !strings.Contains(done.Error, "deadline") {
		t.Errorf("job error = %q, want a deadline/timeout message", done.Error)
	}
}

func TestContainerDefaultDeadlineApplies(t *testing.T) {
	c := chaosContainer(t, container.Options{Workers: 1, DefaultJobDeadline: 50 * time.Millisecond})
	job, err := c.Jobs().Submit("chaos", core.Values{"mode": "hang"}, "")
	if err != nil {
		t.Fatal(err)
	}
	done := waitTerminal(t, c, job.ID)
	if done.State != core.StateError || !strings.Contains(done.Error, "deadline") {
		t.Errorf("job = %s (%q), want ERROR with deadline message", done.State, done.Error)
	}
}

// Cancellation via DELETE must still map to CANCELLED, not to a deadline
// ERROR, when a deadline is also configured.
func TestCancelUnderDeadlineStaysCancelled(t *testing.T) {
	c := chaosContainer(t, container.Options{Workers: 1, DefaultJobDeadline: 10 * time.Second})
	job, err := c.Jobs().Submit("chaos", core.Values{"mode": "hang"}, "")
	if err != nil {
		t.Fatal(err)
	}
	// Let the worker pick it up, then cancel.
	deadline := time.Now().Add(5 * time.Second)
	for {
		j, err := c.Jobs().Get(job.ID)
		if err != nil {
			t.Fatal(err)
		}
		if j.State == core.StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never started (state %s)", j.State)
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := c.Jobs().Delete(job.ID); err != nil {
		t.Fatal(err)
	}
	if done := waitTerminal(t, c, job.ID); done.State != core.StateCancelled {
		t.Errorf("cancelled job state = %s, want CANCELLED", done.State)
	}
}

func TestQueueFullReturns503WithRetryAfter(t *testing.T) {
	c := chaosContainer(t, container.Options{Workers: 1, QueueSize: 1})
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	// Saturate the single worker and the single queue slot with hanging
	// jobs, then overflow over HTTP.  A submit can transiently fail while
	// the worker is still dequeuing the first job, so retry until both
	// slots hold a hanging job: one running forever, one queued forever.
	var accepted []string
	deadline := time.Now().Add(5 * time.Second)
	for len(accepted) < 2 {
		job, err := c.Jobs().Submit("chaos", core.Values{"mode": "hang"}, "")
		if err != nil {
			if time.Now().After(deadline) {
				t.Fatalf("could not saturate the container: %v", err)
			}
			time.Sleep(time.Millisecond)
			continue
		}
		accepted = append(accepted, job.ID)
	}
	resp, err := http.Post(srv.URL+"/services/chaos", "application/json",
		strings.NewReader(`{"mode":"hang"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer rest.Drain(resp.Body)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("overflow submit status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 response carries no Retry-After header")
	}
	// Unblock the hanging jobs so Close does not wait on them.
	for _, id := range accepted {
		_, _ = c.Jobs().Delete(id)
	}
}

// An end-to-end run through a flaky transport: the client's retry policy
// absorbs a dropped connection and a 503 before the call succeeds.
func TestClientCallSurvivesFlakyTransport(t *testing.T) {
	c := chaosContainer(t, container.Options{Workers: 2})
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	flaky := resttest.Script(srv.Client().Transport, resttest.Drop, resttest.Unavailable)
	cl := client.New()
	cl.HTTP = &http.Client{Transport: flaky}
	cl.Retry = &rest.RetryPolicy{MaxAttempts: 5, BaseDelay: time.Millisecond, MaxDelay: 20 * time.Millisecond}

	out, err := cl.Service(srv.URL+"/services/chaos").Call(context.Background(), core.Values{})
	if err != nil {
		t.Fatalf("call through flaky transport failed: %v", err)
	}
	if out["ok"] != true {
		t.Errorf("outputs = %v", out)
	}
	if flaky.Attempts() < 3 {
		t.Errorf("attempts = %d, want >= 3 (drop + 503 + success)", flaky.Attempts())
	}
}

// Close during load: every accepted job reaches a terminal state and every
// concurrent waiter unblocks.
func TestCloseDuringLoadLeavesZeroNonTerminalJobs(t *testing.T) {
	opts := container.Options{Workers: 4, QueueSize: 256, Logger: quietLogger()}
	c, err := container.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Deploy(chaosService("chaos", 0)); err != nil {
		t.Fatal(err)
	}

	const jobs = 64
	ids := make([]string, 0, jobs)
	for i := 0; i < jobs; i++ {
		mode := "sleep"
		if i%4 == 0 {
			mode = "hang" // only shutdown can terminate these
		}
		job, err := c.Jobs().Submit("chaos", core.Values{"mode": mode}, "")
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, job.ID)
	}

	// One waiter per job, all blocked before Close.
	var wg sync.WaitGroup
	states := make([]core.JobState, len(ids))
	for i, id := range ids {
		wg.Add(1)
		go func(i int, id string) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
			defer cancel()
			job, err := c.Jobs().Wait(ctx, id, 15*time.Second)
			if err == nil {
				states[i] = job.State
			}
		}(i, id)
	}

	time.Sleep(10 * time.Millisecond) // let some jobs start running
	c.Close()

	waited := make(chan struct{})
	go func() { wg.Wait(); close(waited) }()
	select {
	case <-waited:
	case <-time.After(20 * time.Second):
		t.Fatal("waiters still blocked after Close")
	}

	for i, s := range states {
		if !s.Terminal() {
			t.Fatalf("job %d (%s) ended non-terminal: %q", i, ids[i], s)
		}
	}
	for _, j := range c.Jobs().List("") {
		if !j.State.Terminal() {
			t.Errorf("job %s left in state %s after Close", j.ID, j.State)
		}
	}
}

// Submissions racing shutdown either get a terminal job or a transient
// unavailable error — never a stuck WAITING job.
func TestSubmitRacingCloseNeverStrandsJobs(t *testing.T) {
	c, err := container.New(container.Options{Workers: 2, QueueSize: 8, Logger: quietLogger()})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Deploy(chaosService("chaos", 0)); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	var mu sync.Mutex
	var ids []string
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				job, err := c.Jobs().Submit("chaos", core.Values{"mode": "sleep"}, "")
				if err != nil {
					var unavail *core.UnavailableError
					if !asUnavailable(err, &unavail) {
						t.Errorf("unexpected submit error: %v", err)
					}
					continue
				}
				mu.Lock()
				ids = append(ids, job.ID)
				mu.Unlock()
			}
		}()
	}
	time.Sleep(2 * time.Millisecond)
	c.Close()
	wg.Wait()

	for _, id := range ids {
		job, err := c.Jobs().Get(id)
		if err != nil {
			continue // deleted is fine; stuck is not
		}
		if !job.State.Terminal() {
			t.Errorf("job %s stranded in %s after Close", id, job.State)
		}
	}
}
