package container

import (
	"strings"
	"sync"
)

// localContainers maps externally visible base URLs to containers running in
// this process.  It is the discovery substrate of the in-process invocation
// fast path: when a workflow block (or any other caller holding a service
// URI) targets a container that lives in the same process, the call can be
// dispatched straight into the job manager, skipping HTTP, JSON re-marshal
// and poll windows entirely.
var (
	localMu         sync.RWMutex
	localContainers = make(map[string]*Container)
)

// registerLocal records c as serving base; an empty base is ignored.
func registerLocal(base string, c *Container) {
	if base == "" {
		return
	}
	localMu.Lock()
	localContainers[base] = c
	localMu.Unlock()
}

// unregisterLocal drops the registration, keyed by base, but only if it
// still points at c (a newer container may have taken over the URL).
func unregisterLocal(base string, c *Container) {
	if base == "" {
		return
	}
	localMu.Lock()
	if localContainers[base] == c {
		delete(localContainers, base)
	}
	localMu.Unlock()
}

// LookupLocal resolves a service URI ("<base>/services/<name>") to a
// container running in this process and the local service name.  It returns
// ok=false for URIs served by other processes, malformed URIs, and URIs
// with sub-resources (jobs, files) after the service name.
func LookupLocal(serviceURI string) (*Container, string, bool) {
	uri := strings.TrimRight(serviceURI, "/")
	idx := strings.LastIndex(uri, "/services/")
	if idx < 0 {
		return nil, "", false
	}
	base, name := uri[:idx], uri[idx+len("/services/"):]
	if name == "" || strings.Contains(name, "/") {
		return nil, "", false
	}
	localMu.RLock()
	c := localContainers[base]
	localMu.RUnlock()
	if c == nil {
		return nil, "", false
	}
	return c, name, true
}
