package container_test

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"mathcloud/internal/adapter"
	"mathcloud/internal/container"
	"mathcloud/internal/core"
	"mathcloud/internal/journal"
)

// durableOpts roots a container's file store and write-ahead journal under
// dir, the way `everest -data-dir` does.
func durableOpts(dir string, mode journal.SyncMode) container.Options {
	return container.Options{
		Workers:    4,
		DataDir:    filepath.Join(dir, "files"),
		JournalDir: filepath.Join(dir, "journal"),
		WALSync:    mode,
		Logger:     quietLogger(),
	}
}

// deployNative deploys one native-function service on the container.
func deployNative(t *testing.T, c *container.Container, name, fn string, deterministic bool, inputs, outputs []core.Param) {
	t.Helper()
	if err := c.Deploy(container.ServiceConfig{
		Description: core.ServiceDescription{
			Name:          name,
			Deterministic: deterministic,
			Inputs:        inputs,
			Outputs:       outputs,
		},
		Adapter: container.AdapterSpec{
			Kind:   "native",
			Config: mustJSON(t, adapter.NativeConfig{Function: fn}),
		},
	}); err != nil {
		t.Fatalf("Deploy %s: %v", name, err)
	}
}

var sumParams = struct{ in, out []core.Param }{
	in:  []core.Param{{Name: "a"}, {Name: "b"}},
	out: []core.Param{{Name: "sum"}},
}

func registerSum(name string) {
	adapter.RegisterFunc(name, func(_ context.Context, in core.Values) (core.Values, error) {
		a, _ := in["a"].(float64)
		b, _ := in["b"].(float64)
		return core.Values{"sum": a + b}, nil
	})
}

// TestRecoverTerminalJobAndMemo restarts a journaled container and checks
// that a finished job is restored verbatim and that the memo entry backing
// it still answers repeat submissions without recomputation.
func TestRecoverTerminalJobAndMemo(t *testing.T) {
	registerSum("rectest.sum")
	dir := t.TempDir()
	ctx := context.Background()

	c1, err := container.New(durableOpts(dir, journal.SyncAlways))
	if err != nil {
		t.Fatal(err)
	}
	deployNative(t, c1, "rsum", "rectest.sum", true, sumParams.in, sumParams.out)
	c1.SetBaseURL("http://recovery.test")
	job, err := c1.Jobs().SubmitCtx(ctx, "rsum", core.Values{"a": 2.0, "b": 40.0}, "alice")
	if err != nil {
		t.Fatal(err)
	}
	done, err := c1.Jobs().Wait(ctx, job.ID, 10*time.Second)
	if err != nil || done.State != core.StateDone {
		t.Fatalf("first run: state=%v err=%v", done, err)
	}
	c1.Close()

	c2, err := container.New(durableOpts(dir, journal.SyncAlways))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c2.Close)
	deployNative(t, c2, "rsum", "rectest.sum", true, sumParams.in, sumParams.out)
	if err := c2.Recover(); err != nil {
		t.Fatalf("Recover: %v", err)
	}

	got, err := c2.Jobs().Get(job.ID)
	if err != nil {
		t.Fatalf("job not restored: %v", err)
	}
	if got.State != core.StateDone || got.Outputs["sum"] != 42.0 {
		t.Fatalf("restored job = state %s outputs %v, want DONE sum=42", got.State, got.Outputs)
	}
	if got.Owner != "alice" {
		t.Errorf("restored owner = %q", got.Owner)
	}
	if !got.Finished.Equal(done.Finished) {
		t.Errorf("restored finished %v != %v", got.Finished, done.Finished)
	}

	// The memo index came back with the job: an identical submission is
	// born DONE without touching the adapter queue.
	if entries, _ := c2.Jobs().MemoStats(); entries < 1 {
		t.Fatalf("memo entries after recovery = %d, want >= 1", entries)
	}
	hit, err := c2.Jobs().SubmitCtx(ctx, "rsum", core.Values{"a": 2.0, "b": 40.0}, "bob")
	if err != nil {
		t.Fatal(err)
	}
	if hit.State != core.StateDone || hit.Outputs["sum"] != 42.0 {
		t.Errorf("memo hit after restart = state %s outputs %v, want instant DONE", hit.State, hit.Outputs)
	}
}

// TestRecoverRequeuesAbandonedJob simulates a crash with a job mid-flight:
// the first container is never closed (its adapter hangs), and a second
// container on the same directories must re-queue and re-drive the job to
// completion.
func TestRecoverRequeuesAbandonedJob(t *testing.T) {
	var allow atomic.Bool
	adapter.RegisterFunc("rectest.gated", func(ctx context.Context, _ core.Values) (core.Values, error) {
		if allow.Load() {
			return core.Values{"ok": true}, nil
		}
		<-ctx.Done()
		return nil, ctx.Err()
	})
	dir := t.TempDir()
	ctx := context.Background()

	c1, err := container.New(durableOpts(dir, journal.SyncAlways))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c1.Close) // runs after c2's cleanup; the "crash" is that c1 stays open now
	deployNative(t, c1, "gated", "rectest.gated", false, nil,
		[]core.Param{{Name: "ok", Optional: true}})
	job, err := c1.Jobs().SubmitCtx(ctx, "gated", core.Values{}, "alice")
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		j, err := c1.Jobs().Get(job.ID)
		if err != nil {
			t.Fatal(err)
		}
		if j.State == core.StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never started: %s", j.State)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// "Crash": abandon c1 with the job RUNNING and recover elsewhere.
	allow.Store(true)
	c2, err := container.New(durableOpts(dir, journal.SyncAlways))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c2.Close)
	deployNative(t, c2, "gated", "rectest.gated", false, nil,
		[]core.Param{{Name: "ok", Optional: true}})
	if err := c2.Recover(); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	redone, err := c2.Jobs().Wait(ctx, job.ID, 10*time.Second)
	if err != nil {
		t.Fatalf("re-driven job: %v", err)
	}
	if redone.State != core.StateDone || redone.Outputs["ok"] != true {
		t.Fatalf("re-driven job = state %s outputs %v, want DONE", redone.State, redone.Outputs)
	}
}

// TestRecoverSweep restores a finished parameter sweep: the aggregate record,
// its counts, and every child job with its outputs.
func TestRecoverSweep(t *testing.T) {
	registerSum("rectest.sweepsum")
	dir := t.TempDir()
	ctx := context.Background()

	c1, err := container.New(durableOpts(dir, journal.SyncBatch))
	if err != nil {
		t.Fatal(err)
	}
	deployNative(t, c1, "ssum", "rectest.sweepsum", false, sumParams.in, sumParams.out)
	spec := &core.SweepSpec{
		Template: core.Values{"a": 10.0},
		Axes:     map[string][]any{"b": {1.0, 2.0, 3.0, 4.0, 5.0}},
	}
	sw, err := c1.Jobs().SubmitSweep(ctx, "ssum", spec, "alice")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Jobs().WaitSweep(ctx, sw.ID, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	c1.Close() // Close fsyncs and cleanly ends the journal

	c2, err := container.New(durableOpts(dir, journal.SyncBatch))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c2.Close)
	deployNative(t, c2, "ssum", "rectest.sweepsum", false, sumParams.in, sumParams.out)
	if err := c2.Recover(); err != nil {
		t.Fatalf("Recover: %v", err)
	}

	got, err := c2.Jobs().GetSweep(sw.ID)
	if err != nil {
		t.Fatalf("sweep not restored: %v", err)
	}
	if got.State != core.StateDone || got.Width != 5 || got.Counts.Done != 5 {
		t.Fatalf("restored sweep = state %s width %d counts %+v", got.State, got.Width, got.Counts)
	}
	sums := make(map[float64]bool)
	for _, j := range c2.Jobs().List("ssum") {
		if j.State != core.StateDone {
			t.Errorf("child %s state = %s", j.ID, j.State)
		}
		if s, ok := j.Outputs["sum"].(float64); ok {
			sums[s] = true
		}
	}
	for want := 11.0; want <= 15.0; want++ {
		if !sums[want] {
			t.Errorf("restored children missing sum %v (have %v)", want, sums)
		}
	}
}

// TestReaperPurgesExpired checks the UWS destruction-time plane: terminal
// jobs and sweeps past their TTL are purged together with the file resources
// they own, and nothing is touched before its time.
func TestReaperPurgesExpired(t *testing.T) {
	c, _ := startContainer(t)
	jm := c.Jobs()
	ctx := context.Background()

	job, err := jm.SubmitTTL(ctx, "add", core.Values{"a": 1.0, "b": 2.0}, "alice", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	done, err := jm.Wait(ctx, job.ID, 10*time.Second)
	if err != nil || done.State != core.StateDone {
		t.Fatalf("job: %v err=%v", done, err)
	}
	if done.Destruction.IsZero() || done.Destruction.Before(done.Finished) {
		t.Fatalf("destruction = %v, want finished+1h", done.Destruction)
	}
	fileID, err := c.Files().PutBytes([]byte("artifact"), job.ID)
	if err != nil {
		t.Fatal(err)
	}

	sw, err := jm.SubmitSweep(ctx, "add", &core.SweepSpec{
		Template:    core.Values{"a": 1.0},
		Axes:        map[string][]any{"b": {1.0, 2.0}},
		Destruction: core.Duration(time.Hour),
	}, "alice")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := jm.WaitSweep(ctx, sw.ID, 10*time.Second); err != nil {
		t.Fatal(err)
	}

	if n := jm.Reap(time.Now()); n != 0 {
		t.Fatalf("premature reap destroyed %d jobs", n)
	}
	if n := jm.Reap(time.Now().Add(2 * time.Hour)); n < 3 {
		t.Fatalf("reap destroyed %d jobs, want >= 3 (1 standalone + 2 sweep children)", n)
	}
	if _, err := jm.Get(job.ID); err == nil {
		t.Error("reaped job still resolvable")
	}
	if _, err := jm.GetSweep(sw.ID); err == nil {
		t.Error("reaped sweep still resolvable")
	}
	if _, _, err := c.Files().Open(fileID); err == nil {
		t.Error("file owned by a reaped job still resolvable")
	}
}

// TestDestructionQueryParam is the HTTP surface of the TTL plane: a
// per-request ?destruction= sets the job's destruction time, and malformed
// durations are rejected with 400.
func TestDestructionQueryParam(t *testing.T) {
	_, srv := startContainer(t)

	resp, err := http.Post(srv.URL+"/services/add?wait=10s&destruction=45m",
		"application/json", strings.NewReader(`{"a": 1, "b": 2}`))
	if err != nil {
		t.Fatal(err)
	}
	var job core.Job
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if job.State != core.StateDone {
		t.Fatalf("state = %s", job.State)
	}
	if job.Destruction.IsZero() {
		t.Error("DONE job has no destruction time despite ?destruction=45m")
	} else if d := job.Destruction.Sub(job.Finished); d < 44*time.Minute || d > 46*time.Minute {
		t.Errorf("destruction - finished = %v, want ~45m", d)
	}

	bad, err := http.Post(srv.URL+"/services/add?destruction=bogus",
		"application/json", strings.NewReader(`{"a": 1, "b": 2}`))
	if err != nil {
		t.Fatal(err)
	}
	bad.Body.Close()
	if bad.StatusCode != http.StatusBadRequest {
		t.Errorf("destruction=bogus status = %d, want 400", bad.StatusCode)
	}
}

// TestRecoveryMetricsExposed is the /metrics scrape gate for the durability
// plane: after a restart the WAL counters and the per-kind replay counter
// must be present and non-zero.
func TestRecoveryMetricsExposed(t *testing.T) {
	registerSum("rectest.metsum")
	dir := t.TempDir()
	ctx := context.Background()

	c1, err := container.New(durableOpts(dir, journal.SyncAlways))
	if err != nil {
		t.Fatal(err)
	}
	deployNative(t, c1, "msum", "rectest.metsum", false, sumParams.in, sumParams.out)
	job, err := c1.Jobs().SubmitCtx(ctx, "msum", core.Values{"a": 1.0, "b": 1.0}, "alice")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Jobs().Wait(ctx, job.ID, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	c1.Close()

	c2, err := container.New(durableOpts(dir, journal.SyncAlways))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c2.Close)
	deployNative(t, c2, "msum", "rectest.metsum", false, sumParams.in, sumParams.out)
	if err := c2.Recover(); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(c2.Handler())
	t.Cleanup(srv.Close)

	samples := scrapeMetrics(t, srv.URL)
	for _, name := range []string{"mc_wal_appends_total", "mc_wal_fsyncs_total", "mc_wal_bytes_total"} {
		if samples[name] <= 0 {
			t.Errorf("%s = %v, want > 0", name, samples[name])
		}
	}
	for _, kind := range []string{"job", "job_end"} {
		series := fmt.Sprintf("mc_recovery_replayed_total{kind=%q}", kind)
		if samples[series] < 1 {
			t.Errorf("%s = %v, want >= 1", series, samples[series])
		}
	}
}
