package container

import (
	"container/list"
	"encoding/json"
	"sync"

	"mathcloud/internal/core"
)

// Default bounds of the per-container computation cache (Options
// MemoMaxEntries / MemoMaxBytes, 0 = these defaults).
const (
	defaultMemoEntries = 4096
	defaultMemoBytes   = 256 << 20
)

// maxMemoDeltaLog bounds the table's change log (the /memo?since= feed).
// A consumer whose cursor falls off the log gets a full re-listing, so
// the bound trades gateway re-sync cost against table memory; sized to
// the default entry bound.
const maxMemoDeltaLog = 4096

// memoDelta is one change-log record of the memo index: an entry stored
// (drop=false) or removed (drop=true), at sequence number seq.
type memoDelta struct {
	seq     uint64
	drop    bool
	key     string
	service string
	jobID   string
}

// memoEntry is one cached computation result: the outputs of a DONE job of
// a deterministic service, keyed by the canonical hash of its inputs.
type memoEntry struct {
	key     string
	service string
	// jobID is the backing job whose file resources the cached outputs
	// reference; deleting that job purges the entry together with the
	// files, so a hit never hands out dangling file URIs.
	jobID   string
	outputs core.Values
	bytes   int64
	elem    *list.Element
}

// flight is one in-progress execution of a deterministic computation.
// Identical submissions arriving while it runs coalesce onto it as
// followers: they are completed from the leader's result instead of
// executing the adapter again.
type flight struct {
	followers []*jobRecord
	// noStore marks a flight whose service was reconfigured mid-run: the
	// result still completes the followers (it is what they asked for when
	// they asked) but must not populate the cache.
	noStore bool
}

// memoTable is the per-service-container computation cache: an LRU bounded
// by entry count and by approximate output bytes, plus the singleflight
// registry of in-progress executions.  All methods are safe for concurrent
// use.
type memoTable struct {
	maxEntries int
	maxBytes   int64

	mu      sync.Mutex
	bytes   int64
	entries map[string]*memoEntry
	lru     *list.List // front = most recently used
	byJob   map[string]string
	flights map[string]*flight

	// Index change feed (GET /memo?since=): seq numbers every mutation,
	// deltaLog holds the records in (logStart, seq], oldest first.  A
	// cursor at or before logStart can no longer be answered
	// incrementally and forces a full re-listing.
	seq      uint64
	logStart uint64
	deltaLog []memoDelta
}

func newMemoTable(maxEntries int, maxBytes int64) *memoTable {
	return &memoTable{
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		entries:    make(map[string]*memoEntry),
		lru:        list.New(),
		byJob:      make(map[string]string),
		flights:    make(map[string]*flight),
	}
}

// lookup returns the cached outputs for key, refreshing its LRU position.
// The returned Values are shared and treated as immutable; callers clone
// before attaching them to a job.
func (m *memoTable) lookup(key string) (core.Values, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.entries[key]
	if !ok {
		return nil, false
	}
	m.lru.MoveToFront(e.elem)
	return e.outputs, true
}

// lookupEntry is lookup for the federation plane: it additionally hands
// back the owning service and backing job, for GET /memo/{digest}.
func (m *memoTable) lookupEntry(key string) (service, jobID string, outputs core.Values, ok bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.entries[key]
	if !ok {
		return "", "", nil, false
	}
	m.lru.MoveToFront(e.elem)
	return e.service, e.jobID, e.outputs, true
}

// logDeltaLocked appends one change record, trimming the log to its
// bound.  Callers must hold m.mu.
func (m *memoTable) logDeltaLocked(d memoDelta) {
	m.seq++
	d.seq = m.seq
	m.deltaLog = append(m.deltaLog, d)
	if len(m.deltaLog) > maxMemoDeltaLog {
		drop := len(m.deltaLog) - maxMemoDeltaLog
		m.deltaLog = append(m.deltaLog[:0], m.deltaLog[drop:]...)
		m.logStart = m.deltaLog[0].seq - 1
	}
}

// invalidateFeedLocked discards the change log after a bulk mutation
// (reset, service drop), forcing every consumer into a full re-listing.
// Callers must hold m.mu.
func (m *memoTable) invalidateFeedLocked() {
	m.seq++
	m.deltaLog = nil
	m.logStart = m.seq
}

// deltas answers one page of the index feed: the changes after cursor
// `since`, or — when the cursor predates the bounded log — a Reset page
// carrying the full current index.  The page's Seq is the new cursor.
func (m *memoTable) deltas(since uint64) core.MemoIndexPage {
	m.mu.Lock()
	defer m.mu.Unlock()
	page := core.MemoIndexPage{Seq: m.seq}
	if since > m.seq || since < m.logStart {
		page.Reset = true
		page.Entries = make([]core.MemoIndexEntry, 0, len(m.entries))
		for el := m.lru.Front(); el != nil; el = el.Next() {
			e := el.Value.(*memoEntry)
			page.Entries = append(page.Entries, core.MemoIndexEntry{
				Key: e.key, Service: e.service, JobID: e.jobID,
			})
		}
		return page
	}
	for _, d := range m.deltaLog {
		if d.seq <= since {
			continue
		}
		if d.drop {
			page.Dropped = append(page.Dropped, d.key)
		} else {
			page.Entries = append(page.Entries, core.MemoIndexEntry{
				Key: d.key, Service: d.service, JobID: d.jobID,
			})
		}
	}
	return page
}

// joinOrLead coalesces rec onto an in-progress identical execution, or
// registers a new flight with rec as its leader.  It reports whether rec
// leads (and must actually execute).
func (m *memoTable) joinOrLead(key string, rec *jobRecord) (leader bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if f, ok := m.flights[key]; ok {
		f.followers = append(f.followers, rec)
		return false
	}
	m.flights[key] = &flight{}
	return true
}

// takeFlight removes and returns the flight for key.  The second call for
// the same key returns ok=false, which is what makes settlement idempotent.
func (m *memoTable) takeFlight(key string) (followers []*jobRecord, noStore, ok bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.flights[key]
	if !ok {
		return nil, false, false
	}
	delete(m.flights, key)
	return f.followers, f.noStore, true
}

// store caches the outputs of a completed execution and applies the LRU
// bounds.  Outputs that cannot be sized (unmarshalable) are not cached.
func (m *memoTable) store(key, service, jobID string, outputs core.Values) {
	data, err := json.Marshal(outputs)
	if err != nil {
		return
	}
	size := int64(len(data))
	if size > m.maxBytes {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, exists := m.entries[key]; exists {
		return
	}
	e := &memoEntry{key: key, service: service, jobID: jobID, outputs: outputs, bytes: size}
	e.elem = m.lru.PushFront(e)
	m.entries[key] = e
	m.byJob[jobID] = key
	m.bytes += size
	m.logDeltaLocked(memoDelta{key: key, service: service, jobID: jobID})
	for len(m.entries) > m.maxEntries || m.bytes > m.maxBytes {
		oldest := m.lru.Back()
		if oldest == nil {
			break
		}
		m.removeLocked(oldest.Value.(*memoEntry))
		metMemoEvictions.Inc()
	}
	metMemoBytes.Set(float64(m.bytes))
}

// removeLocked unlinks one entry.  Callers must hold m.mu.
func (m *memoTable) removeLocked(e *memoEntry) {
	m.lru.Remove(e.elem)
	delete(m.entries, e.key)
	delete(m.byJob, e.jobID)
	m.bytes -= e.bytes
	m.logDeltaLocked(memoDelta{drop: true, key: e.key})
}

// dropJob purges the entry backed by the given job: its file resources are
// being destroyed, so the cached outputs would dangle.
func (m *memoTable) dropJob(jobID string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if key, ok := m.byJob[jobID]; ok {
		m.removeLocked(m.entries[key])
		metMemoBytes.Set(float64(m.bytes))
	}
}

// dropService invalidates every entry of one service and poisons its
// in-progress flights, for service reconfiguration (undeploy/redeploy): a
// new adapter configuration may compute different results for the same
// inputs even at the same declared version.
func (m *memoTable) dropService(service string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, e := range m.entries {
		if e.service == service {
			m.removeLocked(e)
		}
	}
	// Flights are keyed by hash, not service; poisoning all of them is
	// coarse but reconfiguration is rare and a lost store is only a miss.
	for _, f := range m.flights {
		f.noStore = true
	}
	m.invalidateFeedLocked()
	metMemoBytes.Set(float64(m.bytes))
}

// reset drops every entry and poisons every flight.  Used when the
// container's base URL changes: cached outputs embed absolute file URIs.
func (m *memoTable) reset() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.entries = make(map[string]*memoEntry)
	m.byJob = make(map[string]string)
	m.lru.Init()
	m.bytes = 0
	for _, f := range m.flights {
		f.noStore = true
	}
	m.invalidateFeedLocked()
	metMemoBytes.Set(0)
}

// forEach visits every cached entry in LRU order (most recent first), for
// the snapshotter.  The callback must not call back into the table.
func (m *memoTable) forEach(fn func(key, service, jobID string, outputs core.Values)) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for el := m.lru.Front(); el != nil; el = el.Next() {
		e := el.Value.(*memoEntry)
		fn(e.key, e.service, e.jobID, e.outputs)
	}
}

// stats reports the cache occupancy, for tests and benches.
func (m *memoTable) stats() (entries int, bytes int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.entries), m.bytes
}
