package container

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func TestFileStoreDedupSharesBlobs(t *testing.T) {
	fs, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("diffractometry curve "), 1024)

	var ids []string
	for i := 0; i < 8; i++ {
		id, err := fs.Put(bytes.NewReader(payload), fmt.Sprintf("job%d", i))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	files, blobs, logical, physical := fs.Stats()
	if files != 8 || blobs != 1 {
		t.Fatalf("got %d files / %d blobs, want 8 files sharing 1 blob", files, blobs)
	}
	if logical != 8*int64(len(payload)) || physical != int64(len(payload)) {
		t.Fatalf("logical=%d physical=%d, want %d and %d",
			logical, physical, 8*len(payload), len(payload))
	}

	// All IDs resolve to the same content and the same digest.
	d0, err := fs.Digest(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		if d, _ := fs.Digest(id); d != d0 {
			t.Fatalf("digest mismatch: %s vs %s", d, d0)
		}
		got, err := fs.ReadAll(id)
		if err != nil || !bytes.Equal(got, payload) {
			t.Fatalf("content mismatch for %s: %v", id, err)
		}
	}

	// Deleting all but one ID keeps the blob; deleting the last removes it.
	for _, id := range ids[:7] {
		if err := fs.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := fs.ReadAll(ids[7]); err != nil {
		t.Fatalf("surviving ID unreadable after sibling deletes: %v", err)
	}
	if err := fs.Delete(ids[7]); err != nil {
		t.Fatal(err)
	}
	files, blobs, logical, physical = fs.Stats()
	if files != 0 || blobs != 0 || logical != 0 || physical != 0 {
		t.Fatalf("store not empty after deleting all IDs: files=%d blobs=%d logical=%d physical=%d",
			files, blobs, logical, physical)
	}
}

func TestFileStoreDedupAcrossPutKinds(t *testing.T) {
	fs, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("identical bytes through three ingestion paths")

	id1, err := fs.Put(bytes.NewReader(payload), "")
	if err != nil {
		t.Fatal(err)
	}
	id2, err := fs.PutBytes(payload, "")
	if err != nil {
		t.Fatal(err)
	}
	src := filepath.Join(t.TempDir(), "out.dat")
	if err := os.WriteFile(src, payload, 0o600); err != nil {
		t.Fatal(err)
	}
	id3, err := fs.PutFile(src, "jobX")
	if err != nil {
		t.Fatal(err)
	}
	if id1 == id2 || id2 == id3 {
		t.Fatal("IDs must stay distinct even when content dedups")
	}
	if _, blobs, _, _ := fs.Stats(); blobs != 1 {
		t.Fatalf("got %d blobs, want 1 shared across Put/PutBytes/PutFile", blobs)
	}
}

func TestFileStoreConcurrentIdenticalPuts(t *testing.T) {
	fs, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("x"), 64<<10)
	const writers = 16
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			id, err := fs.Put(bytes.NewReader(payload), "")
			if err != nil {
				errs <- err
				return
			}
			got, err := fs.ReadAll(id)
			if err != nil {
				errs <- err
				return
			}
			if !bytes.Equal(got, payload) {
				errs <- fmt.Errorf("content mismatch for %s", id)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	files, blobs, _, _ := fs.Stats()
	if files != writers || blobs != 1 {
		t.Fatalf("got %d files / %d blobs, want %d files on 1 blob", files, blobs, writers)
	}
	// No stray temp files left behind.
	entries, err := os.ReadDir(fs.dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "tmp-") {
			t.Fatalf("leftover temp file %s", e.Name())
		}
	}
}

func TestFileStorePutErrorsNameJob(t *testing.T) {
	fs, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs.PutFile(filepath.Join(t.TempDir(), "absent"), "job42"); err == nil {
		t.Fatal("expected error for missing source file")
	} else if !strings.Contains(err.Error(), "job42") {
		t.Fatalf("error does not name the job: %v", err)
	}
}
