package container_test

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mathcloud/internal/adapter"
	"mathcloud/internal/container"
	"mathcloud/internal/core"
)

// deployCounting deploys a service whose adapter counts its executions and
// echoes f(x) = 2x, optionally flagged deterministic.
func deployCounting(t *testing.T, c *container.Container, name string, deterministic bool, calls *atomic.Int64) {
	t.Helper()
	fn := "memo." + name
	adapter.RegisterFunc(fn, func(ctx context.Context, in core.Values) (core.Values, error) {
		calls.Add(1)
		x, _ := in["x"].(float64)
		return core.Values{"y": 2 * x}, nil
	})
	cfg := container.ServiceConfig{
		Description: core.ServiceDescription{
			Name:          name,
			Version:       "1",
			Deterministic: deterministic,
			Inputs:        []core.Param{{Name: "x"}},
			Outputs:       []core.Param{{Name: "y"}},
		},
		Adapter: container.AdapterSpec{
			Kind:   "native",
			Config: mustJSON(t, adapter.NativeConfig{Function: fn}),
		},
	}
	if err := c.Deploy(cfg); err != nil {
		t.Fatalf("Deploy %s: %v", name, err)
	}
}

func newMemoContainer(t *testing.T, opts container.Options) *container.Container {
	t.Helper()
	opts.Logger = quietLogger()
	c, err := container.New(opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(c.Close)
	return c
}

func waitDone(t *testing.T, c *container.Container, id string) *core.Job {
	t.Helper()
	job, err := c.Jobs().Wait(context.Background(), id, 10*time.Second)
	if err != nil {
		t.Fatalf("Wait(%s): %v", id, err)
	}
	if !job.State.Terminal() {
		t.Fatalf("job %s not terminal after wait: %s", id, job.State)
	}
	return job
}

func TestRepeatSubmitServedFromCache(t *testing.T) {
	var calls atomic.Int64
	c := newMemoContainer(t, container.Options{Workers: 2})
	deployCounting(t, c, "det", true, &calls)

	first, err := c.Jobs().Submit("det", core.Values{"x": 21.0}, "")
	if err != nil {
		t.Fatal(err)
	}
	firstDone := waitDone(t, c, first.ID)
	if firstDone.State != core.StateDone || firstDone.Outputs["y"] != 42.0 {
		t.Fatalf("cold job: state=%s outputs=%v", firstDone.State, firstDone.Outputs)
	}

	// The repeat submit must come back DONE immediately — no queue, no
	// adapter execution — under a distinct job ID.
	second, err := c.Jobs().Submit("det", core.Values{"x": 21.0}, "")
	if err != nil {
		t.Fatal(err)
	}
	if second.State != core.StateDone {
		t.Fatalf("repeat submit state = %s, want DONE at submit time", second.State)
	}
	if second.ID == first.ID {
		t.Fatal("cache hit must mint a fresh job resource")
	}
	if second.Outputs["y"] != 42.0 {
		t.Fatalf("cached outputs = %v", second.Outputs)
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("adapter executed %d times, want 1", n)
	}

	// Different inputs miss.
	third, err := c.Jobs().Submit("det", core.Values{"x": 5.0}, "")
	if err != nil {
		t.Fatal(err)
	}
	if got := waitDone(t, c, third.ID).Outputs["y"]; got != 10.0 {
		t.Fatalf("miss outputs = %v", got)
	}
	if n := calls.Load(); n != 2 {
		t.Fatalf("adapter executed %d times after distinct input, want 2", n)
	}
}

func TestNonDeterministicServiceBypassesMemo(t *testing.T) {
	var calls atomic.Int64
	c := newMemoContainer(t, container.Options{Workers: 2})
	deployCounting(t, c, "plain", false, &calls)

	for i := 0; i < 3; i++ {
		job, err := c.Jobs().Submit("plain", core.Values{"x": 1.0}, "")
		if err != nil {
			t.Fatal(err)
		}
		waitDone(t, c, job.ID)
	}
	if n := calls.Load(); n != 3 {
		t.Fatalf("adapter executed %d times, want 3 (no memoization without the flag)", n)
	}
	if entries, _ := c.Jobs().MemoStats(); entries != 0 {
		t.Fatalf("memo holds %d entries for a non-deterministic service", entries)
	}
}

// TestConcurrentIdenticalSubmitsCoalesce is the singleflight acceptance
// test: N simultaneous identical submissions share exactly one adapter
// execution and all complete with its outputs.
func TestConcurrentIdenticalSubmitsCoalesce(t *testing.T) {
	const n = 8
	var calls atomic.Int64
	release := make(chan struct{})
	adapter.RegisterFunc("memo.gate", func(ctx context.Context, in core.Values) (core.Values, error) {
		calls.Add(1)
		select {
		case <-release:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		x, _ := in["x"].(float64)
		return core.Values{"y": 2 * x}, nil
	})
	c := newMemoContainer(t, container.Options{Workers: 4})
	cfg := container.ServiceConfig{
		Description: core.ServiceDescription{
			Name: "gate", Version: "1", Deterministic: true,
			Inputs:  []core.Param{{Name: "x"}},
			Outputs: []core.Param{{Name: "y"}},
		},
		Adapter: container.AdapterSpec{
			Kind:   "native",
			Config: mustJSON(t, adapter.NativeConfig{Function: "memo.gate"}),
		},
	}
	if err := c.Deploy(cfg); err != nil {
		t.Fatal(err)
	}

	ids := make([]string, n)
	var submitted sync.WaitGroup
	var finished sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		submitted.Add(1)
		finished.Add(1)
		go func(i int) {
			defer finished.Done()
			job, err := c.Jobs().Submit("gate", core.Values{"x": 3.0}, "")
			submitted.Done()
			if err != nil {
				errs <- err
				return
			}
			ids[i] = job.ID
			done, err := c.Jobs().Wait(context.Background(), job.ID, 10*time.Second)
			if err != nil {
				errs <- err
				return
			}
			if done.State != core.StateDone || done.Outputs["y"] != 6.0 {
				errs <- fmt.Errorf("job %s: state=%s outputs=%v", job.ID, done.State, done.Outputs)
			}
		}(i)
	}
	submitted.Wait()
	close(release)
	finished.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("adapter executed %d times for %d identical submits, want exactly 1", got, n)
	}
	seen := make(map[string]bool)
	for _, id := range ids {
		if seen[id] {
			t.Fatal("duplicate job ID across coalesced submissions")
		}
		seen[id] = true
	}
}

// TestMemoEvictionChurn hammers a tiny cache from many goroutines and
// asserts that eviction under churn never serves outputs that do not match
// the submitted inputs.
func TestMemoEvictionChurn(t *testing.T) {
	var calls atomic.Int64
	c := newMemoContainer(t, container.Options{
		Workers:        4,
		MemoMaxEntries: 4,
		MemoMaxBytes:   1 << 20,
	})
	deployCounting(t, c, "churn", true, &calls)

	const goroutines = 8
	const iters = 40
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*iters)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				x := float64((g + i) % 13)
				job, err := c.Jobs().Submit("churn", core.Values{"x": x}, "")
				if err != nil {
					errs <- err
					return
				}
				done, err := c.Jobs().Wait(context.Background(), job.ID, 10*time.Second)
				if err != nil {
					errs <- err
					return
				}
				if done.State != core.StateDone {
					errs <- fmt.Errorf("job %s: %s (%s)", job.ID, done.State, done.Error)
					return
				}
				if got := done.Outputs["y"]; got != 2*x {
					errs <- fmt.Errorf("wrong cached result: x=%v got y=%v want %v", x, got, 2*x)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if entries, _ := c.Jobs().MemoStats(); entries > 4 {
		t.Fatalf("memo holds %d entries, bound is 4", entries)
	}
}

func TestMemoInvalidatedOnRedeploy(t *testing.T) {
	c := newMemoContainer(t, container.Options{Workers: 2})
	deploy := func(fn string) {
		t.Helper()
		cfg := container.ServiceConfig{
			Description: core.ServiceDescription{
				Name: "recfg", Version: "1", Deterministic: true,
				Inputs:  []core.Param{{Name: "x"}},
				Outputs: []core.Param{{Name: "mark"}},
			},
			Adapter: container.AdapterSpec{
				Kind:   "native",
				Config: mustJSON(t, adapter.NativeConfig{Function: fn}),
			},
		}
		if err := c.Deploy(cfg); err != nil {
			t.Fatal(err)
		}
	}
	adapter.RegisterFunc("memo.markA", func(ctx context.Context, in core.Values) (core.Values, error) {
		return core.Values{"mark": "A"}, nil
	})
	adapter.RegisterFunc("memo.markB", func(ctx context.Context, in core.Values) (core.Values, error) {
		return core.Values{"mark": "B"}, nil
	})

	deploy("memo.markA")
	job, err := c.Jobs().Submit("recfg", core.Values{"x": 1.0}, "")
	if err != nil {
		t.Fatal(err)
	}
	if got := waitDone(t, c, job.ID).Outputs["mark"]; got != "A" {
		t.Fatalf("first deploy produced %v", got)
	}

	// Same name, same version, different adapter configuration: the cache
	// must not serve the stale "A".
	if err := c.Undeploy("recfg"); err != nil {
		t.Fatal(err)
	}
	deploy("memo.markB")
	job, err = c.Jobs().Submit("recfg", core.Values{"x": 1.0}, "")
	if err != nil {
		t.Fatal(err)
	}
	done := waitDone(t, c, job.ID)
	if got := done.Outputs["mark"]; got != "B" {
		t.Fatalf("after redeploy got %v, want B (stale cache entry served)", got)
	}
}

// TestMemoPurgedWithBackingJobFiles covers the file lifetime contract: the
// cached entry references the backing job's output files, so deleting that
// job purges the entry and the next submit re-executes.
func TestMemoPurgedWithBackingJobFiles(t *testing.T) {
	var calls atomic.Int64
	adapter.RegisterRequestFunc("memo.filer", func(ctx context.Context, req *adapter.Request) (*adapter.Result, error) {
		calls.Add(1)
		path := filepath.Join(req.WorkDir, "out.dat")
		if err := os.WriteFile(path, []byte("payload"), 0o600); err != nil {
			return nil, err
		}
		return &adapter.Result{Files: map[string]string{"data": path}}, nil
	})
	c := newMemoContainer(t, container.Options{Workers: 2})
	cfg := container.ServiceConfig{
		Description: core.ServiceDescription{
			Name: "filer", Version: "1", Deterministic: true,
			Inputs:  []core.Param{{Name: "x"}},
			Outputs: []core.Param{{Name: "data"}},
		},
		Adapter: container.AdapterSpec{
			Kind:   "native",
			Config: mustJSON(t, adapter.NativeConfig{Function: "memo.filer"}),
		},
	}
	if err := c.Deploy(cfg); err != nil {
		t.Fatal(err)
	}

	first, err := c.Jobs().Submit("filer", core.Values{"x": 1.0}, "")
	if err != nil {
		t.Fatal(err)
	}
	firstDone := waitDone(t, c, first.ID)
	if entries, _ := c.Jobs().MemoStats(); entries != 1 {
		t.Fatalf("memo entries = %d after cold run, want 1", entries)
	}

	// A hit while the backing job lives returns its file reference.
	hit, err := c.Jobs().Submit("filer", core.Values{"x": 1.0}, "")
	if err != nil {
		t.Fatal(err)
	}
	if hit.State != core.StateDone || hit.Outputs["data"] != firstDone.Outputs["data"] {
		t.Fatalf("hit = %s %v, want DONE with %v", hit.State, hit.Outputs, firstDone.Outputs)
	}

	// Deleting the terminal backing job destroys its files and must purge
	// the cache entry with them.
	if _, err := c.Jobs().Delete(first.ID); err != nil {
		t.Fatal(err)
	}
	if entries, _ := c.Jobs().MemoStats(); entries != 0 {
		t.Fatalf("memo entries = %d after backing job delete, want 0", entries)
	}
	again, err := c.Jobs().Submit("filer", core.Values{"x": 1.0}, "")
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, c, again.ID)
	if n := calls.Load(); n != 2 {
		t.Fatalf("adapter executed %d times, want 2 (re-execution after purge)", n)
	}
}

// TestMemoFileInputsKeyedByContent asserts the content-addressing of file
// inputs: a re-upload of identical bytes gets a different file ID but the
// same computation key.
func TestMemoFileInputsKeyedByContent(t *testing.T) {
	var calls atomic.Int64
	adapter.RegisterRequestFunc("memo.reader", func(ctx context.Context, req *adapter.Request) (*adapter.Result, error) {
		calls.Add(1)
		data, err := os.ReadFile(req.Files["f"])
		if err != nil {
			return nil, err
		}
		return &adapter.Result{Outputs: core.Values{"len": float64(len(data))}}, nil
	})
	c := newMemoContainer(t, container.Options{Workers: 2})
	cfg := container.ServiceConfig{
		Description: core.ServiceDescription{
			Name: "reader", Version: "1", Deterministic: true,
			Inputs:  []core.Param{{Name: "f"}},
			Outputs: []core.Param{{Name: "len"}},
		},
		Adapter: container.AdapterSpec{
			Kind:   "native",
			Config: mustJSON(t, adapter.NativeConfig{Function: "memo.reader"}),
		},
	}
	if err := c.Deploy(cfg); err != nil {
		t.Fatal(err)
	}

	payload := bytes.Repeat([]byte("scattering curve "), 64)
	id1, err := c.Files().Put(bytes.NewReader(payload), "")
	if err != nil {
		t.Fatal(err)
	}
	id2, err := c.Files().Put(bytes.NewReader(payload), "")
	if err != nil {
		t.Fatal(err)
	}
	if id1 == id2 {
		t.Fatal("expected distinct file IDs for the two uploads")
	}

	job, err := c.Jobs().Submit("reader", core.Values{"f": core.FileRef(id1)}, "")
	if err != nil {
		t.Fatal(err)
	}
	want := waitDone(t, c, job.ID).Outputs["len"]

	// Same bytes behind a different ID: must be a cache hit.
	hit, err := c.Jobs().Submit("reader", core.Values{"f": core.FileRef(id2)}, "")
	if err != nil {
		t.Fatal(err)
	}
	if hit.State != core.StateDone || hit.Outputs["len"] != want {
		t.Fatalf("content-keyed hit = %s %v, want DONE %v", hit.State, hit.Outputs, want)
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("adapter executed %d times, want 1", n)
	}

	// Different content misses.
	id3, err := c.Files().Put(bytes.NewReader(append(payload, '!')), "")
	if err != nil {
		t.Fatal(err)
	}
	job3, err := c.Jobs().Submit("reader", core.Values{"f": core.FileRef(id3)}, "")
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, c, job3.ID)
	if n := calls.Load(); n != 2 {
		t.Fatalf("adapter executed %d times after distinct content, want 2", n)
	}
}

// TestCloseReleasesCoalescedFollowers asserts the shutdown contract holds
// for followers: Close cancels the in-flight leader, and every coalesced
// waiter unblocks with a terminal state.
func TestCloseReleasesCoalescedFollowers(t *testing.T) {
	adapter.RegisterFunc("memo.block", func(ctx context.Context, in core.Values) (core.Values, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	})
	c := newMemoContainer(t, container.Options{Workers: 2})
	cfg := container.ServiceConfig{
		Description: core.ServiceDescription{
			Name: "block", Version: "1", Deterministic: true,
			Inputs: []core.Param{{Name: "x"}},
		},
		Adapter: container.AdapterSpec{
			Kind:   "native",
			Config: mustJSON(t, adapter.NativeConfig{Function: "memo.block"}),
		},
	}
	if err := c.Deploy(cfg); err != nil {
		t.Fatal(err)
	}

	const n = 5
	var wg sync.WaitGroup
	states := make(chan core.JobState, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			job, err := c.Jobs().Submit("block", core.Values{"x": 1.0}, "")
			if err != nil {
				return
			}
			done, err := c.Jobs().Wait(context.Background(), job.ID, 10*time.Second)
			if err == nil {
				states <- done.State
			}
		}()
	}
	// Give the submissions a moment to coalesce, then shut down.
	time.Sleep(50 * time.Millisecond)
	c.Close()
	wg.Wait()
	close(states)
	for s := range states {
		if !s.Terminal() {
			t.Fatalf("waiter observed non-terminal state %s after Close", s)
		}
	}
}
