package container_test

// Job-lifecycle race tests (run under -race in CI): DELETE racing a
// concurrent finish, terminal-job deletion purging files exactly once, and
// queue-full submission storms.

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"mathcloud/internal/adapter"
	"mathcloud/internal/container"
	"mathcloud/internal/core"
)

// Cancel-while-running racing the job's own completion: whichever side wins,
// the job must land in exactly one terminal state and every waiter returns.
func TestCancelRacesConcurrentFinish(t *testing.T) {
	c := chaosContainer(t, container.Options{Workers: 4, QueueSize: 256})
	const jobs = 48
	var wg sync.WaitGroup
	for i := 0; i < jobs; i++ {
		job, err := c.Jobs().Submit("chaos", core.Values{"mode": "sleep"}, "")
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(2)
		// One goroutine cancels, one waits; the job completes on its own
		// at roughly the same time.
		go func(id string) {
			defer wg.Done()
			_, _ = c.Jobs().Delete(id)
		}(job.ID)
		go func(id string) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			j, err := c.Jobs().Wait(ctx, id, 10*time.Second)
			if err == nil && !j.State.Terminal() {
				t.Errorf("job %s non-terminal after wait: %s", id, j.State)
			}
		}(job.ID)
	}
	wg.Wait()
	for _, j := range c.Jobs().List("") {
		switch j.State {
		case core.StateDone, core.StateCancelled:
		default:
			t.Errorf("job %s = %s (%s), want DONE or CANCELLED", j.ID, j.State, j.Error)
		}
	}
}

// Deleting a terminal job destroys the record and purges its subordinate
// file resources exactly once, even when deletes race.
func TestDeleteTerminalJobPurgesFilesOnce(t *testing.T) {
	adapter.RegisterRequestFunc("test.filemaker", func(ctx context.Context, req *adapter.Request) (*adapter.Result, error) {
		path := filepath.Join(req.WorkDir, "out.dat")
		if err := os.WriteFile(path, []byte("payload"), 0o600); err != nil {
			return nil, err
		}
		return &adapter.Result{Files: map[string]string{"data": path}}, nil
	})
	c, err := container.New(container.Options{Workers: 2, Logger: quietLogger()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	if err := c.Deploy(container.ServiceConfig{
		Description: core.ServiceDescription{
			Name:    "filemaker",
			Outputs: []core.Param{{Name: "data"}},
		},
		Adapter: container.AdapterSpec{Kind: "native",
			Config: json.RawMessage(`{"function":"test.filemaker"}`)},
	}); err != nil {
		t.Fatal(err)
	}

	job, err := c.Jobs().Submit("filemaker", core.Values{}, "")
	if err != nil {
		t.Fatal(err)
	}
	done := waitTerminal(t, c, job.ID)
	if done.State != core.StateDone {
		t.Fatalf("job = %s (%s)", done.State, done.Error)
	}
	if c.Files().Count() != 1 {
		t.Fatalf("file count = %d, want 1", c.Files().Count())
	}

	// Concurrent deletes of the terminal job: the purge must happen once,
	// later deletes see the record gone.
	var wg sync.WaitGroup
	okCount := 0
	var mu sync.Mutex
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := c.Jobs().Delete(job.ID); err == nil {
				mu.Lock()
				okCount++
				mu.Unlock()
			} else if !core.IsNotFound(err) {
				t.Errorf("unexpected delete error: %v", err)
			}
		}()
	}
	wg.Wait()
	if okCount != 1 {
		t.Errorf("%d deletes succeeded, want exactly 1", okCount)
	}
	if got := c.Files().Count(); got != 0 {
		t.Errorf("file count after delete = %d, want 0", got)
	}
	if _, err := c.Jobs().Get(job.ID); !core.IsNotFound(err) {
		t.Errorf("terminal job still present after delete: %v", err)
	}
}

// A storm of submissions against a tiny queue: every call either yields a
// job that reaches a terminal state or the transient queue-full error, and
// the job map stays consistent.
func TestQueueFullSubmitStorm(t *testing.T) {
	c := chaosContainer(t, container.Options{Workers: 2, QueueSize: 2})
	var wg sync.WaitGroup
	var mu sync.Mutex
	var ids []string
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				job, err := c.Jobs().Submit("chaos", core.Values{"mode": "sleep"}, "")
				if err != nil {
					var unavail *core.UnavailableError
					if !asUnavailable(err, &unavail) {
						t.Errorf("submit error = %v, want UnavailableError", err)
					}
					continue
				}
				mu.Lock()
				ids = append(ids, job.ID)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	for _, id := range ids {
		done := waitTerminal(t, c, id)
		if done.State != core.StateDone {
			t.Errorf("job %s = %s (%s)", id, done.State, done.Error)
		}
	}
}
