package container_test

import (
	"encoding/json"
	"io"
	"net/http"
	"testing"

	"mathcloud/internal/core"
)

// TestDescriptionETagAndConditionalGET exercises the cached description
// bytes end to end over HTTP: a GET carries a strong entity tag, a
// conditional GET with that tag answers 304 with no body, and a mismatched
// tag transfers the full description again.
func TestDescriptionETagAndConditionalGET(t *testing.T) {
	_, srv := startContainer(t)
	uri := srv.URL + "/services/add"

	resp, err := http.Get(uri)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET = %d, want 200", resp.StatusCode)
	}
	etag := resp.Header.Get("ETag")
	if etag == "" {
		t.Fatal("description GET carries no ETag")
	}
	var desc core.ServiceDescription
	if err := json.Unmarshal(body, &desc); err != nil {
		t.Fatalf("decode description: %v", err)
	}
	if desc.Name != "add" || desc.URI != uri {
		t.Fatalf("cached description wrong: name=%q uri=%q (want add, %s)", desc.Name, desc.URI, uri)
	}

	req, _ := http.NewRequest(http.MethodGet, uri, nil)
	req.Header.Set("If-None-Match", etag)
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body2, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotModified {
		t.Fatalf("conditional GET = %d, want 304", resp2.StatusCode)
	}
	if len(body2) != 0 {
		t.Fatalf("304 carried a %d-byte body", len(body2))
	}
	if got := resp2.Header.Get("ETag"); got != etag {
		t.Fatalf("304 ETag = %q, want %q", got, etag)
	}

	req, _ = http.NewRequest(http.MethodGet, uri, nil)
	req.Header.Set("If-None-Match", `"different"`)
	resp3, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body3, _ := io.ReadAll(resp3.Body)
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("mismatched conditional GET = %d, want 200", resp3.StatusCode)
	}
	if string(body3) != string(body) {
		t.Fatal("full re-fetch body differs from original description")
	}
}

// TestDescriptionETagChangesWithBaseURL checks that rebasing the container
// (which rewrites the self-URI inside descriptions) rotates the entity tag,
// so stale cached descriptions cannot survive a 304.
func TestDescriptionETagChangesWithBaseURL(t *testing.T) {
	c, srv := startContainer(t)
	uri := srv.URL + "/services/add"

	resp, err := http.Get(uri)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	etag := resp.Header.Get("ETag")

	c.SetBaseURL("http://rebased.example:9999")
	defer c.SetBaseURL(srv.URL)

	req, _ := http.NewRequest(http.MethodGet, uri, nil)
	req.Header.Set("If-None-Match", etag)
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("conditional GET after rebase = %d, want 200 (tag must rotate)", resp2.StatusCode)
	}
	newTag := resp2.Header.Get("ETag")
	if newTag == "" || newTag == etag {
		t.Fatalf("rebase did not rotate ETag: old=%q new=%q", etag, newTag)
	}
	var desc core.ServiceDescription
	if err := json.NewDecoder(resp2.Body).Decode(&desc); err != nil {
		t.Fatal(err)
	}
	if desc.URI != "http://rebased.example:9999/services/add" {
		t.Fatalf("rebased description URI = %q", desc.URI)
	}
}
