package container

import (
	"net/http"
	"strconv"
	"strings"
	"time"

	"mathcloud/internal/core"
	"mathcloud/internal/obs"
	"mathcloud/internal/rest"
)

// Handler returns the HTTP handler exposing the unified REST API of
// Table 1 plus the auto-generated web interface and the observability
// endpoints:
//
//	GET    /                              container index
//	GET    /services/{name}               service description (or web UI)
//	POST   /services/{name}               submit request, create job
//	GET    /services/{name}/jobs          job list (?state=&limit=&offset=)
//	GET    /services/{name}/jobs/{id}     job status and results (or web UI)
//	DELETE /services/{name}/jobs/{id}     cancel job / delete job data
//	POST   /services/{name}/sweeps        submit a parameter sweep
//	GET    /services/{name}/sweeps        sweep list
//	GET    /services/{name}/sweeps/{id}   aggregate sweep status (?wait=)
//	DELETE /services/{name}/sweeps/{id}   cancel sweep / delete sweep data
//	GET    /services/{name}/sweeps/{id}/jobs  child jobs (?state=&limit=&offset=)
//	GET    /services/{name}/events        SSE feed of the service's activity
//	GET    /services/{name}/jobs/{id}/events    SSE job state stream
//	GET    /services/{name}/sweeps/{id}/events  SSE sweep progress stream
//	POST   /files                         upload a file resource
//	GET    /files/{id}                    file data (supports ranges)
//	DELETE /files/{id}                    delete a file resource
//	GET    /metrics                       Prometheus text-format metrics
//	GET    /status                        JSON metrics with percentiles
//	GET    /load                          replica load report (federation)
//	GET    /memo                          memo index delta feed (?since=)
//	GET    /memo/{digest}                 one cached computation by digest
//
// Every request passes the ingress instrumentation first: an X-Request-ID
// is established (propagated or generated), per-route metrics are recorded,
// and a structured request log is emitted.  The observability endpoints are
// infrastructure-level and answer before the security guard, so operators
// can scrape a secured container without service credentials; they expose
// only aggregate counters, never job data.
func (c *Container) Handler() http.Handler {
	return Instrument(c.APIHandler())
}

// Instrument wraps next with the ingress instrumentation middleware
// (request-ID establishment, per-route metrics, request log).  It is
// exported for front-ends like the WMS that mount extra routes ahead of the
// container API and must instrument the combined handler exactly once.
func Instrument(next http.Handler) http.Handler { return instrument(next) }

// ReplicaHeader carries the identity of the container replica that answered
// a request.  Gateways and clients use it to attribute responses (and debug
// misrouted affinity IDs) in federated deployments.
const ReplicaHeader = "X-MC-Replica"

// DigestHeader carries the sha256 hex digest of a file resource's content
// on GET /files/{id} responses.  A replica pulling a foreign blob across
// the federation verifies the transfer against it before registering the
// bytes in its local content-addressed store.
const DigestHeader = "X-MC-Digest"

// APIHandler returns the unified REST API handler without the ingress
// instrumentation.  Use Handler unless the handler is being embedded under
// an outer Instrument wrapper.
func (c *Container) APIHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if c.replicaID != "" {
			w.Header().Set(ReplicaHeader, c.replicaID)
		}
		head, tail := rest.ShiftPath(r.URL.Path)
		switch head {
		case "metrics":
			obs.MetricsHandler().ServeHTTP(w, r)
			return
		case "status":
			obs.StatusHandler().ServeHTTP(w, r)
			return
		case "load":
			// Infrastructure plane, like /metrics: the gateway's placement
			// loop scrapes it without service credentials.
			c.handleLoad(w, r)
			return
		case "memo":
			c.handleMemo(w, r, tail)
			return
		}
		var principal core.Principal
		if c.guard != nil {
			p, err := c.guard.Authenticate(r)
			if err != nil {
				w.Header().Set("WWW-Authenticate", `Bearer realm="mathcloud"`)
				rest.WriteJSON(w, http.StatusUnauthorized, rest.ErrorBody{
					Error:  err.Error(),
					Status: http.StatusUnauthorized,
				})
				return
			}
			principal = p
		}
		switch head {
		case "":
			c.handleIndex(w, r)
		case "services":
			c.handleServices(w, r, tail, principal)
		case "files":
			c.handleFiles(w, r, tail)
		default:
			rest.WriteError(w, core.ErrNotFound("resource", head))
		}
	})
}

func (c *Container) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		rest.MethodNotAllowed(w, http.MethodGet)
		return
	}
	services := c.Services()
	if rest.WantsHTML(r) {
		c.renderIndex(w, services)
		return
	}
	index := map[string]any{
		"container": "everest",
		"services":  services,
	}
	if c.replicaID != "" {
		index["replica"] = c.replicaID
	}
	rest.WriteJSON(w, http.StatusOK, index)
}

func (c *Container) handleServices(w http.ResponseWriter, r *http.Request, path string, principal core.Principal) {
	name, tail := rest.ShiftPath(path)
	if name == "" {
		rest.WriteError(w, core.ErrBadRequest("missing service name"))
		return
	}
	if c.guard != nil {
		if err := c.guard.Authorize(principal, name); err != nil {
			rest.WriteError(w, err)
			return
		}
	}
	switch {
	case tail == "/":
		c.handleService(w, r, name, principal)
	default:
		sub, rest2 := rest.ShiftPath(tail)
		switch sub {
		case "jobs":
			jobID, rest3 := rest.ShiftPath(rest2)
			if jobID == "" {
				c.handleJobList(w, r, name)
				return
			}
			if child, _ := rest.ShiftPath(rest3); child == "events" {
				c.handleJobEvents(w, r, name, jobID)
				return
			}
			c.handleJob(w, r, name, jobID)
		case "sweeps":
			sweepID, rest3 := rest.ShiftPath(rest2)
			if sweepID == "" {
				c.handleSweepList(w, r, name, principal)
				return
			}
			switch child, _ := rest.ShiftPath(rest3); child {
			case "jobs":
				c.handleSweepJobs(w, r, name, sweepID)
			case "events":
				c.handleSweepEvents(w, r, name, sweepID)
			default:
				c.handleSweep(w, r, name, sweepID)
			}
		case "events":
			c.handleServiceEvents(w, r, name)
		default:
			rest.WriteError(w, core.ErrNotFound("resource", sub))
		}
	}
}

// listParams parses the shared list-filtering query parameters: ?state=
// (case-insensitive job state), ?limit= and ?offset=.  An unknown state or a
// malformed number is a client error.
func listParams(r *http.Request) (state core.JobState, limit, offset int, err error) {
	q := r.URL.Query()
	if s := q.Get("state"); s != "" {
		state = core.JobState(strings.ToUpper(s))
		switch state {
		case core.StateWaiting, core.StateRunning, core.StateDone,
			core.StateError, core.StateCancelled:
		default:
			return "", 0, 0, core.ErrBadRequest("unknown job state %q", s)
		}
	}
	if s := q.Get("limit"); s != "" {
		if limit, err = strconv.Atoi(s); err != nil || limit < 0 {
			return "", 0, 0, core.ErrBadRequest("invalid limit %q", s)
		}
	}
	if s := q.Get("offset"); s != "" {
		if offset, err = strconv.Atoi(s); err != nil || offset < 0 {
			return "", 0, 0, core.ErrBadRequest("invalid offset %q", s)
		}
	}
	return state, limit, offset, nil
}

// handleService implements the service resource: GET returns the service
// description, POST submits a new request and creates a job.
func (c *Container) handleService(w http.ResponseWriter, r *http.Request, name string, principal core.Principal) {
	switch r.Method {
	case http.MethodGet:
		if rest.WantsHTML(r) {
			desc, err := c.Describe(name)
			if err != nil {
				rest.WriteError(w, err)
				return
			}
			c.renderService(w, desc)
			return
		}
		// Serve the precomputed immutable representation: no per-request
		// encoding, and If-None-Match revalidations collapse to a 304.
		body, etag, err := c.DescribeCached(name)
		if err != nil {
			rest.WriteError(w, err)
			return
		}
		if body == nil {
			desc, err := c.Describe(name)
			if err != nil {
				rest.WriteError(w, err)
				return
			}
			rest.WriteJSON(w, http.StatusOK, desc)
			return
		}
		rest.ServeJSONBytes(w, r, etag, body)
	case http.MethodPost:
		// Parse ?wait= before submitting: a malformed window is the
		// client's error and must 400 without creating a job.
		wait, hasWait, err := rest.ParseWait(r)
		if err != nil {
			rest.WriteError(w, err)
			return
		}
		// ?destruction= sets the job's retention TTL (UWS destruction time):
		// how long the terminal job is kept before the reaper purges it.
		var ttl time.Duration
		if raw := r.URL.Query().Get("destruction"); raw != "" {
			ttl, err = time.ParseDuration(raw)
			if err != nil || ttl <= 0 {
				rest.WriteError(w, core.ErrBadRequest("invalid destruction duration %q", raw))
				return
			}
		}
		var inputs core.Values
		if err := rest.ReadJSON(r, &inputs); err != nil {
			rest.WriteError(w, err)
			return
		}
		job, err := c.jobs.SubmitTTL(r.Context(), name, inputs, principal.Effective(), ttl)
		if err != nil {
			rest.WriteError(w, err)
			return
		}
		// Synchronous mode: if the client asked to wait and the job
		// finishes in time, the completed representation (state DONE)
		// is returned immediately, as Section 2 of the paper allows.
		c.advertiseWaitMax(w.Header())
		if hasWait {
			if j, err := c.jobs.Wait(r.Context(), job.ID, c.clampWait(wait)); err == nil {
				job = j
			}
		}
		w.Header().Set("Location", c.JobURI(name, job.ID))
		rest.WriteJSON(w, http.StatusCreated, c.decorate(job))
	default:
		rest.MethodNotAllowed(w, http.MethodGet, http.MethodPost)
	}
}

func (c *Container) handleJobList(w http.ResponseWriter, r *http.Request, service string) {
	if r.Method != http.MethodGet {
		rest.MethodNotAllowed(w, http.MethodGet)
		return
	}
	if _, err := c.Describe(service); err != nil {
		rest.WriteError(w, err)
		return
	}
	state, limit, offset, err := listParams(r)
	if err != nil {
		rest.WriteError(w, err)
		return
	}
	jobs, total := c.jobs.ListPage(service, state, limit, offset)
	for _, j := range jobs {
		c.decorate(j)
	}
	rest.WriteJSON(w, http.StatusOK, map[string]any{
		"jobs":   jobs,
		"total":  total,
		"limit":  limit,
		"offset": offset,
	})
}

// handleJob implements the job resource: GET returns status and results,
// DELETE cancels the job or deletes its data.
func (c *Container) handleJob(w http.ResponseWriter, r *http.Request, service, jobID string) {
	switch r.Method {
	case http.MethodGet:
		wait, hasWait, err := rest.ParseWait(r)
		if err != nil {
			rest.WriteError(w, err)
			return
		}
		job, err := c.jobs.Get(jobID)
		if err != nil {
			rest.WriteError(w, err)
			return
		}
		if job.Service != service {
			rest.WriteError(w, core.ErrNotFound("job", jobID))
			return
		}
		c.advertiseWaitMax(w.Header())
		if hasWait && !job.State.Terminal() {
			if j, err := c.jobs.Wait(r.Context(), jobID, c.clampWait(wait)); err == nil {
				job = j
			}
		}
		if rest.WantsHTML(r) {
			c.renderJob(w, c.decorate(job))
			return
		}
		rest.WriteJSON(w, http.StatusOK, c.decorate(job))
	case http.MethodDelete:
		job, err := c.jobs.Get(jobID)
		if err != nil {
			rest.WriteError(w, err)
			return
		}
		if job.Service != service {
			rest.WriteError(w, core.ErrNotFound("job", jobID))
			return
		}
		job, err = c.jobs.Delete(jobID)
		if err != nil {
			rest.WriteError(w, err)
			return
		}
		rest.WriteJSON(w, http.StatusOK, c.decorate(job))
	default:
		rest.MethodNotAllowed(w, http.MethodGet, http.MethodDelete)
	}
}

// handleSweepList implements the sweep collection: POST expands one sweep
// specification into a whole campaign of child jobs in a single round trip,
// GET lists the service's sweeps.
func (c *Container) handleSweepList(w http.ResponseWriter, r *http.Request, service string, principal core.Principal) {
	switch r.Method {
	case http.MethodPost:
		wait, hasWait, err := rest.ParseWait(r)
		if err != nil {
			rest.WriteError(w, err)
			return
		}
		var spec core.SweepSpec
		if err := rest.ReadJSON(r, &spec); err != nil {
			rest.WriteError(w, err)
			return
		}
		sweep, err := c.jobs.SubmitSweep(r.Context(), service, &spec, principal.Effective())
		if err != nil {
			rest.WriteError(w, err)
			return
		}
		// Synchronous mode, as for single jobs: a short campaign that
		// finishes within the wait window returns terminal in one call.
		c.advertiseWaitMax(w.Header())
		if hasWait {
			if s, err := c.jobs.WaitSweep(r.Context(), sweep.ID, c.clampWait(wait)); err == nil {
				sweep = s
			}
		}
		w.Header().Set("Location", c.SweepURI(service, sweep.ID))
		rest.WriteJSON(w, http.StatusCreated, c.decorateSweep(sweep))
	case http.MethodGet:
		if _, err := c.Describe(service); err != nil {
			rest.WriteError(w, err)
			return
		}
		sweeps := c.jobs.ListSweeps(service)
		for _, s := range sweeps {
			c.decorateSweep(s)
		}
		rest.WriteJSON(w, http.StatusOK, map[string]any{"sweeps": sweeps})
	default:
		rest.MethodNotAllowed(w, http.MethodGet, http.MethodPost)
	}
}

// handleSweep implements the sweep resource: GET returns the aggregate
// status (long-polling via ?wait=), DELETE cancels a live sweep in one call
// or destroys a finished one.
func (c *Container) handleSweep(w http.ResponseWriter, r *http.Request, service, sweepID string) {
	sweep, err := c.jobs.GetSweep(sweepID)
	if err != nil {
		rest.WriteError(w, err)
		return
	}
	if sweep.Service != service {
		rest.WriteError(w, core.ErrNotFound("sweep", sweepID))
		return
	}
	switch r.Method {
	case http.MethodGet:
		wait, hasWait, err := rest.ParseWait(r)
		if err != nil {
			rest.WriteError(w, err)
			return
		}
		c.advertiseWaitMax(w.Header())
		if hasWait && !sweep.State.Terminal() {
			if s, err := c.jobs.WaitSweep(r.Context(), sweepID, c.clampWait(wait)); err == nil {
				sweep = s
			}
		}
		if rest.WantsHTML(r) {
			c.renderSweep(w, c.decorateSweep(sweep))
			return
		}
		rest.WriteJSON(w, http.StatusOK, c.decorateSweep(sweep))
	case http.MethodDelete:
		sweep, err := c.jobs.DeleteSweep(sweepID)
		if err != nil {
			rest.WriteError(w, err)
			return
		}
		rest.WriteJSON(w, http.StatusOK, c.decorateSweep(sweep))
	default:
		rest.MethodNotAllowed(w, http.MethodGet, http.MethodDelete)
	}
}

// handleSweepJobs lists one page of a sweep's children in point order,
// optionally filtered by state.
func (c *Container) handleSweepJobs(w http.ResponseWriter, r *http.Request, service, sweepID string) {
	if r.Method != http.MethodGet {
		rest.MethodNotAllowed(w, http.MethodGet)
		return
	}
	sweep, err := c.jobs.GetSweep(sweepID)
	if err != nil {
		rest.WriteError(w, err)
		return
	}
	if sweep.Service != service {
		rest.WriteError(w, core.ErrNotFound("sweep", sweepID))
		return
	}
	state, limit, offset, err := listParams(r)
	if err != nil {
		rest.WriteError(w, err)
		return
	}
	jobs, total, err := c.jobs.SweepChildren(sweepID, state, limit, offset)
	if err != nil {
		rest.WriteError(w, err)
		return
	}
	for _, j := range jobs {
		c.decorate(j)
	}
	rest.WriteJSON(w, http.StatusOK, map[string]any{
		"jobs":   jobs,
		"total":  total,
		"limit":  limit,
		"offset": offset,
	})
}

// handleFiles implements the file resource: GET returns the file data,
// fully or partially (HTTP range requests are honoured, matching the
// paper's "retrieved fully or partially via the GET method").
func (c *Container) handleFiles(w http.ResponseWriter, r *http.Request, path string) {
	id, _ := rest.ShiftPath(path)
	switch {
	case id == "" && r.Method == http.MethodPost:
		fileID, err := c.files.Put(http.MaxBytesReader(w, r.Body, maxFileBytes), "")
		if err != nil {
			rest.WriteError(w, err)
			return
		}
		uri := c.fileURI(fileID)
		w.Header().Set("Location", uri)
		rest.WriteJSON(w, http.StatusCreated, map[string]string{
			"id":  fileID,
			"uri": uri,
			"ref": core.FileRef(uri),
		})
	case id == "":
		rest.MethodNotAllowed(w, http.MethodPost)
	case r.Method == http.MethodGet:
		f, _, err := c.files.Open(id)
		if err != nil {
			rest.WriteError(w, err)
			return
		}
		defer f.Close()
		w.Header().Set("Content-Type", "application/octet-stream")
		// Advertise the content digest so a peer replica pulling this blob
		// across the federation can verify the transfer end to end.
		if digest, err := c.files.Digest(id); err == nil {
			w.Header().Set(DigestHeader, digest)
		}
		http.ServeContent(w, r, id, time.Time{}, f)
	case r.Method == http.MethodDelete:
		if err := c.files.Delete(id); err != nil {
			rest.WriteError(w, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	default:
		rest.MethodNotAllowed(w, http.MethodGet, http.MethodDelete)
	}
}

// handleLoad answers GET /load: the replica's point-in-time load report
// (queue occupancy, executing jobs, memo footprint), consumed by the
// gateway's power-of-two-choices placement.
func (c *Container) handleLoad(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		rest.MethodNotAllowed(w, http.MethodGet)
		return
	}
	report := c.jobs.LoadReport()
	report.Replica = c.replicaID
	rest.WriteJSON(w, http.StatusOK, report)
}

// handleMemo serves the memo index plane:
//
//	GET /memo?since=N   one page of the index delta feed (the gateway
//	                    polls it to maintain the federation-wide
//	                    digest→replica map)
//	GET /memo/{digest}  direct lookup of one cached computation
func (c *Container) handleMemo(w http.ResponseWriter, r *http.Request, path string) {
	if r.Method != http.MethodGet {
		rest.MethodNotAllowed(w, http.MethodGet)
		return
	}
	digest, _ := rest.ShiftPath(path)
	memo := c.jobs.memo
	if digest == "" {
		var since uint64
		if raw := r.URL.Query().Get("since"); raw != "" {
			v, err := strconv.ParseUint(raw, 10, 64)
			if err != nil {
				rest.WriteError(w, core.ErrBadRequest("invalid since cursor %q", raw))
				return
			}
			since = v
		}
		var page core.MemoIndexPage
		if memo != nil {
			page = memo.deltas(since)
		}
		page.Replica = c.replicaID
		rest.WriteJSON(w, http.StatusOK, page)
		return
	}
	if memo == nil {
		rest.WriteError(w, core.ErrNotFound("memo entry", digest))
		return
	}
	service, jobID, outputs, ok := memo.lookupEntry(digest)
	if !ok {
		rest.WriteError(w, core.ErrNotFound("memo entry", digest))
		return
	}
	rest.WriteJSON(w, http.StatusOK, map[string]any{
		"key":     digest,
		"service": service,
		"jobID":   jobID,
		"outputs": outputs,
	})
}
