package container

import (
	"net/http"
	"time"

	"mathcloud/internal/core"
	"mathcloud/internal/obs"
	"mathcloud/internal/rest"
)

// Handler returns the HTTP handler exposing the unified REST API of
// Table 1 plus the auto-generated web interface and the observability
// endpoints:
//
//	GET    /                              container index
//	GET    /services/{name}               service description (or web UI)
//	POST   /services/{name}               submit request, create job
//	GET    /services/{name}/jobs/{id}     job status and results (or web UI)
//	DELETE /services/{name}/jobs/{id}     cancel job / delete job data
//	POST   /files                         upload a file resource
//	GET    /files/{id}                    file data (supports ranges)
//	DELETE /files/{id}                    delete a file resource
//	GET    /metrics                       Prometheus text-format metrics
//	GET    /status                        JSON metrics with percentiles
//
// Every request passes the ingress instrumentation first: an X-Request-ID
// is established (propagated or generated), per-route metrics are recorded,
// and a structured request log is emitted.  The observability endpoints are
// infrastructure-level and answer before the security guard, so operators
// can scrape a secured container without service credentials; they expose
// only aggregate counters, never job data.
func (c *Container) Handler() http.Handler {
	return Instrument(c.APIHandler())
}

// Instrument wraps next with the ingress instrumentation middleware
// (request-ID establishment, per-route metrics, request log).  It is
// exported for front-ends like the WMS that mount extra routes ahead of the
// container API and must instrument the combined handler exactly once.
func Instrument(next http.Handler) http.Handler { return instrument(next) }

// APIHandler returns the unified REST API handler without the ingress
// instrumentation.  Use Handler unless the handler is being embedded under
// an outer Instrument wrapper.
func (c *Container) APIHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		head, tail := rest.ShiftPath(r.URL.Path)
		switch head {
		case "metrics":
			obs.MetricsHandler().ServeHTTP(w, r)
			return
		case "status":
			obs.StatusHandler().ServeHTTP(w, r)
			return
		}
		var principal core.Principal
		if c.guard != nil {
			p, err := c.guard.Authenticate(r)
			if err != nil {
				w.Header().Set("WWW-Authenticate", `Bearer realm="mathcloud"`)
				rest.WriteJSON(w, http.StatusUnauthorized, rest.ErrorBody{
					Error:  err.Error(),
					Status: http.StatusUnauthorized,
				})
				return
			}
			principal = p
		}
		switch head {
		case "":
			c.handleIndex(w, r)
		case "services":
			c.handleServices(w, r, tail, principal)
		case "files":
			c.handleFiles(w, r, tail)
		default:
			rest.WriteError(w, core.ErrNotFound("resource", head))
		}
	})
}

func (c *Container) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		rest.MethodNotAllowed(w, http.MethodGet)
		return
	}
	services := c.Services()
	if rest.WantsHTML(r) {
		c.renderIndex(w, services)
		return
	}
	rest.WriteJSON(w, http.StatusOK, map[string]any{
		"container": "everest",
		"services":  services,
	})
}

func (c *Container) handleServices(w http.ResponseWriter, r *http.Request, path string, principal core.Principal) {
	name, tail := rest.ShiftPath(path)
	if name == "" {
		rest.WriteError(w, core.ErrBadRequest("missing service name"))
		return
	}
	if c.guard != nil {
		if err := c.guard.Authorize(principal, name); err != nil {
			rest.WriteError(w, err)
			return
		}
	}
	switch {
	case tail == "/":
		c.handleService(w, r, name, principal)
	default:
		sub, rest2 := rest.ShiftPath(tail)
		if sub != "jobs" {
			rest.WriteError(w, core.ErrNotFound("resource", sub))
			return
		}
		jobID, _ := rest.ShiftPath(rest2)
		if jobID == "" {
			c.handleJobList(w, r, name)
			return
		}
		c.handleJob(w, r, name, jobID)
	}
}

// handleService implements the service resource: GET returns the service
// description, POST submits a new request and creates a job.
func (c *Container) handleService(w http.ResponseWriter, r *http.Request, name string, principal core.Principal) {
	switch r.Method {
	case http.MethodGet:
		if rest.WantsHTML(r) {
			desc, err := c.Describe(name)
			if err != nil {
				rest.WriteError(w, err)
				return
			}
			c.renderService(w, desc)
			return
		}
		// Serve the precomputed immutable representation: no per-request
		// encoding, and If-None-Match revalidations collapse to a 304.
		body, etag, err := c.DescribeCached(name)
		if err != nil {
			rest.WriteError(w, err)
			return
		}
		if body == nil {
			desc, err := c.Describe(name)
			if err != nil {
				rest.WriteError(w, err)
				return
			}
			rest.WriteJSON(w, http.StatusOK, desc)
			return
		}
		rest.ServeJSONBytes(w, r, etag, body)
	case http.MethodPost:
		var inputs core.Values
		if err := rest.ReadJSON(r, &inputs); err != nil {
			rest.WriteError(w, err)
			return
		}
		job, err := c.jobs.SubmitCtx(r.Context(), name, inputs, principal.Effective())
		if err != nil {
			rest.WriteError(w, err)
			return
		}
		// Synchronous mode: if the client asked to wait and the job
		// finishes in time, the completed representation (state DONE)
		// is returned immediately, as Section 2 of the paper allows.
		if waitParam := r.URL.Query().Get("wait"); waitParam != "" {
			if d, err := time.ParseDuration(waitParam); err == nil && d > 0 {
				if j, err := c.jobs.Wait(r.Context(), job.ID, d); err == nil {
					job = j
				}
			}
		}
		w.Header().Set("Location", c.JobURI(name, job.ID))
		rest.WriteJSON(w, http.StatusCreated, c.decorate(job))
	default:
		rest.MethodNotAllowed(w, http.MethodGet, http.MethodPost)
	}
}

func (c *Container) handleJobList(w http.ResponseWriter, r *http.Request, service string) {
	if r.Method != http.MethodGet {
		rest.MethodNotAllowed(w, http.MethodGet)
		return
	}
	if _, err := c.Describe(service); err != nil {
		rest.WriteError(w, err)
		return
	}
	jobs := c.jobs.List(service)
	for _, j := range jobs {
		c.decorate(j)
	}
	rest.WriteJSON(w, http.StatusOK, map[string]any{"jobs": jobs})
}

// handleJob implements the job resource: GET returns status and results,
// DELETE cancels the job or deletes its data.
func (c *Container) handleJob(w http.ResponseWriter, r *http.Request, service, jobID string) {
	switch r.Method {
	case http.MethodGet:
		job, err := c.jobs.Get(jobID)
		if err != nil {
			rest.WriteError(w, err)
			return
		}
		if job.Service != service {
			rest.WriteError(w, core.ErrNotFound("job", jobID))
			return
		}
		if waitParam := r.URL.Query().Get("wait"); waitParam != "" && !job.State.Terminal() {
			if d, err := time.ParseDuration(waitParam); err == nil && d > 0 {
				if j, err := c.jobs.Wait(r.Context(), jobID, d); err == nil {
					job = j
				}
			}
		}
		if rest.WantsHTML(r) {
			c.renderJob(w, c.decorate(job))
			return
		}
		rest.WriteJSON(w, http.StatusOK, c.decorate(job))
	case http.MethodDelete:
		job, err := c.jobs.Get(jobID)
		if err != nil {
			rest.WriteError(w, err)
			return
		}
		if job.Service != service {
			rest.WriteError(w, core.ErrNotFound("job", jobID))
			return
		}
		job, err = c.jobs.Delete(jobID)
		if err != nil {
			rest.WriteError(w, err)
			return
		}
		rest.WriteJSON(w, http.StatusOK, c.decorate(job))
	default:
		rest.MethodNotAllowed(w, http.MethodGet, http.MethodDelete)
	}
}

// handleFiles implements the file resource: GET returns the file data,
// fully or partially (HTTP range requests are honoured, matching the
// paper's "retrieved fully or partially via the GET method").
func (c *Container) handleFiles(w http.ResponseWriter, r *http.Request, path string) {
	id, _ := rest.ShiftPath(path)
	switch {
	case id == "" && r.Method == http.MethodPost:
		fileID, err := c.files.Put(http.MaxBytesReader(w, r.Body, maxFileBytes), "")
		if err != nil {
			rest.WriteError(w, err)
			return
		}
		uri := c.fileURI(fileID)
		w.Header().Set("Location", uri)
		rest.WriteJSON(w, http.StatusCreated, map[string]string{
			"id":  fileID,
			"uri": uri,
			"ref": core.FileRef(uri),
		})
	case id == "":
		rest.MethodNotAllowed(w, http.MethodPost)
	case r.Method == http.MethodGet:
		f, _, err := c.files.Open(id)
		if err != nil {
			rest.WriteError(w, err)
			return
		}
		defer f.Close()
		w.Header().Set("Content-Type", "application/octet-stream")
		http.ServeContent(w, r, id, time.Time{}, f)
	case r.Method == http.MethodDelete:
		if err := c.files.Delete(id); err != nil {
			rest.WriteError(w, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	default:
		rest.MethodNotAllowed(w, http.MethodGet, http.MethodDelete)
	}
}
