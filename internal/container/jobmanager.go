package container

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"runtime/debug"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mathcloud/internal/adapter"
	"mathcloud/internal/core"
	"mathcloud/internal/journal"
	"mathcloud/internal/obs"
	"mathcloud/internal/rest"
)

// jobRecord is the container's internal state for one job.
type jobRecord struct {
	mu     sync.Mutex
	job    *core.Job
	cancel context.CancelFunc
	done   chan struct{}
	// memoKey marks the leader of a singleflight execution: when this job
	// reaches a terminal state it settles the flight — completes coalesced
	// followers and, on success, populates the computation cache.
	memoKey string
	// coalesced marks a follower: a job that never entered the queue and is
	// completed by its flight's leader.  Followers stay out of the queue
	// gauges.
	coalesced bool
	// sweep links a child job back to the sweep that spawned it; nil for
	// ordinary jobs.  Immutable once the record is published.  State
	// transitions notify the sweep OUTSIDE rec.mu — a sweep may take its
	// own lock and then rec.mu (pump inspects children), so the reverse
	// order would deadlock.
	sweep *sweepRecord
	// ttl is the job's destruction TTL (UWS-style): when it reaches a
	// terminal state, Destruction = Finished + ttl and the reaper purges it
	// past that instant.  Zero keeps the job until an explicit DELETE.
	// Immutable once the record is published.  Sweep children carry zero —
	// retention is governed by the sweep's own TTL.
	ttl time.Duration
	// queued tracks whether the record currently occupies a queue slot, so
	// the queue-depth gauge stays exact across every exit path (worker
	// pickup, cancel-while-queued, enqueue rejection) without caring which
	// path wins the race.
	queued atomic.Bool
	// snap caches the last published snapshot of the job.  Mutators clear
	// it (under mu); readers rebuild it lazily, so the status-polling hot
	// path costs one atomic load and a shallow copy instead of a mutex
	// acquisition and a deep clone per poll.
	snap atomic.Pointer[core.Job]
}

// snapshot returns a copy of the job safe for decoration and serialization.
// The cached clone is immutable once published; each caller receives its own
// shallow copy so per-request fields (URI) can be filled in without sharing.
func (r *jobRecord) snapshot() *core.Job {
	snap := r.snap.Load()
	if snap == nil {
		r.mu.Lock()
		snap = r.job.Clone()
		r.snap.Store(snap)
		r.mu.Unlock()
	}
	out := *snap
	return &out
}

// invalidate drops the cached snapshot.  Callers must hold r.mu and call it
// after every mutation of r.job, so readers never observe a stale clone
// beyond the natural raciness of concurrent polling.
func (r *jobRecord) invalidate() { r.snap.Store(nil) }

// jobShardCount is the number of lock stripes in the job registry.  A
// power of two well above typical core counts keeps the collision
// probability of concurrent Submit/Status/Delete calls negligible.
const jobShardCount = 32

// jobShard is one lock stripe of the job registry.
type jobShard struct {
	mu   sync.RWMutex
	jobs map[string]*jobRecord
}

// JobManager manages the processing of incoming requests: requests are
// converted into asynchronous jobs and placed in a queue served by a
// configurable pool of handler goroutines, exactly as in the paper's
// container architecture.  The job registry is lock-striped across
// jobShardCount shards keyed by job-ID hash, so status polls from many
// concurrent clients do not serialize on one global mutex.
type JobManager struct {
	c     *Container
	queue chan *jobRecord
	// deadline is the container-wide default execution deadline; a
	// service description's Deadline field overrides it per service.
	deadline time.Duration
	// memo is the computation cache for deterministic services (nil when
	// disabled): repeat submissions return DONE instantly from cached
	// outputs, and concurrent identical submissions coalesce onto one
	// adapter execution.
	memo *memoTable
	// batchMax bounds adapter micro-batching: a worker drains up to this
	// many queued jobs of one batch-capable service into a single
	// InvokeBatch call.  Values below 2 disable batching.
	batchMax int
	// maxSweepWidth caps the number of child jobs one sweep may expand to
	// (0 means unlimited).
	maxSweepWidth int
	// sweeps tracks the active parameter sweeps and their not-yet-enqueued
	// children.
	sweeps sweepManager
	// jobTTL is the container-wide default destruction TTL of terminal
	// jobs and sweeps (0 = keep until DELETE).
	jobTTL time.Duration

	shards [jobShardCount]jobShard

	// backlog holds recovered WAITING jobs that did not fit the queue at
	// Recover time; workers drain it as capacity frees up, mirroring the
	// sweep pending pump.  backlogCount is the lock-free fast-path gate.
	backlogMu      sync.Mutex
	backlog        []*jobRecord
	backlogCount   atomic.Int64
	backlogPumping atomic.Bool

	// workers and running feed the /load report: pool size vs jobs
	// currently executing, alongside the queue occupancy.
	workers int
	running atomic.Int64

	wg        sync.WaitGroup
	closing   chan struct{}
	closeOnce sync.Once
	// baseCtx parents every job context, so Close cancels jobs that a
	// worker dequeues concurrently with shutdown.
	baseCtx    context.Context
	baseCancel context.CancelFunc
}

// jobManagerConfig carries the construction parameters of a JobManager;
// zero values select the documented defaults.
type jobManagerConfig struct {
	workers       int
	queueSize     int
	deadline      time.Duration
	memoEntries   int
	memoBytes     int64
	batchMax      int
	maxSweepWidth int
	jobTTL        time.Duration
}

func newJobManager(c *Container, cfg jobManagerConfig) *JobManager {
	workers := cfg.workers
	if workers <= 0 {
		workers = 4
	}
	queueSize := cfg.queueSize
	if queueSize <= 0 {
		queueSize = 1024
	}
	baseCtx, baseCancel := context.WithCancel(context.Background())
	jm := &JobManager{
		c:             c,
		workers:       workers,
		queue:         make(chan *jobRecord, queueSize),
		deadline:      cfg.deadline,
		batchMax:      cfg.batchMax,
		maxSweepWidth: cfg.maxSweepWidth,
		jobTTL:        cfg.jobTTL,
		closing:       make(chan struct{}),
		baseCtx:       baseCtx,
		baseCancel:    baseCancel,
	}
	jm.sweeps.sweeps = make(map[string]*sweepRecord)
	if cfg.memoEntries > 0 && cfg.memoBytes > 0 {
		jm.memo = newMemoTable(cfg.memoEntries, cfg.memoBytes)
	}
	for i := range jm.shards {
		jm.shards[i].jobs = make(map[string]*jobRecord)
	}
	jm.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go jm.worker()
	}
	jm.wg.Add(1)
	go jm.reaper()
	return jm
}

// shardIndex returns the index of the lock stripe owning the given job ID
// (FNV-1a hash).  Bulk submitters group records by index to take each
// stripe's lock once.
func (jm *JobManager) shardIndex(id string) int {
	h := uint32(2166136261)
	for i := 0; i < len(id); i++ {
		h = (h ^ uint32(id[i])) * 16777619
	}
	return int(h % jobShardCount)
}

// shard returns the lock stripe owning the given job ID.
func (jm *JobManager) shard(id string) *jobShard {
	return &jm.shards[jm.shardIndex(id)]
}

// allRecords snapshots the record pointers of every shard.
func (jm *JobManager) allRecords() []*jobRecord {
	var recs []*jobRecord
	for i := range jm.shards {
		sh := &jm.shards[i]
		sh.mu.RLock()
		for _, rec := range sh.jobs {
			recs = append(recs, rec)
		}
		sh.mu.RUnlock()
	}
	return recs
}

// Submit creates a job for the given service request and enqueues it.
func (jm *JobManager) Submit(serviceName string, inputs core.Values, owner string) (*core.Job, error) {
	return jm.SubmitCtx(context.Background(), serviceName, inputs, owner)
}

// SubmitCtx is Submit with a caller context: the request ID established at
// HTTP ingress (or by an in-process invoker) is recorded as the job's
// TraceID and re-enters the context of every outbound call the job makes,
// so a workflow's fan-out across services shares one correlation ID.  A
// context without an ID gets a fresh one.
func (jm *JobManager) SubmitCtx(ctx context.Context, serviceName string, inputs core.Values, owner string) (*core.Job, error) {
	return jm.SubmitTTL(ctx, serviceName, inputs, owner, 0)
}

// SubmitTTL is SubmitCtx with an explicit destruction TTL (the UWS-style
// ?destruction= request field): the terminal job is purged together with its
// file resources this long after it finishes.  Zero inherits the container
// default.
func (jm *JobManager) SubmitTTL(ctx context.Context, serviceName string, inputs core.Values, owner string, ttl time.Duration) (*core.Job, error) {
	if ttl <= 0 {
		ttl = jm.jobTTL
	}
	svc, err := jm.c.service(serviceName)
	if err != nil {
		return nil, err
	}
	inputs = svc.desc.ApplyDefaults(inputs)
	if err := svc.desc.ValidateInputs(inputs); err != nil {
		return nil, core.ErrBadRequest("%v", err)
	}
	_, trace := obs.EnsureRequestID(ctx)

	// Result-reuse gate.  Only services that declared themselves
	// deterministic pay for key derivation; everything else goes straight
	// to the queue, byte-for-byte as before.
	memoKey, memoable := jm.memoKey(svc, inputs)
	if memoable {
		if outputs, ok := jm.memo.lookup(memoKey); ok {
			metMemoHits.Inc()
			return jm.publishCachedJob(ctx, serviceName, inputs, owner, trace, outputs, ttl)
		}
	}

	now := time.Now()
	rec := &jobRecord{
		job: &core.Job{
			ID:        jm.c.newID(),
			Service:   serviceName,
			State:     core.StateWaiting,
			Inputs:    inputs,
			Owner:     owner,
			Created:   now,
			Submitted: now,
			TraceID:   trace,
		},
		done: make(chan struct{}),
		ttl:  ttl,
	}
	select {
	case <-jm.closing:
		return nil, core.ErrUnavailable(0, "container is shutting down")
	default:
	}
	// Join or lead the singleflight before the record becomes visible, so
	// the coalescing flags are immutable once any other goroutine can see
	// the record.
	follower := false
	if memoable {
		if leader := jm.memo.joinOrLead(memoKey, rec); leader {
			rec.memoKey = memoKey
			metMemoMisses.Inc()
		} else {
			rec.coalesced = true
			follower = true
		}
	}
	sh := jm.shard(rec.job.ID)
	sh.mu.Lock()
	sh.jobs[rec.job.ID] = rec
	sh.mu.Unlock()

	if follower {
		// Coalesced: an identical execution is already in flight.  The job
		// is registered and will be completed by the flight's leader; it
		// never occupies a queue slot or a worker.
		metMemoCoalesced.Inc()
		metJobsSubmitted.Inc()
		jm.logJob(rec)
		jm.notifyJob(rec)
		// Close may have swept the registry before the insert above; the
		// final sweep of Close cancels WAITING followers, and a leader
		// settling concurrently skips terminal records, so no waiter is
		// left hanging either way.
		select {
		case <-jm.closing:
			jm.cancelPending(rec)
		default:
		}
		return rec.snapshot(), nil
	}

	// Mark the record queued before the send: a worker may dequeue it the
	// instant it lands, and the pickup path balances the gauge through the
	// same flag.
	rec.queued.Store(true)
	metJobsWaiting.Add(1)
	select {
	case jm.queue <- rec:
		metJobsSubmitted.Inc()
		// The accept is journaled before SubmitCtx returns, so every job a
		// client was ever told about survives a crash.
		jm.logJob(rec)
		jm.notifyJob(rec)
		if logger := obs.Logger(); logger.Enabled(ctx, slog.LevelInfo) {
			logger.LogAttrs(ctx, slog.LevelInfo, "job submitted",
				slog.String("request_id", trace),
				slog.String("job_id", rec.job.ID),
				slog.String("service", serviceName))
		}
		// Re-check shutdown: Close may have swept the job map before the
		// insert above, in which case no reader will ever drain this
		// record — cancel it here so its waiters are released.
		select {
		case <-jm.closing:
			jm.cancelPending(rec)
		default:
		}
		return rec.snapshot(), nil
	default:
		if rec.queued.CompareAndSwap(true, false) {
			metJobsWaiting.Add(-1)
		}
		sh.mu.Lock()
		delete(sh.jobs, rec.job.ID)
		sh.mu.Unlock()
		metQueueRejections.Inc()
		// A leader that never entered the queue must still resolve its
		// flight: followers that joined in the meantime fail with the same
		// overload error instead of waiting forever.
		if rec.memoKey != "" {
			jm.failFlight(rec.memoKey, "container: coalesced execution was rejected: job queue is full")
		}
		// A full queue is a transient overload, not a request conflict:
		// answer 503 with a retry hint so client retry policies absorb it.
		return nil, core.ErrUnavailable(queueFullRetryAfter, "job queue is full")
	}
}

// queueFullRetryAfter is the Retry-After hint advertised when the job queue
// is full: long enough for the handler pool to make progress, short enough
// that a retrying client observes free capacity promptly.
const queueFullRetryAfter = time.Second

// Get returns a snapshot of the job.
func (jm *JobManager) Get(id string) (*core.Job, error) {
	rec, err := jm.record(id)
	if err != nil {
		return nil, err
	}
	return rec.snapshot(), nil
}

func (jm *JobManager) record(id string) (*jobRecord, error) {
	sh := jm.shard(id)
	sh.mu.RLock()
	rec, ok := sh.jobs[id]
	sh.mu.RUnlock()
	if !ok {
		return nil, core.ErrNotFound("job", id)
	}
	return rec, nil
}

// Wait blocks until the job reaches a terminal state, the timeout elapses
// or ctx is cancelled, returning the latest snapshot.
func (jm *JobManager) Wait(ctx context.Context, id string, timeout time.Duration) (*core.Job, error) {
	rec, err := jm.record(id)
	if err != nil {
		return nil, err
	}
	var timer <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		timer = t.C
	}
	select {
	case <-rec.done:
	case <-timer:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return rec.snapshot(), nil
}

// Delete implements the DELETE method of the job resource: it cancels a
// live job, or destroys the record and its subordinate file resources if
// the job is already terminal.
func (jm *JobManager) Delete(id string) (*core.Job, error) {
	rec, err := jm.record(id)
	if err != nil {
		return nil, err
	}
	rec.mu.Lock()
	state := rec.job.State
	cancel := rec.cancel
	if state == core.StateWaiting {
		// Cancel before a worker picks the job up.
		rec.job.State = core.StateCancelled
		rec.job.Finished = time.Now()
		if rec.ttl > 0 {
			rec.job.Destruction = rec.job.Finished.Add(rec.ttl)
		}
		rec.invalidate()
		close(rec.done)
		if rec.queued.CompareAndSwap(true, false) {
			metJobsWaiting.Add(-1)
		}
		metJobsCompleted.With("cancelled").Inc()
	}
	rec.mu.Unlock()

	switch state {
	case core.StateWaiting:
		// A cancelled leader settles its flight here: followers fail with
		// a cancellation error rather than waiting on a job that will
		// never run.
		jm.settleFlight(rec)
		if sw := rec.sweep; sw != nil {
			sw.childTransition(core.StateWaiting, core.StateCancelled, "")
		}
		jm.logJobEnd(rec)
		jm.notifyJob(rec)
		return rec.snapshot(), nil
	case core.StateRunning:
		if cancel != nil {
			cancel()
		}
		return rec.snapshot(), nil
	default:
		// Terminal: destroy the job resource and its files.  The map
		// removal decides the winner among racing deletes, so the purge
		// runs exactly once and later deletes observe 404.
		sh := jm.shard(id)
		sh.mu.Lock()
		_, present := sh.jobs[id]
		delete(sh.jobs, id)
		sh.mu.Unlock()
		if !present {
			return nil, core.ErrNotFound("job", id)
		}
		// The purge is journaled before the memo entry and files go, so a
		// crash mid-destruction replays the purge rather than resurrecting
		// a half-deleted job.  Replayed purges are idempotent.
		jm.c.logRecord(journal.KindJobPurge, journal.JobPurgeRecord{ID: id})
		// The cached entry backed by this job references its files; purge
		// it with them so hits never return dangling URIs.
		if jm.memo != nil {
			jm.memo.dropJob(id)
		}
		jm.c.files.DeleteOwnedBy(id)
		return rec.snapshot(), nil
	}
}

// List returns snapshots of jobs for one service (or all, if service is
// empty), newest first.
func (jm *JobManager) List(service string) []*core.Job {
	jobs, _ := jm.ListPage(service, "", 0, 0)
	return jobs
}

// ListPage returns one page of job snapshots for a service (or all services
// when service is empty), optionally filtered by state, newest first, along
// with the total number of matches before paging.  limit <= 0 means no
// limit; offset skips that many matches from the newest end.  Campaign-scale
// clients page through a sweep's thousands of children instead of pulling
// one monolithic list.
func (jm *JobManager) ListPage(service string, state core.JobState, limit, offset int) ([]*core.Job, int) {
	var out []*core.Job
	for _, rec := range jm.allRecords() {
		// Service is immutable after Submit publishes the record, so the
		// filter avoids cloning jobs of other services.
		if service != "" && rec.job.Service != service {
			continue
		}
		snap := rec.snapshot()
		if state != "" && snap.State != state {
			continue
		}
		out = append(out, snap)
	}
	sort.Slice(out, func(i, k int) bool { return out[i].Created.After(out[k].Created) })
	total := len(out)
	if offset > 0 {
		if offset >= len(out) {
			out = nil
		} else {
			out = out[offset:]
		}
	}
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out, total
}

// Close stops the worker pool after cancelling running jobs and drains the
// queue, so every accepted job reaches a terminal state and every
// concurrent Wait call unblocks.  After Close returns, no job is left in
// WAITING or RUNNING.
func (jm *JobManager) Close() {
	jm.closeOnce.Do(func() { close(jm.closing) })
	// Cancel the parent of every job context: this reaches running jobs
	// and any job a worker dequeues concurrently with this shutdown.
	jm.baseCancel()
	// Drain jobs still sitting in the queue to CANCELLED.  Workers may be
	// dequeuing concurrently, but each record goes to exactly one reader.
	for {
		select {
		case rec := <-jm.queue:
			jm.cancelPending(rec)
			continue
		default:
		}
		break
	}
	jm.wg.Wait()
	// Final sweep: a Submit racing this shutdown can enqueue a record
	// after both the workers and the drain loop have stopped reading.
	for _, rec := range jm.allRecords() {
		jm.cancelPending(rec)
	}
}

// cancelPending moves a job that never reached a worker to CANCELLED and
// releases its waiters.  Running and terminal jobs are left to their worker
// (done is closed exactly once, when the terminal state is set).  A
// cancelled singleflight leader settles its flight so coalesced followers
// are released too.
func (jm *JobManager) cancelPending(rec *jobRecord) {
	rec.mu.Lock()
	if rec.job.State != core.StateWaiting {
		rec.mu.Unlock()
		return
	}
	rec.job.State = core.StateCancelled
	rec.job.Finished = time.Now()
	if rec.ttl > 0 {
		rec.job.Destruction = rec.job.Finished.Add(rec.ttl)
	}
	rec.invalidate()
	close(rec.done)
	if rec.queued.CompareAndSwap(true, false) {
		metJobsWaiting.Add(-1)
	}
	metJobsCompleted.With("cancelled").Inc()
	rec.mu.Unlock()
	jm.settleFlight(rec)
	if sw := rec.sweep; sw != nil {
		sw.childTransition(core.StateWaiting, core.StateCancelled, "")
	}
	jm.logJobEnd(rec)
	jm.notifyJob(rec)
}

// cancelJob cancels one live job without destroying its record: queued jobs
// move straight to CANCELLED, running jobs have their context cancelled and
// land wherever their worker puts them.  Terminal jobs are left alone — this
// is the cancel half of Delete, which whole-sweep cancellation applies to
// every child without tearing down finished results.
func (jm *JobManager) cancelJob(rec *jobRecord) {
	rec.mu.Lock()
	state := rec.job.State
	cancel := rec.cancel
	rec.mu.Unlock()
	switch state {
	case core.StateWaiting:
		// cancelPending re-checks the state under the lock, so losing a
		// race against a worker pickup here is harmless.
		jm.cancelPending(rec)
	case core.StateRunning:
		if cancel != nil {
			cancel()
		}
	}
}

func (jm *JobManager) worker() {
	defer jm.wg.Done()
	// spill holds a job pulled off the queue by drainBatch that belongs to a
	// different service: the worker runs it next instead of re-enqueueing,
	// so draining never starves or reorders foreign jobs behind the batch.
	var spill *jobRecord
	for {
		var rec *jobRecord
		if spill != nil {
			rec, spill = spill, nil
		} else {
			select {
			case <-jm.closing:
				return
			case rec = <-jm.queue:
			}
		}
		if svc, batch := jm.drainBatch(rec, &spill); batch != nil {
			jm.processBatch(svc, batch)
		} else {
			jm.process(rec)
		}
		// A finished job may have freed queue capacity for sweep children
		// that did not fit at submission time, or for recovered jobs still
		// in the restart backlog.
		jm.sweeps.pump()
		jm.pumpBacklog()
	}
}

// drainBatch collects queued jobs of rec's service into one micro-batch of
// up to jm.batchMax members.  It returns (nil, nil) when batching does not
// apply — batching disabled, service gone or not declared "batch", adapter
// without InvokeBatch, or no second job available — in which case the caller
// processes rec singly.  Draining stops at the first job of a different
// service, which is handed back through spill.
func (jm *JobManager) drainBatch(rec *jobRecord, spill **jobRecord) (*service, []*jobRecord) {
	if jm.batchMax < 2 {
		return nil, nil
	}
	// Service is immutable after Submit publishes the record.
	svc, err := jm.c.service(rec.job.Service)
	if err != nil || !svc.desc.Batch {
		return nil, nil
	}
	if _, ok := svc.adapter.(adapter.BatchInterface); !ok {
		return nil, nil
	}
	batch := []*jobRecord{rec}
drain:
	for len(batch) < jm.batchMax {
		select {
		case next := <-jm.queue:
			if next.job.Service == rec.job.Service {
				batch = append(batch, next)
			} else {
				*spill = next
				break drain
			}
		default:
			break drain
		}
	}
	if len(batch) == 1 {
		return nil, nil
	}
	return svc, batch
}

// runningJob carries the per-execution state of one job from its
// WAITING→RUNNING transition to its terminal state.  It factors the single
// and micro-batched worker paths over one set of lifecycle helpers: beginJob
// → prepare → (adapter) → complete/finish, with cleanup and recoverPanic as
// deferred guards.
type runningJob struct {
	jm       *JobManager
	rec      *jobRecord
	ctx      context.Context
	deadline time.Duration
	jobID    string
	service  string
	owner    string
	trace    string
	inputs   core.Values
	workDir  string
	req      *adapter.Request
}

// beginJob moves a dequeued job to RUNNING and captures the fields its
// execution needs, returning nil when the job is no longer WAITING
// (cancelled while queued).  ctx must already wrap the execution deadline;
// cancel is retained on the record so DELETE can abort the run.
func (jm *JobManager) beginJob(rec *jobRecord, ctx context.Context, cancel context.CancelFunc, deadline time.Duration) *runningJob {
	rec.mu.Lock()
	if rec.job.State != core.StateWaiting {
		// Cancelled while queued.
		rec.mu.Unlock()
		return nil
	}
	rec.job.State = core.StateRunning
	rec.job.Started = time.Now()
	rec.job.QueueWait = core.Duration(rec.job.Started.Sub(rec.job.Created))
	rec.cancel = cancel
	rec.invalidate()
	rj := &runningJob{
		jm:       jm,
		rec:      rec,
		deadline: deadline,
		jobID:    rec.job.ID,
		service:  rec.job.Service,
		owner:    rec.job.Owner,
		trace:    rec.job.TraceID,
		inputs:   rec.job.Inputs.Clone(),
	}
	queueWait := rec.job.QueueWait.Std()
	rec.mu.Unlock()

	if rec.queued.CompareAndSwap(true, false) {
		metJobsWaiting.Add(-1)
	}
	metJobsRunning.Add(1)
	jm.running.Add(1)
	metQueueWait.Observe(queueWait.Seconds())
	// Re-enter the job's trace into the execution context: every outbound
	// call the adapter makes (workflow block invocations, file staging)
	// then carries the ingress X-Request-ID.
	if rj.trace != "" {
		ctx = obs.WithRequestID(ctx, rj.trace)
	}
	rj.ctx = ctx
	if sw := rec.sweep; sw != nil {
		sw.childTransition(core.StateWaiting, core.StateRunning, "")
	}
	if jm.c.journal != nil {
		jm.c.logRecord(journal.KindJobStart, journal.JobStartRecord{ID: rj.jobID, Started: rec.snapshot().Started})
	}
	jm.notifyJob(rec)
	return rj
}

// finish records the job's terminal state, settles its singleflight (a DONE
// leader populates the computation cache and completes coalesced followers)
// and notifies its sweep.  It is idempotent: the first caller wins, so the
// panic guard can invoke it over an already-finished job.
func (rj *runningJob) finish(outputs core.Values, err error) {
	rec := rj.rec
	rec.mu.Lock()
	if rec.job.State.Terminal() {
		rec.mu.Unlock()
		return
	}
	rec.job.Finished = time.Now()
	rec.job.RunTime = core.Duration(rec.job.Finished.Sub(rec.job.Started))
	switch {
	case err == nil:
		rec.job.State = core.StateDone
		rec.job.Outputs = outputs
	case errors.Is(rj.ctx.Err(), context.DeadlineExceeded):
		// The job overran its execution deadline: a fault of the
		// job, not a client cancellation.
		rec.job.State = core.StateError
		rec.job.Error = fmt.Sprintf("container: job exceeded its %s execution deadline", rj.deadline)
		metDeadlineOverruns.Inc()
	case rj.ctx.Err() != nil:
		rec.job.State = core.StateCancelled
	default:
		rec.job.State = core.StateError
		rec.job.Error = err.Error()
	}
	if rec.ttl > 0 {
		rec.job.Destruction = rec.job.Finished.Add(rec.ttl)
	}
	state := rec.job.State
	errMsg := rec.job.Error
	runTime := rec.job.RunTime.Std()
	queueWait := rec.job.QueueWait.Std()
	rec.invalidate()
	close(rec.done)
	rec.mu.Unlock()

	metJobsRunning.Add(-1)
	rj.jm.running.Add(-1)
	metRunTime.Observe(runTime.Seconds())
	metJobsCompleted.With(strings.ToLower(string(state))).Inc()
	if logger := obs.Logger(); logger.Enabled(rj.ctx, slog.LevelInfo) {
		logger.LogAttrs(rj.ctx, slog.LevelInfo, "job finished",
			slog.String("request_id", rj.trace),
			slog.String("job_id", rj.jobID),
			slog.String("service", rj.service),
			slog.String("state", string(state)),
			slog.Duration("queue_wait", queueWait),
			slog.Duration("run_time", runTime))
	}
	rj.jm.settleFlight(rec)
	if sw := rec.sweep; sw != nil {
		sw.childTransition(core.StateRunning, state, errMsg)
	}
	rj.jm.logJobEnd(rec)
	rj.jm.notifyJob(rec)
}

// prepare creates the job's scratch directory, stages file inputs into it
// and assembles the adapter request.  The directory is created lazily: a
// job with no file inputs whose adapter reports (WorkDirCapability) that it
// never reads WorkDir skips the create/remove round trip entirely — for
// short in-process computations those two filesystem operations dominate
// the whole job, and a wide campaign pays them per child.
func (rj *runningJob) prepare(ad adapter.Interface) error {
	needDir := hasFileInputs(rj.inputs)
	if !needDir {
		if cap, ok := ad.(adapter.WorkDirCapability); !ok || cap.NeedsWorkDir() {
			needDir = true
		}
	}
	var files map[string]string
	if needDir {
		workDir, err := os.MkdirTemp(rj.jm.c.workRoot, "job-"+rj.jobID[:8]+"-")
		if err != nil {
			return fmt.Errorf("container: create work dir: %w", err)
		}
		rj.workDir = workDir
		if files, err = rj.jm.stageInputs(rj.ctx, rj.inputs, workDir); err != nil {
			return err
		}
	}
	rec := rj.rec
	progress := func(msg string) {
		rec.mu.Lock()
		defer rec.mu.Unlock()
		if len(rec.job.Log) < 1000 {
			rec.job.Log = append(rec.job.Log, msg)
			rec.invalidate()
		}
	}
	setBlockState := func(block string, state core.JobState) {
		rec.mu.Lock()
		defer rec.mu.Unlock()
		if rec.job.Blocks == nil {
			rec.job.Blocks = make(map[string]core.JobState)
		}
		rec.job.Blocks[block] = state
		rec.invalidate()
	}
	rj.req = &adapter.Request{
		JobID:         rj.jobID,
		Service:       rj.service,
		Owner:         rj.owner,
		Inputs:        rj.inputs,
		Files:         files,
		WorkDir:       rj.workDir,
		Progress:      progress,
		SetBlockState: setBlockState,
	}
	return nil
}

// cleanup removes the job's scratch directory, if prepare created one.
func (rj *runningJob) cleanup() {
	if rj.workDir != "" {
		_ = os.RemoveAll(rj.workDir)
	}
}

// complete publishes the adapter result and lands the job in its terminal
// state.
func (rj *runningJob) complete(svc *service, res *adapter.Result, err error) {
	if err != nil {
		rj.finish(nil, err)
		return
	}
	outputs, err := rj.jm.publishOutputs(res, rj.jobID)
	if err != nil {
		rj.finish(nil, err)
		return
	}
	if err := svc.desc.ValidateOutputs(outputs); err != nil {
		rj.finish(nil, fmt.Errorf("container: adapter produced invalid outputs: %w", err))
		return
	}
	rj.finish(outputs, nil)
}

// recoverPanic is the deferred panic guard of the worker paths: a panicking
// adapter (or staging/publishing step) marks the job ERROR with the captured
// stack instead of killing the worker goroutine and wedging every waiter.
func (rj *runningJob) recoverPanic() {
	if r := recover(); r != nil {
		metWorkerPanics.Inc()
		rj.finish(nil, fmt.Errorf("container: adapter panic: %v\n%s", r, panicStack()))
	}
}

// process runs one job through its adapter.
func (jm *JobManager) process(rec *jobRecord) {
	// Resolve the service first: its description may override the
	// container's default execution deadline.  Service is immutable after
	// Submit publishes the record.
	serviceName := rec.job.Service
	svc, svcErr := jm.c.service(serviceName)
	deadline := jm.deadline
	if svc != nil && svc.desc.Deadline > 0 {
		deadline = svc.desc.Deadline.Std()
	}
	var ctx context.Context
	var cancel context.CancelFunc
	if deadline > 0 {
		ctx, cancel = context.WithTimeout(jm.baseCtx, deadline)
	} else {
		ctx, cancel = context.WithCancel(jm.baseCtx)
	}
	defer cancel()

	rj := jm.beginJob(rec, ctx, cancel, deadline)
	if rj == nil {
		return
	}
	defer rj.recoverPanic()
	defer rj.cleanup()
	if svcErr != nil {
		rj.finish(nil, svcErr)
		return
	}
	if err := rj.prepare(svc.adapter); err != nil {
		rj.finish(nil, err)
		return
	}
	res, err := svc.adapter.Invoke(rj.ctx, rj.req)
	rj.complete(svc, res, err)
}

// processBatch runs several queued jobs of one batch-capable service through
// a single InvokeBatch call.  The batch shares one execution deadline; each
// member keeps its own cancellable child context, so DELETE of one member
// cancels that member alone.  A failed item fails only its job; an error (or
// panic) of the batch as a whole fails every member that has not finished.
func (jm *JobManager) processBatch(svc *service, recs []*jobRecord) {
	deadline := jm.deadline
	if svc.desc.Deadline > 0 {
		deadline = svc.desc.Deadline.Std()
	}
	var batchCtx context.Context
	var batchCancel context.CancelFunc
	if deadline > 0 {
		batchCtx, batchCancel = context.WithTimeout(jm.baseCtx, deadline)
	} else {
		batchCtx, batchCancel = context.WithCancel(jm.baseCtx)
	}
	defer batchCancel()

	// Begin every member; jobs cancelled while queued drop out here.
	active := make([]*runningJob, 0, len(recs))
	for _, rec := range recs {
		ctx, cancel := context.WithCancel(batchCtx)
		rj := jm.beginJob(rec, ctx, cancel, deadline)
		if rj == nil {
			cancel()
			continue
		}
		active = append(active, rj)
	}
	if len(active) == 0 {
		return
	}
	defer func() {
		if r := recover(); r != nil {
			metWorkerPanics.Inc()
			err := fmt.Errorf("container: adapter panic: %v\n%s", r, panicStack())
			// finish is idempotent: members that already landed keep their
			// state, the rest go to ERROR.
			for _, rj := range active {
				rj.finish(nil, err)
			}
		}
	}()
	defer func() {
		for _, rj := range active {
			rj.cleanup()
		}
	}()

	// Stage every member; a member whose staging fails drops out of the
	// invocation without affecting the rest.
	ready := make([]*runningJob, 0, len(active))
	for _, rj := range active {
		if err := rj.prepare(svc.adapter); err != nil {
			rj.finish(nil, err)
			continue
		}
		ready = append(ready, rj)
	}
	if len(ready) == 0 {
		return
	}
	metBatchSize.Observe(float64(len(ready)))
	reqs := make([]*adapter.Request, len(ready))
	for i, rj := range ready {
		reqs[i] = rj.req
	}
	items, err := svc.adapter.(adapter.BatchInterface).InvokeBatch(batchCtx, reqs)
	if err == nil && len(items) != len(reqs) {
		err = fmt.Errorf("container: batch adapter returned %d results for %d jobs", len(items), len(reqs))
	}
	if err != nil {
		for _, rj := range ready {
			rj.finish(nil, err)
		}
		return
	}
	for i, rj := range ready {
		switch {
		case items[i].Err != nil:
			rj.finish(nil, items[i].Err)
		case items[i].Result == nil:
			rj.finish(nil, fmt.Errorf("container: batch adapter returned no result for job %s", rj.jobID))
		default:
			rj.complete(svc, items[i].Result, nil)
		}
	}
}

// stageInputs resolves file-reference input values into local files inside
// the job work directory and returns the parameter→path map.  Local file
// IDs are hardlinked (or stream-copied) from the container's file store;
// absolute URLs (produced by other containers in a workflow) are streamed
// over HTTP straight into the work dir, except when they point back at this
// container, in which case the transfer is short-cut to the local path.
// No path buffers whole files on the heap.
// hasFileInputs reports whether any input value is a file reference that
// must be staged to disk.
func hasFileInputs(inputs core.Values) bool {
	for _, v := range inputs {
		if _, ok := core.FileRefID(v); ok {
			return true
		}
	}
	return false
}

func (jm *JobManager) stageInputs(ctx context.Context, inputs core.Values, workDir string) (map[string]string, error) {
	files := make(map[string]string)
	for name, val := range inputs {
		ref, ok := core.FileRefID(val)
		if !ok {
			continue
		}
		path := filepath.Join(workDir, "in_"+name)
		if err := jm.stageFile(ctx, ref, path); err != nil {
			return nil, fmt.Errorf("container: stage input %q: %w", name, err)
		}
		files[name] = path
	}
	return files, nil
}

// stageFile materialises the file behind ref at path.
func (jm *JobManager) stageFile(ctx context.Context, ref, path string) error {
	if id, ok := jm.c.localFileID(ref); ok {
		// A federation ID minted on another replica is pulled into the
		// local content-addressed store first (once, digest-verified);
		// local IDs pass straight through.
		if err := jm.c.ensureLocalFile(ctx, id); err != nil {
			return err
		}
		return jm.c.files.StageTo(id, path)
	}
	if strings.HasPrefix(ref, "http://") || strings.HasPrefix(ref, "https://") {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, ref, nil)
		if err != nil {
			return err
		}
		resp, err := jm.c.httpClient.Do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("GET %s: %s", ref, resp.Status)
		}
		f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o600)
		if err != nil {
			return err
		}
		// Read one byte past the limit so an oversized file is detected
		// and fails the job instead of being silently truncated.
		n, err := rest.Copy(f, io.LimitReader(resp.Body, maxFileBytes+1))
		if closeErr := f.Close(); err == nil {
			err = closeErr
		}
		if err == nil && n > maxFileBytes {
			err = fmt.Errorf("GET %s: file exceeds the %d-byte staging limit", ref, int64(maxFileBytes))
		}
		if err != nil {
			_ = os.Remove(path)
			return err
		}
		return nil
	}
	return jm.c.files.StageTo(ref, path)
}

// publishOutputs converts adapter result files into file resources and
// merges them with inline outputs.
func (jm *JobManager) publishOutputs(res *adapter.Result, jobID string) (core.Values, error) {
	outputs := core.Values{}
	for k, v := range res.Outputs {
		outputs[k] = v
	}
	for name, path := range res.Files {
		// Hardlink (or stream-copy) the work-dir file into the store; the
		// adapter is done with it and the work dir is about to be removed.
		id, err := jm.c.files.PutFile(path, jobID)
		if err != nil {
			return nil, fmt.Errorf("container: publish output %q: %w", name, err)
		}
		outputs[name] = core.FileRef(jm.c.fileURI(id))
	}
	return outputs, nil
}

// MemoStats reports the computation cache occupancy: cached entries and
// their approximate byte size.  Zeroes when the cache is disabled.
func (jm *JobManager) MemoStats() (entries int, bytes int64) {
	if jm.memo == nil {
		return 0, 0
	}
	return jm.memo.stats()
}

// LoadReport snapshots the manager's load for GET /load: queue occupancy,
// executing jobs vs pool size, and memo cache footprint.  The gateway's
// power-of-two-choices placement consumes it at load-interval cadence.
func (jm *JobManager) LoadReport() core.LoadReport {
	entries, bytes := jm.MemoStats()
	return core.LoadReport{
		QueueDepth:  len(jm.queue) + int(jm.backlogCount.Load()),
		QueueCap:    cap(jm.queue),
		Running:     int(jm.running.Load()),
		Workers:     jm.workers,
		MemoEntries: entries,
		MemoBytes:   bytes,
	}
}

// errNonLocalFileRef marks a request input referencing a file this
// container does not store; such requests cannot be content-hashed cheaply
// and bypass the computation cache.
var errNonLocalFileRef = errors.New("container: non-local file reference")

// memoKey derives the content-addressed computation key of a request, or
// reports false when the request is not memoizable: the service did not
// declare itself deterministic, the cache is disabled, or an input
// references a file whose content this container cannot digest.  The
// non-deterministic path is a single branch with no allocation.
func (jm *JobManager) memoKey(svc *service, inputs core.Values) (string, bool) {
	if jm.memo == nil || !svc.desc.Deterministic {
		return "", false
	}
	key, err := core.CanonicalHash(svc.desc.Name, svc.desc.Version, inputs, jm.digestRef)
	if err != nil {
		return "", false
	}
	return key, true
}

// digestRef resolves a file-reference input to the content digest the file
// store computed while the file streamed in.
func (jm *JobManager) digestRef(ref string) (string, error) {
	if id, ok := jm.c.localFileID(ref); ok {
		return jm.c.files.Digest(id)
	}
	return "", errNonLocalFileRef
}

// publishCachedJob registers a job that is born DONE: a cache hit.  The
// cached outputs are cloned onto a fresh job record, so the caller observes
// exactly the shape a real execution would have produced, minus the queue
// and the adapter.
func (jm *JobManager) publishCachedJob(ctx context.Context, serviceName string, inputs core.Values, owner, trace string, outputs core.Values, ttl time.Duration) (*core.Job, error) {
	now := time.Now()
	rec := &jobRecord{
		job: &core.Job{
			ID:        jm.c.newID(),
			Service:   serviceName,
			State:     core.StateDone,
			Inputs:    inputs,
			Outputs:   outputs.Clone(),
			Owner:     owner,
			Created:   now,
			Submitted: now,
			Started:   now,
			Finished:  now,
			TraceID:   trace,
		},
		done: make(chan struct{}),
		ttl:  ttl,
	}
	if ttl > 0 {
		rec.job.Destruction = now.Add(ttl)
	}
	close(rec.done)
	sh := jm.shard(rec.job.ID)
	sh.mu.Lock()
	sh.jobs[rec.job.ID] = rec
	sh.mu.Unlock()
	metJobsSubmitted.Inc()
	metJobsCompleted.With("done").Inc()
	// Born terminal: one record carries the whole lifecycle.
	jm.logJob(rec)
	jm.notifyJob(rec)
	if logger := obs.Logger(); logger.Enabled(ctx, slog.LevelInfo) {
		logger.LogAttrs(ctx, slog.LevelInfo, "job served from computation cache",
			slog.String("request_id", trace),
			slog.String("job_id", rec.job.ID),
			slog.String("service", serviceName))
	}
	return rec.snapshot(), nil
}

// settleFlight resolves the singleflight led by rec after it reached a
// terminal state: a DONE leader populates the computation cache and hands
// its outputs to every coalesced follower; any other terminal state fails
// the followers.  Settlement is idempotent — the first caller takes the
// flight, later callers no-op.
func (jm *JobManager) settleFlight(rec *jobRecord) {
	if rec.memoKey == "" || jm.memo == nil {
		return
	}
	rec.mu.Lock()
	state := rec.job.State
	outputs := rec.job.Outputs
	errMsg := rec.job.Error
	jobID := rec.job.ID
	service := rec.job.Service
	rec.mu.Unlock()
	if !state.Terminal() {
		return
	}
	followers, noStore, ok := jm.memo.takeFlight(rec.memoKey)
	if !ok {
		return
	}
	if state == core.StateDone && !noStore {
		jm.memo.store(rec.memoKey, service, jobID, outputs)
		jm.c.logRecord(journal.KindMemoPut, journal.MemoPutRecord{
			Key: rec.memoKey, Service: service, JobID: jobID, Outputs: outputs,
		})
	}
	switch state {
	case core.StateDone:
		for _, f := range followers {
			jm.completeFollower(f, core.StateDone, outputs, "")
		}
	case core.StateCancelled:
		for _, f := range followers {
			jm.completeFollower(f, core.StateError, nil,
				"container: coalesced execution was cancelled")
		}
	default:
		for _, f := range followers {
			jm.completeFollower(f, core.StateError, nil, errMsg)
		}
	}
}

// failFlight resolves a flight whose leader never ran (queue overflow),
// failing any followers that joined it.
func (jm *JobManager) failFlight(key, errMsg string) {
	followers, _, ok := jm.memo.takeFlight(key)
	if !ok {
		return
	}
	for _, f := range followers {
		jm.completeFollower(f, core.StateError, nil, errMsg)
	}
}

// completeFollower moves a coalesced follower to its terminal state with
// the leader's result.  Followers their own clients already cancelled are
// left untouched (done is closed exactly once).
func (jm *JobManager) completeFollower(rec *jobRecord, state core.JobState, outputs core.Values, errMsg string) {
	rec.mu.Lock()
	if rec.job.State.Terminal() {
		rec.mu.Unlock()
		return
	}
	now := time.Now()
	rec.job.Started = now
	rec.job.Finished = now
	rec.job.QueueWait = core.Duration(now.Sub(rec.job.Created))
	switch state {
	case core.StateDone:
		rec.job.State = core.StateDone
		rec.job.Outputs = outputs.Clone()
	default:
		rec.job.State = core.StateError
		rec.job.Error = errMsg
	}
	if rec.ttl > 0 {
		rec.job.Destruction = now.Add(rec.ttl)
	}
	final := rec.job.State
	finalErr := rec.job.Error
	rec.invalidate()
	close(rec.done)
	rec.mu.Unlock()
	metJobsCompleted.With(strings.ToLower(string(final))).Inc()
	// Followers go straight from WAITING to their terminal state.
	if sw := rec.sweep; sw != nil {
		sw.childTransition(core.StateWaiting, final, finalErr)
	}
	jm.logJobEnd(rec)
	jm.notifyJob(rec)
}

// panicStack captures the panicking goroutine's stack, truncated so a deep
// recursion does not bloat the job record (the head frames carry the
// culprit).
func panicStack() string {
	const maxStack = 8 << 10
	stack := debug.Stack()
	if len(stack) > maxStack {
		stack = append(stack[:maxStack], []byte("\n... stack truncated")...)
	}
	return string(stack)
}

// maxFileBytes bounds remote file staging and client uploads.  It is a
// variable only so tests can exercise the overflow path without moving a
// gibibyte.
var maxFileBytes int64 = 1 << 30
