package container

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"runtime/debug"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mathcloud/internal/adapter"
	"mathcloud/internal/core"
	"mathcloud/internal/obs"
	"mathcloud/internal/rest"
)

// jobRecord is the container's internal state for one job.
type jobRecord struct {
	mu     sync.Mutex
	job    *core.Job
	cancel context.CancelFunc
	done   chan struct{}
	// memoKey marks the leader of a singleflight execution: when this job
	// reaches a terminal state it settles the flight — completes coalesced
	// followers and, on success, populates the computation cache.
	memoKey string
	// coalesced marks a follower: a job that never entered the queue and is
	// completed by its flight's leader.  Followers stay out of the queue
	// gauges.
	coalesced bool
	// snap caches the last published snapshot of the job.  Mutators clear
	// it (under mu); readers rebuild it lazily, so the status-polling hot
	// path costs one atomic load and a shallow copy instead of a mutex
	// acquisition and a deep clone per poll.
	snap atomic.Pointer[core.Job]
}

// snapshot returns a copy of the job safe for decoration and serialization.
// The cached clone is immutable once published; each caller receives its own
// shallow copy so per-request fields (URI) can be filled in without sharing.
func (r *jobRecord) snapshot() *core.Job {
	snap := r.snap.Load()
	if snap == nil {
		r.mu.Lock()
		snap = r.job.Clone()
		r.snap.Store(snap)
		r.mu.Unlock()
	}
	out := *snap
	return &out
}

// invalidate drops the cached snapshot.  Callers must hold r.mu and call it
// after every mutation of r.job, so readers never observe a stale clone
// beyond the natural raciness of concurrent polling.
func (r *jobRecord) invalidate() { r.snap.Store(nil) }

// jobShardCount is the number of lock stripes in the job registry.  A
// power of two well above typical core counts keeps the collision
// probability of concurrent Submit/Status/Delete calls negligible.
const jobShardCount = 32

// jobShard is one lock stripe of the job registry.
type jobShard struct {
	mu   sync.RWMutex
	jobs map[string]*jobRecord
}

// JobManager manages the processing of incoming requests: requests are
// converted into asynchronous jobs and placed in a queue served by a
// configurable pool of handler goroutines, exactly as in the paper's
// container architecture.  The job registry is lock-striped across
// jobShardCount shards keyed by job-ID hash, so status polls from many
// concurrent clients do not serialize on one global mutex.
type JobManager struct {
	c     *Container
	queue chan *jobRecord
	// deadline is the container-wide default execution deadline; a
	// service description's Deadline field overrides it per service.
	deadline time.Duration
	// memo is the computation cache for deterministic services (nil when
	// disabled): repeat submissions return DONE instantly from cached
	// outputs, and concurrent identical submissions coalesce onto one
	// adapter execution.
	memo *memoTable

	shards [jobShardCount]jobShard

	wg        sync.WaitGroup
	closing   chan struct{}
	closeOnce sync.Once
	// baseCtx parents every job context, so Close cancels jobs that a
	// worker dequeues concurrently with shutdown.
	baseCtx    context.Context
	baseCancel context.CancelFunc
}

func newJobManager(c *Container, workers, queueSize int, deadline time.Duration, memoEntries int, memoBytes int64) *JobManager {
	if workers <= 0 {
		workers = 4
	}
	if queueSize <= 0 {
		queueSize = 1024
	}
	baseCtx, baseCancel := context.WithCancel(context.Background())
	jm := &JobManager{
		c:          c,
		queue:      make(chan *jobRecord, queueSize),
		deadline:   deadline,
		closing:    make(chan struct{}),
		baseCtx:    baseCtx,
		baseCancel: baseCancel,
	}
	if memoEntries > 0 && memoBytes > 0 {
		jm.memo = newMemoTable(memoEntries, memoBytes)
	}
	for i := range jm.shards {
		jm.shards[i].jobs = make(map[string]*jobRecord)
	}
	jm.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go jm.worker()
	}
	return jm
}

// shard returns the lock stripe owning the given job ID (FNV-1a hash).
func (jm *JobManager) shard(id string) *jobShard {
	h := uint32(2166136261)
	for i := 0; i < len(id); i++ {
		h = (h ^ uint32(id[i])) * 16777619
	}
	return &jm.shards[h%jobShardCount]
}

// allRecords snapshots the record pointers of every shard.
func (jm *JobManager) allRecords() []*jobRecord {
	var recs []*jobRecord
	for i := range jm.shards {
		sh := &jm.shards[i]
		sh.mu.RLock()
		for _, rec := range sh.jobs {
			recs = append(recs, rec)
		}
		sh.mu.RUnlock()
	}
	return recs
}

// Submit creates a job for the given service request and enqueues it.
func (jm *JobManager) Submit(serviceName string, inputs core.Values, owner string) (*core.Job, error) {
	return jm.SubmitCtx(context.Background(), serviceName, inputs, owner)
}

// SubmitCtx is Submit with a caller context: the request ID established at
// HTTP ingress (or by an in-process invoker) is recorded as the job's
// TraceID and re-enters the context of every outbound call the job makes,
// so a workflow's fan-out across services shares one correlation ID.  A
// context without an ID gets a fresh one.
func (jm *JobManager) SubmitCtx(ctx context.Context, serviceName string, inputs core.Values, owner string) (*core.Job, error) {
	svc, err := jm.c.service(serviceName)
	if err != nil {
		return nil, err
	}
	inputs = svc.desc.ApplyDefaults(inputs)
	if err := svc.desc.ValidateInputs(inputs); err != nil {
		return nil, core.ErrBadRequest("%v", err)
	}
	_, trace := obs.EnsureRequestID(ctx)

	// Result-reuse gate.  Only services that declared themselves
	// deterministic pay for key derivation; everything else goes straight
	// to the queue, byte-for-byte as before.
	memoKey, memoable := jm.memoKey(svc, inputs)
	if memoable {
		if outputs, ok := jm.memo.lookup(memoKey); ok {
			metMemoHits.Inc()
			return jm.publishCachedJob(ctx, serviceName, inputs, owner, trace, outputs)
		}
	}

	now := time.Now()
	rec := &jobRecord{
		job: &core.Job{
			ID:        core.NewID(),
			Service:   serviceName,
			State:     core.StateWaiting,
			Inputs:    inputs,
			Owner:     owner,
			Created:   now,
			Submitted: now,
			TraceID:   trace,
		},
		done: make(chan struct{}),
	}
	select {
	case <-jm.closing:
		return nil, core.ErrUnavailable(0, "container is shutting down")
	default:
	}
	// Join or lead the singleflight before the record becomes visible, so
	// the coalescing flags are immutable once any other goroutine can see
	// the record.
	follower := false
	if memoable {
		if leader := jm.memo.joinOrLead(memoKey, rec); leader {
			rec.memoKey = memoKey
			metMemoMisses.Inc()
		} else {
			rec.coalesced = true
			follower = true
		}
	}
	sh := jm.shard(rec.job.ID)
	sh.mu.Lock()
	sh.jobs[rec.job.ID] = rec
	sh.mu.Unlock()

	if follower {
		// Coalesced: an identical execution is already in flight.  The job
		// is registered and will be completed by the flight's leader; it
		// never occupies a queue slot or a worker.
		metMemoCoalesced.Inc()
		metJobsSubmitted.Inc()
		// Close may have swept the registry before the insert above; the
		// final sweep of Close cancels WAITING followers, and a leader
		// settling concurrently skips terminal records, so no waiter is
		// left hanging either way.
		select {
		case <-jm.closing:
			jm.cancelPending(rec)
		default:
		}
		return rec.snapshot(), nil
	}

	select {
	case jm.queue <- rec:
		metJobsSubmitted.Inc()
		metJobsWaiting.Add(1)
		if logger := obs.Logger(); logger.Enabled(ctx, slog.LevelInfo) {
			logger.LogAttrs(ctx, slog.LevelInfo, "job submitted",
				slog.String("request_id", trace),
				slog.String("job_id", rec.job.ID),
				slog.String("service", serviceName))
		}
		// Re-check shutdown: Close may have swept the job map before the
		// insert above, in which case no reader will ever drain this
		// record — cancel it here so its waiters are released.
		select {
		case <-jm.closing:
			jm.cancelPending(rec)
		default:
		}
		return rec.snapshot(), nil
	default:
		sh.mu.Lock()
		delete(sh.jobs, rec.job.ID)
		sh.mu.Unlock()
		metQueueRejections.Inc()
		// A leader that never entered the queue must still resolve its
		// flight: followers that joined in the meantime fail with the same
		// overload error instead of waiting forever.
		if rec.memoKey != "" {
			jm.failFlight(rec.memoKey, "container: coalesced execution was rejected: job queue is full")
		}
		// A full queue is a transient overload, not a request conflict:
		// answer 503 with a retry hint so client retry policies absorb it.
		return nil, core.ErrUnavailable(queueFullRetryAfter, "job queue is full")
	}
}

// queueFullRetryAfter is the Retry-After hint advertised when the job queue
// is full: long enough for the handler pool to make progress, short enough
// that a retrying client observes free capacity promptly.
const queueFullRetryAfter = time.Second

// Get returns a snapshot of the job.
func (jm *JobManager) Get(id string) (*core.Job, error) {
	rec, err := jm.record(id)
	if err != nil {
		return nil, err
	}
	return rec.snapshot(), nil
}

func (jm *JobManager) record(id string) (*jobRecord, error) {
	sh := jm.shard(id)
	sh.mu.RLock()
	rec, ok := sh.jobs[id]
	sh.mu.RUnlock()
	if !ok {
		return nil, core.ErrNotFound("job", id)
	}
	return rec, nil
}

// Wait blocks until the job reaches a terminal state, the timeout elapses
// or ctx is cancelled, returning the latest snapshot.
func (jm *JobManager) Wait(ctx context.Context, id string, timeout time.Duration) (*core.Job, error) {
	rec, err := jm.record(id)
	if err != nil {
		return nil, err
	}
	var timer <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		timer = t.C
	}
	select {
	case <-rec.done:
	case <-timer:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return rec.snapshot(), nil
}

// Delete implements the DELETE method of the job resource: it cancels a
// live job, or destroys the record and its subordinate file resources if
// the job is already terminal.
func (jm *JobManager) Delete(id string) (*core.Job, error) {
	rec, err := jm.record(id)
	if err != nil {
		return nil, err
	}
	rec.mu.Lock()
	state := rec.job.State
	cancel := rec.cancel
	if state == core.StateWaiting {
		// Cancel before a worker picks the job up.
		rec.job.State = core.StateCancelled
		rec.job.Finished = time.Now()
		rec.invalidate()
		close(rec.done)
		if !rec.coalesced {
			metJobsWaiting.Add(-1)
		}
		metJobsCompleted.With("cancelled").Inc()
	}
	rec.mu.Unlock()

	switch state {
	case core.StateWaiting:
		// A cancelled leader settles its flight here: followers fail with
		// a cancellation error rather than waiting on a job that will
		// never run.
		jm.settleFlight(rec)
		return rec.snapshot(), nil
	case core.StateRunning:
		if cancel != nil {
			cancel()
		}
		return rec.snapshot(), nil
	default:
		// Terminal: destroy the job resource and its files.  The map
		// removal decides the winner among racing deletes, so the purge
		// runs exactly once and later deletes observe 404.
		sh := jm.shard(id)
		sh.mu.Lock()
		_, present := sh.jobs[id]
		delete(sh.jobs, id)
		sh.mu.Unlock()
		if !present {
			return nil, core.ErrNotFound("job", id)
		}
		// The cached entry backed by this job references its files; purge
		// it with them so hits never return dangling URIs.
		if jm.memo != nil {
			jm.memo.dropJob(id)
		}
		jm.c.files.DeleteOwnedBy(id)
		return rec.snapshot(), nil
	}
}

// List returns snapshots of jobs for one service (or all, if service is
// empty), newest first.
func (jm *JobManager) List(service string) []*core.Job {
	var out []*core.Job
	for _, rec := range jm.allRecords() {
		// Service is immutable after Submit publishes the record, so the
		// filter avoids cloning jobs of other services.
		if service != "" && rec.job.Service != service {
			continue
		}
		out = append(out, rec.snapshot())
	}
	sort.Slice(out, func(i, k int) bool { return out[i].Created.After(out[k].Created) })
	return out
}

// Close stops the worker pool after cancelling running jobs and drains the
// queue, so every accepted job reaches a terminal state and every
// concurrent Wait call unblocks.  After Close returns, no job is left in
// WAITING or RUNNING.
func (jm *JobManager) Close() {
	jm.closeOnce.Do(func() { close(jm.closing) })
	// Cancel the parent of every job context: this reaches running jobs
	// and any job a worker dequeues concurrently with this shutdown.
	jm.baseCancel()
	// Drain jobs still sitting in the queue to CANCELLED.  Workers may be
	// dequeuing concurrently, but each record goes to exactly one reader.
	for {
		select {
		case rec := <-jm.queue:
			jm.cancelPending(rec)
			continue
		default:
		}
		break
	}
	jm.wg.Wait()
	// Final sweep: a Submit racing this shutdown can enqueue a record
	// after both the workers and the drain loop have stopped reading.
	for _, rec := range jm.allRecords() {
		jm.cancelPending(rec)
	}
}

// cancelPending moves a job that never reached a worker to CANCELLED and
// releases its waiters.  Running and terminal jobs are left to their worker
// (done is closed exactly once, when the terminal state is set).  A
// cancelled singleflight leader settles its flight so coalesced followers
// are released too.
func (jm *JobManager) cancelPending(rec *jobRecord) {
	rec.mu.Lock()
	if rec.job.State != core.StateWaiting {
		rec.mu.Unlock()
		return
	}
	rec.job.State = core.StateCancelled
	rec.job.Finished = time.Now()
	rec.invalidate()
	close(rec.done)
	if !rec.coalesced {
		metJobsWaiting.Add(-1)
	}
	metJobsCompleted.With("cancelled").Inc()
	rec.mu.Unlock()
	jm.settleFlight(rec)
}

func (jm *JobManager) worker() {
	defer jm.wg.Done()
	for {
		select {
		case <-jm.closing:
			return
		case rec := <-jm.queue:
			jm.process(rec)
		}
	}
}

// process runs one job through its adapter.  It is panic-safe: a panicking
// adapter (or staging/publishing step) marks the job ERROR with the captured
// stack instead of killing the worker goroutine and wedging every waiter.
func (jm *JobManager) process(rec *jobRecord) {
	rec.mu.Lock()
	if rec.job.State != core.StateWaiting {
		// Cancelled while queued.
		rec.mu.Unlock()
		return
	}
	serviceName := rec.job.Service
	rec.mu.Unlock()

	// Resolve the service first: its description may override the
	// container's default execution deadline.
	svc, svcErr := jm.c.service(serviceName)
	deadline := jm.deadline
	if svc != nil && svc.desc.Deadline > 0 {
		deadline = svc.desc.Deadline.Std()
	}
	var ctx context.Context
	var cancel context.CancelFunc
	if deadline > 0 {
		ctx, cancel = context.WithTimeout(jm.baseCtx, deadline)
	} else {
		ctx, cancel = context.WithCancel(jm.baseCtx)
	}
	defer cancel()

	rec.mu.Lock()
	if rec.job.State != core.StateWaiting {
		// Cancelled between the first check and here.
		rec.mu.Unlock()
		return
	}
	rec.job.State = core.StateRunning
	rec.job.Started = time.Now()
	rec.job.QueueWait = core.Duration(rec.job.Started.Sub(rec.job.Created))
	rec.cancel = cancel
	rec.invalidate()
	jobID := rec.job.ID
	owner := rec.job.Owner
	trace := rec.job.TraceID
	queueWait := rec.job.QueueWait.Std()
	inputs := rec.job.Inputs.Clone()
	rec.mu.Unlock()

	metJobsWaiting.Add(-1)
	metJobsRunning.Add(1)
	metQueueWait.Observe(queueWait.Seconds())
	// Re-enter the job's trace into the execution context: every outbound
	// call the adapter makes (workflow block invocations, file staging)
	// then carries the ingress X-Request-ID.
	if trace != "" {
		ctx = obs.WithRequestID(ctx, trace)
	}

	finishLocked := func(outputs core.Values, err error) {
		rec.mu.Lock()
		defer rec.mu.Unlock()
		if rec.job.State.Terminal() {
			return
		}
		rec.job.Finished = time.Now()
		rec.job.RunTime = core.Duration(rec.job.Finished.Sub(rec.job.Started))
		switch {
		case err == nil:
			rec.job.State = core.StateDone
			rec.job.Outputs = outputs
		case errors.Is(ctx.Err(), context.DeadlineExceeded):
			// The job overran its execution deadline: a fault of the
			// job, not a client cancellation.
			rec.job.State = core.StateError
			rec.job.Error = fmt.Sprintf("container: job exceeded its %s execution deadline", deadline)
			metDeadlineOverruns.Inc()
		case ctx.Err() != nil:
			rec.job.State = core.StateCancelled
		default:
			rec.job.State = core.StateError
			rec.job.Error = err.Error()
		}
		rec.invalidate()
		close(rec.done)
		metJobsRunning.Add(-1)
		metRunTime.Observe(rec.job.RunTime.Std().Seconds())
		metJobsCompleted.With(strings.ToLower(string(rec.job.State))).Inc()
		if logger := obs.Logger(); logger.Enabled(ctx, slog.LevelInfo) {
			logger.LogAttrs(ctx, slog.LevelInfo, "job finished",
				slog.String("request_id", trace),
				slog.String("job_id", jobID),
				slog.String("service", serviceName),
				slog.String("state", string(rec.job.State)),
				slog.Duration("queue_wait", queueWait),
				slog.Duration("run_time", rec.job.RunTime.Std()))
		}
	}

	// finish records the terminal state and then settles the job's
	// singleflight (outside the record lock): on DONE the outputs populate
	// the computation cache and complete every coalesced follower.
	finish := func(outputs core.Values, err error) {
		finishLocked(outputs, err)
		jm.settleFlight(rec)
	}

	// Panic safety: finish is idempotent (guarded on Terminal), so a panic
	// anywhere below — most likely inside the adapter — lands the job in
	// ERROR with the stack, and the worker goroutine survives.
	defer func() {
		if r := recover(); r != nil {
			metWorkerPanics.Inc()
			finish(nil, fmt.Errorf("container: adapter panic: %v\n%s", r, panicStack()))
		}
	}()

	if svcErr != nil {
		finish(nil, svcErr)
		return
	}

	workDir, err := os.MkdirTemp(jm.c.workRoot, "job-"+jobID[:8]+"-")
	if err != nil {
		finish(nil, fmt.Errorf("container: create work dir: %w", err))
		return
	}
	defer os.RemoveAll(workDir)

	files, err := jm.stageInputs(ctx, inputs, workDir)
	if err != nil {
		finish(nil, err)
		return
	}

	progress := func(msg string) {
		rec.mu.Lock()
		defer rec.mu.Unlock()
		if len(rec.job.Log) < 1000 {
			rec.job.Log = append(rec.job.Log, msg)
			rec.invalidate()
		}
	}

	setBlockState := func(block string, state core.JobState) {
		rec.mu.Lock()
		defer rec.mu.Unlock()
		if rec.job.Blocks == nil {
			rec.job.Blocks = make(map[string]core.JobState)
		}
		rec.job.Blocks[block] = state
		rec.invalidate()
	}

	req := &adapter.Request{
		JobID:         jobID,
		Service:       serviceName,
		Owner:         owner,
		Inputs:        inputs,
		Files:         files,
		WorkDir:       workDir,
		Progress:      progress,
		SetBlockState: setBlockState,
	}
	res, err := svc.adapter.Invoke(ctx, req)
	if err != nil {
		finish(nil, err)
		return
	}

	outputs, err := jm.publishOutputs(res, jobID)
	if err != nil {
		finish(nil, err)
		return
	}
	if err := svc.desc.ValidateOutputs(outputs); err != nil {
		finish(nil, fmt.Errorf("container: adapter produced invalid outputs: %w", err))
		return
	}
	finish(outputs, nil)
}

// stageInputs resolves file-reference input values into local files inside
// the job work directory and returns the parameter→path map.  Local file
// IDs are hardlinked (or stream-copied) from the container's file store;
// absolute URLs (produced by other containers in a workflow) are streamed
// over HTTP straight into the work dir, except when they point back at this
// container, in which case the transfer is short-cut to the local path.
// No path buffers whole files on the heap.
func (jm *JobManager) stageInputs(ctx context.Context, inputs core.Values, workDir string) (map[string]string, error) {
	files := make(map[string]string)
	for name, val := range inputs {
		ref, ok := core.FileRefID(val)
		if !ok {
			continue
		}
		path := filepath.Join(workDir, "in_"+name)
		if err := jm.stageFile(ctx, ref, path); err != nil {
			return nil, fmt.Errorf("container: stage input %q: %w", name, err)
		}
		files[name] = path
	}
	return files, nil
}

// stageFile materialises the file behind ref at path.
func (jm *JobManager) stageFile(ctx context.Context, ref, path string) error {
	if id, ok := jm.c.localFileID(ref); ok {
		return jm.c.files.StageTo(id, path)
	}
	if strings.HasPrefix(ref, "http://") || strings.HasPrefix(ref, "https://") {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, ref, nil)
		if err != nil {
			return err
		}
		resp, err := jm.c.httpClient.Do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("GET %s: %s", ref, resp.Status)
		}
		f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o600)
		if err != nil {
			return err
		}
		// Read one byte past the limit so an oversized file is detected
		// and fails the job instead of being silently truncated.
		n, err := rest.Copy(f, io.LimitReader(resp.Body, maxFileBytes+1))
		if closeErr := f.Close(); err == nil {
			err = closeErr
		}
		if err == nil && n > maxFileBytes {
			err = fmt.Errorf("GET %s: file exceeds the %d-byte staging limit", ref, int64(maxFileBytes))
		}
		if err != nil {
			_ = os.Remove(path)
			return err
		}
		return nil
	}
	return jm.c.files.StageTo(ref, path)
}

// publishOutputs converts adapter result files into file resources and
// merges them with inline outputs.
func (jm *JobManager) publishOutputs(res *adapter.Result, jobID string) (core.Values, error) {
	outputs := core.Values{}
	for k, v := range res.Outputs {
		outputs[k] = v
	}
	for name, path := range res.Files {
		// Hardlink (or stream-copy) the work-dir file into the store; the
		// adapter is done with it and the work dir is about to be removed.
		id, err := jm.c.files.PutFile(path, jobID)
		if err != nil {
			return nil, fmt.Errorf("container: publish output %q: %w", name, err)
		}
		outputs[name] = core.FileRef(jm.c.fileURI(id))
	}
	return outputs, nil
}

// MemoStats reports the computation cache occupancy: cached entries and
// their approximate byte size.  Zeroes when the cache is disabled.
func (jm *JobManager) MemoStats() (entries int, bytes int64) {
	if jm.memo == nil {
		return 0, 0
	}
	return jm.memo.stats()
}

// errNonLocalFileRef marks a request input referencing a file this
// container does not store; such requests cannot be content-hashed cheaply
// and bypass the computation cache.
var errNonLocalFileRef = errors.New("container: non-local file reference")

// memoKey derives the content-addressed computation key of a request, or
// reports false when the request is not memoizable: the service did not
// declare itself deterministic, the cache is disabled, or an input
// references a file whose content this container cannot digest.  The
// non-deterministic path is a single branch with no allocation.
func (jm *JobManager) memoKey(svc *service, inputs core.Values) (string, bool) {
	if jm.memo == nil || !svc.desc.Deterministic {
		return "", false
	}
	key, err := core.CanonicalHash(svc.desc.Name, svc.desc.Version, inputs, jm.digestRef)
	if err != nil {
		return "", false
	}
	return key, true
}

// digestRef resolves a file-reference input to the content digest the file
// store computed while the file streamed in.
func (jm *JobManager) digestRef(ref string) (string, error) {
	if id, ok := jm.c.localFileID(ref); ok {
		return jm.c.files.Digest(id)
	}
	return "", errNonLocalFileRef
}

// publishCachedJob registers a job that is born DONE: a cache hit.  The
// cached outputs are cloned onto a fresh job record, so the caller observes
// exactly the shape a real execution would have produced, minus the queue
// and the adapter.
func (jm *JobManager) publishCachedJob(ctx context.Context, serviceName string, inputs core.Values, owner, trace string, outputs core.Values) (*core.Job, error) {
	now := time.Now()
	rec := &jobRecord{
		job: &core.Job{
			ID:        core.NewID(),
			Service:   serviceName,
			State:     core.StateDone,
			Inputs:    inputs,
			Outputs:   outputs.Clone(),
			Owner:     owner,
			Created:   now,
			Submitted: now,
			Started:   now,
			Finished:  now,
			TraceID:   trace,
		},
		done: make(chan struct{}),
	}
	close(rec.done)
	sh := jm.shard(rec.job.ID)
	sh.mu.Lock()
	sh.jobs[rec.job.ID] = rec
	sh.mu.Unlock()
	metJobsSubmitted.Inc()
	metJobsCompleted.With("done").Inc()
	if logger := obs.Logger(); logger.Enabled(ctx, slog.LevelInfo) {
		logger.LogAttrs(ctx, slog.LevelInfo, "job served from computation cache",
			slog.String("request_id", trace),
			slog.String("job_id", rec.job.ID),
			slog.String("service", serviceName))
	}
	return rec.snapshot(), nil
}

// settleFlight resolves the singleflight led by rec after it reached a
// terminal state: a DONE leader populates the computation cache and hands
// its outputs to every coalesced follower; any other terminal state fails
// the followers.  Settlement is idempotent — the first caller takes the
// flight, later callers no-op.
func (jm *JobManager) settleFlight(rec *jobRecord) {
	if rec.memoKey == "" || jm.memo == nil {
		return
	}
	rec.mu.Lock()
	state := rec.job.State
	outputs := rec.job.Outputs
	errMsg := rec.job.Error
	jobID := rec.job.ID
	service := rec.job.Service
	rec.mu.Unlock()
	if !state.Terminal() {
		return
	}
	followers, noStore, ok := jm.memo.takeFlight(rec.memoKey)
	if !ok {
		return
	}
	if state == core.StateDone && !noStore {
		jm.memo.store(rec.memoKey, service, jobID, outputs)
	}
	switch state {
	case core.StateDone:
		for _, f := range followers {
			jm.completeFollower(f, core.StateDone, outputs, "")
		}
	case core.StateCancelled:
		for _, f := range followers {
			jm.completeFollower(f, core.StateError, nil,
				"container: coalesced execution was cancelled")
		}
	default:
		for _, f := range followers {
			jm.completeFollower(f, core.StateError, nil, errMsg)
		}
	}
}

// failFlight resolves a flight whose leader never ran (queue overflow),
// failing any followers that joined it.
func (jm *JobManager) failFlight(key, errMsg string) {
	followers, _, ok := jm.memo.takeFlight(key)
	if !ok {
		return
	}
	for _, f := range followers {
		jm.completeFollower(f, core.StateError, nil, errMsg)
	}
}

// completeFollower moves a coalesced follower to its terminal state with
// the leader's result.  Followers their own clients already cancelled are
// left untouched (done is closed exactly once).
func (jm *JobManager) completeFollower(rec *jobRecord, state core.JobState, outputs core.Values, errMsg string) {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if rec.job.State.Terminal() {
		return
	}
	now := time.Now()
	rec.job.Started = now
	rec.job.Finished = now
	rec.job.QueueWait = core.Duration(now.Sub(rec.job.Created))
	switch state {
	case core.StateDone:
		rec.job.State = core.StateDone
		rec.job.Outputs = outputs.Clone()
	default:
		rec.job.State = core.StateError
		rec.job.Error = errMsg
	}
	rec.invalidate()
	close(rec.done)
	metJobsCompleted.With(strings.ToLower(string(rec.job.State))).Inc()
}

// panicStack captures the panicking goroutine's stack, truncated so a deep
// recursion does not bloat the job record (the head frames carry the
// culprit).
func panicStack() string {
	const maxStack = 8 << 10
	stack := debug.Stack()
	if len(stack) > maxStack {
		stack = append(stack[:maxStack], []byte("\n... stack truncated")...)
	}
	return string(stack)
}

// maxFileBytes bounds remote file staging and client uploads.  It is a
// variable only so tests can exercise the overflow path without moving a
// gibibyte.
var maxFileBytes int64 = 1 << 30
