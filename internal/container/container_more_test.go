package container_test

import (
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"mathcloud/internal/adapter"
	"mathcloud/internal/client"
	"mathcloud/internal/container"
	"mathcloud/internal/core"
	"mathcloud/internal/jsonschema"
)

// TestCommandServiceWithFileOutput exercises the full file pipeline: a
// command adapter produces an output file, the container publishes it as a
// file resource, and the client downloads it through the file reference.
func TestCommandServiceWithFileOutput(t *testing.T) {
	c, srv := startContainer(t)
	cfg := container.ServiceConfig{
		Description: core.ServiceDescription{
			Name:    "upper",
			Inputs:  []core.Param{{Name: "text", Schema: jsonschema.New(jsonschema.TypeString)}},
			Outputs: []core.Param{{Name: "result"}},
		},
		Adapter: container.AdapterSpec{
			Kind: "command",
			Config: json.RawMessage(`{
				"command": "/bin/sh",
				"args": ["-c", "tr a-z A-Z < {text.path} > result.txt"],
				"inputFiles": {"text": "input.txt"},
				"outputFiles": {"result": "result.txt"}
			}`),
		},
	}
	if err := c.Deploy(cfg); err != nil {
		t.Fatal(err)
	}
	cl := client.New()
	ctx := context.Background()
	out, err := cl.Service(srv.URL+"/services/upper").Call(ctx, core.Values{"text": "hello files"})
	if err != nil {
		t.Fatal(err)
	}
	ref, ok := out["result"].(string)
	if !ok || !strings.HasPrefix(ref, core.FileRefPrefix) {
		t.Fatalf("result = %v, want a file reference", out["result"])
	}
	data, err := cl.FetchFile(ctx, ref)
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(string(data)) != "HELLO FILES" {
		t.Errorf("file content = %q", data)
	}
}

// TestFileInputStagedFromStore uploads a file and passes its reference as
// an input parameter; the container must stage it for the adapter.
func TestFileInputStagedFromStore(t *testing.T) {
	c, srv := startContainer(t)
	if err := c.Deploy(container.ServiceConfig{
		Description: core.ServiceDescription{
			Name:    "count",
			Inputs:  []core.Param{{Name: "data"}},
			Outputs: []core.Param{{Name: "n"}},
		},
		Adapter: container.AdapterSpec{
			Kind: "command",
			Config: json.RawMessage(`{
				"command": "/bin/sh",
				"args": ["-c", "wc -c < {data.path} | xargs printf '{{\"n\": %s}}'"],
				"stdoutJSON": true
			}`),
		},
	}); err != nil {
		t.Fatal(err)
	}
	cl := client.New()
	ctx := context.Background()
	ref, err := cl.UploadFile(ctx, srv.URL, strings.NewReader("12345"))
	if err != nil {
		t.Fatal(err)
	}
	out, err := cl.Service(srv.URL+"/services/count").Call(ctx, core.Values{"data": ref})
	if err != nil {
		t.Fatal(err)
	}
	if out["n"] != 5.0 {
		t.Errorf("n = %v, want 5", out["n"])
	}
}

func TestDeletingJobPurgesItsFiles(t *testing.T) {
	c, srv := startContainer(t)
	if err := c.Deploy(container.ServiceConfig{
		Description: core.ServiceDescription{
			Name:    "emit",
			Outputs: []core.Param{{Name: "f"}},
		},
		Adapter: container.AdapterSpec{
			Kind: "command",
			Config: json.RawMessage(`{
				"command": "/bin/sh",
				"args": ["-c", "echo payload > out.bin"],
				"outputFiles": {"f": "out.bin"}
			}`),
		},
	}); err != nil {
		t.Fatal(err)
	}
	cl := client.New()
	ctx := context.Background()
	svc := cl.Service(srv.URL + "/services/emit")
	job, err := svc.Submit(ctx, core.Values{}, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if job.State != core.StateDone {
		t.Fatalf("state = %s (%s)", job.State, job.Error)
	}
	ref := job.Outputs["f"]
	if _, err := cl.FetchFile(ctx, ref); err != nil {
		t.Fatalf("file not fetchable before delete: %v", err)
	}
	if _, err := svc.Cancel(ctx, job.URI); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.FetchFile(ctx, ref); err == nil {
		t.Error("job file survives job deletion; the unified API requires subordinate file resources to be destroyed")
	}
}

// A full queue is a transient overload condition: Submit answers with
// core.UnavailableError (503 + Retry-After on the wire), not a conflict,
// so client retry policies can absorb the spike.
func TestQueueFullRejectsWith503(t *testing.T) {
	adapter.RegisterFunc("test.block", func(ctx context.Context, in core.Values) (core.Values, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	})
	c, err := container.New(container.Options{Workers: 1, QueueSize: 1, Logger: quietLogger()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	if err := c.Deploy(container.ServiceConfig{
		Description: core.ServiceDescription{Name: "block", Outputs: []core.Param{{Name: "x", Optional: true}}},
		Adapter: container.AdapterSpec{Kind: "native",
			Config: json.RawMessage(`{"function":"test.block"}`)},
	}); err != nil {
		t.Fatal(err)
	}
	// Fill the single worker plus the single queue slot, then overflow.
	sawUnavailable := false
	for i := 0; i < 8; i++ {
		_, err := c.Jobs().Submit("block", core.Values{}, "")
		if err != nil {
			var unavail *core.UnavailableError
			if !asUnavailable(err, &unavail) {
				t.Fatalf("unexpected error: %v", err)
			}
			if unavail.RetryAfter <= 0 {
				t.Errorf("queue-full error carries no Retry-After hint: %+v", unavail)
			}
			sawUnavailable = true
			break
		}
	}
	if !sawUnavailable {
		t.Error("queue never filled up")
	}
}

func asUnavailable(err error, target **core.UnavailableError) bool {
	for err != nil {
		if e, ok := err.(*core.UnavailableError); ok {
			*target = e
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

func TestSchemaDefaultsApplied(t *testing.T) {
	adapter.RegisterFunc("test.mode", func(_ context.Context, in core.Values) (core.Values, error) {
		return core.Values{"mode": in["mode"]}, nil
	})
	c, srv := startContainer(t)
	if err := c.Deploy(container.ServiceConfig{
		Description: core.ServiceDescription{
			Name: "mode",
			Inputs: []core.Param{{Name: "mode",
				Schema: jsonschema.MustParse(`{"type":"string","default":"fast"}`)}},
			Outputs: []core.Param{{Name: "mode"}},
		},
		Adapter: container.AdapterSpec{Kind: "native",
			Config: json.RawMessage(`{"function":"test.mode"}`)},
	}); err != nil {
		t.Fatal(err)
	}
	out, err := client.New().Service(srv.URL+"/services/mode").Call(
		context.Background(), core.Values{})
	if err != nil {
		t.Fatal(err)
	}
	if out["mode"] != "fast" {
		t.Errorf("mode = %v, want default fast", out["mode"])
	}
}

func TestUndeployRemovesService(t *testing.T) {
	c, srv := startContainer(t)
	if err := c.Undeploy("add"); err != nil {
		t.Fatal(err)
	}
	if _, err := client.New().Service(srv.URL + "/services/add").Describe(context.Background()); !client.IsNotFound(err) {
		t.Errorf("undeployed service still described: %v", err)
	}
	if err := c.Undeploy("add"); err == nil {
		t.Error("double undeploy succeeded")
	}
}

func TestJobListEndpoint(t *testing.T) {
	_, srv := startContainer(t)
	svc := client.New().Service(srv.URL + "/services/add")
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, err := svc.Submit(ctx, core.Values{"a": float64(i), "b": 1.0}, 2*time.Second); err != nil {
			t.Fatal(err)
		}
	}
	var list struct {
		Jobs []core.Job `json:"jobs"`
	}
	if err := getJSON(srv.URL+"/services/add/jobs", &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Jobs) != 3 {
		t.Errorf("jobs = %d, want 3", len(list.Jobs))
	}
}

func getJSON(uri string, v any) error {
	resp, err := http.Get(uri)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(v)
}

func TestAdapterProgressInJobLog(t *testing.T) {
	c, srv := startContainer(t)
	if err := c.Deploy(container.ServiceConfig{
		Description: core.ServiceDescription{
			Name:    "loggy",
			Outputs: []core.Param{{Name: "out"}},
		},
		Adapter: container.AdapterSpec{
			Kind: "command",
			Config: json.RawMessage(`{
				"command": "/bin/echo", "args": ["hi"], "stdoutOutput": "out"
			}`),
		},
	}); err != nil {
		t.Fatal(err)
	}
	svc := client.New().Service(srv.URL + "/services/loggy")
	job, err := svc.Submit(context.Background(), core.Values{}, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(job.Log) == 0 || !strings.Contains(job.Log[0], "executing") {
		t.Errorf("job log = %v, want command-adapter progress", job.Log)
	}
}
