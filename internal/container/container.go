// Package container implements Everest, the MathCloud service container: a
// high-level framework for development and deployment of computational web
// services exposing the unified REST API.
//
// The container mirrors the architecture of the paper's Fig. 1.  The
// Service Manager maintains the list of deployed services and their
// configuration (a public description plus an internal adapter
// configuration).  The Job Manager converts incoming requests into
// asynchronous jobs placed in a queue served by a configurable pool of
// handler goroutines.  Jobs are processed by pluggable adapters.  Each
// deployed service is published through the REST API of Table 1, and a
// complementary web interface is generated automatically.
package container

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"mathcloud/internal/adapter"
	"mathcloud/internal/core"
	"mathcloud/internal/events"
	"mathcloud/internal/journal"
	"mathcloud/internal/obs"
	"mathcloud/internal/rest"
)

// Guard authenticates requests and authorizes access to services.  It is
// implemented by internal/security; a nil Guard leaves the container open.
type Guard interface {
	// Authenticate extracts the client principal from the request.  An
	// error means the request carries no acceptable credentials.
	Authenticate(r *http.Request) (core.Principal, error)
	// Authorize decides whether the principal may access the service,
	// including the delegation check for proxied requests.
	Authorize(p core.Principal, service string) error
}

// AdapterSpec selects and configures the adapter of one service.
type AdapterSpec struct {
	Kind   string          `json:"kind"`
	Config json.RawMessage `json:"config"`
}

// ServiceConfig is the full configuration of one deployed service: the
// public description provided to clients, and the internal adapter
// configuration used during request processing.
type ServiceConfig struct {
	Description core.ServiceDescription `json:"description"`
	Adapter     AdapterSpec             `json:"adapter"`
}

// Options configure a container.
type Options struct {
	// DataDir is the directory for file resources and job scratch
	// space.  Empty means a fresh temporary directory.
	DataDir string
	// Workers sets the handler pool size (default 4).
	Workers int
	// QueueSize bounds the job queue (default 1024).
	QueueSize int
	// DefaultJobDeadline bounds the execution time of every job whose
	// service description does not set its own Deadline.  A job that
	// overruns terminates in the ERROR state with a timeout message.
	// Zero means no default deadline.
	DefaultJobDeadline time.Duration
	// MemoMaxEntries and MemoMaxBytes bound the computation cache serving
	// services that declare "deterministic": true — repeat submissions of
	// identical requests return DONE instantly with cached outputs, and
	// concurrent identical submissions share one adapter execution.
	// Zero selects the defaults (4096 entries, 256 MiB); a negative value
	// disables the cache.
	MemoMaxEntries int
	MemoMaxBytes   int64
	// BatchMaxSize bounds adapter micro-batching: a handler drains up to
	// this many queued jobs of one service declaring "batch": true into a
	// single InvokeBatch call.  Zero selects the default (16); a value
	// below 2 disables batching.
	BatchMaxSize int
	// MaxSweepWidth caps the number of child jobs one parameter sweep may
	// expand to.  Zero selects the default (10000); a negative value
	// removes the cap.
	MaxSweepWidth int
	// MaxWaitWindow caps server-side blocking: the ?wait= long-poll window
	// and the idle timeout of SSE event streams.  Requests asking for more
	// are clamped, and the effective ceiling is advertised through the
	// Wait-Max response header so well-behaved clients stop over-asking.
	// Zero selects the default (60s); a negative value removes the cap.
	MaxWaitWindow time.Duration
	// EventRingSize sets how many recent events each bus topic retains for
	// Last-Event-ID resume (default 64).
	EventRingSize int
	// ReplicaID names this container within a federated deployment (e.g.
	// "r03").  When set, every job, sweep and file identifier the container
	// mints carries the name as an affinity prefix ("r03-<id>"), responses
	// carry an X-MC-Replica header, and a routing gateway (internal/gateway)
	// can dispatch resource requests to their home replica statelessly.
	// Must satisfy core.ValidReplicaName; empty keeps bare IDs.
	ReplicaID string
	// JournalDir enables the durability subsystem (DESIGN.md §5i): every
	// control-plane mutation — job lifecycle transitions, sweep membership,
	// file-store references, memo entries — is appended to a write-ahead
	// journal rooted at this directory, and Recover rebuilds the container
	// state from it after a restart.  Empty disables journaling entirely;
	// the hot path then carries no durability cost.  Pair it with a stable
	// DataDir: recovered state references blobs under DataDir/files.
	JournalDir string
	// WALSync selects the journal durability mode (off, batch, always);
	// meaningful only with JournalDir set.
	WALSync journal.SyncMode
	// SnapshotInterval is the period of the background journal checkpoint
	// (snapshot + log truncation) started by Recover.  Zero selects the
	// default (1 minute); a negative value disables periodic checkpoints.
	SnapshotInterval time.Duration
	// SnapshotBytes additionally triggers a checkpoint whenever the live
	// (un-truncated) journal bytes exceed this threshold, so write-heavy
	// campaigns are compacted by size rather than waiting out the period.
	// Zero disables the size trigger.
	SnapshotBytes int64
	// JobTTL is the UWS-style default destruction TTL: a terminal job (or
	// sweep) is purged together with its file resources this long after it
	// finishes.  Zero keeps results until an explicit DELETE.  Requests
	// override it per job (?destruction=) and per sweep (the spec's
	// destruction field).
	JobTTL time.Duration
	// Guard enables the security mechanism; nil leaves the container
	// open to all clients.
	Guard Guard
	// Logger receives request and lifecycle logs; nil uses log.Default.
	Logger *log.Logger
	// Adapters supplies the adapter registry; nil uses a fresh registry
	// with the built-in command/native/script adapters.
	Adapters *adapter.Registry
	// HTTPClient performs remote file staging; nil uses a client over the
	// shared tuned transport (rest.SharedTransport) so staging reuses
	// keep-alive connections across jobs and containers.
	HTTPClient *http.Client
	// DebugAddr, when non-empty, starts an auxiliary HTTP listener on that
	// address serving net/http/pprof profiles plus /metrics and /status.
	// It is opt-in: profiling endpoints never appear on the public API
	// listener.  Use "127.0.0.1:0" to pick a free port; DebugAddr() on the
	// container reports the bound address.
	DebugAddr string
}

type service struct {
	desc    core.ServiceDescription
	adapter adapter.Interface
	// descJSON and descETag are the precomputed JSON representation of the
	// description (URI filled in at the current base URL) and its
	// content-hash entity tag.  Descriptions are immutable between Deploy
	// and SetBaseURL, so GET /services/{name} serves these bytes verbatim
	// and answers If-None-Match revalidations with 304.
	descJSON []byte
	descETag string
}

// renderDescCache serializes a description (with the given absolute URI)
// exactly as rest.WriteJSON would and derives its entity tag from a content
// hash.  A marshalling failure leaves the cache empty; the handler then
// falls back to dynamic encoding.
func renderDescCache(d core.ServiceDescription, uri string) ([]byte, string) {
	d.URI = uri
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(d); err != nil {
		return nil, ""
	}
	sum := sha256.Sum256(buf.Bytes())
	return buf.Bytes(), `"` + hex.EncodeToString(sum[:8]) + `"`
}

// refreshDescCacheLocked recomputes the cached representation of one
// service.  Callers must hold c.mu.
func (c *Container) refreshDescCacheLocked(svc *service) {
	svc.descJSON, svc.descETag = renderDescCache(svc.desc, c.serviceURILocked(svc.desc.Name))
}

// Container is a running Everest instance.
type Container struct {
	registry   *adapter.Registry
	files      *FileStore
	jobs       *JobManager
	events     *events.Bus
	maxWait    time.Duration
	guard      Guard
	logger     *log.Logger
	httpClient *http.Client
	workRoot   string
	dataDir    string
	ownsData   bool
	replicaID  string
	debugSrv   *http.Server
	// journal is the write-ahead log of the durability subsystem (nil when
	// Options.JournalDir is empty).  snapStop/snapWG manage the background
	// checkpoint loop started by Recover.
	journal      *journal.Journal
	snapInterval time.Duration
	snapBytes    int64
	snapStop     chan struct{}
	snapWG       sync.WaitGroup
	snapOnce     sync.Once

	// fetchMu/fetches singleflight cross-replica file pulls: concurrent
	// consumers of one foreign file ID trigger a single blob transfer.
	fetchMu sync.Mutex
	fetches map[string]*fetchFlight

	mu       sync.RWMutex
	services map[string]*service
	baseURL  string
}

// New creates a container with the given options.
func New(opts Options) (*Container, error) {
	if opts.ReplicaID != "" && !core.ValidReplicaName(opts.ReplicaID) {
		return nil, fmt.Errorf("container: invalid replica ID %q (want 1-16 of [a-z0-9])", opts.ReplicaID)
	}
	dataDir := opts.DataDir
	ownsData := false
	if dataDir == "" {
		dir, err := os.MkdirTemp("", "everest-")
		if err != nil {
			return nil, fmt.Errorf("container: %w", err)
		}
		dataDir = dir
		ownsData = true
	}
	files, err := NewFileStore(filepath.Join(dataDir, "files"))
	if err != nil {
		return nil, err
	}
	files.SetIDPrefix(opts.ReplicaID)
	workRoot := filepath.Join(dataDir, "work")
	if err := os.MkdirAll(workRoot, 0o700); err != nil {
		return nil, fmt.Errorf("container: %w", err)
	}
	logger := opts.Logger
	if logger == nil {
		logger = log.Default()
	}
	registry := opts.Adapters
	if registry == nil {
		registry = adapter.NewRegistry()
	}
	httpClient := opts.HTTPClient
	if httpClient == nil {
		// Staging streams arbitrarily large files, so the overall timeout
		// is generous; job contexts cancel hung transfers.
		httpClient = rest.NewHTTPClient(5 * time.Minute)
	}
	c := &Container{
		registry:   registry,
		files:      files,
		guard:      opts.Guard,
		logger:     logger,
		httpClient: httpClient,
		workRoot:   workRoot,
		dataDir:    dataDir,
		ownsData:   ownsData,
		replicaID:  opts.ReplicaID,
		services:   make(map[string]*service),
	}
	memoEntries := opts.MemoMaxEntries
	if memoEntries == 0 {
		memoEntries = defaultMemoEntries
	}
	memoBytes := opts.MemoMaxBytes
	if memoBytes == 0 {
		memoBytes = defaultMemoBytes
	}
	batchMax := opts.BatchMaxSize
	if batchMax == 0 {
		batchMax = defaultBatchMaxSize
	}
	sweepWidth := opts.MaxSweepWidth
	if sweepWidth == 0 {
		sweepWidth = defaultMaxSweepWidth
	} else if sweepWidth < 0 {
		sweepWidth = 0 // no cap
	}
	c.maxWait = opts.MaxWaitWindow
	if c.maxWait == 0 {
		c.maxWait = defaultMaxWaitWindow
	} else if c.maxWait < 0 {
		c.maxWait = 0 // no cap
	}
	if opts.JournalDir != "" {
		jl, err := journal.Open(opts.JournalDir, journal.Options{Mode: opts.WALSync})
		if err != nil {
			if ownsData {
				_ = os.RemoveAll(dataDir)
			}
			return nil, fmt.Errorf("container: %w", err)
		}
		c.journal = jl
		files.setJournal(jl, c.logger.Printf)
		c.snapInterval = opts.SnapshotInterval
		if c.snapInterval == 0 {
			c.snapInterval = defaultSnapshotInterval
		}
		c.snapBytes = opts.SnapshotBytes
		c.snapStop = make(chan struct{})
	}
	c.events = events.NewBus(events.Options{RingSize: opts.EventRingSize})
	c.jobs = newJobManager(c, jobManagerConfig{
		workers:       opts.Workers,
		queueSize:     opts.QueueSize,
		deadline:      opts.DefaultJobDeadline,
		memoEntries:   memoEntries,
		memoBytes:     memoBytes,
		batchMax:      batchMax,
		maxSweepWidth: sweepWidth,
		jobTTL:        opts.JobTTL,
	})
	if opts.DebugAddr != "" {
		srv, err := obs.ServeDebug(opts.DebugAddr)
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("container: debug listener: %w", err)
		}
		c.debugSrv = srv
		logger.Printf("container: debug/pprof listener on http://%s/debug/pprof/", srv.Addr)
	}
	return c, nil
}

// DebugAddr returns the bound address of the debug/pprof listener, or ""
// when Options.DebugAddr was not set.
func (c *Container) DebugAddr() string {
	if c.debugSrv == nil {
		return ""
	}
	return c.debugSrv.Addr
}

// Close shuts down the worker pool and removes container-owned data.
func (c *Container) Close() {
	unregisterLocal(c.BaseURL(), c)
	if c.debugSrv != nil {
		_ = c.debugSrv.Close()
		c.debugSrv = nil
	}
	c.stopSnapshotter()
	c.jobs.Close()
	// The job manager drained first, so its terminal transitions reached
	// the bus; closing the bus now releases every remaining event stream.
	if c.events != nil {
		c.events.Close()
	}
	// The journal closes after the job manager: the shutdown's CANCELLED
	// transitions are themselves journaled, so a clean restart re-queues
	// nothing.
	if c.journal != nil {
		if err := c.journal.Close(); err != nil {
			c.logger.Printf("container: journal close: %v", err)
		}
	}
	if c.ownsData {
		_ = os.RemoveAll(c.dataDir)
	}
}

// Events exposes the container's event bus — the push-based complement to
// polling the REST resources (DESIGN.md §5g).
func (c *Container) Events() *events.Bus { return c.events }

// ReplicaID returns the container's federated identity ("" outside a
// federation).
func (c *Container) ReplicaID() string { return c.replicaID }

// newID mints one resource identifier, carrying the replica affinity prefix
// when the container is part of a federation.
func (c *Container) newID() string { return core.TagID(c.replicaID, core.NewID()) }

// defaultMaxWaitWindow caps blocking GETs and SSE idle time unless
// Options.MaxWaitWindow overrides it: long enough for real long-polling,
// short enough that an abandoned ?wait=24h cannot pin a goroutine all day.
const defaultMaxWaitWindow = 60 * time.Second

// clampWait bounds a client-requested wait window by MaxWaitWindow.
func (c *Container) clampWait(d time.Duration) time.Duration {
	if c.maxWait > 0 && d > c.maxWait {
		return c.maxWait
	}
	return d
}

// advertiseWaitMax announces the server's wait ceiling on a response so
// clients shrink their requested windows instead of being silently
// clamped.
func (c *Container) advertiseWaitMax(h http.Header) {
	if c.maxWait > 0 {
		h.Set(rest.WaitMaxHeader, c.maxWait.String())
	}
}

// notifyService publishes a deploy/undeploy notice on the service feed.
func (c *Container) notifyService(name, change string) {
	if c.events == nil || !c.events.Active(events.ServiceTopic(name)) {
		return
	}
	data, err := json.Marshal(map[string]string{"service": name, "change": change})
	if err != nil {
		return
	}
	c.events.Publish(events.ServiceTopic(name), events.TypeService, false, data)
}

// Deploy adds a service to the container.  Deployment fails if the
// description is malformed or the adapter cannot be configured — the
// paper's experience that services are debugged at deployment time, not at
// first call.
func (c *Container) Deploy(cfg ServiceConfig) error {
	if err := cfg.Description.Validate(); err != nil {
		return err
	}
	a, err := c.registry.New(cfg.Adapter.Kind, cfg.Adapter.Config)
	if err != nil {
		return fmt.Errorf("container: deploy %q: %w", cfg.Description.Name, err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, exists := c.services[cfg.Description.Name]; exists {
		return core.ErrConflict("service %q is already deployed", cfg.Description.Name)
	}
	svc := &service{desc: cfg.Description, adapter: a}
	c.refreshDescCacheLocked(svc)
	c.services[cfg.Description.Name] = svc
	// A (re)deployed adapter may compute differently for the same inputs:
	// cached results of this service are no longer trustworthy.
	if c.jobs != nil && c.jobs.memo != nil {
		c.jobs.memo.dropService(cfg.Description.Name)
	}
	c.logger.Printf("container: deployed service %q (adapter %s)",
		cfg.Description.Name, cfg.Adapter.Kind)
	c.notifyService(cfg.Description.Name, "deploy")
	return nil
}

// Undeploy removes a service.  Jobs already submitted keep running.
func (c *Container) Undeploy(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.services[name]; !ok {
		return core.ErrNotFound("service", name)
	}
	delete(c.services, name)
	if c.jobs != nil && c.jobs.memo != nil {
		c.jobs.memo.dropService(name)
	}
	c.notifyService(name, "undeploy")
	return nil
}

// DeployAll deploys every service in the list, stopping at the first error.
func (c *Container) DeployAll(cfgs []ServiceConfig) error {
	for _, cfg := range cfgs {
		if err := c.Deploy(cfg); err != nil {
			return err
		}
	}
	return nil
}

func (c *Container) service(name string) (*service, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	svc, ok := c.services[name]
	if !ok {
		return nil, core.ErrNotFound("service", name)
	}
	return svc, nil
}

// Services returns the deployed service descriptions, sorted by name, with
// absolute URIs filled in.
func (c *Container) Services() []core.ServiceDescription {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]core.ServiceDescription, 0, len(c.services))
	for _, svc := range c.services {
		d := svc.desc
		d.URI = c.serviceURILocked(d.Name)
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Describe returns the description of one deployed service.
func (c *Container) Describe(name string) (core.ServiceDescription, error) {
	svc, err := c.service(name)
	if err != nil {
		return core.ServiceDescription{}, err
	}
	d := svc.desc
	d.URI = c.ServiceURI(name)
	return d, nil
}

// DescribeCached returns the precomputed JSON representation of a service
// description together with its entity tag.  The bytes are immutable; they
// are rebuilt only by Deploy and SetBaseURL.  A nil body (marshalling
// failed at deploy time) tells the caller to fall back to Describe plus
// dynamic encoding.
func (c *Container) DescribeCached(name string) (body []byte, etag string, err error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	svc, ok := c.services[name]
	if !ok {
		return nil, "", core.ErrNotFound("service", name)
	}
	return svc.descJSON, svc.descETag, nil
}

// Jobs exposes the job manager.
func (c *Container) Jobs() *JobManager { return c.jobs }

// Files exposes the file store.
func (c *Container) Files() *FileStore { return c.files }

// SetBaseURL records the externally visible base URL of the container,
// used to mint absolute resource URIs.  Call it once the listener address
// is known.
func (c *Container) SetBaseURL(u string) {
	c.mu.Lock()
	old := c.baseURL
	c.baseURL = strings.TrimRight(u, "/")
	base := c.baseURL
	// The absolute URI embedded in each cached description changed with
	// the base URL; rebuild the caches (and thereby the entity tags).
	for _, svc := range c.services {
		c.refreshDescCacheLocked(svc)
	}
	c.mu.Unlock()
	// Cached computation outputs embed absolute file URIs minted under the
	// old base URL; drop them rather than serve unreachable references.
	if old != c.BaseURL() && c.jobs != nil && c.jobs.memo != nil {
		c.jobs.memo.reset()
	}
	// Journal the URL so a same-URL restart keeps the recovered memo index
	// (Recover restores the URL first, making the reset above a no-op).
	if base != "" && base != old {
		c.logRecord(journal.KindBaseURL, journal.BaseURLRecord{URL: base})
	}
	// Publish the container in the in-process registry so callers holding
	// its URIs can take the local invocation fast path.
	unregisterLocal(old, c)
	registerLocal(base, c)
}

// HasGuard reports whether the container enforces authentication and
// authorization.  In-process fast paths must not bypass a guard, so they
// fall back to HTTP when this is true.
func (c *Container) HasGuard() bool { return c.guard != nil }

// BaseURL returns the configured base URL ("" before SetBaseURL).
func (c *Container) BaseURL() string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.baseURL
}

// ServiceURI returns the absolute URI of a service resource.
func (c *Container) ServiceURI(name string) string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.serviceURILocked(name)
}

func (c *Container) serviceURILocked(name string) string {
	if c.baseURL == "" {
		return "/services/" + name
	}
	return c.baseURL + "/services/" + name
}

// JobURI returns the absolute URI of a job resource.
func (c *Container) JobURI(serviceName, jobID string) string {
	return c.ServiceURI(serviceName) + "/jobs/" + jobID
}

// fileURI returns the absolute URI of a file resource, or the bare ID when
// no base URL is known yet (local-only use).
func (c *Container) fileURI(id string) string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.baseURL == "" {
		return id
	}
	return c.baseURL + "/files/" + id
}

// localFileID reports whether ref (the payload of a file reference)
// identifies a file in this container's store, returning its local ID.
func (c *Container) localFileID(ref string) (string, bool) {
	if fileIDPattern.MatchString(ref) {
		return ref, true
	}
	base := c.BaseURL()
	if base != "" && strings.HasPrefix(ref, base+"/files/") {
		id := strings.TrimPrefix(ref, base+"/files/")
		if fileIDPattern.MatchString(id) {
			return id, true
		}
	}
	return "", false
}

// decorate fills the URI fields of a job snapshot.
func (c *Container) decorate(j *core.Job) *core.Job {
	j.URI = c.JobURI(j.Service, j.ID)
	return j
}

// SweepURI returns the absolute URI of a sweep resource.
func (c *Container) SweepURI(serviceName, sweepID string) string {
	return c.ServiceURI(serviceName) + "/sweeps/" + sweepID
}

// decorateSweep fills the URI fields of a sweep snapshot.
func (c *Container) decorateSweep(s *core.Sweep) *core.Sweep {
	s.URI = c.SweepURI(s.Service, s.ID)
	s.JobsURI = s.URI + "/jobs"
	return s
}
