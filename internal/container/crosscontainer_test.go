package container_test

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"mathcloud/internal/client"
	"mathcloud/internal/container"
	"mathcloud/internal/core"
	"mathcloud/internal/jsonschema"
	"mathcloud/internal/workflow"
)

func newTestServer(t *testing.T, c *container.Container) string {
	t.Helper()
	srv := httptest.NewServer(c.Handler())
	t.Cleanup(srv.Close)
	c.SetBaseURL(srv.URL)
	return srv.URL
}

// startTwoContainers brings up two independent containers: one with a
// service producing a file-resource output, one consuming file inputs.
func startTwoContainers(t *testing.T) (producerURL, consumerURL string) {
	t.Helper()
	mk := func() (*container.Container, string) {
		c, err := container.New(container.Options{Workers: 4, Logger: quietLogger()})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(c.Close)
		srv := newTestServer(t, c)
		return c, srv
	}
	producer, producerSrv := mk()
	consumer, consumerSrv := mk()

	if err := producer.Deploy(container.ServiceConfig{
		Description: core.ServiceDescription{
			Name:    "emit",
			Inputs:  []core.Param{{Name: "text", Schema: jsonschema.New(jsonschema.TypeString)}},
			Outputs: []core.Param{{Name: "file"}},
		},
		Adapter: container.AdapterSpec{
			Kind: "command",
			Config: json.RawMessage(`{
				"command": "/bin/sh",
				"args": ["-c", "printf '%s' \"{text}\" > payload.txt"],
				"outputFiles": {"file": "payload.txt"}
			}`),
		},
	}); err != nil {
		t.Fatal(err)
	}
	if err := consumer.Deploy(container.ServiceConfig{
		Description: core.ServiceDescription{
			Name:    "shout",
			Inputs:  []core.Param{{Name: "data"}},
			Outputs: []core.Param{{Name: "result"}},
		},
		Adapter: container.AdapterSpec{
			Kind: "command",
			Config: json.RawMessage(`{
				"command": "/bin/sh",
				"args": ["-c", "tr a-z A-Z < {data.path}"],
				"stdoutOutput": "result"
			}`),
		},
	}); err != nil {
		t.Fatal(err)
	}
	return producerSrv, consumerSrv
}

// TestCrossContainerFileStaging passes a file resource minted by one
// container as an input to a service in another container; the consumer
// must fetch the content over HTTP — the paper's distributed data-passing
// path.
func TestCrossContainerFileStaging(t *testing.T) {
	producerURL, consumerURL := startTwoContainers(t)
	cl := client.New()
	ctx := context.Background()

	out, err := cl.Service(producerURL+"/services/emit").Call(ctx,
		core.Values{"text": "across containers"})
	if err != nil {
		t.Fatal(err)
	}
	ref, _ := out["file"].(string)
	if !strings.HasPrefix(ref, core.FileRefPrefix+"http") {
		t.Fatalf("file ref %q is not an absolute URI", ref)
	}

	out, err = cl.Service(consumerURL+"/services/shout").Call(ctx,
		core.Values{"data": ref})
	if err != nil {
		t.Fatal(err)
	}
	if out["result"] != "ACROSS CONTAINERS" {
		t.Errorf("result = %q", out["result"])
	}
}

// TestWorkflowAcrossContainers composes services living in different
// containers into one workflow; the file reference flows along an edge.
func TestWorkflowAcrossContainers(t *testing.T) {
	producerURL, consumerURL := startTwoContainers(t)
	wf := &workflow.Workflow{
		Name: "pipeline",
		Blocks: []workflow.Block{
			{ID: "in", Type: workflow.BlockInput, Name: "text",
				Schema: jsonschema.New(jsonschema.TypeString)},
			{ID: "emit", Type: workflow.BlockService, Service: producerURL + "/services/emit"},
			{ID: "shout", Type: workflow.BlockService, Service: consumerURL + "/services/shout"},
			{ID: "out", Type: workflow.BlockOutput, Name: "result"},
		},
		Edges: []workflow.Edge{
			{From: workflow.PortRef{Block: "in", Port: "value"}, To: workflow.PortRef{Block: "emit", Port: "text"}},
			{From: workflow.PortRef{Block: "emit", Port: "file"}, To: workflow.PortRef{Block: "shout", Port: "data"}},
			{From: workflow.PortRef{Block: "shout", Port: "result"}, To: workflow.PortRef{Block: "out", Port: "value"}},
		},
	}
	inv := &workflow.HTTPInvoker{}
	engine := &workflow.Engine{Invoker: inv, Describer: inv}
	out, err := engine.Run(context.Background(), wf, core.Values{"text": "two hosts"})
	if err != nil {
		t.Fatal(err)
	}
	if out["result"] != "TWO HOSTS" {
		t.Errorf("result = %q", out["result"])
	}
}
