package container

import (
	"fmt"
	"time"

	"mathcloud/internal/core"
	"mathcloud/internal/journal"
)

// This file is the container side of the durability subsystem (DESIGN.md
// §5i).  The write path journals every control-plane mutation — job
// lifecycle, sweep membership, file-store references, memo entries — through
// the logging helpers below; Recover replays the journal at boot and rebuilds
// the in-memory state: terminal jobs verbatim, WAITING jobs re-queued,
// RUNNING jobs re-driven from the start (executions died with the process),
// sweeps re-derived from their one campaign record, and the memo index
// re-validated against the file store before re-entering the cache.
// Checkpoint periodically folds the whole state into a snapshot so the log
// stays short.

const (
	// defaultSnapshotInterval is the checkpoint period when
	// Options.SnapshotInterval is zero.
	defaultSnapshotInterval = time.Minute
	// reapInterval is how often the destruction-time reaper scans for
	// expired terminal jobs and sweeps.
	reapInterval = 30 * time.Second
)

// logRecord appends one record to the container's journal, if journaling is
// enabled.  Append errors are logged, not propagated: the in-memory state is
// already mutated, and failing the client request now would desynchronize the
// two — better to serve degraded durability and say so loudly.
func (c *Container) logRecord(kind journal.Kind, v any) {
	if c.journal == nil {
		return
	}
	if err := c.journal.Append(kind, v); err != nil {
		c.logger.Printf("container: journal: append %v: %v", kind, err)
	}
}

// logJob journals the full image of a job record (submit time, cache hits,
// snapshot).
func (jm *JobManager) logJob(rec *jobRecord) {
	if jm.c.journal == nil {
		return
	}
	sweepID := ""
	if rec.sweep != nil {
		sweepID = rec.sweep.id
	}
	jm.c.logRecord(journal.KindJob, journal.JobRecord{
		Job: rec.snapshot(), SweepID: sweepID, TTL: core.Duration(rec.ttl),
	})
}

// logJobEnd journals a job's terminal transition.
func (jm *JobManager) logJobEnd(rec *jobRecord) {
	if jm.c.journal == nil {
		return
	}
	snap := rec.snapshot()
	jm.c.logRecord(journal.KindJobEnd, journal.JobEndRecord{
		ID: snap.ID, State: snap.State, Outputs: snap.Outputs, Error: snap.Error,
		Finished: snap.Finished, Destruction: snap.Destruction,
	})
}

// replayJob accumulates everything the journal said about one job ID.  The
// records tolerate arrival out of order: a worker's start record may precede
// the submitter's job record in the log (they are appended outside any common
// lock), so each piece is folded in independently and resolved at the end.
type replayJob struct {
	// hasJob marks that a full KindJob image was seen.  A job with no image
	// that is not a sweep child was never acknowledged to a client (the
	// image is appended before Submit returns) and is dropped.
	hasJob   bool
	job      *core.Job
	sweepID  string
	ttl      time.Duration
	hasStart bool
	started  time.Time
	end      *journal.JobEndRecord
	purged   bool
}

// replayState is the fold of one journal replay: per-ID upsert maps, last
// record wins, with insertion order retained so requeue order is stable.
type replayState struct {
	baseURL    string
	jobs       map[string]*replayJob
	jobOrder   []string
	sweeps     map[string]*journal.SweepRecord
	sweepOrder []string
	sweepGone  map[string]bool
	files      map[string]*journal.FilePutRecord
	fileOrder  []string
	memos      map[string]*journal.MemoPutRecord
	memoOrder  []string
	counts     map[string]int
}

func newReplayState() *replayState {
	return &replayState{
		jobs:      make(map[string]*replayJob),
		sweeps:    make(map[string]*journal.SweepRecord),
		sweepGone: make(map[string]bool),
		files:     make(map[string]*journal.FilePutRecord),
		memos:     make(map[string]*journal.MemoPutRecord),
		counts:    make(map[string]int),
	}
}

func (st *replayState) job(id string) *replayJob {
	rj, ok := st.jobs[id]
	if !ok {
		rj = &replayJob{}
		st.jobs[id] = rj
		st.jobOrder = append(st.jobOrder, id)
	}
	return rj
}

func (st *replayState) apply(kind journal.Kind, data []byte) error {
	switch kind {
	case journal.KindJob:
		var r journal.JobRecord
		if err := journal.Decode(data, &r); err != nil {
			return err
		}
		if r.Job == nil || r.Job.ID == "" {
			return nil
		}
		rj := st.job(r.Job.ID)
		rj.hasJob = true
		rj.job = r.Job
		rj.sweepID = r.SweepID
		rj.ttl = r.TTL.Std()
	case journal.KindJobStart:
		var r journal.JobStartRecord
		if err := journal.Decode(data, &r); err != nil {
			return err
		}
		rj := st.job(r.ID)
		rj.hasStart = true
		rj.started = r.Started
	case journal.KindJobEnd:
		var r journal.JobEndRecord
		if err := journal.Decode(data, &r); err != nil {
			return err
		}
		st.job(r.ID).end = &r
	case journal.KindJobPurge:
		var r journal.JobPurgeRecord
		if err := journal.Decode(data, &r); err != nil {
			return err
		}
		// Keep the end record: a purged sweep child still counts toward its
		// sweep's terminal histogram.
		st.job(r.ID).purged = true
	case journal.KindSweep:
		var r journal.SweepRecord
		if err := journal.Decode(data, &r); err != nil {
			return err
		}
		if _, seen := st.sweeps[r.ID]; !seen {
			st.sweepOrder = append(st.sweepOrder, r.ID)
		}
		st.sweeps[r.ID] = &r
	case journal.KindSweepPurge:
		var r journal.SweepPurgeRecord
		if err := journal.Decode(data, &r); err != nil {
			return err
		}
		st.sweepGone[r.ID] = true
	case journal.KindFilePut:
		var r journal.FilePutRecord
		if err := journal.Decode(data, &r); err != nil {
			return err
		}
		if _, seen := st.files[r.ID]; !seen {
			st.fileOrder = append(st.fileOrder, r.ID)
		}
		st.files[r.ID] = &r
	case journal.KindFileDel:
		var r journal.FileDelRecord
		if err := journal.Decode(data, &r); err != nil {
			return err
		}
		delete(st.files, r.ID)
	case journal.KindMemoPut:
		var r journal.MemoPutRecord
		if err := journal.Decode(data, &r); err != nil {
			return err
		}
		if _, seen := st.memos[r.Key]; !seen {
			st.memoOrder = append(st.memoOrder, r.Key)
		}
		st.memos[r.Key] = &r
	case journal.KindBaseURL:
		var r journal.BaseURLRecord
		if err := journal.Decode(data, &r); err != nil {
			return err
		}
		st.baseURL = r.URL
	default:
		// A kind this container does not own (catalogue records in a shared
		// journal, or a future kind): skip, do not fail the boot.
		return nil
	}
	st.counts[kind.String()]++
	return nil
}

// Recover replays the write-ahead journal and rebuilds the container state.
// Call it once, after every service is deployed (re-driven jobs need their
// adapters) and before the listener starts serving.  With journaling
// disabled it is a no-op.  Recover also starts the periodic checkpointer —
// deliberately not started in New, so a checkpoint can never run before the
// journal it would truncate has been replayed.
func (c *Container) Recover() error {
	if c.journal == nil {
		return nil
	}
	st := newReplayState()
	if err := c.journal.Replay(st.apply); err != nil {
		return fmt.Errorf("container: recover: %w", err)
	}

	// Base URL first: recovered memo outputs and job outputs embed absolute
	// file URIs minted under it.  Re-setting the same URL later (when the
	// listener comes up) is then a no-op that keeps the memo index.
	if st.baseURL != "" {
		c.SetBaseURL(st.baseURL)
	}

	// File index: every live ID whose blob survived.  Blobs lost with the
	// crash (SyncOff page cache) drop their IDs with a log line.
	files := 0
	for _, id := range st.fileOrder {
		fr, ok := st.files[id]
		if !ok {
			continue
		}
		if err := c.files.restoreFile(fr.ID, fr.Digest, fr.Size, fr.Owner); err != nil {
			c.logger.Printf("container: recover: %v", err)
			continue
		}
		files++
	}
	if n := c.files.gcOrphans(); n > 0 {
		c.logger.Printf("container: recover: removed %d orphan blobs/temp files", n)
	}

	jobs, sweeps, requeued := c.jobs.restoreState(st)
	memos := c.restoreMemo(st)

	for kind, n := range st.counts {
		metRecoveryReplayed.With(kind).Add(float64(n))
	}
	c.logger.Printf("container: recovered %d jobs (%d re-queued), %d sweeps, %d files, %d memo entries",
		jobs, requeued, sweeps, files, memos)
	c.startSnapshotter()
	return nil
}

// rebuildJob resolves the replayed pieces of one job into its boot-time
// image: the last full image (or a synthesized sweep-child baseline) with
// the newer start/end transitions folded in.  A job that started but never
// ended died with the process and comes back WAITING for re-drive.
func rebuildJob(job *core.Job, rj *replayJob) *core.Job {
	if rj == nil {
		return job
	}
	switch {
	case rj.end != nil:
		job.State = rj.end.State
		if rj.end.Outputs != nil {
			job.Outputs = rj.end.Outputs
		}
		job.Error = rj.end.Error
		job.Finished = rj.end.Finished
		job.Destruction = rj.end.Destruction
		if rj.hasStart && job.Started.IsZero() {
			job.Started = rj.started
		}
	case !job.State.Terminal():
		job.State = core.StateWaiting
		job.Started = time.Time{}
	}
	return job
}

// countInto folds one terminal (or waiting) child state into a sweep count
// histogram.
func countInto(counts *core.SweepCounts, state core.JobState) {
	switch state {
	case core.StateWaiting:
		counts.Waiting++
	case core.StateRunning:
		counts.Running++
	case core.StateDone:
		counts.Done++
	case core.StateError:
		counts.Error++
	case core.StateCancelled:
		counts.Cancelled++
	}
}

// restoreState rebuilds the job registry and the sweep table from a replay.
func (jm *JobManager) restoreState(st *replayState) (jobs, sweeps, requeued int) {
	// Sweeps first: children link back to their sweepRecord.
	for _, sid := range st.sweepOrder {
		sr, ok := st.sweeps[sid]
		if !ok || st.sweepGone[sid] {
			continue
		}
		sw := &sweepRecord{
			jm:       jm,
			id:       sr.ID,
			service:  sr.Service,
			owner:    sr.Owner,
			traceID:  sr.TraceID,
			created:  sr.Created,
			width:    sr.Width,
			childIDs: sr.ChildIDs,
			template: sr.Template,
			points:   sr.Points,
			ttl:      sr.TTL.Std(),
			done:     make(chan struct{}),
		}
		spec := core.SweepSpec{Template: sr.Template}
		var pending []*jobRecord
		var lastFinish time.Time
		for i, cid := range sr.ChildIDs {
			rj := st.jobs[cid]
			if rj != nil && rj.purged {
				// Destroyed individually before the crash: its terminal state
				// still counts toward the sweep, but the record stays gone.
				state := core.StateCancelled
				if rj.end != nil {
					state = rj.end.State
				} else if rj.hasJob && rj.job.State.Terminal() {
					state = rj.job.State
				}
				countInto(&sw.counts, state)
				if state == core.StateError && sw.firstError == "" && rj.end != nil {
					sw.firstError = rj.end.Error
				}
				continue
			}
			var job *core.Job
			if rj != nil && rj.hasJob && rj.job != nil {
				job = rj.job
			} else {
				// Only the campaign record knows this child: re-derive its
				// inputs from template+points, exactly as SubmitSweep did.
				var override core.Values
				if i < len(sr.Points) {
					override = sr.Points[i]
				}
				job = &core.Job{
					ID: cid, Service: sr.Service, State: core.StateWaiting,
					Inputs: spec.MergePoint(override), Owner: sr.Owner,
					Created: sr.Created, Submitted: sr.Created, TraceID: sr.TraceID,
				}
			}
			job = rebuildJob(job, rj)
			rec := &jobRecord{job: job, done: make(chan struct{}), sweep: sw}
			if job.State.Terminal() {
				close(rec.done)
				if job.Finished.After(lastFinish) {
					lastFinish = job.Finished
				}
				if job.State == core.StateError && sw.firstError == "" {
					sw.firstError = job.Error
				}
			} else {
				if rj != nil && rj.hasStart {
					// Re-driven: discard partial outputs of the dead run.
					jm.c.files.DeleteOwnedBy(cid)
				}
				pending = append(pending, rec)
			}
			countInto(&sw.counts, job.State)
			sh := jm.shard(cid)
			sh.mu.Lock()
			sh.jobs[cid] = rec
			sh.mu.Unlock()
			jobs++
		}
		sw.pending = pending
		if sw.counts.Terminal() == sw.width {
			sw.finished = lastFinish
			if sw.finished.IsZero() {
				sw.finished = time.Now()
			}
			if sw.ttl > 0 {
				sw.destruction = sw.finished.Add(sw.ttl)
			}
			close(sw.done)
		} else {
			// Live again: re-own any staged shared inputs so finalize still
			// releases them, and count toward the active gauge.
			sw.fileIDs = jm.c.files.ownedBy(sw.id)
			metSweepActive.Add(1)
			jm.sweeps.pendingCount.Add(int64(len(pending)))
		}
		jm.sweeps.mu.Lock()
		jm.sweeps.sweeps[sw.id] = sw
		jm.sweeps.mu.Unlock()
		requeued += len(pending)
		sweeps++
	}

	// Standalone jobs.  Sweep children were handled above; a child whose
	// sweep was purged is dead with it.
	for _, id := range st.jobOrder {
		rj := st.jobs[id]
		if rj.sweepID != "" || !rj.hasJob || rj.job == nil || rj.purged {
			continue
		}
		job := rebuildJob(rj.job, rj)
		rec := &jobRecord{job: job, done: make(chan struct{}), ttl: rj.ttl}
		if job.State.Terminal() {
			close(rec.done)
		} else if rj.hasStart {
			jm.c.files.DeleteOwnedBy(id)
		}
		sh := jm.shard(id)
		sh.mu.Lock()
		sh.jobs[id] = rec
		sh.mu.Unlock()
		jobs++
		if job.State.Terminal() {
			continue
		}
		// Re-queue: straight into the queue while it has room, the restart
		// backlog otherwise (workers drain it as capacity frees up).
		requeued++
		rec.queued.Store(true)
		metJobsWaiting.Add(1)
		select {
		case jm.queue <- rec:
		default:
			if rec.queued.CompareAndSwap(true, false) {
				metJobsWaiting.Add(-1)
			}
			jm.backlogMu.Lock()
			jm.backlog = append(jm.backlog, rec)
			jm.backlogMu.Unlock()
			jm.backlogCount.Add(1)
		}
	}

	// Kick the pumps once: everything pending starts flowing without waiting
	// for the first natural job completion.
	jm.sweeps.pump()
	jm.pumpBacklog()
	return jobs, sweeps, requeued
}

// restoreMemo re-enters replayed memo entries whose world still holds: the
// service is deployed and still deterministic, the backing job survived, and
// every file reference in the outputs resolves in the restored file store.
func (c *Container) restoreMemo(st *replayState) int {
	jm := c.jobs
	if jm.memo == nil {
		return 0
	}
	restored := 0
	for _, key := range st.memoOrder {
		mr, ok := st.memos[key]
		if !ok {
			continue
		}
		svc, err := c.service(mr.Service)
		if err != nil || !svc.desc.Deterministic {
			continue
		}
		if _, err := jm.record(mr.JobID); err != nil {
			// The backing job is gone; a hit would hand out orphaned URIs.
			continue
		}
		valid := true
		for _, v := range mr.Outputs {
			ref, isFile := core.FileRefID(v)
			if !isFile {
				continue
			}
			id, local := c.localFileID(ref)
			if !local {
				valid = false
				break
			}
			if _, err := c.files.Digest(id); err != nil {
				valid = false
				break
			}
		}
		if !valid {
			continue
		}
		jm.memo.store(mr.Key, mr.Service, mr.JobID, mr.Outputs)
		restored++
	}
	return restored
}

// pumpBacklog feeds restart-backlog jobs into freed queue capacity.  Workers
// call it after every processed job; the common no-backlog case is one atomic
// load.  Only one pump runs at a time, mirroring the sweep pump.
func (jm *JobManager) pumpBacklog() {
	if jm.backlogCount.Load() == 0 {
		return
	}
	if !jm.backlogPumping.CompareAndSwap(false, true) {
		return
	}
	defer jm.backlogPumping.Store(false)
	for {
		jm.backlogMu.Lock()
		if len(jm.backlog) == 0 {
			jm.backlogMu.Unlock()
			return
		}
		rec := jm.backlog[0]
		jm.backlogMu.Unlock()
		select {
		case <-rec.done:
			// Cancelled while backlogged: nothing to enqueue.
			jm.dropBacklogHead(rec)
			continue
		default:
		}
		rec.queued.Store(true)
		metJobsWaiting.Add(1)
		select {
		case jm.queue <- rec:
			jm.dropBacklogHead(rec)
		default:
			if rec.queued.CompareAndSwap(true, false) {
				metJobsWaiting.Add(-1)
			}
			return
		}
	}
}

// dropBacklogHead removes rec from the head of the backlog if it still is
// the head.
func (jm *JobManager) dropBacklogHead(rec *jobRecord) {
	jm.backlogMu.Lock()
	if len(jm.backlog) > 0 && jm.backlog[0] == rec {
		jm.backlog = jm.backlog[1:]
		jm.backlogCount.Add(-1)
	}
	jm.backlogMu.Unlock()
}

// reaper periodically purges terminal jobs and sweeps past their destruction
// time (UWS §2: results have a lifetime, not a lease on the server forever).
func (jm *JobManager) reaper() {
	defer jm.wg.Done()
	t := time.NewTicker(reapInterval)
	defer t.Stop()
	for {
		select {
		case <-jm.closing:
			return
		case <-t.C:
			jm.Reap(time.Now())
		}
	}
}

// Reap purges every terminal job and sweep whose destruction time is at or
// before now, returning how many jobs it destroyed.  Exported for tests and
// for operators who want an explicit sweep (the background reaper calls it
// every 30s).
func (jm *JobManager) Reap(now time.Time) int {
	reaped := 0
	jm.sweeps.mu.RLock()
	sweeps := make([]*sweepRecord, 0, len(jm.sweeps.sweeps))
	for _, sw := range jm.sweeps.sweeps {
		sweeps = append(sweeps, sw)
	}
	jm.sweeps.mu.RUnlock()
	for _, sw := range sweeps {
		sw.mu.Lock()
		d := sw.destruction
		sw.mu.Unlock()
		if d.IsZero() || d.After(now) {
			continue
		}
		// Count the children that still exist; DeleteSweep purges them.
		live := 0
		for _, cid := range sw.childIDs {
			if _, err := jm.record(cid); err == nil {
				live++
			}
		}
		if _, err := jm.DeleteSweep(sw.id); err == nil {
			reaped += live
		}
	}
	for _, rec := range jm.allRecords() {
		if rec.sweep != nil {
			continue // the sweep's own destruction time governs its children
		}
		snap := rec.snapshot()
		if !snap.State.Terminal() || snap.Destruction.IsZero() || snap.Destruction.After(now) {
			continue
		}
		if _, err := jm.Delete(snap.ID); err == nil {
			reaped++
		}
	}
	if reaped > 0 {
		metJobsReaped.Add(float64(reaped))
	}
	return reaped
}

// startSnapshotter launches the periodic checkpoint loop.  Only Recover
// calls it: a checkpoint taken before replay would truncate the very records
// replay needs.
func (c *Container) startSnapshotter() {
	if c.journal == nil || (c.snapInterval <= 0 && c.snapBytes <= 0) {
		return
	}
	// With a size trigger the loop wakes frequently to poll LiveBytes
	// (cheap: one mutex acquisition); the periodic checkpoint still fires
	// on its own schedule.  Interval-only deployments keep the old
	// one-tick-per-checkpoint cadence.
	tick := c.snapInterval
	if c.snapBytes > 0 {
		tick = time.Second
		if c.snapInterval > 0 && c.snapInterval < tick {
			tick = c.snapInterval
		}
	}
	c.snapWG.Add(1)
	go func() {
		defer c.snapWG.Done()
		t := time.NewTicker(tick)
		defer t.Stop()
		lastSnap := time.Now()
		for {
			select {
			case <-c.snapStop:
				return
			case <-t.C:
				due := c.snapInterval > 0 && time.Since(lastSnap) >= c.snapInterval
				oversize := c.snapBytes > 0 && c.journal.LiveBytes() >= c.snapBytes
				if !due && !oversize {
					continue
				}
				if err := c.Checkpoint(); err != nil {
					c.logger.Printf("container: checkpoint: %v", err)
				}
				lastSnap = time.Now()
			}
		}
	}()
}

// stopSnapshotter stops the checkpoint loop and waits for an in-flight
// checkpoint to finish.  Safe to call when journaling is disabled or the
// loop was never started.
func (c *Container) stopSnapshotter() {
	if c.snapStop == nil {
		return
	}
	c.snapOnce.Do(func() { close(c.snapStop) })
	c.snapWG.Wait()
}

// Checkpoint folds the container's full durable state into one journal
// snapshot and truncates the log behind it.  Mutations running concurrently
// land in segments after the snapshot's cut, and every apply path is
// last-wins, so snapshot+tail replay stays correct.
func (c *Container) Checkpoint() error {
	if c.journal == nil {
		return fmt.Errorf("container: journaling is disabled")
	}
	jm := c.jobs
	return c.journal.Snapshot(func(app func(kind journal.Kind, v any) error) error {
		if base := c.BaseURL(); base != "" {
			if err := app(journal.KindBaseURL, journal.BaseURLRecord{URL: base}); err != nil {
				return err
			}
		}
		var err error
		c.files.forEachFile(func(id, digest string, size int64, owner string) {
			if err != nil {
				return
			}
			err = app(journal.KindFilePut, journal.FilePutRecord{ID: id, Digest: digest, Size: size, Owner: owner})
		})
		if err != nil {
			return err
		}
		jm.sweeps.mu.RLock()
		sweeps := make([]*sweepRecord, 0, len(jm.sweeps.sweeps))
		for _, sw := range jm.sweeps.sweeps {
			sweeps = append(sweeps, sw)
		}
		jm.sweeps.mu.RUnlock()
		for _, sw := range sweeps {
			if err := app(journal.KindSweep, journal.SweepRecord{
				ID: sw.id, Service: sw.service, Owner: sw.owner, TraceID: sw.traceID,
				Created: sw.created, Width: sw.width, ChildIDs: sw.childIDs,
				Template: sw.template, Points: sw.points, TTL: core.Duration(sw.ttl),
			}); err != nil {
				return err
			}
		}
		// Full job images, sweep children included: the image carries the
		// whole resolved lifecycle, so replaying it needs no older records.
		for _, rec := range jm.allRecords() {
			sweepID := ""
			if rec.sweep != nil {
				sweepID = rec.sweep.id
			}
			if err := app(journal.KindJob, journal.JobRecord{
				Job: rec.snapshot(), SweepID: sweepID, TTL: core.Duration(rec.ttl),
			}); err != nil {
				return err
			}
		}
		if jm.memo != nil {
			jm.memo.forEach(func(key, service, jobID string, outputs core.Values) {
				if err != nil {
					return
				}
				err = app(journal.KindMemoPut, journal.MemoPutRecord{Key: key, Service: service, JobID: jobID, Outputs: outputs})
			})
		}
		return err
	})
}
