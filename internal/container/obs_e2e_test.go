package container_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"mathcloud/internal/adapter"
	"mathcloud/internal/container"
	"mathcloud/internal/core"
	"mathcloud/internal/obs"
	"mathcloud/internal/rest"
	"mathcloud/internal/rest/resttest"
)

// startObsContainer brings up a container behind a real listener with one
// trivially fast echo service.
func startObsContainer(t *testing.T) (*container.Container, *httptest.Server) {
	t.Helper()
	adapter.RegisterFunc("obstest.echo", func(_ context.Context, in core.Values) (core.Values, error) {
		return core.Values{"y": in["x"]}, nil
	})
	c, err := container.New(container.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	if err := c.Deploy(container.ServiceConfig{
		Description: core.ServiceDescription{
			Name:    "echo",
			Inputs:  []core.Param{{Name: "x", Optional: true}},
			Outputs: []core.Param{{Name: "y"}},
		},
		Adapter: container.AdapterSpec{Kind: "native",
			Config: json.RawMessage(`{"function":"obstest.echo"}`)},
	}); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(c.Handler())
	t.Cleanup(srv.Close)
	c.SetBaseURL(srv.URL)
	return c, srv
}

// scrapeMetrics fetches /metrics, validates the exposition format, and
// returns the sample values keyed by full series name (labels included).
func scrapeMetrics(t *testing.T, base string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateExposition(bytes.NewReader(body)); err != nil {
		t.Fatalf("invalid exposition: %v\n%s", err, body)
	}
	samples := make(map[string]float64)
	sc := bufio.NewScanner(bytes.NewReader(body))
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("unparseable sample %q: %v", line, err)
		}
		samples[line[:i]] = v
	}
	return samples
}

// TestMetricsReflectJobLifecycle is the end-to-end observability check: a
// job submitted over HTTP and polled to DONE must show up in the job
// lifecycle metric families, with non-empty queue-wait and run-time
// histograms, and the job representation must carry the full timeline.
func TestMetricsReflectJobLifecycle(t *testing.T) {
	_, srv := startObsContainer(t)

	before := scrapeMetrics(t, srv.URL)

	req, err := http.NewRequest(http.MethodPost, srv.URL+"/services/echo?wait=10s",
		strings.NewReader(`{"x": 42}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(obs.RequestIDHeader, "obs-e2e-trace-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var job core.Job
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(obs.RequestIDHeader); got != "obs-e2e-trace-1" {
		t.Errorf("response echoed request ID %q", got)
	}
	if job.State != core.StateDone {
		t.Fatalf("job state = %s", job.State)
	}

	// The timeline must be complete and ordered on the DONE representation.
	if job.Submitted.IsZero() || job.Started.IsZero() || job.Finished.IsZero() {
		t.Fatalf("incomplete timeline: submitted=%v started=%v finished=%v",
			job.Submitted, job.Started, job.Finished)
	}
	if !job.Submitted.Equal(job.Created) {
		t.Errorf("submitted %v != created %v", job.Submitted, job.Created)
	}
	if job.Started.Before(job.Created) || job.Finished.Before(job.Started) {
		t.Fatalf("timeline out of order: %v / %v / %v", job.Created, job.Started, job.Finished)
	}
	if job.TraceID != "obs-e2e-trace-1" {
		t.Errorf("job.TraceID = %q, want the ingress request ID", job.TraceID)
	}
	if time.Duration(job.RunTime) < 0 || time.Duration(job.QueueWait) < 0 {
		t.Errorf("negative durations: wait=%v run=%v", job.QueueWait, job.RunTime)
	}

	after := scrapeMetrics(t, srv.URL)
	// The registry is process-wide and shared with other tests, so assert
	// deltas, not absolutes.
	deltas := map[string]float64{
		"mc_jobs_submitted_total":                                          1,
		`mc_jobs_completed_total{state="done"}`:                            1,
		"mc_job_queue_wait_seconds_count":                                  1,
		"mc_job_run_seconds_count":                                         1,
		`mc_http_requests_total{route="service",method="POST",code="2xx"}`: 1,
	}
	for series, want := range deltas {
		if got := after[series] - before[series]; got < want {
			t.Errorf("%s grew by %v, want >= %v", series, got, want)
		}
	}
	// Histogram buckets must be populated: the +Inf bucket carries the
	// cumulative count.
	for _, h := range []string{"mc_job_queue_wait_seconds", "mc_job_run_seconds"} {
		if after[h+`_bucket{le="+Inf"}`] < 1 {
			t.Errorf("%s has empty buckets", h)
		}
	}
	// Gauges must have returned to a consistent state (no leaked depth).
	if d := after["mc_job_queue_depth"] - before["mc_job_queue_depth"]; d != 0 {
		t.Errorf("queue depth leaked by %v", d)
	}

	// /status serves the same families as JSON with percentiles.
	sresp, err := http.Get(srv.URL + "/status")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var status struct {
		UptimeSeconds float64                        `json:"uptimeSeconds"`
		Histograms    map[string]obs.HistogramStatus `json:"histograms"`
	}
	if err := json.NewDecoder(sresp.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	hs, ok := status.Histograms["mc_job_run_seconds"]
	if !ok || hs.Count < 1 {
		t.Errorf("/status missing run-time percentiles: %+v", status.Histograms)
	}
}

// TestConcurrentMetricsUnderFaultInjection hammers a container through a
// flaky transport from many goroutines while scraping /metrics — the -race
// proof that metric recording, retry accounting and exposition are safe
// under concurrent faults.
func TestConcurrentMetricsUnderFaultInjection(t *testing.T) {
	_, srv := startObsContainer(t)

	const clients = 8
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Each client gets its own scripted fault sequence: drops and
			// 503s ahead of real requests, all absorbed by the retry layer.
			tripper := resttest.Script(http.DefaultTransport,
				resttest.Drop, resttest.Unavailable, resttest.Pass)
			policy := &rest.RetryPolicy{MaxAttempts: 5, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond}
			cl := &http.Client{Transport: tripper}
			for j := 0; j < 10; j++ {
				body := strings.NewReader(fmt.Sprintf(`{"x": %d}`, i*100+j))
				req, err := http.NewRequest(http.MethodPost, srv.URL+"/services/echo?wait=10s", body)
				if err != nil {
					t.Error(err)
					return
				}
				req.Header.Set("Content-Type", "application/json")
				resp, err := policy.Do(cl, req)
				if err != nil {
					t.Errorf("client %d: %v", i, err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(i)
	}
	// Scrape concurrently with the fault-injected load.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for {
		select {
		case <-done:
			// One final consistent scrape after the load.
			samples := scrapeMetrics(t, srv.URL)
			if samples["mc_retry_attempts_total"] < 1 {
				t.Error("retry attempts not recorded under fault injection")
			}
			return
		default:
			scrapeMetrics(t, srv.URL)
		}
	}
}

// TestMetricsDedupRatio is the e2e scrape gate for result reuse: identical
// uploads must surface in the file-dedup families and repeated submissions
// of a deterministic service in the memo families, with the dedup ratio
// computable straight from /metrics.
func TestMetricsDedupRatio(t *testing.T) {
	adapter.RegisterFunc("obstest.detsum", func(_ context.Context, in core.Values) (core.Values, error) {
		a, _ := in["x"].(float64)
		return core.Values{"y": a + 1}, nil
	})
	c, err := container.New(container.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	if err := c.Deploy(container.ServiceConfig{
		Description: core.ServiceDescription{
			Name:          "detsum",
			Deterministic: true,
			Inputs:        []core.Param{{Name: "x"}},
			Outputs:       []core.Param{{Name: "y"}},
		},
		Adapter: container.AdapterSpec{Kind: "native",
			Config: json.RawMessage(`{"function":"obstest.detsum"}`)},
	}); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(c.Handler())
	t.Cleanup(srv.Close)
	c.SetBaseURL(srv.URL)

	before := scrapeMetrics(t, srv.URL)

	// Upload one payload four times: 1 blob, 3 dedup'd files.
	payload := bytes.Repeat([]byte("dedup me "), 4096)
	const uploads = 4
	for i := 0; i < uploads; i++ {
		resp, err := http.Post(srv.URL+"/files", "application/octet-stream",
			bytes.NewReader(payload))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("upload %d: status %d", i, resp.StatusCode)
		}
	}

	// Submit the identical deterministic request twice: 1 miss, 1 hit.
	for i := 0; i < 2; i++ {
		resp, err := http.Post(srv.URL+"/services/detsum?wait=10s", "application/json",
			strings.NewReader(`{"x": 41}`))
		if err != nil {
			t.Fatal(err)
		}
		var job core.Job
		if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if job.State != core.StateDone || job.Outputs["y"] != 42.0 {
			t.Fatalf("submit %d: state=%s outputs=%v", i, job.State, job.Outputs)
		}
	}

	after := scrapeMetrics(t, srv.URL)
	delta := func(name string) float64 { return after[name] - before[name] }

	if got := delta("mc_filestore_dedup_files_total"); got != uploads-1 {
		t.Errorf("mc_filestore_dedup_files_total delta = %v, want %d", got, uploads-1)
	}
	wantBytes := float64((uploads - 1) * len(payload))
	if got := delta("mc_filestore_dedup_bytes_total"); got != wantBytes {
		t.Errorf("mc_filestore_dedup_bytes_total delta = %v, want %v", got, wantBytes)
	}
	// The dedup ratio derived from the scrape: 3 of 4 uploads shared a blob.
	ratio := delta("mc_filestore_dedup_files_total") / uploads
	if ratio < 0.74 || ratio > 0.76 {
		t.Errorf("dedup ratio from /metrics = %v, want 0.75", ratio)
	}
	if got := delta("mc_memo_misses_total"); got != 1 {
		t.Errorf("mc_memo_misses_total delta = %v, want 1", got)
	}
	if got := delta("mc_memo_hits_total"); got != 1 {
		t.Errorf("mc_memo_hits_total delta = %v, want 1", got)
	}
}
