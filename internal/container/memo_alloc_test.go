package container

import (
	"context"
	"encoding/json"
	"io"
	"log"
	"testing"

	"mathcloud/internal/adapter"
	"mathcloud/internal/core"
)

// TestMemoKeyNonDeterministicHotPath pins the acceptance criterion that
// services which do not declare themselves deterministic are byte-for-byte
// unaffected by the computation cache: the gate is a single branch that
// performs no allocation and no hashing.
func TestMemoKeyNonDeterministicHotPath(t *testing.T) {
	adapter.RegisterFunc("memoalloc.id", func(ctx context.Context, in core.Values) (core.Values, error) {
		return in, nil
	})
	cfgJSON, err := json.Marshal(adapter.NativeConfig{Function: "memoalloc.id"})
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(Options{Workers: 1, Logger: log.New(io.Discard, "", 0)})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Deploy(ServiceConfig{
		Description: core.ServiceDescription{
			Name: "alloc-plain", Version: "1",
			Inputs: []core.Param{{Name: "x"}},
		},
		Adapter: AdapterSpec{Kind: "native", Config: cfgJSON},
	}); err != nil {
		t.Fatal(err)
	}
	svc, err := c.service("alloc-plain")
	if err != nil {
		t.Fatal(err)
	}
	inputs := core.Values{"x": 1.0}

	if key, ok := c.jobs.memoKey(svc, inputs); ok || key != "" {
		t.Fatalf("memoKey = (%q, %v) for non-deterministic service, want disabled", key, ok)
	}
	allocs := testing.AllocsPerRun(200, func() {
		c.jobs.memoKey(svc, inputs)
	})
	if allocs != 0 {
		t.Fatalf("memoKey allocates %.1f objects/op on the non-deterministic path, want 0", allocs)
	}
}
