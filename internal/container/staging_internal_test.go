package container

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"mathcloud/internal/adapter"
	"mathcloud/internal/core"
)

// TestStageFileRejectsOversizedRemote verifies the staging overflow guard:
// a remote file larger than maxFileBytes must fail the transfer with a
// clear error instead of being silently truncated and staged as complete.
func TestStageFileRejectsOversizedRemote(t *testing.T) {
	old := maxFileBytes
	maxFileBytes = 1024
	t.Cleanup(func() { maxFileBytes = old })

	payload := bytes.Repeat([]byte("x"), 2048)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write(payload)
	}))
	t.Cleanup(srv.Close)

	c, err := New(Options{Logger: log.New(io.Discard, "", 0)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)

	dir := t.TempDir()
	dst := filepath.Join(dir, "in_data")
	err = c.jobs.stageFile(context.Background(), srv.URL+"/big", dst)
	if err == nil {
		t.Fatal("oversized remote file staged without error")
	}
	if !strings.Contains(err.Error(), "exceeds") {
		t.Errorf("error %q does not mention the staging limit", err)
	}
	if _, statErr := os.Stat(dst); statErr == nil {
		t.Error("partial file left behind after overflow")
	}

	// Exactly at the limit must still work.
	srvOK := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write(payload[:maxFileBytes])
	}))
	t.Cleanup(srvOK.Close)
	if err := c.jobs.stageFile(context.Background(), srvOK.URL+"/fits", dst); err != nil {
		t.Fatalf("file exactly at the limit rejected: %v", err)
	}
	data, err := os.ReadFile(dst)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(data)) != maxFileBytes {
		t.Errorf("staged %d bytes, want %d", len(data), maxFileBytes)
	}
}

// TestOversizedInputFailsJob runs the same guard end to end: a job whose
// file input overflows the limit must finish in the ERROR state.
func TestOversizedInputFailsJob(t *testing.T) {
	old := maxFileBytes
	maxFileBytes = 1024
	t.Cleanup(func() { maxFileBytes = old })

	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write(bytes.Repeat([]byte("y"), 4096))
	}))
	t.Cleanup(srv.Close)

	adapter.RegisterFunc("staging.noop", func(_ context.Context, _ core.Values) (core.Values, error) {
		return core.Values{}, nil
	})
	c, err := New(Options{Logger: log.New(io.Discard, "", 0)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	if err := c.Deploy(ServiceConfig{
		Description: core.ServiceDescription{Name: "noop",
			Inputs: []core.Param{{Name: "data"}}},
		Adapter: AdapterSpec{Kind: "native",
			Config: json.RawMessage(`{"function":"staging.noop"}`)},
	}); err != nil {
		t.Fatal(err)
	}
	job, err := c.Jobs().Submit("noop", core.Values{"data": core.FileRef(srv.URL + "/big")}, "")
	if err != nil {
		t.Fatal(err)
	}
	done, err := c.Jobs().Wait(context.Background(), job.ID, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if done.State != core.StateError {
		t.Fatalf("state = %s, want %s", done.State, core.StateError)
	}
	if !strings.Contains(done.Error, "exceeds") {
		t.Errorf("job error %q does not mention the staging limit", done.Error)
	}
}

// TestFileStoreStageToAndPutFile covers the streaming file-plane
// primitives: staging out of the store into a work dir and ingesting an
// adapter output back, both without heap-sized buffers.
func TestFileStoreStageToAndPutFile(t *testing.T) {
	fs, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	content := bytes.Repeat([]byte("stream"), 10000)
	id, err := fs.PutBytes(content, "")
	if err != nil {
		t.Fatal(err)
	}

	work := t.TempDir()
	dst := filepath.Join(work, "in_data")
	if err := fs.StageTo(id, dst); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(dst)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, content) {
		t.Error("staged content differs from stored content")
	}
	if err := fs.StageTo("ffffffffffffffffffffffffffffffff", filepath.Join(work, "missing")); err == nil {
		t.Error("staging a missing file succeeded")
	}

	// Ingest a work-dir output and check it survives work-dir removal.
	out := filepath.Join(work, "result.txt")
	if err := os.WriteFile(out, content, 0o644); err != nil {
		t.Fatal(err)
	}
	outID, err := fs.PutFile(out, "job1")
	if err != nil {
		t.Fatal(err)
	}
	if size, err := fs.Size(outID); err != nil || size != int64(len(content)) {
		t.Fatalf("size = %d, %v; want %d", size, err, len(content))
	}
	if err := os.RemoveAll(work); err != nil {
		t.Fatal(err)
	}
	round, err := fs.ReadAll(outID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(round, content) {
		t.Error("ingested content differs after work dir removal")
	}
	if n := fs.DeleteOwnedBy("job1"); n != 1 {
		t.Errorf("DeleteOwnedBy removed %d files, want 1", n)
	}
}
