package container_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"mathcloud/internal/adapter"
	"mathcloud/internal/container"
	"mathcloud/internal/core"
	"mathcloud/internal/jsonschema"
)

// startReplicaContainer runs a container with a replica identity and one
// "add" service.
func startReplicaContainer(t *testing.T, replica string) (*container.Container, *httptest.Server) {
	t.Helper()
	adapter.RegisterFunc("test.replica.add", func(ctx context.Context, in core.Values) (core.Values, error) {
		a, _ := in["a"].(float64)
		b, _ := in["b"].(float64)
		return core.Values{"sum": a + b}, nil
	})
	c, err := container.New(container.Options{
		Workers:   2,
		ReplicaID: replica,
		Logger:    quietLogger(),
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(c.Close)
	num := jsonschema.New(jsonschema.TypeNumber)
	cfg := container.ServiceConfig{
		Description: core.ServiceDescription{
			Name:        "add",
			Title:       "add",
			Description: "replica test add",
			Inputs:      []core.Param{{Name: "a", Schema: num}, {Name: "b", Schema: num}},
			Outputs:     []core.Param{{Name: "sum", Schema: num}},
		},
		Adapter: container.AdapterSpec{
			Kind:   "native",
			Config: mustJSON(t, adapter.NativeConfig{Function: "test.replica.add"}),
		},
	}
	if err := c.Deploy(cfg); err != nil {
		t.Fatalf("Deploy: %v", err)
	}
	srv := httptest.NewServer(c.Handler())
	t.Cleanup(srv.Close)
	c.SetBaseURL(srv.URL)
	return c, srv
}

func TestReplicaIDPrefixesMintedIDsAndHeader(t *testing.T) {
	_, srv := startReplicaContainer(t, "r07")

	// Job IDs carry the replica prefix; responses carry the identity header.
	resp, err := http.Post(srv.URL+"/services/add?wait=10s", "application/json",
		strings.NewReader(`{"a": 1, "b": 2}`))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	var job core.Job
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatalf("decode: %v", err)
	}
	resp.Body.Close()
	if h := resp.Header.Get(container.ReplicaHeader); h != "r07" {
		t.Fatalf("%s header %q, want r07", container.ReplicaHeader, h)
	}
	if rep, ok := core.SplitReplicaID(job.ID); !ok || rep != "r07" {
		t.Fatalf("job ID %q lacks the replica prefix", job.ID)
	}
	if job.State != core.StateDone {
		t.Fatalf("job state %s", job.State)
	}

	// Index advertises the identity.
	iresp, err := http.Get(srv.URL + "/")
	if err != nil {
		t.Fatalf("index: %v", err)
	}
	var index struct {
		Replica string `json:"replica"`
	}
	if err := json.NewDecoder(iresp.Body).Decode(&index); err != nil {
		t.Fatalf("index decode: %v", err)
	}
	iresp.Body.Close()
	if index.Replica != "r07" {
		t.Fatalf("index replica %q, want r07", index.Replica)
	}
}

// TestSweepChildrenInheritSweepReplicaPrefix is the federation affinity
// regression: sweep IDs and every child job ID must carry the same replica
// prefix, so one affinity hop at the gateway serves the whole campaign.
func TestSweepChildrenInheritSweepReplicaPrefix(t *testing.T) {
	_, srv := startReplicaContainer(t, "r07")

	spec := core.SweepSpec{
		Template: core.Values{"b": 1},
		Axes:     map[string][]any{"a": {1, 2, 3}},
	}
	body, _ := json.Marshal(spec)
	resp, err := http.Post(srv.URL+"/services/add/sweeps?wait=10s", "application/json",
		bytes.NewReader(body))
	if err != nil {
		t.Fatalf("sweep submit: %v", err)
	}
	var sweep core.Sweep
	if err := json.NewDecoder(resp.Body).Decode(&sweep); err != nil {
		t.Fatalf("decode sweep: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("sweep submit: status %d", resp.StatusCode)
	}
	rep, ok := core.SplitReplicaID(sweep.ID)
	if !ok || rep != "r07" {
		t.Fatalf("sweep ID %q lacks the replica prefix", sweep.ID)
	}

	jresp, err := http.Get(srv.URL + "/services/add/sweeps/" + sweep.ID + "/jobs")
	if err != nil {
		t.Fatalf("children: %v", err)
	}
	var page struct {
		Jobs []core.Job `json:"jobs"`
	}
	if err := json.NewDecoder(jresp.Body).Decode(&page); err != nil {
		t.Fatalf("decode children: %v", err)
	}
	jresp.Body.Close()
	if len(page.Jobs) != 3 {
		t.Fatalf("children: %d, want 3", len(page.Jobs))
	}
	for _, j := range page.Jobs {
		if crep, ok := core.SplitReplicaID(j.ID); !ok || crep != rep {
			t.Fatalf("child %q prefix != sweep prefix %q", j.ID, rep)
		}
	}
}

func TestReplicaIDPrefixesFileIDs(t *testing.T) {
	_, srv := startReplicaContainer(t, "r07")

	resp, err := http.Post(srv.URL+"/files", "application/octet-stream",
		strings.NewReader("replica file"))
	if err != nil {
		t.Fatalf("upload: %v", err)
	}
	var up map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&up); err != nil {
		t.Fatalf("decode: %v", err)
	}
	resp.Body.Close()
	if rep, ok := core.SplitReplicaID(up["id"]); !ok || rep != "r07" {
		t.Fatalf("file ID %q lacks the replica prefix", up["id"])
	}
	// The prefixed ID must pass the file-ID gate on the read path.
	dresp, err := http.Get(srv.URL + "/files/" + up["id"])
	if err != nil {
		t.Fatalf("download: %v", err)
	}
	defer dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("download: status %d", dresp.StatusCode)
	}
}

func TestInvalidReplicaIDRejected(t *testing.T) {
	for _, bad := range []string{"R07", "has-dash", "waytoolongreplicaname", "é"} {
		if _, err := container.New(container.Options{ReplicaID: bad, Logger: quietLogger()}); err == nil {
			t.Fatalf("ReplicaID %q accepted, want error", bad)
		}
	}
}
