package container_test

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"mathcloud/internal/adapter"
	"mathcloud/internal/container"
	"mathcloud/internal/core"
)

// deploySweepService deploys a doubling service (y = 2x) whose adapter
// counts executions, with the given determinism flag.
func deploySweepService(t *testing.T, c *container.Container, name string, deterministic bool, calls *atomic.Int64) {
	t.Helper()
	fn := "sweep." + name
	adapter.RegisterFunc(fn, func(ctx context.Context, in core.Values) (core.Values, error) {
		calls.Add(1)
		x, _ := in["x"].(float64)
		return core.Values{"y": 2 * x}, nil
	})
	cfg := container.ServiceConfig{
		Description: core.ServiceDescription{
			Name:          name,
			Version:       "1",
			Deterministic: deterministic,
			Inputs:        []core.Param{{Name: "x"}, {Name: "scale", Optional: true}},
			Outputs:       []core.Param{{Name: "y"}},
		},
		Adapter: container.AdapterSpec{
			Kind:   "native",
			Config: mustJSON(t, adapter.NativeConfig{Function: fn}),
		},
	}
	if err := c.Deploy(cfg); err != nil {
		t.Fatalf("Deploy %s: %v", name, err)
	}
}

func waitSweepDone(t *testing.T, c *container.Container, id string) *core.Sweep {
	t.Helper()
	sweep, err := c.Jobs().WaitSweep(context.Background(), id, 30*time.Second)
	if err != nil {
		t.Fatalf("WaitSweep(%s): %v", id, err)
	}
	if !sweep.State.Terminal() {
		t.Fatalf("sweep %s not terminal after wait: %s", id, sweep.State)
	}
	return sweep
}

func TestSweepExpandsAndCompletes(t *testing.T) {
	var calls atomic.Int64
	c := newMemoContainer(t, container.Options{Workers: 4})
	deploySweepService(t, c, "expand", false, &calls)

	spec := &core.SweepSpec{
		Template: core.Values{"scale": 1.0},
		Axes:     map[string][]any{"x": {1.0, 2.0, 3.0, 4.0, 5.0}},
	}
	sweep, err := c.Jobs().SubmitSweep(context.Background(), "expand", spec, "alice")
	if err != nil {
		t.Fatalf("SubmitSweep: %v", err)
	}
	if sweep.Width != 5 {
		t.Fatalf("width = %d, want 5", sweep.Width)
	}
	if sweep.Owner != "alice" {
		t.Fatalf("owner = %q", sweep.Owner)
	}
	done := waitSweepDone(t, c, sweep.ID)
	if done.State != core.StateDone || done.Counts.Done != 5 {
		t.Fatalf("sweep finished %s with counts %+v", done.State, done.Counts)
	}
	if done.Finished.IsZero() || done.Finished.Before(done.Created) {
		t.Fatalf("bad timeline: created=%v finished=%v", done.Created, done.Finished)
	}

	// Children come back in point order with the template merged in.
	jobs, total, err := c.Jobs().SweepChildren(sweep.ID, "", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if total != 5 || len(jobs) != 5 {
		t.Fatalf("children: total=%d len=%d", total, len(jobs))
	}
	for i, j := range jobs {
		want := float64(i + 1)
		if j.Inputs["x"] != want || j.Inputs["scale"] != 1.0 {
			t.Fatalf("child %d inputs = %v", i, j.Inputs)
		}
		if j.State != core.StateDone || j.Outputs["y"] != 2*want {
			t.Fatalf("child %d: state=%s outputs=%v", i, j.State, j.Outputs)
		}
		if j.TraceID != sweep.TraceID {
			t.Fatalf("child %d trace %q != sweep trace %q", i, j.TraceID, sweep.TraceID)
		}
	}

	// Pagination and state filtering over the children.
	page, total, err := c.Jobs().SweepChildren(sweep.ID, core.StateDone, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if total != 5 || len(page) != 2 {
		t.Fatalf("page: total=%d len=%d", total, len(page))
	}
	if page[0].Inputs["x"] != 2.0 || page[1].Inputs["x"] != 3.0 {
		t.Fatalf("page out of point order: %v, %v", page[0].Inputs, page[1].Inputs)
	}
	if _, total, err = c.Jobs().SweepChildren(sweep.ID, core.StateError, 0, 0); err != nil || total != 0 {
		t.Fatalf("error-filtered children: total=%d err=%v", total, err)
	}
}

// TestSweepMemoOverlap is the reuse acceptance test: re-running a sweep with
// overlapping points executes only the new points, because sweep children
// share the computation cache (and its canonical hashes) with every other
// submission path.
func TestSweepMemoOverlap(t *testing.T) {
	var calls atomic.Int64
	c := newMemoContainer(t, container.Options{Workers: 4})
	deploySweepService(t, c, "overlap", true, &calls)

	points := func(lo, hi int) []core.Values {
		var out []core.Values
		for x := lo; x <= hi; x++ {
			out = append(out, core.Values{"x": float64(x)})
		}
		return out
	}
	first, err := c.Jobs().SubmitSweep(context.Background(), "overlap",
		&core.SweepSpec{Template: core.Values{"scale": 2.0}, Points: points(1, 8)}, "")
	if err != nil {
		t.Fatal(err)
	}
	waitSweepDone(t, c, first.ID)
	if n := calls.Load(); n != 8 {
		t.Fatalf("cold sweep executed %d adapters, want 8", n)
	}

	// Points 5..8 overlap; only 9..12 may execute.
	second, err := c.Jobs().SubmitSweep(context.Background(), "overlap",
		&core.SweepSpec{Template: core.Values{"scale": 2.0}, Points: points(5, 12)}, "")
	if err != nil {
		t.Fatal(err)
	}
	done := waitSweepDone(t, c, second.ID)
	if done.Counts.Done != 8 {
		t.Fatalf("overlapping sweep counts %+v", done.Counts)
	}
	if n := calls.Load(); n != 12 {
		t.Fatalf("after overlap total executions = %d, want 12 (only new points run)", n)
	}

	// The cached children carry real outputs.
	jobs, _, err := c.Jobs().SweepChildren(second.ID, "", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, j := range jobs {
		want := 2 * float64(i+5)
		if j.State != core.StateDone || j.Outputs["y"] != want {
			t.Fatalf("child %d: state=%s outputs=%v want y=%v", i, j.State, j.Outputs, want)
		}
	}

	// A single plain submit of an already-swept point is also a hit: the
	// canonical-hash prefix is shared both ways.
	hit, err := c.Jobs().Submit("overlap", core.Values{"x": 3.0, "scale": 2.0}, "")
	if err != nil {
		t.Fatal(err)
	}
	if hit.State != core.StateDone || hit.Outputs["y"] != 6.0 {
		t.Fatalf("single submit after sweep: state=%s outputs=%v", hit.State, hit.Outputs)
	}
	if n := calls.Load(); n != 12 {
		t.Fatalf("single submit re-executed: %d", n)
	}
}

// TestSweepCancelReleasesChildrenAndFiles covers whole-sweep cancellation:
// one DELETE cancels the running child, releases every queued child, and
// frees the shared staged files owned by the sweep.
func TestSweepCancelReleasesChildrenAndFiles(t *testing.T) {
	started := make(chan struct{}, 64)
	release := make(chan struct{})
	adapter.RegisterRequestFunc("sweep.gate", func(ctx context.Context, req *adapter.Request) (*adapter.Result, error) {
		started <- struct{}{}
		select {
		case <-release:
			return &adapter.Result{Outputs: core.Values{"y": 1.0}}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	})
	defer close(release)

	// A remote input shared by every point: the sweep must stage it once and
	// own the staged copy.
	payload := []byte("shared structure data")
	remote := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write(payload)
	}))
	defer remote.Close()

	c := newMemoContainer(t, container.Options{Workers: 1})
	cfg := container.ServiceConfig{
		Description: core.ServiceDescription{
			Name: "gate", Version: "1",
			Inputs:  []core.Param{{Name: "x"}, {Name: "data", Optional: true}},
			Outputs: []core.Param{{Name: "y", Optional: true}},
		},
		Adapter: container.AdapterSpec{
			Kind:   "native",
			Config: mustJSON(t, adapter.NativeConfig{Function: "sweep.gate"}),
		},
	}
	if err := c.Deploy(cfg); err != nil {
		t.Fatal(err)
	}

	baseline := c.Files().Count()
	spec := &core.SweepSpec{
		Template: core.Values{"data": core.FileRef(remote.URL + "/shared.dat")},
		Axes:     map[string][]any{"x": {1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0}},
	}
	sweep, err := c.Jobs().SubmitSweep(context.Background(), "gate", spec, "")
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Files().Count(); got != baseline+1 {
		t.Fatalf("staged files = %d, want exactly one shared copy over baseline %d", got, baseline)
	}
	<-started // one child is running, the rest are queued

	cancelled, err := c.Jobs().DeleteSweep(sweep.ID)
	if err != nil {
		t.Fatalf("DeleteSweep: %v", err)
	}
	if cancelled.State.Terminal() && cancelled.Counts.Cancelled == 0 {
		t.Fatalf("cancel returned %s with counts %+v", cancelled.State, cancelled.Counts)
	}
	done := waitSweepDone(t, c, sweep.ID)
	if done.State != core.StateCancelled {
		t.Fatalf("sweep state after cancel = %s (counts %+v)", done.State, done.Counts)
	}
	if done.Counts.Cancelled != 8 {
		t.Fatalf("cancelled children = %d, want 8 (counts %+v)", done.Counts.Cancelled, done.Counts)
	}
	jobs, _, err := c.Jobs().SweepChildren(sweep.ID, core.StateCancelled, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 8 {
		t.Fatalf("cancelled child listing = %d, want 8", len(jobs))
	}
	if got := c.Files().Count(); got != baseline {
		t.Fatalf("staged files after cancel = %d, want baseline %d (shared copy released)", got, baseline)
	}
}

// TestSweepBatchExecution exercises adapter micro-batching: a batch-capable
// service amortizes adapter invocations across queued points, and a failing
// point stays isolated to its own job.
func TestSweepBatchExecution(t *testing.T) {
	var batchCalls, points atomic.Int64
	gate := make(chan struct{})
	var gateOnce atomic.Bool
	// The single-point form must exist too (non-sweep submissions use it);
	// the batch form registers second because RegisterFunc resets the name.
	adapter.RegisterFunc("sweep.batcher", func(ctx context.Context, in core.Values) (core.Values, error) {
		batchCalls.Add(1)
		points.Add(1)
		x, _ := in["x"].(float64)
		return core.Values{"y": 2 * x}, nil
	})
	adapter.RegisterBatchFunc("sweep.batcher", func(ctx context.Context, batch []core.Values) ([]core.Values, []error) {
		batchCalls.Add(1)
		points.Add(int64(len(batch)))
		if gateOnce.CompareAndSwap(false, true) {
			// Hold the first invocation until the whole campaign is queued,
			// so later drains see a full queue.
			<-gate
		}
		outs := make([]core.Values, len(batch))
		errs := make([]error, len(batch))
		for i, in := range batch {
			x, _ := in["x"].(float64)
			if x == 13 {
				errs[i] = fmt.Errorf("unlucky point")
				continue
			}
			outs[i] = core.Values{"y": 2 * x}
		}
		return outs, errs
	})

	c := newMemoContainer(t, container.Options{Workers: 1, BatchMaxSize: 16})
	cfg := container.ServiceConfig{
		Description: core.ServiceDescription{
			Name: "batcher", Version: "1", Batch: true,
			Inputs:  []core.Param{{Name: "x"}},
			Outputs: []core.Param{{Name: "y", Optional: true}},
		},
		Adapter: container.AdapterSpec{
			Kind:   "native",
			Config: mustJSON(t, adapter.NativeConfig{Function: "sweep.batcher"}),
		},
	}
	if err := c.Deploy(cfg); err != nil {
		t.Fatal(err)
	}

	const width = 32
	axis := make([]any, width)
	for i := range axis {
		axis[i] = float64(i + 1)
	}
	sweep, err := c.Jobs().SubmitSweep(context.Background(), "batcher",
		&core.SweepSpec{Axes: map[string][]any{"x": axis}}, "")
	if err != nil {
		t.Fatal(err)
	}
	close(gate)
	done := waitSweepDone(t, c, sweep.ID)

	if done.Counts.Done != width-1 || done.Counts.Error != 1 {
		t.Fatalf("counts %+v, want %d done and 1 isolated error", done.Counts, width-1)
	}
	if done.State != core.StateError {
		t.Fatalf("aggregate state = %s, want ERROR (severity order)", done.State)
	}
	if done.FirstError == "" {
		t.Fatal("firstError empty on a failed campaign")
	}
	if n := points.Load(); n != width {
		t.Fatalf("adapter saw %d points, want %d", n, width)
	}
	if n := batchCalls.Load(); n >= width {
		t.Fatalf("adapter invoked %d times for %d points: no batching happened", n, width)
	}
	failed, _, err := c.Jobs().SweepChildren(sweep.ID, core.StateError, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(failed) != 1 || failed[0].Inputs["x"] != 13.0 {
		t.Fatalf("failed children: %v", failed)
	}
	t.Logf("width %d served by %d adapter invocations", width, batchCalls.Load())
}

// TestSweepWiderThanQueue asserts the backpressure path: a sweep wider than
// the whole job queue still completes, with the sweep feeding the queue as
// workers drain it.
func TestSweepWiderThanQueue(t *testing.T) {
	var calls atomic.Int64
	c := newMemoContainer(t, container.Options{Workers: 2, QueueSize: 4})
	deploySweepService(t, c, "wide", false, &calls)

	const width = 64
	axis := make([]any, width)
	for i := range axis {
		axis[i] = float64(i)
	}
	sweep, err := c.Jobs().SubmitSweep(context.Background(), "wide",
		&core.SweepSpec{Axes: map[string][]any{"x": axis}}, "")
	if err != nil {
		t.Fatal(err)
	}
	done := waitSweepDone(t, c, sweep.ID)
	if done.State != core.StateDone || done.Counts.Done != width {
		t.Fatalf("wide sweep: %s %+v", done.State, done.Counts)
	}
	if n := calls.Load(); n != width {
		t.Fatalf("executed %d, want %d", n, width)
	}
}

// TestSweepStatusAllocsConstant pins the O(1) contract of the aggregate
// status read: snapshotting a width-1024 sweep allocates the same as a
// width-16 one.
func TestSweepStatusAllocsConstant(t *testing.T) {
	var calls atomic.Int64
	c := newMemoContainer(t, container.Options{Workers: 4})
	deploySweepService(t, c, "alloc", false, &calls)

	submit := func(width int) string {
		axis := make([]any, width)
		for i := range axis {
			axis[i] = float64(i)
		}
		sweep, err := c.Jobs().SubmitSweep(context.Background(), "alloc",
			&core.SweepSpec{Axes: map[string][]any{"x": axis}}, "")
		if err != nil {
			t.Fatal(err)
		}
		waitSweepDone(t, c, sweep.ID)
		return sweep.ID
	}
	narrow, wide := submit(16), submit(1024)

	measure := func(id string) float64 {
		return testing.AllocsPerRun(200, func() {
			if _, err := c.Jobs().GetSweep(id); err != nil {
				t.Fatal(err)
			}
		})
	}
	a16, a1024 := measure(narrow), measure(wide)
	if a1024 > a16 {
		t.Fatalf("status allocs grew with width: %v at 16 vs %v at 1024", a16, a1024)
	}
	t.Logf("status allocs: %v at width 16, %v at width 1024", a16, a1024)
}

// TestSweepRejectsOverWidthAndBadPoints covers submission-time validation:
// the width cap and per-point input validation fail the whole sweep before
// any child is created.
func TestSweepRejectsOverWidthAndBadPoints(t *testing.T) {
	var calls atomic.Int64
	c := newMemoContainer(t, container.Options{Workers: 1, MaxSweepWidth: 4})
	deploySweepService(t, c, "strict", false, &calls)

	_, err := c.Jobs().SubmitSweep(context.Background(), "strict",
		&core.SweepSpec{Axes: map[string][]any{"x": {1.0, 2.0, 3.0, 4.0, 5.0}}}, "")
	if err == nil {
		t.Fatal("over-width sweep accepted")
	}

	// Point 1 is missing the required input x.
	_, err = c.Jobs().SubmitSweep(context.Background(), "strict",
		&core.SweepSpec{Points: []core.Values{{"x": 1.0}, {"scale": 2.0}}}, "")
	if err == nil {
		t.Fatal("sweep with an invalid point accepted")
	}
	if n := calls.Load(); n != 0 {
		t.Fatalf("rejected sweeps executed %d adapters", n)
	}
	if got := c.Jobs().ListSweeps("strict"); len(got) != 0 {
		t.Fatalf("rejected sweeps left %d records", len(got))
	}
}
