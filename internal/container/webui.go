package container

import (
	"encoding/json"
	"html/template"
	"log"
	"net/http"
	"time"

	"mathcloud/internal/core"
)

// The container automatically generates a complementary web interface for
// each deployed service, so users can inspect and invoke services from a
// browser — one of the paper's arguments for REST+JSON over big Web
// services.  The interface is intentionally framework-free: a description
// page per service with a JSON submission form driven by a few lines of
// inline JavaScript issuing the same POST a programmatic client would.

var indexTemplate = template.Must(template.New("index").Parse(`<!DOCTYPE html>
<html><head><title>MathCloud Everest</title><style>
body{font-family:sans-serif;margin:2em;max-width:60em}
table{border-collapse:collapse}td,th{border:1px solid #999;padding:.3em .6em;text-align:left}
code{background:#eee;padding:0 .2em}
</style></head><body>
<h1>Everest service container</h1>
<p>{{len .}} deployed computational web service(s).</p>
<table><tr><th>Service</th><th>Title</th><th>Description</th><th>Tags</th></tr>
{{range .}}<tr>
<td><a href="/services/{{.Name}}">{{.Name}}</a></td>
<td>{{.Title}}</td><td>{{.Description}}</td>
<td>{{range .Tags}}<code>{{.}}</code> {{end}}</td>
</tr>{{end}}
</table></body></html>
`))

var serviceTemplate = template.Must(template.New("service").Parse(`<!DOCTYPE html>
<html><head><title>{{.Name}} — MathCloud</title><style>
body{font-family:sans-serif;margin:2em;max-width:60em}
table{border-collapse:collapse}td,th{border:1px solid #999;padding:.3em .6em;text-align:left}
textarea{width:100%;height:10em;font-family:monospace}
pre{background:#f4f4f4;padding:1em;overflow:auto}
</style></head><body>
<h1>{{.Title}}{{if not .Title}}{{.Name}}{{end}}</h1>
<p>{{.Description}}</p>
<p>Version: {{.Version}} &middot; URI: <code>{{.URI}}</code></p>
<h2>Inputs</h2>
<table><tr><th>Name</th><th>Title</th><th>Type</th><th>Optional</th></tr>
{{range .Inputs}}<tr><td><code>{{.Name}}</code></td><td>{{.Title}}</td>
<td>{{if .Schema}}{{.Schema.Describe}}{{else}}any{{end}}</td>
<td>{{if .Optional}}yes{{end}}</td></tr>{{end}}
</table>
<h2>Outputs</h2>
<table><tr><th>Name</th><th>Title</th><th>Type</th></tr>
{{range .Outputs}}<tr><td><code>{{.Name}}</code></td><td>{{.Title}}</td>
<td>{{if .Schema}}{{.Schema.Describe}}{{else}}any{{end}}</td></tr>{{end}}
</table>
<h2>Submit a request</h2>
<p>Input parameters as a JSON object:</p>
<textarea id="inputs">{}</textarea><br>
<button onclick="submitJob()">Run</button>
<pre id="result"></pre>
<script>
// Submit without ?wait= and go straight to the job page, which follows
// the job's SSE event stream to completion — the page never shows a
// stale snapshot of a slow job.
async function submitJob() {
  const out = document.getElementById('result');
  out.textContent = 'submitting...';
  try {
    const resp = await fetch('/services/{{.Name}}', {
      method: 'POST',
      headers: {'Content-Type': 'application/json'},
      body: document.getElementById('inputs').value
    });
    const job = await resp.json();
    if (!resp.ok || !job.id) {
      out.textContent = JSON.stringify(job, null, 2);
      return;
    }
    window.location = '/services/{{.Name}}/jobs/' + job.id;
  } catch (e) { out.textContent = 'error: ' + e; }
}
</script>
</body></html>
`))

var jobTemplate = template.Must(template.New("job").Funcs(template.FuncMap{
	"stamp": func(t time.Time) string {
		if t.IsZero() {
			return "—"
		}
		return t.Format("2006-01-02 15:04:05.000 MST")
	},
	"json": func(v any) string {
		b, err := json.MarshalIndent(v, "", "  ")
		if err != nil {
			return err.Error()
		}
		return string(b)
	},
}).Parse(`<!DOCTYPE html>
<html><head><title>Job {{.ID}} — MathCloud</title><style>
body{font-family:sans-serif;margin:2em;max-width:60em}
table{border-collapse:collapse}td,th{border:1px solid #999;padding:.3em .6em;text-align:left}
code{background:#eee;padding:0 .2em}
pre{background:#f4f4f4;padding:1em;overflow:auto}
.state-DONE{color:#060}.state-ERROR{color:#a00}.state-RUNNING{color:#06c}
</style></head><body>
<h1>Job <code>{{.ID}}</code></h1>
<p>Service <a href="/services/{{.Service}}"><code>{{.Service}}</code></a>
&middot; state <strong id="state" class="state-{{.State}}">{{.State}}</strong>
{{if .TraceID}}&middot; trace <code>{{.TraceID}}</code>{{end}}
{{if .Owner}}&middot; owner <code>{{.Owner}}</code>{{end}}</p>
<h2>Timeline</h2>
<table>
<tr><th>Submitted</th><td>{{stamp .Created}}</td><td></td></tr>
<tr><th>Started</th><td>{{stamp .Started}}</td>
<td>{{if .QueueWait}}queued {{.QueueWait}}{{end}}</td></tr>
<tr><th>Finished</th><td>{{stamp .Finished}}</td>
<td>{{if .RunTime}}ran {{.RunTime}}{{end}}</td></tr>
</table>
{{if .Error}}<h2>Error</h2><pre>{{.Error}}</pre>{{end}}
{{if .Inputs}}<h2>Inputs</h2><pre>{{json .Inputs}}</pre>{{end}}
{{if .Outputs}}<h2>Outputs</h2><pre>{{json .Outputs}}</pre>{{end}}
{{if .Log}}<h2>Log</h2><pre>{{range .Log}}{{.}}
{{end}}</pre>{{end}}
{{if not .State.Terminal}}<script>
// Live page: follow the job's SSE stream; reload once it goes terminal
// so the server renders the final outputs/error sections.
(function () {
  const stateEl = document.getElementById('state');
  const es = new EventSource('/services/{{.Service}}/jobs/{{.ID}}/events');
  es.addEventListener('job', function (e) {
    const job = JSON.parse(e.data);
    stateEl.textContent = job.state;
    stateEl.className = 'state-' + job.state;
    if (job.state === 'DONE' || job.state === 'ERROR' || job.state === 'CANCELLED') {
      es.close();
      location.reload();
    }
  });
  es.addEventListener('sync', function () { es.close(); location.reload(); });
})();
</script>{{end}}
</body></html>
`))

var sweepTemplate = template.Must(template.New("sweep").Funcs(template.FuncMap{
	"stamp": func(t time.Time) string {
		if t.IsZero() {
			return "—"
		}
		return t.Format("2006-01-02 15:04:05.000 MST")
	},
}).Parse(`<!DOCTYPE html>
<html><head><title>Sweep {{.ID}} — MathCloud</title><style>
body{font-family:sans-serif;margin:2em;max-width:60em}
table{border-collapse:collapse}td,th{border:1px solid #999;padding:.3em .6em;text-align:left}
code{background:#eee;padding:0 .2em}
pre{background:#f4f4f4;padding:1em;overflow:auto}
.state-DONE{color:#060}.state-ERROR{color:#a00}.state-RUNNING{color:#06c}
</style></head><body>
<h1>Sweep <code>{{.ID}}</code></h1>
<p>Service <a href="/services/{{.Service}}"><code>{{.Service}}</code></a>
&middot; state <strong id="state" class="state-{{.State}}">{{.State}}</strong>
&middot; width {{.Width}}
{{if .TraceID}}&middot; trace <code>{{.TraceID}}</code>{{end}}
{{if .Owner}}&middot; owner <code>{{.Owner}}</code>{{end}}</p>
<h2>Children</h2>
<table>
<tr><th>Waiting</th><td id="count-waiting">{{.Counts.Waiting}}</td></tr>
<tr><th>Running</th><td id="count-running">{{.Counts.Running}}</td></tr>
<tr><th>Done</th><td id="count-done">{{.Counts.Done}}</td></tr>
<tr><th>Error</th><td id="count-error">{{.Counts.Error}}</td></tr>
<tr><th>Cancelled</th><td id="count-cancelled">{{.Counts.Cancelled}}</td></tr>
</table>
<p>Submitted {{stamp .Created}}{{if not .Finished.IsZero}} &middot; finished {{stamp .Finished}}{{end}}</p>
{{if .FirstError}}<h2>First error</h2><pre>{{.FirstError}}</pre>{{end}}
<p><a href="{{.JobsURI}}">Child jobs</a></p>
{{if not .State.Terminal}}<script>
// Live campaign progress from the sweep's SSE stream; reload on the
// terminal event for the server-rendered final page.
(function () {
  const stateEl = document.getElementById('state');
  const es = new EventSource('/services/{{.Service}}/sweeps/{{.ID}}/events');
  es.addEventListener('sweep', function (e) {
    const s = JSON.parse(e.data);
    for (const k of ['waiting', 'running', 'done', 'error', 'cancelled']) {
      document.getElementById('count-' + k).textContent = s.counts[k];
    }
    stateEl.textContent = s.state;
    stateEl.className = 'state-' + s.state;
    if (s.state === 'DONE' || s.state === 'ERROR' || s.state === 'CANCELLED') {
      es.close();
      location.reload();
    }
  });
  es.addEventListener('sync', function () { es.close(); location.reload(); });
})();
</script>{{end}}
</body></html>
`))

func (c *Container) renderIndex(w http.ResponseWriter, services []core.ServiceDescription) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if err := indexTemplate.Execute(w, services); err != nil {
		log.Printf("container: render index: %v", err)
	}
}

func (c *Container) renderService(w http.ResponseWriter, desc core.ServiceDescription) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if err := serviceTemplate.Execute(w, desc); err != nil {
		log.Printf("container: render service: %v", err)
	}
}

// renderJob paints the job lifecycle timeline page: submitted/started/
// finished stamps with the derived queue-wait and run durations, plus the
// trace ID so a browser user can correlate the job with server logs.
func (c *Container) renderJob(w http.ResponseWriter, job *core.Job) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if err := jobTemplate.Execute(w, job); err != nil {
		log.Printf("container: render job: %v", err)
	}
}

// renderSweep paints the campaign status page: per-state child counts and
// the first error, cheap to serve at any width.
func (c *Container) renderSweep(w http.ResponseWriter, sweep *core.Sweep) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if err := sweepTemplate.Execute(w, sweep); err != nil {
		log.Printf("container: render sweep: %v", err)
	}
}
