package container

import (
	"html/template"
	"log"
	"net/http"

	"mathcloud/internal/core"
)

// The container automatically generates a complementary web interface for
// each deployed service, so users can inspect and invoke services from a
// browser — one of the paper's arguments for REST+JSON over big Web
// services.  The interface is intentionally framework-free: a description
// page per service with a JSON submission form driven by a few lines of
// inline JavaScript issuing the same POST a programmatic client would.

var indexTemplate = template.Must(template.New("index").Parse(`<!DOCTYPE html>
<html><head><title>MathCloud Everest</title><style>
body{font-family:sans-serif;margin:2em;max-width:60em}
table{border-collapse:collapse}td,th{border:1px solid #999;padding:.3em .6em;text-align:left}
code{background:#eee;padding:0 .2em}
</style></head><body>
<h1>Everest service container</h1>
<p>{{len .}} deployed computational web service(s).</p>
<table><tr><th>Service</th><th>Title</th><th>Description</th><th>Tags</th></tr>
{{range .}}<tr>
<td><a href="/services/{{.Name}}">{{.Name}}</a></td>
<td>{{.Title}}</td><td>{{.Description}}</td>
<td>{{range .Tags}}<code>{{.}}</code> {{end}}</td>
</tr>{{end}}
</table></body></html>
`))

var serviceTemplate = template.Must(template.New("service").Parse(`<!DOCTYPE html>
<html><head><title>{{.Name}} — MathCloud</title><style>
body{font-family:sans-serif;margin:2em;max-width:60em}
table{border-collapse:collapse}td,th{border:1px solid #999;padding:.3em .6em;text-align:left}
textarea{width:100%;height:10em;font-family:monospace}
pre{background:#f4f4f4;padding:1em;overflow:auto}
</style></head><body>
<h1>{{.Title}}{{if not .Title}}{{.Name}}{{end}}</h1>
<p>{{.Description}}</p>
<p>Version: {{.Version}} &middot; URI: <code>{{.URI}}</code></p>
<h2>Inputs</h2>
<table><tr><th>Name</th><th>Title</th><th>Type</th><th>Optional</th></tr>
{{range .Inputs}}<tr><td><code>{{.Name}}</code></td><td>{{.Title}}</td>
<td>{{if .Schema}}{{.Schema.Describe}}{{else}}any{{end}}</td>
<td>{{if .Optional}}yes{{end}}</td></tr>{{end}}
</table>
<h2>Outputs</h2>
<table><tr><th>Name</th><th>Title</th><th>Type</th></tr>
{{range .Outputs}}<tr><td><code>{{.Name}}</code></td><td>{{.Title}}</td>
<td>{{if .Schema}}{{.Schema.Describe}}{{else}}any{{end}}</td></tr>{{end}}
</table>
<h2>Submit a request</h2>
<p>Input parameters as a JSON object:</p>
<textarea id="inputs">{}</textarea><br>
<button onclick="submitJob()">Run</button>
<pre id="result"></pre>
<script>
async function submitJob() {
  const out = document.getElementById('result');
  out.textContent = 'submitting...';
  try {
    const resp = await fetch('/services/{{.Name}}?wait=2s', {
      method: 'POST',
      headers: {'Content-Type': 'application/json'},
      body: document.getElementById('inputs').value
    });
    out.textContent = JSON.stringify(await resp.json(), null, 2);
  } catch (e) { out.textContent = 'error: ' + e; }
}
</script>
</body></html>
`))

func (c *Container) renderIndex(w http.ResponseWriter, services []core.ServiceDescription) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if err := indexTemplate.Execute(w, services); err != nil {
		log.Printf("container: render index: %v", err)
	}
}

func (c *Container) renderService(w http.ResponseWriter, desc core.ServiceDescription) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if err := serviceTemplate.Execute(w, desc); err != nil {
		log.Printf("container: render service: %v", err)
	}
}
