package torque

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mathcloud/internal/adapter"
	"mathcloud/internal/core"
)

func newCluster(t *testing.T, nodes ...NodeSpec) *Cluster {
	t.Helper()
	if len(nodes) == 0 {
		nodes = []NodeSpec{{Name: "n1", Slots: 2}}
	}
	c, err := New("test", nodes, []QueueSpec{{Name: "batch"}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func TestJobRunsAndCompletes(t *testing.T) {
	c := newCluster(t)
	ran := atomic.Bool{}
	id, err := c.Submit(JobSpec{Name: "j", Run: func(ctx context.Context) error {
		ran.Store(true)
		return nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	info, err := c.Wait(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	if info.State != StateComplete || !ran.Load() {
		t.Errorf("state = %s ran = %v", info.State, ran.Load())
	}
	if info.Node == "" || info.Started.IsZero() || info.Finished.IsZero() {
		t.Errorf("incomplete bookkeeping: %+v", info)
	}
}

func TestJobFailureIsExiting(t *testing.T) {
	c := newCluster(t)
	id, _ := c.Submit(JobSpec{Run: func(ctx context.Context) error {
		return fmt.Errorf("computation diverged")
	}})
	info, err := c.Wait(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	if info.State != StateExiting || info.Error != "computation diverged" {
		t.Errorf("info = %+v", info)
	}
}

func TestQueueingWhenSlotsBusy(t *testing.T) {
	c := newCluster(t, NodeSpec{Name: "n1", Slots: 1})
	release := make(chan struct{})
	first, _ := c.Submit(JobSpec{Slots: 1, Run: func(ctx context.Context) error {
		<-release
		return nil
	}})
	// Wait until the first job occupies the slot.
	waitFor(t, func() bool {
		info, _ := c.Status(first)
		return info.State == StateRunning
	})
	second, _ := c.Submit(JobSpec{Slots: 1, Run: func(ctx context.Context) error { return nil }})
	info, _ := c.Status(second)
	if info.State != StateQueued {
		t.Fatalf("second job state = %s, want Q", info.State)
	}
	close(release)
	final, err := c.Wait(context.Background(), second)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateComplete {
		t.Errorf("second job final state = %s", final.State)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestBackfillSmallerJobOvertakes(t *testing.T) {
	// One node with 2 slots: a 2-slot job runs, another 2-slot job is
	// queued at the head, and a 1-slot job... cannot backfill because
	// the node is full.  Use a 3-slot topology instead: node with 3
	// slots, running 2-slot job, head job needs 3, a 1-slot job should
	// backfill into the free slot.
	c := newCluster(t, NodeSpec{Name: "big", Slots: 3})
	release := make(chan struct{})
	_, _ = c.Submit(JobSpec{Slots: 2, Run: func(ctx context.Context) error {
		<-release
		return nil
	}})
	head, _ := c.Submit(JobSpec{Slots: 3, Run: func(ctx context.Context) error { return nil }})
	small, _ := c.Submit(JobSpec{Slots: 1, Run: func(ctx context.Context) error { return nil }})

	info, err := c.Wait(context.Background(), small)
	if err != nil {
		t.Fatal(err)
	}
	if info.State != StateComplete {
		t.Fatalf("backfilled job state = %s", info.State)
	}
	headInfo, _ := c.Status(head)
	if headInfo.State != StateQueued {
		t.Errorf("head job state = %s, want still queued", headInfo.State)
	}
	close(release)
	if _, err := c.Wait(context.Background(), head); err != nil {
		t.Fatal(err)
	}
}

func TestWalltimeEnforced(t *testing.T) {
	c := newCluster(t)
	id, _ := c.Submit(JobSpec{
		Walltime: 30 * time.Millisecond,
		Run: func(ctx context.Context) error {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(10 * time.Second):
				return nil
			}
		},
	})
	info, err := c.Wait(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	if info.State != StateExiting {
		t.Errorf("state = %s, want E (walltime)", info.State)
	}
}

func TestCancelQueuedAndRunning(t *testing.T) {
	c := newCluster(t, NodeSpec{Name: "n1", Slots: 1})
	release := make(chan struct{})
	defer close(release)
	running, _ := c.Submit(JobSpec{Run: func(ctx context.Context) error {
		select {
		case <-release:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}})
	waitFor(t, func() bool {
		info, _ := c.Status(running)
		return info.State == StateRunning
	})
	queued, _ := c.Submit(JobSpec{Run: func(ctx context.Context) error { return nil }})

	if err := c.Cancel(queued); err != nil {
		t.Fatal(err)
	}
	if info, _ := c.Status(queued); info.State != StateCancelled {
		t.Errorf("queued job state = %s", info.State)
	}
	if err := c.Cancel(running); err != nil {
		t.Fatal(err)
	}
	info, err := c.Wait(context.Background(), running)
	if err != nil {
		t.Fatal(err)
	}
	if info.State != StateCancelled {
		t.Errorf("running job state = %s", info.State)
	}
	if err := c.Cancel(running); err == nil {
		t.Error("double cancel succeeded")
	}
}

func TestSubmitValidation(t *testing.T) {
	c := newCluster(t, NodeSpec{Name: "n1", Slots: 2})
	if _, err := c.Submit(JobSpec{}); err == nil {
		t.Error("nil payload accepted")
	}
	if _, err := c.Submit(JobSpec{Slots: 5, Run: func(ctx context.Context) error { return nil }}); err == nil {
		t.Error("oversized slot request accepted")
	}
	if _, err := c.Submit(JobSpec{Queue: "nope", Run: func(ctx context.Context) error { return nil }}); err == nil {
		t.Error("unknown queue accepted")
	}
}

func TestQueueLimits(t *testing.T) {
	c, err := New("lim", []NodeSpec{{Name: "n", Slots: 8}},
		[]QueueSpec{{Name: "small", MaxSlots: 2, MaxWalltime: time.Minute}})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Submit(JobSpec{Slots: 4, Run: noop}); err == nil {
		t.Error("queue MaxSlots not enforced")
	}
	id, err := c.Submit(JobSpec{Slots: 2, Run: noop})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(context.Background(), id); err != nil {
		t.Fatal(err)
	}
}

func noop(ctx context.Context) error { return nil }

func TestStatsAndJobs(t *testing.T) {
	c := newCluster(t, NodeSpec{Name: "n1", Slots: 4})
	var wg sync.WaitGroup
	for i := 0; i < 5; i++ {
		id, err := c.Submit(JobSpec{Run: noop})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _ = c.Wait(context.Background(), id)
		}()
	}
	wg.Wait()
	st := c.Stats()
	if st.FinishedJobs != 5 || st.TotalSlots != 4 || st.BusySlots != 0 {
		t.Errorf("stats = %+v", st)
	}
	if len(c.Jobs()) != 5 {
		t.Errorf("jobs = %d", len(c.Jobs()))
	}
}

func TestClosedClusterRejectsSubmit(t *testing.T) {
	c := newCluster(t)
	c.Close()
	if _, err := c.Submit(JobSpec{Run: noop}); err != ErrClosed {
		t.Errorf("err = %v, want ErrClosed", err)
	}
}

func TestClusterAdapterEndToEnd(t *testing.T) {
	cluster := newCluster(t, NodeSpec{Name: "n1", Slots: 4})
	clusters := NewClusterRegistry()
	clusters.Add(cluster)
	registry := adapter.NewRegistry()
	registry.Register("cluster", NewAdapterFactory(clusters, registry))
	adapter.RegisterFunc("torquetest.double", func(_ context.Context, in core.Values) (core.Values, error) {
		x, _ := in["x"].(float64)
		return core.Values{"y": 2 * x}, nil
	})
	a, err := registry.New("cluster", json.RawMessage(`{
		"cluster": "test", "slots": 2, "walltime": "30s",
		"exec": {"kind": "native", "config": {"function": "torquetest.double"}}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.Invoke(context.Background(), &adapter.Request{
		JobID: "j", Service: "s", Inputs: core.Values{"x": 21.0},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outputs["y"] != 42.0 {
		t.Errorf("y = %v", res.Outputs["y"])
	}
	if cluster.Stats().FinishedJobs != 1 {
		t.Error("job did not go through the batch system")
	}
}

func TestClusterAdapterConfigErrors(t *testing.T) {
	clusters := NewClusterRegistry()
	registry := adapter.NewRegistry()
	factory := NewAdapterFactory(clusters, registry)
	cases := []string{
		`{"cluster": "missing", "exec": {"kind": "native", "config": {}}}`,
		`{"cluster": "x"}`,
		`{"cluster": "x", "exec": {"kind": "cluster", "config": {}}}`,
		`{"cluster": "x", "walltime": "nope", "exec": {"kind": "script", "config": {"script": "out.x=1"}}}`,
	}
	for _, cfg := range cases {
		if _, err := factory(json.RawMessage(cfg)); err == nil {
			t.Errorf("config %s accepted", cfg)
		}
	}
}

func TestClusterAdapterCancellation(t *testing.T) {
	cluster := newCluster(t, NodeSpec{Name: "n1", Slots: 1})
	clusters := NewClusterRegistry()
	clusters.Add(cluster)
	registry := adapter.NewRegistry()
	registry.Register("cluster", NewAdapterFactory(clusters, registry))
	adapter.RegisterFunc("torquetest.sleep", func(ctx context.Context, in core.Values) (core.Values, error) {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(10 * time.Second):
			return core.Values{}, nil
		}
	})
	a, err := registry.New("cluster", json.RawMessage(`{
		"cluster": "test",
		"exec": {"kind": "native", "config": {"function": "torquetest.sleep"}}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, err := a.Invoke(ctx, &adapter.Request{JobID: "j", Service: "s", Inputs: core.Values{}}); err == nil {
		t.Fatal("cancelled invocation succeeded")
	}
	if time.Since(start) > 5*time.Second {
		t.Error("cancellation hung")
	}
}
