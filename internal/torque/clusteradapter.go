package torque

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"time"

	"mathcloud/internal/adapter"
)

// Registry holds named clusters so that service configurations can refer
// to a computing resource by name, the way the paper's internal service
// configuration points at a TORQUE installation.
type Registry struct {
	mu       sync.RWMutex
	clusters map[string]*Cluster
}

// NewClusterRegistry returns an empty cluster registry.
func NewClusterRegistry() *Registry {
	return &Registry{clusters: make(map[string]*Cluster)}
}

// Add registers a cluster under its name, replacing a previous entry.
func (r *Registry) Add(c *Cluster) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.clusters[c.Name()] = c
}

// Get looks up a cluster by name.
func (r *Registry) Get(name string) (*Cluster, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	c, ok := r.clusters[name]
	return c, ok
}

// Names returns the sorted registered cluster names.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.clusters))
	for n := range r.clusters {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// AdapterConfig is the internal service configuration of the Cluster
// adapter: which cluster and queue to submit to, the resource request, and
// the inner adapter that performs the actual work once the batch system
// schedules the job.
type AdapterConfig struct {
	// Cluster names a cluster in the registry.
	Cluster string `json:"cluster"`
	// Queue is the submission queue; empty selects the default queue.
	Queue string `json:"queue,omitempty"`
	// Slots is the per-job slot request (defaults to 1).
	Slots int `json:"slots,omitempty"`
	// Walltime is the per-job time limit, e.g. "30s"; empty uses the
	// queue limit.
	Walltime string `json:"walltime,omitempty"`
	// Exec describes the inner adapter executed on the cluster.
	Exec ExecConfig `json:"exec"`
}

// ExecConfig selects and configures the inner adapter of a Cluster or Grid
// adapter.
type ExecConfig struct {
	Kind   string          `json:"kind"`
	Config json.RawMessage `json:"config"`
}

// ClusterAdapter translates a service request into a batch job submitted to
// a simulated TORQUE cluster.
type ClusterAdapter struct {
	cluster  *Cluster
	queue    string
	slots    int
	walltime time.Duration
	inner    adapter.Interface
}

// NewAdapterFactory returns an adapter.Factory for kind "cluster" that
// resolves cluster names against the given registry and inner adapters
// against the given adapter registry.
func NewAdapterFactory(clusters *Registry, adapters *adapter.Registry) adapter.Factory {
	return func(config json.RawMessage) (adapter.Interface, error) {
		var cfg AdapterConfig
		if err := json.Unmarshal(config, &cfg); err != nil {
			return nil, fmt.Errorf("cluster adapter: %w", err)
		}
		cluster, ok := clusters.Get(cfg.Cluster)
		if !ok {
			return nil, fmt.Errorf("cluster adapter: unknown cluster %q (have %v)",
				cfg.Cluster, clusters.Names())
		}
		if cfg.Exec.Kind == "" {
			return nil, fmt.Errorf("cluster adapter: missing exec adapter")
		}
		if cfg.Exec.Kind == "cluster" || cfg.Exec.Kind == "grid" {
			return nil, fmt.Errorf("cluster adapter: exec adapter cannot be %q", cfg.Exec.Kind)
		}
		inner, err := adapters.New(cfg.Exec.Kind, cfg.Exec.Config)
		if err != nil {
			return nil, err
		}
		var walltime time.Duration
		if cfg.Walltime != "" {
			walltime, err = time.ParseDuration(cfg.Walltime)
			if err != nil {
				return nil, fmt.Errorf("cluster adapter: walltime: %w", err)
			}
		}
		return &ClusterAdapter{
			cluster:  cluster,
			queue:    cfg.Queue,
			slots:    cfg.Slots,
			walltime: walltime,
			inner:    inner,
		}, nil
	}
}

// Kind implements adapter.Interface.
func (a *ClusterAdapter) Kind() string { return "cluster" }

// Invoke implements adapter.Interface.  The request is turned into a batch
// job whose payload runs the inner adapter; the call then polls the batch
// system for completion, mirroring the real adapter's qstat loop.
func (a *ClusterAdapter) Invoke(ctx context.Context, req *adapter.Request) (*adapter.Result, error) {
	var (
		res *adapter.Result
		mu  sync.Mutex
	)
	id, err := a.cluster.Submit(JobSpec{
		Name:     req.Service + "/" + req.JobID,
		Queue:    a.queue,
		Slots:    a.slots,
		Walltime: a.walltime,
		Run: func(jobCtx context.Context) error {
			r, err := a.inner.Invoke(jobCtx, req)
			if err != nil {
				return err
			}
			mu.Lock()
			res = r
			mu.Unlock()
			return nil
		},
	})
	if err != nil {
		return nil, err
	}
	if req.Progress != nil {
		req.Progress(fmt.Sprintf("submitted batch job %s to cluster %s", id, a.cluster.Name()))
	}

	info, err := a.cluster.Wait(ctx, id)
	if err != nil {
		// The service job was cancelled: propagate the cancellation to
		// the batch system before returning.
		_ = a.cluster.Cancel(id)
		return nil, err
	}
	switch info.State {
	case StateComplete:
		mu.Lock()
		defer mu.Unlock()
		if req.Progress != nil {
			req.Progress(fmt.Sprintf("batch job %s completed on node %s", id, info.Node))
		}
		return res, nil
	case StateCancelled:
		return nil, context.Canceled
	default:
		return nil, fmt.Errorf("cluster adapter: batch job %s failed: %s", id, info.Error)
	}
}
