package torque

import (
	"context"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

// TestPropertySchedulerInvariants hammers a random cluster topology with a
// random job mix and checks the scheduler's safety invariants throughout:
// busy slots never exceed capacity, every job terminates, and per-node
// occupancy returns to zero.
func TestPropertySchedulerInvariants(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		numNodes := 1 + rng.Intn(3)
		nodes := make([]NodeSpec, numNodes)
		maxSlots := 0
		for i := range nodes {
			slots := 1 + rng.Intn(4)
			nodes[i] = NodeSpec{Name: string(rune('a' + i)), Slots: slots}
			if slots > maxSlots {
				maxSlots = slots
			}
		}
		c, err := New("stress", nodes, nil)
		if err != nil {
			return false
		}
		defer c.Close()

		// Observer goroutine: capacity invariant must hold at every
		// sampled instant.
		stop := make(chan struct{})
		violated := false
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := c.Stats()
				if s.BusySlots > s.TotalSlots || s.BusySlots < 0 {
					violated = true
					return
				}
				time.Sleep(100 * time.Microsecond)
			}
		}()

		numJobs := 5 + rng.Intn(20)
		ids := make([]string, 0, numJobs)
		for i := 0; i < numJobs; i++ {
			slots := 1 + rng.Intn(maxSlots)
			// Capture the sleep here: rng is not goroutine-safe and
			// payloads run concurrently.
			sleep := time.Duration(rng.Intn(3)) * time.Millisecond
			id, err := c.Submit(JobSpec{
				Slots: slots,
				Run: func(ctx context.Context) error {
					time.Sleep(sleep)
					return nil
				},
			})
			if err != nil {
				return false
			}
			ids = append(ids, id)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		for _, id := range ids {
			info, err := c.Wait(ctx, id)
			if err != nil || info.State != StateComplete {
				return false
			}
		}
		close(stop)
		wg.Wait()
		if violated {
			return false
		}
		final := c.Stats()
		return final.BusySlots == 0 && final.FinishedJobs == numJobs
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}
