// Package torque simulates a TORQUE-managed computing cluster and provides
// the Cluster adapter that the paper's service container uses to translate
// service requests into batch jobs.
//
// The real platform submits jobs to a TORQUE resource manager.  That
// infrastructure is not available here, so this package implements a
// faithful, laptop-scale substitute: named nodes with CPU slots, submission
// queues with walltime limits, FIFO scheduling with aggressive backfill,
// and the classic qsub/qstat/qdel job lifecycle (Q → R → C/E).  Batch jobs
// carry a real Go payload, so computations executed "on the cluster"
// actually run — only the resource management is simulated.
package torque

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// BatchState is a TORQUE-style single-letter job state.
type BatchState string

// TORQUE job states.
const (
	// StateQueued (Q): the job waits for free slots.
	StateQueued BatchState = "Q"
	// StateRunning (R): the job executes on a node.
	StateRunning BatchState = "R"
	// StateComplete (C): the job finished successfully.
	StateComplete BatchState = "C"
	// StateExiting (E): the job failed or exceeded its walltime.
	StateExiting BatchState = "E"
	// StateCancelled (D): the job was deleted with qdel.
	StateCancelled BatchState = "D"
)

// Terminal reports whether the state is final.
func (s BatchState) Terminal() bool {
	return s == StateComplete || s == StateExiting || s == StateCancelled
}

// NodeSpec describes one compute node.
type NodeSpec struct {
	// Name is the node host name.
	Name string
	// Slots is the number of CPU slots (np in TORQUE terms).
	Slots int
}

// QueueSpec describes one submission queue.
type QueueSpec struct {
	// Name is the queue name ("batch" by convention).
	Name string
	// MaxWalltime bounds per-job walltime; zero means unlimited.
	MaxWalltime time.Duration
	// MaxSlots bounds per-job slot requests; zero means the cluster max.
	MaxSlots int
}

// Payload is the work a batch job performs once scheduled.  The context is
// cancelled on qdel and on walltime expiry.
type Payload func(ctx context.Context) error

// JobSpec is a batch job submission request.
type JobSpec struct {
	// Name is a human-readable job name.
	Name string
	// Queue selects the submission queue; empty means the default queue.
	Queue string
	// Slots is the number of CPU slots required (≥1).
	Slots int
	// Walltime is the execution time limit; zero means the queue limit.
	Walltime time.Duration
	// Run is the job payload.
	Run Payload
}

// JobInfo is a snapshot of a batch job, the qstat view.
type JobInfo struct {
	ID        string
	Name      string
	Queue     string
	Node      string
	Slots     int
	State     BatchState
	Error     string
	Submitted time.Time
	Started   time.Time
	Finished  time.Time
}

// Stats summarises cluster occupancy.
type Stats struct {
	Nodes        int
	TotalSlots   int
	BusySlots    int
	QueuedJobs   int
	RunningJobs  int
	FinishedJobs int
}

type node struct {
	name  string
	slots int
	busy  int
}

type job struct {
	info   JobInfo
	spec   JobSpec
	node   *node
	cancel context.CancelFunc
	done   chan struct{}
}

// Cluster is a simulated TORQUE cluster.
type Cluster struct {
	name         string
	defaultQueue string

	mu       sync.Mutex
	nodes    []*node
	queues   map[string]QueueSpec
	jobs     map[string]*job
	pending  []*job // FIFO submission order
	seq      int
	finished int
	closed   bool
}

// New creates a cluster with the given nodes and queues.  The first queue
// is the default.  At least one node and one queue are required.
func New(name string, nodes []NodeSpec, queues []QueueSpec) (*Cluster, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("torque: cluster %q: no nodes", name)
	}
	if len(queues) == 0 {
		queues = []QueueSpec{{Name: "batch"}}
	}
	c := &Cluster{
		name:         name,
		defaultQueue: queues[0].Name,
		queues:       make(map[string]QueueSpec, len(queues)),
		jobs:         make(map[string]*job),
	}
	for _, ns := range nodes {
		if ns.Slots <= 0 {
			return nil, fmt.Errorf("torque: node %q: non-positive slots %d", ns.Name, ns.Slots)
		}
		c.nodes = append(c.nodes, &node{name: ns.Name, slots: ns.Slots})
	}
	for _, qs := range queues {
		if qs.Name == "" {
			return nil, fmt.Errorf("torque: queue with empty name")
		}
		c.queues[qs.Name] = qs
	}
	return c, nil
}

// Name returns the cluster name.
func (c *Cluster) Name() string { return c.name }

// TotalSlots returns the cluster-wide slot count.
func (c *Cluster) TotalSlots() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	total := 0
	for _, n := range c.nodes {
		total += n.slots
	}
	return total
}

// ErrClosed is returned for operations on a closed cluster.
var ErrClosed = errors.New("torque: cluster is closed")

// Submit enqueues a batch job (qsub) and returns its job identifier.
func (c *Cluster) Submit(spec JobSpec) (string, error) {
	if spec.Run == nil {
		return "", fmt.Errorf("torque: submit: nil payload")
	}
	if spec.Slots <= 0 {
		spec.Slots = 1
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return "", ErrClosed
	}
	queueName := spec.Queue
	if queueName == "" {
		queueName = c.defaultQueue
	}
	q, ok := c.queues[queueName]
	if !ok {
		return "", fmt.Errorf("torque: submit: unknown queue %q", queueName)
	}
	if q.MaxSlots > 0 && spec.Slots > q.MaxSlots {
		return "", fmt.Errorf("torque: submit: %d slots exceed queue %q limit %d",
			spec.Slots, queueName, q.MaxSlots)
	}
	maxNode := 0
	for _, n := range c.nodes {
		if n.slots > maxNode {
			maxNode = n.slots
		}
	}
	if spec.Slots > maxNode {
		return "", fmt.Errorf("torque: submit: no node has %d slots (max %d)", spec.Slots, maxNode)
	}
	if q.MaxWalltime > 0 && (spec.Walltime == 0 || spec.Walltime > q.MaxWalltime) {
		spec.Walltime = q.MaxWalltime
	}
	c.seq++
	id := fmt.Sprintf("%d.%s", c.seq, c.name)
	j := &job{
		spec: spec,
		info: JobInfo{
			ID:        id,
			Name:      spec.Name,
			Queue:     queueName,
			Slots:     spec.Slots,
			State:     StateQueued,
			Submitted: time.Now(),
		},
		done: make(chan struct{}),
	}
	c.jobs[id] = j
	c.pending = append(c.pending, j)
	c.scheduleLocked()
	return id, nil
}

// scheduleLocked starts every pending job that fits, in FIFO order with
// aggressive backfill: if the head job does not fit, smaller jobs behind it
// may still start.  Callers must hold c.mu.
func (c *Cluster) scheduleLocked() {
	remaining := c.pending[:0]
	for _, j := range c.pending {
		if j.info.State != StateQueued {
			continue // cancelled while queued
		}
		n := c.firstFitLocked(j.spec.Slots)
		if n == nil {
			remaining = append(remaining, j)
			continue
		}
		c.startLocked(j, n)
	}
	c.pending = append([]*job(nil), remaining...)
}

func (c *Cluster) firstFitLocked(slots int) *node {
	for _, n := range c.nodes {
		if n.slots-n.busy >= slots {
			return n
		}
	}
	return nil
}

func (c *Cluster) startLocked(j *job, n *node) {
	n.busy += j.spec.Slots
	j.node = n
	j.info.Node = n.name
	j.info.State = StateRunning
	j.info.Started = time.Now()
	ctx := context.Background()
	var cancel context.CancelFunc
	if j.spec.Walltime > 0 {
		ctx, cancel = context.WithTimeout(ctx, j.spec.Walltime)
	} else {
		ctx, cancel = context.WithCancel(ctx)
	}
	j.cancel = cancel
	go c.runJob(j, ctx, cancel)
}

func (c *Cluster) runJob(j *job, ctx context.Context, cancel context.CancelFunc) {
	defer cancel()
	err := j.spec.Run(ctx)

	c.mu.Lock()
	defer c.mu.Unlock()
	if j.info.State == StateCancelled {
		// qdel won the race; slots were already released.
		close(j.done)
		return
	}
	j.node.busy -= j.spec.Slots
	j.info.Finished = time.Now()
	switch {
	case err == nil:
		j.info.State = StateComplete
	case errors.Is(err, context.DeadlineExceeded) || errors.Is(ctx.Err(), context.DeadlineExceeded):
		j.info.State = StateExiting
		j.info.Error = fmt.Sprintf("walltime %s exceeded", j.spec.Walltime)
	default:
		j.info.State = StateExiting
		j.info.Error = err.Error()
	}
	c.finished++
	close(j.done)
	c.scheduleLocked()
}

// Status returns the qstat snapshot of a job.
func (c *Cluster) Status(id string) (JobInfo, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	j, ok := c.jobs[id]
	if !ok {
		return JobInfo{}, fmt.Errorf("torque: unknown job %q", id)
	}
	return j.info, nil
}

// Cancel deletes a job (qdel).  Queued jobs are removed; running jobs have
// their payload context cancelled.
func (c *Cluster) Cancel(id string) error {
	c.mu.Lock()
	j, ok := c.jobs[id]
	if !ok {
		c.mu.Unlock()
		return fmt.Errorf("torque: unknown job %q", id)
	}
	switch j.info.State {
	case StateQueued:
		j.info.State = StateCancelled
		j.info.Finished = time.Now()
		c.finished++
		close(j.done)
		c.mu.Unlock()
		return nil
	case StateRunning:
		j.info.State = StateCancelled
		j.info.Finished = time.Now()
		j.node.busy -= j.spec.Slots
		c.finished++
		cancel := j.cancel
		c.scheduleLocked()
		c.mu.Unlock()
		cancel()
		return nil
	default:
		c.mu.Unlock()
		return fmt.Errorf("torque: job %q already %s", id, j.info.State)
	}
}

// Wait blocks until the job reaches a terminal state or ctx is cancelled,
// then returns the final snapshot.
func (c *Cluster) Wait(ctx context.Context, id string) (JobInfo, error) {
	c.mu.Lock()
	j, ok := c.jobs[id]
	c.mu.Unlock()
	if !ok {
		return JobInfo{}, fmt.Errorf("torque: unknown job %q", id)
	}
	select {
	case <-j.done:
		return c.Status(id)
	case <-ctx.Done():
		return JobInfo{}, ctx.Err()
	}
}

// Stats returns the current occupancy summary.
func (c *Cluster) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := Stats{Nodes: len(c.nodes), FinishedJobs: c.finished}
	for _, n := range c.nodes {
		s.TotalSlots += n.slots
		s.BusySlots += n.busy
	}
	for _, j := range c.jobs {
		switch j.info.State {
		case StateQueued:
			s.QueuedJobs++
		case StateRunning:
			s.RunningJobs++
		}
	}
	return s
}

// Jobs returns snapshots of all jobs, newest first.
func (c *Cluster) Jobs() []JobInfo {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]JobInfo, 0, len(c.jobs))
	for _, j := range c.jobs {
		out = append(out, j.info)
	}
	sort.Slice(out, func(i, k int) bool { return out[i].Submitted.After(out[k].Submitted) })
	return out
}

// Close cancels all queued and running jobs and rejects new submissions.
func (c *Cluster) Close() {
	c.mu.Lock()
	c.closed = true
	var ids []string
	for id, j := range c.jobs {
		if !j.info.State.Terminal() {
			ids = append(ids, id)
		}
	}
	c.mu.Unlock()
	for _, id := range ids {
		_ = c.Cancel(id)
	}
}
