package jsonschema

import (
	"sync"
	"testing"
)

// TestValidatePatternConcurrent is the -race regression test for the lazy
// pattern compilation: a schema built programmatically (pattern field not
// compiled by Parse) used to write the compiled regexp into the shared
// schema from inside Validate, racing concurrent validations.  Validation
// must be read-only on the schema.
func TestValidatePatternConcurrent(t *testing.T) {
	s := &Schema{Type: TypeString, Pattern: "^a+[0-9]*z$", AdditionalProperties: true}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if err := s.Validate("aaa42z"); err != nil {
					t.Errorf("valid value rejected: %v", err)
					return
				}
				if err := s.Validate("nope"); err == nil {
					t.Error("invalid value accepted")
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestValidatePatternInvalid checks that an uncompilable pattern on a
// programmatically built schema fails validation with a clear error (and
// keeps failing — the compile error is cached, not retried).
func TestValidatePatternInvalid(t *testing.T) {
	s := &Schema{Type: TypeString, Pattern: "([unclosed", AdditionalProperties: true}
	for i := 0; i < 2; i++ {
		if err := s.Validate("anything"); err == nil {
			t.Fatal("invalid pattern did not fail validation")
		}
	}
}
