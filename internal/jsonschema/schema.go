// Package jsonschema implements the subset of JSON Schema that MathCloud
// uses to describe input and output parameters of computational web
// services.
//
// The paper adopts JSON Schema (then an IETF draft) as the description and
// validation language for service parameters.  This package provides a
// self-contained implementation of the keywords the platform needs:
// type, title, description, default, enum, properties, required, items,
// numeric bounds, string length bounds, pattern and format.  Schemas are
// parsed from and serialized to plain JSON and can validate any value
// produced by encoding/json (map[string]any, []any, string, float64, bool,
// nil, json.Number).
package jsonschema

import (
	"encoding/json"
	"fmt"
	"math"
	"regexp"
	"sort"
	"strings"
	"sync"
)

// patternCache memoizes compiled pattern regexps process-wide, keyed by the
// pattern source.  Validate consults it for schemas built programmatically
// (whose unexported pattern field is nil), so validation never writes to
// the schema and concurrent Validate calls on a shared schema do not race.
var patternCache sync.Map // pattern string -> compiledPatternEntry

type compiledPatternEntry struct {
	re  *regexp.Regexp
	err error
}

// compiledPattern returns the compiled form of pattern, compiling it at
// most once per process (compile errors are cached too).
func compiledPattern(pattern string) (*regexp.Regexp, error) {
	if e, ok := patternCache.Load(pattern); ok {
		entry := e.(compiledPatternEntry)
		return entry.re, entry.err
	}
	re, err := regexp.Compile(pattern)
	entry, _ := patternCache.LoadOrStore(pattern, compiledPatternEntry{re: re, err: err})
	cached := entry.(compiledPatternEntry)
	return cached.re, cached.err
}

// Type enumerates the primitive JSON Schema types understood by the
// platform.  TypeAny accepts every value and is the implicit type of a
// schema without a "type" keyword.
type Type string

// Primitive schema types.
const (
	TypeAny     Type = "any"
	TypeString  Type = "string"
	TypeNumber  Type = "number"
	TypeInteger Type = "integer"
	TypeBoolean Type = "boolean"
	TypeArray   Type = "array"
	TypeObject  Type = "object"
	TypeNull    Type = "null"
)

// KnownType reports whether t is one of the types this package implements.
func KnownType(t Type) bool {
	switch t {
	case TypeAny, TypeString, TypeNumber, TypeInteger, TypeBoolean,
		TypeArray, TypeObject, TypeNull:
		return true
	}
	return false
}

// Schema is a parsed JSON Schema document.  The zero value is a schema that
// accepts any value.
type Schema struct {
	// Type restricts the primitive type of instances.  Empty means any.
	Type Type
	// Title and Description are human-readable annotations.
	Title       string
	Description string
	// Default is the suggested default value for the parameter, if any.
	Default any
	// HasDefault distinguishes an explicit null default from no default.
	HasDefault bool
	// Enum, when non-empty, restricts instances to one of the listed
	// values (compared by deep JSON equality).
	Enum []any
	// Format is an open-ended refinement of the type ("uri", "matrix",
	// "file", ...).  Formats are used by the workflow system for port
	// compatibility checks and are otherwise advisory.
	Format string

	// Object keywords.
	Properties map[string]*Schema
	Required   []string
	// AdditionalProperties, when false, rejects object members that are
	// not declared in Properties.  Default true.
	AdditionalProperties bool

	// Array keywords.
	Items    *Schema
	MinItems *int
	MaxItems *int

	// String keywords.
	MinLength *int
	MaxLength *int
	Pattern   string
	pattern   *regexp.Regexp

	// Numeric keywords.
	Minimum          *float64
	Maximum          *float64
	ExclusiveMinimum bool
	ExclusiveMaximum bool
}

// New returns a schema of the given type that accepts any instance of that
// type.
func New(t Type) *Schema {
	return &Schema{Type: t, AdditionalProperties: true}
}

// String returns a compact human-readable rendering of the schema type,
// e.g. "array<number>" or "object".
func (s *Schema) String() string {
	if s == nil || s.Type == "" || s.Type == TypeAny {
		return string(TypeAny)
	}
	switch s.Type {
	case TypeArray:
		if s.Items != nil {
			return fmt.Sprintf("array<%s>", s.Items.String())
		}
		return "array"
	default:
		if s.Format != "" {
			return fmt.Sprintf("%s(%s)", s.Type, s.Format)
		}
		return string(s.Type)
	}
}

// Parse parses a JSON Schema document from its JSON encoding.
func Parse(data []byte) (*Schema, error) {
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(data, &raw); err != nil {
		return nil, fmt.Errorf("jsonschema: parse: %w", err)
	}
	return parseRaw(raw, "#")
}

// MustParse is like Parse but panics on error.  It is intended for
// statically known schema literals in service definitions.
func MustParse(data string) *Schema {
	s, err := Parse([]byte(data))
	if err != nil {
		panic(err)
	}
	return s
}

func parseRaw(raw map[string]json.RawMessage, path string) (*Schema, error) {
	s := &Schema{AdditionalProperties: true}
	fail := func(key string, err error) error {
		return fmt.Errorf("jsonschema: %s/%s: %w", path, key, err)
	}
	for key, val := range raw {
		switch key {
		case "type":
			var t string
			if err := json.Unmarshal(val, &t); err != nil {
				return nil, fail(key, err)
			}
			if !KnownType(Type(t)) {
				return nil, fail(key, fmt.Errorf("unknown type %q", t))
			}
			s.Type = Type(t)
		case "title":
			if err := json.Unmarshal(val, &s.Title); err != nil {
				return nil, fail(key, err)
			}
		case "description":
			if err := json.Unmarshal(val, &s.Description); err != nil {
				return nil, fail(key, err)
			}
		case "format":
			if err := json.Unmarshal(val, &s.Format); err != nil {
				return nil, fail(key, err)
			}
		case "default":
			var v any
			if err := json.Unmarshal(val, &v); err != nil {
				return nil, fail(key, err)
			}
			s.Default = v
			s.HasDefault = true
		case "enum":
			if err := json.Unmarshal(val, &s.Enum); err != nil {
				return nil, fail(key, err)
			}
			if len(s.Enum) == 0 {
				return nil, fail(key, fmt.Errorf("enum must be non-empty"))
			}
		case "properties":
			var props map[string]json.RawMessage
			if err := json.Unmarshal(val, &props); err != nil {
				return nil, fail(key, err)
			}
			s.Properties = make(map[string]*Schema, len(props))
			for name, sub := range props {
				var subRaw map[string]json.RawMessage
				if err := json.Unmarshal(sub, &subRaw); err != nil {
					return nil, fail(key+"/"+name, err)
				}
				ps, err := parseRaw(subRaw, path+"/properties/"+name)
				if err != nil {
					return nil, err
				}
				s.Properties[name] = ps
			}
		case "required":
			if err := json.Unmarshal(val, &s.Required); err != nil {
				return nil, fail(key, err)
			}
		case "additionalProperties":
			if err := json.Unmarshal(val, &s.AdditionalProperties); err != nil {
				return nil, fail(key, err)
			}
		case "items":
			var subRaw map[string]json.RawMessage
			if err := json.Unmarshal(val, &subRaw); err != nil {
				return nil, fail(key, err)
			}
			items, err := parseRaw(subRaw, path+"/items")
			if err != nil {
				return nil, err
			}
			s.Items = items
		case "minItems":
			s.MinItems = new(int)
			if err := json.Unmarshal(val, s.MinItems); err != nil {
				return nil, fail(key, err)
			}
		case "maxItems":
			s.MaxItems = new(int)
			if err := json.Unmarshal(val, s.MaxItems); err != nil {
				return nil, fail(key, err)
			}
		case "minLength":
			s.MinLength = new(int)
			if err := json.Unmarshal(val, s.MinLength); err != nil {
				return nil, fail(key, err)
			}
		case "maxLength":
			s.MaxLength = new(int)
			if err := json.Unmarshal(val, s.MaxLength); err != nil {
				return nil, fail(key, err)
			}
		case "pattern":
			if err := json.Unmarshal(val, &s.Pattern); err != nil {
				return nil, fail(key, err)
			}
		case "minimum":
			s.Minimum = new(float64)
			if err := json.Unmarshal(val, s.Minimum); err != nil {
				return nil, fail(key, err)
			}
		case "maximum":
			s.Maximum = new(float64)
			if err := json.Unmarshal(val, s.Maximum); err != nil {
				return nil, fail(key, err)
			}
		case "exclusiveMinimum":
			if err := json.Unmarshal(val, &s.ExclusiveMinimum); err != nil {
				return nil, fail(key, err)
			}
		case "exclusiveMaximum":
			if err := json.Unmarshal(val, &s.ExclusiveMaximum); err != nil {
				return nil, fail(key, err)
			}
		default:
			// Unknown keywords are ignored, as JSON Schema requires.
		}
	}
	if s.Pattern != "" {
		re, err := regexp.Compile(s.Pattern)
		if err != nil {
			return nil, fail("pattern", err)
		}
		s.pattern = re
	}
	for _, req := range s.Required {
		if s.Properties == nil || s.Properties[req] == nil {
			// Required names need not be declared, but if additional
			// properties are forbidden the schema is unsatisfiable.
			if !s.AdditionalProperties {
				return nil, fail("required",
					fmt.Errorf("property %q required but not declared and additionalProperties is false", req))
			}
		}
	}
	return s, nil
}

// MarshalJSON encodes the schema back into standard JSON Schema syntax.
func (s *Schema) MarshalJSON() ([]byte, error) {
	m := make(map[string]any)
	if s.Type != "" && s.Type != TypeAny {
		m["type"] = string(s.Type)
	}
	if s.Title != "" {
		m["title"] = s.Title
	}
	if s.Description != "" {
		m["description"] = s.Description
	}
	if s.Format != "" {
		m["format"] = s.Format
	}
	if s.HasDefault {
		m["default"] = s.Default
	}
	if len(s.Enum) > 0 {
		m["enum"] = s.Enum
	}
	if len(s.Properties) > 0 {
		m["properties"] = s.Properties
	}
	if len(s.Required) > 0 {
		m["required"] = s.Required
	}
	if !s.AdditionalProperties {
		m["additionalProperties"] = false
	}
	if s.Items != nil {
		m["items"] = s.Items
	}
	if s.MinItems != nil {
		m["minItems"] = *s.MinItems
	}
	if s.MaxItems != nil {
		m["maxItems"] = *s.MaxItems
	}
	if s.MinLength != nil {
		m["minLength"] = *s.MinLength
	}
	if s.MaxLength != nil {
		m["maxLength"] = *s.MaxLength
	}
	if s.Pattern != "" {
		m["pattern"] = s.Pattern
	}
	if s.Minimum != nil {
		m["minimum"] = *s.Minimum
	}
	if s.Maximum != nil {
		m["maximum"] = *s.Maximum
	}
	if s.ExclusiveMinimum {
		m["exclusiveMinimum"] = true
	}
	if s.ExclusiveMaximum {
		m["exclusiveMaximum"] = true
	}
	return json.Marshal(m)
}

// UnmarshalJSON decodes a schema, making *Schema usable directly as a field
// of larger JSON documents (service descriptions, workflow files).
func (s *Schema) UnmarshalJSON(data []byte) error {
	parsed, err := Parse(data)
	if err != nil {
		return err
	}
	*s = *parsed
	return nil
}

// A ValidationError describes why a value failed validation, with a JSON
// pointer-like path to the offending element.
type ValidationError struct {
	Path    string
	Message string
}

// Error implements the error interface.
func (e *ValidationError) Error() string {
	return fmt.Sprintf("jsonschema: %s: %s", e.Path, e.Message)
}

func errAt(path, format string, args ...any) error {
	return &ValidationError{Path: path, Message: fmt.Sprintf(format, args...)}
}

// Validate checks value against the schema and returns a ValidationError
// for the first violation found, or nil if the value conforms.  The value
// must use encoding/json's generic representation.
func (s *Schema) Validate(value any) error {
	if s == nil {
		return nil
	}
	return s.validate(value, "$")
}

func (s *Schema) validate(value any, path string) error {
	if len(s.Enum) > 0 {
		ok := false
		for _, e := range s.Enum {
			if JSONEqual(e, value) {
				ok = true
				break
			}
		}
		if !ok {
			return errAt(path, "value %v not in enum", Compact(value))
		}
	}
	switch s.Type {
	case "", TypeAny:
		return nil
	case TypeNull:
		if value != nil {
			return errAt(path, "expected null, got %s", typeName(value))
		}
		return nil
	case TypeBoolean:
		if _, ok := value.(bool); !ok {
			return errAt(path, "expected boolean, got %s", typeName(value))
		}
		return nil
	case TypeString:
		str, ok := value.(string)
		if !ok {
			return errAt(path, "expected string, got %s", typeName(value))
		}
		n := len([]rune(str))
		if s.MinLength != nil && n < *s.MinLength {
			return errAt(path, "string length %d < minLength %d", n, *s.MinLength)
		}
		if s.MaxLength != nil && n > *s.MaxLength {
			return errAt(path, "string length %d > maxLength %d", n, *s.MaxLength)
		}
		re := s.pattern
		if re == nil && s.Pattern != "" {
			// Schema built programmatically (Parse compiles eagerly): fetch
			// the compiled form from the process-wide cache.  The schema
			// itself is never written, so concurrent Validate calls on a
			// shared schema are race-free.
			var err error
			re, err = compiledPattern(s.Pattern)
			if err != nil {
				return errAt(path, "invalid pattern %q", s.Pattern)
			}
		}
		if re != nil && !re.MatchString(str) {
			return errAt(path, "string %q does not match pattern %q", str, s.Pattern)
		}
		return nil
	case TypeNumber, TypeInteger:
		f, ok := asFloat(value)
		if !ok {
			return errAt(path, "expected %s, got %s", s.Type, typeName(value))
		}
		if s.Type == TypeInteger && f != math.Trunc(f) {
			return errAt(path, "expected integer, got %v", f)
		}
		if s.Minimum != nil {
			if s.ExclusiveMinimum && f <= *s.Minimum {
				return errAt(path, "value %v <= exclusive minimum %v", f, *s.Minimum)
			}
			if !s.ExclusiveMinimum && f < *s.Minimum {
				return errAt(path, "value %v < minimum %v", f, *s.Minimum)
			}
		}
		if s.Maximum != nil {
			if s.ExclusiveMaximum && f >= *s.Maximum {
				return errAt(path, "value %v >= exclusive maximum %v", f, *s.Maximum)
			}
			if !s.ExclusiveMaximum && f > *s.Maximum {
				return errAt(path, "value %v > maximum %v", f, *s.Maximum)
			}
		}
		return nil
	case TypeArray:
		arr, ok := value.([]any)
		if !ok {
			return errAt(path, "expected array, got %s", typeName(value))
		}
		if s.MinItems != nil && len(arr) < *s.MinItems {
			return errAt(path, "array length %d < minItems %d", len(arr), *s.MinItems)
		}
		if s.MaxItems != nil && len(arr) > *s.MaxItems {
			return errAt(path, "array length %d > maxItems %d", len(arr), *s.MaxItems)
		}
		if s.Items != nil {
			for i, item := range arr {
				if err := s.Items.validate(item, fmt.Sprintf("%s[%d]", path, i)); err != nil {
					return err
				}
			}
		}
		return nil
	case TypeObject:
		obj, ok := value.(map[string]any)
		if !ok {
			return errAt(path, "expected object, got %s", typeName(value))
		}
		for _, req := range s.Required {
			if _, ok := obj[req]; !ok {
				return errAt(path, "missing required property %q", req)
			}
		}
		// Deterministic order for reproducible error messages.
		keys := make([]string, 0, len(obj))
		for k := range obj {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			sub, declared := s.Properties[k]
			if !declared {
				if !s.AdditionalProperties {
					return errAt(path, "unexpected property %q", k)
				}
				continue
			}
			if err := sub.validate(obj[k], path+"."+k); err != nil {
				return err
			}
		}
		return nil
	default:
		return errAt(path, "unknown schema type %q", s.Type)
	}
}

// Compatible reports whether a value conforming to the producer schema is
// acceptable wherever the consumer schema is expected.  It implements the
// workflow editor's port type-compatibility check: any-typed consumers
// accept everything, identical types are compatible, integers feed numbers,
// array compatibility is element-wise, and differing non-empty formats are
// incompatible.
func Compatible(producer, consumer *Schema) bool {
	if consumer == nil || consumer.Type == "" || consumer.Type == TypeAny {
		return true
	}
	if producer == nil || producer.Type == "" || producer.Type == TypeAny {
		// An untyped producer may emit anything; the connection is
		// allowed and validated at run time.
		return true
	}
	if consumer.Format != "" && producer.Format != "" && consumer.Format != producer.Format {
		return false
	}
	if producer.Type == consumer.Type {
		if producer.Type == TypeArray && producer.Items != nil && consumer.Items != nil {
			return Compatible(producer.Items, consumer.Items)
		}
		return true
	}
	// Integer values are valid numbers.
	if producer.Type == TypeInteger && consumer.Type == TypeNumber {
		return true
	}
	return false
}

// JSONEqual reports deep equality of two generic JSON values.  Numbers are
// compared by value so int, float64 and json.Number mix freely.
func JSONEqual(a, b any) bool {
	if af, aok := asFloat(a); aok {
		bf, bok := asFloat(b)
		return bok && af == bf
	}
	switch av := a.(type) {
	case nil:
		return b == nil
	case bool:
		bv, ok := b.(bool)
		return ok && av == bv
	case string:
		bv, ok := b.(string)
		return ok && av == bv
	case []any:
		bv, ok := b.([]any)
		if !ok || len(av) != len(bv) {
			return false
		}
		for i := range av {
			if !JSONEqual(av[i], bv[i]) {
				return false
			}
		}
		return true
	case map[string]any:
		bv, ok := b.(map[string]any)
		if !ok || len(av) != len(bv) {
			return false
		}
		for k, v := range av {
			bvv, ok := bv[k]
			if !ok || !JSONEqual(v, bvv) {
				return false
			}
		}
		return true
	}
	return false
}

// Compact renders a JSON value on one line, truncated for error messages.
func Compact(v any) string {
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Sprintf("%v", v)
	}
	const limit = 64
	str := string(data)
	if len(str) > limit {
		str = str[:limit] + "..."
	}
	return str
}

func asFloat(v any) (float64, bool) {
	switch n := v.(type) {
	case float64:
		return n, true
	case float32:
		return float64(n), true
	case int:
		return float64(n), true
	case int32:
		return float64(n), true
	case int64:
		return float64(n), true
	case json.Number:
		f, err := n.Float64()
		return f, err == nil
	}
	return 0, false
}

func typeName(v any) string {
	switch v.(type) {
	case nil:
		return "null"
	case bool:
		return "boolean"
	case string:
		return "string"
	case float64, float32, int, int32, int64, json.Number:
		return "number"
	case []any:
		return "array"
	case map[string]any:
		return "object"
	default:
		return fmt.Sprintf("%T", v)
	}
}

// Normalize converts a Go value into encoding/json's generic representation
// by a marshal/unmarshal round trip.  It is used when native Go adapters
// return structured results that must be validated against a schema.
func Normalize(v any) (any, error) {
	data, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("jsonschema: normalize: %w", err)
	}
	var out any
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, fmt.Errorf("jsonschema: normalize: %w", err)
	}
	return out, nil
}

// Describe returns a one-line human description of the schema suitable for
// the auto-generated service web UI: title, type and constraints.
func (s *Schema) Describe() string {
	if s == nil {
		return "any value"
	}
	var b strings.Builder
	b.WriteString(s.String())
	var cons []string
	if s.Minimum != nil {
		cons = append(cons, fmt.Sprintf("min %v", *s.Minimum))
	}
	if s.Maximum != nil {
		cons = append(cons, fmt.Sprintf("max %v", *s.Maximum))
	}
	if len(s.Enum) > 0 {
		cons = append(cons, fmt.Sprintf("one of %s", Compact(s.Enum)))
	}
	if s.Pattern != "" {
		cons = append(cons, fmt.Sprintf("pattern %q", s.Pattern))
	}
	if len(cons) > 0 {
		b.WriteString(" (")
		b.WriteString(strings.Join(cons, ", "))
		b.WriteString(")")
	}
	return b.String()
}
