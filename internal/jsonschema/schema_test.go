package jsonschema

import (
	"encoding/json"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func mustParse(t *testing.T, src string) *Schema {
	t.Helper()
	s, err := Parse([]byte(src))
	if err != nil {
		t.Fatalf("Parse(%s): %v", src, err)
	}
	return s
}

func TestParseBasicTypes(t *testing.T) {
	for _, typ := range []Type{TypeString, TypeNumber, TypeInteger, TypeBoolean,
		TypeArray, TypeObject, TypeNull, TypeAny} {
		s := mustParse(t, `{"type": "`+string(typ)+`"}`)
		if s.Type != typ {
			t.Errorf("type = %q, want %q", s.Type, typ)
		}
	}
}

func TestParseRejectsUnknownType(t *testing.T) {
	if _, err := Parse([]byte(`{"type": "frobnicator"}`)); err == nil {
		t.Error("unknown type accepted")
	}
}

func TestParseRejectsBadPattern(t *testing.T) {
	if _, err := Parse([]byte(`{"type": "string", "pattern": "("}`)); err == nil {
		t.Error("invalid regexp accepted")
	}
}

func TestParseRejectsEmptyEnum(t *testing.T) {
	if _, err := Parse([]byte(`{"enum": []}`)); err == nil {
		t.Error("empty enum accepted")
	}
}

func TestValidateString(t *testing.T) {
	s := mustParse(t, `{"type": "string", "minLength": 2, "maxLength": 4, "pattern": "^[a-z]+$"}`)
	cases := []struct {
		v  any
		ok bool
	}{
		{"abc", true},
		{"ab", true},
		{"abcd", true},
		{"a", false},     // too short
		{"abcde", false}, // too long
		{"AbC", false},   // pattern
		{42.0, false},    // wrong type
		{nil, false},     // null
		{true, false},    // boolean
		{[]any{}, false}, // array
	}
	for _, tc := range cases {
		err := s.Validate(tc.v)
		if (err == nil) != tc.ok {
			t.Errorf("Validate(%v) err=%v, want ok=%v", tc.v, err, tc.ok)
		}
	}
}

func TestValidateNumberBounds(t *testing.T) {
	s := mustParse(t, `{"type": "number", "minimum": 0, "maximum": 10, "exclusiveMaximum": true}`)
	for _, tc := range []struct {
		v  float64
		ok bool
	}{{0, true}, {5, true}, {9.999, true}, {10, false}, {-0.1, false}} {
		err := s.Validate(tc.v)
		if (err == nil) != tc.ok {
			t.Errorf("Validate(%v) err=%v, want ok=%v", tc.v, err, tc.ok)
		}
	}
}

func TestValidateInteger(t *testing.T) {
	s := mustParse(t, `{"type": "integer"}`)
	if err := s.Validate(3.0); err != nil {
		t.Errorf("3.0 rejected: %v", err)
	}
	if err := s.Validate(3.5); err == nil {
		t.Error("3.5 accepted as integer")
	}
}

func TestValidateEnum(t *testing.T) {
	s := mustParse(t, `{"enum": ["a", 1, true, null]}`)
	for _, ok := range []any{"a", 1.0, true, nil} {
		if err := s.Validate(ok); err != nil {
			t.Errorf("enum member %v rejected: %v", ok, err)
		}
	}
	for _, bad := range []any{"b", 2.0, false} {
		if err := s.Validate(bad); err == nil {
			t.Errorf("non-member %v accepted", bad)
		}
	}
}

func TestValidateArray(t *testing.T) {
	s := mustParse(t, `{"type": "array", "items": {"type": "number"}, "minItems": 1, "maxItems": 3}`)
	if err := s.Validate([]any{1.0, 2.0}); err != nil {
		t.Errorf("valid array rejected: %v", err)
	}
	if err := s.Validate([]any{}); err == nil {
		t.Error("too-short array accepted")
	}
	if err := s.Validate([]any{1.0, 2.0, 3.0, 4.0}); err == nil {
		t.Error("too-long array accepted")
	}
	if err := s.Validate([]any{1.0, "two"}); err == nil {
		t.Error("array with wrong element type accepted")
	}
}

func TestValidateObject(t *testing.T) {
	s := mustParse(t, `{
		"type": "object",
		"properties": {"name": {"type": "string"}, "age": {"type": "integer"}},
		"required": ["name"]
	}`)
	if err := s.Validate(map[string]any{"name": "ada", "age": 36.0}); err != nil {
		t.Errorf("valid object rejected: %v", err)
	}
	if err := s.Validate(map[string]any{"age": 36.0}); err == nil {
		t.Error("object missing required property accepted")
	}
	if err := s.Validate(map[string]any{"name": "ada", "extra": 1.0}); err != nil {
		t.Errorf("additional property rejected by default: %v", err)
	}

	strict := mustParse(t, `{
		"type": "object",
		"properties": {"name": {"type": "string"}},
		"additionalProperties": false
	}`)
	if err := strict.Validate(map[string]any{"name": "x", "extra": 1.0}); err == nil {
		t.Error("additionalProperties=false did not reject extra member")
	}
}

func TestValidationErrorPaths(t *testing.T) {
	s := mustParse(t, `{
		"type": "object",
		"properties": {"rows": {"type": "array", "items": {"type": "number"}}}
	}`)
	err := s.Validate(map[string]any{"rows": []any{1.0, "x"}})
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "$.rows[1]") {
		t.Errorf("error %q lacks path $.rows[1]", err)
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	srcs := []string{
		`{"type":"string","minLength":1,"pattern":"^a"}`,
		`{"type":"number","minimum":0,"maximum":5,"exclusiveMinimum":true}`,
		`{"type":"array","items":{"type":"integer"},"minItems":2}`,
		`{"type":"object","properties":{"x":{"type":"boolean"}},"required":["x"],"additionalProperties":false}`,
		`{"enum":[1,"two",false]}`,
		`{"type":"string","format":"matrix","title":"M","description":"a matrix","default":"x"}`,
	}
	for _, src := range srcs {
		s := mustParse(t, src)
		data, err := json.Marshal(s)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		back := mustParse(t, string(data))
		data2, err := json.Marshal(back)
		if err != nil {
			t.Fatal(err)
		}
		var a, b any
		if err := json.Unmarshal(data, &a); err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(data2, &b); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("round trip drift for %s:\n  %s\n  %s", src, data, data2)
		}
	}
}

func TestCompatible(t *testing.T) {
	num := New(TypeNumber)
	integer := New(TypeInteger)
	str := New(TypeString)
	anyS := New(TypeAny)
	arrNum := mustParse(t, `{"type":"array","items":{"type":"number"}}`)
	arrStr := mustParse(t, `{"type":"array","items":{"type":"string"}}`)
	matrix := mustParse(t, `{"type":"array","format":"matrix"}`)
	curve := mustParse(t, `{"type":"array","format":"curve"}`)

	cases := []struct {
		from, to *Schema
		want     bool
	}{
		{num, num, true},
		{integer, num, true},  // integers feed numbers
		{num, integer, false}, // not the reverse
		{str, num, false},
		{num, anyS, true}, // anything feeds any
		{anyS, num, true}, // untyped producers allowed
		{nil, num, true},
		{num, nil, true},
		{arrNum, arrNum, true},
		{arrNum, arrStr, false},
		{matrix, matrix, true},
		{matrix, curve, false}, // differing formats
	}
	for i, tc := range cases {
		if got := Compatible(tc.from, tc.to); got != tc.want {
			t.Errorf("case %d: Compatible(%s, %s) = %v, want %v",
				i, tc.from.String(), tc.to.String(), got, tc.want)
		}
	}
}

// genValue produces a random JSON value conforming to a random choice.
func genValue(rng *rand.Rand, depth int) any {
	switch rng.Intn(6) {
	case 0:
		return nil
	case 1:
		return rng.Intn(2) == 0
	case 2:
		return rng.NormFloat64() * 100
	case 3:
		return randWord(rng)
	case 4:
		if depth > 2 {
			return rng.Float64()
		}
		n := rng.Intn(4)
		arr := make([]any, n)
		for i := range arr {
			arr[i] = genValue(rng, depth+1)
		}
		return arr
	default:
		if depth > 2 {
			return randWord(rng)
		}
		n := rng.Intn(4)
		obj := make(map[string]any, n)
		for i := 0; i < n; i++ {
			obj[randWord(rng)] = genValue(rng, depth+1)
		}
		return obj
	}
}

func randWord(rng *rand.Rand) string {
	letters := "abcdefg"
	n := 1 + rng.Intn(6)
	b := make([]byte, n)
	for i := range b {
		b[i] = letters[rng.Intn(len(letters))]
	}
	return string(b)
}

// TestPropertyJSONEqualReflexive checks v == v for random JSON values.
func TestPropertyJSONEqualReflexive(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		v := genValue(rng, 0)
		return JSONEqual(v, v)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestPropertyValidateAgreesWithMarshalTrip checks that validation gives
// the same verdict on a value and on its JSON round trip — the schema must
// not depend on in-memory representation quirks.
func TestPropertyValidateAgreesWithMarshalTrip(t *testing.T) {
	schemas := []*Schema{
		mustParse(t, `{"type":"number"}`),
		mustParse(t, `{"type":"string","minLength":2}`),
		mustParse(t, `{"type":"array","items":{"type":"number"}}`),
		mustParse(t, `{"type":"object"}`),
		mustParse(t, `{"type":"boolean"}`),
	}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		v := genValue(rng, 0)
		data, err := json.Marshal(v)
		if err != nil {
			return false
		}
		var back any
		if err := json.Unmarshal(data, &back); err != nil {
			return false
		}
		for _, s := range schemas {
			if (s.Validate(v) == nil) != (s.Validate(back) == nil) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestPropertyEnumMembersValidate: a schema whose enum lists v accepts v.
func TestPropertyEnumMembersValidate(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		raw := genValue(rng, 1)
		// Normalize through JSON so numbers compare canonically.
		norm, err := Normalize(raw)
		if err != nil {
			return false
		}
		s := &Schema{Enum: []any{norm}, AdditionalProperties: true}
		return s.Validate(norm) == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestNormalize(t *testing.T) {
	type point struct {
		X int    `json:"x"`
		Y string `json:"y"`
	}
	v, err := Normalize(point{X: 3, Y: "up"})
	if err != nil {
		t.Fatal(err)
	}
	m, ok := v.(map[string]any)
	if !ok || m["x"] != 3.0 || m["y"] != "up" {
		t.Errorf("Normalize = %#v", v)
	}
}

func TestDescribe(t *testing.T) {
	s := mustParse(t, `{"type":"number","minimum":1,"maximum":9}`)
	d := s.Describe()
	if !strings.Contains(d, "number") || !strings.Contains(d, "min 1") {
		t.Errorf("Describe = %q", d)
	}
	var nilSchema *Schema
	if nilSchema.Describe() != "any value" {
		t.Errorf("nil describe = %q", nilSchema.Describe())
	}
}

func TestSchemaString(t *testing.T) {
	if got := mustParse(t, `{"type":"array","items":{"type":"number"}}`).String(); got != "array<number>" {
		t.Errorf("String = %q", got)
	}
	if got := mustParse(t, `{"type":"string","format":"uri"}`).String(); got != "string(uri)" {
		t.Errorf("String = %q", got)
	}
}
