// Package platform provides one-call local deployments of the MathCloud
// stack — container, HTTP listener, adapter registry, optional WMS and
// catalogue — used by the examples, the experiment harness and the
// benchmarks.  It is glue, not substance: everything it wires together is
// the ordinary public API of the other packages.
package platform

import (
	"context"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"time"

	"mathcloud/internal/adapter"
	"mathcloud/internal/catalogue"
	"mathcloud/internal/container"
	"mathcloud/internal/workflow"
)

// Options configure a local deployment.
type Options struct {
	// Workers is the container's handler pool size (default 8).
	Workers int
	// Quiet suppresses request logging (default true behaviour is quiet;
	// set Verbose to enable logs).
	Verbose bool
	// WithWMS additionally mounts a workflow management service.
	WithWMS bool
	// WithCatalogue additionally starts a service catalogue on a second
	// listener.
	WithCatalogue bool
	// Guard optionally secures the container.
	Guard container.Guard
}

// Deployment is a running local MathCloud instance.
type Deployment struct {
	// Container is the Everest instance.
	Container *container.Container
	// Registry is the adapter registry used by the container.
	Registry *adapter.Registry
	// BaseURL is the container's (or WMS's) HTTP base URL.
	BaseURL string
	// WMS is non-nil when Options.WithWMS was set.
	WMS *workflow.WMS
	// Catalogue and CatalogueURL are set when WithCatalogue was chosen.
	Catalogue    *catalogue.Catalogue
	CatalogueURL string

	servers   []*http.Server
	listeners []net.Listener
}

// StartLocal builds, wires and serves a local deployment on loopback
// ports.
func StartLocal(opts Options) (*Deployment, error) {
	logger := log.New(io.Discard, "", 0)
	if opts.Verbose {
		logger = log.Default()
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = 8
	}
	registry := adapter.NewRegistry()
	c, err := container.New(container.Options{
		Workers:  workers,
		Logger:   logger,
		Adapters: registry,
		Guard:    opts.Guard,
	})
	if err != nil {
		return nil, err
	}
	d := &Deployment{Container: c, Registry: registry}

	var handler http.Handler = c.Handler()
	if opts.WithWMS {
		// The local invoker dispatches workflow blocks whose services live
		// in this process straight into the job manager (registered via
		// SetBaseURL below); everything else goes over HTTP through the
		// shared tuned transport.
		invoker := workflow.NewLocalInvoker(&workflow.HTTPInvoker{})
		d.WMS = workflow.NewWMS(c, registry, invoker, invoker)
		handler = d.WMS.Handler()
	}
	base, err := d.serve(handler)
	if err != nil {
		d.Close()
		return nil, err
	}
	d.BaseURL = base
	c.SetBaseURL(base)

	if opts.WithCatalogue {
		d.Catalogue = catalogue.New(catalogue.ClientDescriber{})
		catURL, err := d.serve(d.Catalogue.Handler())
		if err != nil {
			d.Close()
			return nil, err
		}
		d.CatalogueURL = catURL
	}
	return d, nil
}

func (d *Deployment) serve(h http.Handler) (string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", fmt.Errorf("platform: listen: %w", err)
	}
	srv := &http.Server{Handler: h, ReadHeaderTimeout: 10 * time.Second}
	go func() {
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			log.Printf("platform: serve: %v", err)
		}
	}()
	d.servers = append(d.servers, srv)
	d.listeners = append(d.listeners, ln)
	return "http://" + ln.Addr().String(), nil
}

// Close shuts down the listeners, the container and the catalogue pinger.
func (d *Deployment) Close() {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for _, srv := range d.servers {
		_ = srv.Shutdown(ctx)
	}
	if d.Catalogue != nil {
		d.Catalogue.Close()
	}
	d.Container.Close()
}
