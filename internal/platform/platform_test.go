package platform_test

import (
	"context"
	"net/http"
	"testing"

	"mathcloud/internal/cas"
	"mathcloud/internal/catalogue"
	"mathcloud/internal/client"
	"mathcloud/internal/platform"
)

func TestStartLocalServesContainer(t *testing.T) {
	d, err := platform.StartLocal(platform.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if _, err := cas.Deploy(d.Container, "maxima", 1); err != nil {
		t.Fatal(err)
	}
	names, err := client.New().ServiceNames(context.Background(), d.BaseURL)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "maxima" {
		t.Errorf("names = %v", names)
	}
}

func TestStartLocalWithWMSAndCatalogue(t *testing.T) {
	d, err := platform.StartLocal(platform.Options{WithWMS: true, WithCatalogue: true})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if d.WMS == nil || d.Catalogue == nil || d.CatalogueURL == "" {
		t.Fatal("WMS or catalogue missing")
	}
	// The WMS endpoint answers on the same listener.
	resp, err := http.Get(d.BaseURL + "/workflows")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("workflows status = %d", resp.StatusCode)
	}
	// Register a container service into the catalogue end to end.
	if _, err := cas.Deploy(d.Container, "maxima", 1); err != nil {
		t.Fatal(err)
	}
	entry, err := d.Catalogue.Register(context.Background(),
		d.Container.ServiceURI("maxima"), []string{"cas"})
	if err != nil {
		t.Fatal(err)
	}
	if entry.Description.Name != "maxima" {
		t.Errorf("catalogue fetched %q", entry.Description.Name)
	}
	results := d.Catalogue.Search("algebra", catalogue.SearchOptions{})
	if len(results) != 1 {
		t.Errorf("search results = %d", len(results))
	}
}
