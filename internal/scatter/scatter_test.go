package scatter

import (
	"math"
	"testing"
)

func TestCurveBasicProperties(t *testing.T) {
	q := QGrid(5, 70, 40)
	for _, s := range Library() {
		curve := Curve(s, q, 256)
		if len(curve) != len(q) {
			t.Fatalf("%s: curve length %d, want %d", s.Label, len(curve), len(q))
		}
		for i, v := range curve {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("%s: curve[%d] = %v", s.Label, i, v)
			}
			if v < -1 || v > 1.0001 {
				t.Errorf("%s: curve[%d] = %v out of normalized range", s.Label, i, v)
			}
		}
	}
}

func TestCurveAtZeroQIsOne(t *testing.T) {
	// I(0) = (1/N²)·N² = 1 for any structure.
	s := Structure{Class: ClassSphere, R: 1.0}
	curve := Curve(s, []float64{1e-12}, 128)
	if math.Abs(curve[0]-1) > 1e-6 {
		t.Errorf("I(0) = %v, want 1", curve[0])
	}
}

func TestCurvesDistinguishClasses(t *testing.T) {
	q := QGrid(5, 70, 40)
	a := Curve(Structure{Class: ClassToroid, R: 2, R2: 0.5}, q, 256)
	b := Curve(Structure{Class: ClassSphere, R: 1.2}, q, 256)
	diff := 0.0
	for i := range q {
		diff += math.Abs(a[i] - b[i])
	}
	// Intensities decay quickly over this q range, so compare against
	// the curves' own mass rather than an absolute threshold.
	mass := 0.0
	for i := range q {
		mass += math.Abs(a[i]) + math.Abs(b[i])
	}
	if diff < 0.05*mass {
		t.Errorf("toroid and sphere curves nearly identical (L1 %v vs mass %v)", diff, mass)
	}
}

// buildProblem prepares the standard fitting problem used by the solver
// tests.
func buildProblem(t *testing.T) (lib []Structure, curves [][]float64, obs *Observation) {
	t.Helper()
	lib = Library()
	q := QGrid(5, 70, 60)
	curves = make([][]float64, len(lib))
	for i, s := range lib {
		curves[i] = Curve(s, q, 256)
	}
	obs = Synthesize(lib, q, curves, 0.01, 20260705)
	return lib, curves, obs
}

func TestAllSolversRecoverToroidDominance(t *testing.T) {
	lib, curves, obs := buildProblem(t)
	for _, name := range Solvers() {
		res, err := Fit(name, curves, obs.I, 3000)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		shares := ClassShare(lib, res.Weights)
		dominant, share := Dominant(shares)
		if dominant != ClassToroid {
			t.Errorf("%s: dominant class %s (share %.2f), want toroid; shares %v",
				name, dominant, share, shares)
		}
		if share < 0.4 {
			t.Errorf("%s: toroid share %.2f suspiciously low", name, share)
		}
		for i, w := range res.Weights {
			if w < 0 {
				t.Errorf("%s: negative weight %v at %d", name, w, i)
			}
		}
	}
}

func TestSolversAgreeOnChi2(t *testing.T) {
	_, curves, obs := buildProblem(t)
	results, best, err := BestFit(curves, obs.I, 3000)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 || best < 0 {
		t.Fatalf("results %d best %d", len(results), best)
	}
	// All three methods should reach comparable fits (within 10x of the
	// best), and the best should be small.
	for _, r := range results {
		if r.Chi2 > 10*results[best].Chi2+1e-9 {
			t.Errorf("%s: chi2 %v far from best %v", r.Solver, r.Chi2, results[best].Chi2)
		}
	}
}

func TestFitRejectsBadInput(t *testing.T) {
	if _, err := Fit(SolverProjGrad, nil, nil, 10); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := Fit("bogus", [][]float64{{1}}, []float64{1}, 10); err == nil {
		t.Error("unknown solver accepted")
	}
	if _, err := Fit(SolverProjGrad, [][]float64{{1, 2}}, []float64{1}, 10); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestClassShareNormalization(t *testing.T) {
	lib := Library()
	w := make([]float64, len(lib))
	for i := range w {
		w[i] = 1
	}
	shares := ClassShare(lib, w)
	total := 0.0
	for _, v := range shares {
		total += v
	}
	if math.Abs(total-1) > 1e-9 {
		t.Errorf("shares sum to %v, want 1", total)
	}
}

func TestSynthesizeDeterministic(t *testing.T) {
	lib := Library()
	q := QGrid(5, 70, 20)
	curves := make([][]float64, len(lib))
	for i, s := range lib {
		curves[i] = Curve(s, q, 128)
	}
	a := Synthesize(lib, q, curves, 0.02, 7)
	b := Synthesize(lib, q, curves, 0.02, 7)
	for i := range a.I {
		if a.I[i] != b.I[i] {
			t.Fatal("synthesis is not deterministic for equal seeds")
		}
	}
	c := Synthesize(lib, q, curves, 0.02, 8)
	same := true
	for i := range a.I {
		if a.I[i] != c.I[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical observations")
	}
}
