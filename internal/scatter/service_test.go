package scatter

import (
	"context"
	"strings"
	"testing"

	"mathcloud/internal/core"
)

func TestCurveFuncComputesViaService(t *testing.T) {
	out, err := curveFunc(context.Background(), core.Values{
		"structure": map[string]any{"class": "sphere", "r": 1.0},
		"q":         []any{5.0, 10.0, 20.0},
		"samples":   64.0,
	})
	if err != nil {
		t.Fatal(err)
	}
	curve, ok := out["curve"].([]any)
	if !ok || len(curve) != 3 {
		t.Fatalf("curve = %v", out["curve"])
	}
	// Must match the direct computation.
	want := Curve(Structure{Class: ClassSphere, R: 1.0}, []float64{5, 10, 20}, 64)
	for i := range want {
		if curve[i] != want[i] {
			t.Errorf("curve[%d] = %v, want %v", i, curve[i], want[i])
		}
	}
}

func TestCurveFuncValidation(t *testing.T) {
	cases := []struct {
		name string
		in   core.Values
		want string
	}{
		{"missing class", core.Values{"structure": map[string]any{}, "q": []any{1.0}}, "class"},
		{"bad q", core.Values{"structure": map[string]any{"class": "sphere", "r": 1.0}, "q": "nope"}, "q grid"},
		{"q with non-number", core.Values{"structure": map[string]any{"class": "sphere", "r": 1.0},
			"q": []any{1.0, "x"}}, "not a number"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := curveFunc(context.Background(), tc.in)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("err = %v, want %q", err, tc.want)
			}
		})
	}
}

func TestFitFuncViaService(t *testing.T) {
	lib := Library()[:3]
	q := QGrid(5, 70, 20)
	curves := make([]any, len(lib))
	floatCurves := make([][]float64, len(lib))
	for i, s := range lib {
		floatCurves[i] = Curve(s, q, 64)
		curves[i] = floatsToJSON(floatCurves[i])
	}
	obs := Synthesize(lib, q, floatCurves, 0, 5)
	out, err := fitFunc(context.Background(), core.Values{
		"solver":      string(SolverCoordinate),
		"curves":      curves,
		"observation": floatsToJSON(obs.I),
		"iters":       500.0,
	})
	if err != nil {
		t.Fatal(err)
	}
	weights, ok := out["weights"].([]any)
	if !ok || len(weights) != len(lib) {
		t.Fatalf("weights = %v", out["weights"])
	}
	chi, ok := out["chi2"].(float64)
	if !ok || chi < 0 {
		t.Errorf("chi2 = %v", out["chi2"])
	}
}

func TestFitFuncValidation(t *testing.T) {
	_, err := fitFunc(context.Background(), core.Values{"solver": "coordinate-descent"})
	if err == nil || !strings.Contains(err.Error(), "curves") {
		t.Errorf("err = %v", err)
	}
	_, err = fitFunc(context.Background(), core.Values{
		"solver": "bogus",
		"curves": []any{[]any{1.0}}, "observation": []any{1.0},
	})
	if err == nil || !strings.Contains(err.Error(), "unknown solver") {
		t.Errorf("err = %v", err)
	}
}
