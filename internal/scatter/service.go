package scatter

import (
	"context"
	"encoding/json"
	"fmt"

	"mathcloud/internal/adapter"
	"mathcloud/internal/container"
	"mathcloud/internal/core"
	"mathcloud/internal/jsonschema"
)

// Service wrappers: the curve computation (one structure per request,
// embarrassingly parallel — run on the grid in the original study) and the
// fit (one solver per request — run on a cluster).

// CurveFuncName and FitFuncName are the native-function names.
const (
	CurveFuncName = "xray.curve"
	FitFuncName   = "xray.fit"
)

func curveFunc(_ context.Context, inputs core.Values) (core.Values, error) {
	q, err := floatSlice(inputs["q"])
	if err != nil {
		return nil, fmt.Errorf("scatter: q grid: %w", err)
	}
	return curveCompute(inputs, q)
}

// curveCompute evaluates one curve request against an already converted q
// grid (the part a batched campaign shares across points).
func curveCompute(inputs core.Values, q []float64) (core.Values, error) {
	var s Structure
	raw, err := json.Marshal(inputs["structure"])
	if err != nil {
		return nil, fmt.Errorf("scatter: structure: %w", err)
	}
	if err := json.Unmarshal(raw, &s); err != nil {
		return nil, fmt.Errorf("scatter: structure: %w", err)
	}
	if s.Class == "" {
		return nil, fmt.Errorf("scatter: missing structure class")
	}
	samples := 0
	if v, ok := inputs["samples"].(float64); ok {
		samples = int(v)
	}
	curve := Curve(s, q, samples)
	return core.Values{"curve": floatsToJSON(curve)}, nil
}

// curveBatchFunc is the micro-batched form of the curve computation.  The
// points of a sweep share their template values by reference (the container
// merges maps without copying the values), so consecutive points carrying
// the same q-grid slice are detected by identity and pay its []any→[]float64
// conversion once per batch instead of once per point.  Each point fails or
// succeeds on its own.
func curveBatchFunc(ctx context.Context, batch []core.Values) ([]core.Values, []error) {
	outs := make([]core.Values, len(batch))
	errs := make([]error, len(batch))
	var lastRaw []any
	var lastQ []float64
	for i, inputs := range batch {
		if err := ctx.Err(); err != nil {
			errs[i] = err
			continue
		}
		rawQ, isArr := inputs["q"].([]any)
		var q []float64
		if isArr && sameSlice(rawQ, lastRaw) {
			q = lastQ
		} else {
			var err error
			q, err = floatSlice(inputs["q"])
			if err != nil {
				errs[i] = fmt.Errorf("scatter: q grid: %w", err)
				continue
			}
			lastRaw, lastQ = rawQ, q
		}
		outs[i], errs[i] = curveCompute(inputs, q)
	}
	return outs, errs
}

// sameSlice reports whether a and b are the same []any (identical backing
// array and length), which is how shared template values reach batched
// points.
func sameSlice(a, b []any) bool {
	return len(a) == len(b) && len(a) > 0 && &a[0] == &b[0]
}

func fitFunc(_ context.Context, inputs core.Values) (core.Values, error) {
	solver, _ := inputs["solver"].(string)
	rawCurves, ok := inputs["curves"].([]any)
	if !ok {
		return nil, fmt.Errorf("scatter: missing curves")
	}
	curves := make([][]float64, len(rawCurves))
	for i, rc := range rawCurves {
		c, err := floatSlice(rc)
		if err != nil {
			return nil, fmt.Errorf("scatter: curve %d: %w", i, err)
		}
		curves[i] = c
	}
	y, err := floatSlice(inputs["observation"])
	if err != nil {
		return nil, fmt.Errorf("scatter: observation: %w", err)
	}
	iters := 0
	if v, ok := inputs["iters"].(float64); ok {
		iters = int(v)
	}
	res, err := Fit(SolverName(solver), curves, y, iters)
	if err != nil {
		return nil, err
	}
	return core.Values{
		"weights": floatsToJSON(res.Weights),
		"chi2":    res.Chi2,
	}, nil
}

func floatSlice(v any) ([]float64, error) {
	arr, ok := v.([]any)
	if !ok {
		return nil, fmt.Errorf("expected an array, got %T", v)
	}
	out := make([]float64, len(arr))
	for i, e := range arr {
		f, ok := e.(float64)
		if !ok {
			return nil, fmt.Errorf("element %d is %T, not a number", i, e)
		}
		out[i] = f
	}
	return out, nil
}

func floatsToJSON(fs []float64) []any {
	out := make([]any, len(fs))
	for i, f := range fs {
		out[i] = f
	}
	return out
}

// RegisterFuncs registers the curve and fit functions in the native
// adapter registry.
func RegisterFuncs() {
	adapter.RegisterFunc(CurveFuncName, curveFunc)
	adapter.RegisterBatchFunc(CurveFuncName, curveBatchFunc)
	adapter.RegisterFunc(FitFuncName, fitFunc)
}

// CurveServiceConfig returns a deployable curve-computation service.  The
// adapter spec defaults to the in-process native adapter; experiment
// harnesses override it to route through the grid simulator, as the
// original application did.
func CurveServiceConfig(name string) container.ServiceConfig {
	numArray := jsonschema.MustParse(`{"type":"array","items":{"type":"number"}}`)
	return container.ServiceConfig{
		Description: core.ServiceDescription{
			Name:        name,
			Title:       "X-ray scattering curve service",
			Description: "Computes the Debye scattering intensity of one carbon nanostructure on a q grid.",
			Version:     "1.0",
			Tags:        []string{"xray", "scattering", "nanostructure", "debye"},
			Batch:       true,
			Inputs: []core.Param{
				{Name: "structure", Schema: jsonschema.MustParse(`{"type":"object"}`)},
				{Name: "q", Schema: numArray},
				{Name: "samples", Optional: true,
					Schema: jsonschema.MustParse(`{"type":"integer","minimum":4}`)},
			},
			Outputs: []core.Param{{Name: "curve", Schema: numArray}},
		},
		Adapter: container.AdapterSpec{
			Kind:   "native",
			Config: []byte(fmt.Sprintf(`{"function": %q}`, CurveFuncName)),
		},
	}
}

// FitServiceConfig returns a deployable NNLS fit service.
func FitServiceConfig(name string) container.ServiceConfig {
	numArray := jsonschema.MustParse(`{"type":"array","items":{"type":"number"}}`)
	return container.ServiceConfig{
		Description: core.ServiceDescription{
			Name:        name,
			Title:       "Nanostructure distribution fit service",
			Description: "Fits non-negative structure weights to an observed scattering curve with a selectable solver.",
			Version:     "1.0",
			Tags:        []string{"xray", "optimization", "nnls", "fit"},
			Inputs: []core.Param{
				{Name: "solver", Schema: jsonschema.MustParse(
					`{"type":"string","enum":["projected-gradient","coordinate-descent","multiplicative-update"]}`)},
				{Name: "curves", Schema: jsonschema.MustParse(
					`{"type":"array","items":{"type":"array","items":{"type":"number"}}}`)},
				{Name: "observation", Schema: numArray},
				{Name: "iters", Optional: true,
					Schema: jsonschema.MustParse(`{"type":"integer","minimum":1}`)},
			},
			Outputs: []core.Param{
				{Name: "weights", Schema: numArray},
				{Name: "chi2", Schema: jsonschema.MustParse(`{"type":"number"}`)},
			},
		},
		Adapter: container.AdapterSpec{
			Kind:   "native",
			Config: []byte(fmt.Sprintf(`{"function": %q}`, FitFuncName)),
		},
	}
}
