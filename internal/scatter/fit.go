package scatter

import (
	"fmt"
	"math"
	"sort"
)

// The fitting stage: find non-negative weights w minimizing
// ‖Σ_s w_s B_s − I_obs‖².  The study ran three different optimization
// solvers on a cluster and cross-checked their answers; this file
// implements three genuinely different non-negative least-squares methods.

// SolverName identifies one of the three fit solvers.
type SolverName string

// The three solvers.
const (
	SolverProjGrad   SolverName = "projected-gradient"
	SolverCoordinate SolverName = "coordinate-descent"
	SolverMultUpdate SolverName = "multiplicative-update"
)

// Solvers lists the available fit solvers in canonical order.
func Solvers() []SolverName {
	return []SolverName{SolverProjGrad, SolverCoordinate, SolverMultUpdate}
}

// FitResult is the outcome of one NNLS fit.
type FitResult struct {
	Solver  SolverName `json:"solver"`
	Weights []float64  `json:"weights"`
	Chi2    float64    `json:"chi2"`
	Iters   int        `json:"iters"`
}

// chi2 computes ‖Bw − y‖².
func chi2(curves [][]float64, w, y []float64) float64 {
	sum := 0.0
	for qi := range y {
		r := -y[qi]
		for si := range w {
			r += w[si] * curves[si][qi]
		}
		sum += r * r
	}
	return sum
}

// gram precomputes G = BᵀB and h = Bᵀy.
func gram(curves [][]float64, y []float64) (g [][]float64, h []float64) {
	n := len(curves)
	g = make([][]float64, n)
	h = make([]float64, n)
	for i := 0; i < n; i++ {
		g[i] = make([]float64, n)
		for j := 0; j <= i; j++ {
			dot := 0.0
			for qi := range y {
				dot += curves[i][qi] * curves[j][qi]
			}
			g[i][j] = dot
			g[j][i] = dot
		}
		for qi := range y {
			h[i] += curves[i][qi] * y[qi]
		}
	}
	return g, h
}

// Fit runs the named solver.
func Fit(name SolverName, curves [][]float64, y []float64, iters int) (*FitResult, error) {
	if len(curves) == 0 || len(y) == 0 {
		return nil, fmt.Errorf("scatter: empty fit input")
	}
	for si := range curves {
		if len(curves[si]) != len(y) {
			return nil, fmt.Errorf("scatter: curve %d has %d samples, observation has %d",
				si, len(curves[si]), len(y))
		}
	}
	if iters <= 0 {
		iters = 2000
	}
	switch name {
	case SolverProjGrad:
		return fitProjGrad(curves, y, iters), nil
	case SolverCoordinate:
		return fitCoordinate(curves, y, iters), nil
	case SolverMultUpdate:
		return fitMultiplicative(curves, y, iters), nil
	default:
		return nil, fmt.Errorf("scatter: unknown solver %q", name)
	}
}

// fitProjGrad is projected gradient descent with a Lipschitz step
// 1/trace(G).
func fitProjGrad(curves [][]float64, y []float64, iters int) *FitResult {
	g, h := gram(curves, y)
	n := len(curves)
	w := make([]float64, n)
	trace := 0.0
	for i := 0; i < n; i++ {
		trace += g[i][i]
	}
	step := 1.0 / trace
	for it := 0; it < iters; it++ {
		for i := 0; i < n; i++ {
			grad := -h[i]
			for j := 0; j < n; j++ {
				grad += g[i][j] * w[j]
			}
			w[i] -= step * grad
			if w[i] < 0 {
				w[i] = 0
			}
		}
	}
	return &FitResult{Solver: SolverProjGrad, Weights: w,
		Chi2: chi2(curves, w, y), Iters: iters}
}

// fitCoordinate is exact cyclic coordinate descent: each coordinate is set
// to its unconstrained minimizer clipped at zero.
func fitCoordinate(curves [][]float64, y []float64, iters int) *FitResult {
	g, h := gram(curves, y)
	n := len(curves)
	w := make([]float64, n)
	for it := 0; it < iters; it++ {
		for i := 0; i < n; i++ {
			if g[i][i] == 0 {
				continue
			}
			num := h[i]
			for j := 0; j < n; j++ {
				if j != i {
					num -= g[i][j] * w[j]
				}
			}
			wi := num / g[i][i]
			if wi < 0 {
				wi = 0
			}
			w[i] = wi
		}
	}
	return &FitResult{Solver: SolverCoordinate, Weights: w,
		Chi2: chi2(curves, w, y), Iters: iters}
}

// fitMultiplicative is the Lee–Seung multiplicative update, which
// preserves positivity by construction.
func fitMultiplicative(curves [][]float64, y []float64, iters int) *FitResult {
	g, h := gram(curves, y)
	n := len(curves)
	w := make([]float64, n)
	for i := range w {
		w[i] = 0.1
	}
	for it := 0; it < iters; it++ {
		for i := 0; i < n; i++ {
			denom := 0.0
			for j := 0; j < n; j++ {
				denom += g[i][j] * w[j]
			}
			if denom <= 1e-300 || h[i] <= 0 {
				w[i] = 0
				continue
			}
			w[i] *= h[i] / denom
		}
	}
	return &FitResult{Solver: SolverMultUpdate, Weights: w,
		Chi2: chi2(curves, w, y), Iters: iters}
}

// ClassShare aggregates fitted weights into per-class shares summing to 1.
func ClassShare(lib []Structure, weights []float64) map[Class]float64 {
	shares := make(map[Class]float64)
	total := 0.0
	for i, s := range lib {
		shares[s.Class] += weights[i]
		total += weights[i]
	}
	if total > 0 {
		for c := range shares {
			shares[c] /= total
		}
	}
	return shares
}

// Dominant returns the class with the largest share.
func Dominant(shares map[Class]float64) (Class, float64) {
	classes := make([]Class, 0, len(shares))
	for c := range shares {
		classes = append(classes, c)
	}
	sort.Slice(classes, func(i, j int) bool { return classes[i] < classes[j] })
	var best Class
	bestV := math.Inf(-1)
	for _, c := range classes {
		if shares[c] > bestV {
			best, bestV = c, shares[c]
		}
	}
	return best, bestV
}

// BestFit runs all three solvers and returns every result plus the index
// of the lowest-χ² one — the cross-check the study performed across its
// three solvers.
func BestFit(curves [][]float64, y []float64, iters int) ([]*FitResult, int, error) {
	results := make([]*FitResult, 0, 3)
	best := -1
	for _, name := range Solvers() {
		r, err := Fit(name, curves, y, iters)
		if err != nil {
			return nil, -1, err
		}
		results = append(results, r)
		if best < 0 || r.Chi2 < results[best].Chi2 {
			best = len(results) - 1
		}
	}
	return results, best, nil
}
