package scatter

import (
	"context"
	"fmt"

	"mathcloud/internal/core"
	"mathcloud/internal/workflow"
)

// PipelineResult is the outcome of the distributed diffractometry
// pipeline.
type PipelineResult struct {
	// Fits holds the three solver results; Best indexes the lowest-χ²
	// one.
	Fits []*FitResult
	Best int
	// Shares is the per-class distribution of the best fit.
	Shares map[Class]float64
	// Dominant is the winning class (the study's headline answer:
	// toroid) and its share.
	Dominant      Class
	DominantShare float64
}

// RunPipeline executes the full X-ray interpretation pipeline through
// computational web services: scattering curves for every library
// structure are computed in parallel over the pool of curve services (the
// grid part of the original application), then the three fit solvers run
// in parallel over the fit services (the cluster part), and the best fit
// yields the class distribution.
func RunPipeline(ctx context.Context, inv workflow.Invoker,
	curveURIs []string, fitURI string,
	lib []Structure, obs *Observation, samples, iters int) (*PipelineResult, error) {

	if len(curveURIs) == 0 {
		return nil, fmt.Errorf("scatter: no curve services")
	}
	q := floatsToJSON(obs.Q)

	// Stage 1: curves, one service call per structure, all concurrent.
	type curveRes struct {
		idx   int
		curve []float64
		err   error
	}
	ch := make(chan curveRes, len(lib))
	for i, s := range lib {
		go func(i int, s Structure) {
			uri := curveURIs[i%len(curveURIs)]
			out, err := inv.Call(ctx, uri, core.Values{
				"structure": map[string]any{
					"class": string(s.Class), "label": s.Label,
					"r": s.R, "r2": s.R2,
				},
				"q":       q,
				"samples": float64(samples),
			})
			if err != nil {
				ch <- curveRes{i, nil, err}
				return
			}
			curve, err := floatSlice(out["curve"])
			ch <- curveRes{i, curve, err}
		}(i, s)
	}
	curves := make([][]float64, len(lib))
	for range lib {
		r := <-ch
		if r.err != nil {
			return nil, fmt.Errorf("scatter: curve stage: %w", r.err)
		}
		curves[r.idx] = r.curve
	}

	// Stage 2: the three solvers, concurrent over the fit service.
	curvesJSON := make([]any, len(curves))
	for i, c := range curves {
		curvesJSON[i] = floatsToJSON(c)
	}
	type fitRes struct {
		idx int
		fit *FitResult
		err error
	}
	fitCh := make(chan fitRes, len(Solvers()))
	for i, name := range Solvers() {
		go func(i int, name SolverName) {
			out, err := inv.Call(ctx, fitURI, core.Values{
				"solver":      string(name),
				"curves":      curvesJSON,
				"observation": floatsToJSON(obs.I),
				"iters":       float64(iters),
			})
			if err != nil {
				fitCh <- fitRes{i, nil, err}
				return
			}
			weights, err := floatSlice(out["weights"])
			if err != nil {
				fitCh <- fitRes{i, nil, err}
				return
			}
			chi, _ := out["chi2"].(float64)
			fitCh <- fitRes{i, &FitResult{Solver: name, Weights: weights, Chi2: chi}, nil}
		}(i, name)
	}
	fits := make([]*FitResult, len(Solvers()))
	for range Solvers() {
		r := <-fitCh
		if r.err != nil {
			return nil, fmt.Errorf("scatter: fit stage: %w", r.err)
		}
		fits[r.idx] = r.fit
	}
	best := 0
	for i, f := range fits {
		if f.Chi2 < fits[best].Chi2 {
			best = i
		}
	}
	shares := ClassShare(lib, fits[best].Weights)
	dom, share := Dominant(shares)
	return &PipelineResult{
		Fits: fits, Best: best, Shares: shares,
		Dominant: dom, DominantShare: share,
	}, nil
}
