// Package scatter implements the X-ray diffractometry application of the
// paper: interpreting scattering data from carbonaceous films by fitting a
// mixture of carbon nanostructure classes.
//
// The original study computed X-ray scattering curves for individual
// nanostructures (tubes, fullerenes/spheres, toroids, flakes) on a grid
// infrastructure and then solved optimization problems with three
// different solvers on a cluster to determine the most probable
// topological and size distribution — revealing the prevalence of
// low-aspect-ratio toroids in films deposited in tokamak T-10.  The
// measured films are not available, so this package synthesizes the
// observation from a planted toroid-dominated mixture and reproduces the
// pipeline: per-structure Debye scattering curves (independent,
// grid-parallel), non-negative least-squares fits by three distinct
// solvers (cluster-parallel), and the class-distribution verdict.
package scatter

import (
	"fmt"
	"math"
	"math/rand"
)

// Class is a nanostructure topology class.
type Class string

// Nanostructure classes considered in the study.
const (
	ClassToroid Class = "toroid"
	ClassTube   Class = "tube"
	ClassSphere Class = "sphere"
	ClassFlake  Class = "flake"
)

// Classes lists all structure classes in canonical order.
func Classes() []Class {
	return []Class{ClassToroid, ClassTube, ClassSphere, ClassFlake}
}

// Structure is one parameterized nanostructure.
type Structure struct {
	// Class is the topology class.
	Class Class `json:"class"`
	// Label names the variant, e.g. "toroid R=2.0 r=0.5".
	Label string `json:"label"`
	// R is the major radius (toroid/tube/sphere) or edge length (flake)
	// in nanometres.
	R float64 `json:"r"`
	// R2 is the minor radius (toroid) or length (tube); unused
	// otherwise.
	R2 float64 `json:"r2,omitempty"`
}

// points samples the structure as a deterministic cloud of approximately
// n carbon sites.
func (s Structure) points(n int) [][3]float64 {
	switch s.Class {
	case ClassToroid:
		return toroidPoints(s.R, s.R2, n)
	case ClassTube:
		return tubePoints(s.R, s.R2, n)
	case ClassSphere:
		return spherePoints(s.R, n)
	case ClassFlake:
		return flakePoints(s.R, n)
	default:
		return nil
	}
}

// toroidPoints samples a torus of major radius R and minor radius r on a
// regular (u, v) parameter grid.
func toroidPoints(R, r float64, n int) [][3]float64 {
	side := int(math.Sqrt(float64(n)))
	if side < 2 {
		side = 2
	}
	pts := make([][3]float64, 0, side*side)
	for i := 0; i < side; i++ {
		u := 2 * math.Pi * float64(i) / float64(side)
		for j := 0; j < side; j++ {
			v := 2 * math.Pi * float64(j) / float64(side)
			w := R + r*math.Cos(v)
			pts = append(pts, [3]float64{
				w * math.Cos(u),
				w * math.Sin(u),
				r * math.Sin(v),
			})
		}
	}
	return pts
}

// tubePoints samples a cylinder shell of radius R and length L.
func tubePoints(R, L float64, n int) [][3]float64 {
	side := int(math.Sqrt(float64(n)))
	if side < 2 {
		side = 2
	}
	pts := make([][3]float64, 0, side*side)
	for i := 0; i < side; i++ {
		u := 2 * math.Pi * float64(i) / float64(side)
		for j := 0; j < side; j++ {
			z := L * (float64(j)/float64(side-1) - 0.5)
			pts = append(pts, [3]float64{R * math.Cos(u), R * math.Sin(u), z})
		}
	}
	return pts
}

// spherePoints samples a spherical shell (fullerene-like) with a Fibonacci
// lattice.
func spherePoints(R float64, n int) [][3]float64 {
	pts := make([][3]float64, 0, n)
	golden := math.Pi * (3 - math.Sqrt(5))
	for i := 0; i < n; i++ {
		y := 1 - 2*float64(i)/float64(n-1)
		radius := math.Sqrt(1 - y*y)
		theta := golden * float64(i)
		pts = append(pts, [3]float64{
			R * radius * math.Cos(theta),
			R * y,
			R * radius * math.Sin(theta),
		})
	}
	return pts
}

// flakePoints samples a flat square graphene flake of edge L.
func flakePoints(L float64, n int) [][3]float64 {
	side := int(math.Sqrt(float64(n)))
	if side < 2 {
		side = 2
	}
	pts := make([][3]float64, 0, side*side)
	for i := 0; i < side; i++ {
		for j := 0; j < side; j++ {
			pts = append(pts, [3]float64{
				L * (float64(i)/float64(side-1) - 0.5),
				L * (float64(j)/float64(side-1) - 0.5),
				0,
			})
		}
	}
	return pts
}

// QGrid returns m scattering wave-vector moduli spanning [lo, hi] nm⁻¹
// (the paper's measurements cover q ≈ 5–70 nm⁻¹).
func QGrid(lo, hi float64, m int) []float64 {
	qs := make([]float64, m)
	for i := range qs {
		qs[i] = lo + (hi-lo)*float64(i)/float64(m-1)
	}
	return qs
}

// Curve computes the normalized Debye scattering intensity of the
// structure on the given q grid:
//
//	I(q) = (1/N²) Σ_i Σ_j sin(q·r_ij)/(q·r_ij)
//
// Pair distances are binned into a histogram first, which turns the O(N²)
// double sum per q into O(bins) — the standard trick that keeps the
// grid-parallel curve computation tractable.
func Curve(s Structure, q []float64, samples int) []float64 {
	if samples <= 0 {
		samples = 400
	}
	pts := s.points(samples)
	n := len(pts)
	if n == 0 {
		return make([]float64, len(q))
	}
	// Pair-distance histogram.
	maxD := 0.0
	dists := make([]float64, 0, n*(n-1)/2)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dx := pts[i][0] - pts[j][0]
			dy := pts[i][1] - pts[j][1]
			dz := pts[i][2] - pts[j][2]
			d := math.Sqrt(dx*dx + dy*dy + dz*dz)
			dists = append(dists, d)
			if d > maxD {
				maxD = d
			}
		}
	}
	const bins = 512
	hist := make([]float64, bins)
	var centers [bins]float64
	if maxD == 0 {
		maxD = 1
	}
	for b := 0; b < bins; b++ {
		centers[b] = maxD * (float64(b) + 0.5) / bins
	}
	for _, d := range dists {
		b := int(d / maxD * bins)
		if b >= bins {
			b = bins - 1
		}
		hist[b]++
	}
	out := make([]float64, len(q))
	norm := 1 / float64(n*n)
	for qi, qv := range q {
		sum := float64(n) // i == j terms: sinc(0) = 1
		for b := 0; b < bins; b++ {
			if hist[b] == 0 {
				continue
			}
			x := qv * centers[b]
			var sinc float64
			if x < 1e-9 {
				sinc = 1
			} else {
				sinc = math.Sin(x) / x
			}
			sum += 2 * hist[b] * sinc
		}
		out[qi] = sum * norm
	}
	return out
}

// Library returns the default structure library: several size variants per
// class, matching the study's "broad class of carbon nanostructures" with
// a few-nanometre scale.
func Library() []Structure {
	var lib []Structure
	for _, rr := range [][2]float64{{1.5, 0.4}, {2.0, 0.5}, {2.5, 0.7}} {
		lib = append(lib, Structure{Class: ClassToroid,
			Label: fmt.Sprintf("toroid R=%.1f r=%.1f", rr[0], rr[1]),
			R:     rr[0], R2: rr[1]})
	}
	for _, rl := range [][2]float64{{0.7, 3.0}, {1.0, 5.0}} {
		lib = append(lib, Structure{Class: ClassTube,
			Label: fmt.Sprintf("tube R=%.1f L=%.1f", rl[0], rl[1]),
			R:     rl[0], R2: rl[1]})
	}
	for _, r := range []float64{0.7, 1.2} {
		lib = append(lib, Structure{Class: ClassSphere,
			Label: fmt.Sprintf("sphere R=%.1f", r), R: r})
	}
	for _, l := range []float64{2.0, 4.0} {
		lib = append(lib, Structure{Class: ClassFlake,
			Label: fmt.Sprintf("flake L=%.1f", l), R: l})
	}
	return lib
}

// Observation is a synthetic measured scattering curve with its ground
// truth.
type Observation struct {
	Q []float64 `json:"q"`
	I []float64 `json:"i"`
	// TrueWeights is the planted mixture (index-aligned with the
	// library), kept for experiment reporting.
	TrueWeights []float64 `json:"trueWeights"`
}

// Synthesize builds a toroid-dominated synthetic observation from the
// library: I_obs = Σ w_s B_s(q) + background + noise, with deterministic
// seeded noise.
func Synthesize(lib []Structure, q []float64, curves [][]float64, noise float64, seed int64) *Observation {
	rng := rand.New(rand.NewSource(seed))
	weights := make([]float64, len(lib))
	for i, s := range lib {
		switch s.Class {
		case ClassToroid:
			weights[i] = 0.5 + 0.3*rng.Float64()
		case ClassTube:
			weights[i] = 0.05 + 0.05*rng.Float64()
		case ClassSphere:
			weights[i] = 0.05 + 0.05*rng.Float64()
		case ClassFlake:
			weights[i] = 0.02 + 0.03*rng.Float64()
		}
	}
	obs := &Observation{Q: q, I: make([]float64, len(q)), TrueWeights: weights}
	for qi := range q {
		v := 0.0
		for si := range lib {
			v += weights[si] * curves[si][qi]
		}
		// Small smooth amorphous background plus noise.
		v += 0.01 / (1 + q[qi]/10)
		v += noise * rng.NormFloat64() * v
		if v < 0 {
			v = 0
		}
		obs.I[qi] = v
	}
	return obs
}
