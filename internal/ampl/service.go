package ampl

import (
	"context"
	"fmt"

	"mathcloud/internal/adapter"
	"mathcloud/internal/container"
	"mathcloud/internal/core"
	"mathcloud/internal/jsonschema"
	"mathcloud/internal/simplex"
)

// This file publishes the optimization tooling as computational web
// services, covering the paper's "all basic phases of optimization
// modelling": a translator service (AMPL model+data → LP), and a solver
// service (AMPL model+data → optimal solution).  Pools of solver services
// are what the Dantzig–Wolfe dispatcher (internal/dw) fans out over.

// SolverFuncName is the native-function name of the AMPL solver service.
const SolverFuncName = "ampl.solve"

// TranslateFuncName is the native-function name of the translator service.
const TranslateFuncName = "ampl.translate"

func solveFunc(_ context.Context, inputs core.Values) (core.Values, error) {
	src, _ := inputs["model"].(string)
	if src == "" {
		return nil, fmt.Errorf("ampl: missing model text")
	}
	m, err := Parse(src)
	if err != nil {
		return nil, err
	}
	inst, err := m.Instantiate()
	if err != nil {
		return nil, err
	}
	sol, err := simplex.Solve(inst.Problem)
	if err != nil {
		return nil, err
	}
	out := core.Values{
		"status":     sol.Status.String(),
		"iterations": float64(sol.Iterations),
	}
	if sol.Status == simplex.Optimal {
		out["objective"] = sol.Objective.RatString()
		solMap := inst.SolutionMap(sol)
		jsonMap := make(map[string]any, len(solMap))
		for k, v := range solMap {
			jsonMap[k] = v
		}
		out["solution"] = jsonMap
		duals := make(map[string]any, len(inst.Cons))
		for name, row := range inst.Cons {
			duals[name] = sol.Duals[row].RatString()
		}
		out["duals"] = duals
	}
	return out, nil
}

func translateFunc(_ context.Context, inputs core.Values) (core.Values, error) {
	src, _ := inputs["model"].(string)
	if src == "" {
		return nil, fmt.Errorf("ampl: missing model text")
	}
	m, err := Parse(src)
	if err != nil {
		return nil, err
	}
	inst, err := m.Instantiate()
	if err != nil {
		return nil, err
	}
	p := inst.Problem
	rows := make([]any, p.NumCons())
	for i := range p.A {
		row := make([]any, p.NumVars())
		for j, v := range p.A[i] {
			row[j] = v.RatString()
		}
		rows[i] = map[string]any{
			"coeffs": row,
			"rel":    p.Rel[i].String(),
			"rhs":    p.B[i].RatString(),
		}
	}
	obj := make([]any, p.NumVars())
	for j, v := range p.C {
		obj[j] = v.RatString()
	}
	sense := "min"
	if p.Sense == simplex.Maximize {
		sense = "max"
	}
	vars := make([]any, len(inst.VarNames))
	for i, n := range inst.VarNames {
		vars[i] = n
	}
	return core.Values{
		"sense":       sense,
		"variables":   vars,
		"objective":   obj,
		"constraints": rows,
	}, nil
}

// RegisterFuncs registers the solver and translator functions.
func RegisterFuncs() {
	adapter.RegisterFunc(SolverFuncName, solveFunc)
	adapter.RegisterFunc(TranslateFuncName, translateFunc)
}

func modelParam() core.Param {
	return core.Param{
		Name:   "model",
		Title:  "AMPL model with data section",
		Schema: jsonschema.MustParse(`{"type": "string", "minLength": 1}`),
	}
}

// SolverServiceConfig returns the deployable configuration of an
// optimization solver service.
func SolverServiceConfig(name string) container.ServiceConfig {
	return SolverServiceConfigSlow(name, 0)
}

// SolverServiceConfigSlow is SolverServiceConfig with a simulated hardware
// slowdown factor (see adapter.NativeConfig.SimulatedSlowdown).
func SolverServiceConfigSlow(name string, slowdown float64) container.ServiceConfig {
	return container.ServiceConfig{
		Description: core.ServiceDescription{
			Name:        name,
			Title:       "LP solver service",
			Description: "Translates an AMPL model and solves the resulting linear program exactly with the two-phase rational simplex method.",
			Version:     "1.0",
			Tags:        []string{"optimization", "lp", "simplex", "ampl", "solver"},
			Inputs:      []core.Param{modelParam()},
			Outputs: []core.Param{
				{Name: "status", Schema: jsonschema.MustParse(
					`{"type":"string","enum":["optimal","infeasible","unbounded"]}`)},
				{Name: "objective", Optional: true},
				{Name: "solution", Optional: true,
					Schema: jsonschema.MustParse(`{"type":"object"}`)},
				{Name: "duals", Optional: true,
					Schema: jsonschema.MustParse(`{"type":"object"}`)},
				{Name: "iterations", Schema: jsonschema.MustParse(`{"type":"number"}`)},
			},
		},
		Adapter: container.AdapterSpec{
			Kind: "native",
			Config: []byte(fmt.Sprintf(`{"function": %q, "simulatedSlowdown": %g}`,
				SolverFuncName, slowdown)),
		},
	}
}

// TranslatorServiceConfig returns the deployable configuration of the AMPL
// translator service, which exposes the instantiated LP without solving.
func TranslatorServiceConfig(name string) container.ServiceConfig {
	return container.ServiceConfig{
		Description: core.ServiceDescription{
			Name:        name,
			Title:       "AMPL translator service",
			Description: "Instantiates an AMPL model over its data and returns the resulting linear program in matrix form.",
			Version:     "1.0",
			Tags:        []string{"optimization", "ampl", "translator", "modelling"},
			Inputs:      []core.Param{modelParam()},
			Outputs: []core.Param{
				{Name: "sense"},
				{Name: "variables"},
				{Name: "objective"},
				{Name: "constraints"},
			},
		},
		Adapter: container.AdapterSpec{
			Kind:   "native",
			Config: []byte(fmt.Sprintf(`{"function": %q}`, TranslateFuncName)),
		},
	}
}
