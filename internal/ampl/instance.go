package ampl

import (
	"fmt"
	"math/big"
	"sort"
	"strings"

	"mathcloud/internal/simplex"
)

// Instance is a model grounded over its data: a concrete linear program
// plus the naming maps that relate LP columns/rows back to the model.
type Instance struct {
	Problem *simplex.Problem
	// Vars maps instantiated variable names ("x[a]") to columns.
	Vars map[string]int
	// VarNames lists column names in order.
	VarNames []string
	// Cons maps instantiated constraint names ("Cap[r1]") to rows.
	Cons map[string]int
}

// SemanticError reports a model that is syntactically valid but cannot be
// instantiated (undeclared names, missing data, nonlinearity, ...).
type SemanticError struct {
	Message string
}

// Error implements the error interface.
func (e *SemanticError) Error() string { return "ampl: " + e.Message }

func semErrf(format string, args ...any) error {
	return &SemanticError{Message: fmt.Sprintf(format, args...)}
}

// linform is a linear form: constant + Σ coeff·var.
type linform struct {
	c      *big.Rat
	coeffs map[int]*big.Rat
}

func newLinform() *linform {
	return &linform{c: new(big.Rat), coeffs: make(map[int]*big.Rat)}
}

func (l *linform) addCoeff(col int, v *big.Rat) {
	if cur, ok := l.coeffs[col]; ok {
		cur.Add(cur, v)
		if cur.Sign() == 0 {
			delete(l.coeffs, col)
		}
		return
	}
	if v.Sign() != 0 {
		l.coeffs[col] = new(big.Rat).Set(v)
	}
}

func (l *linform) add(other *linform, sign int64) {
	s := big.NewRat(sign, 1)
	l.c.Add(l.c, new(big.Rat).Mul(other.c, s))
	for col, v := range other.coeffs {
		l.addCoeff(col, new(big.Rat).Mul(v, s))
	}
}

func (l *linform) isConst() bool { return len(l.coeffs) == 0 }

func (l *linform) scale(s *big.Rat) {
	l.c.Mul(l.c, s)
	for col, v := range l.coeffs {
		v.Mul(v, s)
		if v.Sign() == 0 {
			delete(l.coeffs, col)
		}
	}
}

// instantiator holds the grounding state.
type instantiator struct {
	m       *Model
	sets    map[string][]string
	params  map[string]*ParamDecl
	varDecl map[string]*VarDecl
	varCols map[string]int
	varList []string
	free    []bool
	lower   []*big.Rat // non-nil explicit lower bound
	upper   []*big.Rat
}

// Instantiate grounds the model over its data into a linear program.
func (m *Model) Instantiate() (*Instance, error) {
	if m.Objective == nil {
		return nil, semErrf("model has no objective")
	}
	inst := &instantiator{
		m:       m,
		sets:    make(map[string][]string),
		params:  make(map[string]*ParamDecl),
		varDecl: make(map[string]*VarDecl),
		varCols: make(map[string]int),
	}
	for _, s := range m.Sets {
		data, ok := m.SetData[s.Name]
		if !ok {
			return nil, semErrf("set %s has no data", s.Name)
		}
		if len(data) == 0 {
			return nil, semErrf("set %s is empty", s.Name)
		}
		inst.sets[s.Name] = data
	}
	for _, p := range m.Params {
		inst.params[p.Name] = p
		for _, s := range p.Indexing {
			if _, ok := inst.sets[s]; !ok {
				return nil, semErrf("param %s indexed over undeclared set %s", p.Name, s)
			}
		}
	}
	// Ground variables.
	for _, v := range m.Vars {
		inst.varDecl[v.Name] = v
		tuples, err := inst.cross(v.Indexing)
		if err != nil {
			return nil, semErrf("var %s: %v", v.Name, err)
		}
		for _, tup := range tuples {
			name := instName(v.Name, tup)
			if _, dup := inst.varCols[name]; dup {
				return nil, semErrf("duplicate variable %s", name)
			}
			col := len(inst.varList)
			inst.varCols[name] = col
			inst.varList = append(inst.varList, name)
			isFree := v.Free
			var lo, up *big.Rat
			if v.Lower != nil {
				lf, err := inst.evalExpr(v.Lower, nil)
				if err != nil {
					return nil, err
				}
				if !lf.isConst() {
					return nil, semErrf("var %s: non-constant lower bound", v.Name)
				}
				lo = lf.c
				if lo.Sign() < 0 {
					isFree = true
				}
			}
			if v.Upper != nil {
				uf, err := inst.evalExpr(v.Upper, nil)
				if err != nil {
					return nil, err
				}
				if !uf.isConst() {
					return nil, semErrf("var %s: non-constant upper bound", v.Name)
				}
				up = uf.c
			}
			inst.free = append(inst.free, isFree)
			inst.lower = append(inst.lower, lo)
			inst.upper = append(inst.upper, up)
		}
	}
	if len(inst.varList) == 0 {
		return nil, semErrf("model has no variables")
	}

	sense := simplex.Minimize
	if m.Objective.Maximize {
		sense = simplex.Maximize
	}
	lp := simplex.NewProblem(sense, len(inst.varList))
	lp.VarNames = inst.varList
	copy(lp.Free, inst.free)

	obj, err := inst.evalExpr(m.Objective.Expr, nil)
	if err != nil {
		return nil, err
	}
	for col, v := range obj.coeffs {
		lp.C[col].Set(v)
	}
	lp.ObjConst.Set(obj.c)

	out := &Instance{Problem: lp, Vars: inst.varCols, VarNames: inst.varList,
		Cons: make(map[string]int)}

	// Ground constraints.
	for _, con := range m.Constraints {
		tuples, envs, err := inst.bindings(con.Indexes)
		if err != nil {
			return nil, semErrf("constraint %s: %v", con.Name, err)
		}
		for ti, env := range envs {
			lhs, err := inst.evalExpr(con.LHS, env)
			if err != nil {
				return nil, err
			}
			rhs, err := inst.evalExpr(con.RHS, env)
			if err != nil {
				return nil, err
			}
			lhs.add(rhs, -1) // lhs-rhs REL 0
			b := new(big.Rat).Neg(lhs.c)
			row := make([]*big.Rat, len(inst.varList))
			for col, v := range lhs.coeffs {
				row[col] = v
			}
			var rel simplex.Rel
			switch con.Rel {
			case "<=":
				rel = simplex.LE
			case ">=":
				rel = simplex.GE
			default:
				rel = simplex.EQ
			}
			name := instName(con.Name, tuples[ti])
			out.Cons[name] = lp.NumCons()
			lp.ConNames = append(lp.ConNames, name)
			lp.AddConstraint(row, rel, b)
		}
	}

	// Bound rows for explicit non-default bounds.
	for col, lo := range inst.lower {
		if lo == nil || (lo.Sign() == 0 && !inst.free[col]) {
			continue
		}
		row := make([]*big.Rat, len(inst.varList))
		row[col] = big.NewRat(1, 1)
		name := fmt.Sprintf("_lb_%s", inst.varList[col])
		out.Cons[name] = lp.NumCons()
		lp.ConNames = append(lp.ConNames, name)
		lp.AddConstraint(row, simplex.GE, lo)
	}
	for col, up := range inst.upper {
		if up == nil {
			continue
		}
		row := make([]*big.Rat, len(inst.varList))
		row[col] = big.NewRat(1, 1)
		name := fmt.Sprintf("_ub_%s", inst.varList[col])
		out.Cons[name] = lp.NumCons()
		lp.ConNames = append(lp.ConNames, name)
		lp.AddConstraint(row, simplex.LE, up)
	}
	return out, nil
}

func instName(base string, tup []string) string {
	if len(tup) == 0 {
		return base
	}
	return base + "[" + strings.Join(tup, ",") + "]"
}

// cross enumerates the cross product of the named sets.
func (in *instantiator) cross(setNames []string) ([][]string, error) {
	tuples := [][]string{nil}
	for _, sn := range setNames {
		elems, ok := in.sets[sn]
		if !ok {
			return nil, fmt.Errorf("undeclared set %s", sn)
		}
		var next [][]string
		for _, t := range tuples {
			for _, e := range elems {
				nt := append(append([]string{}, t...), e)
				next = append(next, nt)
			}
		}
		tuples = next
	}
	return tuples, nil
}

// bindings enumerates index-binding environments.
func (in *instantiator) bindings(binds []IndexBinding) ([][]string, []map[string]string, error) {
	setNames := make([]string, len(binds))
	for i, b := range binds {
		setNames[i] = b.Set
	}
	tuples, err := in.cross(setNames)
	if err != nil {
		return nil, nil, err
	}
	envs := make([]map[string]string, len(tuples))
	for ti, tup := range tuples {
		env := make(map[string]string, len(binds))
		for i, b := range binds {
			env[b.Var] = tup[i]
		}
		envs[ti] = env
	}
	return tuples, envs, nil
}

// evalSubscript resolves a subscript expression to a set element.
func (in *instantiator) evalSubscript(e Expr, env map[string]string) (string, error) {
	switch x := e.(type) {
	case *StrExpr:
		return x.Value, nil
	case *NumExpr:
		return x.Value.RatString(), nil
	case *RefExpr:
		if len(x.Subs) == 0 {
			if v, ok := env[x.Name]; ok {
				return v, nil
			}
			// A bare identifier used as a literal element.
			return x.Name, nil
		}
		return "", semErrf("subscript cannot itself be subscripted")
	default:
		line, col := e.Pos()
		return "", semErrf("%d:%d: unsupported subscript expression", line, col)
	}
}

// evalExpr evaluates an expression to a linear form under the given index
// environment.
func (in *instantiator) evalExpr(e Expr, env map[string]string) (*linform, error) {
	switch x := e.(type) {
	case *NumExpr:
		l := newLinform()
		l.c.Set(x.Value)
		return l, nil
	case *StrExpr:
		return nil, semErrf("string %q in numeric context", x.Value)
	case *NegExpr:
		l, err := in.evalExpr(x.Operand, env)
		if err != nil {
			return nil, err
		}
		l.scale(big.NewRat(-1, 1))
		return l, nil
	case *BinExpr:
		left, err := in.evalExpr(x.Left, env)
		if err != nil {
			return nil, err
		}
		right, err := in.evalExpr(x.Right, env)
		if err != nil {
			return nil, err
		}
		switch x.Op {
		case "+":
			left.add(right, 1)
			return left, nil
		case "-":
			left.add(right, -1)
			return left, nil
		case "*":
			switch {
			case right.isConst():
				left.scale(right.c)
				return left, nil
			case left.isConst():
				right.scale(left.c)
				return right, nil
			default:
				line, col := x.Pos()
				return nil, semErrf("%d:%d: nonlinear product of variables", line, col)
			}
		case "/":
			if !right.isConst() {
				line, col := x.Pos()
				return nil, semErrf("%d:%d: division by a variable expression", line, col)
			}
			if right.c.Sign() == 0 {
				line, col := x.Pos()
				return nil, semErrf("%d:%d: division by zero", line, col)
			}
			left.scale(new(big.Rat).Inv(right.c))
			return left, nil
		}
		return nil, semErrf("unknown operator %q", x.Op)
	case *SumExpr:
		_, envs, err := in.bindings(x.Indexes)
		if err != nil {
			return nil, err
		}
		total := newLinform()
		for _, bindEnv := range envs {
			merged := bindEnv
			if len(env) > 0 {
				merged = make(map[string]string, len(env)+len(bindEnv))
				for k, v := range env {
					merged[k] = v
				}
				for k, v := range bindEnv {
					merged[k] = v
				}
			}
			term, err := in.evalExpr(x.Body, merged)
			if err != nil {
				return nil, err
			}
			total.add(term, 1)
		}
		return total, nil
	case *RefExpr:
		return in.evalRef(x, env)
	default:
		return nil, semErrf("unsupported expression %T", e)
	}
}

func (in *instantiator) evalRef(x *RefExpr, env map[string]string) (*linform, error) {
	// Resolve subscripts first.
	subs := make([]string, len(x.Subs))
	for i, s := range x.Subs {
		v, err := in.evalSubscript(s, env)
		if err != nil {
			return nil, err
		}
		subs[i] = v
	}
	key := strings.Join(subs, ",")

	if p, ok := in.params[x.Name]; ok {
		if len(subs) != len(p.Indexing) {
			return nil, semErrf("param %s expects %d subscripts, got %d",
				x.Name, len(p.Indexing), len(subs))
		}
		data := in.m.ParamData[x.Name]
		val, ok := data[key]
		if !ok {
			if p.Default != nil {
				val = p.Default
			} else {
				return nil, semErrf("no data for param %s[%s]", x.Name, key)
			}
		}
		l := newLinform()
		l.c.Set(val)
		return l, nil
	}
	if v, ok := in.varDecl[x.Name]; ok {
		if len(subs) != len(v.Indexing) {
			return nil, semErrf("var %s expects %d subscripts, got %d",
				x.Name, len(v.Indexing), len(subs))
		}
		col, ok := in.varCols[instName(x.Name, subs)]
		if !ok {
			return nil, semErrf("variable instance %s does not exist", instName(x.Name, subs))
		}
		l := newLinform()
		l.addCoeff(col, big.NewRat(1, 1))
		return l, nil
	}
	if _, ok := env[x.Name]; ok {
		return nil, semErrf("index variable %s used in numeric context", x.Name)
	}
	line, col := x.Pos()
	return nil, semErrf("%d:%d: undeclared identifier %q", line, col, x.Name)
}

// SolutionMap renders a simplex solution back into model terms: variable
// instance name → exact value, sorted by name.
func (inst *Instance) SolutionMap(sol *simplex.Solution) map[string]string {
	out := make(map[string]string, len(inst.VarNames))
	if sol.X == nil {
		return out
	}
	for i, name := range inst.VarNames {
		out[name] = sol.X[i].RatString()
	}
	return out
}

// SortedVarNames returns the instantiated variable names in column order.
func (inst *Instance) SortedVarNames() []string {
	names := append([]string{}, inst.VarNames...)
	sort.Strings(names)
	return names
}
