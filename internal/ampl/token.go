// Package ampl implements a subset of the AMPL mathematical-programming
// modeling language: model declarations (sets, parameters, variables,
// objective, constraints), a data section, and instantiation ("translation")
// of a model+data pair into a linear program for internal/simplex.
//
// The paper's optimization application integrates "translators of AMPL
// optimization modeling language" as computational web services and runs
// optimization algorithms written as AMPL scripts in distributed mode.
// This package is that translator.  The supported subset:
//
//	set NAME;
//	param NAME {SET, ...};            # or scalar: param NAME;
//	var NAME {SET, ...} >= 0;         # bounds: >= expr, <= expr, free
//	maximize OBJ: linear-expr;        # or minimize
//	subject to NAME {i in SET, ...}: linear-expr REL linear-expr;
//
//	data;
//	set NAME := elem elem ... ;
//	param NAME := key ... value  key ... value ... ;   # flattened tuples
//	end;
//
// Expressions support numbers, parameter references p[i,j], variable
// references x[i], index variables, + - * / ( ), and the indexed
// sum {i in SET, j in SET} expr.
package ampl

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// TokKind classifies lexical tokens.
type TokKind int

// Token kinds.
const (
	TokEOF TokKind = iota
	TokNumber
	TokIdent
	TokString
	TokSym // punctuation and operators
)

// Token is one lexical token with position info.
type Token struct {
	Kind TokKind
	Text string
	Num  float64
	Line int
	Col  int
}

func (t Token) String() string {
	if t.Kind == TokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.Text)
}

// SyntaxError reports a lexical or parse error.
type SyntaxError struct {
	Line, Col int
	Message   string
}

// Error implements the error interface.
func (e *SyntaxError) Error() string {
	return fmt.Sprintf("ampl: %d:%d: %s", e.Line, e.Col, e.Message)
}

// multi-character symbols, longest first.
var amplSymbols = []string{
	":=", "<=", ">=", "==", "!=",
	"{", "}", "[", "]", "(", ")", ",", ";", ":", "+", "-", "*", "/", "=", "<", ">",
}

// Lex tokenizes AMPL source.  '#' starts a line comment.
func Lex(src string) ([]Token, error) {
	var toks []Token
	line, col := 1, 1
	i := 0
	adv := func(n int) {
		for k := 0; k < n; k++ {
			if src[i] == '\n' {
				line++
				col = 1
			} else {
				col++
			}
			i++
		}
	}
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			adv(1)
		case c == '#':
			for i < len(src) && src[i] != '\n' {
				adv(1)
			}
		case c >= '0' && c <= '9' || (c == '.' && i+1 < len(src) && src[i+1] >= '0' && src[i+1] <= '9'):
			startLine, startCol := line, col
			start := i
			for i < len(src) && (src[i] >= '0' && src[i] <= '9' || src[i] == '.' ||
				src[i] == 'e' || src[i] == 'E' ||
				((src[i] == '+' || src[i] == '-') && i > start && (src[i-1] == 'e' || src[i-1] == 'E'))) {
				adv(1)
			}
			text := src[start:i]
			f, err := strconv.ParseFloat(text, 64)
			if err != nil {
				return nil, &SyntaxError{startLine, startCol, fmt.Sprintf("invalid number %q", text)}
			}
			toks = append(toks, Token{TokNumber, text, f, startLine, startCol})
		case unicode.IsLetter(rune(c)) || c == '_':
			startLine, startCol := line, col
			start := i
			for i < len(src) && (unicode.IsLetter(rune(src[i])) || unicode.IsDigit(rune(src[i])) || src[i] == '_' || src[i] == '.') {
				adv(1)
			}
			text := src[start:i]
			// "subject to" and "s.t." are handled in the parser.
			toks = append(toks, Token{TokIdent, text, 0, startLine, startCol})
		case c == '"' || c == '\'':
			startLine, startCol := line, col
			quote := c
			adv(1)
			start := i
			for i < len(src) && src[i] != quote {
				adv(1)
			}
			if i >= len(src) {
				return nil, &SyntaxError{startLine, startCol, "unterminated string"}
			}
			text := src[start:i]
			adv(1)
			toks = append(toks, Token{TokString, text, 0, startLine, startCol})
		default:
			matched := false
			for _, sym := range amplSymbols {
				if strings.HasPrefix(src[i:], sym) {
					toks = append(toks, Token{TokSym, sym, 0, line, col})
					adv(len(sym))
					matched = true
					break
				}
			}
			if !matched {
				return nil, &SyntaxError{line, col, fmt.Sprintf("unexpected character %q", string(c))}
			}
		}
	}
	toks = append(toks, Token{Kind: TokEOF, Line: line, Col: col})
	return toks, nil
}
