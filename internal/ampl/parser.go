package ampl

import (
	"fmt"
	"math/big"
)

// Parser for the AMPL subset.

type parser struct {
	toks []Token
	pos  int
}

// Parse parses model text (optionally followed by a `data;` section) into
// a Model.
func Parse(src string) (*Model, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	m := &Model{
		SetData:   make(map[string][]string),
		ParamData: make(map[string]map[string]*big.Rat),
	}
	for {
		t := p.peek()
		if t.Kind == TokEOF {
			break
		}
		if t.Kind != TokIdent {
			return nil, p.errf(t, "expected a declaration, got %s", t)
		}
		switch t.Text {
		case "set":
			if err := p.parseSet(m); err != nil {
				return nil, err
			}
		case "param":
			if err := p.parseParam(m); err != nil {
				return nil, err
			}
		case "var":
			if err := p.parseVar(m); err != nil {
				return nil, err
			}
		case "maximize", "minimize":
			if err := p.parseObjective(m); err != nil {
				return nil, err
			}
		case "subject", "s.t.":
			if err := p.parseConstraint(m); err != nil {
				return nil, err
			}
		case "data":
			p.next()
			if err := p.expectSym(";"); err != nil {
				return nil, err
			}
			if err := p.parseData(m); err != nil {
				return nil, err
			}
		case "end":
			p.next()
			_ = p.acceptSym(";")
			return m, nil
		default:
			return nil, p.errf(t, "unknown declaration %q", t.Text)
		}
	}
	return m, nil
}

func (p *parser) peek() Token { return p.toks[p.pos] }

func (p *parser) next() Token {
	t := p.toks[p.pos]
	if t.Kind != TokEOF {
		p.pos++
	}
	return t
}

func (p *parser) errf(t Token, format string, args ...any) error {
	return &SyntaxError{Line: t.Line, Col: t.Col, Message: fmt.Sprintf(format, args...)}
}

func (p *parser) atSym(s string) bool {
	t := p.peek()
	return t.Kind == TokSym && t.Text == s
}

func (p *parser) acceptSym(s string) bool {
	if p.atSym(s) {
		p.next()
		return true
	}
	return false
}

func (p *parser) expectSym(s string) error {
	t := p.next()
	if t.Kind != TokSym || t.Text != s {
		return p.errf(t, "expected %q, got %s", s, t)
	}
	return nil
}

func (p *parser) expectIdent() (Token, error) {
	t := p.next()
	if t.Kind != TokIdent {
		return t, p.errf(t, "expected an identifier, got %s", t)
	}
	return t, nil
}

// parseIndexingSets parses `{S1, S2}` (set names only) if present.
func (p *parser) parseIndexingSets() ([]string, error) {
	if !p.acceptSym("{") {
		return nil, nil
	}
	var sets []string
	for {
		t, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		sets = append(sets, t.Text)
		if p.acceptSym(",") {
			continue
		}
		break
	}
	if err := p.expectSym("}"); err != nil {
		return nil, err
	}
	return sets, nil
}

// parseIndexBindings parses `{i in S, j in T}` if present.
func (p *parser) parseIndexBindings() ([]IndexBinding, error) {
	if !p.acceptSym("{") {
		return nil, nil
	}
	var binds []IndexBinding
	for {
		v, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		in, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if in.Text != "in" {
			return nil, p.errf(in, "expected 'in', got %s", in)
		}
		s, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		binds = append(binds, IndexBinding{Var: v.Text, Set: s.Text})
		if p.acceptSym(",") {
			continue
		}
		break
	}
	if err := p.expectSym("}"); err != nil {
		return nil, err
	}
	return binds, nil
}

func (p *parser) parseSet(m *Model) error {
	p.next() // 'set'
	name, err := p.expectIdent()
	if err != nil {
		return err
	}
	m.Sets = append(m.Sets, &SetDecl{Name: name.Text})
	return p.expectSym(";")
}

func (p *parser) parseParam(m *Model) error {
	p.next() // 'param'
	name, err := p.expectIdent()
	if err != nil {
		return err
	}
	decl := &ParamDecl{Name: name.Text}
	decl.Indexing, err = p.parseIndexingSets()
	if err != nil {
		return err
	}
	// Optional `default <number>`.
	if t := p.peek(); t.Kind == TokIdent && t.Text == "default" {
		p.next()
		nt := p.next()
		neg := false
		if nt.Kind == TokSym && nt.Text == "-" {
			neg = true
			nt = p.next()
		}
		if nt.Kind != TokNumber {
			return p.errf(nt, "expected a default value, got %s", nt)
		}
		decl.Default = floatRat(nt)
		if neg {
			decl.Default.Neg(decl.Default)
		}
	}
	m.Params = append(m.Params, decl)
	return p.expectSym(";")
}

func (p *parser) parseVar(m *Model) error {
	p.next() // 'var'
	name, err := p.expectIdent()
	if err != nil {
		return err
	}
	decl := &VarDecl{Name: name.Text}
	decl.Indexing, err = p.parseIndexingSets()
	if err != nil {
		return err
	}
	for {
		t := p.peek()
		switch {
		case t.Kind == TokSym && t.Text == ">=":
			p.next()
			decl.Lower, err = p.parseExpr()
			if err != nil {
				return err
			}
		case t.Kind == TokSym && t.Text == "<=":
			p.next()
			decl.Upper, err = p.parseExpr()
			if err != nil {
				return err
			}
		case t.Kind == TokIdent && t.Text == "free":
			p.next()
			decl.Free = true
		default:
			m.Vars = append(m.Vars, decl)
			return p.expectSym(";")
		}
	}
}

func (p *parser) parseObjective(m *Model) error {
	kw := p.next() // maximize | minimize
	if m.Objective != nil {
		return p.errf(kw, "multiple objectives")
	}
	name, err := p.expectIdent()
	if err != nil {
		return err
	}
	if err := p.expectSym(":"); err != nil {
		return err
	}
	expr, err := p.parseExpr()
	if err != nil {
		return err
	}
	m.Objective = &Objective{
		Name:     name.Text,
		Maximize: kw.Text == "maximize",
		Expr:     expr,
	}
	return p.expectSym(";")
}

func (p *parser) parseConstraint(m *Model) error {
	kw := p.next() // 'subject' or 's.t.'
	if kw.Text == "subject" {
		to, err := p.expectIdent()
		if err != nil {
			return err
		}
		if to.Text != "to" {
			return p.errf(to, "expected 'to' after 'subject', got %s", to)
		}
	}
	name, err := p.expectIdent()
	if err != nil {
		return err
	}
	decl := &ConstraintDecl{Name: name.Text}
	decl.Indexes, err = p.parseIndexBindings()
	if err != nil {
		return err
	}
	if err := p.expectSym(":"); err != nil {
		return err
	}
	decl.LHS, err = p.parseExpr()
	if err != nil {
		return err
	}
	rel := p.next()
	if rel.Kind != TokSym || (rel.Text != "<=" && rel.Text != ">=" && rel.Text != "=" && rel.Text != "==") {
		return p.errf(rel, "expected a relation, got %s", rel)
	}
	decl.Rel = rel.Text
	if decl.Rel == "==" {
		decl.Rel = "="
	}
	decl.RHS, err = p.parseExpr()
	if err != nil {
		return err
	}
	m.Constraints = append(m.Constraints, decl)
	return p.expectSym(";")
}

// ---- expressions ----

func (p *parser) parseExpr() (Expr, error) { return p.parseAdd() }

func (p *parser) parseAdd() (Expr, error) {
	left, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for p.atSym("+") || p.atSym("-") {
		op := p.next()
		right, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		left = &BinExpr{exprBase{op.Line, op.Col}, op.Text, left, right}
	}
	return left, nil
}

func (p *parser) parseMul() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.atSym("*") || p.atSym("/") {
		op := p.next()
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = &BinExpr{exprBase{op.Line, op.Col}, op.Text, left, right}
	}
	return left, nil
}

func (p *parser) parseUnary() (Expr, error) {
	if p.atSym("-") {
		t := p.next()
		operand, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &NegExpr{exprBase{t.Line, t.Col}, operand}, nil
	}
	return p.parsePrimary()
}

func floatRat(t Token) *big.Rat {
	// Numbers lex as float64 but most model data is small integers or
	// decimals; big.Rat.SetString on the literal text keeps exactness.
	if r, ok := new(big.Rat).SetString(t.Text); ok {
		return r
	}
	return new(big.Rat).SetFloat64(t.Num)
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.next()
	base := exprBase{t.Line, t.Col}
	switch {
	case t.Kind == TokNumber:
		return &NumExpr{base, floatRat(t)}, nil
	case t.Kind == TokString:
		return &StrExpr{base, t.Text}, nil
	case t.Kind == TokIdent && t.Text == "sum":
		binds, err := p.parseIndexBindings()
		if err != nil {
			return nil, err
		}
		if binds == nil {
			return nil, p.errf(t, "sum requires an indexing expression")
		}
		body, err := p.parseMul() // sum binds tighter than +/-
		if err != nil {
			return nil, err
		}
		return &SumExpr{base, binds, body}, nil
	case t.Kind == TokIdent:
		ref := &RefExpr{exprBase: base, Name: t.Text}
		if p.acceptSym("[") {
			for {
				sub, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				ref.Subs = append(ref.Subs, sub)
				if p.acceptSym(",") {
					continue
				}
				break
			}
			if err := p.expectSym("]"); err != nil {
				return nil, err
			}
		}
		return ref, nil
	case t.Kind == TokSym && t.Text == "(":
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectSym(")"); err != nil {
			return nil, err
		}
		return e, nil
	default:
		return nil, p.errf(t, "unexpected %s in expression", t)
	}
}

// ---- data section ----

func (p *parser) parseData(m *Model) error {
	for {
		t := p.peek()
		if t.Kind == TokEOF {
			return nil
		}
		if t.Kind != TokIdent {
			return p.errf(t, "expected a data statement, got %s", t)
		}
		switch t.Text {
		case "set":
			p.next()
			name, err := p.expectIdent()
			if err != nil {
				return err
			}
			if err := p.expectSym(":="); err != nil {
				return err
			}
			var elems []string
			for {
				et := p.peek()
				if et.Kind == TokSym && et.Text == ";" {
					p.next()
					break
				}
				et = p.next()
				if et.Kind != TokIdent && et.Kind != TokString && et.Kind != TokNumber {
					return p.errf(et, "expected a set element, got %s", et)
				}
				elems = append(elems, et.Text)
			}
			m.SetData[name.Text] = elems
		case "param":
			p.next()
			name, err := p.expectIdent()
			if err != nil {
				return err
			}
			if err := p.expectSym(":="); err != nil {
				return err
			}
			arity := p.paramArity(m, name.Text)
			values := make(map[string]*big.Rat)
			for {
				et := p.peek()
				if et.Kind == TokSym && et.Text == ";" {
					p.next()
					break
				}
				key := ""
				for k := 0; k < arity; k++ {
					kt := p.next()
					if kt.Kind != TokIdent && kt.Kind != TokString && kt.Kind != TokNumber {
						return p.errf(kt, "expected a subscript, got %s", kt)
					}
					if k > 0 {
						key += ","
					}
					key += kt.Text
				}
				v, err := p.parseDataValue()
				if err != nil {
					return err
				}
				values[key] = v
			}
			m.ParamData[name.Text] = values
		case "end":
			p.next()
			_ = p.acceptSym(";")
			return nil
		default:
			return p.errf(t, "unknown data statement %q", t.Text)
		}
	}
}

// parseDataValue parses a numeric data value: an optionally negated
// number, or an exact fraction "p/q" (which arises when rational dual
// prices are shipped in generated models).
func (p *parser) parseDataValue() (*big.Rat, error) {
	vt := p.next()
	neg := false
	if vt.Kind == TokSym && vt.Text == "-" {
		neg = true
		vt = p.next()
	}
	if vt.Kind != TokNumber {
		return nil, p.errf(vt, "expected a numeric value, got %s", vt)
	}
	v := floatRat(vt)
	if p.atSym("/") {
		p.next()
		dt := p.next()
		if dt.Kind != TokNumber {
			return nil, p.errf(dt, "expected a denominator, got %s", dt)
		}
		den := floatRat(dt)
		if den.Sign() == 0 {
			return nil, p.errf(dt, "zero denominator in data value")
		}
		v.Quo(v, den)
	}
	if neg {
		v.Neg(v)
	}
	return v, nil
}

// paramArity returns the number of subscripts of a declared parameter.
func (p *parser) paramArity(m *Model, name string) int {
	for _, d := range m.Params {
		if d.Name == name {
			return len(d.Indexing)
		}
	}
	return 0
}
