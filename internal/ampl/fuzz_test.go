package ampl

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// TestPropertyParserNeverPanics: random declaration soup must parse or be
// rejected with a SyntaxError, never panic.
func TestPropertyParserNeverPanics(t *testing.T) {
	fragments := []string{
		"set", "param", "var", "maximize", "minimize", "subject", "to",
		"s.t.", "data", "end", "sum", "in", "free", "default",
		"S", "x", "c", "Z", "i", "1", "2.5", "-",
		"{", "}", "[", "]", "(", ")", ",", ";", ":", ":=",
		"<=", ">=", "=", "+", "*", "/", `"a"`,
	}
	prop := func(seed int64) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				t.Logf("parser panicked: %v", r)
				ok = false
			}
		}()
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(40)
		parts := make([]string, n)
		for i := range parts {
			parts[i] = fragments[rng.Intn(len(fragments))]
		}
		m, err := Parse(strings.Join(parts, " "))
		if err != nil {
			return true
		}
		// Instantiation must not panic either (errors are fine).
		_, _ = m.Instantiate()
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestPropertyLexerNeverPanics feeds random bytes to the lexer.
func TestPropertyLexerNeverPanics(t *testing.T) {
	prop := func(data []byte) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				ok = false
			}
		}()
		_, _ = Lex(string(data))
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
