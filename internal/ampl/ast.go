package ampl

import "math/big"

// Model is a parsed AMPL model plus its data section.
type Model struct {
	Sets        []*SetDecl
	Params      []*ParamDecl
	Vars        []*VarDecl
	Objective   *Objective
	Constraints []*ConstraintDecl

	// Data bindings from the data section (or attached programmatically).
	SetData   map[string][]string
	ParamData map[string]map[string]*big.Rat // key: joined tuple "a,b"
}

// SetDecl declares `set NAME;`.
type SetDecl struct {
	Name string
}

// ParamDecl declares `param NAME {S1, S2};` (Indexing empty for scalars).
type ParamDecl struct {
	Name     string
	Indexing []string // index set names
	Default  *big.Rat // optional `default` value
}

// VarDecl declares `var NAME {S1, ...} >= lo <= hi;`.
type VarDecl struct {
	Name     string
	Indexing []string
	// Lower/Upper are optional bound expressions (usually constants).
	Lower Expr
	Upper Expr
	Free  bool
}

// Objective is `maximize NAME: expr;`.
type Objective struct {
	Name     string
	Maximize bool
	Expr     Expr
}

// ConstraintDecl is `subject to NAME {i in S, ...}: lhs REL rhs;`.
type ConstraintDecl struct {
	Name    string
	Indexes []IndexBinding
	LHS     Expr
	Rel     string // "<=", ">=", "="
	RHS     Expr
}

// IndexBinding is `i in SET`.
type IndexBinding struct {
	Var string
	Set string
}

// Expr is an AMPL expression AST node.
type Expr interface {
	exprNode()
	Pos() (line, col int)
}

type exprBase struct{ line, col int }

func (e exprBase) exprNode()       {}
func (e exprBase) Pos() (int, int) { return e.line, e.col }

// NumExpr is a numeric literal (stored exactly).
type NumExpr struct {
	exprBase
	Value *big.Rat
}

// RefExpr references a parameter, variable or index variable, optionally
// subscripted: name[i,j].
type RefExpr struct {
	exprBase
	Name string
	Subs []Expr // subscripts; index expressions evaluate to set elements
}

// BinExpr is a binary arithmetic expression.
type BinExpr struct {
	exprBase
	Op          string // + - * /
	Left, Right Expr
}

// NegExpr is unary minus.
type NegExpr struct {
	exprBase
	Operand Expr
}

// SumExpr is `sum {i in S, j in T} body`.
type SumExpr struct {
	exprBase
	Indexes []IndexBinding
	Body    Expr
}

// StrExpr is a quoted set element used as a subscript.
type StrExpr struct {
	exprBase
	Value string
}
