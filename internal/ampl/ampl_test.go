package ampl

import (
	"math/big"
	"strings"
	"testing"

	"mathcloud/internal/simplex"
)

const productionModel = `
# A classic product-mix model.
set PRODUCTS;
set RESOURCES;

param profit {PRODUCTS};
param avail {RESOURCES};
param use {RESOURCES, PRODUCTS};

var x {PRODUCTS} >= 0;

maximize TotalProfit: sum {p in PRODUCTS} profit[p] * x[p];

subject to Capacity {r in RESOURCES}:
    sum {p in PRODUCTS} use[r,p] * x[p] <= avail[r];

data;
set PRODUCTS := doors windows;
set RESOURCES := plant1 plant2 plant3;
param profit := doors 3 windows 5;
param avail := plant1 4 plant2 12 plant3 18;
param use :=
    plant1 doors 1  plant1 windows 0
    plant2 doors 0  plant2 windows 2
    plant3 doors 3  plant3 windows 2;
end;
`

func TestProductionModelEndToEnd(t *testing.T) {
	m, err := Parse(productionModel)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	inst, err := m.Instantiate()
	if err != nil {
		t.Fatalf("Instantiate: %v", err)
	}
	if inst.Problem.NumVars() != 2 || inst.Problem.NumCons() != 3 {
		t.Fatalf("LP shape %dx%d, want 2 vars 3 cons",
			inst.Problem.NumVars(), inst.Problem.NumCons())
	}
	sol, err := simplex.Solve(inst.Problem)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != simplex.Optimal {
		t.Fatalf("status = %s", sol.Status)
	}
	if sol.Objective.Cmp(big.NewRat(36, 1)) != 0 {
		t.Errorf("objective = %s, want 36", sol.Objective.RatString())
	}
	vals := inst.SolutionMap(sol)
	if vals["x[doors]"] != "2" || vals["x[windows]"] != "6" {
		t.Errorf("solution = %v, want doors 2 windows 6", vals)
	}
}

func TestDietStyleMinimization(t *testing.T) {
	src := `
set FOODS;
param cost {FOODS};
param protein {FOODS};
param need;
var buy {FOODS} >= 0;
minimize TotalCost: sum {f in FOODS} cost[f] * buy[f];
subject to Protein: sum {f in FOODS} protein[f] * buy[f] >= need;
data;
set FOODS := beans rice;
param cost := beans 2 rice 1;
param protein := beans 3 rice 1;
param need := 6;
end;
`
	m, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := m.Instantiate()
	if err != nil {
		t.Fatal(err)
	}
	sol, err := simplex.Solve(inst.Problem)
	if err != nil {
		t.Fatal(err)
	}
	// beans dominate: 6/3 = 2 units at cost 2 → 4.
	if sol.Objective.Cmp(big.NewRat(4, 1)) != 0 {
		t.Errorf("objective = %s, want 4", sol.Objective.RatString())
	}
}

func TestScalarParamsAndConstants(t *testing.T) {
	src := `
param a;
var x >= 0;
maximize Z: a * x + 10;
subject to Cap: 2 * x <= a + 4;
data;
param a := 6;
end;
`
	m, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := m.Instantiate()
	if err != nil {
		t.Fatal(err)
	}
	sol, err := simplex.Solve(inst.Problem)
	if err != nil {
		t.Fatal(err)
	}
	// x = 5, objective 6*5 + 10 = 40.
	if sol.Objective.Cmp(big.NewRat(40, 1)) != 0 {
		t.Errorf("objective = %s, want 40", sol.Objective.RatString())
	}
}

func TestVariableBoundsAndFree(t *testing.T) {
	src := `
var x >= 1 <= 3;
var y free;
minimize Z: x + y;
subject to YBound: y >= -2;
`
	m, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := m.Instantiate()
	if err != nil {
		t.Fatal(err)
	}
	sol, err := simplex.Solve(inst.Problem)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != simplex.Optimal {
		t.Fatalf("status = %s", sol.Status)
	}
	// x = 1, y = -2.
	if sol.Objective.Cmp(big.NewRat(-1, 1)) != 0 {
		t.Errorf("objective = %s, want -1", sol.Objective.RatString())
	}
}

func TestDefaultParamValue(t *testing.T) {
	src := `
set S;
param w {S} default 7;
var x {S} >= 0;
maximize Z: sum {i in S} w[i] * x[i];
subject to Cap {i in S}: x[i] <= 1;
data;
set S := a b;
param w := a 3;
end;
`
	m, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := m.Instantiate()
	if err != nil {
		t.Fatal(err)
	}
	sol, err := simplex.Solve(inst.Problem)
	if err != nil {
		t.Fatal(err)
	}
	// 3*1 + 7*1 = 10.
	if sol.Objective.Cmp(big.NewRat(10, 1)) != 0 {
		t.Errorf("objective = %s, want 10", sol.Objective.RatString())
	}
}

func TestNestedSums(t *testing.T) {
	src := `
set I;
set J;
param c {I, J};
var x {I} >= 0;
minimize Z: sum {i in I} sum {j in J} c[i,j] * x[i];
subject to L {i in I}: x[i] >= 1;
data;
set I := i1 i2;
set J := j1 j2;
param c := i1 j1 1  i1 j2 2  i2 j1 3  i2 j2 4;
end;
`
	m, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := m.Instantiate()
	if err != nil {
		t.Fatal(err)
	}
	sol, err := simplex.Solve(inst.Problem)
	if err != nil {
		t.Fatal(err)
	}
	// (1+2)*1 + (3+4)*1 = 10.
	if sol.Objective.Cmp(big.NewRat(10, 1)) != 0 {
		t.Errorf("objective = %s, want 10", sol.Objective.RatString())
	}
}

func TestSemanticErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"no objective", `var x >= 0;`, "no objective"},
		{"missing set data", `set S; var x {S} >= 0; maximize Z: 1;`, "no data"},
		{"undeclared identifier", `var x >= 0; maximize Z: y;`, "undeclared identifier"},
		{"nonlinear", `var x >= 0; var y >= 0; maximize Z: x * y;`, "nonlinear"},
		{"missing param data", `
set S;
param c {S};
var x {S} >= 0;
maximize Z: sum {i in S} c[i]*x[i];
data;
set S := a;
end;`, "no data for param"},
		{"division by zero", `var x >= 0; maximize Z: x / 0;`, "division by zero"},
		{"bad subscript count", `
set S;
var x {S} >= 0;
maximize Z: x["a","b"];
data;
set S := a;
end;`, "expects 1 subscripts"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m, err := Parse(tc.src)
			if err == nil {
				_, err = m.Instantiate()
			}
			if err == nil {
				t.Fatal("instantiation succeeded, want error")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

func TestSyntaxErrors(t *testing.T) {
	cases := []string{
		`set ;`,
		`param := 1;`,
		`var x >= ;`,
		`maximize Z x;`,
		`subject to C: x <= ;`,
		`maximize Z: (1 + 2;`,
		`maximize Z: 1; maximize W: 2;`,
		`@`,
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want syntax error", src)
		}
	}
}

func TestSubjectToVariants(t *testing.T) {
	for _, kw := range []string{"subject to", "s.t."} {
		src := `var x >= 0; maximize Z: x; ` + kw + ` C: x <= 5;`
		m, err := Parse(src)
		if err != nil {
			t.Fatalf("%s: %v", kw, err)
		}
		inst, err := m.Instantiate()
		if err != nil {
			t.Fatal(err)
		}
		sol, err := simplex.Solve(inst.Problem)
		if err != nil {
			t.Fatal(err)
		}
		if sol.Objective.Cmp(big.NewRat(5, 1)) != 0 {
			t.Errorf("%s: objective = %s, want 5", kw, sol.Objective.RatString())
		}
	}
}
