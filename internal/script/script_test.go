package script

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func run(t *testing.T, src string, in map[string]any) map[string]any {
	t.Helper()
	prog, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	out, _, err := prog.Run(in)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return out
}

func TestArithmeticAndPrecedence(t *testing.T) {
	cases := []struct {
		src  string
		want any
	}{
		{"out.v = 1 + 2 * 3", 7.0},
		{"out.v = (1 + 2) * 3", 9.0},
		{"out.v = 10 % 3", 1.0},
		{"out.v = -2 * 3", -6.0},
		{"out.v = 7 / 2", 3.5},
		{"out.v = 1 < 2 && 3 >= 3", true},
		{"out.v = !false || false", true},
		{"out.v = \"a\" + \"b\" + 1", "ab1"},
		{"out.v = [1,2] + [3]", []any{1.0, 2.0, 3.0}},
		{"out.v = 1 == 1.0", true},
		{"out.v = \"x\" != \"y\"", true},
	}
	for _, tc := range cases {
		out := run(t, tc.src, nil)
		got := out["v"]
		switch want := tc.want.(type) {
		case []any:
			arr, ok := got.([]any)
			if !ok || len(arr) != len(want) {
				t.Errorf("%s = %v, want %v", tc.src, got, want)
				continue
			}
			for i := range want {
				if arr[i] != want[i] {
					t.Errorf("%s = %v, want %v", tc.src, got, want)
				}
			}
		default:
			if got != tc.want {
				t.Errorf("%s = %v (%T), want %v", tc.src, got, got, tc.want)
			}
		}
	}
}

func TestControlFlow(t *testing.T) {
	src := `
		total = 0
		for x in in.values {
			if x % 2 == 0 { continue }
			if x > 100 { break }
			total = total + x
		}
		i = 0
		while i < 3 { i = i + 1 }
		out.total = total
		out.i = i
	`
	out := run(t, src, map[string]any{"values": []any{1.0, 2.0, 3.0, 201.0, 5.0}})
	if out["total"] != 4.0 {
		t.Errorf("total = %v, want 4 (1+3, breaking at 201)", out["total"])
	}
	if out["i"] != 3.0 {
		t.Errorf("i = %v, want 3", out["i"])
	}
}

func TestForOverMapAndString(t *testing.T) {
	src := `
		keysSeen = []
		for k, v in in.obj { keysSeen = push(keysSeen, k + "=" + v) }
		chars = 0
		for c in "héllo" { chars = chars + 1 }
		out.pairs = keysSeen
		out.chars = chars
	`
	out := run(t, src, map[string]any{"obj": map[string]any{"b": 2.0, "a": 1.0}})
	pairs, _ := out["pairs"].([]any)
	// Map iteration is sorted for determinism.
	if len(pairs) != 2 || pairs[0] != "a=1" || pairs[1] != "b=2" {
		t.Errorf("pairs = %v", pairs)
	}
	if out["chars"] != 5.0 {
		t.Errorf("chars = %v, want 5 (runes, not bytes)", out["chars"])
	}
}

func TestObjectsAndIndexing(t *testing.T) {
	src := `
		rec = {name: "ada", "full name": "ada lovelace", tags: [1, 2, 3]}
		rec.age = 36
		rec.tags[0] = 10
		out.name = rec.name
		out.full = rec["full name"]
		out.age = rec.age
		out.first = rec.tags[0]
	`
	out := run(t, src, nil)
	if out["name"] != "ada" || out["full"] != "ada lovelace" ||
		out["age"] != 36.0 || out["first"] != 10.0 {
		t.Errorf("out = %v", out)
	}
}

func TestReturnValue(t *testing.T) {
	prog, err := Parse(`
		if in.x > 0 { return "positive" }
		return "non-positive"
	`)
	if err != nil {
		t.Fatal(err)
	}
	_, ret, err := prog.Run(map[string]any{"x": 5.0})
	if err != nil || ret != "positive" {
		t.Errorf("ret = %v, err = %v", ret, err)
	}
	_, ret, err = prog.Run(map[string]any{"x": -5.0})
	if err != nil || ret != "non-positive" {
		t.Errorf("ret = %v, err = %v", ret, err)
	}
}

func TestBuiltins(t *testing.T) {
	cases := []struct {
		src  string
		want any
	}{
		{`out.v = len("abc")`, 3.0},
		{`out.v = len([1,2])`, 2.0},
		{`out.v = join(split("a,b,c", ","), "-")`, "a-b-c"},
		{`out.v = trim("  x  ")`, "x"},
		{`out.v = contains([1,2,3], 2)`, true},
		{`out.v = contains("hello", "ell")`, true},
		{`out.v = min(3, 1, 2)`, 1.0},
		{`out.v = max([3, 1, 2])`, 3.0},
		{`out.v = sum(range(5))`, 10.0},
		{`out.v = floor(2.7) + ceil(2.2) + round(2.5)`, 2.0 + 3.0 + 3.0},
		{`out.v = abs(-4)`, 4.0},
		{`out.v = sqrt(9)`, 3.0},
		{`out.v = str(42)`, "42"},
		{`out.v = num("3.5")`, 3.5},
		{`out.v = type([])`, "array"},
		{`out.v = format("%s-%v", "x", 7)`, "x-7"},
		{`out.v = toJSON({a: 1})`, `{"a":1}`},
		{`out.v = parseJSON("[1,2]")[1]`, 2.0},
		{`out.v = has({a: 1}, "a")`, true},
		{`out.v = keys({b: 1, a: 2})[0]`, "a"},
		{`out.v = sort([3,1,2])[0]`, 1.0},
		{`out.v = slice([1,2,3,4], 1, 3)[0]`, 2.0},
		{`out.v = push([1], 2, 3)[2]`, 3.0},
	}
	for _, tc := range cases {
		out := run(t, tc.src, nil)
		if out["v"] != tc.want {
			t.Errorf("%s = %v (%T), want %v", tc.src, out["v"], out["v"], tc.want)
		}
	}
}

func TestStepLimitStopsInfiniteLoop(t *testing.T) {
	prog, err := Parse(`while true { x = 1 }`)
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = prog.RunLimited(nil, 10000)
	if err == nil || !strings.Contains(err.Error(), "step limit") {
		t.Errorf("err = %v, want step limit", err)
	}
}

func TestInputsAreImmutable(t *testing.T) {
	inputs := map[string]any{"arr": []any{1.0}}
	run(t, `x = in.arr; x[0] = 99; out.done = true`, inputs)
	if inputs["arr"].([]any)[0] != 1.0 {
		t.Error("script mutated caller's inputs")
	}
	prog, err := Parse(`in = 5`)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := prog.Run(nil); err == nil {
		t.Error("overwriting `in` allowed")
	}
}

func TestRuntimeErrors(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{`out.v = nope`, "undefined variable"},
		{`out.v = 1 / 0`, "division by zero"},
		{`out.v = 1 % 0`, "modulo by zero"},
		{`out.v = [1][5]`, "out of range"},
		{`out.v = "a" - 1`, "needs numbers"},
		{`out.v = frob(1)`, "unknown function"},
		{`out.v = len(5)`, "len of number"},
		{`for x in 5 { }`, "cannot iterate"},
		{`out.v = {}.x.y`, "cannot read field"},
		{`out.v = -"s"`, "needs a number"},
		{`out.v = 1 < "a"`, "cannot compare"},
	}
	for _, tc := range cases {
		prog, err := Parse(tc.src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", tc.src, err)
		}
		_, _, err = prog.Run(nil)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%q: err = %v, want substring %q", tc.src, err, tc.want)
		}
	}
}

func TestSyntaxErrors(t *testing.T) {
	cases := []string{
		`out.v = `,
		`if { }`,
		`for in x { }`,
		`while true`,
		`out.v = [1, 2`,
		`out.v = {a: }`,
		`1 = 2`,
		`out.v = 1 ? 2`,
		`"unterminated`,
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want syntax error", src)
		}
	}
}

func TestComments(t *testing.T) {
	out := run(t, `
		# hash comment
		// slash comment
		out.v = 1 # trailing
	`, nil)
	if out["v"] != 1.0 {
		t.Errorf("v = %v", out["v"])
	}
}

// Property: sum(arr) computed by the script equals the host-side sum.
func TestPropertySumMatchesHost(t *testing.T) {
	prog, err := Parse(`out.s = sum(in.values)`)
	if err != nil {
		t.Fatal(err)
	}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(20)
		arr := make([]any, n)
		want := 0.0
		for i := range arr {
			v := float64(rng.Intn(1000))
			arr[i] = v
			want += v
		}
		out, _, err := prog.Run(map[string]any{"values": arr})
		if err != nil {
			return false
		}
		return out["s"] == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: sort is idempotent and length-preserving.
func TestPropertySort(t *testing.T) {
	prog, err := Parse(`
		s1 = sort(in.values)
		out.sorted = s1
		out.twice = sort(s1)
		out.n = len(s1)
	`)
	if err != nil {
		t.Fatal(err)
	}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(15)
		arr := make([]any, n)
		for i := range arr {
			arr[i] = float64(rng.Intn(100))
		}
		out, _, err := prog.Run(map[string]any{"values": arr})
		if err != nil {
			return false
		}
		sorted := out["sorted"].([]any)
		twice := out["twice"].([]any)
		if out["n"] != float64(n) || len(sorted) != n {
			return false
		}
		for i := 1; i < n; i++ {
			if sorted[i-1].(float64) > sorted[i].(float64) {
				return false
			}
		}
		for i := range sorted {
			if sorted[i] != twice[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestBuiltinsListed(t *testing.T) {
	names := Builtins()
	if len(names) < 20 {
		t.Errorf("only %d builtins listed", len(names))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Error("Builtins not sorted")
		}
	}
}
