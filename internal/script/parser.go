package script

import "fmt"

// parser is a recursive-descent parser over the token stream.
type parser struct {
	toks []token
	pos  int
}

// Parse compiles MCScript source into an executable Program.
func Parse(src string) (*Program, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	block, err := p.parseStmts(func() bool { return p.peek().kind == tokEOF })
	if err != nil {
		return nil, err
	}
	return &Program{body: block, src: src}, nil
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) errorf(t token, format string, args ...any) error {
	return &SyntaxError{Line: t.line, Col: t.col, Message: fmt.Sprintf(format, args...)}
}

func (p *parser) expectOp(op string) (token, error) {
	t := p.next()
	if t.kind != tokOp || t.text != op {
		return t, p.errorf(t, "expected %q, got %s", op, t)
	}
	return t, nil
}

func (p *parser) atOp(op string) bool {
	t := p.peek()
	return t.kind == tokOp && t.text == op
}

func (p *parser) atKeyword(kw string) bool {
	t := p.peek()
	return t.kind == tokKeyword && t.text == kw
}

func (p *parser) parseStmts(done func() bool) (*stmtBlock, error) {
	start := p.peek()
	block := &stmtBlock{position: position{start.line, start.col}}
	for !done() {
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		block.stmts = append(block.stmts, s)
		// Optional statement separator.
		for p.atOp(";") {
			p.next()
		}
	}
	return block, nil
}

func (p *parser) parseBlock() (*stmtBlock, error) {
	if _, err := p.expectOp("{"); err != nil {
		return nil, err
	}
	block, err := p.parseStmts(func() bool { return p.atOp("}") || p.peek().kind == tokEOF })
	if err != nil {
		return nil, err
	}
	if _, err := p.expectOp("}"); err != nil {
		return nil, err
	}
	return block, nil
}

func (p *parser) parseStmt() (node, error) {
	t := p.peek()
	switch {
	case t.kind == tokKeyword && t.text == "if":
		return p.parseIf()
	case t.kind == tokKeyword && t.text == "for":
		return p.parseFor()
	case t.kind == tokKeyword && t.text == "while":
		p.next()
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		body, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		return &stmtWhile{position{t.line, t.col}, cond, body}, nil
	case t.kind == tokKeyword && t.text == "return":
		p.next()
		var val node
		if !p.atOp(";") && !p.atOp("}") && p.peek().kind != tokEOF {
			v, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			val = v
		}
		return &stmtReturn{position{t.line, t.col}, val}, nil
	case t.kind == tokKeyword && t.text == "break":
		p.next()
		return &stmtBreak{position{t.line, t.col}}, nil
	case t.kind == tokKeyword && t.text == "continue":
		p.next()
		return &stmtContinue{position{t.line, t.col}}, nil
	}
	// Expression or assignment.
	expr, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.atOp("=") {
		eq := p.next()
		switch expr.(type) {
		case *exprIdent, *exprField, *exprIndex:
		default:
			return nil, p.errorf(eq, "invalid assignment target")
		}
		val, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		line, col := expr.pos()
		return &stmtAssign{position{line, col}, expr, val}, nil
	}
	line, col := expr.pos()
	return &stmtExpr{position{line, col}, expr}, nil
}

func (p *parser) parseIf() (node, error) {
	t := p.next() // 'if'
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	then, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	stmt := &stmtIf{position{t.line, t.col}, cond, then, nil}
	if p.atKeyword("else") {
		p.next()
		if p.atKeyword("if") {
			els, err := p.parseIf()
			if err != nil {
				return nil, err
			}
			stmt.els = els
		} else {
			els, err := p.parseBlock()
			if err != nil {
				return nil, err
			}
			stmt.els = els
		}
	}
	return stmt, nil
}

func (p *parser) parseFor() (node, error) {
	t := p.next() // 'for'
	first := p.next()
	if first.kind != tokIdent {
		return nil, p.errorf(first, "expected loop variable, got %s", first)
	}
	keyVar, valVar := "", first.text
	if p.atOp(",") {
		p.next()
		second := p.next()
		if second.kind != tokIdent {
			return nil, p.errorf(second, "expected loop variable, got %s", second)
		}
		keyVar, valVar = first.text, second.text
	}
	inTok := p.next()
	if inTok.kind != tokIdent || inTok.text != "in" {
		return nil, p.errorf(inTok, "expected 'in', got %s", inTok)
	}
	seq, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	return &stmtFor{position{t.line, t.col}, keyVar, valVar, seq, body}, nil
}

// Expression parsing with precedence climbing.

var binaryPrec = map[string]int{
	"||": 1,
	"&&": 2,
	"==": 3, "!=": 3, "<": 3, "<=": 3, ">": 3, ">=": 3,
	"+": 4, "-": 4,
	"*": 5, "/": 5, "%": 5,
}

func (p *parser) parseExpr() (node, error) {
	return p.parseBinary(1)
}

func (p *parser) parseBinary(minPrec int) (node, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind != tokOp {
			return left, nil
		}
		prec, ok := binaryPrec[t.text]
		if !ok || prec < minPrec {
			return left, nil
		}
		p.next()
		right, err := p.parseBinary(prec + 1)
		if err != nil {
			return nil, err
		}
		line, col := left.pos()
		left = &exprBinary{position{line, col}, t.text, left, right}
	}
}

func (p *parser) parseUnary() (node, error) {
	t := p.peek()
	if t.kind == tokOp && (t.text == "-" || t.text == "!") {
		p.next()
		operand, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &exprUnary{position{t.line, t.col}, t.text, operand}, nil
	}
	return p.parsePostfix()
}

func (p *parser) parsePostfix() (node, error) {
	expr, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.atOp("."):
			p.next()
			name := p.next()
			if name.kind != tokIdent && name.kind != tokKeyword {
				return nil, p.errorf(name, "expected field name, got %s", name)
			}
			line, col := expr.pos()
			expr = &exprField{position{line, col}, expr, name.text}
		case p.atOp("["):
			p.next()
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expectOp("]"); err != nil {
				return nil, err
			}
			line, col := expr.pos()
			expr = &exprIndex{position{line, col}, expr, idx}
		case p.atOp("("):
			ident, ok := expr.(*exprIdent)
			if !ok {
				t := p.peek()
				return nil, p.errorf(t, "only named builtin functions can be called")
			}
			p.next()
			var args []node
			for !p.atOp(")") {
				arg, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				args = append(args, arg)
				if p.atOp(",") {
					p.next()
					continue
				}
				break
			}
			if _, err := p.expectOp(")"); err != nil {
				return nil, err
			}
			expr = &exprCall{position{ident.line, ident.col}, ident.name, args}
		default:
			return expr, nil
		}
	}
}

func (p *parser) parsePrimary() (node, error) {
	t := p.next()
	pos := position{t.line, t.col}
	switch {
	case t.kind == tokNumber:
		return &exprLiteral{pos, t.num}, nil
	case t.kind == tokString:
		return &exprLiteral{pos, t.str}, nil
	case t.kind == tokKeyword && t.text == "true":
		return &exprLiteral{pos, true}, nil
	case t.kind == tokKeyword && t.text == "false":
		return &exprLiteral{pos, false}, nil
	case t.kind == tokKeyword && t.text == "null":
		return &exprLiteral{pos, nil}, nil
	case t.kind == tokIdent:
		return &exprIdent{pos, t.text}, nil
	case t.kind == tokOp && t.text == "(":
		expr, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return expr, nil
	case t.kind == tokOp && t.text == "[":
		arr := &exprArray{position: pos}
		for !p.atOp("]") {
			elem, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			arr.elems = append(arr.elems, elem)
			if p.atOp(",") {
				p.next()
				continue
			}
			break
		}
		if _, err := p.expectOp("]"); err != nil {
			return nil, err
		}
		return arr, nil
	case t.kind == tokOp && t.text == "{":
		obj := &exprObject{position: pos}
		for !p.atOp("}") {
			key := p.next()
			var keyStr string
			switch {
			case key.kind == tokIdent || key.kind == tokKeyword:
				keyStr = key.text
			case key.kind == tokString:
				keyStr = key.str
			default:
				return nil, p.errorf(key, "expected object key, got %s", key)
			}
			if _, err := p.expectOp(":"); err != nil {
				return nil, err
			}
			val, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			obj.keys = append(obj.keys, keyStr)
			obj.values = append(obj.values, val)
			if p.atOp(",") {
				p.next()
				continue
			}
			break
		}
		if _, err := p.expectOp("}"); err != nil {
			return nil, err
		}
		return obj, nil
	default:
		return nil, p.errorf(t, "unexpected token %s", t)
	}
}
