package script

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// TestPropertyParserNeverPanics throws random token soup at the parser:
// it must either parse or return a SyntaxError, never panic.
func TestPropertyParserNeverPanics(t *testing.T) {
	fragments := []string{
		"out", ".", "=", "in", "x", "1", "2.5", "\"s\"", "(", ")", "[", "]",
		"{", "}", "+", "-", "*", "/", "%", "if", "else", "for", "while",
		"return", "break", "continue", "true", "false", "null", ",", ";",
		"&&", "||", "==", "!=", "<", ">", "<=", ">=", "!", "len", ":",
	}
	prop := func(seed int64) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				t.Logf("parser panicked: %v", r)
				ok = false
			}
		}()
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(30)
		parts := make([]string, n)
		for i := range parts {
			parts[i] = fragments[rng.Intn(len(fragments))]
		}
		src := strings.Join(parts, " ")
		prog, err := Parse(src)
		if err != nil {
			return true // rejection is fine
		}
		// If it parses, a bounded run must not panic either.
		_, _, _ = prog.RunLimited(map[string]any{"x": 1.0}, 50000)
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestPropertyLexerNeverPanics feeds random bytes to the lexer.
func TestPropertyLexerNeverPanics(t *testing.T) {
	prop := func(data []byte) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				ok = false
			}
		}()
		_, _ = lexAll(string(data))
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
