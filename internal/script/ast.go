package script

// The abstract syntax tree of MCScript.  Nodes carry their source position
// for runtime error messages.

type node interface {
	pos() (line, col int)
}

type position struct {
	line, col int
}

func (p position) pos() (int, int) { return p.line, p.col }

// Statements.

type stmtBlock struct {
	position
	stmts []node
}

type stmtAssign struct {
	position
	target node // identExpr, fieldExpr or indexExpr
	value  node
}

type stmtIf struct {
	position
	cond node
	then *stmtBlock
	els  node // *stmtBlock, *stmtIf or nil
}

type stmtFor struct {
	position
	keyVar string // optional index/key variable ("" if absent)
	valVar string
	seq    node
	body   *stmtBlock
}

type stmtWhile struct {
	position
	cond node
	body *stmtBlock
}

type stmtReturn struct {
	position
	value node // may be nil
}

type stmtBreak struct{ position }

type stmtContinue struct{ position }

type stmtExpr struct {
	position
	expr node
}

// Expressions.

type exprLiteral struct {
	position
	value any
}

type exprIdent struct {
	position
	name string
}

type exprField struct {
	position
	object node
	name   string
}

type exprIndex struct {
	position
	object node
	index  node
}

type exprCall struct {
	position
	fn   string
	args []node
}

type exprUnary struct {
	position
	op      string
	operand node
}

type exprBinary struct {
	position
	op          string
	left, right node
}

type exprArray struct {
	position
	elems []node
}

type exprObject struct {
	position
	keys   []string
	values []node
}
