package script

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"
)

// Program is a compiled MCScript ready for execution.
type Program struct {
	body *stmtBlock
	src  string
}

// Source returns the original script text.
func (p *Program) Source() string { return p.src }

// DefaultStepLimit bounds the number of evaluation steps per run so that
// user-supplied workflow actions cannot loop forever inside a service.
const DefaultStepLimit = 5_000_000

// A RuntimeError reports a failure during script execution.
type RuntimeError struct {
	Line, Col int
	Message   string
}

// Error implements the error interface.
func (e *RuntimeError) Error() string {
	return fmt.Sprintf("script: runtime: %d:%d: %s", e.Line, e.Col, e.Message)
}

// control-flow signals propagated through the evaluator.
type ctrl int

const (
	ctrlNone ctrl = iota
	ctrlBreak
	ctrlContinue
	ctrlReturn
)

type env struct {
	vars      map[string]any
	steps     int
	stepLimit int
	retVal    any
}

func (e *env) tick(n node) error {
	e.steps++
	if e.steps > e.stepLimit {
		line, col := n.pos()
		return &RuntimeError{line, col, "step limit exceeded"}
	}
	return nil
}

func rtErr(n node, format string, args ...any) error {
	line, col := n.pos()
	return &RuntimeError{line, col, fmt.Sprintf(format, args...)}
}

// Run executes the program with the given input values.  Inputs are exposed
// as the object `in`; the script writes results into the object `out`,
// which Run returns.  The optional return value of the script (via
// `return`) is also returned.
func (p *Program) Run(inputs map[string]any) (outputs map[string]any, ret any, err error) {
	return p.RunLimited(inputs, DefaultStepLimit)
}

// RunLimited is Run with an explicit evaluation step limit.
func (p *Program) RunLimited(inputs map[string]any, stepLimit int) (map[string]any, any, error) {
	if inputs == nil {
		inputs = map[string]any{}
	}
	out := map[string]any{}
	e := &env{
		vars:      map[string]any{"in": copyJSON(inputs), "out": out},
		stepLimit: stepLimit,
	}
	if _, err := e.execBlock(p.body); err != nil {
		return nil, nil, err
	}
	return out, e.retVal, nil
}

func (e *env) execBlock(b *stmtBlock) (ctrl, error) {
	for _, s := range b.stmts {
		c, err := e.exec(s)
		if err != nil || c != ctrlNone {
			return c, err
		}
	}
	return ctrlNone, nil
}

func (e *env) exec(n node) (ctrl, error) {
	if err := e.tick(n); err != nil {
		return ctrlNone, err
	}
	switch s := n.(type) {
	case *stmtBlock:
		return e.execBlock(s)
	case *stmtExpr:
		_, err := e.eval(s.expr)
		return ctrlNone, err
	case *stmtAssign:
		val, err := e.eval(s.value)
		if err != nil {
			return ctrlNone, err
		}
		return ctrlNone, e.assign(s.target, val)
	case *stmtIf:
		cond, err := e.eval(s.cond)
		if err != nil {
			return ctrlNone, err
		}
		if truthy(cond) {
			return e.execBlock(s.then)
		}
		if s.els != nil {
			return e.exec(s.els)
		}
		return ctrlNone, nil
	case *stmtWhile:
		for {
			cond, err := e.eval(s.cond)
			if err != nil {
				return ctrlNone, err
			}
			if !truthy(cond) {
				return ctrlNone, nil
			}
			if err := e.tick(s); err != nil {
				return ctrlNone, err
			}
			c, err := e.execBlock(s.body)
			if err != nil {
				return ctrlNone, err
			}
			if c == ctrlBreak {
				return ctrlNone, nil
			}
			if c == ctrlReturn {
				return c, nil
			}
		}
	case *stmtFor:
		return e.execFor(s)
	case *stmtReturn:
		if s.value != nil {
			val, err := e.eval(s.value)
			if err != nil {
				return ctrlNone, err
			}
			e.retVal = val
		}
		return ctrlReturn, nil
	case *stmtBreak:
		return ctrlBreak, nil
	case *stmtContinue:
		return ctrlContinue, nil
	default:
		return ctrlNone, rtErr(n, "unknown statement %T", n)
	}
}

func (e *env) execFor(s *stmtFor) (ctrl, error) {
	seq, err := e.eval(s.seq)
	if err != nil {
		return ctrlNone, err
	}
	iterate := func(key any, val any) (ctrl, error) {
		if err := e.tick(s); err != nil {
			return ctrlNone, err
		}
		if s.keyVar != "" {
			e.vars[s.keyVar] = key
		}
		e.vars[s.valVar] = val
		return e.execBlock(s.body)
	}
	switch coll := seq.(type) {
	case []any:
		for i, v := range coll {
			c, err := iterate(float64(i), v)
			if err != nil {
				return ctrlNone, err
			}
			if c == ctrlBreak {
				return ctrlNone, nil
			}
			if c == ctrlReturn {
				return c, nil
			}
		}
		return ctrlNone, nil
	case map[string]any:
		keys := make([]string, 0, len(coll))
		for k := range coll {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			c, err := iterate(k, coll[k])
			if err != nil {
				return ctrlNone, err
			}
			if c == ctrlBreak {
				return ctrlNone, nil
			}
			if c == ctrlReturn {
				return c, nil
			}
		}
		return ctrlNone, nil
	case string:
		for i, r := range coll {
			c, err := iterate(float64(i), string(r))
			if err != nil {
				return ctrlNone, err
			}
			if c == ctrlBreak {
				return ctrlNone, nil
			}
			if c == ctrlReturn {
				return c, nil
			}
		}
		return ctrlNone, nil
	default:
		return ctrlNone, rtErr(s, "cannot iterate over %s", typeOf(seq))
	}
}

func (e *env) assign(target node, val any) error {
	switch t := target.(type) {
	case *exprIdent:
		if t.name == "in" {
			return rtErr(t, "cannot overwrite the inputs object")
		}
		e.vars[t.name] = val
		return nil
	case *exprField:
		obj, err := e.eval(t.object)
		if err != nil {
			return err
		}
		m, ok := obj.(map[string]any)
		if !ok {
			return rtErr(t, "cannot set field %q on %s", t.name, typeOf(obj))
		}
		m[t.name] = val
		return nil
	case *exprIndex:
		obj, err := e.eval(t.object)
		if err != nil {
			return err
		}
		idx, err := e.eval(t.index)
		if err != nil {
			return err
		}
		switch coll := obj.(type) {
		case map[string]any:
			key, ok := idx.(string)
			if !ok {
				return rtErr(t, "object index must be a string, got %s", typeOf(idx))
			}
			coll[key] = val
			return nil
		case []any:
			i, ok := asIndex(idx, len(coll))
			if !ok {
				return rtErr(t, "array index %v out of range (len %d)", idx, len(coll))
			}
			coll[i] = val
			return nil
		default:
			return rtErr(t, "cannot index-assign into %s", typeOf(obj))
		}
	default:
		return rtErr(target, "invalid assignment target")
	}
}

func (e *env) eval(n node) (any, error) {
	if err := e.tick(n); err != nil {
		return nil, err
	}
	switch x := n.(type) {
	case *exprLiteral:
		return x.value, nil
	case *exprIdent:
		v, ok := e.vars[x.name]
		if !ok {
			return nil, rtErr(x, "undefined variable %q", x.name)
		}
		return v, nil
	case *exprField:
		obj, err := e.eval(x.object)
		if err != nil {
			return nil, err
		}
		m, ok := obj.(map[string]any)
		if !ok {
			return nil, rtErr(x, "cannot read field %q of %s", x.name, typeOf(obj))
		}
		return m[x.name], nil
	case *exprIndex:
		obj, err := e.eval(x.object)
		if err != nil {
			return nil, err
		}
		idx, err := e.eval(x.index)
		if err != nil {
			return nil, err
		}
		switch coll := obj.(type) {
		case []any:
			i, ok := asIndex(idx, len(coll))
			if !ok {
				return nil, rtErr(x, "array index %v out of range (len %d)", idx, len(coll))
			}
			return coll[i], nil
		case map[string]any:
			key, ok := idx.(string)
			if !ok {
				return nil, rtErr(x, "object index must be a string, got %s", typeOf(idx))
			}
			return coll[key], nil
		case string:
			i, ok := asIndex(idx, len(coll))
			if !ok {
				return nil, rtErr(x, "string index %v out of range (len %d)", idx, len(coll))
			}
			return string(coll[i]), nil
		default:
			return nil, rtErr(x, "cannot index %s", typeOf(obj))
		}
	case *exprUnary:
		v, err := e.eval(x.operand)
		if err != nil {
			return nil, err
		}
		switch x.op {
		case "-":
			f, ok := v.(float64)
			if !ok {
				return nil, rtErr(x, "unary - needs a number, got %s", typeOf(v))
			}
			return -f, nil
		case "!":
			return !truthy(v), nil
		}
		return nil, rtErr(x, "unknown unary operator %q", x.op)
	case *exprBinary:
		return e.evalBinary(x)
	case *exprArray:
		out := make([]any, 0, len(x.elems))
		for _, el := range x.elems {
			v, err := e.eval(el)
			if err != nil {
				return nil, err
			}
			out = append(out, v)
		}
		return out, nil
	case *exprObject:
		out := make(map[string]any, len(x.keys))
		for i, k := range x.keys {
			v, err := e.eval(x.values[i])
			if err != nil {
				return nil, err
			}
			out[k] = v
		}
		return out, nil
	case *exprCall:
		return e.evalCall(x)
	default:
		return nil, rtErr(n, "unknown expression %T", n)
	}
}

func (e *env) evalBinary(x *exprBinary) (any, error) {
	// Short-circuit logic first.
	if x.op == "&&" || x.op == "||" {
		left, err := e.eval(x.left)
		if err != nil {
			return nil, err
		}
		if x.op == "&&" && !truthy(left) {
			return false, nil
		}
		if x.op == "||" && truthy(left) {
			return true, nil
		}
		right, err := e.eval(x.right)
		if err != nil {
			return nil, err
		}
		return truthy(right), nil
	}
	left, err := e.eval(x.left)
	if err != nil {
		return nil, err
	}
	right, err := e.eval(x.right)
	if err != nil {
		return nil, err
	}
	switch x.op {
	case "==":
		return jsonEqual(left, right), nil
	case "!=":
		return !jsonEqual(left, right), nil
	case "+":
		// Numeric addition, string and array concatenation.
		if lf, ok := left.(float64); ok {
			rf, ok := right.(float64)
			if !ok {
				return nil, rtErr(x, "cannot add number and %s", typeOf(right))
			}
			return lf + rf, nil
		}
		if ls, ok := left.(string); ok {
			return ls + stringify(right), nil
		}
		if la, ok := left.([]any); ok {
			if ra, ok := right.([]any); ok {
				out := make([]any, 0, len(la)+len(ra))
				out = append(out, la...)
				out = append(out, ra...)
				return out, nil
			}
			return nil, rtErr(x, "cannot add array and %s", typeOf(right))
		}
		return nil, rtErr(x, "cannot add %s and %s", typeOf(left), typeOf(right))
	case "-", "*", "/", "%":
		lf, lok := left.(float64)
		rf, rok := right.(float64)
		if !lok || !rok {
			return nil, rtErr(x, "operator %q needs numbers, got %s and %s",
				x.op, typeOf(left), typeOf(right))
		}
		switch x.op {
		case "-":
			return lf - rf, nil
		case "*":
			return lf * rf, nil
		case "/":
			if rf == 0 {
				return nil, rtErr(x, "division by zero")
			}
			return lf / rf, nil
		case "%":
			if rf == 0 {
				return nil, rtErr(x, "modulo by zero")
			}
			return math.Mod(lf, rf), nil
		}
	case "<", "<=", ">", ">=":
		if lf, ok := left.(float64); ok {
			rf, ok := right.(float64)
			if !ok {
				return nil, rtErr(x, "cannot compare number with %s", typeOf(right))
			}
			return compareOp(x.op, lf < rf, lf == rf), nil
		}
		if ls, ok := left.(string); ok {
			rs, ok := right.(string)
			if !ok {
				return nil, rtErr(x, "cannot compare string with %s", typeOf(right))
			}
			return compareOp(x.op, ls < rs, ls == rs), nil
		}
		return nil, rtErr(x, "cannot order %s values", typeOf(left))
	}
	return nil, rtErr(x, "unknown operator %q", x.op)
}

func compareOp(op string, less, equal bool) bool {
	switch op {
	case "<":
		return less
	case "<=":
		return less || equal
	case ">":
		return !less && !equal
	case ">=":
		return !less
	}
	return false
}

func truthy(v any) bool {
	switch x := v.(type) {
	case nil:
		return false
	case bool:
		return x
	case float64:
		return x != 0
	case string:
		return x != ""
	case []any:
		return len(x) > 0
	case map[string]any:
		return len(x) > 0
	}
	return true
}

func typeOf(v any) string {
	switch v.(type) {
	case nil:
		return "null"
	case bool:
		return "boolean"
	case float64:
		return "number"
	case string:
		return "string"
	case []any:
		return "array"
	case map[string]any:
		return "object"
	}
	return fmt.Sprintf("%T", v)
}

func asIndex(v any, length int) (int, bool) {
	f, ok := v.(float64)
	if !ok || f != math.Trunc(f) {
		return 0, false
	}
	i := int(f)
	if i < 0 || i >= length {
		return 0, false
	}
	return i, true
}

func jsonEqual(a, b any) bool {
	switch av := a.(type) {
	case nil:
		return b == nil
	case bool:
		bv, ok := b.(bool)
		return ok && av == bv
	case float64:
		bv, ok := b.(float64)
		return ok && av == bv
	case string:
		bv, ok := b.(string)
		return ok && av == bv
	case []any:
		bv, ok := b.([]any)
		if !ok || len(av) != len(bv) {
			return false
		}
		for i := range av {
			if !jsonEqual(av[i], bv[i]) {
				return false
			}
		}
		return true
	case map[string]any:
		bv, ok := b.(map[string]any)
		if !ok || len(av) != len(bv) {
			return false
		}
		for k, v := range av {
			if bvv, ok := bv[k]; !ok || !jsonEqual(v, bvv) {
				return false
			}
		}
		return true
	}
	return false
}

func stringify(v any) string {
	switch x := v.(type) {
	case nil:
		return "null"
	case string:
		return x
	case float64:
		if x == math.Trunc(x) && math.Abs(x) < 1e15 {
			return fmt.Sprintf("%d", int64(x))
		}
		return fmt.Sprintf("%g", x)
	case bool:
		if x {
			return "true"
		}
		return "false"
	default:
		data, err := json.Marshal(v)
		if err != nil {
			return fmt.Sprintf("%v", v)
		}
		return string(data)
	}
}

// copyJSON deep-copies a JSON value so scripts cannot mutate shared inputs.
func copyJSON(v any) any {
	switch x := v.(type) {
	case []any:
		out := make([]any, len(x))
		for i, e := range x {
			out[i] = copyJSON(e)
		}
		return out
	case map[string]any:
		out := make(map[string]any, len(x))
		for k, e := range x {
			out[k] = copyJSON(e)
		}
		return out
	default:
		return v
	}
}

func (e *env) evalCall(x *exprCall) (any, error) {
	args := make([]any, len(x.args))
	for i, a := range x.args {
		v, err := e.eval(a)
		if err != nil {
			return nil, err
		}
		args[i] = v
	}
	fn, ok := builtins[x.fn]
	if !ok {
		return nil, rtErr(x, "unknown function %q", x.fn)
	}
	out, err := fn(args)
	if err != nil {
		return nil, rtErr(x, "%s: %v", x.fn, err)
	}
	return out, nil
}

// builtins is the function library available to scripts.
var builtins = map[string]func(args []any) (any, error){
	"len": func(args []any) (any, error) {
		if err := arity(args, 1); err != nil {
			return nil, err
		}
		switch v := args[0].(type) {
		case string:
			return float64(len(v)), nil
		case []any:
			return float64(len(v)), nil
		case map[string]any:
			return float64(len(v)), nil
		}
		return nil, fmt.Errorf("len of %s", typeOf(args[0]))
	},
	"keys": func(args []any) (any, error) {
		if err := arity(args, 1); err != nil {
			return nil, err
		}
		m, ok := args[0].(map[string]any)
		if !ok {
			return nil, fmt.Errorf("keys of %s", typeOf(args[0]))
		}
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		out := make([]any, len(keys))
		for i, k := range keys {
			out[i] = k
		}
		return out, nil
	},
	"has": func(args []any) (any, error) {
		if err := arity(args, 2); err != nil {
			return nil, err
		}
		m, ok := args[0].(map[string]any)
		if !ok {
			return nil, fmt.Errorf("has on %s", typeOf(args[0]))
		}
		key, ok := args[1].(string)
		if !ok {
			return nil, fmt.Errorf("has key must be a string")
		}
		_, present := m[key]
		return present, nil
	},
	"push": func(args []any) (any, error) {
		if len(args) < 2 {
			return nil, fmt.Errorf("push needs an array and at least one value")
		}
		arr, ok := args[0].([]any)
		if !ok {
			return nil, fmt.Errorf("push target must be an array, got %s", typeOf(args[0]))
		}
		return append(append([]any{}, arr...), args[1:]...), nil
	},
	"slice": func(args []any) (any, error) {
		if err := arity(args, 3); err != nil {
			return nil, err
		}
		arr, ok := args[0].([]any)
		if !ok {
			return nil, fmt.Errorf("slice target must be an array")
		}
		lo, ok1 := args[1].(float64)
		hi, ok2 := args[2].(float64)
		if !ok1 || !ok2 {
			return nil, fmt.Errorf("slice bounds must be numbers")
		}
		i, j := int(lo), int(hi)
		if i < 0 || j > len(arr) || i > j {
			return nil, fmt.Errorf("slice bounds [%d:%d] out of range (len %d)", i, j, len(arr))
		}
		return append([]any{}, arr[i:j]...), nil
	},
	"range": func(args []any) (any, error) {
		if err := arity(args, 1); err != nil {
			return nil, err
		}
		n, ok := args[0].(float64)
		if !ok || n < 0 || n != math.Trunc(n) || n > 1e7 {
			return nil, fmt.Errorf("range needs a small non-negative integer")
		}
		out := make([]any, int(n))
		for i := range out {
			out[i] = float64(i)
		}
		return out, nil
	},
	"split": func(args []any) (any, error) {
		if err := arity(args, 2); err != nil {
			return nil, err
		}
		s, ok1 := args[0].(string)
		sep, ok2 := args[1].(string)
		if !ok1 || !ok2 {
			return nil, fmt.Errorf("split needs two strings")
		}
		parts := strings.Split(s, sep)
		out := make([]any, len(parts))
		for i, p := range parts {
			out[i] = p
		}
		return out, nil
	},
	"join": func(args []any) (any, error) {
		if err := arity(args, 2); err != nil {
			return nil, err
		}
		arr, ok1 := args[0].([]any)
		sep, ok2 := args[1].(string)
		if !ok1 || !ok2 {
			return nil, fmt.Errorf("join needs an array and a string")
		}
		parts := make([]string, len(arr))
		for i, v := range arr {
			parts[i] = stringify(v)
		}
		return strings.Join(parts, sep), nil
	},
	"trim": func(args []any) (any, error) {
		if err := arity(args, 1); err != nil {
			return nil, err
		}
		s, ok := args[0].(string)
		if !ok {
			return nil, fmt.Errorf("trim needs a string")
		}
		return strings.TrimSpace(s), nil
	},
	"contains": func(args []any) (any, error) {
		if err := arity(args, 2); err != nil {
			return nil, err
		}
		switch coll := args[0].(type) {
		case string:
			sub, ok := args[1].(string)
			if !ok {
				return nil, fmt.Errorf("contains on a string needs a string")
			}
			return strings.Contains(coll, sub), nil
		case []any:
			for _, v := range coll {
				if jsonEqual(v, args[1]) {
					return true, nil
				}
			}
			return false, nil
		}
		return nil, fmt.Errorf("contains on %s", typeOf(args[0]))
	},
	"str": func(args []any) (any, error) {
		if err := arity(args, 1); err != nil {
			return nil, err
		}
		return stringify(args[0]), nil
	},
	"num": func(args []any) (any, error) {
		if err := arity(args, 1); err != nil {
			return nil, err
		}
		switch v := args[0].(type) {
		case float64:
			return v, nil
		case bool:
			if v {
				return 1.0, nil
			}
			return 0.0, nil
		case string:
			var f float64
			if _, err := fmt.Sscanf(strings.TrimSpace(v), "%g", &f); err != nil {
				return nil, fmt.Errorf("cannot parse %q as a number", v)
			}
			return f, nil
		}
		return nil, fmt.Errorf("num of %s", typeOf(args[0]))
	},
	"floor": numFn(math.Floor),
	"ceil":  numFn(math.Ceil),
	"round": numFn(math.Round),
	"abs":   numFn(math.Abs),
	"sqrt": func(args []any) (any, error) {
		if err := arity(args, 1); err != nil {
			return nil, err
		}
		f, ok := args[0].(float64)
		if !ok || f < 0 {
			return nil, fmt.Errorf("sqrt needs a non-negative number")
		}
		return math.Sqrt(f), nil
	},
	"min": foldFn("min", func(a, b float64) float64 { return math.Min(a, b) }),
	"max": foldFn("max", func(a, b float64) float64 { return math.Max(a, b) }),
	"sum": func(args []any) (any, error) {
		if err := arity(args, 1); err != nil {
			return nil, err
		}
		arr, ok := args[0].([]any)
		if !ok {
			return nil, fmt.Errorf("sum needs an array")
		}
		total := 0.0
		for _, v := range arr {
			f, ok := v.(float64)
			if !ok {
				return nil, fmt.Errorf("sum over non-number %s", typeOf(v))
			}
			total += f
		}
		return total, nil
	},
	"sort": func(args []any) (any, error) {
		if err := arity(args, 1); err != nil {
			return nil, err
		}
		arr, ok := args[0].([]any)
		if !ok {
			return nil, fmt.Errorf("sort needs an array")
		}
		out := append([]any{}, arr...)
		var sortErr error
		sort.SliceStable(out, func(i, j int) bool {
			switch a := out[i].(type) {
			case float64:
				b, ok := out[j].(float64)
				if !ok {
					sortErr = fmt.Errorf("mixed-type array")
					return false
				}
				return a < b
			case string:
				b, ok := out[j].(string)
				if !ok {
					sortErr = fmt.Errorf("mixed-type array")
					return false
				}
				return a < b
			default:
				sortErr = fmt.Errorf("cannot sort %s values", typeOf(out[i]))
				return false
			}
		})
		if sortErr != nil {
			return nil, sortErr
		}
		return out, nil
	},
	"format": func(args []any) (any, error) {
		if len(args) < 1 {
			return nil, fmt.Errorf("format needs a format string")
		}
		f, ok := args[0].(string)
		if !ok {
			return nil, fmt.Errorf("format string must be a string")
		}
		return fmt.Sprintf(f, args[1:]...), nil
	},
	"type": func(args []any) (any, error) {
		if err := arity(args, 1); err != nil {
			return nil, err
		}
		return typeOf(args[0]), nil
	},
	"parseJSON": func(args []any) (any, error) {
		if err := arity(args, 1); err != nil {
			return nil, err
		}
		s, ok := args[0].(string)
		if !ok {
			return nil, fmt.Errorf("parseJSON needs a string")
		}
		var out any
		if err := json.Unmarshal([]byte(s), &out); err != nil {
			return nil, err
		}
		return out, nil
	},
	"toJSON": func(args []any) (any, error) {
		if err := arity(args, 1); err != nil {
			return nil, err
		}
		data, err := json.Marshal(args[0])
		if err != nil {
			return nil, err
		}
		return string(data), nil
	},
}

func arity(args []any, n int) error {
	if len(args) != n {
		return fmt.Errorf("expected %d argument(s), got %d", n, len(args))
	}
	return nil
}

func numFn(f func(float64) float64) func(args []any) (any, error) {
	return func(args []any) (any, error) {
		if err := arity(args, 1); err != nil {
			return nil, err
		}
		v, ok := args[0].(float64)
		if !ok {
			return nil, fmt.Errorf("expected a number, got %s", typeOf(args[0]))
		}
		return f(v), nil
	}
}

func foldFn(name string, f func(a, b float64) float64) func(args []any) (any, error) {
	return func(args []any) (any, error) {
		var nums []float64
		if len(args) == 1 {
			if arr, ok := args[0].([]any); ok {
				for _, v := range arr {
					fv, ok := v.(float64)
					if !ok {
						return nil, fmt.Errorf("%s over non-number %s", name, typeOf(v))
					}
					nums = append(nums, fv)
				}
			}
		}
		if nums == nil {
			for _, v := range args {
				fv, ok := v.(float64)
				if !ok {
					return nil, fmt.Errorf("%s over non-number %s", name, typeOf(v))
				}
				nums = append(nums, fv)
			}
		}
		if len(nums) == 0 {
			return nil, fmt.Errorf("%s of empty sequence", name)
		}
		acc := nums[0]
		for _, v := range nums[1:] {
			acc = f(acc, v)
		}
		return acc, nil
	}
}

// Builtins returns the sorted names of the available builtin functions,
// used by documentation and the service web UI.
func Builtins() []string {
	names := make([]string, 0, len(builtins))
	for name := range builtins {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
