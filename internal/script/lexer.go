// Package script implements MCScript, the small embedded language that
// MathCloud workflows use for custom actions.  The paper lets users attach
// custom workflow actions written in JavaScript or Python — for example to
// build complex string inputs for services or to collect extra timing.
// MCScript is the stdlib-only stand-in: a deliberately small, deterministic,
// JSON-native scripting language with a lexer, a recursive-descent parser
// and a tree-walking evaluator.
//
// A script receives the block inputs in the predeclared object `in` and
// publishes outputs by assigning fields of the predeclared object `out`:
//
//	total = 0
//	for x in in.values { total = total + x }
//	out.sum = total
//	out.label = format("sum of %v values", len(in.values))
package script

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// tokenKind enumerates lexical token categories.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokNumber
	tokString
	tokIdent
	tokKeyword
	tokOp
)

// token is one lexical token with its source position.
type token struct {
	kind tokenKind
	text string
	num  float64
	str  string
	line int
	col  int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of script"
	case tokString:
		return strconv.Quote(t.str)
	default:
		return t.text
	}
}

// keywords of the language.
var keywords = map[string]bool{
	"if": true, "else": true, "for": true, "while": true, "in": false,
	"return": true, "true": true, "false": true, "null": true,
	"break": true, "continue": true,
}

// isKeyword reports whether the identifier is reserved.  `in` is special:
// it is a keyword in `for x in e` position but also the conventional name
// of the inputs object, so the parser treats it contextually.
func isKeyword(s string) bool {
	v, ok := keywords[s]
	return ok && v
}

// A SyntaxError reports a lexing or parsing failure with its position.
type SyntaxError struct {
	Line, Col int
	Message   string
}

// Error implements the error interface.
func (e *SyntaxError) Error() string {
	return fmt.Sprintf("script: %d:%d: %s", e.Line, e.Col, e.Message)
}

type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1, col: 1}
}

func (l *lexer) errorf(format string, args ...any) error {
	return &SyntaxError{Line: l.line, Col: l.col, Message: fmt.Sprintf(format, args...)}
}

func (l *lexer) peekByte() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *lexer) skipSpaceAndComments() error {
	for l.pos < len(l.src) {
		c := l.peekByte()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '#':
			for l.pos < len(l.src) && l.peekByte() != '\n' {
				l.advance()
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			for l.pos < len(l.src) && l.peekByte() != '\n' {
				l.advance()
			}
		default:
			return nil
		}
	}
	return nil
}

// operators, longest first so that the two-byte forms win.
var operators = []string{
	"==", "!=", "<=", ">=", "&&", "||",
	"+", "-", "*", "/", "%", "<", ">", "=", "!",
	"(", ")", "[", "]", "{", "}", ",", ".", ";", ":",
}

func (l *lexer) next() (token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return token{}, err
	}
	startLine, startCol := l.line, l.col
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, line: startLine, col: startCol}, nil
	}
	c := l.peekByte()
	switch {
	case c >= '0' && c <= '9':
		start := l.pos
		for l.pos < len(l.src) && (isDigit(l.peekByte()) || l.peekByte() == '.' ||
			l.peekByte() == 'e' || l.peekByte() == 'E' ||
			((l.peekByte() == '+' || l.peekByte() == '-') && l.pos > start &&
				(l.src[l.pos-1] == 'e' || l.src[l.pos-1] == 'E'))) {
			l.advance()
		}
		text := l.src[start:l.pos]
		f, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return token{}, &SyntaxError{Line: startLine, Col: startCol,
				Message: fmt.Sprintf("invalid number %q", text)}
		}
		return token{kind: tokNumber, text: text, num: f, line: startLine, col: startCol}, nil
	case c == '"' || c == '\'':
		return l.lexString(c, startLine, startCol)
	case isIdentStart(rune(c)):
		start := l.pos
		for l.pos < len(l.src) && isIdentPart(rune(l.peekByte())) {
			l.advance()
		}
		text := l.src[start:l.pos]
		kind := tokIdent
		if isKeyword(text) {
			kind = tokKeyword
		}
		return token{kind: kind, text: text, line: startLine, col: startCol}, nil
	default:
		for _, op := range operators {
			if strings.HasPrefix(l.src[l.pos:], op) {
				for range op {
					l.advance()
				}
				return token{kind: tokOp, text: op, line: startLine, col: startCol}, nil
			}
		}
		return token{}, &SyntaxError{Line: startLine, Col: startCol,
			Message: fmt.Sprintf("unexpected character %q", string(c))}
	}
}

func (l *lexer) lexString(quote byte, line, col int) (token, error) {
	l.advance() // consume opening quote
	var b strings.Builder
	for {
		if l.pos >= len(l.src) {
			return token{}, &SyntaxError{Line: line, Col: col, Message: "unterminated string"}
		}
		c := l.advance()
		if c == quote {
			break
		}
		if c == '\\' {
			if l.pos >= len(l.src) {
				return token{}, &SyntaxError{Line: line, Col: col, Message: "unterminated escape"}
			}
			e := l.advance()
			switch e {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case 'r':
				b.WriteByte('\r')
			case '\\', '"', '\'':
				b.WriteByte(e)
			default:
				return token{}, &SyntaxError{Line: line, Col: col,
					Message: fmt.Sprintf("unknown escape \\%c", e)}
			}
			continue
		}
		b.WriteByte(c)
	}
	return token{kind: tokString, text: b.String(), str: b.String(), line: line, col: col}, nil
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

// lexAll tokenizes the whole source, used by the parser.
func lexAll(src string) ([]token, error) {
	l := newLexer(src)
	var toks []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.kind == tokEOF {
			return toks, nil
		}
	}
}
