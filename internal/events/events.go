// Package events is the push-based async plane of the container: a small,
// dependency-free event bus that turns JobManager state transitions into
// per-topic streams, plus the Server-Sent Events wire codec that carries
// them over plain HTTP (DESIGN.md §5g).
//
// The design goals, in order:
//
//  1. Publishers never block.  A slow or stalled subscriber must not be
//     able to hold up a job-state transition; when a subscriber's buffer
//     fills, its queue is coalesced down to a single "state changed,
//     re-fetch" sync event instead of applying backpressure.
//  2. Unwatched topics are free.  Topic state is created on first
//     Subscribe, never on Publish, so the common case — a job nobody is
//     streaming — pays one map lookup per transition and marshals nothing.
//  3. Reconnects don't lose events.  Each topic keeps a small ring buffer
//     of recent events; a subscriber resuming with the last event ID it saw
//     gets the gap replayed, or a sync event if the ring has wrapped past
//     it.
package events

import (
	"bufio"
	"io"
	"strconv"
	"strings"
)

// Event types carried on the bus.  The type names the JSON shape of Data:
// a decorated core.Job, core.Sweep, or service-change notice.  TypeSync
// carries no data: it tells the consumer its view may be stale and it
// should re-fetch the resource (emitted when a subscriber fell behind or a
// resumed ring no longer covers its Last-Event-ID).
const (
	TypeJob     = "job"
	TypeSweep   = "sweep"
	TypeService = "service"
	TypeSync    = "sync"
)

// Event is one bus message.  ID is a per-topic 1-based sequence number —
// it is the SSE event id, and subscribers resume by presenting the last ID
// they saw.  End marks the topic's final event (a terminal job or sweep
// state); SSE handlers close the stream after writing it.
type Event struct {
	ID   uint64
	Type string
	Data []byte
	End  bool
}

// Topic name constructors.  Topics are flat strings; these helpers keep
// the namespaces from colliding.

// JobTopic returns the topic carrying one job's state transitions.
func JobTopic(jobID string) string { return "job/" + jobID }

// SweepTopic returns the topic carrying one sweep's aggregate updates.
func SweepTopic(sweepID string) string { return "sweep/" + sweepID }

// ServiceTopic returns the per-service feed: every job transition of the
// service, sweep submissions, and deploy/undeploy notices.
func ServiceTopic(service string) string { return "service/" + service }

// endMarker is the comment line that carries Event.End on the wire.  SSE has
// no standard field for "this stream is complete", and intermediaries (the
// federation gateway) must know whether an upstream close was a terminal end
// or an idle timeout without parsing the JSON payload.  Browsers and
// spec-conforming parsers ignore comment lines, so the marker is invisible to
// EventSource while round-tripping End through WriteEvent/Scanner.
const endMarker = ": end"

// WriteEvent writes one event as an SSE frame.  Data may contain newlines;
// each line becomes its own data: field per the SSE spec.  A set End flag is
// encoded as a ": end" comment inside the frame, so the flag survives
// proxying through another SSE hop.
func WriteEvent(w io.Writer, ev Event) error {
	var b strings.Builder
	if ev.End {
		b.WriteString(endMarker)
		b.WriteByte('\n')
	}
	if ev.ID > 0 {
		b.WriteString("id: ")
		b.WriteString(strconv.FormatUint(ev.ID, 10))
		b.WriteByte('\n')
	}
	if ev.Type != "" {
		b.WriteString("event: ")
		b.WriteString(ev.Type)
		b.WriteByte('\n')
	}
	if len(ev.Data) == 0 {
		// EventSource drops frames with no data field entirely; give
		// data-less events (sync) an empty object so they are delivered.
		b.WriteString("data: {}\n")
	} else {
		for _, line := range strings.Split(string(ev.Data), "\n") {
			b.WriteString("data: ")
			b.WriteString(line)
			b.WriteByte('\n')
		}
	}
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}

// Scanner parses an SSE stream into Events.  It implements the subset of
// the EventSource grammar the container emits: id/event/data/retry fields,
// comment lines, and blank-line dispatch.
type Scanner struct {
	r *bufio.Reader
}

// NewScanner wraps an SSE response body.
func NewScanner(r io.Reader) *Scanner {
	return &Scanner{r: bufio.NewReader(r)}
}

// Next returns the next complete event frame.  io.EOF reports the end of
// the stream; a partial trailing frame is discarded.
func (s *Scanner) Next() (Event, error) {
	var ev Event
	var data []byte
	seen := false
	for {
		line, err := s.r.ReadString('\n')
		if err != nil {
			if err == io.EOF && line != "" {
				err = io.ErrUnexpectedEOF
			}
			return Event{}, err
		}
		line = strings.TrimRight(line, "\r\n")
		if line == "" {
			if !seen {
				continue // stray blank line, no frame pending
			}
			ev.Data = data
			return ev, nil
		}
		if strings.HasPrefix(line, ":") {
			if line == endMarker {
				ev.End = true
				seen = true
			}
			continue // other comments are keep-alives
		}
		field, value, _ := strings.Cut(line, ":")
		value = strings.TrimPrefix(value, " ")
		switch field {
		case "id":
			if n, perr := strconv.ParseUint(value, 10, 64); perr == nil {
				ev.ID = n
				seen = true
			}
		case "event":
			ev.Type = value
			seen = true
		case "data":
			if data != nil {
				data = append(data, '\n')
			}
			data = append(data, value...)
			seen = true
		default:
			// retry hints and unknown fields are ignored, as the SSE spec
			// requires; the Go client paces its own reconnects.
		}
	}
}
