package events

import (
	"bytes"
	"strings"
	"testing"
)

// The End flag must survive an SSE hop: WriteEvent encodes it as a comment
// line (invisible to browsers) and Scanner decodes it back, so the
// federation gateway can relay terminal frames without parsing payloads.
func TestEndFlagRoundTripsThroughWire(t *testing.T) {
	var buf bytes.Buffer
	in := Event{ID: 7, Type: TypeJob, Data: []byte(`{"state":"DONE"}`), End: true}
	if err := WriteEvent(&buf, in); err != nil {
		t.Fatalf("WriteEvent: %v", err)
	}
	if !strings.Contains(buf.String(), ": end\n") {
		t.Fatalf("wire frame missing end marker:\n%s", buf.String())
	}
	out, err := NewScanner(&buf).Next()
	if err != nil {
		t.Fatalf("Next: %v", err)
	}
	if !out.End || out.ID != 7 || out.Type != TypeJob || string(out.Data) != `{"state":"DONE"}` {
		t.Fatalf("round trip mangled the event: %+v", out)
	}
}

func TestNonTerminalFrameCarriesNoEndMarker(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteEvent(&buf, Event{ID: 1, Type: TypeJob, Data: []byte(`{}`)}); err != nil {
		t.Fatalf("WriteEvent: %v", err)
	}
	if strings.Contains(buf.String(), ": end") {
		t.Fatalf("non-terminal frame carries end marker:\n%s", buf.String())
	}
	out, err := NewScanner(&buf).Next()
	if err != nil {
		t.Fatalf("Next: %v", err)
	}
	if out.End {
		t.Fatal("End decoded true for a non-terminal frame")
	}
}
