package events

import (
	"sync"
	"sync/atomic"

	"mathcloud/internal/obs"
)

// Metrics for the event plane, registered process-wide like every other
// obs series (DESIGN.md §5d).
var (
	metricSubscribers = obs.NewGauge("mc_events_subscribers",
		"Current number of event-bus subscribers across all topics.")
	metricPublished = obs.NewCounter("mc_events_published_total",
		"Events published to at least one watched topic.")
	metricDropped = obs.NewCounter("mc_events_dropped_total",
		"Events dropped from slow subscribers (coalesced into a sync event).")
)

// Options tunes a Bus.  The zero value selects the defaults.
type Options struct {
	// RingSize is how many recent events each topic retains for
	// Last-Event-ID resume.  Default 64.
	RingSize int
	// SubscriberBuffer is the per-subscriber channel capacity.  A
	// subscriber that falls further behind than this has its queue
	// coalesced to a sync event.  Default 32.
	SubscriberBuffer int
	// MaxTopics caps the number of topics with retained ring state.  When
	// exceeded, the least-recently-used topic with no live subscribers is
	// evicted (its ring is lost; resuming watchers get a sync event).
	// Default 4096.
	MaxTopics int
}

const (
	defaultRingSize         = 64
	defaultSubscriberBuffer = 32
	defaultMaxTopics        = 4096
)

// Bus is a topic-keyed fan-out of Events with bounded buffers everywhere:
// per-topic replay rings, per-subscriber channels, and a cap on live
// topics.  All methods are safe for concurrent use.  Lock order is
// Bus.mu → topic.mu; neither is ever held while calling out.
type Bus struct {
	opts Options

	clock atomic.Uint64 // logical time for topic LRU eviction

	mu     sync.RWMutex
	topics map[string]*topic
	closed bool
}

type topic struct {
	name string

	mu      sync.Mutex
	seq     uint64 // ID of the most recently published event
	ring    []Event
	next    int  // ring insertion point
	full    bool // ring has wrapped
	subs    map[*Subscriber]struct{}
	lastUse uint64 // bus.clock at last subscribe/publish, for eviction
}

// Subscriber is one attached consumer.  Receive from C; events arrive in
// publication order.  The channel is closed when the subscriber is closed,
// the bus shuts down, or — after an End event — the topic is done.
type Subscriber struct {
	// C delivers the topic's events.
	C <-chan Event
	// Seq is the topic's event sequence at subscription time; a snapshot
	// fetched immediately after subscribing reflects at least this many
	// events and can be stamped with it.
	Seq uint64

	t      *topic
	ch     chan Event
	closed bool // guarded by t.mu
}

// NewBus returns a Bus with the given options.
func NewBus(opts Options) *Bus {
	if opts.RingSize <= 0 {
		opts.RingSize = defaultRingSize
	}
	if opts.SubscriberBuffer <= 0 {
		opts.SubscriberBuffer = defaultSubscriberBuffer
	}
	if opts.MaxTopics <= 0 {
		opts.MaxTopics = defaultMaxTopics
	}
	return &Bus{opts: opts, topics: make(map[string]*topic)}
}

// Active reports whether the topic has ever been subscribed to and still
// retains state.  Publishers use it as a cheap gate to skip snapshotting
// and marshalling for unwatched resources.
func (b *Bus) Active(name string) bool {
	b.mu.RLock()
	_, ok := b.topics[name]
	b.mu.RUnlock()
	return ok
}

// Publish appends an event to the topic and fans it out to subscribers.
// It never blocks: a subscriber whose buffer is full has its oldest queued
// event replaced by a coalesced sync event.  Publishing to a topic nobody
// ever subscribed to is a no-op — topics are created by Subscribe only.
func (b *Bus) Publish(name, typ string, end bool, data []byte) {
	b.mu.RLock()
	t := b.topics[name]
	b.mu.RUnlock()
	if t == nil {
		// Nobody ever watched this resource (or the bus is closed and the
		// topic map was cleared): skip entirely.
		return
	}
	use := b.clock.Add(1)

	t.mu.Lock()
	t.seq++
	t.lastUse = use
	ev := Event{ID: t.seq, Type: typ, Data: data, End: end}
	// Retain for Last-Event-ID resume.
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, ev)
	} else {
		t.ring[t.next] = ev
		t.full = true
	}
	t.next = (t.next + 1) % cap(t.ring)
	for sub := range t.subs {
		sub.deliverLocked(ev)
	}
	t.mu.Unlock()
	metricPublished.Inc()
}

// deliverLocked enqueues ev on the subscriber, coalescing on overflow.
// Caller holds t.mu, which also serialises against Close, so sending on
// s.ch cannot race a channel close.
func (s *Subscriber) deliverLocked(ev Event) {
	if s.closed {
		return
	}
	select {
	case s.ch <- ev:
		return
	default:
	}
	// Full: drop the oldest queued event and replace the newest slot with
	// a sync marker telling the consumer to re-fetch.  The End flag must
	// survive coalescing or a terminal transition could be lost.
	end := ev.End
	select {
	case old := <-s.ch:
		end = end || old.End
		metricDropped.Inc()
	default:
	}
	// Drain left room for at least one element; if another sync is already
	// queued the second send below still fits because we just removed one.
	select {
	case s.ch <- Event{ID: ev.ID, Type: TypeSync, End: end}:
	default:
		metricDropped.Inc()
	}
}

// Subscribe attaches a consumer to the topic, creating it if needed.
// lastID is the Last-Event-ID the consumer previously saw: events after it
// still held in the topic ring are replayed into the subscriber's buffer;
// if the ring no longer covers the gap (or the topic was evicted and its
// sequence restarted) a single sync event is queued instead.  lastID 0
// means a fresh subscription with no replay — the caller is expected to
// fetch a snapshot after subscribing, which closes the missed-event race.
func (b *Bus) Subscribe(name string, lastID uint64) *Subscriber {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		ch := make(chan Event)
		close(ch)
		return &Subscriber{C: ch, ch: ch, closed: true}
	}
	t := b.topics[name]
	if t == nil {
		if len(b.topics) >= b.opts.MaxTopics {
			b.evictLocked()
		}
		t = &topic{
			name: name,
			ring: make([]Event, 0, b.opts.RingSize),
			subs: make(map[*Subscriber]struct{}),
		}
		b.topics[name] = t
	}
	use := b.clock.Add(1)
	b.mu.Unlock()

	t.mu.Lock()
	t.lastUse = use
	ch := make(chan Event, b.opts.SubscriberBuffer)
	sub := &Subscriber{C: ch, ch: ch, t: t, Seq: t.seq}
	t.subs[sub] = struct{}{}
	switch {
	case lastID == 0:
		// Fresh attach: no replay, caller snapshots.
	case lastID > t.seq:
		// The consumer saw IDs from a prior incarnation of this topic
		// (evicted ring); its position is meaningless, tell it to re-fetch.
		sub.deliverLocked(Event{ID: t.seq, Type: TypeSync})
	case lastID < t.seq:
		if replay, ok := t.replayLocked(lastID); ok {
			for _, ev := range replay {
				sub.deliverLocked(ev)
			}
		} else {
			sub.deliverLocked(Event{ID: t.seq, Type: TypeSync})
		}
	}
	t.mu.Unlock()
	metricSubscribers.Add(1)
	return sub
}

// replayLocked returns the retained events with ID > lastID, or ok=false
// when the ring has wrapped past lastID.  Caller holds t.mu.
func (t *topic) replayLocked(lastID uint64) ([]Event, bool) {
	n := len(t.ring)
	if n == 0 {
		return nil, false
	}
	oldest := t.ring[0].ID
	if t.full {
		oldest = t.ring[t.next].ID
	}
	if lastID < oldest-1 {
		return nil, false // gap: events between lastID and the ring are gone
	}
	out := make([]Event, 0, n)
	start := 0
	if t.full {
		start = t.next
	}
	for i := 0; i < n; i++ {
		ev := t.ring[(start+i)%n]
		if ev.ID > lastID {
			out = append(out, ev)
		}
	}
	return out, true
}

// evictLocked removes the least-recently-used topic that has no live
// subscribers.  Caller holds b.mu.  If every topic is actively watched
// nothing is evicted — the map grows past MaxTopics rather than cutting a
// live stream.
func (b *Bus) evictLocked() {
	var victim *topic
	var victimUse uint64
	for _, t := range b.topics {
		t.mu.Lock()
		idle := len(t.subs) == 0
		use := t.lastUse
		t.mu.Unlock()
		if !idle {
			continue
		}
		if victim == nil || use < victimUse {
			victim, victimUse = t, use
		}
	}
	if victim != nil {
		delete(b.topics, victim.name)
	}
}

// Close detaches the subscriber and closes its channel.  Safe to call more
// than once and safe concurrently with Publish.
func (s *Subscriber) Close() {
	t := s.t
	if t == nil {
		return // subscriber born closed (bus already shut down)
	}
	t.mu.Lock()
	if s.closed {
		t.mu.Unlock()
		return
	}
	s.closed = true
	delete(t.subs, s)
	close(s.ch)
	t.mu.Unlock()
	metricSubscribers.Add(-1)
}

// Close shuts the bus down: every subscriber channel is closed and all
// topic state is released.  Publish and Subscribe afterwards are safe
// no-ops (Subscribe returns an already-closed subscriber).
func (b *Bus) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	topics := b.topics
	b.topics = make(map[string]*topic)
	b.mu.Unlock()

	for _, t := range topics {
		t.mu.Lock()
		for sub := range t.subs {
			if !sub.closed {
				sub.closed = true
				close(sub.ch)
				metricSubscribers.Add(-1)
			}
		}
		t.subs = make(map[*Subscriber]struct{})
		t.mu.Unlock()
	}
}
