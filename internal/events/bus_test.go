package events

import (
	"bytes"
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"
	"time"
)

// recv pulls one event with a timeout so a broken bus fails the test
// instead of hanging it.
func recv(t *testing.T, sub *Subscriber) Event {
	t.Helper()
	select {
	case ev, ok := <-sub.C:
		if !ok {
			t.Fatal("subscriber channel closed unexpectedly")
		}
		return ev
	case <-time.After(2 * time.Second):
		t.Fatal("timed out waiting for event")
	}
	panic("unreachable")
}

func TestPublishUnwatchedTopicIsNoOp(t *testing.T) {
	b := NewBus(Options{})
	if b.Active("job/nobody") {
		t.Fatal("unsubscribed topic reported active")
	}
	// Must not create topic state or panic.
	b.Publish("job/nobody", TypeJob, true, []byte(`{}`))
	if b.Active("job/nobody") {
		t.Fatal("Publish created a topic; topics must be created by Subscribe only")
	}
}

func TestSubscribePublishOrder(t *testing.T) {
	b := NewBus(Options{})
	defer b.Close()
	sub := b.Subscribe("job/a", 0)
	defer sub.Close()
	if sub.Seq != 0 {
		t.Fatalf("fresh topic Seq = %d, want 0", sub.Seq)
	}
	for i := 1; i <= 3; i++ {
		b.Publish("job/a", TypeJob, i == 3, []byte(fmt.Sprintf(`{"n":%d}`, i)))
	}
	for i := 1; i <= 3; i++ {
		ev := recv(t, sub)
		if ev.ID != uint64(i) || ev.Type != TypeJob {
			t.Fatalf("event %d = {ID:%d Type:%q}", i, ev.ID, ev.Type)
		}
		if want := i == 3; ev.End != want {
			t.Fatalf("event %d End = %v, want %v", i, ev.End, want)
		}
	}
}

// TestSlowSubscriberCoalesces proves the bus never blocks a publisher: a
// consumer that stops draining has its overflow folded into a single sync
// event, and a terminal End flag survives the fold.
func TestSlowSubscriberCoalesces(t *testing.T) {
	b := NewBus(Options{SubscriberBuffer: 2})
	defer b.Close()
	sub := b.Subscribe("sweep/s", 0)
	defer sub.Close()

	// Fill the buffer and then keep publishing; the final publish is
	// terminal and must not be lost.
	for i := 0; i < 10; i++ {
		b.Publish("sweep/s", TypeSweep, false, []byte(`{"i":1}`))
	}
	b.Publish("sweep/s", TypeSweep, true, []byte(`{"done":true}`))

	sawSync, sawEnd := false, false
	for i := 0; i < 2+1; i++ { // buffer capacity worth of frames at most
		select {
		case ev := <-sub.C:
			if ev.Type == TypeSync {
				sawSync = true
			}
			if ev.End {
				sawEnd = true
			}
		case <-time.After(time.Second):
			t.Fatalf("starved after %d events (sync=%v end=%v)", i, sawSync, sawEnd)
		}
		if sawEnd {
			break
		}
	}
	if !sawSync {
		t.Fatal("overflow did not coalesce into a sync event")
	}
	if !sawEnd {
		t.Fatal("terminal End flag lost during coalescing")
	}
}

func TestReplayFromLastEventID(t *testing.T) {
	b := NewBus(Options{RingSize: 8})
	defer b.Close()
	// Prime the topic: the ring only exists once someone subscribed.
	first := b.Subscribe("job/r", 0)
	for i := 1; i <= 5; i++ {
		b.Publish("job/r", TypeJob, false, []byte(fmt.Sprintf(`{"n":%d}`, i)))
	}
	first.Close()

	// A consumer that saw event 2 gets 3, 4, 5 replayed.
	sub := b.Subscribe("job/r", 2)
	defer sub.Close()
	if sub.Seq != 5 {
		t.Fatalf("Seq = %d, want 5", sub.Seq)
	}
	for want := uint64(3); want <= 5; want++ {
		ev := recv(t, sub)
		if ev.ID != want || ev.Type != TypeJob {
			t.Fatalf("replayed {ID:%d Type:%q}, want ID %d", ev.ID, ev.Type, want)
		}
	}
}

func TestReplayGapYieldsSync(t *testing.T) {
	b := NewBus(Options{RingSize: 4})
	defer b.Close()
	first := b.Subscribe("job/g", 0)
	for i := 1; i <= 10; i++ { // ring holds only 7..10
		b.Publish("job/g", TypeJob, false, nil)
	}
	first.Close()

	// lastID 2 is long gone from the ring: one sync, nothing else queued.
	sub := b.Subscribe("job/g", 2)
	defer sub.Close()
	ev := recv(t, sub)
	if ev.Type != TypeSync {
		t.Fatalf("gap resume delivered %q, want sync", ev.Type)
	}
	select {
	case extra := <-sub.C:
		t.Fatalf("unexpected extra event after sync: %+v", extra)
	default:
	}

	// lastID beyond the topic's sequence (prior incarnation): also sync.
	sub2 := b.Subscribe("job/g", 99)
	defer sub2.Close()
	if ev := recv(t, sub2); ev.Type != TypeSync {
		t.Fatalf("future resume delivered %q, want sync", ev.Type)
	}
}

// TestUnsubscribeDuringPublish hammers subscribe/close against a hot
// publisher; run with -race.
func TestUnsubscribeDuringPublish(t *testing.T) {
	b := NewBus(Options{SubscriberBuffer: 1})
	defer b.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				b.Publish("job/hot", TypeJob, false, []byte(`{}`))
			}
		}
	}()
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				sub := b.Subscribe("job/hot", 0)
				// Drain a little, then detach mid-stream.
				select {
				case <-sub.C:
				default:
				}
				sub.Close()
				sub.Close() // idempotent
			}
		}()
	}
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
}

// TestBusCloseReleasesSubscribers proves Close unblocks every stream and
// later operations are safe no-ops.
func TestBusCloseReleasesSubscribers(t *testing.T) {
	b := NewBus(Options{})
	subs := make([]*Subscriber, 5)
	for i := range subs {
		subs[i] = b.Subscribe(fmt.Sprintf("job/%d", i), 0)
	}
	done := make(chan struct{})
	go func() {
		for _, sub := range subs {
			for range sub.C {
			}
		}
		close(done)
	}()
	b.Close()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Close did not release blocked subscribers")
	}

	b.Close() // idempotent
	b.Publish("job/0", TypeJob, false, nil)
	late := b.Subscribe("job/0", 0)
	if _, ok := <-late.C; ok {
		t.Fatal("subscriber on a closed bus received an event")
	}
	late.Close() // born-closed close is a no-op
}

// TestTopicEviction verifies subscriber-free topics are recycled LRU-first
// once the cap is reached, and resuming watchers of an evicted topic are
// told to re-sync rather than silently missing events.
func TestTopicEviction(t *testing.T) {
	b := NewBus(Options{MaxTopics: 2})
	defer b.Close()
	b.Subscribe("job/old", 0).Close()
	b.Publish("job/old", TypeJob, false, nil) // seq 1
	b.Subscribe("job/new", 0).Close()

	// Third topic forces eviction of job/old (least recently used, idle).
	b.Subscribe("job/extra", 0).Close()
	if b.Active("job/old") {
		t.Fatal("LRU idle topic not evicted at cap")
	}
	if !b.Active("job/new") || !b.Active("job/extra") {
		t.Fatal("wrong topic evicted")
	}

	// Resuming against the recreated topic: the consumer's lastID is from a
	// prior incarnation, so it gets a sync.
	sub := b.Subscribe("job/old", 1)
	defer sub.Close()
	if ev := recv(t, sub); ev.Type != TypeSync {
		t.Fatalf("resume after eviction delivered %q, want sync", ev.Type)
	}
}

// TestLiveTopicsSurviveEviction: if every topic has a live subscriber the
// bus grows past the cap instead of cutting a stream.
func TestLiveTopicsSurviveEviction(t *testing.T) {
	b := NewBus(Options{MaxTopics: 2})
	defer b.Close()
	s1 := b.Subscribe("job/a", 0)
	defer s1.Close()
	s2 := b.Subscribe("job/b", 0)
	defer s2.Close()
	s3 := b.Subscribe("job/c", 0)
	defer s3.Close()
	if !b.Active("job/a") || !b.Active("job/b") || !b.Active("job/c") {
		t.Fatal("a live topic was evicted")
	}
}

func TestWriteEventScannerRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := []Event{
		{ID: 1, Type: TypeJob, Data: []byte(`{"state":"RUNNING"}`)},
		{ID: 2, Type: TypeSync}, // data-less: must still dispatch
		{ID: 3, Type: TypeSweep, Data: []byte("line1\nline2")},
	}
	for _, ev := range in {
		if err := WriteEvent(&buf, ev); err != nil {
			t.Fatal(err)
		}
	}
	// Interleave spec noise the scanner must skip.
	stream := "retry: 1000\n\n: keep-alive\n\n" + buf.String()
	sc := NewScanner(strings.NewReader(stream))

	got0, err := sc.Next()
	if err != nil || got0.ID != 1 || got0.Type != TypeJob || string(got0.Data) != `{"state":"RUNNING"}` {
		t.Fatalf("frame 0 = %+v, %v", got0, err)
	}
	got1, err := sc.Next()
	if err != nil || got1.ID != 2 || got1.Type != TypeSync || string(got1.Data) != "{}" {
		t.Fatalf("frame 1 = %+v, %v", got1, err)
	}
	got2, err := sc.Next()
	if err != nil || got2.ID != 3 || string(got2.Data) != "line1\nline2" {
		t.Fatalf("frame 2 = %+v, %v", got2, err)
	}
	if _, err := sc.Next(); err != io.EOF {
		t.Fatalf("end of stream = %v, want io.EOF", err)
	}

	// A partial trailing frame is a broken connection, not a clean end.
	sc = NewScanner(strings.NewReader("id: 4\nevent: job\ndata: {"))
	if _, err := sc.Next(); err != io.ErrUnexpectedEOF {
		t.Fatalf("partial frame = %v, want io.ErrUnexpectedEOF", err)
	}
}
