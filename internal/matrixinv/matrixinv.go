// Package matrixinv implements the paper's flagship application:
// "error-free" inversion of ill-conditioned (Hilbert) matrices in a
// distributed computing system of RESTful services of computer algebra.
//
// The input matrix is decomposed into 2×2 blocks and inverted via the
// Schur complement; every elementary operation (submatrix extraction,
// inversion, multiplication, addition, negation, assembly) is a call to a
// CAS computational web service (internal/cas), and the whole computation
// is described as a MathCloud workflow executed by the workflow engine —
// exactly the shape of the original application.  The package also
// provides the drivers that regenerate Table 2 (serial vs parallel times
// and speedups) and the platform-overhead measurement of Section 4.
package matrixinv

import (
	"bytes"
	"context"
	"fmt"
	"time"

	"mathcloud/internal/client"
	"mathcloud/internal/core"
	"mathcloud/internal/ratmat"
	"mathcloud/internal/workflow"
)

// ResolveMatrix decodes a matrix value returned by a CAS service: either
// an inline JSON value or a file reference, which is fetched over HTTP and
// parsed with the ratmat text codec.  Large results travel as files per
// the unified API.
func ResolveMatrix(ctx context.Context, v any) (*ratmat.Matrix, error) {
	if _, isRef := core.FileRefID(v); isRef {
		data, err := client.Default().FetchFile(ctx, v)
		if err != nil {
			return nil, fmt.Errorf("matrixinv: fetch matrix file: %w", err)
		}
		return ratmat.ReadText(bytes.NewReader(data))
	}
	return ratmat.FromJSON(v)
}

// casCall invokes one CAS service through the workflow Invoker.
func casCall(ctx context.Context, inv workflow.Invoker, uri, expr string, operands map[string]*ratmat.Matrix) (*ratmat.Matrix, error) {
	in := core.Values{"expr": expr}
	for name, m := range operands {
		in[name] = m.ToJSON()
	}
	out, err := inv.Call(ctx, uri, in)
	if err != nil {
		return nil, err
	}
	res, ok := out["result"]
	if !ok {
		return nil, fmt.Errorf("matrixinv: CAS service returned no result")
	}
	return ResolveMatrix(ctx, res)
}

// InvertSerial inverts the matrix with a single CAS service call — the
// "serial execution in Maxima" column of Table 2.
func InvertSerial(ctx context.Context, inv workflow.Invoker, casURI string, m *ratmat.Matrix) (*ratmat.Matrix, error) {
	return casCall(ctx, inv, casURI, "invert(A)", map[string]*ratmat.Matrix{"A": m})
}

// BuildBlockWorkflow constructs the 4-block Schur-complement inversion of
// an n×n matrix (split at k) as a MathCloud workflow whose service blocks
// call the given pool of CAS services.  Blocks are spread over the pool
// round-robin so independent operations land on different services.
func BuildBlockWorkflow(name string, casURIs []string, n, k int) (*workflow.Workflow, error) {
	if n < 2 || k <= 0 || k >= n {
		return nil, fmt.Errorf("matrixinv: invalid split %d of order %d", k, n)
	}
	if len(casURIs) == 0 {
		return nil, fmt.Errorf("matrixinv: empty CAS service pool")
	}
	next := 0
	pick := func() string {
		uri := casURIs[next%len(casURIs)]
		next++
		return uri
	}
	wf := &workflow.Workflow{
		Name:        name,
		Title:       fmt.Sprintf("Block inversion of a %dx%d matrix", n, n),
		Description: "Error-free matrix inversion by 2x2 block decomposition and Schur complement over CAS services.",
		Blocks: []workflow.Block{
			{ID: "matrix", Type: workflow.BlockInput, Name: "matrix",
				Title: "matrix to invert"},
		},
	}
	// svc adds one CAS service block with the given expression and
	// operand wiring (operand port -> source "block.port").
	svc := func(id, expr string, wires map[string]string) {
		b := workflow.Block{
			ID:      id,
			Type:    workflow.BlockService,
			Service: pick(),
			Params:  core.Values{"expr": expr},
		}
		wf.Blocks = append(wf.Blocks, b)
		for port, from := range wires {
			wf.Edges = append(wf.Edges, workflow.Edge{
				From: splitRef(from),
				To:   workflow.PortRef{Block: id, Port: port},
			})
		}
	}
	sub := func(id string, r0, r1, c0, c1 int) {
		svc(id, fmt.Sprintf("submatrix(A,%d,%d,%d,%d)", r0, r1, c0, c1),
			map[string]string{"A": "matrix.value"})
	}
	sub("blockA", 0, k, 0, k)
	sub("blockB", 0, k, k, n)
	sub("blockC", k, n, 0, k)
	sub("blockD", k, n, k, n)

	svc("invA", "invert(A)", map[string]string{"A": "blockA.result"})
	svc("CAinv", "A*B", map[string]string{"A": "blockC.result", "B": "invA.result"})
	svc("AinvB", "A*B", map[string]string{"A": "invA.result", "B": "blockB.result"})
	svc("CAinvB", "A*B", map[string]string{"A": "CAinv.result", "B": "blockB.result"})
	svc("schur", "A-B", map[string]string{"A": "blockD.result", "B": "CAinvB.result"})
	svc("invS", "invert(A)", map[string]string{"A": "schur.result"})
	svc("AinvBSinv", "A*B", map[string]string{"A": "AinvB.result", "B": "invS.result"})
	svc("SinvCAinv", "A*B", map[string]string{"A": "invS.result", "B": "CAinv.result"})
	svc("corr", "A*B", map[string]string{"A": "AinvBSinv.result", "B": "CAinv.result"})
	svc("topLeft", "A+B", map[string]string{"A": "invA.result", "B": "corr.result"})
	svc("topRight", "-A", map[string]string{"A": "AinvBSinv.result"})
	svc("bottomLeft", "-A", map[string]string{"A": "SinvCAinv.result"})
	svc("assembled", "assemble(A,B,C,D)", map[string]string{
		"A": "topLeft.result", "B": "topRight.result",
		"C": "bottomLeft.result", "D": "invS.result",
	})

	wf.Blocks = append(wf.Blocks, workflow.Block{
		ID: "inverse", Type: workflow.BlockOutput, Name: "inverse",
		Title: "exact inverse"})
	wf.Edges = append(wf.Edges, workflow.Edge{
		From: workflow.PortRef{Block: "assembled", Port: "result"},
		To:   workflow.PortRef{Block: "inverse", Port: "value"},
	})
	return wf, nil
}

func splitRef(s string) workflow.PortRef {
	for i := 0; i < len(s); i++ {
		if s[i] == '.' {
			return workflow.PortRef{Block: s[:i], Port: s[i+1:]}
		}
	}
	return workflow.PortRef{Block: s}
}

// InvertParallel runs the 4-block workflow with the engine and returns the
// exact inverse — the "parallel execution in MathCloud" column of Table 2.
func InvertParallel(ctx context.Context, inv workflow.Invoker, desc workflow.Describer,
	casURIs []string, m *ratmat.Matrix) (*ratmat.Matrix, error) {

	n := m.Rows()
	wf, err := BuildBlockWorkflow("block-inverse", casURIs, n, n/2)
	if err != nil {
		return nil, err
	}
	engine := &workflow.Engine{Invoker: inv, Describer: desc}
	out, err := engine.Run(ctx, wf, core.Values{"matrix": m.ToJSON()})
	if err != nil {
		return nil, err
	}
	return ResolveMatrix(ctx, out["inverse"])
}

// Row is one line of the Table 2 reproduction.
type Row struct {
	// N is the Hilbert matrix order.
	N int
	// Serial is the single-service inversion wall time.
	Serial time.Duration
	// Parallel is the 4-block workflow wall time over the service pool.
	Parallel time.Duration
	// Speedup is Serial/Parallel.
	Speedup float64
}

// RunTable2 reproduces Table 2 over the given CAS service pool for the
// given Hilbert orders, verifying every inverse exactly against the
// closed-form Hilbert inverse.
func RunTable2(ctx context.Context, inv workflow.Invoker, desc workflow.Describer,
	casURIs []string, orders []int) ([]Row, error) {

	rows := make([]Row, 0, len(orders))
	for _, n := range orders {
		h := ratmat.Hilbert(n)
		want := ratmat.HilbertInverse(n)

		start := time.Now()
		serialInv, err := InvertSerial(ctx, inv, casURIs[0], h)
		if err != nil {
			return nil, fmt.Errorf("matrixinv: serial n=%d: %w", n, err)
		}
		serial := time.Since(start)
		if !serialInv.Equal(want) {
			return nil, fmt.Errorf("matrixinv: serial n=%d: wrong inverse", n)
		}

		start = time.Now()
		parInv, err := InvertParallel(ctx, inv, desc, casURIs, h)
		if err != nil {
			return nil, fmt.Errorf("matrixinv: parallel n=%d: %w", n, err)
		}
		parallel := time.Since(start)
		if !parInv.Equal(want) {
			return nil, fmt.Errorf("matrixinv: parallel n=%d: wrong inverse", n)
		}

		rows = append(rows, Row{
			N:        n,
			Serial:   serial,
			Parallel: parallel,
			Speedup:  float64(serial) / float64(parallel),
		})
	}
	return rows, nil
}

// Overhead measures the platform overhead of Section 4: the wall time of
// the distributed block inversion versus the same block algorithm run
// in-process with identical parallel structure.  The difference is
// request handling, JSON transport and queueing — the paper reports
// "about 2-5% of total computing time".
type Overhead struct {
	N         int
	Platform  time.Duration // via services
	Pure      time.Duration // in-process LocalOps
	Percent   float64       // (Platform-Pure)/Platform * 100
	DataBytes int64         // matrix text size moved per full run (approx)
}

// MeasureOverhead runs the comparison for one Hilbert order.
func MeasureOverhead(ctx context.Context, inv workflow.Invoker, desc workflow.Describer,
	casURIs []string, n int) (Overhead, error) {

	h := ratmat.Hilbert(n)

	start := time.Now()
	platformInv, err := InvertParallel(ctx, inv, desc, casURIs, h)
	if err != nil {
		return Overhead{}, err
	}
	platform := time.Since(start)

	start = time.Now()
	pureInv, err := ratmat.BlockInverse(ctx, ratmat.LocalOps{}, h, n/2)
	if err != nil {
		return Overhead{}, err
	}
	pure := time.Since(start)

	if !platformInv.Equal(pureInv) {
		return Overhead{}, fmt.Errorf("matrixinv: overhead n=%d: results differ", n)
	}
	pct := 0.0
	if platform > 0 {
		pct = 100 * float64(platform-pure) / float64(platform)
	}
	return Overhead{
		N:         n,
		Platform:  platform,
		Pure:      pure,
		Percent:   pct,
		DataBytes: h.TextSize() + platformInv.TextSize(),
	}, nil
}
