package matrixinv_test

import (
	"context"
	"math/big"
	"strings"
	"testing"

	"mathcloud/internal/cas"
	"mathcloud/internal/core"
	"mathcloud/internal/matrixinv"
	"mathcloud/internal/platform"
	"mathcloud/internal/ratmat"
	"mathcloud/internal/workflow"
)

// startCASPool deploys a pool of CAS services and returns their URIs.
func startCASPool(t *testing.T, count int) (*platform.Deployment, []string) {
	t.Helper()
	d, err := platform.StartLocal(platform.Options{Workers: 2 * count})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	names, err := cas.Deploy(d.Container, "maxima", count)
	if err != nil {
		t.Fatal(err)
	}
	uris := make([]string, len(names))
	for i, n := range names {
		uris[i] = d.Container.ServiceURI(n)
	}
	return d, uris
}

func TestInvertSerialViaService(t *testing.T) {
	_, uris := startCASPool(t, 1)
	inv := &workflow.HTTPInvoker{}
	got, err := matrixinv.InvertSerial(context.Background(), inv, uris[0], ratmat.Hilbert(8))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(ratmat.HilbertInverse(8)) {
		t.Error("serial service inversion is wrong")
	}
}

func TestInvertParallelWorkflow(t *testing.T) {
	_, uris := startCASPool(t, 4)
	inv := &workflow.HTTPInvoker{}
	got, err := matrixinv.InvertParallel(context.Background(), inv, inv, uris, ratmat.Hilbert(10))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(ratmat.HilbertInverse(10)) {
		t.Error("parallel workflow inversion is wrong")
	}
}

func TestBlockWorkflowIsValidAndPublishable(t *testing.T) {
	d, uris := startCASPool(t, 4)
	wf, err := matrixinv.BuildBlockWorkflow("hilbert-inverse", uris, 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	inv := &workflow.HTTPInvoker{}
	if err := wf.Check(inv); err != nil {
		t.Fatalf("workflow invalid: %v", err)
	}
	// Round-trip through the JSON document format, as the editor does.
	data, err := wf.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := workflow.Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	engine := &workflow.Engine{Invoker: inv, Describer: inv}
	out, err := engine.Run(context.Background(), back, core.Values{
		"matrix": ratmat.Hilbert(6).ToJSON(),
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := ratmat.FromJSON(out["inverse"])
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(ratmat.HilbertInverse(6)) {
		t.Error("round-tripped workflow produced a wrong inverse")
	}
	_ = d
}

func TestRunTable2SmallOrders(t *testing.T) {
	if testing.Short() {
		t.Skip("table 2 driver is slow")
	}
	_, uris := startCASPool(t, 4)
	inv := &workflow.HTTPInvoker{}
	rows, err := matrixinv.RunTable2(context.Background(), inv, inv, uris, []int{8, 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	for _, r := range rows {
		if r.Serial <= 0 || r.Parallel <= 0 || r.Speedup <= 0 {
			t.Errorf("row %+v has non-positive measurements", r)
		}
	}
}

func TestMeasureOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("overhead driver is slow")
	}
	_, uris := startCASPool(t, 4)
	inv := &workflow.HTTPInvoker{}
	o, err := matrixinv.MeasureOverhead(context.Background(), inv, inv, uris, 16)
	if err != nil {
		t.Fatal(err)
	}
	if o.Platform <= 0 || o.Pure <= 0 {
		t.Errorf("non-positive timings: %+v", o)
	}
	if o.Percent >= 100 {
		t.Errorf("overhead percent %v out of range", o.Percent)
	}
}

func TestBuildBlockWorkflowRejectsBadSplit(t *testing.T) {
	if _, err := matrixinv.BuildBlockWorkflow("w", []string{"svc://x"}, 4, 0); err == nil {
		t.Error("accepted split 0")
	}
	if _, err := matrixinv.BuildBlockWorkflow("w", []string{"svc://x"}, 4, 4); err == nil {
		t.Error("accepted split n")
	}
	if _, err := matrixinv.BuildBlockWorkflow("w", nil, 4, 2); err == nil {
		t.Error("accepted empty pool")
	}
}

// TestLargeResultTravelsAsFile exercises the file-resource path: a matrix
// whose text encoding exceeds cas.FileThreshold must come back as a file
// reference, and ResolveMatrix must reconstruct it exactly.
func TestLargeResultTravelsAsFile(t *testing.T) {
	_, uris := startCASPool(t, 1)
	inv := &workflow.HTTPInvoker{}
	ctx := context.Background()

	// hilbert(300) is cheap to build but its text encoding (~0.5 MB)
	// exceeds the threshold.
	out, err := inv.Call(ctx, uris[0], core.Values{"expr": "hilbert(300)"})
	if err != nil {
		t.Fatal(err)
	}
	ref, ok := out["result"].(string)
	if !ok || !strings.HasPrefix(ref, core.FileRefPrefix) {
		t.Fatalf("result = %T, want a file reference", out["result"])
	}
	m, err := matrixinv.ResolveMatrix(ctx, out["result"])
	if err != nil {
		t.Fatal(err)
	}
	if !m.Equal(ratmat.Hilbert(300)) {
		t.Error("file-transported matrix differs from hilbert(300)")
	}
}

// TestFileRefFlowsThroughWorkflow feeds a file-resource matrix from one
// CAS call into another through workflow edges.
func TestFileRefFlowsThroughWorkflow(t *testing.T) {
	_, uris := startCASPool(t, 2)
	inv := &workflow.HTTPInvoker{}
	ctx := context.Background()

	// First call yields a big matrix as a file ref...
	out, err := inv.Call(ctx, uris[0], core.Values{"expr": "hilbert(300)"})
	if err != nil {
		t.Fatal(err)
	}
	// ...which the second call accepts as an operand: the container
	// stages the file and the CAS reads the text codec.
	out2, err := inv.Call(ctx, uris[1], core.Values{
		"expr": "trace(A)", "A": out["result"],
	})
	if err != nil {
		t.Fatal(err)
	}
	want := ratmat.Hilbert(300)
	trace := "0"
	{
		sum := new(big.Rat)
		for i := 0; i < 300; i++ {
			sum.Add(sum, want.At(i, i))
		}
		trace = sum.RatString()
	}
	if out2["result"] != trace {
		t.Errorf("trace = %v, want %s", out2["result"], trace)
	}
}
