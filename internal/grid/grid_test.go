package grid

import (
	"context"
	"encoding/json"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"mathcloud/internal/adapter"
	"mathcloud/internal/core"
	"mathcloud/internal/torque"
)

func newSite(t *testing.T, name string, reliability float64, vos ...string) *Site {
	t.Helper()
	if len(vos) == 0 {
		vos = []string{"mathcloud"}
	}
	c, err := torque.New(name, []torque.NodeSpec{{Name: name + "-n1", Slots: 4}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return &Site{Name: name, Cluster: c, VOs: vos, Reliability: reliability}
}

func TestJobRunsOnReliableGrid(t *testing.T) {
	g, err := New([]*Site{newSite(t, "a", 1.0), newSite(t, "b", 1.0)}, 1)
	if err != nil {
		t.Fatal(err)
	}
	ran := atomic.Bool{}
	id, err := g.Submit(JobSpec{Name: "j", VO: "mathcloud", Run: func(ctx context.Context) error {
		ran.Store(true)
		return nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	info, err := g.Wait(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	if info.State != StateDone || !ran.Load() {
		t.Errorf("state = %s ran = %v err = %s", info.State, ran.Load(), info.Error)
	}
	if info.Site != "a" && info.Site != "b" {
		t.Errorf("site = %q", info.Site)
	}
}

func TestBrokerRetriesUnreliableSites(t *testing.T) {
	// Site reliability 0: every submission fails, but with enough
	// retries the job must eventually abort with the retry message.
	g, err := New([]*Site{newSite(t, "flaky", 0.0)}, 7)
	if err != nil {
		t.Fatal(err)
	}
	id, err := g.Submit(JobSpec{VO: "mathcloud", MaxRetries: 3, Run: func(ctx context.Context) error {
		return nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	info, err := g.Wait(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	if info.State != StateAborted {
		t.Errorf("state = %s, want ABORTED", info.State)
	}
	if info.Attempts != 4 { // initial + 3 retries
		t.Errorf("attempts = %d, want 4", info.Attempts)
	}
}

func TestRetriesEventuallySucceed(t *testing.T) {
	// 50% reliability with many retries: over this seed the job lands.
	g, err := New([]*Site{newSite(t, "meh", 0.5)}, 3)
	if err != nil {
		t.Fatal(err)
	}
	id, _ := g.Submit(JobSpec{VO: "mathcloud", MaxRetries: 20, Run: func(ctx context.Context) error {
		return nil
	}})
	info, err := g.Wait(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	if info.State != StateDone {
		t.Errorf("state = %s (%s)", info.State, info.Error)
	}
}

func TestVOFiltering(t *testing.T) {
	g, err := New([]*Site{newSite(t, "physics-only", 1.0, "physics")}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Submit(JobSpec{VO: "mathcloud", Run: func(ctx context.Context) error { return nil }}); err == nil {
		t.Error("job submitted to a grid with no matching VO")
	}
}

func TestPayloadErrorsAreNotRetried(t *testing.T) {
	attempts := atomic.Int32{}
	g, err := New([]*Site{newSite(t, "ok", 1.0)}, 1)
	if err != nil {
		t.Fatal(err)
	}
	id, _ := g.Submit(JobSpec{VO: "mathcloud", MaxRetries: 5, Run: func(ctx context.Context) error {
		attempts.Add(1)
		return fmt.Errorf("application bug")
	}})
	info, err := g.Wait(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	if info.State != StateAborted {
		t.Errorf("state = %s", info.State)
	}
	if attempts.Load() != 1 {
		t.Errorf("payload ran %d times; application failures must not be resubmitted", attempts.Load())
	}
}

func TestCancelGridJob(t *testing.T) {
	g, err := New([]*Site{newSite(t, "a", 1.0)}, 1)
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan struct{})
	id, _ := g.Submit(JobSpec{VO: "mathcloud", Run: func(ctx context.Context) error {
		close(started)
		<-ctx.Done()
		return ctx.Err()
	}})
	<-started
	if err := g.Cancel(id); err != nil {
		t.Fatal(err)
	}
	info, err := g.Wait(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	if info.State != StateCancelled {
		t.Errorf("state = %s", info.State)
	}
}

func TestBrokerPrefersFreeSite(t *testing.T) {
	busy := newSite(t, "busy", 1.0)
	free := newSite(t, "free", 1.0)
	// Occupy every slot of the busy site.
	release := make(chan struct{})
	defer close(release)
	for i := 0; i < 4; i++ {
		if _, err := busy.Cluster.Submit(torque.JobSpec{Run: func(ctx context.Context) error {
			<-release
			return nil
		}}); err != nil {
			t.Fatal(err)
		}
	}
	g, err := New([]*Site{busy, free}, 1)
	if err != nil {
		t.Fatal(err)
	}
	id, _ := g.Submit(JobSpec{VO: "mathcloud", Run: func(ctx context.Context) error { return nil }})
	info, err := g.Wait(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	if info.Site != "free" {
		t.Errorf("broker chose %q, want the free site", info.Site)
	}
}

func TestSubmitValidation(t *testing.T) {
	g, err := New([]*Site{newSite(t, "a", 1.0)}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Submit(JobSpec{VO: "mathcloud"}); err == nil {
		t.Error("nil payload accepted")
	}
	if _, err := g.Submit(JobSpec{Run: func(ctx context.Context) error { return nil }}); err == nil {
		t.Error("empty VO accepted")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, 1); err == nil {
		t.Error("empty grid accepted")
	}
	if _, err := New([]*Site{{Name: "x"}}, 1); err == nil {
		t.Error("site without cluster accepted")
	}
	bad := newSite(t, "bad", 1.0)
	bad.Reliability = 1.5
	if _, err := New([]*Site{bad}, 1); err == nil {
		t.Error("out-of-range reliability accepted")
	}
}

func TestGridAdapterEndToEnd(t *testing.T) {
	g, err := New([]*Site{newSite(t, "a", 1.0), newSite(t, "b", 0.9)}, 5)
	if err != nil {
		t.Fatal(err)
	}
	registry := adapter.NewRegistry()
	registry.Register("grid", NewAdapterFactory(g, registry))
	adapter.RegisterFunc("gridtest.square", func(_ context.Context, in core.Values) (core.Values, error) {
		x, _ := in["x"].(float64)
		return core.Values{"y": x * x}, nil
	})
	a, err := registry.New("grid", json.RawMessage(`{
		"vo": "mathcloud", "walltime": "30s",
		"exec": {"kind": "native", "config": {"function": "gridtest.square"}}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	var progress []string
	res, err := a.Invoke(context.Background(), &adapter.Request{
		JobID: "j", Service: "s", Inputs: core.Values{"x": 6.0},
		Progress: func(m string) { progress = append(progress, m) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outputs["y"] != 36.0 {
		t.Errorf("y = %v", res.Outputs["y"])
	}
	if len(progress) < 2 {
		t.Errorf("progress = %v, want submission and completion lines", progress)
	}
}

func TestGridAdapterConfigErrors(t *testing.T) {
	g, err := New([]*Site{newSite(t, "a", 1.0)}, 1)
	if err != nil {
		t.Fatal(err)
	}
	registry := adapter.NewRegistry()
	factory := NewAdapterFactory(g, registry)
	for _, cfg := range []string{
		`{"exec": {"kind": "native", "config": {}}}`,
		`{"vo": "x"}`,
		`{"vo": "x", "exec": {"kind": "grid", "config": {}}}`,
		`{"vo": "x", "walltime": "zzz", "exec": {"kind": "script", "config": {"script": "out.x=1"}}}`,
	} {
		if _, err := factory(json.RawMessage(cfg)); err == nil {
			t.Errorf("config %s accepted", cfg)
		}
	}
}

func TestGridAdapterCancellation(t *testing.T) {
	g, err := New([]*Site{newSite(t, "a", 1.0)}, 1)
	if err != nil {
		t.Fatal(err)
	}
	registry := adapter.NewRegistry()
	registry.Register("grid", NewAdapterFactory(g, registry))
	adapter.RegisterFunc("gridtest.sleep", func(ctx context.Context, in core.Values) (core.Values, error) {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(10 * time.Second):
			return core.Values{}, nil
		}
	})
	a, err := registry.New("grid", json.RawMessage(`{
		"vo": "mathcloud",
		"exec": {"kind": "native", "config": {"function": "gridtest.sleep"}}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, err := a.Invoke(ctx, &adapter.Request{JobID: "j", Service: "s"}); err == nil {
		t.Fatal("cancelled invocation succeeded")
	}
	if time.Since(start) > 5*time.Second {
		t.Error("cancellation hung")
	}
}
