// Package grid simulates a gLite-style grid infrastructure — multiple
// sites, virtual organisations, a resource broker with retries — and
// provides the Grid adapter that translates service requests into grid
// jobs, as the paper's platform does for the European Grid Infrastructure.
//
// Each site wraps a simulated TORQUE cluster (internal/torque), so a grid
// job passes through the full chain the real middleware exercises:
// brokering, site selection by VO and free capacity, submission to the
// site's batch system, failure and resubmission.  Site unreliability is
// driven by a seeded deterministic generator, so experiments are
// reproducible.
package grid

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"mathcloud/internal/torque"
)

// State is a gLite-style grid job state.
type State string

// Grid job states, following the gLite lifecycle.
const (
	StateSubmitted State = "SUBMITTED"
	StateWaiting   State = "WAITING"
	StateScheduled State = "SCHEDULED"
	StateRunning   State = "RUNNING"
	StateDone      State = "DONE"
	StateAborted   State = "ABORTED"
	StateCancelled State = "CANCELLED"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateAborted || s == StateCancelled
}

// Site is one grid site: a batch cluster plus grid-level metadata.
type Site struct {
	// Name is the site name, e.g. "RU-Moscow-IITP".
	Name string
	// Cluster is the site's batch system.
	Cluster *torque.Cluster
	// VOs lists the virtual organisations the site supports.
	VOs []string
	// Reliability is the probability in [0,1] that a submission to this
	// site succeeds; failures model middleware and site errors and cause
	// the broker to resubmit elsewhere.
	Reliability float64
}

func (s *Site) supportsVO(vo string) bool {
	for _, v := range s.VOs {
		if v == vo {
			return true
		}
	}
	return false
}

// JobSpec describes a grid job submission.
type JobSpec struct {
	// Name is a human-readable job name.
	Name string
	// VO is the virtual organisation the job runs under; sites not
	// supporting it are excluded by the broker.
	VO string
	// Slots and Walltime are the resource request forwarded to the
	// site's batch system.
	Slots    int
	Walltime time.Duration
	// MaxRetries bounds broker resubmissions after site failures.
	MaxRetries int
	// Run is the payload.
	Run torque.Payload
}

// JobInfo is a snapshot of a grid job.
type JobInfo struct {
	ID        string
	Name      string
	VO        string
	State     State
	Site      string
	Attempts  int
	Error     string
	Submitted time.Time
	Finished  time.Time
}

type gridJob struct {
	info   JobInfo
	spec   JobSpec
	cancel context.CancelFunc
	done   chan struct{}
}

// Infrastructure is a simulated grid of sites managed by a broker.
type Infrastructure struct {
	mu    sync.Mutex
	sites []*Site
	jobs  map[string]*gridJob
	rng   *rand.Rand
	seq   int
}

// New builds a grid from the given sites using a deterministic random seed
// for failure injection.
func New(sites []*Site, seed int64) (*Infrastructure, error) {
	if len(sites) == 0 {
		return nil, fmt.Errorf("grid: no sites")
	}
	for _, s := range sites {
		if s.Cluster == nil {
			return nil, fmt.Errorf("grid: site %q has no cluster", s.Name)
		}
		if s.Reliability < 0 || s.Reliability > 1 {
			return nil, fmt.Errorf("grid: site %q: reliability %v out of [0,1]",
				s.Name, s.Reliability)
		}
	}
	return &Infrastructure{
		sites: sites,
		jobs:  make(map[string]*gridJob),
		rng:   rand.New(rand.NewSource(seed)),
	}, nil
}

// Sites returns the site names, sorted.
func (g *Infrastructure) Sites() []string {
	names := make([]string, 0, len(g.sites))
	for _, s := range g.sites {
		names = append(names, s.Name)
	}
	sort.Strings(names)
	return names
}

// Submit hands a job to the resource broker and returns its grid job ID.
func (g *Infrastructure) Submit(spec JobSpec) (string, error) {
	if spec.Run == nil {
		return "", fmt.Errorf("grid: submit: nil payload")
	}
	if spec.VO == "" {
		return "", fmt.Errorf("grid: submit: empty VO")
	}
	if spec.Slots <= 0 {
		spec.Slots = 1
	}
	if spec.MaxRetries < 0 {
		spec.MaxRetries = 0
	}
	candidates := 0
	for _, s := range g.sites {
		if s.supportsVO(spec.VO) {
			candidates++
		}
	}
	if candidates == 0 {
		return "", fmt.Errorf("grid: submit: no site supports VO %q", spec.VO)
	}

	g.mu.Lock()
	g.seq++
	id := fmt.Sprintf("https://wms.mathcloud.example/%09d", g.seq)
	ctx, cancel := context.WithCancel(context.Background())
	j := &gridJob{
		spec: spec,
		info: JobInfo{
			ID:        id,
			Name:      spec.Name,
			VO:        spec.VO,
			State:     StateSubmitted,
			Submitted: time.Now(),
		},
		cancel: cancel,
		done:   make(chan struct{}),
	}
	g.jobs[id] = j
	g.mu.Unlock()

	go g.broker(ctx, j)
	return id, nil
}

// broker drives one job through match-making, submission and retries.
func (g *Infrastructure) broker(ctx context.Context, j *gridJob) {
	defer close(j.done)
	var lastErr error
	for attempt := 0; attempt <= j.spec.MaxRetries; attempt++ {
		if ctx.Err() != nil {
			g.setState(j, StateCancelled, "", "cancelled by user")
			return
		}
		g.setState(j, StateWaiting, "", "")
		site := g.matchSite(j.spec.VO)
		if site == nil {
			lastErr = fmt.Errorf("no matching site for VO %q", j.spec.VO)
			break
		}
		g.mu.Lock()
		j.info.Attempts = attempt + 1
		j.info.Site = site.Name
		g.mu.Unlock()
		g.setState(j, StateScheduled, site.Name, "")

		// Failure injection: the site may reject or lose the job.
		g.mu.Lock()
		failed := g.rng.Float64() > site.Reliability
		g.mu.Unlock()
		if failed {
			lastErr = fmt.Errorf("site %s failed the submission", site.Name)
			continue
		}

		batchID, err := site.Cluster.Submit(torque.JobSpec{
			Name:     j.spec.Name,
			Slots:    j.spec.Slots,
			Walltime: j.spec.Walltime,
			Run: func(runCtx context.Context) error {
				g.setState(j, StateRunning, site.Name, "")
				return j.spec.Run(runCtx)
			},
		})
		if err != nil {
			lastErr = fmt.Errorf("site %s: %w", site.Name, err)
			continue
		}
		info, err := site.Cluster.Wait(ctx, batchID)
		if err != nil {
			// The grid job was cancelled while the batch job ran.
			_ = site.Cluster.Cancel(batchID)
			g.setState(j, StateCancelled, site.Name, "cancelled by user")
			return
		}
		switch info.State {
		case torque.StateComplete:
			g.setState(j, StateDone, site.Name, "")
			return
		case torque.StateCancelled:
			g.setState(j, StateCancelled, site.Name, "cancelled by user")
			return
		default:
			lastErr = fmt.Errorf("site %s: batch job failed: %s", site.Name, info.Error)
			// Payload errors are not retried: the failure is the
			// application's, not the infrastructure's.
			g.setState(j, StateAborted, site.Name, lastErr.Error())
			return
		}
	}
	msg := "resubmission limit reached"
	if lastErr != nil {
		msg = fmt.Sprintf("%s: last error: %v", msg, lastErr)
	}
	g.setState(j, StateAborted, j.info.Site, msg)
}

// matchSite picks the VO-compatible site with the most free slots,
// breaking ties by name for determinism.
func (g *Infrastructure) matchSite(vo string) *Site {
	var best *Site
	bestFree := -1
	for _, s := range g.sites {
		if !s.supportsVO(vo) {
			continue
		}
		stats := s.Cluster.Stats()
		free := stats.TotalSlots - stats.BusySlots
		if free > bestFree || (free == bestFree && best != nil && s.Name < best.Name) {
			best, bestFree = s, free
		}
	}
	return best
}

func (g *Infrastructure) setState(j *gridJob, s State, site, errMsg string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if j.info.State.Terminal() {
		return
	}
	j.info.State = s
	if site != "" {
		j.info.Site = site
	}
	if errMsg != "" {
		j.info.Error = errMsg
	}
	if s.Terminal() {
		j.info.Finished = time.Now()
	}
}

// Status returns a snapshot of the job.
func (g *Infrastructure) Status(id string) (JobInfo, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	j, ok := g.jobs[id]
	if !ok {
		return JobInfo{}, fmt.Errorf("grid: unknown job %q", id)
	}
	return j.info, nil
}

// Cancel aborts a job.
func (g *Infrastructure) Cancel(id string) error {
	g.mu.Lock()
	j, ok := g.jobs[id]
	g.mu.Unlock()
	if !ok {
		return fmt.Errorf("grid: unknown job %q", id)
	}
	j.cancel()
	return nil
}

// Wait blocks until the job is terminal or ctx is cancelled.
func (g *Infrastructure) Wait(ctx context.Context, id string) (JobInfo, error) {
	g.mu.Lock()
	j, ok := g.jobs[id]
	g.mu.Unlock()
	if !ok {
		return JobInfo{}, fmt.Errorf("grid: unknown job %q", id)
	}
	select {
	case <-j.done:
		return g.Status(id)
	case <-ctx.Done():
		return JobInfo{}, ctx.Err()
	}
}

// ErrAborted is returned by the adapter when a grid job is aborted.
var ErrAborted = errors.New("grid: job aborted")
