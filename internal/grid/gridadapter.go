package grid

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"mathcloud/internal/adapter"
	"mathcloud/internal/torque"
)

// AdapterConfig is the internal service configuration of the Grid adapter:
// the virtual organisation, the resource request, the retry budget and the
// inner adapter executed once the job lands on a site.  In the paper this
// configuration carries the VO name and a grid job description file; the
// structure is preserved.
type AdapterConfig struct {
	// VO is the virtual organisation the job is submitted under.
	VO string `json:"vo"`
	// Slots and Walltime are the resource request.
	Slots    int    `json:"slots,omitempty"`
	Walltime string `json:"walltime,omitempty"`
	// Retries bounds broker resubmissions (default 2).
	Retries *int `json:"retries,omitempty"`
	// Exec describes the inner adapter executed on the selected site.
	Exec torque.ExecConfig `json:"exec"`
}

// Adapter translates a service request into a grid job.
type Adapter struct {
	infra    *Infrastructure
	vo       string
	slots    int
	walltime time.Duration
	retries  int
	inner    adapter.Interface
}

// NewAdapterFactory returns an adapter.Factory for kind "grid" bound to the
// given infrastructure.
func NewAdapterFactory(infra *Infrastructure, adapters *adapter.Registry) adapter.Factory {
	return func(config json.RawMessage) (adapter.Interface, error) {
		var cfg AdapterConfig
		if err := json.Unmarshal(config, &cfg); err != nil {
			return nil, fmt.Errorf("grid adapter: %w", err)
		}
		if cfg.VO == "" {
			return nil, fmt.Errorf("grid adapter: missing vo")
		}
		if cfg.Exec.Kind == "" {
			return nil, fmt.Errorf("grid adapter: missing exec adapter")
		}
		if cfg.Exec.Kind == "cluster" || cfg.Exec.Kind == "grid" {
			return nil, fmt.Errorf("grid adapter: exec adapter cannot be %q", cfg.Exec.Kind)
		}
		inner, err := adapters.New(cfg.Exec.Kind, cfg.Exec.Config)
		if err != nil {
			return nil, err
		}
		var walltime time.Duration
		if cfg.Walltime != "" {
			walltime, err = time.ParseDuration(cfg.Walltime)
			if err != nil {
				return nil, fmt.Errorf("grid adapter: walltime: %w", err)
			}
		}
		retries := 2
		if cfg.Retries != nil {
			retries = *cfg.Retries
		}
		return &Adapter{
			infra:    infra,
			vo:       cfg.VO,
			slots:    cfg.Slots,
			walltime: walltime,
			retries:  retries,
			inner:    inner,
		}, nil
	}
}

// Kind implements adapter.Interface.
func (a *Adapter) Kind() string { return "grid" }

// Invoke implements adapter.Interface.
func (a *Adapter) Invoke(ctx context.Context, req *adapter.Request) (*adapter.Result, error) {
	var (
		res *adapter.Result
		mu  sync.Mutex
	)
	id, err := a.infra.Submit(JobSpec{
		Name:       req.Service + "/" + req.JobID,
		VO:         a.vo,
		Slots:      a.slots,
		Walltime:   a.walltime,
		MaxRetries: a.retries,
		Run: func(jobCtx context.Context) error {
			r, err := a.inner.Invoke(jobCtx, req)
			if err != nil {
				return err
			}
			mu.Lock()
			res = r
			mu.Unlock()
			return nil
		},
	})
	if err != nil {
		return nil, err
	}
	if req.Progress != nil {
		req.Progress(fmt.Sprintf("submitted grid job %s (VO %s)", id, a.vo))
	}

	info, err := a.infra.Wait(ctx, id)
	if err != nil {
		_ = a.infra.Cancel(id)
		return nil, err
	}
	switch info.State {
	case StateDone:
		mu.Lock()
		defer mu.Unlock()
		if req.Progress != nil {
			req.Progress(fmt.Sprintf("grid job %s done at site %s after %d attempt(s)",
				id, info.Site, info.Attempts))
		}
		return res, nil
	case StateCancelled:
		return nil, context.Canceled
	default:
		return nil, fmt.Errorf("%w: %s", ErrAborted, info.Error)
	}
}
