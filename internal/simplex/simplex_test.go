package simplex

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

func rat(p, q int64) *big.Rat { return big.NewRat(p, q) }

func coeffs(vals ...int64) []*big.Rat {
	out := make([]*big.Rat, len(vals))
	for i, v := range vals {
		out[i] = big.NewRat(v, 1)
	}
	return out
}

func solveOK(t *testing.T, p *Problem) *Solution {
	t.Helper()
	sol, err := Solve(p)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	return sol
}

// The classic production LP: max 3x + 5y s.t. x<=4, 2y<=12, 3x+2y<=18.
// Optimum 36 at (2, 6).
func TestTextbookMaximization(t *testing.T) {
	p := NewProblem(Maximize, 2)
	p.C = coeffs(3, 5)
	p.AddConstraint(coeffs(1, 0), LE, rat(4, 1))
	p.AddConstraint(coeffs(0, 2), LE, rat(12, 1))
	p.AddConstraint(coeffs(3, 2), LE, rat(18, 1))
	sol := solveOK(t, p)
	if sol.Status != Optimal {
		t.Fatalf("status = %s", sol.Status)
	}
	if sol.Objective.Cmp(rat(36, 1)) != 0 {
		t.Errorf("objective = %s, want 36", sol.Objective.RatString())
	}
	if sol.X[0].Cmp(rat(2, 1)) != 0 || sol.X[1].Cmp(rat(6, 1)) != 0 {
		t.Errorf("x = (%s, %s), want (2, 6)", sol.X[0].RatString(), sol.X[1].RatString())
	}
}

func TestMinimizationWithGEAndEQ(t *testing.T) {
	// min 2x + 3y s.t. x + y >= 4, x = 1  → y = 3, objective 11.
	p := NewProblem(Minimize, 2)
	p.C = coeffs(2, 3)
	p.AddConstraint(coeffs(1, 1), GE, rat(4, 1))
	p.AddConstraint(coeffs(1, 0), EQ, rat(1, 1))
	sol := solveOK(t, p)
	if sol.Status != Optimal {
		t.Fatalf("status = %s", sol.Status)
	}
	if sol.Objective.Cmp(rat(11, 1)) != 0 {
		t.Errorf("objective = %s, want 11", sol.Objective.RatString())
	}
}

func TestInfeasible(t *testing.T) {
	p := NewProblem(Maximize, 1)
	p.C = coeffs(1)
	p.AddConstraint(coeffs(1), LE, rat(1, 1))
	p.AddConstraint(coeffs(1), GE, rat(2, 1))
	sol := solveOK(t, p)
	if sol.Status != Infeasible {
		t.Errorf("status = %s, want infeasible", sol.Status)
	}
}

func TestUnbounded(t *testing.T) {
	p := NewProblem(Maximize, 2)
	p.C = coeffs(1, 1)
	p.AddConstraint(coeffs(1, -1), LE, rat(1, 1))
	sol := solveOK(t, p)
	if sol.Status != Unbounded {
		t.Errorf("status = %s, want unbounded", sol.Status)
	}
}

func TestFreeVariable(t *testing.T) {
	// min x s.t. x >= -5 with x free → x = -5.
	p := NewProblem(Minimize, 1)
	p.C = coeffs(1)
	p.Free[0] = true
	p.AddConstraint(coeffs(1), GE, rat(-5, 1))
	sol := solveOK(t, p)
	if sol.Status != Optimal {
		t.Fatalf("status = %s", sol.Status)
	}
	if sol.X[0].Cmp(rat(-5, 1)) != 0 {
		t.Errorf("x = %s, want -5", sol.X[0].RatString())
	}
}

func TestNegativeRHS(t *testing.T) {
	// max -x s.t. -x <= -3  (i.e. x >= 3) → x = 3.
	p := NewProblem(Maximize, 1)
	p.C = coeffs(-1)
	p.AddConstraint(coeffs(-1), LE, rat(-3, 1))
	sol := solveOK(t, p)
	if sol.Status != Optimal || sol.X[0].Cmp(rat(3, 1)) != 0 {
		t.Errorf("status=%s x=%v, want optimal x=3", sol.Status, sol.X)
	}
}

func TestExactRationalAnswer(t *testing.T) {
	// max x + y s.t. 3x + y <= 1, x + 3y <= 1 → x = y = 1/4, obj = 1/2.
	p := NewProblem(Maximize, 2)
	p.C = coeffs(1, 1)
	p.AddConstraint(coeffs(3, 1), LE, rat(1, 1))
	p.AddConstraint(coeffs(1, 3), LE, rat(1, 1))
	sol := solveOK(t, p)
	if sol.Objective.Cmp(rat(1, 2)) != 0 {
		t.Errorf("objective = %s, want exactly 1/2", sol.Objective.RatString())
	}
	if sol.X[0].Cmp(rat(1, 4)) != 0 || sol.X[1].Cmp(rat(1, 4)) != 0 {
		t.Errorf("x = (%s, %s), want (1/4, 1/4)", sol.X[0].RatString(), sol.X[1].RatString())
	}
}

func TestDegenerateCyclingGuard(t *testing.T) {
	// Beale's classic cycling example; Bland's rule must terminate.
	p := NewProblem(Minimize, 4)
	p.C = []*big.Rat{rat(-3, 4), rat(150, 1), rat(-1, 50), rat(6, 1)}
	p.AddConstraint([]*big.Rat{rat(1, 4), rat(-60, 1), rat(-1, 25), rat(9, 1)}, LE, rat(0, 1))
	p.AddConstraint([]*big.Rat{rat(1, 2), rat(-90, 1), rat(-1, 50), rat(3, 1)}, LE, rat(0, 1))
	p.AddConstraint([]*big.Rat{rat(0, 1), rat(0, 1), rat(1, 1), rat(0, 1)}, LE, rat(1, 1))
	sol := solveOK(t, p)
	if sol.Status != Optimal {
		t.Fatalf("status = %s", sol.Status)
	}
	if sol.Objective.Cmp(rat(-1, 20)) != 0 {
		t.Errorf("objective = %s, want -1/20", sol.Objective.RatString())
	}
}

func TestDantzigRuleMatchesBland(t *testing.T) {
	p := NewProblem(Maximize, 3)
	p.C = coeffs(5, 4, 3)
	p.AddConstraint(coeffs(2, 3, 1), LE, rat(5, 1))
	p.AddConstraint(coeffs(4, 1, 2), LE, rat(11, 1))
	p.AddConstraint(coeffs(3, 4, 2), LE, rat(8, 1))
	bland := solveOK(t, p)
	dantzig, err := SolveOpt(p, Options{Rule: Dantzig})
	if err != nil {
		t.Fatal(err)
	}
	if bland.Objective.Cmp(dantzig.Objective) != 0 {
		t.Errorf("objectives differ: %s vs %s",
			bland.Objective.RatString(), dantzig.Objective.RatString())
	}
	if bland.Objective.Cmp(rat(13, 1)) != 0 {
		t.Errorf("objective = %s, want 13", bland.Objective.RatString())
	}
}

// checkFeasible verifies Ax (rel) b exactly.
func checkFeasible(t *testing.T, p *Problem, x []*big.Rat) {
	t.Helper()
	for i, row := range p.A {
		lhs := new(big.Rat)
		for j := range row {
			lhs.Add(lhs, new(big.Rat).Mul(row[j], x[j]))
		}
		cmp := lhs.Cmp(p.B[i])
		switch p.Rel[i] {
		case LE:
			if cmp > 0 {
				t.Errorf("constraint %d violated: %s > %s", i, lhs.RatString(), p.B[i].RatString())
			}
		case GE:
			if cmp < 0 {
				t.Errorf("constraint %d violated: %s < %s", i, lhs.RatString(), p.B[i].RatString())
			}
		case EQ:
			if cmp != 0 {
				t.Errorf("constraint %d violated: %s != %s", i, lhs.RatString(), p.B[i].RatString())
			}
		}
	}
}

// TestPropertyStrongDuality generates random feasible bounded LPs and
// checks that the primal solution is feasible and that the dual bound
// bᵀy equals the primal objective exactly (strong duality with exact
// arithmetic).
func TestPropertyStrongDuality(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(4)
		m := 1 + rng.Intn(4)
		p := NewProblem(Maximize, n)
		for j := 0; j < n; j++ {
			p.C[j] = big.NewRat(int64(rng.Intn(9)), 1) // non-negative objective
		}
		for i := 0; i < m; i++ {
			row := make([]*big.Rat, n)
			for j := range row {
				row[j] = big.NewRat(int64(1+rng.Intn(5)), 1) // positive coefficients
			}
			p.AddConstraint(row, LE, big.NewRat(int64(1+rng.Intn(20)), 1))
		}
		// Positive rows with positive RHS: x=0 feasible, bounded above.
		sol, err := Solve(p)
		if err != nil || sol.Status != Optimal {
			return false
		}
		checkFeasible(t, p, sol.X)
		// Strong duality: bᵀy == cᵀx.
		dualObj := new(big.Rat)
		for i := 0; i < m; i++ {
			dualObj.Add(dualObj, new(big.Rat).Mul(p.B[i], sol.Duals[i]))
		}
		return dualObj.Cmp(sol.Objective) == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestValidationErrors(t *testing.T) {
	if _, err := Solve(&Problem{}); err == nil {
		t.Error("empty problem accepted")
	}
	p := NewProblem(Minimize, 2)
	p.A = append(p.A, coeffs(1))
	p.Rel = append(p.Rel, LE)
	p.B = append(p.B, rat(1, 1))
	if _, err := Solve(p); err == nil {
		t.Error("ragged constraint row accepted")
	}
}
