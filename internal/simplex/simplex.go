// Package simplex implements an exact rational linear programming solver:
// the two-phase primal simplex method on math/big.Rat tableaus with
// Bland's anti-cycling rule (and an optional Dantzig most-negative pivot
// heuristic for the ablation benchmarks).
//
// The paper's optimization-modelling application integrates "various
// optimization solvers intended for basic classes of mathematical
// programming problems" as computational web services.  This package is
// that solver substrate: because the arithmetic is exact, solutions are
// certifiable (strong duality holds to equality), which keeps the
// distributed Dantzig–Wolfe experiments deterministic.
package simplex

import (
	"fmt"
	"math/big"
	"strings"
)

// Sense is the optimization direction.
type Sense int

// Optimization directions.
const (
	Minimize Sense = iota
	Maximize
)

// Rel is a constraint relation.
type Rel int

// Constraint relations.
const (
	LE Rel = iota // ≤
	GE            // ≥
	EQ            // =
)

func (r Rel) String() string {
	switch r {
	case LE:
		return "<="
	case GE:
		return ">="
	default:
		return "="
	}
}

// Problem is a linear program over variables x, all constrained x ≥ 0
// unless listed in Free.
//
//	min/max  cᵀx + C
//	s.t.     A x (≤ | ≥ | =) b
type Problem struct {
	Sense Sense
	// C is the objective coefficient per variable; ObjConst an additive
	// constant reported back in the objective value.
	C        []*big.Rat
	ObjConst *big.Rat
	// A, Rel and B define the constraints, one row each.
	A   [][]*big.Rat
	Rel []Rel
	B   []*big.Rat
	// Free marks variables that may take negative values.
	Free []bool
	// VarNames and ConNames are optional labels for reporting.
	VarNames []string
	ConNames []string
}

// NewProblem allocates an empty problem with n variables.
func NewProblem(sense Sense, n int) *Problem {
	p := &Problem{Sense: sense, C: make([]*big.Rat, n), Free: make([]bool, n),
		ObjConst: new(big.Rat)}
	for i := range p.C {
		p.C[i] = new(big.Rat)
	}
	return p
}

// NumVars returns the number of variables.
func (p *Problem) NumVars() int { return len(p.C) }

// NumCons returns the number of constraints.
func (p *Problem) NumCons() int { return len(p.A) }

// AddConstraint appends a row.  The coefficient slice is copied; missing
// trailing coefficients are zero.
func (p *Problem) AddConstraint(coeffs []*big.Rat, rel Rel, rhs *big.Rat) {
	row := make([]*big.Rat, p.NumVars())
	for i := range row {
		if i < len(coeffs) && coeffs[i] != nil {
			row[i] = new(big.Rat).Set(coeffs[i])
		} else {
			row[i] = new(big.Rat)
		}
	}
	p.A = append(p.A, row)
	p.Rel = append(p.Rel, rel)
	p.B = append(p.B, new(big.Rat).Set(rhs))
}

// Status is the outcome of a solve.
type Status int

// Solve outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	default:
		return "unbounded"
	}
}

// Solution is the result of a solve.
type Solution struct {
	Status Status
	// X is the optimal assignment (nil unless Optimal).
	X []*big.Rat
	// Objective is the optimal objective value in the problem's own
	// sense, including ObjConst.
	Objective *big.Rat
	// Duals holds one multiplier per constraint (sign convention: for a
	// Minimize problem, duals of ≥ rows are ≥ 0 and of ≤ rows are ≤ 0;
	// mirrored for Maximize).
	Duals []*big.Rat
	// Iterations is the number of simplex pivots performed.
	Iterations int
}

// PivotRule selects the entering-variable heuristic.
type PivotRule int

// Pivot rules.
const (
	// Bland always picks the lowest-index improving column; it cannot
	// cycle.
	Bland PivotRule = iota
	// Dantzig picks the most-improving column and falls back to Bland
	// after a pivot budget to stay terminating.
	Dantzig
)

// Options tune the solver.
type Options struct {
	Rule PivotRule
	// MaxPivots bounds the total pivot count (0 = 50000).
	MaxPivots int
}

// Solve optimizes the problem with default options.
func Solve(p *Problem) (*Solution, error) { return SolveOpt(p, Options{}) }

// SolveOpt optimizes the problem with explicit options.
func SolveOpt(p *Problem, opts Options) (*Solution, error) {
	if err := validate(p); err != nil {
		return nil, err
	}
	t, err := newTableau(p, opts)
	if err != nil {
		return nil, err
	}
	return t.solve()
}

func validate(p *Problem) error {
	n := p.NumVars()
	if n == 0 {
		return fmt.Errorf("simplex: problem has no variables")
	}
	if len(p.Rel) != len(p.A) || len(p.B) != len(p.A) {
		return fmt.Errorf("simplex: inconsistent constraint arrays")
	}
	for i, row := range p.A {
		if len(row) != n {
			return fmt.Errorf("simplex: constraint %d has %d coefficients, want %d",
				i, len(row), n)
		}
	}
	if len(p.Free) != 0 && len(p.Free) != n {
		return fmt.Errorf("simplex: Free has %d entries, want %d", len(p.Free), n)
	}
	return nil
}

// tableau is the dense simplex tableau.  Columns: the structural columns
// (free variables split into x⁺−x⁻), then slack/surplus columns, then
// artificial columns, then the RHS.  Rows: one per constraint, then the
// objective row (phase-dependent).
type tableau struct {
	p    *Problem
	opts Options

	m, nStruct, nSlack, nArt int
	// colVar maps structural column -> (original var, sign) pairs.
	colVar  []int
	colSign []int64

	rows  [][]*big.Rat // m rows, each nCols+1 wide (RHS last)
	basis []int        // basic column per row
	// cost is the phase-2 objective per column (minimization form).
	cost []*big.Rat
	// artStart is the first artificial column.
	artStart int
	// slackCol maps constraint -> its slack/surplus column (-1 for EQ).
	slackCol []int
	// slackSign is +1 for LE slack, -1 for GE surplus.
	slackSign []int64
	// artCol maps constraint -> its artificial column (-1 if none).
	artCol []int

	pivots int
}

func newTableau(p *Problem, opts Options) (*tableau, error) {
	if opts.MaxPivots <= 0 {
		opts.MaxPivots = 50000
	}
	t := &tableau{p: p, opts: opts, m: p.NumCons()}

	// Structural columns: one per non-negative variable, two per free
	// variable (x = x⁺ − x⁻).
	for j := 0; j < p.NumVars(); j++ {
		t.colVar = append(t.colVar, j)
		t.colSign = append(t.colSign, 1)
		if len(p.Free) == len(p.C) && p.Free[j] {
			t.colVar = append(t.colVar, j)
			t.colSign = append(t.colSign, -1)
		}
	}
	t.nStruct = len(t.colVar)

	// Slack/surplus and artificial bookkeeping; rows are normalized to
	// b ≥ 0 first.
	type rowInfo struct {
		rel    Rel
		negate bool
	}
	infos := make([]rowInfo, t.m)
	for i := 0; i < t.m; i++ {
		rel := p.Rel[i]
		negate := p.B[i].Sign() < 0
		if negate {
			switch rel {
			case LE:
				rel = GE
			case GE:
				rel = LE
			}
		}
		infos[i] = rowInfo{rel: rel, negate: negate}
		if rel == LE || rel == GE {
			t.nSlack++
		}
		if rel == GE || rel == EQ {
			t.nArt++
		}
	}

	nCols := t.nStruct + t.nSlack + t.nArt
	t.artStart = t.nStruct + t.nSlack
	t.slackCol = make([]int, t.m)
	t.slackSign = make([]int64, t.m)
	t.artCol = make([]int, t.m)
	t.basis = make([]int, t.m)

	slackNext := t.nStruct
	artNext := t.artStart
	t.rows = make([][]*big.Rat, t.m)
	for i := 0; i < t.m; i++ {
		row := make([]*big.Rat, nCols+1)
		for c := range row {
			row[c] = new(big.Rat)
		}
		sign := big.NewRat(1, 1)
		if infos[i].negate {
			sign.SetInt64(-1)
		}
		for sc := 0; sc < t.nStruct; sc++ {
			v := new(big.Rat).Mul(p.A[i][t.colVar[sc]], sign)
			if t.colSign[sc] < 0 {
				v.Neg(v)
			}
			row[sc].Set(v)
		}
		row[nCols].Mul(p.B[i], sign)

		t.slackCol[i] = -1
		t.artCol[i] = -1
		switch infos[i].rel {
		case LE:
			t.slackCol[i] = slackNext
			t.slackSign[i] = 1
			row[slackNext].SetInt64(1)
			t.basis[i] = slackNext
			slackNext++
		case GE:
			t.slackCol[i] = slackNext
			t.slackSign[i] = -1
			row[slackNext].SetInt64(-1)
			slackNext++
			t.artCol[i] = artNext
			row[artNext].SetInt64(1)
			t.basis[i] = artNext
			artNext++
		case EQ:
			t.artCol[i] = artNext
			row[artNext].SetInt64(1)
			t.basis[i] = artNext
			artNext++
		}
		t.rows[i] = row
	}

	// Phase-2 cost vector in minimization form.
	t.cost = make([]*big.Rat, nCols)
	for c := range t.cost {
		t.cost[c] = new(big.Rat)
	}
	for sc := 0; sc < t.nStruct; sc++ {
		v := new(big.Rat).Set(p.C[t.colVar[sc]])
		if t.colSign[sc] < 0 {
			v.Neg(v)
		}
		if p.Sense == Maximize {
			v.Neg(v)
		}
		t.cost[sc].Set(v)
	}
	return t, nil
}

// reducedCosts computes z_j − c_j (we store c_j − z_j as the classic
// "objective row"); column j improves when objRow[j] < 0.
func (t *tableau) objRow(cost []*big.Rat) []*big.Rat {
	nCols := len(t.cost)
	obj := make([]*big.Rat, nCols+1)
	for j := range obj {
		obj[j] = new(big.Rat)
	}
	tmp := new(big.Rat)
	for j := 0; j <= nCols; j++ {
		if j < nCols {
			obj[j].Set(cost[j])
		}
		for i := 0; i < t.m; i++ {
			cb := cost[t.basis[i]]
			if cb.Sign() == 0 {
				continue
			}
			tmp.Mul(cb, t.rows[i][j])
			obj[j].Sub(obj[j], tmp)
		}
	}
	return obj
}

// iterate runs simplex pivots for the given cost vector until optimal,
// unbounded, or the pivot budget is exhausted.
func (t *tableau) iterate(cost []*big.Rat, banArtificials bool) (Status, error) {
	nCols := len(t.cost)
	obj := t.objRow(cost)
	for {
		entering := t.chooseEntering(obj, nCols, banArtificials)
		if entering < 0 {
			return Optimal, nil
		}
		leaving := t.ratioTest(entering)
		if leaving < 0 {
			return Unbounded, nil
		}
		t.pivot(leaving, entering)
		t.pivots++
		if t.pivots > t.opts.MaxPivots {
			return Optimal, fmt.Errorf("simplex: pivot budget %d exhausted", t.opts.MaxPivots)
		}
		obj = t.objRow(cost)
	}
}

func (t *tableau) chooseEntering(obj []*big.Rat, nCols int, banArtificials bool) int {
	limit := nCols
	if banArtificials {
		limit = t.artStart
	}
	useDantzig := t.opts.Rule == Dantzig && t.pivots < t.opts.MaxPivots/2
	best := -1
	var bestVal *big.Rat
	for j := 0; j < limit; j++ {
		if obj[j].Sign() >= 0 {
			continue
		}
		if !useDantzig {
			return j // Bland: first improving column
		}
		if best < 0 || obj[j].Cmp(bestVal) < 0 {
			best, bestVal = j, obj[j]
		}
	}
	return best
}

// ratioTest picks the leaving row by the minimum-ratio rule with Bland
// tie-breaking on the basis variable index.
func (t *tableau) ratioTest(entering int) int {
	nCols := len(t.cost)
	best := -1
	var bestRatio *big.Rat
	ratio := new(big.Rat)
	for i := 0; i < t.m; i++ {
		a := t.rows[i][entering]
		if a.Sign() <= 0 {
			continue
		}
		ratio.Quo(t.rows[i][nCols], a)
		switch {
		case best < 0 || ratio.Cmp(bestRatio) < 0:
			best = i
			bestRatio = new(big.Rat).Set(ratio)
		case ratio.Cmp(bestRatio) == 0 && t.basis[i] < t.basis[best]:
			best = i
		}
	}
	return best
}

func (t *tableau) pivot(row, col int) {
	nCols := len(t.cost)
	inv := new(big.Rat).Inv(t.rows[row][col])
	for j := 0; j <= nCols; j++ {
		t.rows[row][j].Mul(t.rows[row][j], inv)
	}
	tmp := new(big.Rat)
	for i := 0; i < t.m; i++ {
		if i == row {
			continue
		}
		f := new(big.Rat).Set(t.rows[i][col])
		if f.Sign() == 0 {
			continue
		}
		for j := 0; j <= nCols; j++ {
			tmp.Mul(f, t.rows[row][j])
			t.rows[i][j].Sub(t.rows[i][j], tmp)
		}
	}
	t.basis[row] = col
}

func (t *tableau) solve() (*Solution, error) {
	nCols := len(t.cost)

	// Phase 1: minimize the sum of artificials.
	if t.nArt > 0 {
		phase1 := make([]*big.Rat, nCols)
		for j := range phase1 {
			phase1[j] = new(big.Rat)
		}
		for j := t.artStart; j < nCols; j++ {
			phase1[j].SetInt64(1)
		}
		status, err := t.iterate(phase1, false)
		if err != nil {
			return nil, err
		}
		if status == Unbounded {
			return nil, fmt.Errorf("simplex: phase 1 unbounded (internal error)")
		}
		// Feasible iff all artificials are zero.
		for i := 0; i < t.m; i++ {
			if t.basis[i] >= t.artStart && t.rows[i][nCols].Sign() != 0 {
				return &Solution{Status: Infeasible, Iterations: t.pivots}, nil
			}
		}
		// Drive remaining degenerate artificials out of the basis.
		for i := 0; i < t.m; i++ {
			if t.basis[i] < t.artStart {
				continue
			}
			pivoted := false
			for j := 0; j < t.artStart; j++ {
				if t.rows[i][j].Sign() != 0 {
					t.pivot(i, j)
					pivoted = true
					break
				}
			}
			if !pivoted {
				// The row is all-zero over real columns: a redundant
				// constraint.  Leave the artificial basic at zero.
				continue
			}
		}
	}

	// Phase 2: the real objective, artificial columns banned.
	status, err := t.iterate(t.cost, true)
	if err != nil {
		return nil, err
	}
	if status == Unbounded {
		return &Solution{Status: Unbounded, Iterations: t.pivots}, nil
	}

	// Extract the primal solution.
	n := t.p.NumVars()
	x := make([]*big.Rat, n)
	for j := range x {
		x[j] = new(big.Rat)
	}
	for i := 0; i < t.m; i++ {
		col := t.basis[i]
		if col >= t.nStruct {
			continue
		}
		v := t.rows[i][nCols]
		if t.colSign[col] > 0 {
			x[t.colVar[col]].Add(x[t.colVar[col]], v)
		} else {
			x[t.colVar[col]].Sub(x[t.colVar[col]], v)
		}
	}
	obj := new(big.Rat)
	for j := 0; j < n; j++ {
		obj.Add(obj, new(big.Rat).Mul(t.p.C[j], x[j]))
	}
	if t.p.ObjConst != nil {
		obj.Add(obj, t.p.ObjConst)
	}

	// Duals from the final objective row: for constraint i with initial
	// basic/identity column k, y_i = −objRow[k] (minimization form),
	// adjusted for surplus sign and row negation.
	objRow := t.objRow(t.cost)
	duals := make([]*big.Rat, t.m)
	for i := 0; i < t.m; i++ {
		var col int
		var colSign int64 = 1
		if t.artCol[i] >= 0 {
			col = t.artCol[i]
		} else {
			col = t.slackCol[i]
			colSign = t.slackSign[i]
		}
		y := new(big.Rat).Neg(objRow[col])
		if colSign < 0 {
			y.Neg(y)
		}
		if t.p.B[i].Sign() < 0 {
			// The row was negated during normalization.
			y.Neg(y)
		}
		if t.p.Sense == Maximize {
			y.Neg(y)
		}
		duals[i] = y
	}

	return &Solution{
		Status:     Optimal,
		X:          x,
		Objective:  obj,
		Duals:      duals,
		Iterations: t.pivots,
	}, nil
}

// String renders the problem in an LP-like text form for debugging.
func (p *Problem) String() string {
	var b strings.Builder
	if p.Sense == Maximize {
		b.WriteString("maximize ")
	} else {
		b.WriteString("minimize ")
	}
	for j, c := range p.C {
		if j > 0 {
			b.WriteString(" + ")
		}
		fmt.Fprintf(&b, "%s·x%d", c.RatString(), j)
	}
	b.WriteString("\nsubject to\n")
	for i, row := range p.A {
		for j, c := range row {
			if j > 0 {
				b.WriteString(" + ")
			}
			fmt.Fprintf(&b, "%s·x%d", c.RatString(), j)
		}
		fmt.Fprintf(&b, " %s %s\n", p.Rel[i], p.B[i].RatString())
	}
	return b.String()
}
