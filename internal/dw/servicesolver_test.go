package dw

import (
	"context"
	"fmt"
	"math/big"
	"strings"
	"testing"

	"mathcloud/internal/core"
)

// fakeInvoker returns canned service responses for ServiceSolver tests.
type fakeInvoker struct {
	out core.Values
	err error
}

func (f fakeInvoker) Call(_ context.Context, _ string, _ core.Values) (core.Values, error) {
	return f.out, f.err
}

func TestServiceSolverParsesSolution(t *testing.T) {
	s := &ServiceSolver{
		Invoker: fakeInvoker{out: core.Values{
			"status":    "optimal",
			"objective": "7/2",
			"solution": map[string]any{
				"flow[s1,t1]": "3/2",
				"flow[s1,t2]": "2",
			},
		}},
		URI: "svc://solver",
	}
	obj, vals, err := s.SolveModel(context.Background(), "model")
	if err != nil {
		t.Fatal(err)
	}
	if obj.Cmp(big.NewRat(7, 2)) != 0 {
		t.Errorf("objective = %s", obj.RatString())
	}
	if vals["flow[s1,t1]"].Cmp(big.NewRat(3, 2)) != 0 {
		t.Errorf("value = %s", vals["flow[s1,t1]"].RatString())
	}
}

func TestServiceSolverErrors(t *testing.T) {
	cases := []struct {
		name string
		inv  fakeInvoker
		want string
	}{
		{"transport error", fakeInvoker{err: fmt.Errorf("connection refused")}, "connection refused"},
		{"infeasible", fakeInvoker{out: core.Values{"status": "infeasible"}}, "status"},
		{"bad objective", fakeInvoker{out: core.Values{
			"status": "optimal", "objective": "huh"}}, "invalid objective"},
		{"bad value", fakeInvoker{out: core.Values{
			"status": "optimal", "objective": "1",
			"solution": map[string]any{"x": "nope"}}}, "invalid value"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := &ServiceSolver{Invoker: tc.inv, URI: "svc://solver"}
			_, _, err := s.SolveModel(context.Background(), "m")
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("err = %v, want %q", err, tc.want)
			}
		})
	}
}

func TestEmptyPoolRejected(t *testing.T) {
	pool := NewPool()
	if _, _, err := pool.SolveModel(context.Background(), "m"); err == nil {
		t.Error("empty pool solved a model")
	}
}

func TestSolveAllPropagatesFirstError(t *testing.T) {
	bad := solverFunc(func(context.Context, string) (*big.Rat, map[string]*big.Rat, error) {
		return nil, nil, fmt.Errorf("solver crashed")
	})
	pool := NewPool(bad)
	_, _, err := pool.SolveAll(context.Background(), []string{"a", "b"})
	if err == nil || !strings.Contains(err.Error(), "solver crashed") {
		t.Errorf("err = %v", err)
	}
}
