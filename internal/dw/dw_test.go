package dw

import (
	"context"
	"math/big"
	"strings"
	"sync"
	"testing"

	"mathcloud/internal/simplex"
)

// solverFunc adapts a function to the Solver interface.
type solverFunc func(ctx context.Context, model string) (*big.Rat, map[string]*big.Rat, error)

func (f solverFunc) SolveModel(ctx context.Context, model string) (*big.Rat, map[string]*big.Rat, error) {
	return f(ctx, model)
}

func ratSum(m map[string]*big.Rat) *big.Rat {
	sum := new(big.Rat)
	for _, v := range m {
		sum.Add(sum, v)
	}
	return sum
}

func TestSubproblemModelIsValidAMPL(t *testing.T) {
	p := Generate(3, 3, 2, 1)
	model := p.SubproblemModel(0, nil)
	obj, vals, err := localSolve(model)
	if err != nil {
		t.Fatalf("localSolve: %v", err)
	}
	if obj == nil || len(vals) != 9 {
		t.Fatalf("obj=%v vals=%d, want 9 flow variables", obj, len(vals))
	}
}

func TestDecompositionMatchesDirectLP(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 7} {
		p := Generate(3, 3, 3, seed)

		lp, _ := p.DirectLP()
		direct, err := simplex.Solve(lp)
		if err != nil {
			t.Fatalf("seed %d: direct solve: %v", seed, err)
		}
		if direct.Status != simplex.Optimal {
			t.Fatalf("seed %d: direct status %s", seed, direct.Status)
		}

		res, err := Decompose(context.Background(), p, LocalSolver{}, Options{})
		if err != nil {
			t.Fatalf("seed %d: decompose: %v", seed, err)
		}
		if res.Objective.Cmp(direct.Objective) != 0 {
			t.Errorf("seed %d: DW objective %s != direct %s",
				seed, res.Objective.RatString(), direct.Objective.RatString())
		}
		if err := p.Validate(res.Flow); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
		if got := p.TotalCost(res.Flow); got.Cmp(res.Objective) != 0 {
			t.Errorf("seed %d: flow cost %s != objective %s",
				seed, got.RatString(), res.Objective.RatString())
		}
		if res.Rounds < 1 || res.Columns < 3 {
			t.Errorf("seed %d: implausible stats %+v", seed, res)
		}
	}
}

func TestDecompositionLargerInstance(t *testing.T) {
	if testing.Short() {
		t.Skip("larger DW instance is slow")
	}
	p := Generate(4, 5, 6, 42)
	lp, _ := p.DirectLP()
	direct, err := simplex.Solve(lp)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Decompose(context.Background(), p, LocalSolver{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Objective.Cmp(direct.Objective) != 0 {
		t.Errorf("DW objective %s != direct %s",
			res.Objective.RatString(), direct.Objective.RatString())
	}
}

func TestPoolRoundRobin(t *testing.T) {
	p := Generate(2, 2, 2, 5)
	counts := make([]int, 3)
	var mu sync.Mutex
	solvers := make([]Solver, 3)
	for i := range solvers {
		i := i
		solvers[i] = solverFunc(func(ctx context.Context, model string) (*big.Rat, map[string]*big.Rat, error) {
			mu.Lock()
			counts[i]++
			mu.Unlock()
			return localSolve(model)
		})
	}
	pool := NewPool(solvers...)
	res, err := Decompose(context.Background(), p, pool, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(res.Flow); err != nil {
		t.Error(err)
	}
	total := counts[0] + counts[1] + counts[2]
	if total != res.SubproblemsSolved {
		t.Errorf("dispatched %d, recorded %d", total, res.SubproblemsSolved)
	}
	if counts[0] == total {
		t.Error("pool did not spread work over members")
	}
}

func TestGeneratedInstancesAreBalanced(t *testing.T) {
	p := Generate(3, 4, 2, 9)
	for k := range p.Commodities {
		supply := ratSum(p.Supply[k])
		demand := ratSum(p.Demand[k])
		if supply.Cmp(demand) != 0 {
			t.Errorf("commodity %d: supply %s != demand %s",
				k, supply.RatString(), demand.RatString())
		}
	}
}

func TestValidateCatchesViolations(t *testing.T) {
	p := Generate(2, 2, 1, 3)
	res, err := Decompose(context.Background(), p, LocalSolver{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the flow and expect Validate to object.
	res.Flow[0][p.Sources[0]][p.Sinks[0]].Add(
		res.Flow[0][p.Sources[0]][p.Sinks[0]], big.NewRat(1, 1))
	if err := p.Validate(res.Flow); err == nil {
		t.Error("Validate accepted a corrupted flow")
	} else if !strings.Contains(err.Error(), "ships") {
		t.Errorf("unexpected error: %v", err)
	}
}
