package dw

import (
	"context"
	"fmt"
	"math/big"
	"time"

	"mathcloud/internal/simplex"
)

// proposal is one priced flow plan of a single commodity.
type proposal struct {
	flow map[string]map[string]*big.Rat
	cost *big.Rat // true cost c_k · x
}

// Result is the outcome of the decomposition.
type Result struct {
	// Objective is the optimal total cost.
	Objective *big.Rat
	// Flow[k][s][t] is the optimal (possibly fractional) flow.
	Flow []map[string]map[string]*big.Rat
	// Rounds is the number of column-generation iterations.
	Rounds int
	// Columns is the total number of proposals generated.
	Columns int
	// SubproblemsSolved counts pricing solves dispatched to the pool.
	SubproblemsSolved int
	// PricingWall is the wall time spent in the (parallel) pricing
	// stages; MasterWall the time in the (sequential) master solves.
	PricingWall time.Duration
	MasterWall  time.Duration
}

// Options tune the decomposition.
type Options struct {
	// MaxRounds bounds column-generation iterations (0 = 200).
	MaxRounds int
}

// Decompose runs Dantzig–Wolfe column generation on the problem, pricing
// subproblems through the given solver (typically a Pool of solver
// services).  All K subproblems of one round are solved concurrently.
func Decompose(ctx context.Context, p *Problem, solver Solver, opts Options) (*Result, error) {
	maxRounds := opts.MaxRounds
	if maxRounds <= 0 {
		maxRounds = 200
	}
	pool, isPool := solver.(*Pool)
	if !isPool {
		pool = NewPool(solver)
	}
	K := len(p.Commodities)
	proposals := make([][]proposal, K)
	res := &Result{Objective: new(big.Rat)}

	// Big-M penalty for capacity overflow, exact: 1 + Σ_k Σ_arcs c·cap.
	arcs := p.CapacitatedArcs()
	bigM := big.NewRat(1, 1)
	for k := 0; k < K; k++ {
		for _, a := range arcs {
			bigM.Add(bigM, new(big.Rat).Mul(p.Cost[k][a.Source][a.Sink], p.Capacity[a.Source][a.Sink]))
		}
	}

	// Round 0: price with zero duals (pure min-cost proposals).
	arcDuals := map[string]map[string]*big.Rat{}
	convexDuals := make([]*big.Rat, K)
	for k := range convexDuals {
		convexDuals[k] = new(big.Rat)
	}

	overflowPositive := false
	for round := 1; ; round++ {
		if round > maxRounds {
			return nil, fmt.Errorf("dw: no convergence after %d rounds", maxRounds)
		}
		res.Rounds = round

		// Price all commodities in parallel over the pool.
		models := make([]string, K)
		for k := 0; k < K; k++ {
			models[k] = p.SubproblemModel(k, arcDuals)
		}
		pricingStart := time.Now()
		objs, vals, err := pool.SolveAll(ctx, models)
		res.PricingWall += time.Since(pricingStart)
		if err != nil {
			return nil, err
		}
		res.SubproblemsSolved += K

		improved := false
		for k := 0; k < K; k++ {
			// Reduced cost of the best proposal: subObj − σ_k.
			reduced := new(big.Rat).Sub(objs[k], convexDuals[k])
			if len(proposals[k]) > 0 && reduced.Sign() >= 0 {
				continue
			}
			flow, trueCost := p.extractFlow(k, vals[k])
			proposals[k] = append(proposals[k], proposal{flow: flow, cost: trueCost})
			res.Columns++
			improved = true
		}
		if !improved {
			break
		}

		// Solve the restricted master.
		master, cols, overCols := p.buildMaster(proposals, bigM)
		masterStart := time.Now()
		sol, err := simplex.Solve(master)
		res.MasterWall += time.Since(masterStart)
		if err != nil {
			return nil, fmt.Errorf("dw: master round %d: %w", round, err)
		}
		if sol.Status != simplex.Optimal {
			return nil, fmt.Errorf("dw: master round %d is %s", round, sol.Status)
		}
		// Positive overflow in intermediate rounds is normal: the
		// big-M slacks keep the restricted master feasible until good
		// columns arrive.  Only at convergence does remaining overflow
		// prove the instance capacity-infeasible.
		overflowPositive = false
		for _, oc := range overCols {
			if sol.X[oc].Sign() != 0 {
				overflowPositive = true
				break
			}
		}
		// Refresh duals.  Capacity rows come first, then convexity rows.
		arcDuals = map[string]map[string]*big.Rat{}
		row := 0
		for _, a := range arcs {
			if arcDuals[a.Source] == nil {
				arcDuals[a.Source] = map[string]*big.Rat{}
			}
			arcDuals[a.Source][a.Sink] = sol.Duals[row]
			row++
		}
		for k := 0; k < K; k++ {
			convexDuals[k] = sol.Duals[row]
			row++
		}

		// Record the incumbent solution.
		res.Objective = sol.Objective
		res.Flow = p.recoverFlow(proposals, sol, cols)
	}
	if overflowPositive {
		return nil, fmt.Errorf("dw: instance is capacity-infeasible")
	}
	if res.Flow == nil {
		return nil, fmt.Errorf("dw: no master solution produced")
	}
	return res, nil
}

// extractFlow reads a subproblem solution ("flow[s,t]" variables) into an
// arc map and computes its true cost under commodity k's original costs.
func (p *Problem) extractFlow(k int, vals map[string]*big.Rat) (map[string]map[string]*big.Rat, *big.Rat) {
	flow := map[string]map[string]*big.Rat{}
	cost := new(big.Rat)
	for _, s := range p.Sources {
		flow[s] = map[string]*big.Rat{}
		for _, t := range p.Sinks {
			v, ok := vals[fmt.Sprintf("flow[%s,%s]", s, t)]
			if !ok {
				v = new(big.Rat)
			}
			flow[s][t] = v
			cost.Add(cost, new(big.Rat).Mul(p.Cost[k][s][t], v))
		}
	}
	return flow, cost
}

// buildMaster constructs the restricted master program.  Rows: one ≤ per
// arc (capacity, with overflow slack penalized by bigM), then one = per
// commodity (convexity).  Columns: λ per proposal, then overflow per arc.
func (p *Problem) buildMaster(proposals [][]proposal, bigM *big.Rat) (*simplex.Problem, [][]int, []int) {
	K := len(p.Commodities)
	nLambda := 0
	cols := make([][]int, K)
	for k := 0; k < K; k++ {
		cols[k] = make([]int, len(proposals[k]))
		for pi := range proposals[k] {
			cols[k][pi] = nLambda
			nLambda++
		}
	}
	arcs := p.CapacitatedArcs()
	nArcs := len(arcs)
	n := nLambda + nArcs
	lp := simplex.NewProblem(simplex.Minimize, n)
	overCols := make([]int, 0, nArcs)
	for a := 0; a < nArcs; a++ {
		lp.C[nLambda+a] = new(big.Rat).Set(bigM)
		overCols = append(overCols, nLambda+a)
	}
	for k := 0; k < K; k++ {
		for pi, prop := range proposals[k] {
			lp.C[cols[k][pi]] = new(big.Rat).Set(prop.cost)
		}
	}
	// Capacity rows, capacitated arcs only.
	for ai, a := range arcs {
		row := make([]*big.Rat, n)
		for k := 0; k < K; k++ {
			for pi, prop := range proposals[k] {
				row[cols[k][pi]] = prop.flow[a.Source][a.Sink]
			}
		}
		row[nLambda+ai] = big.NewRat(-1, 1) // overflow relief
		lp.AddConstraint(row, simplex.LE, p.Capacity[a.Source][a.Sink])
	}
	// Convexity rows.
	one := big.NewRat(1, 1)
	for k := 0; k < K; k++ {
		row := make([]*big.Rat, n)
		for _, c := range cols[k] {
			row[c] = one
		}
		lp.AddConstraint(row, simplex.EQ, one)
	}
	return lp, cols, overCols
}

// recoverFlow combines proposals by their master weights.
func (p *Problem) recoverFlow(proposals [][]proposal, sol *simplex.Solution, cols [][]int) []map[string]map[string]*big.Rat {
	K := len(p.Commodities)
	out := make([]map[string]map[string]*big.Rat, K)
	for k := 0; k < K; k++ {
		out[k] = map[string]map[string]*big.Rat{}
		for _, s := range p.Sources {
			out[k][s] = map[string]*big.Rat{}
			for _, t := range p.Sinks {
				acc := new(big.Rat)
				for pi, prop := range proposals[k] {
					w := sol.X[cols[k][pi]]
					if w.Sign() != 0 {
						acc.Add(acc, new(big.Rat).Mul(w, prop.flow[s][t]))
					}
				}
				out[k][s][t] = acc
			}
		}
	}
	return out
}

// Validate checks a flow against the problem: per-commodity balances and
// joint capacities, all exact.
func (p *Problem) Validate(flow []map[string]map[string]*big.Rat) error {
	for k := range p.Commodities {
		for _, s := range p.Sources {
			sum := new(big.Rat)
			for _, t := range p.Sinks {
				sum.Add(sum, flow[k][s][t])
			}
			if sum.Cmp(p.Supply[k][s]) != 0 {
				return fmt.Errorf("dw: commodity %d source %s ships %s, want %s",
					k, s, sum.RatString(), p.Supply[k][s].RatString())
			}
		}
		for _, t := range p.Sinks {
			sum := new(big.Rat)
			for _, s := range p.Sources {
				sum.Add(sum, flow[k][s][t])
			}
			if sum.Cmp(p.Demand[k][t]) != 0 {
				return fmt.Errorf("dw: commodity %d sink %s receives %s, want %s",
					k, t, sum.RatString(), p.Demand[k][t].RatString())
			}
		}
	}
	for _, a := range p.CapacitatedArcs() {
		sum := new(big.Rat)
		for k := range p.Commodities {
			sum.Add(sum, flow[k][a.Source][a.Sink])
		}
		if sum.Cmp(p.Capacity[a.Source][a.Sink]) > 0 {
			return fmt.Errorf("dw: arc (%s,%s) carries %s over capacity %s",
				a.Source, a.Sink, sum.RatString(), p.Capacity[a.Source][a.Sink].RatString())
		}
	}
	return nil
}

// TotalCost prices a flow under the original costs.
func (p *Problem) TotalCost(flow []map[string]map[string]*big.Rat) *big.Rat {
	total := new(big.Rat)
	for k := range p.Commodities {
		for _, s := range p.Sources {
			for _, t := range p.Sinks {
				total.Add(total, new(big.Rat).Mul(p.Cost[k][s][t], flow[k][s][t]))
			}
		}
	}
	return total
}
