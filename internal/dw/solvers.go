package dw

import (
	"context"
	"fmt"
	"math/big"
	"sync/atomic"

	"mathcloud/internal/ampl"
	"mathcloud/internal/core"
	"mathcloud/internal/simplex"
	"mathcloud/internal/workflow"
)

// localSolve translates and solves an AMPL model in-process.
func localSolve(model string) (*big.Rat, map[string]*big.Rat, error) {
	m, err := ampl.Parse(model)
	if err != nil {
		return nil, nil, err
	}
	inst, err := m.Instantiate()
	if err != nil {
		return nil, nil, err
	}
	sol, err := simplex.Solve(inst.Problem)
	if err != nil {
		return nil, nil, err
	}
	if sol.Status != simplex.Optimal {
		return nil, nil, fmt.Errorf("dw: subproblem is %s", sol.Status)
	}
	vals := make(map[string]*big.Rat, len(inst.VarNames))
	for i, name := range inst.VarNames {
		vals[name] = sol.X[i]
	}
	return sol.Objective, vals, nil
}

// ServiceSolver dispatches models to one optimization solver service via
// the unified REST API.
type ServiceSolver struct {
	// Invoker calls services (workflow.HTTPInvoker in production).
	Invoker workflow.Invoker
	// URI is the solver service resource URI.
	URI string
}

// SolveModel implements Solver.
func (s *ServiceSolver) SolveModel(ctx context.Context, model string) (*big.Rat, map[string]*big.Rat, error) {
	out, err := s.Invoker.Call(ctx, s.URI, core.Values{"model": model})
	if err != nil {
		return nil, nil, err
	}
	status, _ := out["status"].(string)
	if status != "optimal" {
		return nil, nil, fmt.Errorf("dw: solver service returned status %q", status)
	}
	objStr, _ := out["objective"].(string)
	obj, ok := new(big.Rat).SetString(objStr)
	if !ok {
		return nil, nil, fmt.Errorf("dw: solver service returned invalid objective %q", objStr)
	}
	solMap, _ := out["solution"].(map[string]any)
	vals := make(map[string]*big.Rat, len(solMap))
	for name, raw := range solMap {
		str, _ := raw.(string)
		v, ok := new(big.Rat).SetString(str)
		if !ok {
			return nil, nil, fmt.Errorf("dw: invalid value %q for %s", str, name)
		}
		vals[name] = v
	}
	return obj, vals, nil
}

// Pool is the dispatcher of the paper's "special service ... dispatching
// of optimization tasks to a pool of solver services": subproblems are
// assigned round-robin over the pool members and solved concurrently.
type Pool struct {
	solvers []Solver
	next    atomic.Uint64
}

// NewPool builds a dispatcher over the given solvers.
func NewPool(solvers ...Solver) *Pool {
	return &Pool{solvers: solvers}
}

// Size returns the number of pooled solvers.
func (p *Pool) Size() int { return len(p.solvers) }

// SolveModel implements Solver by delegating to the next pool member.
func (p *Pool) SolveModel(ctx context.Context, model string) (*big.Rat, map[string]*big.Rat, error) {
	if len(p.solvers) == 0 {
		return nil, nil, fmt.Errorf("dw: empty solver pool")
	}
	i := int(p.next.Add(1)-1) % len(p.solvers)
	return p.solvers[i].SolveModel(ctx, model)
}

// SolveAll solves the given models concurrently over the pool and returns
// results in input order.
func (p *Pool) SolveAll(ctx context.Context, models []string) ([]*big.Rat, []map[string]*big.Rat, error) {
	type result struct {
		idx int
		obj *big.Rat
		val map[string]*big.Rat
		err error
	}
	ch := make(chan result, len(models))
	for i, model := range models {
		go func(i int, model string) {
			obj, val, err := p.SolveModel(ctx, model)
			ch <- result{i, obj, val, err}
		}(i, model)
	}
	objs := make([]*big.Rat, len(models))
	vals := make([]map[string]*big.Rat, len(models))
	var firstErr error
	for range models {
		r := <-ch
		if r.err != nil && firstErr == nil {
			firstErr = r.err
		}
		objs[r.idx] = r.obj
		vals[r.idx] = r.val
	}
	if firstErr != nil {
		return nil, nil, firstErr
	}
	return objs, vals, nil
}
