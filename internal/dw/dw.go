// Package dw implements the Dantzig–Wolfe decomposition algorithm for the
// multi-commodity transportation problem, dispatching the independent
// pricing subproblems to a pool of optimization solver services — the
// validation example of the paper's distributed optimization modelling
// application.
//
// The problem: K commodities ship from sources to sinks.  Each commodity
// has its own supply/demand balance and shipping costs; arcs have a joint
// capacity shared by all commodities.  Dantzig–Wolfe reformulates this as
// a restricted master program over convex combinations of per-commodity
// flow proposals, priced by per-commodity transportation subproblems.
// The subproblems are independent, so each column-generation round solves
// all K of them in parallel across the available solver services —
// "independent problems are solved in parallel thus increasing overall
// performance in accordance with the number of available services".
package dw

import (
	"context"
	"fmt"
	"math/big"
	"math/rand"
	"strings"

	"mathcloud/internal/simplex"
)

// Problem is a multi-commodity transportation instance.
type Problem struct {
	Sources     []string
	Sinks       []string
	Commodities []string
	// Supply[k][i] and Demand[k][j] are per-commodity balances
	// (Σ supply = Σ demand per commodity).
	Supply []map[string]*big.Rat
	Demand []map[string]*big.Rat
	// Cost[k][i][j] is the per-unit shipping cost of commodity k on arc
	// (i, j).
	Cost []map[string]map[string]*big.Rat
	// Capacity[i][j] is the joint arc capacity over all commodities.
	// Only arcs present in the map are capacitated; the rest are
	// unconstrained, which models shared bottleneck links.
	Capacity map[string]map[string]*big.Rat
}

// Arc identifies one source→sink link.
type Arc struct {
	Source, Sink string
}

// CapacitatedArcs returns the capacitated arcs in deterministic order.
func (p *Problem) CapacitatedArcs() []Arc {
	var arcs []Arc
	for _, s := range p.Sources {
		row, ok := p.Capacity[s]
		if !ok {
			continue
		}
		for _, t := range p.Sinks {
			if _, ok := row[t]; ok {
				arcs = append(arcs, Arc{Source: s, Sink: t})
			}
		}
	}
	return arcs
}

// Generate builds a random feasible instance with the given sizes, using a
// deterministic seed.  Capacities are sized to make the joint constraints
// binding but feasible.
func Generate(numSources, numSinks, numCommodities int, seed int64) *Problem {
	rng := rand.New(rand.NewSource(seed))
	p := &Problem{Capacity: map[string]map[string]*big.Rat{}}
	for i := 0; i < numSources; i++ {
		p.Sources = append(p.Sources, fmt.Sprintf("s%d", i+1))
	}
	for j := 0; j < numSinks; j++ {
		p.Sinks = append(p.Sinks, fmt.Sprintf("t%d", j+1))
	}
	for k := 0; k < numCommodities; k++ {
		p.Commodities = append(p.Commodities, fmt.Sprintf("k%d", k+1))
		supply := map[string]*big.Rat{}
		demand := map[string]*big.Rat{}
		cost := map[string]map[string]*big.Rat{}
		// Random demands, supplies balanced to match.
		total := 0
		for _, t := range p.Sinks {
			d := 1 + rng.Intn(9)
			demand[t] = big.NewRat(int64(d), 1)
			total += d
		}
		base := total / numSources
		rem := total - base*numSources
		for si, s := range p.Sources {
			v := base
			if si < rem {
				v++
			}
			supply[s] = big.NewRat(int64(v), 1)
		}
		for _, s := range p.Sources {
			cost[s] = map[string]*big.Rat{}
			for _, t := range p.Sinks {
				cost[s][t] = big.NewRat(int64(1+rng.Intn(20)), 1)
			}
		}
		p.Supply = append(p.Supply, supply)
		p.Demand = append(p.Demand, demand)
		p.Cost = append(p.Cost, cost)
	}
	// Joint capacities: feasible by construction but binding, and only
	// on the arcs out of the first source — the shared bottleneck link
	// of the network.  The proportional routing
	// x_kst = supply_ks·demand_kt / total_k is always feasible, so
	// cap = 1.2 × its per-arc load admits it while staying far below
	// what cost-greedy per-commodity routings want — which forces the
	// commodities to genuinely couple through the capacity constraints
	// and the decomposition to iterate.
	bottleneck := p.Sources[0]
	p.Capacity[bottleneck] = map[string]*big.Rat{}
	for _, t := range p.Sinks {
		need := new(big.Rat)
		for k := range p.Commodities {
			totalK := new(big.Rat)
			for _, tt := range p.Sinks {
				totalK.Add(totalK, p.Demand[k][tt])
			}
			load := new(big.Rat).Mul(p.Supply[k][bottleneck], p.Demand[k][t])
			load.Quo(load, totalK)
			need.Add(need, load)
		}
		need.Mul(need, big.NewRat(6, 5))
		p.Capacity[bottleneck][t] = need
	}
	return p
}

// DirectLP builds the full multicommodity LP (all commodities and arcs in
// one problem) — the monolithic baseline the decomposition is checked
// against.
func (p *Problem) DirectLP() (*simplex.Problem, map[string]int) {
	nArcs := len(p.Sources) * len(p.Sinks)
	n := nArcs * len(p.Commodities)
	lp := simplex.NewProblem(simplex.Minimize, n)
	cols := make(map[string]int, n)
	idx := 0
	for k := range p.Commodities {
		for _, s := range p.Sources {
			for _, t := range p.Sinks {
				cols[varName(k, s, t)] = idx
				lp.C[idx] = new(big.Rat).Set(p.Cost[k][s][t])
				idx++
			}
		}
	}
	row := func() []*big.Rat { return make([]*big.Rat, n) }
	// Supply rows: Σ_t x_kst = supply.
	for k := range p.Commodities {
		for _, s := range p.Sources {
			r := row()
			for _, t := range p.Sinks {
				r[cols[varName(k, s, t)]] = big.NewRat(1, 1)
			}
			lp.AddConstraint(r, simplex.EQ, p.Supply[k][s])
		}
		for _, t := range p.Sinks {
			r := row()
			for _, s := range p.Sources {
				r[cols[varName(k, s, t)]] = big.NewRat(1, 1)
			}
			lp.AddConstraint(r, simplex.EQ, p.Demand[k][t])
		}
	}
	// Joint capacity rows: Σ_k x_kst ≤ cap, capacitated arcs only.
	for _, arc := range p.CapacitatedArcs() {
		r := row()
		for k := range p.Commodities {
			r[cols[varName(k, arc.Source, arc.Sink)]] = big.NewRat(1, 1)
		}
		lp.AddConstraint(r, simplex.LE, p.Capacity[arc.Source][arc.Sink])
	}
	return lp, cols
}

func varName(k int, s, t string) string {
	return fmt.Sprintf("x[%d,%s,%s]", k, s, t)
}

// SubproblemModel renders the pricing subproblem of commodity k with the
// given arc dual prices as an AMPL model+data text — the form in which it
// is shipped to a remote solver service, matching the paper's "problems
// solved by remote optimization services via AMPL translator".
func (p *Problem) SubproblemModel(k int, arcDuals map[string]map[string]*big.Rat) string {
	var b strings.Builder
	b.WriteString(`
set SRC;
set SNK;
param supply {SRC};
param demand {SNK};
param rcost {SRC, SNK};
var flow {SRC, SNK} >= 0;
minimize ReducedCost: sum {i in SRC, j in SNK} rcost[i,j] * flow[i,j];
subject to Supply {i in SRC}: sum {j in SNK} flow[i,j] = supply[i];
subject to Demand {j in SNK}: sum {i in SRC} flow[i,j] = demand[j];
data;
`)
	b.WriteString("set SRC :=")
	for _, s := range p.Sources {
		b.WriteString(" " + s)
	}
	b.WriteString(";\nset SNK :=")
	for _, t := range p.Sinks {
		b.WriteString(" " + t)
	}
	b.WriteString(";\nparam supply :=")
	for _, s := range p.Sources {
		fmt.Fprintf(&b, " %s %s", s, p.Supply[k][s].RatString())
	}
	b.WriteString(";\nparam demand :=")
	for _, t := range p.Sinks {
		fmt.Fprintf(&b, " %s %s", t, p.Demand[k][t].RatString())
	}
	b.WriteString(";\nparam rcost :=\n")
	for _, s := range p.Sources {
		for _, t := range p.Sinks {
			rc := new(big.Rat).Set(p.Cost[k][s][t])
			if arcDuals != nil && arcDuals[s] != nil && arcDuals[s][t] != nil {
				rc.Sub(rc, arcDuals[s][t])
			}
			fmt.Fprintf(&b, "  %s %s %s\n", s, t, rc.RatString())
		}
	}
	b.WriteString(";\nend;\n")
	return b.String()
}

// SubSolution is a priced flow proposal returned by a pricing subproblem.
type SubSolution struct {
	// Flow[s][t] is the proposal's flow on each arc.
	Flow map[string]map[string]*big.Rat
	// ReducedObjective is the subproblem objective (Σ (c−y)·x).
	ReducedObjective *big.Rat
}

// Solver solves one pricing subproblem, presented as AMPL model text, and
// returns the variable assignment by instantiated name ("flow[s1,t2]") and
// the objective.  Implementations dispatch to local code or to remote
// solver services.
type Solver interface {
	SolveModel(ctx context.Context, model string) (objective *big.Rat, solution map[string]*big.Rat, err error)
}

// LocalSolver solves models in-process (translator + simplex, no HTTP).
type LocalSolver struct{}

// SolveModel implements Solver.
func (LocalSolver) SolveModel(_ context.Context, model string) (*big.Rat, map[string]*big.Rat, error) {
	return localSolve(model)
}
