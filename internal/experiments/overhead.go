package experiments

import (
	"context"
	"fmt"
	"io"
	"log"

	"mathcloud/internal/cas"
	"mathcloud/internal/matrixinv"
	"mathcloud/internal/platform"
	"mathcloud/internal/workflow"
)

// OverheadOrders are the Hilbert orders for the overhead measurement.
var OverheadOrders = []int{48, 72, 96, 120}

// RunOverhead reproduces the Section 4 claim that "the overhead introduced
// by the platform including data transfer is about 2-5% of total computing
// time": the 4-block inversion is run once through services (HTTP, JSON,
// queueing) and once in-process with identical parallel structure; the
// difference is the platform.
func RunOverhead(w io.Writer) error {
	d, err := platform.StartLocal(platform.Options{Workers: 16})
	if err != nil {
		return err
	}
	defer d.Close()
	names, err := cas.Deploy(d.Container, "maxima", 4)
	if err != nil {
		return err
	}
	uris := make([]string, len(names))
	for i, n := range names {
		uris[i] = d.Container.ServiceURI(n)
	}
	inv := &workflow.HTTPInvoker{}

	fmt.Fprintln(w, "Platform overhead — distributed 4-block inversion vs identical in-process run")
	fmt.Fprintln(w, "(paper: overhead including data transfer is about 2-5% of total computing time)")
	fmt.Fprintln(w)
	tab := newTable("N", "Via services", "In-process", "Overhead", "Data moved")
	for _, n := range OverheadOrders {
		o, err := matrixinv.MeasureOverhead(context.Background(), inv, inv, uris, n)
		if err != nil {
			return err
		}
		tab.add(fmt.Sprint(o.N),
			o.Platform.Round(1e6).String(),
			o.Pure.Round(1e6).String(),
			fmt.Sprintf("%.1f%%", o.Percent),
			fmt.Sprintf("%.1f MB", float64(o.DataBytes)/1e6))
	}
	tab.write(w)
	fmt.Fprintln(w)
	fmt.Fprintln(w, "Overhead shrinks as computation grows (the paper's Maxima jobs ran for")
	fmt.Fprintln(w, "minutes to hours, where the same absolute overhead amounts to 2-5%).")
	return nil
}

func quietLog() *log.Logger {
	return log.New(io.Discard, "", 0)
}
