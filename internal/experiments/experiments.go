// Package experiments regenerates every evaluation artifact of the paper:
// Table 1 (the unified REST API), Table 2 (Hilbert matrix inversion
// speedups), Figures 1–3 (container, workflow and security mechanisms
// exercised end to end) and the quantitative claims of Section 4
// (platform overhead, Dantzig–Wolfe scaling, the X-ray pipeline verdict).
//
// Each experiment is a self-contained function that deploys the platform
// locally, drives it through real HTTP, and prints a table mirroring the
// paper's.  The cmd/experiments binary exposes them as sub-commands; the
// repository benchmarks reuse the same drivers.
package experiments

import (
	"fmt"
	"io"
	"sort"
)

// Experiment is one reproducible evaluation artifact.
type Experiment struct {
	// ID is the sub-command name ("table2", "fig1", ...).
	ID string
	// Artifact names the paper artifact ("Table 2", "§4 claim", ...).
	Artifact string
	// Summary says what is being shown.
	Summary string
	// Run executes the experiment, writing its report to w.
	Run func(w io.Writer) error
}

// All returns the experiments in presentation order.
func All() []Experiment {
	return []Experiment{
		{"table1", "Table 1", "REST API of computational web service (conformance matrix)", RunTable1},
		{"table2", "Table 2", "Hilbert matrix inversion: serial vs 4-block parallel, speedup", RunTable2},
		{"fig1", "Fig. 1", "service container architecture: one job through each adapter", RunFig1},
		{"fig2", "Fig. 2", "workflow system: typed DAG, block states, composite service", RunFig2},
		{"fig3", "Fig. 3", "security mechanism: authentication, authorization, delegation", RunFig3},
		{"overhead", "§4 claim", "platform overhead vs pure computation (paper: 2-5%)", RunOverhead},
		{"dw", "§4 claim", "Dantzig-Wolfe subproblem scaling with solver pool size", RunDW},
		{"xray", "§4 claim", "X-ray diffractometry pipeline: dominant structure class", RunXRay},
	}
}

// Lookup finds an experiment by ID.
func Lookup(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// table is a minimal fixed-width table writer used by all reports.
type table struct {
	header []string
	rows   [][]string
}

func newTable(header ...string) *table { return &table{header: header} }

func (t *table) add(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) write(w io.Writer) {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				fmt.Fprint(w, "  ")
			}
			fmt.Fprintf(w, "%-*s", widths[i], c)
		}
		fmt.Fprintln(w)
	}
	line(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		for j := 0; j < widths[i]; j++ {
			sep[i] += "-"
		}
	}
	line(sep)
	for _, row := range t.rows {
		line(row)
	}
}

// sortedKeys returns map keys in sorted order, for deterministic reports.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
