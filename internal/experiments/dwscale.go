package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"mathcloud/internal/ampl"
	"mathcloud/internal/dw"
	"mathcloud/internal/platform"
	"mathcloud/internal/simplex"
	"mathcloud/internal/workflow"
)

// DWPoolSizes are the solver-pool sizes swept by the experiment.
var DWPoolSizes = []int{1, 2, 4, 8}

// DWShape is the multicommodity instance shape (sources, sinks,
// commodities).
var DWShape = [3]int{8, 8, 8}

// DWSlowdown is the simulated hardware slowdown of the solver services
// (see adapter.NativeConfig.SimulatedSlowdown): each pool member models a
// solver machine 4x slower than the local substrate, so that concurrent
// subproblem solves overlap the way they do on distinct machines.
const DWSlowdown = 4.0

// RunDW reproduces the Section 4 claim that with the dispatcher service
// "independent problems are solved in parallel thus increasing overall
// performance in accordance with the number of available services": the
// Dantzig–Wolfe decomposition of a multicommodity transportation problem
// is run against solver-service pools of growing size, each pool member
// being a separate single-worker container (one sequential solver
// installation).
func RunDW(w io.Writer) error {
	p := dw.Generate(DWShape[0], DWShape[1], DWShape[2], 20130901)

	// Monolithic reference solution for correctness, on a reduced
	// instance (the full exact LP is too large to solve monolithically
	// in reasonable time — which is rather the point of decomposing).
	small := dw.Generate(4, 4, 4, 20130901)
	lp, _ := small.DirectLP()
	direct, err := simplex.Solve(lp)
	if err != nil {
		return err
	}
	smallRes, err := dw.Decompose(context.Background(), small, dw.LocalSolver{}, dw.Options{})
	if err != nil {
		return err
	}
	if direct.Status != simplex.Optimal || smallRes.Objective.Cmp(direct.Objective) != 0 {
		return fmt.Errorf("experiments: dw: decomposition disagrees with direct LP on the reference instance")
	}

	fmt.Fprintln(w, "Dantzig-Wolfe decomposition of multicommodity transportation")
	fmt.Fprintf(w, "(%d sources x %d sinks x %d commodities; subproblems priced via AMPL\n",
		DWShape[0], DWShape[1], DWShape[2])
	fmt.Fprintln(w, " solver services, one single-worker container per pool member)")
	fmt.Fprintln(w)

	tab := newTable("Solver services", "Wall time", "Speedup", "Pricing time", "Pricing speedup", "Rounds", "Subproblems")
	var base, basePricing time.Duration
	var refObjective string
	for _, poolSize := range DWPoolSizes {
		// One container per solver service, each with a single worker:
		// a pool member can run exactly one subproblem at a time.
		var deployments []*platform.Deployment
		solvers := make([]dw.Solver, 0, poolSize)
		ampl.RegisterFuncs()
		for i := 0; i < poolSize; i++ {
			d, err := platform.StartLocal(platform.Options{Workers: 1})
			if err != nil {
				return err
			}
			deployments = append(deployments, d)
			if err := d.Container.Deploy(ampl.SolverServiceConfigSlow("solver", DWSlowdown)); err != nil {
				return err
			}
			solvers = append(solvers, &dw.ServiceSolver{
				Invoker: &workflow.HTTPInvoker{},
				URI:     d.Container.ServiceURI("solver"),
			})
		}
		pool := dw.NewPool(solvers...)

		start := time.Now()
		res, err := dw.Decompose(context.Background(), p, pool, dw.Options{})
		elapsed := time.Since(start)
		for _, d := range deployments {
			d.Close()
		}
		if err != nil {
			return err
		}
		if err := p.Validate(res.Flow); err != nil {
			return err
		}
		if refObjective == "" {
			refObjective = res.Objective.RatString()
		} else if res.Objective.RatString() != refObjective {
			return fmt.Errorf("experiments: dw: pool size %d found objective %s, expected %s",
				poolSize, res.Objective.RatString(), refObjective)
		}
		if base == 0 {
			base = elapsed
			basePricing = res.PricingWall
		}
		tab.add(fmt.Sprint(poolSize),
			elapsed.Round(time.Millisecond).String(),
			fmt.Sprintf("%.2f", float64(base)/float64(elapsed)),
			res.PricingWall.Round(time.Millisecond).String(),
			fmt.Sprintf("%.2f", float64(basePricing)/float64(res.PricingWall)),
			fmt.Sprint(res.Rounds),
			fmt.Sprint(res.SubproblemsSolved))
	}
	tab.write(w)
	fmt.Fprintf(w, "\nEvery pool size reaches the same exact optimum %s; the decomposition was\n", refObjective)
	fmt.Fprintln(w, "verified against the monolithic LP on a reference instance.")
	return nil
}
