package experiments

import (
	"context"
	"fmt"
	"io"
	"strings"
	"time"

	"mathcloud/internal/cas"
	"mathcloud/internal/client"
	"mathcloud/internal/core"
	"mathcloud/internal/matrixinv"
	"mathcloud/internal/platform"
	"mathcloud/internal/ratmat"
)

// RunFig2 exercises the workflow system of Fig. 2: a typed DAG is built
// (the matrix-inversion workflow), saved to the workflow management
// service, published as a composite service, executed through the unified
// REST API, and its per-block states are observed through the job
// resource — the information the graphical editor uses to paint blocks
// during a run.
func RunFig2(w io.Writer) error {
	d, err := platform.StartLocal(platform.Options{Workers: 16, WithWMS: true})
	if err != nil {
		return err
	}
	defer d.Close()
	names, err := cas.Deploy(d.Container, "maxima", 4)
	if err != nil {
		return err
	}
	uris := make([]string, len(names))
	for i, n := range names {
		uris[i] = d.Container.ServiceURI(n)
	}

	const n = 12
	wf, err := matrixinv.BuildBlockWorkflow("hilbert-inverse", uris, n, n/2)
	if err != nil {
		return err
	}
	if err := d.WMS.Save(wf); err != nil {
		return err
	}
	fmt.Fprintln(w, "Fig. 2 — workflow management system")
	fmt.Fprintln(w)
	fmt.Fprintf(w, "Saved workflow %q: %d blocks, %d edges; published as composite service %s\n",
		wf.Name, len(wf.Blocks), len(wf.Edges), d.WMS.ServiceURI(wf.Name))

	// Execute through the composite service like any other service.
	cl := client.New()
	svc := cl.Service(d.WMS.ServiceURI(wf.Name))
	job, err := svc.Submit(context.Background(), core.Values{
		"matrix": ratmat.Hilbert(n).ToJSON(),
	}, 0)
	if err != nil {
		return err
	}

	// Poll the job resource and collect block-state snapshots, as the
	// editor does while painting running workflows.
	sawRunning := false
	var final *core.Job
	for {
		j, err := svc.Job(context.Background(), job.URI)
		if err != nil {
			return err
		}
		for _, st := range j.Blocks {
			if st == core.StateRunning {
				sawRunning = true
			}
		}
		if j.State.Terminal() {
			final = j
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Fast blocks can finish between two polls; the job log keeps the
	// full transition history, so RUNNING states are observable through
	// the REST API even when sampling missed the live window.
	for _, line := range final.Log {
		if strings.HasSuffix(line, ": "+string(core.StateRunning)) {
			sawRunning = true
		}
	}
	if final.State != core.StateDone {
		return fmt.Errorf("experiments: fig2: workflow job %s: %s", final.State, final.Error)
	}
	inv, err := ratmat.FromJSON(final.Outputs["inverse"])
	if err != nil {
		return err
	}
	exact := inv.Equal(ratmat.HilbertInverse(n))

	tab := newTable("Block", "Final state")
	for _, b := range sortedKeys(final.Blocks) {
		tab.add(b, string(final.Blocks[b]))
	}
	tab.write(w)
	fmt.Fprintf(w, "\nObserved RUNNING block states during execution: %v\n", sawRunning)
	fmt.Fprintf(w, "Result is the exact Hilbert(%d) inverse: %v\n", n, exact)

	// The JSON document round trip the editor's download/upload offers.
	data, err := wf.Encode()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Workflow JSON document: %d bytes (download/edit/upload supported)\n", len(data))
	return nil
}
