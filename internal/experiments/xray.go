package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"io"

	"mathcloud/internal/container"
	"mathcloud/internal/grid"
	"mathcloud/internal/platform"
	"mathcloud/internal/scatter"
	"mathcloud/internal/torque"
	"mathcloud/internal/workflow"
)

// RunXRay reproduces the X-ray diffractometry application of Section 4:
// scattering curves of every library nanostructure are computed by curve
// services routed through the simulated grid (the original used the
// European Grid Infrastructure), the distribution fit runs three solvers
// on a cluster-backed service, and the best fit reveals the dominant
// structure class — the published finding is the prevalence of
// low-aspect-ratio toroids.
func RunXRay(w io.Writer) error {
	d, err := platform.StartLocal(platform.Options{Workers: 16})
	if err != nil {
		return err
	}
	defer d.Close()
	scatter.RegisterFuncs()

	// Grid infrastructure for the curve services.
	var sites []*grid.Site
	for i, name := range []string{"RU-Moscow", "RU-Dubna", "RU-Protvino"} {
		c, err := torque.New(name, []torque.NodeSpec{{Name: fmt.Sprintf("%s-n1", name), Slots: 4}}, nil)
		if err != nil {
			return err
		}
		defer c.Close()
		sites = append(sites, &grid.Site{
			Name: name, Cluster: c, VOs: []string{"mathcloud"},
			Reliability: 0.85 + 0.05*float64(i),
		})
	}
	infra, err := grid.New(sites, 7)
	if err != nil {
		return err
	}
	d.Registry.Register("grid", grid.NewAdapterFactory(infra, d.Registry))

	// Cluster for the fit service.
	cluster, err := torque.New("hpc", []torque.NodeSpec{{Name: "hpc-n1", Slots: 8}}, nil)
	if err != nil {
		return err
	}
	defer cluster.Close()
	clusters := torque.NewClusterRegistry()
	clusters.Add(cluster)
	d.Registry.Register("cluster", torque.NewAdapterFactory(clusters, d.Registry))

	// Curve services: grid adapter wrapping the native curve function.
	retries := 6
	var curveURIs []string
	for i := 0; i < 3; i++ {
		cfg := scatter.CurveServiceConfig(fmt.Sprintf("xray-curve-%d", i+1))
		gridCfg, err := json.Marshal(grid.AdapterConfig{
			VO: "mathcloud", Slots: 1, Retries: &retries,
			Exec: torque.ExecConfig{Kind: "native", Config: cfg.Adapter.Config},
		})
		if err != nil {
			return err
		}
		cfg.Adapter = container.AdapterSpec{Kind: "grid", Config: gridCfg}
		if err := d.Container.Deploy(cfg); err != nil {
			return err
		}
		curveURIs = append(curveURIs, d.Container.ServiceURI(cfg.Description.Name))
	}
	// Fit service: cluster adapter wrapping the native fit function.
	fitCfg := scatter.FitServiceConfig("xray-fit")
	clusterCfg, err := json.Marshal(torque.AdapterConfig{
		Cluster: "hpc", Slots: 2, Walltime: "60s",
		Exec: torque.ExecConfig{Kind: "native", Config: fitCfg.Adapter.Config},
	})
	if err != nil {
		return err
	}
	fitCfg.Adapter = container.AdapterSpec{Kind: "cluster", Config: clusterCfg}
	if err := d.Container.Deploy(fitCfg); err != nil {
		return err
	}

	// The synthetic film: a planted toroid-dominated mixture.
	lib := scatter.Library()
	q := scatter.QGrid(5, 70, 60)
	curves := make([][]float64, len(lib))
	for i, s := range lib {
		curves[i] = scatter.Curve(s, q, 400)
	}
	obs := scatter.Synthesize(lib, q, curves, 0.01, 20110101)

	inv := &workflow.HTTPInvoker{}
	res, err := scatter.RunPipeline(context.Background(), inv,
		curveURIs, d.Container.ServiceURI("xray-fit"), lib, obs, 400, 3000)
	if err != nil {
		return err
	}

	fmt.Fprintln(w, "X-ray diffractometry pipeline (curves on the grid, fits on the cluster)")
	fmt.Fprintln(w)
	tab := newTable("Solver", "chi^2", "Toroid share")
	for i, f := range res.Fits {
		share := scatter.ClassShare(lib, f.Weights)[scatter.ClassToroid]
		marker := ""
		if i == res.Best {
			marker = " (best)"
		}
		tab.add(string(f.Solver)+marker, fmt.Sprintf("%.3e", f.Chi2), fmt.Sprintf("%.2f", share))
	}
	tab.write(w)
	fmt.Fprintln(w)
	tab2 := newTable("Class", "Fitted share", "Planted share")
	planted := scatter.ClassShare(lib, obs.TrueWeights)
	for _, cls := range scatter.Classes() {
		tab2.add(string(cls),
			fmt.Sprintf("%.2f", res.Shares[cls]),
			fmt.Sprintf("%.2f", planted[cls]))
	}
	tab2.write(w)
	fmt.Fprintf(w, "\nDominant class: %s (share %.2f) — paper's finding: low-aspect-ratio toroids prevail.\n",
		res.Dominant, res.DominantShare)
	if res.Dominant != scatter.ClassToroid {
		return fmt.Errorf("experiments: xray: dominant class %s, want toroid", res.Dominant)
	}
	return nil
}
