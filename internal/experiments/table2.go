package experiments

import (
	"context"
	"fmt"
	"io"

	"mathcloud/internal/cas"
	"mathcloud/internal/matrixinv"
	"mathcloud/internal/platform"
	"mathcloud/internal/workflow"
)

// Table2Orders are the Hilbert orders used by the experiment.  The paper
// runs N = 250..500 on Maxima, where serial inversions take 8–109
// minutes; exact rational inversion in-process is far faster per entry,
// so the orders are scaled down to keep the serial column in the
// 0.1–15 second range while preserving the 2:1 span of the original
// sweep.  The claim under test is the *shape*: the distributed 4-block
// workflow loses to one service at small N (platform overhead dominates)
// and wins increasingly as N grows, exactly as the paper's speedups grow
// from 1.60 to 2.73 over its sweep.
var Table2Orders = []int{32, 48, 64, 80, 96}

// Table2Slowdown is the simulated hardware slowdown of the CAS services
// (adapter.NativeConfig.SimulatedSlowdown).  The paper's measurements come
// from Maxima instances on separate machines, where the per-service
// compute genuinely overlaps; on a single test CPU only sleeping overlaps,
// so each CAS service models a machine 4x slower than the local substrate.
// Both the serial and the parallel column run against the same slowed
// services, so the comparison stays fair.
const Table2Slowdown = 4.0

// RunTable2 reproduces Table 2: serial execution time (one CAS service),
// parallel execution time (4-block decomposition workflow over a pool of
// CAS services) and the observed speedup.
func RunTable2(w io.Writer) error {
	return runTable2(w, Table2Orders)
}

func runTable2(w io.Writer, orders []int) error {
	d, err := platform.StartLocal(platform.Options{Workers: 16})
	if err != nil {
		return err
	}
	defer d.Close()
	names, err := cas.DeploySlow(d.Container, "maxima", 4, Table2Slowdown)
	if err != nil {
		return err
	}
	uris := make([]string, len(names))
	for i, n := range names {
		uris[i] = d.Container.ServiceURI(n)
	}
	inv := &workflow.HTTPInvoker{}
	rows, err := matrixinv.RunTable2(context.Background(), inv, inv, uris, orders)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Table 2 — Hilbert (NxN) matrix inversion in MathCloud")
	fmt.Fprintln(w, "(paper: N=250..500 via Maxima, speedups 1.60 -> 2.73; here exact")
	fmt.Fprintln(w, " rational arithmetic at scaled orders, same 4-block workflow)")
	fmt.Fprintln(w)
	tab := newTable("N", "Serial (1 service)", "Parallel (4-block workflow)", "Speedup")
	for _, r := range rows {
		tab.add(fmt.Sprint(r.N),
			r.Serial.Round(1e6).String(),
			r.Parallel.Round(1e6).String(),
			fmt.Sprintf("%.2f", r.Speedup))
	}
	tab.write(w)
	fmt.Fprintln(w)
	if len(rows) >= 2 {
		first, last := rows[0], rows[len(rows)-1]
		trend := "rises"
		if last.Speedup <= first.Speedup {
			trend = "does NOT rise"
		}
		fmt.Fprintf(w, "Speedup %s with N (%.2f at N=%d -> %.2f at N=%d); every inverse verified exactly against the closed-form Hilbert inverse.\n",
			trend, first.Speedup, first.N, last.Speedup, last.N)
	}
	return nil
}
