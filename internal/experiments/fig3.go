package experiments

import (
	"context"
	"crypto/tls"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"time"

	"mathcloud/internal/adapter"
	"mathcloud/internal/client"
	"mathcloud/internal/container"
	"mathcloud/internal/core"
	"mathcloud/internal/security"
)

// RunFig3 exercises the security mechanism of Fig. 3 over real TLS:
// service authentication by server certificate, client authentication by
// X.509 certificate and by federated web-identity token, authorization by
// allow/deny lists, and delegation by proxy list.
func RunFig3(w io.Writer) error {
	ca, err := security.NewCA("MathCloud CA")
	if err != nil {
		return err
	}
	provider, err := security.NewWebIdentityProvider(time.Hour)
	if err != nil {
		return err
	}
	guard := security.NewGuard(
		security.CertAuthenticator{},
		security.TokenAuthenticator{Provider: provider},
	)
	guard.SetPolicy("solver", security.Policy{
		Allow:   []string{security.CertIdentity("alice"), security.OpenIDIdentity("bob@google")},
		Deny:    []string{security.CertIdentity("mallory")},
		Proxies: []string{security.CertIdentity("wms.mathcloud")},
	})

	adapter.RegisterFunc("fig3.echo", func(_ context.Context, in core.Values) (core.Values, error) {
		return core.Values{"ok": true}, nil
	})
	c, err := container.New(container.Options{Guard: guard, Logger: quietLog()})
	if err != nil {
		return err
	}
	defer c.Close()
	if err := c.Deploy(container.ServiceConfig{
		Description: core.ServiceDescription{
			Name:    "solver",
			Outputs: []core.Param{{Name: "ok"}},
		},
		Adapter: container.AdapterSpec{Kind: "native",
			Config: json.RawMessage(`{"function":"fig3.echo"}`)},
	}); err != nil {
		return err
	}

	srv := httptest.NewUnstartedServer(c.Handler())
	serverCert, err := ca.IssueServer("everest", "127.0.0.1")
	if err != nil {
		return err
	}
	srv.TLS = ca.ServerTLSConfig(serverCert)
	srv.StartTLS()
	defer srv.Close()
	c.SetBaseURL(srv.URL)

	mkClient := func(cert *tls.Certificate, token string, actFor string) *client.Client {
		transport := &http.Transport{TLSClientConfig: ca.ClientTLSConfig(cert)}
		var rt http.RoundTripper = transport
		if actFor != "" {
			rt = headerRoundTripper{next: transport, header: security.ActForHeader, value: actFor}
		}
		return &client.Client{
			HTTP:  &http.Client{Timeout: 10 * time.Second, Transport: rt},
			Token: token,
		}
	}
	issueCert := func(cn string) *tls.Certificate {
		cert, err := ca.IssueClient(cn)
		if err != nil {
			panic(err)
		}
		return &cert
	}
	bobToken, err := provider.Login("bob@google")
	if err != nil {
		return err
	}

	cases := []struct {
		who    string
		client *client.Client
		want   string
	}{
		{"alice (client certificate, allowed)", mkClient(issueCert("alice"), "", ""), "allowed"},
		{"bob (OpenID bearer token, allowed)", mkClient(nil, bobToken, ""), "allowed"},
		{"eve (valid certificate, not listed)", mkClient(issueCert("eve"), "", ""), "403"},
		{"mallory (deny list)", mkClient(issueCert("mallory"), "", ""), "403"},
		{"anonymous (no credentials)", mkClient(nil, "", ""), "401"},
		{"wms acting for alice (proxy list)",
			mkClient(issueCert("wms.mathcloud"), "", security.CertIdentity("alice")), "allowed"},
		{"rogue acting for alice (not a proxy)",
			mkClient(issueCert("rogue"), "", security.CertIdentity("alice")), "403"},
		{"wms acting for eve (user not allowed)",
			mkClient(issueCert("wms.mathcloud"), "", security.CertIdentity("eve")), "403"},
	}

	tab := newTable("Request", "Expected", "Observed")
	for _, tc := range cases {
		_, err := tc.client.Service(srv.URL+"/services/solver").Call(
			context.Background(), core.Values{})
		observed := "allowed"
		if err != nil {
			var api *client.APIError
			if asAPIError(err, &api) {
				observed = fmt.Sprint(api.Status)
			} else {
				observed = "error: " + err.Error()
			}
		}
		if observed != tc.want {
			return fmt.Errorf("experiments: fig3 %q: observed %s, want %s",
				tc.who, observed, tc.want)
		}
		tab.add(tc.who, tc.want, observed)
	}
	fmt.Fprintln(w, "Fig. 3 — security mechanism over TLS (server cert + client cert / OpenID token)")
	fmt.Fprintln(w)
	tab.write(w)
	fmt.Fprintln(w, "\nAll decisions match the policy: allow/deny lists, 401 without credentials,")
	fmt.Fprintln(w, "and the proxy list admits only trusted services acting for authorized users.")
	return nil
}

type headerRoundTripper struct {
	next   http.RoundTripper
	header string
	value  string
}

func (h headerRoundTripper) RoundTrip(r *http.Request) (*http.Response, error) {
	clone := r.Clone(r.Context())
	clone.Header.Set(h.header, h.value)
	return h.next.RoundTrip(clone)
}

func asAPIError(err error, target **client.APIError) bool {
	for err != nil {
		if e, ok := err.(*client.APIError); ok {
			*target = e
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}
