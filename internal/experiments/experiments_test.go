package experiments

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

// The fast experiments run end to end in tests; the slow performance
// sweeps (table2, overhead, dw) have their drivers covered by their own
// packages and are only smoke-checked under -short skip rules.

func runExperiment(t *testing.T, id string) string {
	t.Helper()
	e, ok := Lookup(id)
	if !ok {
		t.Fatalf("experiment %q not registered", id)
	}
	var buf bytes.Buffer
	if err := e.Run(&buf); err != nil {
		t.Fatalf("%s: %v\noutput so far:\n%s", id, err, buf.String())
	}
	return buf.String()
}

func TestAllRegistered(t *testing.T) {
	ids := []string{"table1", "table2", "fig1", "fig2", "fig3", "overhead", "dw", "xray"}
	if len(All()) != len(ids) {
		t.Fatalf("registered %d experiments, want %d", len(All()), len(ids))
	}
	for _, id := range ids {
		if _, ok := Lookup(id); !ok {
			t.Errorf("experiment %q missing", id)
		}
	}
	if _, ok := Lookup("bogus"); ok {
		t.Error("bogus experiment found")
	}
}

func TestTable1Conformance(t *testing.T) {
	out := runExperiment(t, "table1")
	for _, want := range []string{
		"Service", "POST", "201, job created",
		"DELETE", "404 on re-GET", "206 partial",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("table1 output lacks %q", want)
		}
	}
}

func TestFig1AllAdapters(t *testing.T) {
	out := runExperiment(t, "fig1")
	for _, want := range []string{"via-command", "via-native", "via-script",
		"via-cluster", "via-grid", "49"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig1 output lacks %q", want)
		}
	}
}

func TestFig2WorkflowSystem(t *testing.T) {
	out := runExperiment(t, "fig2")
	for _, want := range []string{"composite service", "DONE",
		"exact Hilbert(12) inverse: true", "RUNNING block states during execution: true"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig2 output lacks %q", want)
		}
	}
}

func TestFig3Security(t *testing.T) {
	out := runExperiment(t, "fig3")
	for _, want := range []string{"alice", "mallory", "401", "403", "proxy"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig3 output lacks %q", want)
		}
	}
}

func TestXRayVerdict(t *testing.T) {
	if testing.Short() {
		t.Skip("x-ray pipeline is moderately slow")
	}
	out := runExperiment(t, "xray")
	if !strings.Contains(out, "Dominant class: toroid") {
		t.Errorf("xray output lacks the toroid verdict:\n%s", out)
	}
}

func TestTable2SmallSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("table 2 sweep is slow")
	}
	var buf bytes.Buffer
	if err := runTable2(&buf, []int{16, 24}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Speedup") {
		t.Errorf("table2 output malformed:\n%s", buf.String())
	}
}

func TestTableWriter(t *testing.T) {
	tab := newTable("A", "Blong")
	tab.add("x", "y")
	tab.add("wide-cell", "z")
	var buf bytes.Buffer
	tab.write(&buf)
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "A") || !strings.Contains(lines[0], "Blong") {
		t.Errorf("header = %q", lines[0])
	}
	var _ io.Writer = &buf
}
