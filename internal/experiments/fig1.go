package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"mathcloud/internal/adapter"
	"mathcloud/internal/client"
	"mathcloud/internal/container"
	"mathcloud/internal/core"
	"mathcloud/internal/grid"
	"mathcloud/internal/platform"
	"mathcloud/internal/torque"
)

// RunFig1 exercises the container architecture of Fig. 1: incoming
// requests are queued by the Job Manager and processed by every kind of
// pluggable adapter — Command (separate process), Native (in-process,
// the paper's Java adapter), Script (custom action), Cluster (TORQUE
// batch job) and Grid (gLite-style grid job) — with the batch and grid
// infrastructures provided by their simulators.
func RunFig1(w io.Writer) error {
	d, err := platform.StartLocal(platform.Options{Workers: 8})
	if err != nil {
		return err
	}
	defer d.Close()

	// Build the computing infrastructure behind the cluster and grid
	// adapters: one local cluster, plus a small grid of two sites.
	cluster, err := torque.New("cluster.local", []torque.NodeSpec{
		{Name: "node1", Slots: 4}, {Name: "node2", Slots: 4},
	}, []torque.QueueSpec{{Name: "batch"}})
	if err != nil {
		return err
	}
	defer cluster.Close()
	clusters := torque.NewClusterRegistry()
	clusters.Add(cluster)

	mkSite := func(name string, reliability float64) (*grid.Site, error) {
		c, err := torque.New(name, []torque.NodeSpec{{Name: name + "-n1", Slots: 4}}, nil)
		if err != nil {
			return nil, err
		}
		return &grid.Site{Name: name, Cluster: c, VOs: []string{"mathcloud"},
			Reliability: reliability}, nil
	}
	siteA, err := mkSite("RU-Moscow", 0.9)
	if err != nil {
		return err
	}
	siteB, err := mkSite("RU-Dubna", 0.8)
	if err != nil {
		return err
	}
	infra, err := grid.New([]*grid.Site{siteA, siteB}, 1)
	if err != nil {
		return err
	}
	d.Registry.Register("cluster", torque.NewAdapterFactory(clusters, d.Registry))
	d.Registry.Register("grid", grid.NewAdapterFactory(infra, d.Registry))

	// A shared native function used by the cluster and grid adapters'
	// inner execution.
	adapter.RegisterFunc("fig1.square", func(_ context.Context, in core.Values) (core.Values, error) {
		x, _ := in["x"].(float64)
		return core.Values{"y": x * x}, nil
	})

	num := func(name string) core.Param { return core.Param{Name: name} }
	deploy := func(name, kind string, cfg any) error {
		raw, err := json.Marshal(cfg)
		if err != nil {
			return err
		}
		return d.Container.Deploy(container.ServiceConfig{
			Description: core.ServiceDescription{
				Name:    name,
				Inputs:  []core.Param{num("x")},
				Outputs: []core.Param{num("y")},
			},
			Adapter: container.AdapterSpec{Kind: kind, Config: raw},
		})
	}

	if err := deploy("via-command", "command", adapter.CommandConfig{
		Command:    "/bin/sh",
		Args:       []string{"-c", `echo "{{\"y\": $(({x}*{x}))}}"`},
		StdoutJSON: true,
	}); err != nil {
		return err
	}
	if err := deploy("via-native", "native",
		adapter.NativeConfig{Function: "fig1.square"}); err != nil {
		return err
	}
	if err := deploy("via-script", "script",
		adapter.ScriptConfig{Script: "out.y = in.x * in.x"}); err != nil {
		return err
	}
	if err := deploy("via-cluster", "cluster", torque.AdapterConfig{
		Cluster: "cluster.local", Slots: 2, Walltime: "30s",
		Exec: torque.ExecConfig{Kind: "native",
			Config: json.RawMessage(`{"function":"fig1.square"}`)},
	}); err != nil {
		return err
	}
	retries := 5
	if err := deploy("via-grid", "grid", grid.AdapterConfig{
		VO: "mathcloud", Slots: 1, Retries: &retries,
		Exec: torque.ExecConfig{Kind: "native",
			Config: json.RawMessage(`{"function":"fig1.square"}`)},
	}); err != nil {
		return err
	}

	cl := client.New()
	tab := newTable("Service", "Adapter", "Result (7² = 49)", "Wall time", "Notes")
	for _, name := range []string{"via-command", "via-native", "via-script", "via-cluster", "via-grid"} {
		svc := cl.Service(d.BaseURL + "/services/" + name)
		start := time.Now()
		job, err := svc.Submit(context.Background(), core.Values{"x": 7.0}, 30*time.Second)
		if err != nil {
			return fmt.Errorf("experiments: fig1 %s: %w", name, err)
		}
		if !job.State.Terminal() {
			job, err = svc.Wait(context.Background(), job.URI)
			if err != nil {
				return err
			}
		}
		elapsed := time.Since(start)
		if job.State != core.StateDone {
			return fmt.Errorf("experiments: fig1 %s: state %s: %s", name, job.State, job.Error)
		}
		note := ""
		if len(job.Log) > 0 {
			note = job.Log[len(job.Log)-1]
		}
		tab.add(name, name[4:], fmt.Sprint(job.Outputs["y"]), elapsed.Round(time.Millisecond).String(), note)
	}
	fmt.Fprintln(w, "Fig. 1 — one request through every pluggable adapter of the container")
	fmt.Fprintln(w)
	tab.write(w)
	st := cluster.Stats()
	fmt.Fprintf(w, "\nTORQUE simulator: %d nodes, %d slots, %d finished job(s); grid sites: %v\n",
		st.Nodes, st.TotalSlots, st.FinishedJobs, infra.Sites())
	return nil
}
