package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"mathcloud/internal/cas"
	"mathcloud/internal/core"
	"mathcloud/internal/platform"
)

// RunTable1 reproduces Table 1 of the paper: the unified REST API of a
// computational web service.  A live container is probed with plain HTTP
// — no platform client — and each (resource, method) cell of the table is
// verified against the semantics the paper prescribes.
func RunTable1(w io.Writer) error {
	d, err := platform.StartLocal(platform.Options{})
	if err != nil {
		return err
	}
	defer d.Close()
	if _, err := cas.Deploy(d.Container, "maxima", 1); err != nil {
		return err
	}
	base := d.BaseURL
	httpc := &http.Client{Timeout: 30 * time.Second}

	type probe struct {
		resource, method, expect string
		run                      func() (string, error)
	}

	var jobURI, fileURI string

	do := func(method, uri string, body any) (int, map[string]any, error) {
		var reader io.Reader
		if body != nil {
			data, err := json.Marshal(body)
			if err != nil {
				return 0, nil, err
			}
			reader = bytes.NewReader(data)
		}
		req, err := http.NewRequestWithContext(context.Background(), method, uri, reader)
		if err != nil {
			return 0, nil, err
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := httpc.Do(req)
		if err != nil {
			return 0, nil, err
		}
		defer resp.Body.Close()
		var out map[string]any
		data, _ := io.ReadAll(resp.Body)
		_ = json.Unmarshal(data, &out)
		return resp.StatusCode, out, nil
	}

	probes := []probe{
		{"Service", "GET", "service description", func() (string, error) {
			status, body, err := do(http.MethodGet, base+"/services/maxima", nil)
			if err != nil {
				return "", err
			}
			if status != 200 || body["name"] != "maxima" {
				return "", fmt.Errorf("GET service: status %d body %v", status, body)
			}
			inputs, _ := body["inputs"].([]any)
			return fmt.Sprintf("200, description with %d inputs", len(inputs)), nil
		}},
		{"Service", "POST", "submit request, create job", func() (string, error) {
			status, body, err := do(http.MethodPost, base+"/services/maxima",
				map[string]any{"expr": "trace(hilbert(50))"})
			if err != nil {
				return "", err
			}
			if status != 201 {
				return "", fmt.Errorf("POST service: status %d body %v", status, body)
			}
			jobURI, _ = body["uri"].(string)
			state, _ := body["state"].(string)
			return fmt.Sprintf("201, job created (state %s)", state), nil
		}},
		{"Job", "GET", "job status and results", func() (string, error) {
			// Long-poll until done, as a client would.
			status, body, err := do(http.MethodGet, jobURI+"?wait=10s", nil)
			if err != nil {
				return "", err
			}
			state, _ := body["state"].(string)
			if status != 200 || state != string(core.StateDone) {
				return "", fmt.Errorf("GET job: status %d state %s", status, state)
			}
			outs, _ := body["outputs"].(map[string]any)
			return fmt.Sprintf("200, state DONE with %d outputs", len(outs)), nil
		}},
		{"Job", "DELETE", "cancel job, delete job data", func() (string, error) {
			status, _, err := do(http.MethodDelete, jobURI, nil)
			if err != nil {
				return "", err
			}
			if status != 200 {
				return "", fmt.Errorf("DELETE job: status %d", status)
			}
			status, _, err = do(http.MethodGet, jobURI, nil)
			if err != nil {
				return "", err
			}
			if status != 404 {
				return "", fmt.Errorf("job still present after DELETE: %d", status)
			}
			return "200, then 404 on re-GET (data deleted)", nil
		}},
		{"File", "POST", "upload file resource", func() (string, error) {
			req, err := http.NewRequest(http.MethodPost, base+"/files",
				strings.NewReader("0123456789"))
			if err != nil {
				return "", err
			}
			resp, err := httpc.Do(req)
			if err != nil {
				return "", err
			}
			defer resp.Body.Close()
			var out map[string]any
			_ = json.NewDecoder(resp.Body).Decode(&out)
			if resp.StatusCode != 201 {
				return "", fmt.Errorf("POST file: status %d", resp.StatusCode)
			}
			fileURI, _ = out["uri"].(string)
			return "201, file resource created", nil
		}},
		{"File", "GET", "get file data (full and partial)", func() (string, error) {
			req, _ := http.NewRequest(http.MethodGet, fileURI, nil)
			req.Header.Set("Range", "bytes=2-5")
			resp, err := httpc.Do(req)
			if err != nil {
				return "", err
			}
			defer resp.Body.Close()
			data, _ := io.ReadAll(resp.Body)
			if resp.StatusCode != http.StatusPartialContent || string(data) != "2345" {
				return "", fmt.Errorf("range GET: status %d data %q", resp.StatusCode, data)
			}
			return "200 full / 206 partial (ranges honoured)", nil
		}},
	}

	tab := newTable("Resource", "Method", "Paper semantics", "Observed")
	for _, p := range probes {
		observed, err := p.run()
		if err != nil {
			return fmt.Errorf("experiments: table1 %s %s: %w", p.method, p.resource, err)
		}
		tab.add(p.resource, p.method, p.expect, observed)
	}
	fmt.Fprintln(w, "Table 1 — REST API of computational web service (live conformance)")
	fmt.Fprintln(w)
	tab.write(w)
	return nil
}
