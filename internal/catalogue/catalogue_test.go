package catalogue

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"mathcloud/internal/core"
)

// fakeDescriber serves canned descriptions and can simulate outages.
type fakeDescriber struct {
	mu    sync.Mutex
	descs map[string]core.ServiceDescription
	down  map[string]bool
}

func newFakeDescriber() *fakeDescriber {
	return &fakeDescriber{
		descs: map[string]core.ServiceDescription{},
		down:  map[string]bool{},
	}
}

func (f *fakeDescriber) add(uri string, d core.ServiceDescription) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.descs[uri] = d
}

func (f *fakeDescriber) setDown(uri string, down bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.down[uri] = down
}

func (f *fakeDescriber) Describe(_ context.Context, uri string) (core.ServiceDescription, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.down[uri] {
		return core.ServiceDescription{}, fmt.Errorf("connection refused")
	}
	d, ok := f.descs[uri]
	if !ok {
		return d, fmt.Errorf("no such service")
	}
	return d, nil
}

func seeded(t *testing.T) (*Catalogue, *fakeDescriber) {
	t.Helper()
	f := newFakeDescriber()
	f.add("http://a/services/invert", core.ServiceDescription{
		Name:        "invert",
		Title:       "Matrix inversion",
		Description: "Error-free inversion of ill-conditioned Hilbert matrices using exact arithmetic.",
	})
	f.add("http://a/services/solver", core.ServiceDescription{
		Name:        "solver",
		Title:       "LP solver",
		Description: "Solves linear programs with the simplex method.",
	})
	f.add("http://b/services/xray", core.ServiceDescription{
		Name:        "xray",
		Title:       "Scattering curves",
		Description: "Computes X-ray scattering curves for carbon nanostructures.",
	})
	c := New(f)
	ctx := context.Background()
	for uri, tags := range map[string][]string{
		"http://a/services/invert": {"matrix", "cas"},
		"http://a/services/solver": {"optimization"},
		"http://b/services/xray":   {"physics"},
	} {
		if _, err := c.Register(ctx, uri, tags); err != nil {
			t.Fatal(err)
		}
	}
	return c, f
}

func TestRegisterRetrievesDescription(t *testing.T) {
	c, _ := seeded(t)
	e, err := c.Get("http://a/services/invert")
	if err != nil {
		t.Fatal(err)
	}
	if e.Description.Title != "Matrix inversion" {
		t.Errorf("title = %q", e.Description.Title)
	}
	if !e.Available {
		t.Error("fresh registration not marked available")
	}
	if !reflect.DeepEqual(e.Tags, []string{"cas", "matrix"}) {
		t.Errorf("tags = %v", e.Tags)
	}
}

func TestRegisterUnreachableServiceFails(t *testing.T) {
	c := New(newFakeDescriber())
	if _, err := c.Register(context.Background(), "http://nowhere/svc", nil); err == nil {
		t.Error("unreachable service registered")
	}
	if _, err := c.Register(context.Background(), "", nil); err == nil {
		t.Error("empty URI registered")
	}
}

func TestSearchRanksAndSnippets(t *testing.T) {
	c, _ := seeded(t)
	results := c.Search("matrix inversion", SearchOptions{})
	if len(results) == 0 {
		t.Fatal("no results")
	}
	if results[0].Name != "invert" {
		t.Errorf("top result = %s, want invert", results[0].Name)
	}
	if !strings.Contains(results[0].Snippet, "<b>inversion</b>") {
		t.Errorf("snippet %q lacks highlighted term", results[0].Snippet)
	}
}

func TestSearchByTag(t *testing.T) {
	c, _ := seeded(t)
	results := c.Search("optimization", SearchOptions{})
	if len(results) == 0 || results[0].Name != "solver" {
		t.Errorf("results = %+v", results)
	}
	// Tag filter keeps only matching entries.
	filtered := c.Search("curves solver matrix", SearchOptions{Tag: "physics"})
	for _, r := range filtered {
		if r.Name != "xray" {
			t.Errorf("tag filter leaked %s", r.Name)
		}
	}
}

func TestSearchNoQueryTermsGivesNothing(t *testing.T) {
	c, _ := seeded(t)
	if res := c.Search("", SearchOptions{}); len(res) != 0 {
		t.Errorf("empty query returned %d results", len(res))
	}
	if res := c.Search("zzzunknownterm", SearchOptions{}); len(res) != 0 {
		t.Errorf("unknown term returned %d results", len(res))
	}
}

func TestPingMarksUnavailable(t *testing.T) {
	c, f := seeded(t)
	f.setDown("http://b/services/xray", true)
	available := c.Ping(context.Background())
	if available != 2 {
		t.Errorf("available = %d, want 2", available)
	}
	e, _ := c.Get("http://b/services/xray")
	if e.Available {
		t.Error("down service still marked available")
	}
	// Search shows it but marks it; the available filter drops it.
	res := c.Search("scattering", SearchOptions{})
	if len(res) != 1 || res[0].Available {
		t.Errorf("res = %+v", res)
	}
	res = c.Search("scattering", SearchOptions{OnlyAvailable: true})
	if len(res) != 0 {
		t.Errorf("available filter kept %d results", len(res))
	}
	// Recovery.
	f.setDown("http://b/services/xray", false)
	c.Ping(context.Background())
	e, _ = c.Get("http://b/services/xray")
	if !e.Available {
		t.Error("recovered service still marked unavailable")
	}
}

func TestUserTagging(t *testing.T) {
	c, _ := seeded(t)
	if _, err := c.AddTags("http://a/services/solver", []string{"LP", "Simplex "}); err != nil {
		t.Fatal(err)
	}
	e, _ := c.Get("http://a/services/solver")
	if !reflect.DeepEqual(e.Tags, []string{"lp", "optimization", "simplex"}) {
		t.Errorf("tags = %v", e.Tags)
	}
	// The new tags are searchable.
	res := c.Search("simplex", SearchOptions{})
	found := false
	for _, r := range res {
		if r.Name == "solver" {
			found = true
		}
	}
	if !found {
		t.Error("user tag not indexed")
	}
	if _, err := c.AddTags("http://missing", []string{"x"}); err == nil {
		t.Error("tagging unknown service succeeded")
	}
}

func TestUnregister(t *testing.T) {
	c, _ := seeded(t)
	if err := c.Unregister("http://a/services/invert"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get("http://a/services/invert"); !core.IsNotFound(err) {
		t.Errorf("err = %v", err)
	}
	if res := c.Search("inversion", SearchOptions{}); len(res) != 0 {
		t.Error("unregistered service still searchable")
	}
	if err := c.Unregister("http://a/services/invert"); err == nil {
		t.Error("double unregister succeeded")
	}
}

func TestReregisterRefreshes(t *testing.T) {
	c, f := seeded(t)
	f.add("http://a/services/invert", core.ServiceDescription{
		Name:        "invert",
		Description: "Now with block decomposition support.",
	})
	if _, err := c.Register(context.Background(), "http://a/services/invert", []string{"v2"}); err != nil {
		t.Fatal(err)
	}
	res := c.Search("decomposition", SearchOptions{})
	if len(res) != 1 {
		t.Fatalf("res = %+v", res)
	}
	if c.Size() != 3 {
		t.Errorf("size = %d, want 3 (re-register must not duplicate)", c.Size())
	}
}

func TestTokenizer(t *testing.T) {
	got := Tokenize("Hilbert-matrix inversion (N×N), v2.0!")
	want := []string{"hilbert", "matrix", "inversion", "n", "n", "v2", "0"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Tokenize = %v, want %v", got, want)
	}
	if toks := Tokenize(""); len(toks) != 0 {
		t.Errorf("Tokenize(\"\") = %v", toks)
	}
}

func TestSnippetWindowAndHighlight(t *testing.T) {
	text := strings.Repeat("padding words here ", 20) +
		"the quick brown fox jumps over the lazy dog" +
		strings.Repeat(" trailing content", 20)
	s := Snippet(text, "fox dog", 80)
	if !strings.Contains(s, "<b>fox</b>") {
		t.Errorf("snippet %q lacks fox highlight", s)
	}
	if !strings.HasPrefix(s, "...") || !strings.HasSuffix(s, "...") {
		t.Errorf("snippet %q not elided on both sides", s)
	}
	// Whole-token matching: "fo" must not highlight inside "fox".
	if s2 := Snippet("the fox", "fo", 50); strings.Contains(s2, "<b>") {
		t.Errorf("partial token highlighted: %q", s2)
	}
}

// Property: index Search never returns more hits than documents, scores
// are positive and sorted descending, and adding then removing a document
// restores the previous result set.
func TestPropertyIndexConsistency(t *testing.T) {
	words := []string{"matrix", "solver", "xray", "grid", "exact", "service", "hilbert"}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ix := newIndex()
		n := 1 + rng.Intn(8)
		for i := 0; i < n; i++ {
			var doc []string
			for w := 0; w < 1+rng.Intn(10); w++ {
				doc = append(doc, words[rng.Intn(len(words))])
			}
			ix.Add(fmt.Sprintf("doc%d", i), strings.Join(doc, " "))
		}
		query := words[rng.Intn(len(words))]
		before := ix.Search(query)
		if len(before) > ix.Size() {
			return false
		}
		for i := 1; i < len(before); i++ {
			if before[i-1].Score < before[i].Score {
				return false
			}
		}
		ix.Add("extra", query+" "+query)
		ix.Remove("extra")
		after := ix.Search(query)
		if len(after) != len(before) {
			return false
		}
		for i := range after {
			if after[i].DocID != before[i].DocID {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestHTTPInterface(t *testing.T) {
	c, _ := seeded(t)
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	// Search endpoint.
	resp, err := http.Get(srv.URL + "/search?q=matrix+inversion")
	if err != nil {
		t.Fatal(err)
	}
	var out struct {
		Results []Result `json:"results"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(out.Results) == 0 || out.Results[0].Name != "invert" {
		t.Errorf("results = %+v", out.Results)
	}

	// List endpoint.
	resp, err = http.Get(srv.URL + "/services")
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		Services []Entry `json:"services"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list.Services) != 3 {
		t.Errorf("services = %d", len(list.Services))
	}

	// Ping endpoint.
	resp, err = http.Post(srv.URL+"/ping", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("ping status = %d", resp.StatusCode)
	}

	// HTML home page.
	resp, err = http.Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Errorf("home content type = %q", ct)
	}
}

func TestStartPingerRuns(t *testing.T) {
	c, f := seeded(t)
	f.setDown("http://a/services/solver", true)
	c.StartPinger(10 * time.Millisecond)
	defer c.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		e, _ := c.Get("http://a/services/solver")
		if !e.Available {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("pinger never marked the service unavailable")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	c, _ := seeded(t)
	if _, err := c.AddTags("http://a/services/solver", []string{"persisted"}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "catalogue.json")
	if err := c.Save(path); err != nil {
		t.Fatal(err)
	}

	restored := New(newFakeDescriber()) // describer not consulted on load
	if err := restored.Load(path); err != nil {
		t.Fatal(err)
	}
	if restored.Size() != 3 {
		t.Fatalf("restored size = %d, want 3", restored.Size())
	}
	e, err := restored.Get("http://a/services/solver")
	if err != nil {
		t.Fatal(err)
	}
	if !contains(e.Tags, "persisted") {
		t.Errorf("tags = %v, want persisted carried over", e.Tags)
	}
	// The index is rebuilt: search works on the restored catalogue.
	res := restored.Search("matrix inversion", SearchOptions{})
	if len(res) == 0 || res[0].Name != "invert" {
		t.Errorf("restored search = %+v", res)
	}
}

func contains(list []string, want string) bool {
	for _, v := range list {
		if v == want {
			return true
		}
	}
	return false
}

func TestLoadRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte("not json"), 0o600); err != nil {
		t.Fatal(err)
	}
	c := New(newFakeDescriber())
	if err := c.Load(path); err == nil {
		t.Error("garbage snapshot loaded")
	}
	if err := c.Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing snapshot loaded")
	}
	if err := os.WriteFile(path, []byte(`{"version": 99}`), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := c.Load(path); err == nil {
		t.Error("future snapshot version loaded")
	}
}
