package catalogue

import (
	"context"
	"fmt"
	"log/slog"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mathcloud/internal/client"
	"mathcloud/internal/core"
	"mathcloud/internal/journal"
	"mathcloud/internal/obs"
)

// Sweep metric families (DESIGN.md §5d): how often availability sweeps run,
// how long individual probes take, and how many fail.
var (
	metSweeps = obs.NewCounter("mc_sweeps_total",
		"Availability sweeps executed over the published services.")
	metSweepProbes = obs.NewHistogram("mc_sweep_probe_seconds",
		"Latency of individual availability probes (description fetch).",
		obs.LatencyBuckets)
	metSweepProbeFailures = obs.NewCounter("mc_sweep_probe_failures_total",
		"Availability probes that failed (service marked unavailable).")
)

// Entry is one published service in the catalogue.
type Entry struct {
	// URI is the service resource URI the entry was registered with.
	URI string `json:"uri"`
	// Description is the service description retrieved via the REST API
	// at registration time (and refreshed by the pinger).
	Description core.ServiceDescription `json:"description"`
	// Tags are the publisher's and users' annotations.
	Tags []string `json:"tags,omitempty"`
	// Registered is the publication time.
	Registered time.Time `json:"registered"`
	// Available reports the last ping outcome; unavailable services are
	// marked accordingly in search results.
	Available bool `json:"available"`
	// LastChecked is the time of the last availability probe.
	LastChecked time.Time `json:"lastChecked,omitempty"`
}

// Result is one search result: the entry with a highlighted snippet.
type Result struct {
	URI       string   `json:"uri"`
	Name      string   `json:"name"`
	Title     string   `json:"title,omitempty"`
	Snippet   string   `json:"snippet"`
	Tags      []string `json:"tags,omitempty"`
	Available bool     `json:"available"`
	Score     float64  `json:"score"`
}

// Describer fetches a service description by URI; it is implemented by the
// platform client and substituted in tests.
type Describer interface {
	Describe(ctx context.Context, uri string) (core.ServiceDescription, error)
}

// ClientDescriber adapts the platform client to the Describer interface.
type ClientDescriber struct {
	Client *client.Client
}

// Describe implements Describer.
func (d ClientDescriber) Describe(ctx context.Context, uri string) (core.ServiceDescription, error) {
	cl := d.Client
	if cl == nil {
		// The shared default client keeps one connection pool across all
		// catalogue pings, so periodic availability probes reuse
		// keep-alive connections instead of redialling every service.
		// It also carries the default retry policy, so one dropped
		// connection or transient 503 does not flip a healthy service to
		// "unavailable" in the catalogue.
		cl = client.Default()
	}
	return cl.Service(uri).Describe(ctx)
}

// Default sweep parameters: how many availability probes run concurrently
// and how long one probe may take before it is written off as unavailable.
const (
	defaultSweepWorkers = 8
	defaultProbeTimeout = 10 * time.Second
)

// Catalogue is the service registry with full-text search and monitoring.
type Catalogue struct {
	describer Describer

	mu      sync.RWMutex
	entries map[string]*Entry
	ix      *index

	// sweepWorkers bounds the Ping fan-out; probeTimeout is the per-probe
	// deadline.  Both are guarded by mu (set once, read per sweep).
	sweepWorkers int
	probeTimeout time.Duration

	pingStop chan struct{}
	pingOnce sync.Once

	// jl is the attached write-ahead journal (nil = not journaled); see
	// persist.go.  Set once by AttachJournal before the catalogue serves.
	jl *journal.Journal
}

// New creates a catalogue using the given describer to retrieve service
// descriptions.
func New(d Describer) *Catalogue {
	return &Catalogue{
		describer: d,
		entries:   make(map[string]*Entry),
		ix:        newIndex(),
	}
}

// SetSweepOptions tunes the availability sweep: workers bounds how many
// probes run concurrently, probeTimeout caps each individual probe.  Zero
// values keep the defaults (8 workers, 10 s per probe).
func (c *Catalogue) SetSweepOptions(workers int, probeTimeout time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sweepWorkers = workers
	c.probeTimeout = probeTimeout
}

func (c *Catalogue) sweepConfig() (workers int, probeTimeout time.Duration) {
	c.mu.RLock()
	workers, probeTimeout = c.sweepWorkers, c.probeTimeout
	c.mu.RUnlock()
	if workers <= 0 {
		workers = defaultSweepWorkers
	}
	if probeTimeout <= 0 {
		probeTimeout = defaultProbeTimeout
	}
	return workers, probeTimeout
}

// Register publishes a service: the catalogue retrieves its description
// via the unified REST API, indexes it together with the tags, and stores
// the entry.  Re-registering refreshes the description and replaces the
// publisher tags.
func (c *Catalogue) Register(ctx context.Context, uri string, tags []string) (*Entry, error) {
	uri = strings.TrimRight(uri, "/")
	if uri == "" {
		return nil, core.ErrBadRequest("catalogue: empty service URI")
	}
	desc, err := c.describer.Describe(ctx, uri)
	if err != nil {
		return nil, fmt.Errorf("catalogue: retrieve description of %s: %w", uri, err)
	}
	entry := &Entry{
		URI:         uri,
		Description: desc,
		Tags:        normalizeTags(tags),
		Registered:  time.Now(),
		Available:   true,
		LastChecked: time.Now(),
	}
	c.mu.Lock()
	if old, ok := c.entries[uri]; ok {
		entry.Registered = old.Registered
	}
	c.entries[uri] = entry
	c.reindex(entry)
	snapshot := cloneEntry(entry)
	c.mu.Unlock()
	c.logEntry(snapshot)
	return snapshot, nil
}

func normalizeTags(tags []string) []string {
	seen := make(map[string]bool)
	var out []string
	for _, t := range tags {
		t = strings.ToLower(strings.TrimSpace(t))
		if t == "" || seen[t] {
			continue
		}
		seen[t] = true
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// document renders the searchable text of an entry.
func document(e *Entry) string {
	var b strings.Builder
	d := e.Description
	b.WriteString(d.Name)
	b.WriteString(" ")
	b.WriteString(d.Title)
	b.WriteString(" ")
	b.WriteString(d.Description)
	for _, p := range append(append([]core.Param{}, d.Inputs...), d.Outputs...) {
		b.WriteString(" ")
		b.WriteString(p.Name)
		b.WriteString(" ")
		b.WriteString(p.Title)
	}
	for _, t := range append(append([]string{}, d.Tags...), e.Tags...) {
		b.WriteString(" ")
		b.WriteString(t)
	}
	return b.String()
}

// reindex re-renders an entry's searchable text and updates the inverted
// index.  The caller must hold c.mu (read or write): entries stored in the
// map are mutated under that lock, so rendering outside it would race with
// concurrent probes and tag updates.  The index takes its own lock and
// never calls back into the catalogue, so nesting it under c.mu is safe.
func (c *Catalogue) reindex(e *Entry) {
	c.ix.Add(e.URI, document(e))
}

// Unregister removes a service from the catalogue.
func (c *Catalogue) Unregister(uri string) error {
	uri = strings.TrimRight(uri, "/")
	c.mu.Lock()
	_, ok := c.entries[uri]
	delete(c.entries, uri)
	if ok {
		c.ix.Remove(uri)
	}
	c.mu.Unlock()
	if !ok {
		return core.ErrNotFound("service", uri)
	}
	c.logUnregister(uri)
	return nil
}

// Get returns the catalogue entry of a service.
func (c *Catalogue) Get(uri string) (*Entry, error) {
	uri = strings.TrimRight(uri, "/")
	c.mu.RLock()
	defer c.mu.RUnlock()
	e, ok := c.entries[uri]
	if !ok {
		return nil, core.ErrNotFound("service", uri)
	}
	return cloneEntry(e), nil
}

// AddTags attaches user tags to a published service — the catalogue's
// collaborative Web 2.0 feature.
func (c *Catalogue) AddTags(uri string, tags []string) (*Entry, error) {
	uri = strings.TrimRight(uri, "/")
	c.mu.Lock()
	e, ok := c.entries[uri]
	if !ok {
		c.mu.Unlock()
		return nil, core.ErrNotFound("service", uri)
	}
	e.Tags = normalizeTags(append(append([]string{}, e.Tags...), tags...))
	c.reindex(e)
	snapshot := cloneEntry(e)
	c.mu.Unlock()
	c.logEntry(snapshot)
	return snapshot, nil
}

// List returns all entries, sorted by URI.
func (c *Catalogue) List() []*Entry {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*Entry, 0, len(c.entries))
	for _, e := range c.entries {
		out = append(out, cloneEntry(e))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].URI < out[j].URI })
	return out
}

// Size returns the number of published services.
func (c *Catalogue) Size() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.entries)
}

// SearchOptions filter search results.
type SearchOptions struct {
	// Tag, when non-empty, restricts results to entries carrying it.
	Tag string
	// OnlyAvailable drops services that failed their last ping.
	OnlyAvailable bool
	// Limit bounds the number of results (0 = 20).
	Limit int
}

// Search runs a full-text query over service descriptions and tags and
// returns ranked results with highlighted snippets.
func (c *Catalogue) Search(query string, opts SearchOptions) []Result {
	limit := opts.Limit
	if limit <= 0 {
		limit = 20
	}
	// Without post-filters the index only needs the top `limit` hits (a
	// partial sort); filters can drop hits after ranking, so they require
	// the full ordered list to fill the page.
	topK := limit
	if opts.Tag != "" || opts.OnlyAvailable {
		topK = 0
	}
	hits := c.ix.SearchTop(query, topK)
	c.mu.RLock()
	defer c.mu.RUnlock()
	var results []Result
	for _, h := range hits {
		e, ok := c.entries[h.DocID]
		if !ok {
			continue
		}
		if opts.Tag != "" && !containsTag(e, opts.Tag) {
			continue
		}
		if opts.OnlyAvailable && !e.Available {
			continue
		}
		text := e.Description.Description
		if text == "" {
			text = e.Description.Title
		}
		results = append(results, Result{
			URI:       e.URI,
			Name:      e.Description.Name,
			Title:     e.Description.Title,
			Snippet:   Snippet(text, query, 160),
			Tags:      e.Tags,
			Available: e.Available,
			Score:     h.Score,
		})
		if len(results) >= limit {
			break
		}
	}
	return results
}

func containsTag(e *Entry, tag string) bool {
	tag = strings.ToLower(tag)
	for _, t := range e.Tags {
		if t == tag {
			return true
		}
	}
	for _, t := range e.Description.Tags {
		if strings.ToLower(t) == tag {
			return true
		}
	}
	return false
}

// Ping probes every published service once by retrieving its description
// and updates availability marks.  Probes fan out over a bounded worker
// pool (SetSweepOptions, default 8), and each probe runs under its own
// deadline, so one unresponsive service can neither starve the remaining
// probes nor consume the whole sweep budget.  It returns the number of
// available services.
func (c *Catalogue) Ping(ctx context.Context) int {
	// Every probe of one sweep carries the same request ID, so a sweep's
	// fan-out across N services shows up in each container's log as one
	// correlated group.
	ctx, sweepID := obs.EnsureRequestID(ctx)
	start := time.Now()
	metSweeps.Inc()
	c.mu.RLock()
	uris := make([]string, 0, len(c.entries))
	for uri := range c.entries {
		uris = append(uris, uri)
	}
	c.mu.RUnlock()
	workers, probeTimeout := c.sweepConfig()
	if workers > len(uris) {
		workers = len(uris)
	}
	defer func() {
		obs.Logger().LogAttrs(ctx, slog.LevelInfo, "availability sweep",
			slog.String("request_id", sweepID),
			slog.Int("services", len(uris)),
			slog.Duration("elapsed", time.Since(start)),
		)
	}()
	if workers <= 1 {
		available := 0
		for _, uri := range uris {
			if c.probe(ctx, uri, probeTimeout) {
				available++
			}
		}
		return available
	}
	var available atomic.Int64
	work := make(chan string)
	var wg sync.WaitGroup
	wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer wg.Done()
			for uri := range work {
				if c.probe(ctx, uri, probeTimeout) {
					available.Add(1)
				}
			}
		}()
	}
	for _, uri := range uris {
		work <- uri
	}
	close(work)
	wg.Wait()
	return int(available.Load())
}

// probe checks one service and records the outcome, returning whether the
// service answered.
func (c *Catalogue) probe(ctx context.Context, uri string, timeout time.Duration) bool {
	pctx, cancel := context.WithTimeout(ctx, timeout)
	probeStart := time.Now()
	desc, err := c.describer.Describe(pctx, uri)
	metSweepProbes.Observe(time.Since(probeStart).Seconds())
	if err != nil {
		metSweepProbeFailures.Inc()
	}
	cancel()
	c.mu.Lock()
	e, ok := c.entries[uri]
	if ok {
		e.Available = err == nil
		e.LastChecked = time.Now()
		if err == nil {
			e.Description = desc
			c.reindex(e)
		}
	}
	c.mu.Unlock()
	return ok && err == nil
}

// MarkUnavailable records a passive health observation: a caller (the
// federation gateway, a workflow invoker) failed to reach the service just
// now, so its entry is flipped to unavailable without waiting for the next
// sweep.  The next successful probe flips it back.  Unknown URIs are
// ignored — passive signals race with unregistration.
func (c *Catalogue) MarkUnavailable(uri string) {
	uri = strings.TrimRight(uri, "/")
	c.mu.Lock()
	if e, ok := c.entries[uri]; ok {
		e.Available = false
		e.LastChecked = time.Now()
	}
	c.mu.Unlock()
}

// StartPinger launches the periodic availability monitor.  Call Close to
// stop it.  Each probe of a sweep gets its own deadline —
// min(interval/4, 10 s) — so a single hung service cannot eat the whole
// interval and starve the probes queued behind it.
func (c *Catalogue) StartPinger(interval time.Duration) {
	if interval <= 0 {
		interval = time.Minute
	}
	c.mu.Lock()
	if c.probeTimeout <= 0 {
		perProbe := interval / 4
		if perProbe > defaultProbeTimeout {
			perProbe = defaultProbeTimeout
		}
		c.probeTimeout = perProbe
	}
	c.mu.Unlock()
	c.pingStop = make(chan struct{})
	go func() {
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				ctx, cancel := context.WithTimeout(context.Background(), interval)
				c.Ping(ctx)
				cancel()
			case <-c.pingStop:
				return
			}
		}
	}()
}

// Close stops the pinger if it was started.
func (c *Catalogue) Close() {
	c.pingOnce.Do(func() {
		if c.pingStop != nil {
			close(c.pingStop)
		}
	})
}

func cloneEntry(e *Entry) *Entry {
	out := *e
	out.Tags = append([]string(nil), e.Tags...)
	return &out
}
