// Package catalogue implements the MathCloud service catalogue: discovery,
// monitoring and annotation of computational web services.  Deployed
// services are published to the catalogue by URI; the catalogue retrieves
// their descriptions through the unified REST API, indexes them, answers
// full-text search queries with highlighted snippets (the paper's "modern
// search engine" interface), periodically pings services to report
// availability, and lets users attach tags (the collaborative Web 2.0
// feature).
package catalogue

import (
	"math"
	"sort"
	"strings"
	"sync"
	"unicode"
)

// Tokenize splits text into lowercase search terms: letter/digit runs, so
// "Hilbert-matrix inversion (N×N)" yields [hilbert matrix inversion n n].
func Tokenize(text string) []string {
	var terms []string
	var b strings.Builder
	flush := func() {
		if b.Len() > 0 {
			terms = append(terms, b.String())
			b.Reset()
		}
	}
	for _, r := range text {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			b.WriteRune(unicode.ToLower(r))
		} else {
			flush()
		}
	}
	flush()
	return terms
}

// index is an inverted index with tf-idf ranking over documents identified
// by string IDs.
type index struct {
	mu sync.RWMutex
	// postings maps a term to the term frequency per document.
	postings map[string]map[string]int
	// docTerms maps a document to its distinct terms, for removal.
	docTerms map[string][]string
	// docLen is the token count per document, for length normalization.
	docLen map[string]int
}

func newIndex() *index {
	return &index{
		postings: make(map[string]map[string]int),
		docTerms: make(map[string][]string),
		docLen:   make(map[string]int),
	}
}

// Add (re)indexes a document.
func (ix *index) Add(docID, text string) {
	terms := Tokenize(text)
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.removeLocked(docID)
	freq := make(map[string]int)
	for _, t := range terms {
		freq[t]++
	}
	distinct := make([]string, 0, len(freq))
	for t, n := range freq {
		m, ok := ix.postings[t]
		if !ok {
			m = make(map[string]int)
			ix.postings[t] = m
		}
		m[docID] = n
		distinct = append(distinct, t)
	}
	ix.docTerms[docID] = distinct
	ix.docLen[docID] = len(terms)
}

// Remove deletes a document from the index.
func (ix *index) Remove(docID string) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.removeLocked(docID)
}

func (ix *index) removeLocked(docID string) {
	for _, t := range ix.docTerms[docID] {
		delete(ix.postings[t], docID)
		if len(ix.postings[t]) == 0 {
			delete(ix.postings, t)
		}
	}
	delete(ix.docTerms, docID)
	delete(ix.docLen, docID)
}

// Size returns the number of indexed documents.
func (ix *index) Size() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.docTerms)
}

// hit is one ranked search result.
type hit struct {
	DocID string
	Score float64
}

// Search ranks all documents matching the query terms by accumulated
// tf-idf, normalized by document length.  All query terms are optional;
// documents matching more terms score higher because they accumulate more
// weight.
func (ix *index) Search(query string) []hit {
	return ix.SearchTop(query, 0)
}

// SearchTop is Search limited to the k best hits (k <= 0 returns all).  It
// selects the top k with a bounded min-heap — O(n log k) instead of fully
// sorting every matching document — so a limit-20 query over a large
// catalogue does not pay for ranking thousands of tail results.
func (ix *index) SearchTop(query string, k int) []hit {
	terms := Tokenize(query)
	if len(terms) == 0 {
		return nil
	}
	ix.mu.RLock()
	n := len(ix.docTerms)
	if n == 0 {
		ix.mu.RUnlock()
		return nil
	}
	scores := make(map[string]float64)
	seen := make(map[string]bool)
	for _, t := range terms {
		if seen[t] {
			continue
		}
		seen[t] = true
		docs, ok := ix.postings[t]
		if !ok {
			continue
		}
		idf := math.Log(1 + float64(n)/float64(len(docs)))
		for docID, tf := range docs {
			norm := 1.0
			if l := ix.docLen[docID]; l > 0 {
				norm = 1 / math.Sqrt(float64(l))
			}
			scores[docID] += (1 + math.Log(float64(tf))) * idf * norm
		}
	}
	ix.mu.RUnlock()

	if k <= 0 || k >= len(scores) {
		hits := make([]hit, 0, len(scores))
		for docID, s := range scores {
			hits = append(hits, hit{DocID: docID, Score: s})
		}
		sort.Slice(hits, func(i, j int) bool { return betterHit(hits[i], hits[j]) })
		return hits
	}

	// Bounded min-heap of the k best hits: the root is the worst retained
	// hit, evicted whenever a better one arrives.
	heap := make([]hit, 0, k)
	for docID, s := range scores {
		h := hit{DocID: docID, Score: s}
		if len(heap) < k {
			heap = append(heap, h)
			siftUp(heap, len(heap)-1)
			continue
		}
		if betterHit(h, heap[0]) {
			heap[0] = h
			siftDown(heap, 0)
		}
	}
	sort.Slice(heap, func(i, j int) bool { return betterHit(heap[i], heap[j]) })
	return heap
}

// betterHit reports whether a ranks above b: higher score first, ties
// broken by document ID for determinism.
func betterHit(a, b hit) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	return a.DocID < b.DocID
}

// siftUp restores the min-heap property (worst hit at the root) after an
// append at index i.
func siftUp(h []hit, i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if betterHit(h[parent], h[i]) {
			h[parent], h[i] = h[i], h[parent]
			i = parent
			continue
		}
		break
	}
}

// siftDown restores the min-heap property after replacing the root.
func siftDown(h []hit, i int) {
	for {
		worst := i
		if l := 2*i + 1; l < len(h) && betterHit(h[worst], h[l]) {
			worst = l
		}
		if r := 2*i + 2; r < len(h) && betterHit(h[worst], h[r]) {
			worst = r
		}
		if worst == i {
			return
		}
		h[i], h[worst] = h[worst], h[i]
		i = worst
	}
}

// Snippet extracts a window of text around the first occurrence of any
// query term and wraps every query-term occurrence inside the window in
// <b>…</b> markers, mimicking search-engine result snippets.  The text is
// treated as plain text; the caller escapes it for HTML before applying
// the markers (HighlightHTML does both).
func Snippet(text, query string, window int) string {
	if window <= 0 {
		window = 160
	}
	terms := Tokenize(query)
	lower := strings.ToLower(text)
	first := -1
	for _, t := range terms {
		if i := indexToken(lower, t); i >= 0 && (first < 0 || i < first) {
			first = i
		}
	}
	if first < 0 {
		if len(text) <= window {
			return highlight(text, terms)
		}
		return highlight(text[:window], terms) + "..."
	}
	start := first - window/4
	if start < 0 {
		start = 0
	}
	end := start + window
	if end > len(text) {
		end = len(text)
	}
	// Align to rune boundaries.
	for start > 0 && !isBoundary(text[start]) {
		start--
	}
	for end < len(text) && !isBoundary(text[end]) {
		end++
	}
	out := highlight(text[start:end], terms)
	if start > 0 {
		out = "..." + out
	}
	if end < len(text) {
		out += "..."
	}
	return out
}

func isBoundary(b byte) bool { return b < 0x80 || b >= 0xC0 }

// indexToken finds the first whole-token occurrence of term in lower.
func indexToken(lower, term string) int {
	from := 0
	for {
		i := strings.Index(lower[from:], term)
		if i < 0 {
			return -1
		}
		i += from
		beforeOK := i == 0 || !isWordByte(lower[i-1])
		after := i + len(term)
		afterOK := after >= len(lower) || !isWordByte(lower[after])
		if beforeOK && afterOK {
			return i
		}
		from = i + 1
	}
}

func isWordByte(b byte) bool {
	return b >= 'a' && b <= 'z' || b >= '0' && b <= '9' || b >= 'A' && b <= 'Z'
}

// highlight wraps whole-token occurrences of the terms in <b> markers.
func highlight(text string, terms []string) string {
	if len(terms) == 0 {
		return text
	}
	lower := strings.ToLower(text)
	type span struct{ start, end int }
	var spans []span
	for _, t := range terms {
		if t == "" {
			continue
		}
		from := 0
		for {
			rel := indexToken(lower[from:], t)
			if rel < 0 {
				break
			}
			i := from + rel
			spans = append(spans, span{i, i + len(t)})
			from = i + len(t)
		}
	}
	if len(spans) == 0 {
		return text
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].start < spans[j].start })
	// Merge overlaps.
	merged := spans[:1]
	for _, s := range spans[1:] {
		last := &merged[len(merged)-1]
		if s.start <= last.end {
			if s.end > last.end {
				last.end = s.end
			}
			continue
		}
		merged = append(merged, s)
	}
	var b strings.Builder
	prev := 0
	for _, s := range merged {
		b.WriteString(text[prev:s.start])
		b.WriteString("<b>")
		b.WriteString(text[s.start:s.end])
		b.WriteString("</b>")
		prev = s.end
	}
	b.WriteString(text[prev:])
	return b.String()
}
