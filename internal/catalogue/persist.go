package catalogue

import (
	"fmt"

	"mathcloud/internal/journal"
	"mathcloud/internal/obs"
)

// Write-ahead journaling for the catalogue (DESIGN.md §5i): every
// registration, tag update and unregistration is appended as it happens, so
// a crash between the periodic Save snapshots loses nothing.  The journal
// uses the shared record framing of internal/journal with the two kinds
// reserved for the catalogue.

// entryRecord is the KindCatRegister payload: the full entry image (register
// and tag updates both emit it; replay upserts by URI, last wins).
type entryRecord struct {
	Entry *Entry `json:"entry"`
}

// unregisterRecord is the KindCatUnregister payload.
type unregisterRecord struct {
	URI string `json:"uri"`
}

// AttachJournal replays the journal into the catalogue (upsert by URI, last
// record wins, index rebuilt) and then attaches it, so every later mutation
// is appended.  Call once at startup, before the catalogue serves requests.
func (c *Catalogue) AttachJournal(jl *journal.Journal) error {
	entries := make(map[string]*Entry)
	var order []string
	err := jl.Replay(func(kind journal.Kind, data []byte) error {
		switch kind {
		case journal.KindCatRegister:
			var r entryRecord
			if err := journal.Decode(data, &r); err != nil {
				return err
			}
			if r.Entry == nil || r.Entry.URI == "" {
				return nil
			}
			if _, seen := entries[r.Entry.URI]; !seen {
				order = append(order, r.Entry.URI)
			}
			entries[r.Entry.URI] = r.Entry
		case journal.KindCatUnregister:
			var r unregisterRecord
			if err := journal.Decode(data, &r); err != nil {
				return err
			}
			delete(entries, r.URI)
		}
		// Other kinds (a journal shared with a container) are not ours.
		return nil
	})
	if err != nil {
		return fmt.Errorf("catalogue: recover: %w", err)
	}
	c.mu.Lock()
	for _, uri := range order {
		e, ok := entries[uri]
		if !ok {
			continue
		}
		c.entries[uri] = e
		c.reindex(e)
	}
	c.jl = jl
	c.mu.Unlock()
	return nil
}

// logEntry journals one entry image; logUnregister journals a removal.
// Both no-op without an attached journal and log append failures instead of
// failing the request (the in-memory state is already mutated).
func (c *Catalogue) logEntry(e *Entry) {
	if c.jl == nil {
		return
	}
	if err := c.jl.Append(journal.KindCatRegister, entryRecord{Entry: e}); err != nil {
		obs.Logger().Error("catalogue: journal append failed", "error", err)
	}
}

func (c *Catalogue) logUnregister(uri string) {
	if c.jl == nil {
		return
	}
	if err := c.jl.Append(journal.KindCatUnregister, unregisterRecord{URI: uri}); err != nil {
		obs.Logger().Error("catalogue: journal append failed", "error", err)
	}
}

// Checkpoint folds the catalogue into one journal snapshot and truncates the
// log behind it.
func (c *Catalogue) Checkpoint() error {
	if c.jl == nil {
		return fmt.Errorf("catalogue: no journal attached")
	}
	return c.jl.Snapshot(func(app func(kind journal.Kind, v any) error) error {
		for _, e := range c.List() {
			if err := app(journal.KindCatRegister, entryRecord{Entry: e}); err != nil {
				return err
			}
		}
		return nil
	})
}
