package catalogue

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"mathcloud/internal/core"
)

// slowFakeDescriber wraps fakeDescriber and blocks probes of selected URIs
// until their context expires, simulating a hung service.
type slowFakeDescriber struct {
	*fakeDescriber
	mu   sync.Mutex
	hang map[string]bool
}

func newSlowFakeDescriber() *slowFakeDescriber {
	return &slowFakeDescriber{fakeDescriber: newFakeDescriber(), hang: map[string]bool{}}
}

func (s *slowFakeDescriber) setHang(uri string, hang bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.hang[uri] = hang
}

func (s *slowFakeDescriber) Describe(ctx context.Context, uri string) (core.ServiceDescription, error) {
	s.mu.Lock()
	hang := s.hang[uri]
	s.mu.Unlock()
	if hang {
		<-ctx.Done()
		return core.ServiceDescription{}, ctx.Err()
	}
	return s.fakeDescriber.Describe(ctx, uri)
}

// TestPingConcurrentSweep checks that a fanned-out sweep probes every
// service exactly once and counts availability correctly.
func TestPingConcurrentSweep(t *testing.T) {
	f := newFakeDescriber()
	c := New(f)
	ctx := context.Background()
	const n = 40
	for i := 0; i < n; i++ {
		uri := fmt.Sprintf("http://host%d/services/svc", i)
		f.add(uri, core.ServiceDescription{Name: fmt.Sprintf("svc%d", i)})
		if _, err := c.Register(ctx, uri, nil); err != nil {
			t.Fatalf("register %s: %v", uri, err)
		}
	}
	// Take a third of the services down; the sweep must notice all of them.
	down := 0
	for i := 0; i < n; i += 3 {
		f.setDown(fmt.Sprintf("http://host%d/services/svc", i), true)
		down++
	}
	c.SetSweepOptions(8, time.Second)
	if got, want := c.Ping(ctx), n-down; got != want {
		t.Fatalf("Ping = %d available, want %d", got, want)
	}
	for i := 0; i < n; i++ {
		uri := fmt.Sprintf("http://host%d/services/svc", i)
		e, err := c.Get(uri)
		if err != nil {
			t.Fatalf("get %s: %v", uri, err)
		}
		if wantUp := i%3 != 0; e.Available != wantUp {
			t.Errorf("%s: Available = %v, want %v", uri, e.Available, wantUp)
		}
		if e.LastChecked.IsZero() {
			t.Errorf("%s: LastChecked not updated", uri)
		}
	}
}

// TestProbeTimeout checks the per-probe deadline: one hung service must be
// marked unavailable without stalling the sweep or the healthy probes.
func TestProbeTimeout(t *testing.T) {
	f := newSlowFakeDescriber()
	c := New(f)
	ctx := context.Background()
	uris := []string{"http://a/services/fast", "http://a/services/hung", "http://b/services/fast2"}
	for _, uri := range uris {
		f.add(uri, core.ServiceDescription{Name: uri})
		if _, err := c.Register(ctx, uri, nil); err != nil {
			t.Fatalf("register %s: %v", uri, err)
		}
	}
	f.setHang("http://a/services/hung", true)
	c.SetSweepOptions(2, 50*time.Millisecond)
	start := time.Now()
	if got := c.Ping(ctx); got != 2 {
		t.Fatalf("Ping = %d available, want 2", got)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("sweep took %v; per-probe timeout not enforced", elapsed)
	}
	e, err := c.Get("http://a/services/hung")
	if err != nil {
		t.Fatal(err)
	}
	if e.Available {
		t.Error("hung service still marked available after timed-out probe")
	}
	for _, uri := range []string{"http://a/services/fast", "http://b/services/fast2"} {
		e, err := c.Get(uri)
		if err != nil {
			t.Fatal(err)
		}
		if !e.Available {
			t.Errorf("%s marked unavailable; hung probe starved it", uri)
		}
	}
}

// TestCatalogueConcurrentOps hammers the catalogue with parallel Register,
// Search, Ping, AddTags and Unregister calls.  It is primarily a -race
// regression test for the sweep fan-out and the index/catalogue locking.
func TestCatalogueConcurrentOps(t *testing.T) {
	f := newFakeDescriber()
	c := New(f)
	ctx := context.Background()
	const n = 24
	uri := func(i int) string { return fmt.Sprintf("http://host%d/services/svc", i) }
	for i := 0; i < n; i++ {
		f.add(uri(i), core.ServiceDescription{
			Name:        fmt.Sprintf("svc%d", i),
			Title:       "matrix solver",
			Description: "Solves matrix equations.",
		})
		if _, err := c.Register(ctx, uri(i), []string{"math"}); err != nil {
			t.Fatalf("register: %v", err)
		}
	}
	c.SetSweepOptions(4, time.Second)

	var wg sync.WaitGroup
	run := func(fn func(i int)) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				fn(i)
			}
		}()
	}
	// Re-register and unregister a rotating subset.
	run(func(i int) {
		u := uri(i % 8)
		if i%2 == 0 {
			_, _ = c.Register(ctx, u, []string{"math", "rotating"})
		} else {
			_ = c.Unregister(u)
		}
	})
	// Full sweeps.
	run(func(i int) { c.Ping(ctx) })
	// Searches with and without filters.
	run(func(i int) {
		c.Search("matrix solver", SearchOptions{Limit: 5})
		c.Search("matrix", SearchOptions{Tag: "math", OnlyAvailable: true})
	})
	// Tagging and reads.
	run(func(i int) {
		_, _ = c.AddTags(uri(8+i%8), []string{fmt.Sprintf("tag%d", i%5)})
		_, _ = c.Get(uri(8 + i%8))
		c.List()
	})
	// Flap availability to exercise probe writes.
	run(func(i int) {
		f.setDown(uri(16+i%8), i%2 == 0)
	})
	wg.Wait()

	// Stable services must still be searchable afterwards.
	res := c.Search("matrix solver", SearchOptions{Limit: n})
	if len(res) == 0 {
		t.Fatal("no results after concurrent churn")
	}
}
