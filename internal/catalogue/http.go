package catalogue

import (
	"html/template"
	"log"
	"net/http"
	"strconv"

	"mathcloud/internal/core"
	"mathcloud/internal/obs"
	"mathcloud/internal/rest"
)

// Handler exposes the catalogue as a web application:
//
//	GET    /                         HTML search interface
//	GET    /search?q=...&tag=...     JSON search results
//	GET    /services                 list all entries
//	POST   /services                 register {uri, tags}
//	DELETE /services?uri=...         unregister
//	POST   /tags?uri=...             add user tags {tags}
//	POST   /ping                     probe availability now
//	GET    /metrics                  Prometheus text-format metrics
//	GET    /status                   JSON metrics with percentiles
func (c *Catalogue) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		head, _ := rest.ShiftPath(r.URL.Path)
		switch head {
		case "":
			c.handleHome(w, r)
		case "search":
			c.handleSearch(w, r)
		case "services":
			c.handleServices(w, r)
		case "tags":
			c.handleTags(w, r)
		case "ping":
			c.handlePing(w, r)
		case "metrics":
			obs.MetricsHandler().ServeHTTP(w, r)
		case "status":
			obs.StatusHandler().ServeHTTP(w, r)
		default:
			rest.WriteError(w, core.ErrNotFound("resource", head))
		}
	})
}

func (c *Catalogue) handleSearch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		rest.MethodNotAllowed(w, http.MethodGet)
		return
	}
	q := r.URL.Query()
	opts := SearchOptions{
		Tag:           q.Get("tag"),
		OnlyAvailable: q.Get("available") == "true",
	}
	if n, err := strconv.Atoi(q.Get("limit")); err == nil {
		opts.Limit = n
	}
	results := c.Search(q.Get("q"), opts)
	if results == nil {
		results = []Result{}
	}
	rest.WriteJSON(w, http.StatusOK, map[string]any{
		"query":   q.Get("q"),
		"results": results,
	})
}

func (c *Catalogue) handleServices(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		rest.WriteJSON(w, http.StatusOK, map[string]any{"services": c.List()})
	case http.MethodPost:
		var req struct {
			URI  string   `json:"uri"`
			Tags []string `json:"tags"`
		}
		if err := rest.ReadJSON(r, &req); err != nil {
			rest.WriteError(w, err)
			return
		}
		entry, err := c.Register(r.Context(), req.URI, req.Tags)
		if err != nil {
			rest.WriteError(w, err)
			return
		}
		rest.WriteJSON(w, http.StatusCreated, entry)
	case http.MethodDelete:
		uri := r.URL.Query().Get("uri")
		if err := c.Unregister(uri); err != nil {
			rest.WriteError(w, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	default:
		rest.MethodNotAllowed(w, http.MethodGet, http.MethodPost, http.MethodDelete)
	}
}

func (c *Catalogue) handleTags(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		rest.MethodNotAllowed(w, http.MethodPost)
		return
	}
	var req struct {
		Tags []string `json:"tags"`
	}
	if err := rest.ReadJSON(r, &req); err != nil {
		rest.WriteError(w, err)
		return
	}
	entry, err := c.AddTags(r.URL.Query().Get("uri"), req.Tags)
	if err != nil {
		rest.WriteError(w, err)
		return
	}
	rest.WriteJSON(w, http.StatusOK, entry)
}

func (c *Catalogue) handlePing(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		rest.MethodNotAllowed(w, http.MethodPost)
		return
	}
	available := c.Ping(r.Context())
	rest.WriteJSON(w, http.StatusOK, map[string]int{
		"services":  c.Size(),
		"available": available,
	})
}

var homeTemplate = template.Must(template.New("home").Parse(`<!DOCTYPE html>
<html><head><title>MathCloud service catalogue</title><style>
body{font-family:sans-serif;margin:2em;max-width:60em}
input[type=text]{width:30em;padding:.4em}
.result{margin:1em 0;padding:.5em;border-left:3px solid #36c}
.result.unavailable{border-color:#c33;opacity:.6}
.uri{color:#060;font-size:.9em}
code{background:#eee;padding:0 .2em}
</style></head><body>
<h1>Service catalogue</h1>
<p>{{.}} published service(s).</p>
<form onsubmit="search(); return false">
  <input type="text" id="q" placeholder="full-text query, e.g. matrix inversion">
  <button>Search</button>
</form>
<div id="results"></div>
<script>
async function search() {
  const q = document.getElementById('q').value;
  const resp = await fetch('/search?q=' + encodeURIComponent(q));
  const data = await resp.json();
  const div = document.getElementById('results');
  div.innerHTML = '';
  for (const r of data.results) {
    const el = document.createElement('div');
    el.className = 'result' + (r.available ? '' : ' unavailable');
    el.innerHTML = '<a href="' + r.uri + '">' + (r.title || r.name) + '</a>' +
      (r.available ? '' : ' [unavailable]') +
      '<div>' + r.snippet + '</div>' +
      '<div class="uri">' + r.uri + '</div>';
    div.appendChild(el);
  }
  if (!data.results.length) div.textContent = 'no services found';
}
</script>
</body></html>
`))

func (c *Catalogue) handleHome(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		rest.MethodNotAllowed(w, http.MethodGet)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if err := homeTemplate.Execute(w, c.Size()); err != nil {
		log.Printf("catalogue: render home: %v", err)
	}
}
