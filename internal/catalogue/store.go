package catalogue

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// The paper's catalogue "performs indexing and stores description along
// with specified tags in a database".  This file provides the database: a
// JSON snapshot on disk, written atomically, from which a catalogue can be
// rebuilt (the index is recomputed on load).

// storeFile is the on-disk snapshot format.
type storeFile struct {
	Version int      `json:"version"`
	Entries []*Entry `json:"entries"`
}

// Save writes the catalogue's entries to path atomically.
func (c *Catalogue) Save(path string) error {
	snapshot := storeFile{Version: 1, Entries: c.List()}
	data, err := json.MarshalIndent(&snapshot, "", "  ")
	if err != nil {
		return fmt.Errorf("catalogue: save: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".catalogue-*")
	if err != nil {
		return fmt.Errorf("catalogue: save: %w", err)
	}
	tmpName := tmp.Name()
	_, err = tmp.Write(data)
	if closeErr := tmp.Close(); err == nil {
		err = closeErr
	}
	if err != nil {
		_ = os.Remove(tmpName)
		return fmt.Errorf("catalogue: save: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		_ = os.Remove(tmpName)
		return fmt.Errorf("catalogue: save: %w", err)
	}
	return nil
}

// Load replaces the catalogue's contents with a snapshot previously
// written by Save, rebuilding the full-text index.  Availability marks are
// carried over until the next ping.
func (c *Catalogue) Load(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("catalogue: load: %w", err)
	}
	var snapshot storeFile
	if err := json.Unmarshal(data, &snapshot); err != nil {
		return fmt.Errorf("catalogue: load: %w", err)
	}
	if snapshot.Version != 1 {
		return fmt.Errorf("catalogue: load: unsupported snapshot version %d", snapshot.Version)
	}
	c.mu.Lock()
	c.entries = make(map[string]*Entry, len(snapshot.Entries))
	for _, e := range snapshot.Entries {
		if e == nil || e.URI == "" {
			continue
		}
		c.entries[e.URI] = e
	}
	entries := make([]*Entry, 0, len(c.entries))
	for _, e := range c.entries {
		entries = append(entries, e)
	}
	c.mu.Unlock()

	c.ix = newIndex()
	for _, e := range entries {
		c.reindex(e)
	}
	return nil
}
