package gateway_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"mathcloud/internal/adapter"
	"mathcloud/internal/container"
	"mathcloud/internal/core"
	"mathcloud/internal/events"
	"mathcloud/internal/gateway"
	"mathcloud/internal/jsonschema"
)

func quietLogger() *log.Logger { return log.New(io.Discard, "", 0) }

func mustJSON(t testing.TB, v any) json.RawMessage {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return data
}

// numService builds a one-in/one-out native service config.
func numService(t testing.TB, name, fn string, deterministic bool) container.ServiceConfig {
	t.Helper()
	num := jsonschema.New(jsonschema.TypeNumber)
	return container.ServiceConfig{
		Description: core.ServiceDescription{
			Name:          name,
			Title:         name,
			Description:   "gateway test service " + name,
			Inputs:        []core.Param{{Name: "a", Schema: num}, {Name: "b", Optional: true, Schema: num}},
			Outputs:       []core.Param{{Name: "sum", Schema: num}},
			Deterministic: deterministic,
		},
		Adapter: container.AdapterSpec{
			Kind:   "native",
			Config: mustJSON(t, adapter.NativeConfig{Function: fn}),
		},
	}
}

type replica struct {
	name string
	c    *container.Container
	srv  *httptest.Server
}

// startReplica runs one container replica behind its own listener.
func startReplica(t testing.TB, name string, svcs ...container.ServiceConfig) *replica {
	t.Helper()
	c, err := container.New(container.Options{
		Workers:   4,
		ReplicaID: name,
		Logger:    quietLogger(),
	})
	if err != nil {
		t.Fatalf("New container %s: %v", name, err)
	}
	t.Cleanup(c.Close)
	for _, cfg := range svcs {
		if err := c.Deploy(cfg); err != nil {
			t.Fatalf("Deploy %s on %s: %v", cfg.Description.Name, name, err)
		}
	}
	srv := httptest.NewServer(c.Handler())
	t.Cleanup(srv.Close)
	return &replica{name: name, c: c, srv: srv}
}

// startGateway runs a gateway over the replicas and points every replica's
// base URL back at it, per the deployment contract: minted absolute URIs
// must route through the gateway.
func startGateway(t testing.TB, opts gateway.Options, reps ...*replica) (*gateway.Gateway, *httptest.Server) {
	t.Helper()
	for _, r := range reps {
		opts.Replicas = append(opts.Replicas, gateway.Replica{Name: r.name, BaseURL: r.srv.URL})
	}
	if opts.PingInterval == 0 {
		opts.PingInterval = -1 // tests drive RefreshHealth explicitly
	}
	if opts.Logger == nil {
		opts.Logger = quietLogger()
	}
	g, err := gateway.New(opts)
	if err != nil {
		t.Fatalf("New gateway: %v", err)
	}
	t.Cleanup(g.Close)
	srv := httptest.NewServer(g.Handler())
	t.Cleanup(srv.Close)
	for _, r := range reps {
		r.c.SetBaseURL(srv.URL)
	}
	return g, srv
}

func addFunc() adapter.Func {
	return func(ctx context.Context, in core.Values) (core.Values, error) {
		a, _ := in["a"].(float64)
		b, _ := in["b"].(float64)
		return core.Values{"sum": a + b}, nil
	}
}

// postJSON posts v and returns the response with its decoded body.
func postJSON(t *testing.T, url string, v any) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(mustJSON(t, v)))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("POST %s: decode: %v", url, err)
	}
	return resp, body
}

func getJSON(t *testing.T, url string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("GET %s: decode: %v", url, err)
	}
	return resp, body
}

// metricValue scrapes one plain (unlabelled) metric from /metrics.
func metricValue(t *testing.T, gwURL, name string) float64 {
	t.Helper()
	resp, err := http.Get(gwURL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	for _, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(line, name+" ") {
			var v float64
			if _, err := fmt.Sscanf(line[len(name)+1:], "%g", &v); err == nil {
				return v
			}
		}
	}
	return 0
}

func TestSubmitSpreadAndAffinityRouting(t *testing.T) {
	adapter.RegisterFunc("gwtest.add", addFunc())
	r1 := startReplica(t, "r01", numService(t, "add", "gwtest.add", false))
	r2 := startReplica(t, "r02", numService(t, "add", "gwtest.add", false))
	_, gw := startGateway(t, gateway.Options{}, r1, r2)

	used := make(map[string]int)
	for i := 0; i < 4; i++ {
		resp, job := postJSON(t, gw.URL+"/services/add?wait=15s", core.Values{"a": float64(i), "b": 1})
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("submit %d: status %d (%v)", i, resp.StatusCode, job)
		}
		if job["state"] != "DONE" {
			t.Fatalf("submit %d: state %v", i, job["state"])
		}
		rep := resp.Header.Get(container.ReplicaHeader)
		used[rep]++
		id, _ := job["id"].(string)
		prefix, ok := core.SplitReplicaID(id)
		if !ok || prefix != rep {
			t.Fatalf("job ID %q prefix %q does not match serving replica %q", id, prefix, rep)
		}
		// Affinity read: the ID alone must route back to the home replica.
		gresp, got := getJSON(t, gw.URL+"/services/add/jobs/"+id)
		if gresp.StatusCode != http.StatusOK {
			t.Fatalf("GET job %s: status %d", id, gresp.StatusCode)
		}
		if h := gresp.Header.Get(container.ReplicaHeader); h != rep {
			t.Fatalf("GET job %s answered by %q, submitted on %q", id, h, rep)
		}
		sum := got["outputs"].(map[string]any)["sum"].(float64)
		if sum != float64(i)+1 {
			t.Fatalf("job %s: sum %v, want %v", id, sum, float64(i)+1)
		}
	}
	if len(used) != 2 {
		t.Fatalf("submissions did not spread: replica use %v", used)
	}
}

func TestMemoHintRoutesResubmissionToSameReplica(t *testing.T) {
	var calls1, calls2 atomic.Int64
	adapter.RegisterFunc("gwtest.det1", func(ctx context.Context, in core.Values) (core.Values, error) {
		calls1.Add(1)
		a, _ := in["a"].(float64)
		return core.Values{"sum": a * 2}, nil
	})
	adapter.RegisterFunc("gwtest.det2", func(ctx context.Context, in core.Values) (core.Values, error) {
		calls2.Add(1)
		a, _ := in["a"].(float64)
		return core.Values{"sum": a * 2}, nil
	})
	r1 := startReplica(t, "r01", numService(t, "det", "gwtest.det1", true))
	r2 := startReplica(t, "r02", numService(t, "det", "gwtest.det2", true))
	_, gw := startGateway(t, gateway.Options{}, r1, r2)

	hintsBefore := metricValue(t, gw.URL, "mc_gateway_memo_hint_hits_total")
	resp1, job1 := postJSON(t, gw.URL+"/services/det?wait=15s", core.Values{"a": 21})
	if resp1.StatusCode != http.StatusCreated || job1["state"] != "DONE" {
		t.Fatalf("first submit: status %d state %v", resp1.StatusCode, job1["state"])
	}
	first := resp1.Header.Get(container.ReplicaHeader)

	// Identical resubmission: the hint table must route it to the replica
	// whose computation cache already holds the answer.
	resp2, job2 := postJSON(t, gw.URL+"/services/det?wait=15s", core.Values{"a": 21})
	if resp2.StatusCode != http.StatusCreated || job2["state"] != "DONE" {
		t.Fatalf("second submit: status %d state %v", resp2.StatusCode, job2["state"])
	}
	if second := resp2.Header.Get(container.ReplicaHeader); second != first {
		t.Fatalf("resubmission routed to %q, first ran on %q", second, first)
	}
	if n := calls1.Load() + calls2.Load(); n != 1 {
		t.Fatalf("adapter ran %d times across replicas, want 1 (memo hit)", n)
	}
	if hintsAfter := metricValue(t, gw.URL, "mc_gateway_memo_hint_hits_total"); hintsAfter != hintsBefore+1 {
		t.Fatalf("mc_gateway_memo_hint_hits_total = %v, want %v", hintsAfter, hintsBefore+1)
	}
}

func TestMergedIndexSearchAndReplicasView(t *testing.T) {
	adapter.RegisterFunc("gwtest.add", addFunc())
	r1 := startReplica(t, "r01", numService(t, "add", "gwtest.add", false))
	r2 := startReplica(t, "r02",
		numService(t, "add", "gwtest.add", false),
		numService(t, "extra", "gwtest.add", false))
	_, gw := startGateway(t, gateway.Options{}, r1, r2)

	resp, index := getJSON(t, gw.URL+"/")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /: status %d", resp.StatusCode)
	}
	if resp.Header.Get("Warning") != "" {
		t.Fatalf("unexpected Warning on full merge: %q", resp.Header.Get("Warning"))
	}
	services := index["services"].([]any)
	names := make(map[string]int)
	for _, s := range services {
		names[s.(map[string]any)["name"].(string)]++
	}
	if names["add"] != 1 || names["extra"] != 1 {
		t.Fatalf("merged services %v, want add and extra once each", names)
	}
	if reps := index["replicas"].([]any); len(reps) != 2 {
		t.Fatalf("replicas in index: %d, want 2", len(reps))
	}

	sresp, search := getJSON(t, gw.URL+"/search?q=extra")
	if sresp.StatusCode != http.StatusOK {
		t.Fatalf("GET /search: status %d", sresp.StatusCode)
	}
	if total := search["total"].(float64); total < 1 {
		t.Fatalf("search for deployed service found %v results", total)
	}

	rresp, reps := getJSON(t, gw.URL+"/replicas")
	if rresp.StatusCode != http.StatusOK {
		t.Fatalf("GET /replicas: status %d", rresp.StatusCode)
	}
	for _, r := range reps["replicas"].([]any) {
		m := r.(map[string]any)
		if m["healthy"] != true {
			t.Fatalf("replica %v not healthy: %v", m["name"], m)
		}
	}
}

func TestFileRoundTripThroughGateway(t *testing.T) {
	adapter.RegisterFunc("gwtest.add", addFunc())
	r1 := startReplica(t, "r01", numService(t, "add", "gwtest.add", false))
	r2 := startReplica(t, "r02", numService(t, "add", "gwtest.add", false))
	_, gw := startGateway(t, gateway.Options{}, r1, r2)

	payload := []byte("federated file bytes")
	resp, err := http.Post(gw.URL+"/files", "application/octet-stream", bytes.NewReader(payload))
	if err != nil {
		t.Fatalf("upload: %v", err)
	}
	var up map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&up); err != nil {
		t.Fatalf("upload decode: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload: status %d", resp.StatusCode)
	}
	home := resp.Header.Get(container.ReplicaHeader)
	prefix, ok := core.SplitReplicaID(up["id"])
	if !ok || prefix != home {
		t.Fatalf("file ID %q prefix %q does not match uploading replica %q", up["id"], prefix, home)
	}

	// The affinity prefix alone routes the read back to the bytes.
	dresp, err := http.Get(gw.URL + "/files/" + up["id"])
	if err != nil {
		t.Fatalf("download: %v", err)
	}
	data, _ := io.ReadAll(dresp.Body)
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK || !bytes.Equal(data, payload) {
		t.Fatalf("download: status %d, %d bytes", dresp.StatusCode, len(data))
	}

	req, _ := http.NewRequest(http.MethodDelete, gw.URL+"/files/"+up["id"], nil)
	del, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("delete: %v", err)
	}
	del.Body.Close()
	if del.StatusCode != http.StatusNoContent {
		t.Fatalf("delete: status %d", del.StatusCode)
	}
}

func TestSweepThroughGatewayKeepsCampaignOnOneReplica(t *testing.T) {
	adapter.RegisterFunc("gwtest.add", addFunc())
	r1 := startReplica(t, "r01", numService(t, "add", "gwtest.add", false))
	r2 := startReplica(t, "r02", numService(t, "add", "gwtest.add", false))
	_, gw := startGateway(t, gateway.Options{}, r1, r2)

	spec := core.SweepSpec{
		Template: core.Values{"b": 10},
		Axes:     map[string][]any{"a": {1, 2, 3, 4}},
	}
	resp, sweep := postJSON(t, gw.URL+"/services/add/sweeps?wait=15s", spec)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("sweep submit: status %d (%v)", resp.StatusCode, sweep)
	}
	if sweep["state"] != "DONE" {
		t.Fatalf("sweep state %v", sweep["state"])
	}
	sweepID := sweep["id"].(string)
	home, ok := core.SplitReplicaID(sweepID)
	if !ok {
		t.Fatalf("sweep ID %q carries no replica prefix", sweepID)
	}

	// The whole campaign lives on the sweep's home replica: child IDs carry
	// the same prefix and one affinity hop serves the child listing.
	jresp, page := getJSON(t, gw.URL+"/services/add/sweeps/"+sweepID+"/jobs")
	if jresp.StatusCode != http.StatusOK {
		t.Fatalf("sweep jobs: status %d", jresp.StatusCode)
	}
	jobs := page["jobs"].([]any)
	if len(jobs) != 4 {
		t.Fatalf("sweep children: %d, want 4", len(jobs))
	}
	for _, j := range jobs {
		id := j.(map[string]any)["id"].(string)
		if p, _ := core.SplitReplicaID(id); p != home {
			t.Fatalf("child %q prefix %q, sweep home %q", id, p, home)
		}
	}
}

// sseFrames reads SSE frames from a stream URL until an End frame, an
// error, or the deadline, sending each frame to out.
func sseWatch(t *testing.T, url string, out chan<- events.Event) {
	t.Helper()
	req, _ := http.NewRequest(http.MethodGet, url, nil)
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Errorf("GET %s: %v", url, err)
		close(out)
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("GET %s: status %d", url, resp.StatusCode)
		close(out)
		return
	}
	sc := events.NewScanner(resp.Body)
	for {
		ev, err := sc.Next()
		if err != nil {
			close(out)
			return
		}
		out <- ev
		if ev.End {
			close(out)
			return
		}
	}
}

func TestSSEThroughGatewaySharedUpstream(t *testing.T) {
	gate := make(chan struct{})
	adapter.RegisterFunc("gwtest.gated", func(ctx context.Context, in core.Values) (core.Values, error) {
		select {
		case <-gate:
			return core.Values{"sum": 1}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	})
	r1 := startReplica(t, "r01", numService(t, "gated", "gwtest.gated", false))
	_, gw := startGateway(t, gateway.Options{}, r1)

	resp, job := postJSON(t, gw.URL+"/services/gated", core.Values{"a": 1})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	jobID := job["id"].(string)
	streamURL := gw.URL + "/services/gated/jobs/" + jobID + "/events"

	before := metricValue(t, gw.URL, "mc_gateway_sse_upstreams")
	ch1 := make(chan events.Event, 16)
	ch2 := make(chan events.Event, 16)
	go sseWatch(t, streamURL, ch1)
	go sseWatch(t, streamURL, ch2)

	// Both watchers get an opening snapshot first.
	for i, ch := range []chan events.Event{ch1, ch2} {
		select {
		case ev := <-ch:
			if ev.Type != events.TypeJob {
				t.Fatalf("watcher %d: opening frame type %q", i, ev.Type)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("watcher %d: no opening frame", i)
		}
	}
	// Two downstream watchers share one upstream connection.
	if ups := metricValue(t, gw.URL, "mc_gateway_sse_upstreams"); ups != before+1 {
		t.Fatalf("mc_gateway_sse_upstreams = %v, want %v (one shared upstream)", ups, before+1)
	}

	close(gate)
	for i, ch := range []chan events.Event{ch1, ch2} {
		deadline := time.After(10 * time.Second)
		done := false
		for !done {
			select {
			case ev, ok := <-ch:
				if !ok {
					t.Fatalf("watcher %d: stream closed before terminal frame", i)
				}
				if ev.End {
					var j core.Job
					if err := json.Unmarshal(ev.Data, &j); err != nil {
						t.Fatalf("watcher %d: terminal frame: %v", i, err)
					}
					if j.State != core.StateDone {
						t.Fatalf("watcher %d: terminal state %s", i, j.State)
					}
					done = true
				}
			case <-deadline:
				t.Fatalf("watcher %d: no terminal frame", i)
			}
		}
	}
	// The pump self-removes after the terminal frame.
	waitFor(t, 5*time.Second, func() bool {
		return metricValue(t, gw.URL, "mc_gateway_sse_upstreams") == before
	}, "upstream pump did not shut down")
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal(msg)
}
