package gateway

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"mathcloud/internal/core"
)

func TestMemoIndexApplyIncrementalResetAndOwnership(t *testing.T) {
	x := newMemoIndex()
	x.apply("r01", core.MemoIndexPage{Seq: 2, Entries: []core.MemoIndexEntry{
		{Key: "k1", Service: "s", JobID: "j1"},
		{Key: "k2", Service: "s", JobID: "j2"},
	}})
	if r, ok := x.lookup("k1"); !ok || r != "r01" {
		t.Fatalf("lookup k1 = %q %v", r, ok)
	}
	if x.size() != 2 {
		t.Fatalf("size = %d, want 2", x.size())
	}

	// A drop delta removes the key; dropping a key another replica has since
	// claimed must not clobber the new owner.
	x.apply("r02", core.MemoIndexPage{Seq: 1, Entries: []core.MemoIndexEntry{{Key: "k2", Service: "s", JobID: "j9"}}})
	if r, _ := x.lookup("k2"); r != "r02" {
		t.Fatalf("k2 owner after reclaim = %q, want r02 (last writer wins)", r)
	}
	x.apply("r01", core.MemoIndexPage{Seq: 3, Dropped: []string{"k1", "k2"}})
	if _, ok := x.lookup("k1"); ok {
		t.Fatal("k1 survived its drop delta")
	}
	if r, ok := x.lookup("k2"); !ok || r != "r02" {
		t.Fatalf("r01's stale drop removed r02's k2 (%q %v)", r, ok)
	}

	// A Reset page replaces everything previously attributed to the replica.
	x.apply("r02", core.MemoIndexPage{Seq: 9, Reset: true, Entries: []core.MemoIndexEntry{{Key: "k3", Service: "s", JobID: "j3"}}})
	if _, ok := x.lookup("k2"); ok {
		t.Fatal("k2 survived r02's Reset page")
	}
	if r, _ := x.lookup("k3"); r != "r02" {
		t.Fatal("Reset page entries not installed")
	}

	x.dropReplica("r02")
	if x.size() != 0 {
		t.Fatalf("size after dropReplica = %d, want 0", x.size())
	}
}

// federationTestGateway extends the placement-only test gateway with load
// reports and deterministic service descriptions.
func federationTestGateway(policy string, deterministic bool, loads map[string]core.LoadReport) *Gateway {
	g := newTestGateway(
		map[string][]string{"r01": {"s"}, "r02": {"s"}},
		map[string]bool{"r01": true, "r02": true},
	)
	g.placement = policy
	for name, rs := range g.byName {
		rs.services["s"] = core.ServiceDescription{Name: "s", Version: "1", Deterministic: deterministic}
		if report, ok := loads[name]; ok {
			rs.load = report
			rs.loadOK = true
		}
	}
	return g
}

func TestP2CPlacementDrainsToShorterQueue(t *testing.T) {
	g := federationTestGateway(placementP2C, false, map[string]core.LoadReport{
		"r01": {QueueDepth: 100, QueueCap: 128},
		"r02": {QueueDepth: 0, QueueCap: 128},
	})
	candidates := g.serviceReplicas("s")
	if len(candidates) != 2 {
		t.Fatalf("candidates = %d", len(candidates))
	}
	// With two candidates p2c always compares both, so every single pick
	// must land on the idle replica.
	for i := 0; i < 64; i++ {
		if rs := g.spreadReplica(candidates); rs.name != "r02" {
			t.Fatalf("pick %d went to loaded replica %s", i, rs.name)
		}
	}
}

func TestAdmissionRefusesWhenAllSaturated(t *testing.T) {
	g := federationTestGateway(placementP2C, false, map[string]core.LoadReport{
		"r01": {QueueDepth: 128, QueueCap: 128},
		"r02": {QueueDepth: 128, QueueCap: 128},
	})
	candidates := g.serviceReplicas("s")
	if _, err := g.placeSpread(candidates); err == nil {
		t.Fatal("placeSpread admitted work into a fully saturated federation")
	} else {
		var unavail *core.UnavailableError
		if !errors.As(err, &unavail) || unavail.RetryAfter <= 0 {
			t.Fatalf("saturation error = %v, want UnavailableError with retry hint", err)
		}
	}

	// One replica freeing a slot re-opens admission.
	g.byName["r02"].load.QueueDepth = 127
	if _, err := g.placeSpread(candidates); err != nil {
		t.Fatalf("placeSpread after drain: %v", err)
	}

	// A replica with no load report never saturates the set: unknown load
	// is probed with work, not starved.
	g.byName["r02"].load.QueueDepth = 128
	g.byName["r02"].loadOK = false
	if _, err := g.placeSpread(candidates); err != nil {
		t.Fatalf("placeSpread with unknown load: %v", err)
	}
}

func TestSaturatedSubmitReturns503WithRetryAfter(t *testing.T) {
	g := federationTestGateway(placementP2C, false, map[string]core.LoadReport{
		"r01": {QueueDepth: 64, QueueCap: 64},
		"r02": {QueueDepth: 64, QueueCap: 64},
	})
	srv := httptest.NewServer(g.APIHandler())
	defer srv.Close()
	resp, err := http.Post(srv.URL+"/services/s", "application/json", strings.NewReader(`{"a": 1}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("saturated submit = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 carries no Retry-After hint")
	}
}

func TestRouteSubmitPrefersIndexThenHintAndCountsStaleHints(t *testing.T) {
	g := federationTestGateway(placementP2C, true, nil)
	key, err := core.CanonicalHash("s", "1", core.Values{"a": 1.0}, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Shared index wins even when a hint disagrees.
	g.memo.apply("r02", core.MemoIndexPage{Seq: 1, Entries: []core.MemoIndexEntry{{Key: key, Service: "s", JobID: "j"}}})
	g.hints.put(key, "r01")
	rs, gotKey, hinted, routeErr := g.routeSubmit("s", core.Values{"a": 1.0})
	if routeErr != nil || rs == nil || rs.name != "r02" || !hinted || gotKey != key {
		t.Fatalf("index route = %v %q hinted=%v err=%v, want r02 hinted", rs, gotKey, hinted, routeErr)
	}

	// Index gone, hint valid: hint routes.
	g.memo.dropReplica("r02")
	rs, _, hinted, routeErr = g.routeSubmit("s", core.Values{"a": 1.0})
	if routeErr != nil || rs.name != "r01" || !hinted {
		t.Fatalf("hint route = %v hinted=%v err=%v, want r01 hinted", rs, hinted, routeErr)
	}

	// A hint pointing at a replica outside the candidate set falls through
	// to placement rather than failing the submission.
	g.hints.put(key, "r99")
	rs, gotKey, hinted, routeErr = g.routeSubmit("s", core.Values{"a": 1.0})
	if routeErr != nil || rs == nil || hinted {
		t.Fatalf("stale hint route = %v hinted=%v err=%v, want placed unhinted", rs, hinted, routeErr)
	}
	if gotKey != key {
		t.Fatalf("stale-hint route lost the memo key (%q), later hit cannot be recorded", gotKey)
	}
}

func TestCandidateCacheInvalidatedByTopologyGeneration(t *testing.T) {
	g := newTestGateway(
		map[string][]string{"r01": {"s"}, "r02": {"s"}},
		map[string]bool{"r01": true, "r02": true},
	)
	if got := g.serviceReplicas("s"); len(got) != 2 {
		t.Fatalf("initial candidates = %d", len(got))
	}
	// A health flip without a generation bump serves the cached list — that
	// is the point of the cache (no per-submit rescan)...
	rs := g.byName["r01"]
	rs.mu.Lock()
	rs.healthy = false
	rs.mu.Unlock()
	if got := g.serviceReplicas("s"); len(got) != 2 {
		t.Fatalf("cached candidates = %d, want the stale 2 before invalidation", len(got))
	}
	// ...and the generation bump (what markReplicaDown/probeReplica do on
	// any state change) lazily invalidates every service's entry.
	g.topoGen.Add(1)
	got := g.serviceReplicas("s")
	if len(got) != 1 || got[0].name != "r02" {
		t.Fatalf("candidates after invalidation = %+v, want just r02", got)
	}
}

func TestReplicaStateQueueDepthUnknownLoadLooksIdle(t *testing.T) {
	rs := &replicaState{name: "r01"}
	if rs.queueDepth() != 0 {
		t.Fatal("unknown load should read as depth 0")
	}
	rs.load = core.LoadReport{QueueDepth: 7}
	rs.loadOK = true
	if rs.queueDepth() != 7 {
		t.Fatal("known load not reported")
	}
	if _, ok := rs.loadReport(); !ok {
		t.Fatal("loadReport ok flag wrong")
	}
}
