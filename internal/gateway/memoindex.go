package gateway

import (
	"sync"

	"mathcloud/internal/core"
)

// memoIndex is the gateway's authoritative view of which replica holds a
// cached result for a given canonical input digest (DESIGN.md §5j).  Unlike
// the advisory hint table — which only remembers placements this gateway
// instance made itself — the index is fed by each replica's memo delta feed
// (GET /memo?since=N), so it survives gateway restarts and covers results
// produced by other gateways or by direct replica submissions.
//
// The index stores at most one replica per key.  Deterministic results are
// content-addressed, so when two replicas both hold a key either copy is as
// good as the other; last writer wins.
type memoIndex struct {
	mu    sync.RWMutex
	byKey map[string]string // canonical digest -> replica name
	// keysByReplica mirrors byKey for O(keys of replica) Reset/drop handling.
	keysByReplica map[string]map[string]struct{}
}

func newMemoIndex() *memoIndex {
	return &memoIndex{
		byKey:         make(map[string]string),
		keysByReplica: make(map[string]map[string]struct{}),
	}
}

// lookup returns the replica believed to hold a memoised result for key.
func (x *memoIndex) lookup(key string) (replica string, ok bool) {
	x.mu.RLock()
	replica, ok = x.byKey[key]
	x.mu.RUnlock()
	return replica, ok
}

// apply folds one page of a replica's memo delta feed into the index.  A
// Reset page replaces everything previously known about the replica; an
// incremental page adds Entries and removes Dropped keys.
func (x *memoIndex) apply(replica string, page core.MemoIndexPage) {
	x.mu.Lock()
	defer x.mu.Unlock()
	if page.Reset {
		x.dropReplicaLocked(replica)
	}
	keys := x.keysByReplica[replica]
	if keys == nil && len(page.Entries) > 0 {
		keys = make(map[string]struct{}, len(page.Entries))
		x.keysByReplica[replica] = keys
	}
	for _, e := range page.Entries {
		if prev, ok := x.byKey[e.Key]; ok && prev != replica {
			if prevKeys := x.keysByReplica[prev]; prevKeys != nil {
				delete(prevKeys, e.Key)
			}
		}
		x.byKey[e.Key] = replica
		keys[e.Key] = struct{}{}
	}
	for _, key := range page.Dropped {
		// Only forget the key if this replica is still its owner of
		// record; another replica may have claimed it since.
		if owner, ok := x.byKey[key]; ok && owner == replica {
			delete(x.byKey, key)
		}
		if keys != nil {
			delete(keys, key)
		}
	}
}

// dropReplica forgets every key attributed to the replica (used when a
// replica is removed from the federation or its feed resets).
func (x *memoIndex) dropReplica(replica string) {
	x.mu.Lock()
	x.dropReplicaLocked(replica)
	x.mu.Unlock()
}

func (x *memoIndex) dropReplicaLocked(replica string) {
	for key := range x.keysByReplica[replica] {
		if owner, ok := x.byKey[key]; ok && owner == replica {
			delete(x.byKey, key)
		}
	}
	delete(x.keysByReplica, replica)
}

// size reports the number of indexed keys (for tests and status).
func (x *memoIndex) size() int {
	x.mu.RLock()
	n := len(x.byKey)
	x.mu.RUnlock()
	return n
}
