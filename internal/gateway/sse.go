package gateway

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"mathcloud/internal/core"
	"mathcloud/internal/events"
	"mathcloud/internal/rest"
)

// SSE passthrough (DESIGN.md §5h).  The gateway holds ONE upstream SSE
// connection per (replica, stream path) — the pump — regardless of how many
// downstream watchers are attached: a dashboard with a thousand browser
// tabs watching one sweep costs each replica a single connection.  Pumps
// publish upstream frames into the gateway's own events.Bus, whose
// per-topic rings give downstream watchers Last-Event-ID resume in the
// gateway's ID space; each pump separately remembers the last upstream ID
// it saw and resumes its upstream connection with it, so a replica restart
// or move (re-resolved through Options.Resolver) loses no terminal
// transitions.  The two ID spaces never mix: upstream IDs belong to the
// pump, downstream IDs to the bus.
//
// Frame semantics survive the hop unchanged: data frames are full resource
// snapshots, sync frames tell a consumer to re-fetch (the gateway
// re-expands them for resource streams by fetching the resource itself, as
// the container does), and the End marker — carried on the wire as an SSE
// comment line so browsers never see it — terminates pump and watchers.

// ssePump is one shared upstream subscription.
type ssePump struct {
	g     *Gateway
	key   string // replica + "|" + upstream path
	rs    *replicaState
	path  string // upstream stream path (incl. /events suffix)
	topic string // downstream bus topic fed by this pump

	cancel context.CancelFunc
	refs   int // guarded by sseMux.mu
}

// sseMux owns the pumps.
type sseMux struct {
	g      *Gateway
	mu     sync.Mutex
	pumps  map[string]*ssePump
	closed bool
}

func newSSEMux(g *Gateway) *sseMux {
	return &sseMux{g: g, pumps: make(map[string]*ssePump)}
}

// ensure attaches a watcher to the pump for (rs, path), starting it if this
// is the first watcher.  The returned release detaches; the last release
// stops the pump.
func (m *sseMux) ensure(rs *replicaState, path, topic string) (release func()) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return func() {}
	}
	key := rs.name + "|" + path
	p := m.pumps[key]
	if p == nil {
		ctx, cancel := context.WithCancel(context.Background())
		p = &ssePump{g: m.g, key: key, rs: rs, path: path, topic: topic, cancel: cancel}
		m.pumps[key] = p
		metGwSSEUpstreams.Add(1)
		m.g.wg.Add(1)
		go p.run(ctx)
	}
	p.refs++
	return func() { m.release(key) }
}

func (m *sseMux) release(key string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	p := m.pumps[key]
	if p == nil {
		return // pump already self-removed on End
	}
	p.refs--
	if p.refs <= 0 {
		p.cancel()
		delete(m.pumps, key)
		metGwSSEUpstreams.Add(-1)
	}
}

// remove is the pump's self-removal after a terminal frame: the stream is
// over, so keeping the connection (or restarting it for the next watcher)
// is pointless — a new watcher gets the terminal state from its opening
// snapshot.
func (m *sseMux) remove(p *ssePump) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.pumps[p.key] == p {
		p.cancel()
		delete(m.pumps, p.key)
		metGwSSEUpstreams.Add(-1)
	}
}

func (m *sseMux) close() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	for key, p := range m.pumps {
		p.cancel()
		delete(m.pumps, key)
	}
	metGwSSEUpstreams.Set(0)
}

// run is the pump loop: connect upstream, relay frames into the bus,
// reconnect with Last-Event-ID on any interruption.  Reconnects re-resolve
// the replica's address first, so a stream survives its replica moving.
func (p *ssePump) run(ctx context.Context) {
	defer p.g.wg.Done()
	var lastID uint64
	backoff := 100 * time.Millisecond
	const maxBackoff = 2 * time.Second
	for ctx.Err() == nil {
		ended, gone, err := p.attach(ctx, &lastID)
		switch {
		case ended:
			p.g.sse.remove(p)
			return
		case gone:
			// The upstream resource no longer exists (replica restarted and
			// lost it, or it was deleted): end downstream watchers rather
			// than retrying forever against a 404.
			p.g.bus.Publish(p.topic, events.TypeSync, true, nil)
			p.g.sse.remove(p)
			return
		case err == nil:
			// Clean upstream idle-close: reconnect immediately.
			backoff = 100 * time.Millisecond
			continue
		}
		if ctx.Err() != nil {
			return
		}
		// Connection-level failure: feed passive health, re-resolve the
		// replica (it may have moved), and back off before retrying.
		p.g.markReplicaDown(p.rs, err)
		p.g.ensureBase(p.rs)
		t := time.NewTimer(rest.Jitter(backoff))
		select {
		case <-ctx.Done():
			t.Stop()
			return
		case <-t.C:
		}
		if backoff *= 2; backoff > maxBackoff {
			backoff = maxBackoff
		}
	}
}

// attach opens one upstream connection and relays until it breaks.  It
// returns ended=true after a terminal frame, gone=true when the resource is
// missing upstream, and err!=nil for connection-level failures worth
// backing off on; (false, false, nil) is a clean idle-close.
func (p *ssePump) attach(ctx context.Context, lastID *uint64) (ended, gone bool, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, p.rs.baseURL()+p.path, nil)
	if err != nil {
		return false, false, err
	}
	req.Header.Set("Accept", "text/event-stream")
	if *lastID > 0 {
		req.Header.Set("Last-Event-ID", strconv.FormatUint(*lastID, 10))
	}
	resp, err := p.g.client.Do(req)
	if err != nil {
		return false, false, err
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusNotFound:
		rest.Drain(resp.Body)
		return false, true, nil
	case resp.StatusCode != http.StatusOK:
		rest.Drain(resp.Body)
		return false, false, fmt.Errorf("GET %s: %s", p.path, resp.Status)
	}
	if !p.rs.isHealthy() {
		p.g.reviveReplica(p.rs)
	}
	sc := events.NewScanner(resp.Body)
	for {
		ev, err := sc.Next()
		if err != nil {
			// io.EOF is the replica's idle-close; anything else is a broken
			// connection.  Both reconnect, only real errors back off.
			if err == io.EOF {
				return false, false, nil
			}
			if ctx.Err() != nil {
				return false, false, nil
			}
			return false, false, err
		}
		if ev.ID > 0 {
			*lastID = ev.ID
		}
		p.g.bus.Publish(p.topic, ev.Type, ev.End, ev.Data)
		if ev.End {
			return true, false, nil
		}
	}
}

// parseLastEventID mirrors the container's resume contract: the standard
// Last-Event-ID header, or ?lastEventId= for EventSource implementations
// that cannot set headers cross-origin.
func parseLastEventID(r *http.Request) uint64 {
	v := r.Header.Get("Last-Event-ID")
	if v == "" {
		v = r.URL.Query().Get("lastEventId")
	}
	if v == "" {
		return 0
	}
	id, err := strconv.ParseUint(v, 10, 64)
	if err != nil {
		return 0
	}
	return id
}

// fetchSnapshot GETs a resource representation from its home replica for an
// opening frame or a sync re-expansion, reporting whether the state is
// terminal.
func (g *Gateway) fetchSnapshot(ctx context.Context, rs *replicaState, path string) (data []byte, terminal bool, err error) {
	fctx, cancel := context.WithTimeout(ctx, g.fanout)
	defer cancel()
	req, err := http.NewRequestWithContext(fctx, http.MethodGet, rs.baseURL()+path, nil)
	if err != nil {
		return nil, false, err
	}
	req.Header.Set("Accept", "application/json")
	resp, err := g.client.Do(req)
	if err != nil {
		g.markReplicaDown(rs, err)
		return nil, false, fmt.Errorf("gateway: replica %s unreachable: %w", rs.name, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		if resp.StatusCode == http.StatusNotFound {
			_, seg := splitResource(path)
			return nil, false, core.ErrNotFound("resource", seg)
		}
		return nil, false, fmt.Errorf("gateway: GET %s: %s: %s", path, resp.Status, body)
	}
	data, err = io.ReadAll(io.LimitReader(resp.Body, rest.MaxBodyBytes))
	if err != nil {
		return nil, false, err
	}
	var state struct {
		State core.JobState `json:"state"`
	}
	_ = json.Unmarshal(data, &state)
	return data, state.State.Terminal(), nil
}

// splitResource splits "/services/x/jobs/id/events" into the resource path
// ("/services/x/jobs/id") and its final ID segment.
func splitResource(streamPath string) (resource, id string) {
	resource = streamPath
	if len(resource) > len("/events") && resource[len(resource)-len("/events"):] == "/events" {
		resource = resource[:len(resource)-len("/events")]
	}
	id = resource
	for i := len(id) - 1; i >= 0; i-- {
		if id[i] == '/' {
			id = id[i+1:]
			break
		}
	}
	return resource, id
}

// serveResourceStream streams one job or sweep resource to a downstream
// watcher: opening snapshot (fetched live from the home replica), then
// relayed transitions from the shared pump, ending on the terminal frame.
// kind is the SSE event type ("job" or "sweep").
func (g *Gateway) serveResourceStream(w http.ResponseWriter, r *http.Request, rs *replicaState, kind string) {
	if r.Method != http.MethodGet {
		rest.MethodNotAllowed(w, http.MethodGet)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		rest.WriteError(w, fmt.Errorf("gateway: streaming unsupported by connection"))
		return
	}
	streamPath := r.URL.Path
	resourcePath, _ := splitResource(streamPath)
	// Subscribe before the snapshot so no transition between the two is
	// lost, and attach the pump before both so it is already relaying.
	sub := g.bus.Subscribe(streamPath, parseLastEventID(r))
	defer sub.Close()
	release := g.sse.ensure(rs, streamPath, streamPath)
	defer release()
	snap, terminal, err := g.fetchSnapshot(r.Context(), rs, resourcePath)
	if err != nil {
		rest.WriteError(w, err)
		return
	}
	g.streamLoop(w, r, flusher, sub, kind, rs, resourcePath, snap, terminal)
}

// serveServiceFeed streams the merged activity feed of a service: the pumps
// of every healthy replica advertising it publish into one gateway topic.
// Per-replica upstream IDs cannot survive a merge, so resume runs entirely
// in the gateway's ID space (the bus ring).
func (g *Gateway) serveServiceFeed(w http.ResponseWriter, r *http.Request, service string) {
	if r.Method != http.MethodGet {
		rest.MethodNotAllowed(w, http.MethodGet)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		rest.WriteError(w, fmt.Errorf("gateway: streaming unsupported by connection"))
		return
	}
	candidates := g.serviceReplicas(service)
	if len(candidates) == 0 {
		g.noReplica(w, service)
		return
	}
	topic := r.URL.Path
	sub := g.bus.Subscribe(topic, parseLastEventID(r))
	defer sub.Close()
	for _, rs := range candidates {
		release := g.sse.ensure(rs, r.URL.Path, topic)
		defer release()
	}
	// The opening frame mirrors the container's hello: it confirms the
	// subscription and carries the subscriber's resume position.
	hello, _ := json.Marshal(map[string]string{"service": service, "change": "watch"})
	g.streamLoop(w, r, flusher, sub, events.TypeService, nil, "", hello, false)
}

// streamLoop writes the opening frame and then relays bus events until the
// stream turns terminal, the idle window closes, or either side goes away.
// A nil snapshot replica disables sync re-expansion (merged feeds).
func (g *Gateway) streamLoop(w http.ResponseWriter, r *http.Request, flusher http.Flusher, sub *events.Subscriber, kind string, rs *replicaState, resourcePath string, opening []byte, terminal bool) {
	h := w.Header()
	h.Set("Content-Type", "text/event-stream; charset=utf-8")
	h.Set("Cache-Control", "no-store")
	h.Set("X-Accel-Buffering", "no")
	if g.maxWait > 0 {
		h.Set(rest.WaitMaxHeader, g.maxWait.String())
	}
	w.WriteHeader(http.StatusOK)
	metGwSSEWatchers.Add(1)
	defer metGwSSEWatchers.Add(-1)
	if _, err := io.WriteString(w, "retry: 1000\n\n"); err != nil {
		return
	}
	if err := events.WriteEvent(w, events.Event{ID: sub.Seq, Type: kind, Data: opening, End: terminal}); err != nil {
		return
	}
	flusher.Flush()
	if terminal {
		return
	}
	var idle *time.Timer
	var idleC <-chan time.Time
	if g.maxWait > 0 {
		idle = time.NewTimer(g.maxWait)
		defer idle.Stop()
		idleC = idle.C
	}
	for {
		select {
		case ev, ok := <-sub.C:
			if !ok {
				return
			}
			if ev.Type == events.TypeSync && rs != nil {
				// Re-expand: a coalesced gap is replaced by a fresh full
				// snapshot, so the watcher never has to re-fetch itself.
				snap, term, err := g.fetchSnapshot(r.Context(), rs, resourcePath)
				if err != nil {
					return
				}
				ev = events.Event{ID: ev.ID, Type: kind, Data: snap, End: ev.End || term}
			}
			if err := events.WriteEvent(w, ev); err != nil {
				return
			}
			flusher.Flush()
			if ev.End {
				return
			}
			if idle != nil {
				if !idle.Stop() {
					<-idleC
				}
				idle.Reset(g.maxWait)
			}
		case <-idleC:
			// Idle window over: close politely; the client reconnects with
			// Last-Event-ID and resumes from the bus ring.
			return
		case <-r.Context().Done():
			return
		case <-g.stop:
			return
		}
	}
}
