package gateway_test

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mathcloud/internal/adapter"
	"mathcloud/internal/container"
	"mathcloud/internal/core"
	"mathcloud/internal/gateway"
)

// BenchmarkGatewayScaling measures end-to-end job throughput through the
// federation gateway as the replica pool grows from 1 to 2 to 4.
//
// Each replica runs Workers=1 and the service holds its single worker for a
// fixed 20ms of wall clock, modelling an external solver whose cost is
// wall-clock-bound (license seat, subprocess, remote license server) — the
// common shape for MathCloud-style wrapped applications.  In production each
// replica owns its own cores; in this in-process benchmark every replica,
// the gateway, and all clients share the host CPU, so routing and proxy
// overhead is charged against the same budget as the replicas themselves.
// Near-linear jobs/s scaling therefore demonstrates that the gateway tier's
// per-request cost is small relative to even a 20ms service time.
//
// The service is non-deterministic so neither the computation cache nor the
// gateway memo-hint table can short-circuit execution: every submission
// occupies a replica worker for the full service time.
func BenchmarkGatewayScaling(b *testing.B) {
	const serviceTime = 20 * time.Millisecond
	adapter.RegisterFunc("gwbench.solve", func(ctx context.Context, in core.Values) (core.Values, error) {
		select {
		case <-time.After(serviceTime):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		a, _ := in["a"].(float64)
		return core.Values{"sum": a}, nil
	})

	for _, n := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("replicas=%d", n), func(b *testing.B) {
			var reps []*replica
			for i := 0; i < n; i++ {
				name := fmt.Sprintf("r%02d", i+1)
				c, err := container.New(container.Options{
					Workers:   1,
					ReplicaID: name,
					Logger:    quietLogger(),
				})
				if err != nil {
					b.Fatalf("New container %s: %v", name, err)
				}
				b.Cleanup(c.Close)
				if err := c.Deploy(numService(b, "solve", "gwbench.solve", false)); err != nil {
					b.Fatalf("Deploy on %s: %v", name, err)
				}
				srv := httptest.NewServer(c.Handler())
				b.Cleanup(srv.Close)
				reps = append(reps, &replica{name: name, c: c, srv: srv})
			}
			_, gw := startGateway(b, gateway.Options{}, reps...)

			const jobs = 96
			clients := 4 * n // enough submitters to keep every worker busy
			b.ResetTimer()
			for iter := 0; iter < b.N; iter++ {
				var next atomic.Int64
				var failed atomic.Int64
				start := time.Now()
				var wg sync.WaitGroup
				for w := 0; w < clients; w++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						for {
							i := next.Add(1)
							if i > jobs {
								return
							}
							body := fmt.Sprintf(`{"a": %d}`, i)
							resp, err := http.Post(gw.URL+"/services/solve?wait=60s",
								"application/json", strings.NewReader(body))
							if err != nil {
								failed.Add(1)
								return
							}
							var job core.Job
							err = json.NewDecoder(resp.Body).Decode(&job)
							resp.Body.Close()
							if err != nil || resp.StatusCode != http.StatusCreated || job.State != core.StateDone {
								failed.Add(1)
							}
						}
					}()
				}
				wg.Wait()
				elapsed := time.Since(start)
				if f := failed.Load(); f != 0 {
					b.Fatalf("%d of %d jobs failed", f, jobs)
				}
				b.ReportMetric(float64(jobs)/elapsed.Seconds(), "jobs/s")
			}
		})
	}
}

// BenchmarkFederatedMemoHit measures the federation-wide result-reuse path:
// a deterministic result computed through one gateway is resubmitted through
// a SECOND gateway instance with no hint-table history, so every request is
// routed by the shared memo index (fed by the replicas' /memo delta feeds)
// to the replica whose cache holds it and answered as a job born DONE.  The
// jobs/s figure bounds the full warm path: gateway routing + index lookup +
// proxy hop + replica-side memo hit.
func BenchmarkFederatedMemoHit(b *testing.B) {
	adapter.RegisterFunc("gwbench.det", func(ctx context.Context, in core.Values) (core.Values, error) {
		a, _ := in["a"].(float64)
		return core.Values{"sum": a}, nil
	})
	r1 := startReplica(b, "r01", numService(b, "det", "gwbench.det", true))
	r2 := startReplica(b, "r02", numService(b, "det", "gwbench.det", true))
	_, gwA := startGateway(b, gateway.Options{LoadInterval: -1}, r1, r2)

	// Prewarm: compute a working set of distinct results through gateway A.
	const warm = 16
	for i := 0; i < warm; i++ {
		resp, err := http.Post(gwA.URL+"/services/det?wait=30s", "application/json",
			strings.NewReader(fmt.Sprintf(`{"a": %d}`, i)))
		if err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusCreated {
			b.Fatalf("prewarm %d: status %d", i, resp.StatusCode)
		}
	}

	// A fresh gateway instance: no hints, only the shared memo index pulled
	// from the replicas' delta feeds.
	gB, err := gateway.New(gateway.Options{
		Replicas: []gateway.Replica{
			{Name: "r01", BaseURL: r1.srv.URL},
			{Name: "r02", BaseURL: r2.srv.URL},
		},
		PingInterval: -1,
		LoadInterval: -1,
		Logger:       quietLogger(),
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(gB.Close)
	gwB := httptest.NewServer(gB.Handler())
	b.Cleanup(gwB.Close)
	gB.RefreshLoad(context.Background())

	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		body := fmt.Sprintf(`{"a": %d}`, i%warm)
		resp, err := http.Post(gwB.URL+"/services/det?wait=30s", "application/json",
			strings.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		var job core.Job
		decodeErr := json.NewDecoder(resp.Body).Decode(&job)
		resp.Body.Close()
		if decodeErr != nil || resp.StatusCode != http.StatusCreated || job.State != core.StateDone {
			b.Fatalf("warm submit %d: status %d state %s", i, resp.StatusCode, job.State)
		}
	}
	b.ReportMetric(float64(b.N)/time.Since(start).Seconds(), "jobs/s")
}

// BenchmarkSkewedPlacement compares round-robin against power-of-two-choices
// placement under heterogeneous replicas: r01 answers in 5ms, r02 in 20ms (a
// 4:1 service-time skew modelling a slower machine or a busier neighbour).
// Blind round-robin sends half the batch to the slow replica and the
// makespan is dominated by its queue; p2c reads the advertised queue depths
// and drains the batch toward the fast replica.  The jobs/s gap is the win.
func BenchmarkSkewedPlacement(b *testing.B) {
	const fastTime, slowTime = 5 * time.Millisecond, 20 * time.Millisecond
	sleeper := func(d time.Duration) adapter.Func {
		return func(ctx context.Context, in core.Values) (core.Values, error) {
			select {
			case <-time.After(d):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			a, _ := in["a"].(float64)
			return core.Values{"sum": a}, nil
		}
	}
	adapter.RegisterFunc("gwbench.fast", sleeper(fastTime))
	adapter.RegisterFunc("gwbench.slow", sleeper(slowTime))

	for _, policy := range []string{"rr", "p2c"} {
		b.Run("policy="+policy, func(b *testing.B) {
			// Same service name on both replicas, different backing speed.
			r1 := startReplica(b, "r01", numService(b, "skew", "gwbench.fast", false))
			r2 := startReplica(b, "r02", numService(b, "skew", "gwbench.slow", false))
			_, gw := startGateway(b, gateway.Options{
				PlacementPolicy: policy,
				LoadInterval:    25 * time.Millisecond,
			}, r1, r2)

			const jobs = 64
			const clients = 8
			b.ResetTimer()
			for iter := 0; iter < b.N; iter++ {
				var next atomic.Int64
				var failed atomic.Int64
				start := time.Now()
				var wg sync.WaitGroup
				for w := 0; w < clients; w++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						for {
							i := next.Add(1)
							if i > jobs {
								return
							}
							body := fmt.Sprintf(`{"a": %d}`, i)
							resp, err := http.Post(gw.URL+"/services/skew?wait=60s",
								"application/json", strings.NewReader(body))
							if err != nil {
								failed.Add(1)
								return
							}
							var job core.Job
							err = json.NewDecoder(resp.Body).Decode(&job)
							resp.Body.Close()
							if err != nil || resp.StatusCode != http.StatusCreated || job.State != core.StateDone {
								failed.Add(1)
							}
						}
					}()
				}
				wg.Wait()
				elapsed := time.Since(start)
				if f := failed.Load(); f != 0 {
					b.Fatalf("%d of %d jobs failed", f, jobs)
				}
				b.ReportMetric(float64(jobs)/elapsed.Seconds(), "jobs/s")
			}
		})
	}
}
